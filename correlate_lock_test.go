// Equivalence lock for the ingestion-core refactor (DESIGN.md §16): the
// hpcrun+structfile correlation path was reworked to run through the
// format-neutral internal/source boundary, and that refactor must be
// byte-invisible. This test pins the SHA-256 of the v2 and v3 database
// bytes produced by the full merge pipeline for every workload × {1, 7,
// 64} ranks against checksums recorded from the pre-refactor code
// (testdata/correlate_lock.txt). Any drift in node creation order, metric
// column order or attributed values changes the serialized bytes and
// fails here.
//
// Regenerate the lock file (only when an intentional format or pipeline
// change invalidates it) with:
//
//	CORRELATE_LOCK_UPDATE=1 go test -run TestCorrelateSourceLock .
package repro

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/expdb"
	"repro/internal/merge"
	"repro/internal/workloads"
)

const correlateLockFile = "testdata/correlate_lock.txt"

// correlateLockDigests builds every workload × rank-count database through
// the standard merge pipeline (summaries and a derived column, like
// hpcprof -summaries) and returns "name/ranks/format sha256" lines.
func correlateLockDigests(t *testing.T) []string {
	t.Helper()
	var lines []string
	for _, name := range workloads.Names() {
		for _, ranks := range []int{1, 7, 64} {
			doc, profs := mustMPIProfiles(t, name, ranks)
			res, err := merge.Profiles(doc, profs)
			if err != nil {
				t.Fatal(err)
			}
			exp := expdb.FromMerge(res)
			var v2, v3 bytes.Buffer
			if err := exp.WriteBinary(&v2); err != nil {
				t.Fatal(err)
			}
			if err := exp.WriteBinaryV3(&v3); err != nil {
				t.Fatal(err)
			}
			lines = append(lines,
				fmt.Sprintf("%s/%d/v2 %x", name, ranks, sha256.Sum256(v2.Bytes())),
				fmt.Sprintf("%s/%d/v3 %x", name, ranks, sha256.Sum256(v3.Bytes())))
		}
	}
	sort.Strings(lines)
	return lines
}

// TestCorrelateSourceLock compares the current pipeline's database bytes
// against the pre-refactor checksums.
func TestCorrelateSourceLock(t *testing.T) {
	got := correlateLockDigests(t)
	if os.Getenv("CORRELATE_LOCK_UPDATE") != "" {
		if err := os.WriteFile(correlateLockFile,
			[]byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d digests)", correlateLockFile, len(got))
		return
	}
	data, err := os.ReadFile(correlateLockFile)
	if err != nil {
		t.Fatalf("missing lock file (generate with CORRELATE_LOCK_UPDATE=1): %v", err)
	}
	want := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(got) != len(want) {
		t.Fatalf("digest count drifted: got %d, lock has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("database bytes drifted from pre-refactor output:\n  got  %s\n  want %s", got[i], want[i])
		}
	}
}
