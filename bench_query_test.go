package repro

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/merge"
	"repro/internal/metric"
)

// Query-path benchmarks: the interactive operations the paper's viewer
// performs on every user action — derived-metric evaluation (Section V-D),
// metric-column sorting (Section V-A), hot path analysis (Section V-C,
// Equation 3), the Equation 1/2 metric computation itself, and opening an
// experiment database. Baseline numbers live in BENCH_query.json.

// derivedEvalTree builds the ~100k-scope synthetic CCT with a chain of
// derived columns: two referencing the raw column and one referencing an
// earlier derived column, covering arithmetic, division and the function
// forms.
func derivedEvalTree(b *testing.B) *core.Tree {
	b.Helper()
	t := syntheticCCT(100_000, 5)
	for _, d := range [][2]string{
		{"fpwaste", "$0*4 - $0/2"},
		{"releff", "$1 / ($0*4 + 1)"},
		{"mix", "min($0, sqrt($0)) + max($1, 2) * abs($0 - 3)"},
	} {
		if _, err := t.Reg.AddDerived(d[0], d[1]); err != nil {
			b.Fatal(err)
		}
	}
	return t
}

func BenchmarkDerivedEval(b *testing.B) {
	t := derivedEvalTree(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := t.ApplyDerivedTree(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortTree(b *testing.B) {
	t := syntheticCCT(100_000, 7)
	// Alternate directions so every iteration reorders every sibling list
	// instead of re-sorting an already-sorted tree.
	specs := [2]core.SortSpec{
		{MetricID: 0},
		{MetricID: 0, Ascending: true},
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.SortTree(t.Root, specs[i%2])
	}
}

func BenchmarkHotPath(b *testing.B) {
	t := syntheticCCT(100_000, 9)
	b.ResetTimer()
	b.ReportAllocs()
	var length int
	for i := 0; i < b.N; i++ {
		length += len(core.HotPath(t.Root, 0, core.DefaultHotPathThreshold))
	}
	if length == 0 {
		b.Fatal("empty hot path")
	}
}

func BenchmarkComputeMetrics(b *testing.B) {
	t := syntheticCCT(100_000, 11)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.ComputeMetrics()
	}
}

// lazyOpenDB serializes a merged multi-rank pflotran database with summary
// columns over every raw metric — the shape where the overrides section is
// substantial and an open that skips it saves real work.
func lazyOpenDB(b *testing.B) []byte {
	b.Helper()
	doc, profs := mustMPIProfiles(b, "pflotran", 16)
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		b.Fatal(err)
	}
	var raws []int
	for _, d := range res.Tree.Reg.Columns() {
		if d.Kind == metric.Raw {
			raws = append(raws, d.ID)
		}
	}
	for _, id := range raws {
		if err := res.AddSummaries(id, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev); err != nil {
			b.Fatal(err)
		}
	}
	e := expdb.FromMerge(res)
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkLazyOpen(b *testing.B) {
	data := lazyOpenDB(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db, err := expdb.OpenLazy(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if !db.Lazy() {
			b.Fatal("open was not lazy")
		}
	}
}
