// End-to-end acceptance for the pprof bridge: a profile captured by Go's
// own runtime profiler imports into a normal experiment database, renders
// in all three views, diffs against a second run, and yields byte-stable
// hpcreport JSON.
package repro

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"repro/internal/diff"
	"repro/internal/engine"
	"repro/internal/expdb"
	"repro/internal/pprofio"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/source"
)

// e2eSink keeps test allocations live so the heap profiler (which samples
// roughly one allocation per 512 KiB) has something to record.
var e2eSink [][]byte

// realHeapExperiment captures this process's live heap with Go's runtime
// profiler and imports it through the pprof bridge.
func realHeapExperiment(t *testing.T, blocks int) (*expdb.Experiment, *pprofio.Profile) {
	t.Helper()
	for i := 0; i < blocks; i++ {
		e2eSink = append(e2eSink, make([]byte, 1<<20))
	}
	runtime.GC()
	var pb bytes.Buffer
	if err := pprof.WriteHeapProfile(&pb); err != nil {
		t.Fatal(err)
	}
	im, err := pprofio.Import(bytes.NewReader(pb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := source.BuildTree(im)
	if err != nil {
		t.Fatal(err)
	}
	return &expdb.Experiment{Program: im.Program(), NRanks: im.NRanks(), Tree: tree}, im
}

func TestPprofEndToEnd(t *testing.T) {
	exp, im := realHeapExperiment(t, 48)
	if len(exp.Tree.Root.Children) == 0 {
		t.Fatal("imported heap profile has no scopes")
	}
	var names []string
	for _, m := range im.Metrics() {
		names = append(names, m.Name)
	}
	if len(names) != 4 {
		t.Fatalf("heap profile metrics = %v, want the 4 standard sample types", names)
	}

	// The imported database must serve all three views like any other.
	var v2 bytes.Buffer
	if err := exp.WriteBinary(&v2); err != nil {
		t.Fatal(err)
	}
	eager, err := expdb.Read(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	snap := engine.NewSnapshot(eager)
	scripts := [][]string{
		{"expandall", "hot " + names[1]},
		{"view callers", "expandall", "sort " + names[1]},
		{"view flat", "flatten", "sort " + names[1] + ":excl"},
	}
	for _, script := range scripts {
		s := engine.NewSession(snap)
		for _, line := range script {
			if resp := s.Do(engine.Request{Line: line}); resp.Err != "" {
				s.Close()
				t.Fatalf("%q over imported profile: %s", line, resp.Err)
			}
		}
		var out strings.Builder
		if err := s.Render(&out, render.Options{}); err != nil {
			s.Close()
			t.Fatal(err)
		}
		s.Close()
		if out.Len() == 0 {
			t.Fatalf("%q rendered nothing", script)
		}
	}

	// A second capture (more live heap) diffs against the first.
	exp2, _ := realHeapExperiment(t, 16)
	res, err := diff.Diff(diff.Config{Jobs: 2},
		diff.Input{Label: "run1", Exp: exp},
		diff.Input{Label: "run2", Exp: exp2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.Report(diff.ReportOptions{Metric: names[1]})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metric != names[1] {
		t.Fatalf("diff report metric %q, want %q", rep.Metric, names[1])
	}

	// hpcreport over the import is byte-stable.
	build := func(jobs int) []byte {
		r, err := report.Build(exp, report.Options{Baseline: exp2, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(build(1), build(4)) {
		t.Fatal("report over imported profile not byte-stable across -jobs")
	}
}

// TestPprofRealCPUProfile runs the importer over a live CPU profile — the
// same bytes `go test -cpuprofile` writes. CPU sampling is statistical, so
// the test skips (rather than flakes) on the rare empty capture.
func TestPprofRealCPUProfile(t *testing.T) {
	var pb bytes.Buffer
	if err := pprof.StartCPUProfile(&pb); err != nil {
		t.Fatal(err)
	}
	spin := 0
	for i := 0; i < 1<<27; i++ {
		spin += i * i
	}
	pprof.StopCPUProfile()
	if spin == 0 {
		t.Fatal("unreachable")
	}
	im, err := pprofio.Import(bytes.NewReader(pb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := source.BuildTree(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Root.Children) == 0 {
		t.Skip("CPU profiler captured no samples in this run")
	}
	// Inclusive cost at every entry frame sums to the column totals.
	for _, m := range im.Metrics() {
		d := tree.Reg.ByName(m.Name)
		if d == nil {
			t.Fatalf("imported tree lost metric %q", m.Name)
		}
		var total float64
		for _, entry := range tree.Root.Children {
			total += entry.Incl.Get(d.ID)
		}
		if total != tree.Root.Incl.Get(d.ID) {
			t.Fatalf("%s: entry frames sum %g, root inclusive %g", m.Name, total, tree.Root.Incl.Get(d.ID))
		}
	}
	t.Logf("cpu profile: %d entry frames, %d metrics", len(tree.Root.Children), len(im.Metrics()))
}
