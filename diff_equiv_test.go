// Equivalence tests for the differential profiling engine (hpcdiff). The
// structural union, the per-input column fill and the whole-column
// delta/ratio/loss kernels are columnar for speed; every value they
// produce must stay bitwise identical to a straightforward per-node
// reference built on key-path correspondence between the input trees and
// the scalar formulas — across every workload, rank pairing and database
// format version. A final test reproduces the paper's headline use: the
// scaling-loss ranking that localizes a weak-scaling bottleneck.
package repro

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// --- reference implementation ----------------------------------------------

// refDiffCorrespond walks the union tree and, per node, resolves the
// corresponding node in each input tree by key path (nil when absent),
// the same matching rule the union builder's map uses.
func refDiffCorrespond(res *diff.Result, ins []*expdb.Experiment) (map[*core.Node][]*core.Node, error) {
	match := map[*core.Node][]*core.Node{}
	var walk func(un *core.Node, cur []*core.Node)
	walk = func(un *core.Node, cur []*core.Node) {
		match[un] = cur
		for _, c := range un.Children {
			next := make([]*core.Node, len(cur))
			for i, in := range cur {
				if in == nil {
					continue
				}
				for _, cc := range in.Children {
					if cc.Key == c.Key {
						next[i] = cc
						break
					}
				}
			}
			walk(c, next)
		}
	}
	roots := make([]*core.Node, len(ins))
	for i := range ins {
		roots[i] = ins[i].Tree.Root
	}
	walk(res.Tree.Root, roots)

	// Completeness: every input scope must appear in the union — the walk
	// above only proves union scopes trace back to some input.
	for i, in := range ins {
		var check func(in, un *core.Node) error
		check = func(in, un *core.Node) error {
			for _, c := range in.Children {
				var uc *core.Node
				for _, cc := range un.Children {
					if cc.Key == c.Key {
						uc = cc
						break
					}
				}
				if uc == nil {
					return fmt.Errorf("input %d scope %q missing from the union", i, c.Label())
				}
				if err := check(c, uc); err != nil {
					return err
				}
			}
			return nil
		}
		if err := check(in.Tree.Root, res.Tree.Root); err != nil {
			return nil, err
		}
	}
	return match, nil
}

// norm0 is the kernels' negative-zero normalization: slab results that
// compare equal to zero are stored as +0.
func norm0(v float64) float64 {
	if v == 0 {
		v = 0
	}
	return v
}

// checkDiffEquiv verifies one diff result bitwise against the per-node
// reference: base fill from the inputs, inclusive/exclusive aggregation
// via the Equations 1-2 reference, the delta/ratio/loss formulas applied
// per node, and presence flags from the correspondence itself.
func checkDiffEquiv(t *testing.T, res *diff.Result, ins []*expdb.Experiment) {
	t.Helper()
	match, err := refDiffCorrespond(res, ins)
	if err != nil {
		t.Fatal(err)
	}

	// Input parameters the reference formulas share with the engine.
	for i, info := range res.Inputs {
		wantNorm := 1.0
		if res.PerRank {
			wantNorm = 1 / float64(info.Ranks)
		}
		if info.Norm != wantNorm {
			t.Fatalf("input %d norm = %v, want %v", i, info.Norm, wantNorm)
		}
	}

	// Per-input source columns, input-major like the union builder's.
	src := make([][]int, len(ins))
	for i, in := range ins {
		src[i] = make([]int, len(res.Metrics))
		for mi := range res.Metrics {
			d := in.Tree.Reg.ByName(res.Metrics[mi].Name)
			if d == nil {
				t.Fatalf("input %d lacks compared metric %s", i, res.Metrics[mi].Name)
			}
			src[i][mi] = d.ID
		}
	}

	// Base plane: each union scope's per-input columns are the input's
	// base costs scaled by its normalization; everything else is zero.
	ncols := res.Tree.Reg.Len()
	bitwise := func(n *core.Node, what string, col int, got, want float64) {
		t.Helper()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: %s col %d = %v (%#x), reference %v (%#x)",
				n.Label(), what, col, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	for un, cur := range match {
		vec := make([]float64, ncols)
		if un != res.Tree.Root { // the union root carries no base costs
			for i, in := range cur {
				if in == nil {
					continue
				}
				for mi := range res.Metrics {
					if v := in.Base.Get(src[i][mi]); v != 0 {
						vec[res.Metrics[mi].In[i]] = v * res.Inputs[i].Norm
					}
				}
			}
		}
		for id := 0; id < ncols; id++ {
			bitwise(un, "base", id, un.Base.Get(id), vec[id])
		}
	}

	// Presented planes of the per-input columns: the base values verified
	// above, aggregated by the per-node Equations 1-2 reference over the
	// union's own child order.
	refIncl, refExcl := refMetrics(t, res.Tree)
	for un := range match {
		for mi := range res.Metrics {
			for _, id := range res.Metrics[mi].In {
				bitwise(un, "incl", id, un.Incl.Get(id), refIncl[un][id])
				bitwise(un, "excl", id, un.Excl.Get(id), refExcl[un][id])
			}
		}
	}

	// Comparison columns: the scalar formulas per node and plane, reading
	// the reference per-input values.
	for un := range match {
		for mi := range res.Metrics {
			mc := &res.Metrics[mi]
			for ii := 1; ii < len(res.Inputs); ii++ {
				f := res.Inputs[ii].Factor
				for _, plane := range []struct {
					name string
					ref  map[*core.Node][]float64
					get  func(int) float64
				}{
					{"incl", refIncl, un.Incl.Get},
					{"excl", refExcl, un.Excl.Get},
				} {
					av := plane.ref[un][mc.In[0]]
					bv := plane.ref[un][mc.In[ii]]
					bitwise(un, plane.name+" delta", mc.Delta[ii-1], plane.get(mc.Delta[ii-1]), norm0(bv-av))
					var qv float64
					if av != 0 {
						qv = norm0(bv / av)
					}
					bitwise(un, plane.name+" ratio", mc.Ratio[ii-1], plane.get(mc.Ratio[ii-1]), qv)
					if mc.Loss != nil {
						var lv float64
						if bv != 0 {
							lv = norm0(1 - av*f/bv)
						}
						bitwise(un, plane.name+" loss", mc.Loss[ii-1], plane.get(mc.Loss[ii-1]), lv)
					}
				}
			}
		}
	}

	// Presence: flags and columns must equal the correspondence itself.
	for un, cur := range match {
		for i := range res.Inputs {
			want := un == res.Tree.Root || cur[i] != nil
			if got := res.PresentIn(un, i); got != want {
				t.Fatalf("%s: PresentIn(%d) = %v, correspondence says %v", un.Label(), i, got, want)
			}
			wantV := 0.0
			if want {
				wantV = 1
			}
			col := res.Inputs[i].PresenceCol
			bitwise(un, "presence incl", col, un.Incl.Get(col), wantV)
			bitwise(un, "presence excl", col, un.Excl.Get(col), wantV)
		}
	}
}

// --- the matrix -------------------------------------------------------------

// TestDiffEquivalence runs the full matrix the columnar diff must be
// invisible across: every workload, baseline vs {1, 7, 64} ranks (same
// ranks exercises ModeNone, differing ranks auto-select weak scaling with
// per-rank normalization), with both inputs round-tripped through each
// binary format version first.
func TestDiffEquivalence(t *testing.T) {
	formats := []struct {
		name  string
		write func(*expdb.Experiment, *bytes.Buffer) error
	}{
		{"v2", func(e *expdb.Experiment, b *bytes.Buffer) error { return e.WriteBinary(b) }},
		{"v1", func(e *expdb.Experiment, b *bytes.Buffer) error { return e.WriteBinaryV1(b) }},
	}
	rt := func(t *testing.T, e *expdb.Experiment, write func(*expdb.Experiment, *bytes.Buffer) error) *expdb.Experiment {
		t.Helper()
		var buf bytes.Buffer
		if err := write(e, &buf); err != nil {
			t.Fatal(err)
		}
		out, err := expdb.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, name := range workloads.Names() {
		base := equivExperiment(t, name, 1)
		for _, ranks := range []int{1, 7, 64} {
			other := equivExperiment(t, name, ranks)
			for _, f := range formats {
				t.Run(fmt.Sprintf("%s/ranks=1v%d/%s", name, ranks, f.name), func(t *testing.T) {
					a, b := rt(t, base, f.write), rt(t, other, f.write)
					res, err := diff.Diff(diff.Config{},
						diff.Input{Label: "A", Exp: a}, diff.Input{Label: "B", Exp: b})
					if err != nil {
						t.Fatal(err)
					}
					wantMode := diff.ModeWeak
					if ranks == 1 {
						wantMode = diff.ModeNone
					}
					if res.Mode != wantMode {
						t.Fatalf("auto mode = %s, want %s", res.Mode, wantMode)
					}
					checkDiffEquiv(t, res, []*expdb.Experiment{a, b})
				})
			}
		}
	}
}

// TestDiffScalingLossRanking reproduces the paper's scaling-loss analysis
// on the PFLOTRAN analogue: diffing the same problem at 64 and 1024 ranks
// under weak scaling must rank the global reduction — whose cost grows
// with the rank count by construction — as the top source of scaling
// loss, with the compute phases near-ideal.
func TestDiffScalingLossRanking(t *testing.T) {
	spec, err := workloads.ByName("pflotran")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	at := func(ranks int) *expdb.Experiment {
		profs, err := mpi.Run(im, mpi.Config{NRanks: ranks,
			Params: map[string]int64{"cells": 60, "species": 5},
			Events: sampler.DefaultEvents(spec.Period)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := merge.Profiles(doc, profs)
		if err != nil {
			t.Fatal(err)
		}
		return expdb.FromMerge(res)
	}
	res, err := diff.Diff(diff.Config{Metrics: []string{"CYCLES"}},
		diff.Input{Label: "n64", Exp: at(64)},
		diff.Input{Label: "n1024", Exp: at(1024)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != diff.ModeWeak || !res.PerRank {
		t.Fatalf("auto-selected %s/perRank=%v, want weak per-rank", res.Mode, res.PerRank)
	}
	rep, err := res.Report(diff.ReportOptions{Metric: "CYCLES"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) == 0 {
		t.Fatal("no regressions reported for a 16x rank scale-up")
	}
	top := rep.Regressions[0]
	proc := top.Path[len(top.Path)-1]
	if proc != "reduce_residual" {
		t.Fatalf("top scaling regression is %q (path %v), want reduce_residual", proc, top.Path)
	}
	if top.Loss <= 0.5 {
		t.Fatalf("reduce_residual loss = %v, want a dominant (>0.5) loss fraction", top.Loss)
	}
	// The linear all-gather model predicts ~16x per-rank growth.
	if top.Ratio < 8 || top.Ratio > 32 {
		t.Fatalf("reduce_residual per-rank ratio = %v, want ~16x", top.Ratio)
	}
	// The compute phases scale near-ideally: any loss they report must be
	// far below the reduction's.
	for _, e := range rep.Regressions[1:] {
		if p := e.Path[len(e.Path)-1]; p == "flow_solve" || p == "transport_solve" {
			if e.Loss > top.Loss/2 {
				t.Fatalf("compute phase %s loss = %v rivals the reduction's %v", p, e.Loss, top.Loss)
			}
		}
	}
	// And the whole-program totals must blame the loss on the reduction:
	// total loss is positive but below the reduction scope's own.
	if rep.TotalLoss <= 0 || rep.TotalLoss >= top.Loss {
		t.Fatalf("total loss %v not between 0 and the top scope's %v", rep.TotalLoss, top.Loss)
	}
}
