package repro

import (
	"fmt"
	"testing"

	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Trace-engine benchmarks: the O(pixels) rendering claim and the capture
// overhead bound. Baseline numbers live in BENCH_trace.json.
//
// BenchmarkTraceView renders a fixed 512×1 pixel budget over pyramids
// built from 10^5, 10^6 and 10^7 events; ns/op must stay flat (±10%)
// across the three sizes, because the view reads the pyramid level that
// matches the pixel budget, never the event stream.

// benchTraceSource is an in-memory trace.Source holding one rank's
// finished pyramid, standing in for a mapped database.
type benchTraceSource struct {
	meta   trace.Meta
	levels [][]trace.Bucket
}

func (s *benchTraceSource) TraceRanks() []int { return []int{0} }
func (s *benchTraceSource) TraceMeta(rank int) (trace.Meta, bool) {
	if rank != 0 {
		return trace.Meta{}, false
	}
	return s.meta, true
}
func (s *benchTraceSource) TraceLevel(rank, level int) []trace.Bucket {
	if rank != 0 || level < 0 || level >= len(s.levels) {
		return nil
	}
	return s.levels[level]
}

// buildTraceSource synthesizes n events with a deterministic call-path
// walk and finishes the zoom pyramid over them.
func buildTraceSource(b *testing.B, n int) *benchTraceSource {
	b.Helper()
	lastT := uint64(n) * 10
	pb := trace.NewBuilder(0, uint64(n), lastT)
	for i := 1; i <= n; i++ {
		rec := trace.Rec{
			T:     uint64(i) * 10,
			CPID:  uint32(i % 97),
			Depth: uint16(1 + i%7),
		}
		if err := pb.Add(rec); err != nil {
			b.Fatal(err)
		}
	}
	meta, levels := pb.Finish()
	return &benchTraceSource{meta: meta, levels: levels}
}

func BenchmarkTraceView(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000, 10_000_000} {
		src := buildTraceSource(b, n)
		b.Run(fmt.Sprintf("events=%d", n), func(b *testing.B) {
			// Warm the pyramid level the view reads, so the first
			// iteration doesn't pay its cold-cache cost.
			if _, err := trace.View(src, 0, 0, nil, 512, 0); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := trace.View(src, 0, 0, nil, 512, 0)
				if err != nil {
					b.Fatal(err)
				}
				if g.W != 512 || g.H != 1 {
					b.Fatalf("grid %dx%d", g.W, g.H)
				}
			}
		})
	}
}

// BenchmarkTraceCapture measures the cost tracing adds to a sampled run:
// the same workload and sampling config, with capture off and on (bounded
// in-memory spill). The "on" run must stay within 10% of "off" — capture
// is an O(1) append per sample, amortized by the 4096-record buffer.
func BenchmarkTraceCapture(b *testing.B) {
	// One spill for all iterations, reset (capacity kept) between runs: a
	// real capture owns its spill for the whole run, so a fresh buffer per
	// iteration would measure allocator churn, not capture cost.
	spill := &trace.MemSpill{}
	samplerAt := func(traced bool) func() (sim.Observer, error) {
		return func() (sim.Observer, error) {
			s, err := sampler.New("s3d", 0, 0, []sampler.EventConfig{{Event: sim.EvCycles, Period: 1000}})
			if err != nil {
				return nil, err
			}
			if traced {
				if err := spill.Close(); err != nil {
					return nil, err
				}
				// 256-record buffer: ~33 flushes over this run's ~8k
				// samples, so flush cost is measured, while the buffer
				// allocation itself stays small next to the run.
				s.EnableTrace(spill, 256)
			}
			return s, nil
		}
	}
	b.Run("off", func(b *testing.B) { benchVM(b, samplerAt(false)) })
	b.Run("on", func(b *testing.B) { benchVM(b, samplerAt(true)) })
}
