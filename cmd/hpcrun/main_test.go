package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/profile"
)

func TestRunWritesPerRankProfiles(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-w", "toy", "-ranks", "2", "-o", dir}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "toy-*.cpprof"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("profiles written = %v", matches)
	}
	f, err := os.Open(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := profile.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.Program != "toy" {
		t.Fatalf("program = %q", p.Program)
	}
	if tot := p.Totals(); tot[0] == 0 {
		t.Fatal("empty profile")
	}
}

func TestRunParams(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-w", "pflotran", "-ranks", "1", "-p", "cells=50,species=2", "-o", dir})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                               // missing -w
		{"-w", "nosuch"},                 // unknown workload
		{"-w", "toy", "-p", "bad"},       // bad param syntax
		{"-w", "toy", "-p", "cells=zzz"}, // bad param value
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParseParams(t *testing.T) {
	got, err := parseParams("a=1, b=2", map[string]int64{"a": 9, "c": 3})
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] != 1 || got["b"] != 2 || got["c"] != 3 {
		t.Fatalf("params = %v", got)
	}
}
