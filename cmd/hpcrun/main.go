// Command hpcrun is the measurement tool: it executes a built-in synthetic
// workload under the sampling virtual machine (on one or many SPMD ranks)
// and writes one raw call path profile per rank, mirroring HPCToolkit's
// hpcrun producing per-thread measurement files.
//
// Usage:
//
//	hpcrun -w s3d [-ranks 1] [-period 1000] [-seed 0] [-p k=v,...] \
//	       [-trace] -o outdir
//
// With -trace, every sample also appends a (time, call path, depth) trace
// event; captures spill to unlinked temp files so measurement memory
// stays bounded no matter how long the run, and the events ride along in
// the measurement files for hpcprof -trace to correlate.
//
// The resulting profiles are consumed by hpcprof together with the
// structure file produced by hpcstruct.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lower"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hpcrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hpcrun", flag.ContinueOnError)
	workload := fs.String("w", "", "workload to run: "+strings.Join(workloads.Names(), ", "))
	ranks := fs.Int("ranks", 0, "number of SPMD ranks (0 = workload default)")
	threads := fs.Int("threads", 1, "threads per rank (each thread writes its own profile)")
	period := fs.Uint64("period", 0, "base sampling period in cycles (0 = workload default)")
	seed := fs.Int64("seed", 0, "execution seed")
	params := fs.String("p", "", "workload parameters, comma-separated k=v pairs")
	doTrace := fs.Bool("trace", false, "capture time-dimension trace events alongside samples")
	out := fs.String("o", "measurements", "output directory for per-rank profiles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workload == "" {
		return fmt.Errorf("missing -w; available workloads: %s", strings.Join(workloads.Names(), ", "))
	}
	spec, err := workloads.ByName(*workload)
	if err != nil {
		return err
	}
	if *ranks > 0 {
		spec.Ranks = *ranks
	}
	if *period > 0 {
		spec.Period = *period
	}
	p, err := parseParams(*params, spec.Params)
	if err != nil {
		return err
	}

	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		return err
	}
	profs, err := mpi.Run(im, mpi.Config{
		NRanks:         spec.Ranks,
		ThreadsPerRank: *threads,
		Params:         p,
		Seed:           *seed,
		Events:         sampler.DefaultEvents(spec.Period),
		Trace:          *doTrace,
		TraceSpill: func(rank, thread int) (trace.SpillStore, error) {
			return trace.NewFileSpill("")
		},
	})
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, prof := range profs {
		name := filepath.Join(*out, fmt.Sprintf("%s-%06d-%03d.cpprof", spec.Name, prof.Rank, prof.Thread))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := prof.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st := prof.Stats()
		fmt.Printf("wrote %s (%d frames, %d sample contexts)\n", name, st.Frames, st.Leaves)
	}
	return nil
}

func parseParams(s string, defaults map[string]int64) (map[string]int64, error) {
	out := map[string]int64{}
	for k, v := range defaults {
		out[k] = v
	}
	if s == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad parameter %q (want k=v)", pair)
		}
		n, err := strconv.ParseInt(kv[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad parameter value %q: %v", pair, err)
		}
		out[strings.TrimSpace(kv[0])] = n
	}
	return out, nil
}
