// Command hpcserver serves experiment databases over HTTP: a lifecycle
// catalog of databases (ingested at runtime, opened on demand under a
// memory budget, republished atomically) and any number of concurrent
// presentation sessions, each speaking the same command grammar as
// `hpcviewer -interactive`. It is the fleet-scale frontend over
// internal/engine and internal/catalog — thousands of sessions across
// hundreds of databases in one process.
//
// Usage:
//
//	hpcserver -db s3d.db -addr :7007
//	hpcserver -catalog-dir /var/lib/hpc -spool /var/spool/hpc -mem-budget 2GiB
//
// then:
//
//	curl -X POST localhost:7007/v1/sessions -d '{"db":"s3d/run1"}' -> {"token":"..."}
//	curl -X POST localhost:7007/v1/sessions/T/exec \
//	     -d '{"line":"hot CYCLES"}'                    -> {"output":"..."}
//	curl -X POST 'localhost:7007/v1/ingest?service=s3d&run=run1&ts=42' \
//	     --data-binary @s3d.db
//	curl -X DELETE localhost:7007/v1/sessions/T
//
// SIGINT/SIGTERM flip /readyz to 503, drain in-flight requests, then close
// every session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/prog"
	"repro/internal/server"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hpcserver:", err)
		os.Exit(1)
	}
}

// compareFlags collects repeatable -compare name=path entries.
type compareFlags []string

func (c *compareFlags) String() string     { return strings.Join(*c, ";") }
func (c *compareFlags) Set(s string) error { *c = append(*c, s); return nil }

// parseBytes parses a human byte size: plain digits, or a K/M/G(i)B suffix.
func parseBytes(s string) (int64, error) {
	if s == "" || s == "0" {
		return 0, nil
	}
	mult := int64(1)
	up := strings.ToUpper(strings.TrimSpace(s))
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1000}, {"MB", 1000_000}, {"GB", 1000_000_000},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
	} {
		if strings.HasSuffix(up, suf.name) {
			mult = suf.mult
			up = strings.TrimSuffix(up, suf.name)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(up), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("hpcserver", flag.ContinueOnError)
	dflags := diag.Register(fs)
	db := fs.String("db", "", "default experiment database (optional when -catalog-dir/-spool supply databases)")
	addr := fs.String("addr", ":7007", "listen address")
	var compares compareFlags
	fs.Var(&compares, "compare", "extra database name=path pinned into the catalog (repeatable)")
	workload := fs.String("w", "", "workload name, to attach pseudo-source for the src command")
	jobs := fs.Int("jobs", 0, "goroutines for callers-view expansion per session (0 = one per CPU)")
	residency := fs.Bool("residency", false, "debug: report mapped-vs-resident bytes per mapped (v3) snapshot at startup")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request handler deadline (a session exceeding it is killed, not the process)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain window")
	catalogDir := fs.String("catalog-dir", "", "directory where ingested databases are stored and reloaded on restart (default: a temp dir)")
	spool := fs.String("spool", "", "watched spool directory: databases dropped here are ingested and deleted")
	spoolInterval := fs.Duration("spool-interval", 2*time.Second, "spool poll interval")
	memBudget := fs.String("mem-budget", "0", "catalog memory budget for open snapshots (e.g. 2GiB; 0 = unbounded)")
	maxInflight := fs.Int("max-inflight", 64, "concurrently executing requests before queueing")
	maxQueue := fs.Int("max-queue", 256, "queued requests before shedding with 503")
	queueTimeout := fs.Duration("queue-timeout", 2*time.Second, "max time a request waits in the admission queue before 429")
	maxBody := fs.String("max-body", "1MiB", "control-plane POST body cap (oversized -> 413)")
	maxIngest := fs.String("max-ingest", "1GiB", "ingest body cap (oversized -> 413)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	budget, err := parseBytes(*memBudget)
	if err != nil {
		return fmt.Errorf("-mem-budget: %w", err)
	}
	bodyCap, err := parseBytes(*maxBody)
	if err != nil {
		return fmt.Errorf("-max-body: %w", err)
	}
	ingestCap, err := parseBytes(*maxIngest)
	if err != nil {
		return fmt.Errorf("-max-ingest: %w", err)
	}
	if *db == "" && *catalogDir == "" && *spool == "" && len(compares) == 0 {
		return fmt.Errorf("nothing to serve: give -db, -catalog-dir, -spool or -compare")
	}
	stopDiag, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if derr := stopDiag(); derr != nil && err == nil {
			err = derr
		}
	}()

	dir := *catalogDir
	if dir == "" {
		if dir, err = os.MkdirTemp("", "hpcserver-catalog-"); err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	cat := catalog.New(catalog.Config{
		Dir:       dir,
		MemBudget: budget,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hpcserver: "+format+"\n", args...)
		},
	})
	defer cat.Close()
	if n, lerr := cat.LoadDir(); lerr != nil {
		return lerr
	} else if n > 0 {
		fmt.Fprintf(os.Stderr, "hpcserver: reloaded %d database(s) from %s\n", n, dir)
	}

	reportResidency := func(name string, sn *engine.Snapshot) {
		if !*residency {
			return
		}
		data := sn.MappedBytes()
		if data == nil {
			fmt.Fprintf(os.Stderr, "hpcserver: residency %s: database is not mapped\n", name)
			return
		}
		fmt.Fprintf(os.Stderr, "hpcserver: residency %s: %s\n", name, diag.ResidencyString(data))
		spans := sn.SectionSpans()
		kinds := make([]diag.KindSpan, len(spans))
		for i, sp := range spans {
			kinds[i] = diag.KindSpan{Kind: sp.Kind, Data: sp.Data}
		}
		for _, line := range diag.ResidencyByKind(kinds) {
			fmt.Fprintf(os.Stderr, "hpcserver: residency %s:   %s\n", name, line)
		}
	}

	// The default database, shared by every session that names no catalog
	// entry. The engine seals it immutable.
	var snap *engine.Snapshot
	if *db != "" {
		if snap, err = engine.Open(*db); err != nil {
			return err
		}
		for _, note := range snap.Notes() {
			fmt.Fprintf(os.Stderr, "hpcserver: warning: %s\n", note)
		}
		reportResidency(*db, snap)
	}
	var source *prog.Program
	if *workload != "" {
		spec, err := workloads.ByName(*workload)
		if err != nil {
			return err
		}
		source = spec.Program
	}
	srv := server.NewWithConfig(snap, server.Config{
		Source:         source,
		Jobs:           *jobs,
		Catalog:        cat,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		ExecTimeout:    *reqTimeout,
		MaxBodyBytes:   bodyCap,
		MaxIngestBytes: ingestCap,
	})
	defer srv.Close()
	for _, c := range compares {
		name, path, ok := strings.Cut(c, "=")
		if !ok {
			return fmt.Errorf("bad -compare %q (want name=path)", c)
		}
		other, err := engine.Open(path)
		if err != nil {
			return err
		}
		if err := srv.AddSnapshot(name, other); err != nil {
			return err
		}
		reportResidency(name, other)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *spool != "" {
		if err := os.MkdirAll(*spool, 0o755); err != nil {
			return err
		}
		go cat.WatchSpool(ctx, *spool, *spoolInterval)
	}

	hs := &http.Server{
		Addr: *addr,
		// The server kills individual sessions at the exec deadline; the
		// TimeoutHandler above it is the backstop for everything else,
		// with headroom so typed errors win the race.
		Handler:           http.TimeoutHandler(srv.Handler(), *reqTimeout+5*time.Second, "request timed out\n"),
		ReadHeaderTimeout: 5 * time.Second, // slowloris defense
		ReadTimeout:       *reqTimeout,
		WriteTimeout:      *reqTimeout + 10*time.Second,
		IdleTimeout:       2 * time.Minute,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}

	errc := make(chan error, 1)
	go func() {
		if lerr := hs.ListenAndServe(); !errors.Is(lerr, http.ErrServerClosed) {
			errc <- lerr
			return
		}
		errc <- nil
	}()
	what := *db
	if what == "" {
		what = fmt.Sprintf("catalog %s", dir)
	}
	fmt.Fprintf(os.Stderr, "hpcserver: serving %s on %s\n", what, *addr)

	select {
	case lerr := <-errc:
		return lerr
	case <-ctx.Done():
	}
	stop()
	// Drain: stop admitting (readyz 503 tells the balancer), let in-flight
	// requests finish, then close sessions.
	srv.StartDrain()
	fmt.Fprintln(os.Stderr, "hpcserver: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if serr := hs.Shutdown(dctx); serr != nil {
		// Drain window elapsed; cut the stragglers off.
		hs.Close()
	}
	return <-errc
}
