// Command hpcserver serves an experiment database over HTTP: one lazily
// opened database, any number of concurrent presentation sessions, each
// speaking the same command grammar as `hpcviewer -interactive`. It is the
// second thin frontend over internal/engine — the CLI renders to a
// terminal, this one to JSON — and exists to demonstrate that the engine's
// snapshot/session split really does support many users on one open
// database.
//
// Usage:
//
//	hpcserver -db s3d.db -addr :7007
//
// then:
//
//	curl -X POST localhost:7007/v1/sessions            -> {"token":"..."}
//	curl -X POST localhost:7007/v1/sessions/T/exec \
//	     -d '{"line":"hot CYCLES"}'                    -> {"output":"..."}
//	curl -X DELETE localhost:7007/v1/sessions/T
//
// SIGINT/SIGTERM drain in-flight requests, then close every session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/prog"
	"repro/internal/server"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hpcserver:", err)
		os.Exit(1)
	}
}

// compareFlags collects repeatable -compare name=path entries.
type compareFlags []string

func (c *compareFlags) String() string     { return strings.Join(*c, ";") }
func (c *compareFlags) Set(s string) error { *c = append(*c, s); return nil }

func run(args []string) (err error) {
	fs := flag.NewFlagSet("hpcserver", flag.ContinueOnError)
	dflags := diag.Register(fs)
	db := fs.String("db", "", "experiment database from hpcprof (required)")
	addr := fs.String("addr", ":7007", "listen address")
	var compares compareFlags
	fs.Var(&compares, "compare", "extra database name=path for the diff catalog (repeatable)")
	workload := fs.String("w", "", "workload name, to attach pseudo-source for the src command")
	jobs := fs.Int("jobs", 0, "goroutines for callers-view expansion per session (0 = one per CPU)")
	residency := fs.Bool("residency", false, "debug: report mapped-vs-resident bytes per mapped (v3) snapshot at startup")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request handler timeout")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("missing -db")
	}
	stopDiag, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if derr := stopDiag(); derr != nil && err == nil {
			err = derr
		}
	}()

	// One open, shared by every session: the engine seals the database
	// immutable (lazy column fault-in stays synchronized behind it).
	snap, err := engine.Open(*db)
	if err != nil {
		return err
	}
	for _, note := range snap.Notes() {
		fmt.Fprintf(os.Stderr, "hpcserver: warning: %s\n", note)
	}
	reportResidency := func(name string, sn *engine.Snapshot) {
		if !*residency {
			return
		}
		data := sn.MappedBytes()
		if data == nil {
			fmt.Fprintf(os.Stderr, "hpcserver: residency %s: database is not mapped\n", name)
			return
		}
		fmt.Fprintf(os.Stderr, "hpcserver: residency %s: %s\n", name, diag.ResidencyString(data))
	}
	reportResidency(*db, snap)
	var source *prog.Program
	if *workload != "" {
		spec, err := workloads.ByName(*workload)
		if err != nil {
			return err
		}
		source = spec.Program
	}
	srv := server.New(snap, source, *jobs)
	defer srv.Close()
	for _, c := range compares {
		name, path, ok := strings.Cut(c, "=")
		if !ok {
			return fmt.Errorf("bad -compare %q (want name=path)", c)
		}
		other, err := engine.Open(path)
		if err != nil {
			return err
		}
		if err := srv.AddSnapshot(name, other); err != nil {
			return err
		}
		reportResidency(name, other)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           http.TimeoutHandler(srv.Handler(), *reqTimeout, "request timed out\n"),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *reqTimeout,
		WriteTimeout:      *reqTimeout + 5*time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}

	errc := make(chan error, 1)
	go func() {
		if lerr := hs.ListenAndServe(); !errors.Is(lerr, http.ErrServerClosed) {
			errc <- lerr
			return
		}
		errc <- nil
	}()
	fmt.Fprintf(os.Stderr, "hpcserver: serving %s on %s\n", *db, *addr)

	select {
	case lerr := <-errc:
		return lerr
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "hpcserver: shutting down")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if serr := hs.Shutdown(dctx); serr != nil {
		// Drain window elapsed; cut the stragglers off.
		hs.Close()
	}
	return <-errc
}
