package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// writeTracedInputs is writeInputsN with trace capture enabled.
func writeTracedInputs(t *testing.T, dir string, nranks int) (structPath string, profPaths []string) {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	structPath = filepath.Join(dir, "toy.hpcstruct")
	sf, err := os.Create(structPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.WriteXML(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	profs, err := mpi.Run(im, mpi.Config{
		NRanks: nranks,
		Events: sampler.DefaultEvents(spec.Period),
		Trace:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profs {
		path := filepath.Join(dir, fmt.Sprintf("toy-%04d.cpprof", p.Rank))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		profPaths = append(profPaths, path)
	}
	return structPath, profPaths
}

// TestTracePipeline drives the full measurement-to-view path through the
// CLI: traced profiles, hpcprof -traces, OpenMapped, a rendered view.
func TestTracePipeline(t *testing.T) {
	dir := t.TempDir()
	structPath, profPaths := writeTracedInputs(t, dir, 3)
	out := filepath.Join(dir, "exp.db")
	args := append([]string{"-S", structPath, "-format", "v3", "-traces", "-o", out}, profPaths...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}

	db, err := expdb.OpenMapped(out)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tv, err := db.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if got := tv.TraceRanks(); len(got) != 3 {
		t.Fatalf("trace ranks = %v, want 3", got)
	}
	g, err := trace.View(tv, 0, 0, nil, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, c := range g.Cells {
		if !c.Empty() {
			if db.NodeAt(int(c.CPID)) == nil {
				t.Fatalf("cell CPID %d has no node", c.CPID)
			}
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("rendered view is empty")
	}
}

// TestTraceJobsByteIdentical locks the full database bytes across -jobs.
func TestTraceJobsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	structPath, profPaths := writeTracedInputs(t, dir, 4)
	var outs [][]byte
	for _, jobs := range []string{"1", "8"} {
		out := filepath.Join(dir, "exp-j"+jobs+".db")
		args := append([]string{"-S", structPath, "-format", "v3", "-traces",
			"-jobs", jobs, "-o", out}, profPaths...)
		if err := run(args); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, data)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("database bytes differ between -jobs 1 and -jobs 8")
	}
}

// TestTracesRequiresV3 rejects -traces with non-v3 formats.
func TestTracesRequiresV3(t *testing.T) {
	dir := t.TempDir()
	structPath, profPaths := writeTracedInputs(t, dir, 1)
	args := append([]string{"-S", structPath, "-traces",
		"-o", filepath.Join(dir, "x.db")}, profPaths...)
	if err := run(args); err == nil {
		t.Fatal("-traces without -format v3 must fail")
	}
}

// TestUntracedInputsYieldNoTraceSections: -traces over v1-era profiles
// (no capture) writes a database without trace sections, not an error.
func TestUntracedInputsYieldNoTraceSections(t *testing.T) {
	dir := t.TempDir()
	structPath, profPaths := writeInputsN(t, dir, 2)
	out := filepath.Join(dir, "exp.db")
	args := append([]string{"-S", structPath, "-format", "v3", "-traces", "-o", out}, profPaths...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	db, err := expdb.OpenMapped(out)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tv, err := db.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.TraceRanks()) != 0 {
		t.Fatalf("untraced inputs produced trace ranks %v", tv.TraceRanks())
	}
}
