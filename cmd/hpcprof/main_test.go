package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// writeInputs produces a structure file and two rank profiles for the toy
// workload.
func writeInputs(t *testing.T, dir string) (structPath string, profPaths []string) {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	structPath = filepath.Join(dir, "toy.hpcstruct")
	sf, err := os.Create(structPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.WriteXML(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	profs, err := mpi.Run(im, mpi.Config{NRanks: 2, Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profs {
		path := filepath.Join(dir, "toy.cpprof."+string(rune('0'+p.Rank)))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		profPaths = append(profPaths, path)
	}
	return structPath, profPaths
}

func TestRunBinaryAndXML(t *testing.T) {
	dir := t.TempDir()
	structPath, profs := writeInputs(t, dir)
	for _, format := range []string{"binary", "xml"} {
		out := filepath.Join(dir, "db."+format)
		args := append([]string{"-S", structPath, "-o", out, "-format", format, "-summaries"}, profs...)
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		var e *expdb.Experiment
		if format == "binary" {
			e, err = expdb.ReadBinary(f)
		} else {
			e, err = expdb.ReadXML(f)
		}
		f.Close()
		if err != nil {
			t.Fatalf("%s read back: %v", format, err)
		}
		if e.NRanks != 2 {
			t.Fatalf("ranks = %d", e.NRanks)
		}
		if e.Tree.Reg.ByName("CYCLES (mean)") == nil {
			t.Fatal("summary columns missing")
		}
	}
}

func TestRunRejectsMismatchedBuild(t *testing.T) {
	dir := t.TempDir()
	_, profs := writeInputs(t, dir)
	// Structure document from a different workload (different build):
	// correlation must refuse rather than attribute nonsense.
	spec, err := workloads.ByName("moab")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	wrongStruct := filepath.Join(dir, "moab.hpcstruct")
	f, err := os.Create(wrongStruct)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.WriteXML(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	args := append([]string{"-S", wrongStruct, "-o", filepath.Join(dir, "bad.db")}, profs...)
	err = run(args)
	if err == nil {
		t.Fatal("mismatched build accepted")
	}
	if !strings.Contains(err.Error(), "different build") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	structPath, profs := writeInputs(t, dir)
	cases := [][]string{
		{},                 // missing -S
		{"-S", structPath}, // no profiles
		append([]string{"-S", structPath, "-format", "yaml"}, profs...), // bad format
		append([]string{"-S", filepath.Join(dir, "ghost")}, profs...),   // missing struct
		{"-S", structPath, structPath},                                  // struct file as profile
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
