package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/expdb"
	"repro/internal/faultio"
	"repro/internal/ingest"
	"repro/internal/lower"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// writeInputsN produces a structure file and nranks rank profiles for the
// toy workload.
func writeInputsN(t *testing.T, dir string, nranks int) (structPath string, profPaths []string) {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	structPath = filepath.Join(dir, "toy.hpcstruct")
	sf, err := os.Create(structPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.WriteXML(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	profs, err := mpi.Run(im, mpi.Config{NRanks: nranks, Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profs {
		path := filepath.Join(dir, fmt.Sprintf("toy-%04d.cpprof", p.Rank))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		profPaths = append(profPaths, path)
	}
	return structPath, profPaths
}

// captureStderr runs f with os.Stderr redirected to a pipe.
func captureStderr(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	ferr := f()
	w.Close()
	os.Stderr = old
	var data []byte
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		data = append(data, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	return string(data), ferr
}

// damage rewrites path with f applied to its contents.
func damage(t *testing.T, path string, f func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// The acceptance scenario: a 64-rank workload with 3 damaged rank files
// merges under -keep-going, reports exactly those 3 quarantined with the
// right failure classes, and the resulting database — provenance aside —
// is byte-identical to a merge given only the 61 good files.
func TestKeepGoingQuarantinesAndMatchesGoodOnlyMerge(t *testing.T) {
	dir := t.TempDir()
	structPath, profs := writeInputsN(t, dir, 64)

	damage(t, profs[7], func(b []byte) []byte { return faultio.Truncate(b, len(b)/2) })
	damage(t, profs[20], func(b []byte) []byte { return faultio.Corrupt(b, len(b)/2, 0x40) })
	damage(t, profs[41], func(b []byte) []byte { return []byte("not a profile at all") })
	bad := map[int]bool{7: true, 20: true, 41: true}
	var good []string
	for i, p := range profs {
		if !bad[i] {
			good = append(good, p)
		}
	}

	outAll := filepath.Join(dir, "all.db")
	outGood := filepath.Join(dir, "good.db")
	stderrText, err := captureStderr(t, func() error {
		args := append([]string{"-S", structPath, "-o", outAll, "-summaries", "-jobs", "1", "-keep-going"}, profs...)
		return run(args)
	})
	if err != nil {
		t.Fatalf("-keep-going merge failed: %v", err)
	}
	if n := strings.Count(stderrText, "hpcprof: quarantined "); n != 3 {
		t.Fatalf("quarantine lines = %d, want 3; stderr:\n%s", n, stderrText)
	}
	args := append([]string{"-S", structPath, "-o", outGood, "-summaries", "-jobs", "1"}, good...)
	if err := run(args); err != nil {
		t.Fatalf("good-only merge failed: %v", err)
	}

	readBack := func(path string) *expdb.Experiment {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		e, err := expdb.ReadBinary(f)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return e
	}
	expAll := readBack(outAll)
	expGood := readBack(outGood)

	if expAll.NRanks != 61 {
		t.Fatalf("NRanks = %d, want 61", expAll.NRanks)
	}
	p := expAll.Provenance
	if p == nil {
		t.Fatal("provenance missing from quarantined merge")
	}
	if p.Attempted != 64 || p.Merged != 61 || len(p.Bad) != 3 {
		t.Fatalf("provenance = %d/%d with %d bad", p.Merged, p.Attempted, len(p.Bad))
	}
	classes := map[string]ingest.Class{}
	for _, b := range p.Bad {
		classes[filepath.Base(b.Path)] = b.Class
	}
	if classes["toy-0007.cpprof"] != ingest.ClassTruncated {
		t.Errorf("truncated file classified %v", classes["toy-0007.cpprof"])
	}
	if classes["toy-0020.cpprof"] != ingest.ClassCorrupt {
		t.Errorf("bit-flipped file classified %v", classes["toy-0020.cpprof"])
	}
	if classes["toy-0041.cpprof"] != ingest.ClassCorrupt {
		t.Errorf("garbage file classified %v", classes["toy-0041.cpprof"])
	}
	if expGood.Provenance != nil {
		t.Fatal("clean merge grew provenance")
	}

	// Byte-for-byte equality once the provenance difference is removed:
	// the quarantined files never touched an accumulator, so summary
	// statistics were computed over exactly the 61 good ranks.
	expAll.Provenance = nil
	var a, b bytes.Buffer
	if err := expAll.WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := expGood.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("keep-going database differs from good-only database (%d vs %d bytes)", a.Len(), b.Len())
	}
}

func TestMaxBadRanksAborts(t *testing.T) {
	dir := t.TempDir()
	structPath, profs := writeInputsN(t, dir, 8)
	for _, i := range []int{1, 3, 5} {
		damage(t, profs[i], func(b []byte) []byte { return faultio.Truncate(b, len(b)/3) })
	}
	out := filepath.Join(dir, "out.db")
	// -max-bad-ranks implies -keep-going; the third failure exceeds 2.
	_, err := captureStderr(t, func() error {
		args := append([]string{"-S", structPath, "-o", out, "-jobs", "1", "-max-bad-ranks", "2"}, profs...)
		return run(args)
	})
	if err == nil {
		t.Fatal("exceeding -max-bad-ranks did not abort")
	}
	if !strings.Contains(err.Error(), "measurement files failed") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Within the budget the merge succeeds.
	stderrText, err := captureStderr(t, func() error {
		args := append([]string{"-S", structPath, "-o", out, "-jobs", "1", "-max-bad-ranks", "3"}, profs...)
		return run(args)
	})
	if err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if n := strings.Count(stderrText, "hpcprof: quarantined "); n != 3 {
		t.Fatalf("quarantine lines = %d, want 3", n)
	}
}

// Without -keep-going each failure mode aborts the merge with a clear
// error; with it, a lone bad file still fails (nothing merged).
func TestIngestErrorPaths(t *testing.T) {
	dir := t.TempDir()
	structPath, profs := writeInputsN(t, dir, 2)
	goodData, err := os.ReadFile(profs[0])
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, data []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name    string
		path    string
		errWant string
	}{
		{"nonexistent", filepath.Join(dir, "ghost.cpprof"), "ghost.cpprof"},
		{"empty", mk("empty.cpprof", nil), "reading"},
		{"bad-magic", mk("badmagic.cpprof", []byte("ZZZZ plus whatever follows")), "bad magic"},
		{"truncated-mid-tree", mk("trunc.cpprof", goodData[:len(goodData)*4/5]), "reading"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(dir, tc.name+".db")
			_, err := captureStderr(t, func() error {
				return run([]string{"-S", structPath, "-o", out, tc.path})
			})
			if err == nil {
				t.Fatal("bad input accepted")
			}
			if !strings.Contains(err.Error(), tc.errWant) {
				t.Fatalf("error %q does not mention %q", err, tc.errWant)
			}
			// With -keep-going and no good files at all, the merge still
			// fails — an empty database is never silently produced.
			_, err = captureStderr(t, func() error {
				return run([]string{"-S", structPath, "-o", out, "-keep-going", tc.path})
			})
			if err == nil || !strings.Contains(err.Error(), "quarantined") {
				t.Fatalf("all-bad keep-going merge: %v", err)
			}
		})
	}
}
