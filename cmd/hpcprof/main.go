// Command hpcprof correlates raw call path profiles with a structure file,
// producing the experiment database hpcviewer presents — HPCToolkit's
// hpcprof. Profiles from multiple ranks are merged; per-scope summary
// statistics (mean/min/max/stddev across ranks) can be added, implementing
// the scalable finalization step of the paper's Section IV/VII.
//
// At scale some measurement files arrive damaged — truncated by killed
// jobs, corrupted by flaky filesystems, unreadable after lost blocks. With
// -keep-going those ranks are quarantined instead of aborting the merge:
// each is reported on stderr, the database records the outcome as
// provenance ("merged 1021/1024 ranks"), and summary statistics are
// computed over the ranks actually merged. -max-bad-ranks bounds the
// damage tolerated before giving up.
//
// Usage:
//
//	hpcprof -S s3d.hpcstruct [-format binary|v3|xml] [-summaries] \
//	        [-traces] [-keep-going] [-max-bad-ranks N] \
//	        -o s3d.db measurements/s3d-*.cpprof
//
// hpcprof is also the pprof bridge (DESIGN.md §16). -pprof imports a
// gzipped Go runtime/pprof profile (CPU, heap, mutex, ...) through the
// format-neutral source boundary and writes a normal experiment database
// (CPDB3 by default), so every view, diff, catalog and server path works
// on real-world profiles unchanged; -export-pprof opens an existing
// database of any format and writes it back out as a pprof profile:
//
//	hpcprof -pprof cpu.pb.gz -o cpu.db
//	hpcprof -export-pprof cpu.pb.gz cpu.db
//
// With -traces (v3 output only), the trace sections hpcrun -trace captured
// are correlated and streamed into the database with zoom pyramids baked
// at write time. The trace pass re-reads each measurement file
// sequentially in rank order and streams records straight to the output,
// so peak memory stays O(one chunk) no matter how many events were
// captured, and the bytes are identical for any -jobs value.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/expdb"
	"repro/internal/ingest"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/pprofio"
	"repro/internal/profile"
	"repro/internal/source"
	"repro/internal/structfile"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hpcprof:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("hpcprof", flag.ContinueOnError)
	dflags := diag.Register(fs)
	structPath := fs.String("S", "", "structure file from hpcstruct (required)")
	out := fs.String("o", "experiment.db", "output database path")
	format := fs.String("format", "binary", "database format: binary (v2), v3 (mappable zero-copy) or xml")
	summaries := fs.Bool("summaries", false, "add mean/min/max/stddev summary columns across ranks")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "parallel merge workers (1 = sequential)")
	traceOut := fs.Bool("traces", false, "stream captured trace sections into the database with zoom pyramids (v3 format only)")
	keepGoing := fs.Bool("keep-going", false, "quarantine corrupt/truncated/unreadable measurement files instead of aborting")
	maxBad := fs.Int("max-bad-ranks", -1, "abort once more than this many files are quarantined (-1 = unlimited; setting it implies -keep-going)")
	pprofIn := fs.String("pprof", "", "import this gzipped pprof profile instead of hpcrun measurements (no -S; writes CPDB3 unless -format says otherwise)")
	pprofOut := fs.String("export-pprof", "", "export an existing experiment database (the positional argument) to a gzipped pprof profile at this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	formatSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "format" {
			formatSet = true
		}
	})
	if *pprofOut != "" {
		if *pprofIn != "" {
			return fmt.Errorf("-pprof and -export-pprof are mutually exclusive")
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("-export-pprof needs exactly one database argument, got %d", fs.NArg())
		}
		return exportPprof(fs.Arg(0), *pprofOut)
	}
	if *pprofIn != "" {
		if *structPath != "" {
			return fmt.Errorf("-S is not used with -pprof (pprof profiles are already symbolized)")
		}
		if fs.NArg() != 0 {
			return fmt.Errorf("-pprof takes no positional arguments (one profile per database)")
		}
		if *traceOut {
			return fmt.Errorf("-traces requires hpcrun measurements")
		}
		if !formatSet {
			*format = "v3"
		}
		if *format != "binary" && *format != "v3" && *format != "xml" {
			return fmt.Errorf("unknown format %q", *format)
		}
		return importPprof(*pprofIn, *out, *format)
	}
	if *structPath == "" {
		return fmt.Errorf("missing -S structure file")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no profile files given")
	}
	if *format != "binary" && *format != "v3" && *format != "xml" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *maxBad >= 0 {
		*keepGoing = true
	}
	if *traceOut && *format != "v3" {
		return fmt.Errorf("-traces requires -format v3")
	}
	stopDiag, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if derr := stopDiag(); derr != nil && err == nil {
			err = derr
		}
	}()

	sf, err := os.Open(*structPath)
	if err != nil {
		return err
	}
	doc, err := structfile.ReadXML(sf)
	sf.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *structPath, err)
	}

	res, report, err := mergeFiles(context.Background(), doc, fs.Args(), *jobs, *keepGoing, *maxBad)
	for _, bad := range report.Bad {
		fmt.Fprintf(os.Stderr, "hpcprof: quarantined %s\n", bad)
	}
	if err != nil {
		return err
	}
	if *summaries && res.NRanks > 1 {
		for _, d := range res.Tree.Reg.Columns() {
			if d.Kind != metric.Raw {
				continue
			}
			if err := res.AddSummaries(d.ID, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev); err != nil {
				return err
			}
		}
	}
	exp := expdb.FromMerge(res)
	if !report.Clean() {
		exp.Provenance = report
	}
	if *traceOut {
		if err := attachTraces(doc, exp, fs.Args(), report); err != nil {
			return err
		}
	}

	// Atomic publish: temp file + fsync + rename, so an interrupted merge
	// never leaves a torn database under the output name (a catalog spool
	// would otherwise happily ingest it).
	err = expdb.WriteFileAtomic(*out, func(f *os.File) error {
		switch *format {
		case "xml":
			return exp.WriteXML(f)
		case "v3":
			return exp.WriteBinaryV3(f)
		default:
			return exp.WriteBinary(f)
		}
	})
	if err != nil {
		return err
	}
	if report.Clean() {
		fmt.Printf("wrote %s (%d ranks, %d scopes, %d metric columns)\n",
			*out, res.NRanks, res.Tree.NumNodes(), res.Tree.Reg.Len())
	} else {
		fmt.Printf("wrote %s (%s, %d scopes, %d metric columns)\n",
			*out, report.Summary(), res.Tree.NumNodes(), res.Tree.Reg.Len())
	}
	return nil
}

// importPprof builds an experiment database from one pprof profile via
// the format-neutral source boundary, publishing it through the same
// atomic-write path as a measurement merge.
func importPprof(in, out, format string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	im, err := pprofio.Import(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", in, err)
	}
	tree, err := source.BuildTree(im)
	if err != nil {
		return fmt.Errorf("importing %s: %w", in, err)
	}
	exp := &expdb.Experiment{Program: im.Program(), NRanks: im.NRanks(), Tree: tree}
	err = expdb.WriteFileAtomic(out, func(f *os.File) error {
		switch format {
		case "xml":
			return exp.WriteXML(f)
		case "binary":
			return exp.WriteBinary(f)
		default:
			return exp.WriteBinaryV3(f)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (pprof import, %d scopes, %d metric columns)\n",
		out, tree.NumNodes(), tree.Reg.Len())
	return nil
}

// exportPprof round-trips an existing database (any format) out to pprof.
func exportPprof(dbPath, out string) error {
	sn, err := engine.Open(dbPath)
	if err != nil {
		return err
	}
	defer sn.Release()
	// A v3 database faults metric columns on demand; the exporter walks
	// every raw Base value, so fault everything up front.
	if err := sn.FaultAll(); err != nil {
		return fmt.Errorf("loading %s: %w", dbPath, err)
	}
	err = expdb.WriteFileAtomic(out, func(f *os.File) error {
		return pprofio.Export(sn.Experiment(), f)
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (pprof export of %s)\n", out, dbPath)
	return nil
}

// attachTraces is the trace correlation pass: for each good measurement
// file (thread 0 only — trace sections are keyed by rank), it re-reads
// the call path trie, resolves it against the merged tree in lookup-only
// mode, and installs a streaming TraceRank whose Scan re-reads the file's
// trace section with call-path ids rewritten from trie preorder indices
// to structural tree rows. The pass is sequential over ranks in ascending
// order, so trace bytes never depend on -jobs. Peak memory is one remap
// table plus one read chunk — never O(events).
func attachTraces(doc *structfile.Doc, exp *expdb.Experiment, paths []string, report *ingest.Report) error {
	bad := map[string]bool{}
	for _, b := range report.Bad {
		bad[b.Path] = true
	}
	rows := exp.PreorderRows()
	seen := map[int]string{}
	var trs []expdb.TraceRank
	for _, path := range paths {
		if bad[path] {
			continue
		}
		tr, ok, err := traceRankOf(doc, exp, rows, path)
		if err != nil {
			return fmt.Errorf("trace pass: %s: %w", path, err)
		}
		if !ok {
			continue
		}
		if prev, dup := seen[tr.Rank]; dup {
			return fmt.Errorf("trace pass: rank %d traced by both %s and %s", tr.Rank, prev, path)
		}
		seen[tr.Rank] = path
		trs = append(trs, tr)
	}
	sort.Slice(trs, func(i, j int) bool { return trs[i].Rank < trs[j].Rank })
	exp.TraceRanks = trs
	return nil
}

// traceRankOf builds one rank's streaming trace source from its
// measurement file; ok is false when the file carries no trace (v1 file,
// trace capture off, or a non-zero thread).
func traceRankOf(doc *structfile.Doc, exp *expdb.Experiment, rows map[*core.Node]uint32, path string) (expdb.TraceRank, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return expdb.TraceRank{}, false, err
	}
	p, err := profile.Read(f)
	f.Close()
	if err != nil {
		return expdb.TraceRank{}, false, err
	}
	if p.Thread != 0 {
		return expdb.TraceRank{}, false, nil
	}
	f, err = os.Open(path)
	if err != nil {
		return expdb.TraceRank{}, false, err
	}
	count, lastT, err := profile.ScanTrace(f, nil)
	f.Close()
	if err != nil {
		return expdb.TraceRank{}, false, err
	}
	if count == 0 {
		return expdb.TraceRank{}, false, nil
	}
	frames, err := correlate.ResolveFrames(doc, p, exp.Tree)
	if err != nil {
		return expdb.TraceRank{}, false, err
	}
	// Trace CPIDs in the file are trie preorder indices; remap each to
	// its structural tree row. Untraceable frames (empty, never sampled)
	// get a sentinel that errors if a record actually references one.
	nodes := p.PreorderNodes()
	const noRow = ^uint32(0)
	remap := make([]uint32, len(nodes))
	for i, n := range nodes {
		remap[i] = noRow
		if fr := frames[n]; fr != nil {
			if row, ok := rows[fr]; ok {
				remap[i] = row
			}
		}
	}
	return expdb.TraceRank{
		Rank:  p.Rank,
		Count: count,
		LastT: lastT,
		Scan: func(emit func(trace.Rec) error) error {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			_, _, err = profile.ScanTrace(f, func(r trace.Rec) error {
				if int(r.CPID) >= len(remap) || remap[r.CPID] == noRow {
					return fmt.Errorf("trace record references untraceable frame %d in %s", r.CPID, path)
				}
				r.CPID = remap[r.CPID]
				return emit(r)
			})
			return err
		},
	}, true, nil
}

// mergeFiles streams the measurement files into jobs parallel shard
// accumulators — each worker reads, merges and discards one file of its
// contiguous shard at a time, so arbitrarily many ranks fit in memory (the
// Section IX concern) — then combines the shards with a pairwise tree
// reduction. Contiguous shards keep the result identical to a sequential
// merge regardless of the worker count, and a quarantined file is skipped
// before it touches an accumulator, so the result with -keep-going is
// byte-identical to merging only the good files.
//
// The returned Report is always valid, including on error, so callers can
// show what was quarantined before the abort.
func mergeFiles(ctx context.Context, doc *structfile.Doc, paths []string, jobs int, keepGoing bool, maxBad int) (*merge.Result, *ingest.Report, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(paths) {
		jobs = len(paths)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	report := &ingest.Report{Attempted: len(paths)}
	var mu sync.Mutex
	quarantine := func(path string, rank int, off int64, err error) bool {
		bad := ingest.BadRank{
			Path: path, Rank: rank, Offset: off,
			Class: ingest.Classify(err), Message: err.Error(),
		}
		mu.Lock()
		report.Quarantine(bad)
		tooMany := maxBad >= 0 && len(report.Bad) > maxBad
		mu.Unlock()
		return tooMany
	}

	accs := make([]*merge.Accumulator, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		accs[w] = merge.NewAccumulator(doc)
		lo, hi := len(paths)*w/jobs, len(paths)*(w+1)/jobs
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for _, path := range paths[lo:hi] {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				rank, off, err := processFile(accs[w], path)
				if err == nil {
					continue
				}
				if !keepGoing {
					errs[w] = err
					cancel()
					return
				}
				if quarantine(path, rank, off, err) {
					errs[w] = fmt.Errorf("more than %d measurement files failed (-max-bad-ranks); last: %w", maxBad, err)
					cancel()
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	report.Sort()
	// Prefer a real failure over the cancellation it triggered in the
	// other workers.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if err != context.Canceled && err != context.DeadlineExceeded {
			return nil, report, err
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return nil, report, first
	}
	report.Merged = len(paths) - len(report.Bad)
	if report.Merged == 0 {
		return nil, report, fmt.Errorf("all %d measurement files were quarantined", len(paths))
	}
	acc, err := merge.Combine(accs)
	if err != nil {
		return nil, report, err
	}
	res, err := acc.Finish()
	if err != nil {
		return nil, report, err
	}
	return res, report, nil
}

// processFile reads and folds one measurement file, containing panics so
// one poisoned file cannot crash the whole merge. rank is -1 until the
// header parsed; off is the approximate byte offset reached (read-buffer
// granularity), -1 if the file never opened.
func processFile(acc *merge.Accumulator, path string) (rank int, off int64, err error) {
	rank, off = -1, -1
	defer func() {
		if r := recover(); r != nil {
			err = &ingest.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	f, err := os.Open(path)
	if err != nil {
		return rank, off, err
	}
	defer f.Close()
	cr := &ingest.CountReader{R: f}
	p, err := profile.Read(cr)
	if err != nil {
		return rank, cr.N, fmt.Errorf("reading %s: %w", path, err)
	}
	rank = p.Rank
	if err := acc.Add(p); err != nil {
		return rank, cr.N, fmt.Errorf("merging %s: %w", path, err)
	}
	return rank, cr.N, nil
}
