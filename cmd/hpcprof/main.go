// Command hpcprof correlates raw call path profiles with a structure file,
// producing the experiment database hpcviewer presents — HPCToolkit's
// hpcprof. Profiles from multiple ranks are merged; per-scope summary
// statistics (mean/min/max/stddev across ranks) can be added, implementing
// the scalable finalization step of the paper's Section IV/VII.
//
// Usage:
//
//	hpcprof -S s3d.hpcstruct [-format binary|xml] [-summaries] \
//	        -o s3d.db measurements/s3d-*.cpprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/expdb"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/profile"
	"repro/internal/structfile"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hpcprof:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hpcprof", flag.ContinueOnError)
	structPath := fs.String("S", "", "structure file from hpcstruct (required)")
	out := fs.String("o", "experiment.db", "output database path")
	format := fs.String("format", "binary", "database format: binary or xml")
	summaries := fs.Bool("summaries", false, "add mean/min/max/stddev summary columns across ranks")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "parallel merge workers (1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *structPath == "" {
		return fmt.Errorf("missing -S structure file")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no profile files given")
	}
	if *format != "binary" && *format != "xml" {
		return fmt.Errorf("unknown format %q", *format)
	}

	sf, err := os.Open(*structPath)
	if err != nil {
		return err
	}
	doc, err := structfile.ReadXML(sf)
	sf.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *structPath, err)
	}

	res, err := mergeFiles(doc, fs.Args(), *jobs)
	if err != nil {
		return err
	}
	if *summaries && res.NRanks > 1 {
		for _, d := range res.Tree.Reg.Columns() {
			if d.Kind != metric.Raw {
				continue
			}
			if err := res.AddSummaries(d.ID, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev); err != nil {
				return err
			}
		}
	}
	exp := expdb.FromMerge(res)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if *format == "xml" {
		err = exp.WriteXML(f)
	} else {
		err = exp.WriteBinary(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d ranks, %d scopes, %d metric columns)\n",
		*out, res.NRanks, res.Tree.NumNodes(), res.Tree.Reg.Len())
	return nil
}

// mergeFiles streams the measurement files into jobs parallel shard
// accumulators — each worker reads, merges and discards one file of its
// contiguous shard at a time, so arbitrarily many ranks fit in memory (the
// Section IX concern) — then combines the shards with a pairwise tree
// reduction. Contiguous shards keep the result identical to a sequential
// merge regardless of the worker count.
func mergeFiles(doc *structfile.Doc, paths []string, jobs int) (*merge.Result, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(paths) {
		jobs = len(paths)
	}
	accs := make([]*merge.Accumulator, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		accs[w] = merge.NewAccumulator(doc)
		lo, hi := len(paths)*w/jobs, len(paths)*(w+1)/jobs
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for _, path := range paths[lo:hi] {
				p, err := readProfile(path)
				if err != nil {
					errs[w] = err
					return
				}
				if err := accs[w].Add(p); err != nil {
					errs[w] = fmt.Errorf("merging %s: %w", path, err)
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	acc, err := merge.Combine(accs)
	if err != nil {
		return nil, err
	}
	return acc.Finish()
}

func readProfile(path string) (*profile.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := profile.Read(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return p, nil
}
