// Command hpcprof correlates raw call path profiles with a structure file,
// producing the experiment database hpcviewer presents — HPCToolkit's
// hpcprof. Profiles from multiple ranks are merged; per-scope summary
// statistics (mean/min/max/stddev across ranks) can be added, implementing
// the scalable finalization step of the paper's Section IV/VII.
//
// At scale some measurement files arrive damaged — truncated by killed
// jobs, corrupted by flaky filesystems, unreadable after lost blocks. With
// -keep-going those ranks are quarantined instead of aborting the merge:
// each is reported on stderr, the database records the outcome as
// provenance ("merged 1021/1024 ranks"), and summary statistics are
// computed over the ranks actually merged. -max-bad-ranks bounds the
// damage tolerated before giving up.
//
// Usage:
//
//	hpcprof -S s3d.hpcstruct [-format binary|v3|xml] [-summaries] \
//	        [-keep-going] [-max-bad-ranks N] \
//	        -o s3d.db measurements/s3d-*.cpprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/diag"
	"repro/internal/expdb"
	"repro/internal/ingest"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/profile"
	"repro/internal/structfile"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hpcprof:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("hpcprof", flag.ContinueOnError)
	dflags := diag.Register(fs)
	structPath := fs.String("S", "", "structure file from hpcstruct (required)")
	out := fs.String("o", "experiment.db", "output database path")
	format := fs.String("format", "binary", "database format: binary (v2), v3 (mappable zero-copy) or xml")
	summaries := fs.Bool("summaries", false, "add mean/min/max/stddev summary columns across ranks")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "parallel merge workers (1 = sequential)")
	keepGoing := fs.Bool("keep-going", false, "quarantine corrupt/truncated/unreadable measurement files instead of aborting")
	maxBad := fs.Int("max-bad-ranks", -1, "abort once more than this many files are quarantined (-1 = unlimited; setting it implies -keep-going)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *structPath == "" {
		return fmt.Errorf("missing -S structure file")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no profile files given")
	}
	if *format != "binary" && *format != "v3" && *format != "xml" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *maxBad >= 0 {
		*keepGoing = true
	}
	stopDiag, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if derr := stopDiag(); derr != nil && err == nil {
			err = derr
		}
	}()

	sf, err := os.Open(*structPath)
	if err != nil {
		return err
	}
	doc, err := structfile.ReadXML(sf)
	sf.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *structPath, err)
	}

	res, report, err := mergeFiles(context.Background(), doc, fs.Args(), *jobs, *keepGoing, *maxBad)
	for _, bad := range report.Bad {
		fmt.Fprintf(os.Stderr, "hpcprof: quarantined %s\n", bad)
	}
	if err != nil {
		return err
	}
	if *summaries && res.NRanks > 1 {
		for _, d := range res.Tree.Reg.Columns() {
			if d.Kind != metric.Raw {
				continue
			}
			if err := res.AddSummaries(d.ID, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev); err != nil {
				return err
			}
		}
	}
	exp := expdb.FromMerge(res)
	if !report.Clean() {
		exp.Provenance = report
	}

	// Atomic publish: temp file + fsync + rename, so an interrupted merge
	// never leaves a torn database under the output name (a catalog spool
	// would otherwise happily ingest it).
	err = expdb.WriteFileAtomic(*out, func(f *os.File) error {
		switch *format {
		case "xml":
			return exp.WriteXML(f)
		case "v3":
			return exp.WriteBinaryV3(f)
		default:
			return exp.WriteBinary(f)
		}
	})
	if err != nil {
		return err
	}
	if report.Clean() {
		fmt.Printf("wrote %s (%d ranks, %d scopes, %d metric columns)\n",
			*out, res.NRanks, res.Tree.NumNodes(), res.Tree.Reg.Len())
	} else {
		fmt.Printf("wrote %s (%s, %d scopes, %d metric columns)\n",
			*out, report.Summary(), res.Tree.NumNodes(), res.Tree.Reg.Len())
	}
	return nil
}

// mergeFiles streams the measurement files into jobs parallel shard
// accumulators — each worker reads, merges and discards one file of its
// contiguous shard at a time, so arbitrarily many ranks fit in memory (the
// Section IX concern) — then combines the shards with a pairwise tree
// reduction. Contiguous shards keep the result identical to a sequential
// merge regardless of the worker count, and a quarantined file is skipped
// before it touches an accumulator, so the result with -keep-going is
// byte-identical to merging only the good files.
//
// The returned Report is always valid, including on error, so callers can
// show what was quarantined before the abort.
func mergeFiles(ctx context.Context, doc *structfile.Doc, paths []string, jobs int, keepGoing bool, maxBad int) (*merge.Result, *ingest.Report, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(paths) {
		jobs = len(paths)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	report := &ingest.Report{Attempted: len(paths)}
	var mu sync.Mutex
	quarantine := func(path string, rank int, off int64, err error) bool {
		bad := ingest.BadRank{
			Path: path, Rank: rank, Offset: off,
			Class: ingest.Classify(err), Message: err.Error(),
		}
		mu.Lock()
		report.Quarantine(bad)
		tooMany := maxBad >= 0 && len(report.Bad) > maxBad
		mu.Unlock()
		return tooMany
	}

	accs := make([]*merge.Accumulator, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		accs[w] = merge.NewAccumulator(doc)
		lo, hi := len(paths)*w/jobs, len(paths)*(w+1)/jobs
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for _, path := range paths[lo:hi] {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				rank, off, err := processFile(accs[w], path)
				if err == nil {
					continue
				}
				if !keepGoing {
					errs[w] = err
					cancel()
					return
				}
				if quarantine(path, rank, off, err) {
					errs[w] = fmt.Errorf("more than %d measurement files failed (-max-bad-ranks); last: %w", maxBad, err)
					cancel()
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	report.Sort()
	// Prefer a real failure over the cancellation it triggered in the
	// other workers.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if err != context.Canceled && err != context.DeadlineExceeded {
			return nil, report, err
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return nil, report, first
	}
	report.Merged = len(paths) - len(report.Bad)
	if report.Merged == 0 {
		return nil, report, fmt.Errorf("all %d measurement files were quarantined", len(paths))
	}
	acc, err := merge.Combine(accs)
	if err != nil {
		return nil, report, err
	}
	res, err := acc.Finish()
	if err != nil {
		return nil, report, err
	}
	return res, report, nil
}

// processFile reads and folds one measurement file, containing panics so
// one poisoned file cannot crash the whole merge. rank is -1 until the
// header parsed; off is the approximate byte offset reached (read-buffer
// granularity), -1 if the file never opened.
func processFile(acc *merge.Accumulator, path string) (rank int, off int64, err error) {
	rank, off = -1, -1
	defer func() {
		if r := recover(); r != nil {
			err = &ingest.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	f, err := os.Open(path)
	if err != nil {
		return rank, off, err
	}
	defer f.Close()
	cr := &ingest.CountReader{R: f}
	p, err := profile.Read(cr)
	if err != nil {
		return rank, cr.N, fmt.Errorf("reading %s: %w", path, err)
	}
	rank = p.Rank
	if err := acc.Add(p); err != nil {
		return rank, cr.N, fmt.Errorf("merging %s: %w", path, err)
	}
	return rank, cr.N, nil
}
