package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"testing"

	"repro/internal/engine"
)

// TestPprofBridge drives the CLI end to end: import a real Go heap
// profile, open the resulting CPDB3, export it back to pprof, re-import,
// and check the two databases are byte-identical (the lossless round
// trip).
func TestPprofBridge(t *testing.T) {
	dir := t.TempDir()
	pb := filepath.Join(dir, "heap.pb.gz")
	// Allocate enough that the heap profiler (one sample per ~512 KiB)
	// certainly recorded stacks.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1<<20))
	}
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.WriteHeapProfile(&buf); err != nil {
		t.Fatal(err)
	}
	_ = sink
	if err := os.WriteFile(pb, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	db1 := filepath.Join(dir, "heap.db")
	if err := run([]string{"-pprof", pb, "-o", db1}); err != nil {
		t.Fatal(err)
	}
	sn, err := engine.Open(db1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.Tree().Root.Children) == 0 {
		sn.Release()
		t.Fatal("imported database has no scopes")
	}
	sn.Release()

	pb2 := filepath.Join(dir, "heap2.pb.gz")
	if err := run([]string{"-export-pprof", pb2, db1}); err != nil {
		t.Fatal(err)
	}
	db2 := filepath.Join(dir, "heap2.db")
	if err := run([]string{"-pprof", pb2, "-o", db2}); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(db1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(db2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("pprof round-trip through the CLI drifted the database bytes")
	}

	// Flag validation.
	for _, bad := range [][]string{
		{"-pprof", pb, "-S", "x.hpcstruct", "-o", db1},
		{"-pprof", pb, "-traces", "-o", db1},
		{"-pprof", pb, "-o", db1, "extra.cpprof"},
		{"-pprof", pb, "-export-pprof", pb2, "-o", db1},
		{"-export-pprof", pb2},
	} {
		if err := run(bad); err == nil {
			t.Errorf("run(%v) succeeded, want error", bad)
		}
	}
}
