// Command experiments regenerates every quantitative comparison recorded
// in EXPERIMENTS.md: for each figure and claim of the paper it runs the
// corresponding workload through the full pipeline and prints the paper's
// value next to the measured one. Run with:
//
//	go run ./cmd/experiments
package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/expdb"
	"repro/internal/imbalance"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/objview"
	"repro/internal/profile"
	"repro/internal/sampler"
	"repro/internal/scaling"
	"repro/internal/sim"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func row(id, what, paper, measured string) {
	fmt.Printf("%-12s %-52s %14s %14s\n", id, what, paper, measured)
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func run() error {
	fmt.Printf("%-12s %-52s %14s %14s\n", "experiment", "quantity", "paper", "measured")
	fmt.Println(string(bytes.Repeat([]byte("-"), 96)))

	if err := fig2(); err != nil {
		return err
	}
	s3dTree, err := seqTree("s3d")
	if err != nil {
		return err
	}
	if err := fig3(s3dTree); err != nil {
		return err
	}
	if err := fig6(s3dTree); err != nil {
		return err
	}
	moabTree, err := seqTree("moab")
	if err != nil {
		return err
	}
	if err := fig4(moabTree); err != nil {
		return err
	}
	if err := fig5(moabTree); err != nil {
		return err
	}
	if err := fig7(); err != nil {
		return err
	}
	if err := scalingLoss(); err != nil {
		return err
	}
	if err := overhead(); err != nil {
		return err
	}
	if err := objectView(); err != nil {
		return err
	}
	return formats(moabTree)
}

// objectView checks that the Section IX object-level presentation agrees
// with the source-level attribution: the hottest procedure by
// per-instruction cycles is the chemistry kernel.
func objectView() error {
	spec, err := workloads.ByName("s3d")
	if err != nil {
		return err
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		return err
	}
	s, err := sampler.New(spec.Name, 0, 0, sampler.DefaultEvents(spec.Period))
	if err != nil {
		return err
	}
	vm, err := sim.New(im, sim.Config{Observer: s})
	if err != nil {
		return err
	}
	if err := vm.Run(); err != nil {
		return err
	}
	v, err := objview.New(im, []*profile.Profile{s.Profile()})
	if err != nil {
		return err
	}
	top := v.HotProcs(0, 1)
	name := "(none)"
	if len(top) > 0 {
		name = top[0].Name
	}
	row("E-OBJ", "object-level hottest procedure (§IX)", "chemistry", name)
	return nil
}

func seqTree(name string) (*core.Tree, error) {
	spec, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		return nil, err
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		return nil, err
	}
	s, err := sampler.New(spec.Name, 0, 0, sampler.DefaultEvents(spec.Period))
	if err != nil {
		return nil, err
	}
	vm, err := sim.New(im, sim.Config{Observer: s})
	if err != nil {
		return nil, err
	}
	if err := vm.Run(); err != nil {
		return nil, err
	}
	return correlate.Correlate(doc, s.Profile())
}

func fig2() error {
	t := core.Fig1Tree()
	// Verify every pair of Figure 2a and report a single exact/deviation
	// status; the golden tests in internal/core check all three views in
	// detail.
	checks := []struct {
		path       []string
		incl, excl float64
	}{
		{[]string{"m"}, 10, 0},
		{[]string{"m", "f"}, 7, 1},
		{[]string{"m", "f", "g"}, 6, 1},
		{[]string{"m", "f", "g", "g"}, 5, 1},
		{[]string{"m", "f", "g", "g", "h"}, 4, 4},
		{[]string{"m", "g"}, 3, 3},
	}
	exact := true
	for _, c := range checks {
		n := t.FindPath(c.path...)
		if n == nil || n.Incl.Get(0) != c.incl || n.Excl.Get(0) != c.excl {
			exact = false
		}
	}
	status := "exact"
	if !exact {
		status = "DEVIATES"
	}
	row("E-FIG2", "Figure 2a/2b/2c worked example (36 cost pairs)", "exact", status)
	return nil
}

func fig3(t *core.Tree) error {
	cyc := t.Reg.ByName("CYCLES").ID
	react := t.FindFirst("chemkin_m_reaction_rate_")
	row("E-FIG3", "S3D: reaction-rate inclusive cycles",
		"41.4%", pct(react.Incl.Get(cyc)/t.Total(cyc)))
	loop := t.FindFirst("loop at integrate_erk.f90: 82")
	row("E-FIG3", "S3D: RK loop (integrate_erk.f90:82) inclusive",
		"97.9%", pct(loop.Incl.Get(cyc)/t.Total(cyc)))
	row("E-FIG3", "S3D: RK loop exclusive",
		"0.0%", pct(loop.Excl.Get(cyc)/t.Total(cyc)))
	path := core.HotPath(t.Root, cyc, 0.5)
	end := path[len(path)-1]
	ends := "chemkin stmt"
	if end.File.String() != "chemkin_m.f90" {
		ends = "WRONG: " + end.Label()
	}
	row("E-FIG3", "S3D: hot path endpoint", "chemkin rates", ends)
	return nil
}

func fig6(t *core.Tree) error {
	waste, err := t.Reg.AddDerived("fpwaste", "$0*4 - $1")
	if err != nil {
		return err
	}
	releff, err := t.Reg.AddDerived("releff", "$1 / ($0*4)")
	if err != nil {
		return err
	}
	if err := t.ApplyDerivedTree(); err != nil {
		return err
	}
	fv := core.BuildFlatView(t)
	for _, lm := range fv.Roots {
		if err := core.ApplyDerived(t.Reg, lm); err != nil {
			return err
		}
	}
	var loops []*core.Node
	for _, s := range core.FlattenN(fv.Roots, 3) {
		if s.Kind == core.KindLoop {
			loops = append(loops, s)
		}
	}
	core.SortScopes(loops, core.SortSpec{MetricID: waste.ID, Exclusive: true})
	top := loops[0]
	name := "flux-diffusion loop"
	if top.File.String() != "transport_m.f90" {
		name = "WRONG: " + top.Label()
	}
	row("E-FIG6", "S3D: top FP-waste scope", "flux-diff loop", name)
	row("E-FIG6", "S3D: its share of total waste",
		"13.5%", pct(top.Excl.Get(waste.ID)/t.Root.Incl.Get(waste.ID)))
	row("E-FIG6", "S3D: its relative efficiency",
		"6%", pct(top.Excl.Get(releff.ID)))
	for _, l := range loops {
		if l.File.String() == "exp_avx.c" {
			row("E-FIG6", "S3D: exp-library loop efficiency",
				"39%", pct(l.Excl.Get(releff.ID)))
		}
	}
	return nil
}

func fig4(t *core.Tree) error {
	l1 := t.Reg.ByName("L1_DCM").ID
	cv := core.BuildCallersView(t)
	cv.ExpandAll()
	for _, r := range cv.Roots {
		if r.Name.String() != "_intel_fast_memset.A" {
			continue
		}
		row("E-FIG4", "MOAB: memset share of all L1 misses",
			"9.7%", pct(r.Incl.Get(l1)/t.Total(l1)))
		row("E-FIG4", "MOAB: memset caller contexts",
			"2", fmt.Sprintf("%d", len(r.Children)))
		kids := append([]*core.Node(nil), r.Children...)
		core.SortScopes(kids, core.SortSpec{MetricID: l1})
		row("E-FIG4", "MOAB: share via Sequence_data::create",
			"9.6%", pct(kids[0].Incl.Get(l1)/t.Total(l1)))
	}
	return nil
}

func fig5(t *core.Tree) error {
	cyc := t.Reg.ByName("CYCLES").ID
	l1 := t.Reg.ByName("L1_DCM").ID
	fv := core.BuildFlatView(t)
	var gc *core.Node
	for _, lm := range fv.Roots {
		core.Walk(lm, func(n *core.Node) bool {
			if n.Kind == core.KindProc && n.Name.String() == "MBCore::get_coords" {
				gc = n
				return false
			}
			return true
		})
	}
	var loop *core.Node
	for _, c := range gc.Children {
		if c.Kind == core.KindLoop {
			loop = c
		}
	}
	row("E-FIG5", "MOAB: get_coords loop share of cycles",
		"18.9%", pct(loop.Incl.Get(cyc)/t.Total(cyc)))
	var compare *core.Node
	core.Walk(gc, func(n *core.Node) bool {
		if n.Kind == core.KindAlien && n.Name.String() == "SequenceCompare" {
			compare = n
			return false
		}
		return true
	})
	row("E-FIG5", "MOAB: inlined compare share of L1 misses",
		"19.8%", pct(compare.Incl.Get(l1)/t.Total(l1)))
	return nil
}

func runMPI(name string, ranks int) (*structfile.Doc, []*profile.Profile, *merge.Result, error) {
	spec, err := workloads.ByName(name)
	if err != nil {
		return nil, nil, nil, err
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		return nil, nil, nil, err
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		return nil, nil, nil, err
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: ranks, Params: spec.Params,
		Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := merge.Profiles(doc, profs)
	return doc, profs, res, err
}

func fig7() error {
	const ranks = 32
	doc, profs, res, err := runMPI("pflotran", ranks)
	if err != nil {
		return err
	}
	idle := res.Tree.Reg.ByName("IDLE").ID
	path := core.HotPath(res.Tree.Root, idle, 0.5)
	hits := "loop@384 + mpi_wait"
	var sawLoop, sawWait bool
	for _, n := range path {
		if n.Label() == "loop at timestepper.F90: 384" {
			sawLoop = true
		}
		if n.Name.String() == "mpi_wait" {
			sawWait = true
		}
	}
	if !sawLoop || !sawWait {
		hits = "WRONG"
	}
	row("E-FIG7", "PFLOTRAN: idleness hot path (32 ranks)", "loop@384", hits)
	rep, err := imbalance.Analyze(doc, profs,
		[]string{"main", "stepper_run", "loop at timestepper.F90: 384", "flow_solve"}, "CYCLES", 10)
	if err != nil {
		return err
	}
	row("E-FIG7", "PFLOTRAN: flow_solve imbalance factor (max/mean-1)",
		"uneven", fmt.Sprintf("%.2f", rep.ImbalanceFactor()))
	row("E-FIG7", "PFLOTRAN: per-rank work spread (max/min)",
		"scattered", fmt.Sprintf("%.2fx", rep.Stats.Max/rep.Stats.Min))
	return nil
}

func scalingLoss() error {
	_, _, small, err := runMPI("pflotran", 4)
	if err != nil {
		return err
	}
	_, _, big, err := runMPI("pflotran", 16)
	if err != nil {
		return err
	}
	res, err := scaling.Analyze(small.Tree, big.Tree, scaling.Config{
		Metric: "CYCLES", Mode: scaling.Weak, RanksSmall: 4, RanksBig: 16,
	})
	if err != nil {
		return err
	}
	row("E-SCALE", "PFLOTRAN weak-scaling loss 4->16 ranks (§VI-A)",
		"localized", pct(res.LossFraction()))
	return nil
}

// nopObserver models free-running hardware counters: events are counted
// regardless of whether a profiler consumes them, so the profiler's own
// overhead is measured against this baseline, exactly as the paper's
// "unprofiled" runs still have counting hardware.
type nopObserver struct{}

func (nopObserver) OnCost(*sim.VM, int32, *sim.Counters) {}

func overhead() error {
	spec, err := workloads.ByName("s3d")
	if err != nil {
		return err
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		return err
	}
	timeRun := func(mk func() (sim.Observer, error)) (time.Duration, error) {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 9; rep++ {
			obs, err := mk()
			if err != nil {
				return 0, err
			}
			vm, err := sim.New(im, sim.Config{Observer: obs})
			if err != nil {
				return 0, err
			}
			start := time.Now()
			if err := vm.Run(); err != nil {
				return 0, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best, nil
	}
	base, err := timeRun(func() (sim.Observer, error) { return nopObserver{}, nil })
	if err != nil {
		return err
	}
	// The paper samples one or two counters; profile cycles at a
	// realistic period (1 sample per 100k cycles).
	sampled, err := timeRun(func() (sim.Observer, error) {
		return sampler.New(spec.Name, 0, 0,
			[]sampler.EventConfig{{Event: sim.EvCycles, Period: 100_000}})
	})
	if err != nil {
		return err
	}
	row("E-OVH", "cycle-sampling overhead vs counting hardware",
		"few percent", pct(float64(sampled-base)/float64(base)))
	return nil
}

func formats(moab *core.Tree) error {
	e := expdb.New(moab)
	var xmlBuf, binBuf bytes.Buffer
	if err := e.WriteXML(&xmlBuf); err != nil {
		return err
	}
	if err := e.WriteBinary(&binBuf); err != nil {
		return err
	}
	row("E-FMT", "binary database vs XML size (§IX)",
		"more compact", fmt.Sprintf("%.1fx smaller", float64(xmlBuf.Len())/float64(binBuf.Len())))
	return nil
}
