// Command hpcreport runs the paper's analyses unattended over an
// experiment database: hot paths per entry frame, the derived
// waste/efficiency metrics, load imbalance, and — against a -baseline
// database — the top regressions. It emits deterministic JSON and/or
// markdown through the same atomic-write path as database publication, so
// a crashed report never leaves a torn file for a CI gate to read.
//
// Usage:
//
//	hpcreport [-baseline old.db] [-metric CYCLES] [-top 10] \
//	          [-threshold 0.5] [-bins 10] [-jobs N] \
//	          [-o report.json] [-md report.md] current.db
//
// -o and -md accept "-" for stdout. Report bytes depend only on the
// database bytes and the flags — not on -jobs or any environment — so
// two runs over the same inputs are byte-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/engine"
	"repro/internal/expdb"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hpcreport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hpcreport", flag.ContinueOnError)
	baseline := fs.String("baseline", "", "baseline database for regression analysis")
	metricName := fs.String("metric", "", "primary metric (default: first raw column)")
	top := fs.Int("top", 10, "bound each ranked list")
	threshold := fs.Float64("threshold", 0, "hot-path descent threshold (default 0.5)")
	bins := fs.Int("bins", 10, "imbalance histogram bins")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "diff kernel workers (report bytes do not depend on it)")
	outJSON := fs.String("o", "report.json", `JSON output path ("-" = stdout, "" = none)`)
	outMD := fs.String("md", "", `markdown output path ("-" = stdout, "" = none)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one database argument, got %d", fs.NArg())
	}
	if *outJSON == "" && *outMD == "" {
		return fmt.Errorf("nothing to write: both -o and -md are empty")
	}

	exp, release, err := openDB(fs.Arg(0))
	if err != nil {
		return err
	}
	defer release()
	opt := report.Options{
		Metric:    *metricName,
		Threshold: *threshold,
		Top:       *top,
		Bins:      *bins,
		Jobs:      *jobs,
	}
	if *baseline != "" {
		base, brelease, err := openDB(*baseline)
		if err != nil {
			return err
		}
		defer brelease()
		opt.Baseline = base
	}

	r, err := report.Build(exp, opt)
	if err != nil {
		return err
	}
	jsonBytes, err := r.JSON()
	if err != nil {
		return err
	}
	if err := write(*outJSON, jsonBytes); err != nil {
		return err
	}
	if err := write(*outMD, r.Markdown()); err != nil {
		return err
	}
	return nil
}

// openDB opens a database of any format with every lazy column faulted
// in (the analyses read all raw and summary values).
func openDB(path string) (*expdb.Experiment, func(), error) {
	sn, err := engine.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if err := sn.FaultAll(); err != nil {
		sn.Release()
		return nil, nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return sn.Experiment(), func() { sn.Release() }, nil
}

// write publishes one rendering: atomically for real paths, directly for
// stdout, not at all for "".
func write(path string, b []byte) error {
	switch path {
	case "":
		return nil
	case "-":
		_, err := os.Stdout.Write(b)
		return err
	}
	return expdb.WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.Write(b)
		return err
	})
}
