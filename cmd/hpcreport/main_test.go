package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// buildDB writes the merged toy experiment (with mean/max summaries) at
// the given rank count as a v3 database and returns its path.
func buildDB(t *testing.T, dir string, ranks int) string {
	t.Helper()
	spec, err := workloads.ByName("pflotran")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: ranks, Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	cyc := res.Tree.Reg.ByName("CYCLES")
	if cyc == nil {
		t.Fatal("no CYCLES column")
	}
	if err := res.AddSummaries(cyc.ID, metric.OpMean, metric.OpMax); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := expdb.FromMerge(res).WriteBinaryV3(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "pflotran.db")
	if ranks != 3 {
		path = filepath.Join(dir, "pflotran-base.db")
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReportGolden locks the full hpcreport output — JSON and markdown,
// including the regression section against a baseline — over a fixed
// workload. The toy simulation, the merge, and the report builder are all
// deterministic, so these bytes must never drift by accident. Regenerate
// with REPORT_GOLDEN_UPDATE=1 after an intentional change.
func TestReportGolden(t *testing.T) {
	dir := t.TempDir()
	db := buildDB(t, dir, 3)
	base := buildDB(t, dir, 7)
	outJSON := filepath.Join(dir, "report.json")
	outMD := filepath.Join(dir, "report.md")
	err := run([]string{"-baseline", base, "-top", "5", "-jobs", "2",
		"-o", outJSON, "-md", outMD, db})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct{ got, golden string }{
		{outJSON, filepath.Join("testdata", "report_golden.json")},
		{outMD, filepath.Join("testdata", "report_golden.md")},
	} {
		got, err := os.ReadFile(f.got)
		if err != nil {
			t.Fatal(err)
		}
		if os.Getenv("REPORT_GOLDEN_UPDATE") != "" {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(f.golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(f.golden)
		if err != nil {
			t.Fatalf("%v (run with REPORT_GOLDEN_UPDATE=1 to create)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from %s; regenerate with REPORT_GOLDEN_UPDATE=1 if intended\ngot:\n%s",
				f.got, f.golden, got)
		}
	}
}

// TestReportJobsDeterminism: the CLI contract that -jobs never changes
// report bytes.
func TestReportJobsDeterminism(t *testing.T) {
	dir := t.TempDir()
	db := buildDB(t, dir, 3)
	base := buildDB(t, dir, 7)
	render := func(jobs string) []byte {
		out := filepath.Join(dir, "report-"+jobs+".json")
		if err := run([]string{"-baseline", base, "-jobs", jobs, "-o", out, db}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(render("1"), render("8")) {
		t.Fatal("report bytes differ between -jobs 1 and -jobs 8")
	}
}

func TestReportFlagErrors(t *testing.T) {
	dir := t.TempDir()
	db := buildDB(t, dir, 3)
	for _, args := range [][]string{
		{},                        // no database
		{db, db},                  // two databases
		{"-o", "", "-md", "", db}, // nothing to write
		{"-o", filepath.Join(dir, "x.json"), filepath.Join(dir, "missing.db")},
		{"-metric", "NOPE", "-o", filepath.Join(dir, "x.json"), db},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%q) did not error", args)
		}
	}
}
