package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lower"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func writeProfile(t *testing.T, dir string) string {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New(spec.Name, 0, 0, sampler.DefaultEvents(spec.Period))
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sim.New(im, sim.Config{Observer: s})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "toy.cpprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Profile().Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	var data []byte
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(data), ferr
}

func TestRanking(t *testing.T) {
	dir := t.TempDir()
	prof := writeProfile(t, dir)
	out, err := captureStdout(t, func() error {
		return run([]string{"-w", "toy", prof})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "procedures by CYCLES") || !strings.Contains(out, "h") {
		t.Fatalf("ranking output:\n%s", out)
	}
}

func TestDisassembly(t *testing.T) {
	dir := t.TempDir()
	prof := writeProfile(t, dir)
	out, err := captureStdout(t, func() error {
		return run([]string{"-w", "toy", "-proc", "h", prof})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "work") || !strings.Contains(out, "%") {
		t.Fatalf("disassembly output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	prof := writeProfile(t, dir)
	cases := [][]string{
		{},                                      // missing -w
		{"-w", "toy"},                           // no profiles
		{"-w", "nosuch", prof},                  // unknown workload
		{"-w", "toy", "-proc", "ghost", prof},   // unknown proc
		{"-w", "toy", "-metric", "NOPE", prof},  // unknown metric
		{"-w", "toy", filepath.Join(dir, "gh")}, // missing profile
	}
	for _, args := range cases {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
