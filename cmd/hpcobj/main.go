// Command hpcobj presents metrics correlated with object code — the
// text-based object-level view the paper's Section IX describes: annotated
// disassembly of the synthetic binary with per-instruction sample counts,
// plus a per-procedure hot ranking.
//
// Usage:
//
//	hpcobj -w s3d meas/s3d-*.cpprof             # rank procedures
//	hpcobj -w s3d -proc rhsf meas/s3d-*.cpprof  # annotated disassembly
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lower"
	"repro/internal/objview"
	"repro/internal/profile"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hpcobj:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hpcobj", flag.ContinueOnError)
	workload := fs.String("w", "", "workload the profiles came from: "+strings.Join(workloads.Names(), ", "))
	proc := fs.String("proc", "", "procedure to disassemble (default: rank procedures)")
	metricName := fs.String("metric", "CYCLES", "metric to rank procedures by")
	top := fs.Int("top", 10, "procedures to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workload == "" {
		return fmt.Errorf("missing -w")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no profile files given")
	}
	spec, err := workloads.ByName(*workload)
	if err != nil {
		return err
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		return err
	}
	var profs []*profile.Profile
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		p, err := profile.Read(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", path, err)
		}
		profs = append(profs, p)
	}
	v, err := objview.New(im, profs)
	if err != nil {
		return err
	}

	if *proc != "" {
		return v.WriteProc(os.Stdout, *proc)
	}

	mi := -1
	for i, m := range v.Metrics() {
		if m.Name == *metricName {
			mi = i
		}
	}
	if mi < 0 {
		return fmt.Errorf("metric %q not in profiles", *metricName)
	}
	fmt.Printf("procedures by %s:\n", *metricName)
	for _, pc := range v.HotProcs(mi, *top) {
		if pc.Counts[mi] == 0 {
			continue
		}
		fmt.Printf("  %-36s %14d\n", pc.Name, pc.Counts[mi])
	}
	return nil
}
