package main

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/ingest"
)

// captureStderr runs f with os.Stderr redirected to a pipe.
func captureStderr(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	ferr := f()
	w.Close()
	os.Stderr = old
	var data []byte
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		data = append(data, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	return string(data), ferr
}

// quarantinedDB writes a v2 database carrying a merge provenance record
// and returns its path and raw bytes.
func quarantinedDB(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	e := expdb.New(core.Fig1Tree())
	e.Provenance = &ingest.Report{Attempted: 4, Merged: 3, Bad: []ingest.BadRank{
		{Path: "run/r0002.cpprof", Rank: 2, Offset: 99, Class: ingest.ClassTruncated, Message: "unexpected EOF"},
	}}
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "quarantined.db")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

// A database produced by a -keep-going merge announces its provenance on
// stderr while the views render normally.
func TestViewerReportsProvenance(t *testing.T) {
	dir := t.TempDir()
	path, _ := quarantinedDB(t, dir)
	var out string
	errText, err := captureStderr(t, func() error {
		var ierr error
		out, ierr = captureStdout(t, func() error {
			return run([]string{"-db", path})
		})
		return ierr
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errText, "merged 3/4 ranks") {
		t.Fatalf("provenance summary missing from stderr:\n%s", errText)
	}
	if !strings.Contains(out, "cost (I)") {
		t.Fatalf("view did not render:\n%s", out)
	}
}

// Damaging the optional provenance section degrades the open — the viewer
// warns and renders from the intact sections instead of failing.
func TestViewerOpensDegradedDB(t *testing.T) {
	dir := t.TempDir()
	_, data := quarantinedDB(t, dir)
	// Flip a payload byte of section 6 (provenance) by walking the frame
	// structure: magic, then id | uvarint len | payload | crc32c per section.
	off := len("CPDB2")
	for {
		if off >= len(data) || data[off] == 0 {
			t.Fatal("provenance section not found")
		}
		id := data[off]
		n, vlen := binary.Uvarint(data[off+1:])
		if vlen <= 0 {
			t.Fatal("bad frame")
		}
		payload := off + 1 + vlen
		if id == 6 {
			data[payload+int(n)/2] ^= 0xff
			break
		}
		off = payload + int(n) + 4
	}
	path := filepath.Join(dir, "degraded.db")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out string
	errText, err := captureStderr(t, func() error {
		var ierr error
		out, ierr = captureStdout(t, func() error {
			return run([]string{"-db", path})
		})
		return ierr
	})
	if err != nil {
		t.Fatalf("degraded database refused: %v", err)
	}
	if !strings.Contains(errText, "hpcviewer: warning:") || !strings.Contains(errText, "provenance") {
		t.Fatalf("degradation warning missing:\n%s", errText)
	}
	if !strings.Contains(out, "cost (I)") {
		t.Fatalf("view did not render:\n%s", out)
	}
}

// Unusable databases fail with an error naming the file, never a panic.
func TestViewerRejectsDamagedDB(t *testing.T) {
	dir := t.TempDir()
	_, good := quarantinedDB(t, dir)
	mk := func(name string, data []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := map[string]string{
		"empty.db":     mk("empty.db", nil),
		"badmagic.db":  mk("badmagic.db", []byte("XXXXX not a database")),
		"truncated.db": mk("truncated.db", good[:len(good)*3/5]),
	}
	for name, path := range cases {
		if _, err := captureStderr(t, func() error {
			_, ierr := captureStdout(t, func() error { return run([]string{"-db", path}) })
			return ierr
		}); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !strings.Contains(err.Error(), name) {
			t.Errorf("%s: error does not name the file: %v", name, err)
		}
	}
}
