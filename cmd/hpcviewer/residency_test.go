package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// tracedV3DB writes a v3 database with trace and pyramid sections.
func tracedV3DB(t *testing.T, dir string) string {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{
		NRanks: 2,
		Events: sampler.DefaultEvents(spec.Period),
		Trace:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	e := expdb.FromMerge(res)
	if err := expdb.TraceRanksFromProfiles(e, doc, profs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "traced.db")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteBinaryV3(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// -residency on a mapped v3 database reports the whole-file probe plus a
// per-section-kind breakdown, with trace sections alongside the columns.
func TestResidencyBreakdown(t *testing.T) {
	path := tracedV3DB(t, t.TempDir())
	errText, err := captureStderr(t, func() error {
		_, ierr := captureStdout(t, func() error {
			return run([]string{"-db", path, "-interactive", "-residency"})
		})
		return ierr
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errText, "residency at open: resident") {
		t.Fatalf("no whole-file residency line:\n%s", errText)
	}
	for _, kind := range []string{"column:", "trace:", "pyramid:", "tracemeta:", "tree:"} {
		if !strings.Contains(errText, kind) {
			t.Fatalf("per-kind breakdown missing %q:\n%s", kind, errText)
		}
	}
	if !strings.Contains(errText, "residency at exit") {
		t.Fatalf("no exit-time residency report:\n%s", errText)
	}
}
