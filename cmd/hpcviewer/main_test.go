package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
)

// writeDB stores the Figure 1 worked example as a database in both
// formats and returns the paths.
func writeDB(t *testing.T, dir string) (binPath, xmlPath string) {
	t.Helper()
	e := expdb.New(core.Fig1Tree())
	binPath = filepath.Join(dir, "fig1.db")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	xmlPath = filepath.Join(dir, "fig1.xml")
	f, err = os.Create(xmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteXML(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return binPath, xmlPath
}

// captureStdout runs f with os.Stdout redirected to a pipe.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	data := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(data), ferr
}

func TestViewsFromBothFormats(t *testing.T) {
	dir := t.TempDir()
	binPath, xmlPath := writeDB(t, dir)
	for _, db := range []string{binPath, xmlPath} {
		for _, view := range []string{"cc", "callers", "flat"} {
			out, err := captureStdout(t, func() error {
				return run([]string{"-db", db, "-view", view})
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", db, view, err)
			}
			if !strings.Contains(out, "cost (I)") {
				t.Fatalf("%s/%s output:\n%s", db, view, out)
			}
		}
	}
}

func TestHotPathFlag(t *testing.T) {
	dir := t.TempDir()
	binPath, _ := writeDB(t, dir)
	out, err := captureStdout(t, func() error {
		return run([]string{"-db", binPath, "-hotpath", "cost"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hot path (metric cost") {
		t.Fatalf("hot path banner missing:\n%s", out)
	}
	if !strings.Contains(out, "file2.c: 9") {
		t.Fatalf("hot path endpoint missing:\n%s", out)
	}
}

func TestDerivedAndSortFlags(t *testing.T) {
	dir := t.TempDir()
	binPath, _ := writeDB(t, dir)
	out, err := captureStdout(t, func() error {
		return run([]string{"-db", binPath, "-derived", "double=$0*2", "-metrics"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "double") {
		t.Fatalf("derived metric not listed:\n%s", out)
	}
	if _, err := captureStdout(t, func() error {
		return run([]string{"-db", binPath, "-sort", "cost:excl", "-view", "flat", "-flatten", "2"})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHTMLReport(t *testing.T) {
	dir := t.TempDir()
	binPath, _ := writeDB(t, dir)
	out := filepath.Join(dir, "report.html")
	if _, err := captureStdout(t, func() error {
		return run([]string{"-db", binPath, "-html", out, "-hotpath", "cost"})
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"<!DOCTYPE html>", "Calling Context View", "Callers View", "Flat View", "hot"} {
		if !strings.Contains(s, want) {
			t.Fatalf("HTML report missing %q", want)
		}
	}
}

func TestViewerErrors(t *testing.T) {
	dir := t.TempDir()
	binPath, _ := writeDB(t, dir)
	bad := filepath.Join(dir, "bad.db")
	if err := os.WriteFile(bad, []byte("nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                                      // missing -db
		{"-db", filepath.Join(dir, "ghost")},    // missing file
		{"-db", bad},                            // garbage file
		{"-db", binPath, "-view", "martian"},    // bad view
		{"-db", binPath, "-sort", "NOPE"},       // bad sort metric
		{"-db", binPath, "-hotpath", "NOPE"},    // bad hotpath metric
		{"-db", binPath, "-derived", "novalue"}, // bad derived
	}
	for _, args := range cases {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
