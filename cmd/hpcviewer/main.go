// Command hpcviewer presents an experiment database as the paper's three
// complementary views — Calling Context (top-down), Callers (bottom-up) and
// Flat (static) — with sorting by any metric column, hot-path expansion
// (Equation 3), user-defined derived metrics ($n formulas, Section V-D) and
// flattening, rendered as a tree-table.
//
// Usage:
//
//	hpcviewer -db s3d.db                                 # Calling Context View
//	hpcviewer -db s3d.db -view callers                   # bottom-up
//	hpcviewer -db s3d.db -view flat -flatten 2           # static, flattened
//	hpcviewer -db s3d.db -hotpath CYCLES -threshold 0.5  # hot path only
//	hpcviewer -db s3d.db -derived 'fpwaste=$0*4-$1' -sort fpwaste
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/expdb"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/render"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hpcviewer:", err)
		os.Exit(1)
	}
}

type derivedFlags []string

func (d *derivedFlags) String() string     { return strings.Join(*d, ";") }
func (d *derivedFlags) Set(s string) error { *d = append(*d, s); return nil }

func run(args []string) (err error) {
	fs := flag.NewFlagSet("hpcviewer", flag.ContinueOnError)
	dflags := diag.Register(fs)
	db := fs.String("db", "", "experiment database from hpcprof (required)")
	view := fs.String("view", "cc", "view: cc (calling context), callers, flat")
	sortBy := fs.String("sort", "", "metric column to sort by, e.g. CYCLES or CYCLES:excl (default first column inclusive)")
	hotpath := fs.String("hotpath", "", "run hot path analysis on this metric and highlight it")
	threshold := fs.Float64("threshold", core.DefaultHotPathThreshold, "hot path descent threshold")
	depth := fs.Int("depth", 0, "maximum tree depth to show (0 = unlimited)")
	top := fs.Int("top", 0, "show only the top N children per scope (0 = all)")
	flatten := fs.Int("flatten", 0, "flatten the flat view N times")
	jobs := fs.Int("jobs", 0, "goroutines for callers-view expansion (0 = one per CPU)")
	var derived derivedFlags
	fs.Var(&derived, "derived", "derived metric name=formula (repeatable), e.g. 'fpwaste=$0*4-$1'")
	metrics := fs.Bool("metrics", false, "list metric columns and exit")
	interactive := fs.Bool("interactive", false, "start an interactive session (expand/collapse/zoom/hot/src; type help)")
	residency := fs.Bool("residency", false, "debug: report mapped-vs-resident bytes of a mapped (v3) database at open and exit")
	workload := fs.String("w", "", "workload name, to attach pseudo-source for the interactive source pane")
	structPath := fs.String("S", "", "structure file, enabling interactive per-rank plots (with -m)")
	measDir := fs.String("m", "", "measurements directory of .cpprof files, enabling interactive per-rank plots (with -S)")
	htmlOut := fs.String("html", "", "write a self-contained HTML report (all three views) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("missing -db")
	}
	stopDiag, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if derr := stopDiag(); derr != nil && err == nil {
			err = derr
		}
	}()

	if *interactive {
		// Interactive sessions open the database lazily: the CCT and metric
		// table decode now; the overrides and provenance sections decode
		// only if a command touches them.
		return runInteractive(*db, derived, *workload, *structPath, *measDir, *jobs, *residency)
	}

	exp, err := readDB(*db)
	if err != nil {
		return err
	}
	tree := exp.Tree

	for _, d := range derived {
		kv := strings.SplitN(d, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad -derived %q (want name=formula)", d)
		}
		if _, err := tree.Reg.AddDerived(kv[0], kv[1]); err != nil {
			return err
		}
	}
	if err := tree.ApplyDerivedTree(); err != nil {
		return err
	}

	if *metrics {
		for _, d := range tree.Reg.Columns() {
			fmt.Printf("%3d  %-24s %-8s %s\n", d.ID, d.Name, d.Kind, d.Formula)
		}
		return nil
	}

	if *htmlOut != "" {
		hot := -1
		if *hotpath != "" {
			d := tree.Reg.ByName(*hotpath)
			if d == nil {
				return fmt.Errorf("unknown hot path metric %q", *hotpath)
			}
			hot = d.ID
		} else if tree.Reg.Len() > 0 {
			hot = 0
		}
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		opt := render.Options{MaxDepth: *depth, TopN: *top}
		if err := render.RenderHTMLReport(f, tree, exp.Program, hot, opt); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *htmlOut)
		return nil
	}

	sortSpec := core.SortSpec{}
	if *sortBy != "" {
		name, excl := strings.CutSuffix(*sortBy, ":excl")
		d := tree.Reg.ByName(name)
		if d == nil {
			return fmt.Errorf("unknown sort metric %q", name)
		}
		sortSpec = core.SortSpec{MetricID: d.ID, Exclusive: excl}
	}

	opt := render.Options{
		Sort:     sortSpec,
		MaxDepth: *depth,
		TopN:     *top,
		Totals:   tree.Total,
	}

	if *hotpath != "" {
		d := tree.Reg.ByName(*hotpath)
		if d == nil {
			return fmt.Errorf("unknown hot path metric %q", *hotpath)
		}
		path := core.HotPath(tree.Root, d.ID, *threshold)
		opt.Highlight = map[*core.Node]bool{}
		for _, n := range path {
			opt.Highlight[n] = true
		}
		if *depth == 0 {
			// Show just enough depth to cover the hot path.
			opt.MaxDepth = len(path) + 1
		}
		fmt.Printf("hot path (metric %s, t=%.0f%%):\n", d.Name, *threshold*100)
		for i, n := range path[1:] {
			fmt.Printf("  %s%s  [%s]\n", strings.Repeat(" ", i), n.Label(), render.FormatValue(n.Incl.Get(d.ID)))
		}
		fmt.Println()
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *view {
	case "cc":
		return render.RenderTree(w, tree, opt)
	case "callers":
		// Root rows are cheap; the caller subtries are built lazily and
		// expanded here across -jobs goroutines for the full render.
		cv := core.BuildCallersView(tree)
		if err := cv.ExpandAllParallel(*jobs); err != nil {
			return err
		}
		return render.RenderCallers(w, cv, tree, opt)
	case "flat":
		fv := core.BuildFlatView(tree)
		roots := core.FlattenN(fv.Roots, *flatten)
		return render.Render(w, roots, tree.Reg, opt)
	default:
		return fmt.Errorf("unknown view %q (want cc, callers or flat)", *view)
	}
}

// runInteractive opens the database lazily as an engine snapshot and
// drives the REPL over one session of it. For a v2 database only the
// string table, header, metric table and CCT are decoded up front;
// override-backed metric columns (summaries, computed values) fault in
// through the snapshot the first time a command sorts by, renders or
// hot-paths them, and degradation notes appear on stderr the moment a
// damaged section is first touched — exactly the notes an eager open
// would have printed at startup. The CLI is a thin frontend: every
// capability here (and in hpcserver) lives in internal/engine.
func runInteractive(dbPath string, derived derivedFlags, workload, structPath, measDir string, jobs int, residency bool) error {
	snap, err := engine.Open(dbPath)
	if err != nil {
		return err
	}
	reportResidency := func(when string) {
		if !residency {
			return
		}
		data := snap.MappedBytes()
		if data == nil {
			fmt.Fprintf(os.Stderr, "hpcviewer: residency at %s: database is not mapped\n", when)
			return
		}
		fmt.Fprintf(os.Stderr, "hpcviewer: residency at %s: %s\n", when, diag.ResidencyString(data))
		spans := snap.SectionSpans()
		kinds := make([]diag.KindSpan, len(spans))
		for i, sp := range spans {
			kinds[i] = diag.KindSpan{Kind: sp.Kind, Data: sp.Data}
		}
		for _, line := range diag.ResidencyByKind(kinds) {
			fmt.Fprintf(os.Stderr, "hpcviewer: residency at %s:   %s\n", when, line)
		}
	}
	reportResidency("open")
	defer reportResidency("exit")
	printed := 0
	flushNotes := func() {
		notes := snap.Notes()
		for ; printed < len(notes); printed++ {
			fmt.Fprintf(os.Stderr, "hpcviewer: warning: %s\n", notes[printed])
		}
	}
	flushNotes()

	var source *prog.Program
	if workload != "" {
		spec, err := workloads.ByName(workload)
		if err != nil {
			return err
		}
		source = spec.Program
	}
	s := engine.NewSession(snap)
	defer s.Close()
	s.SetSource(source)
	s.SetJobs(jobs)
	for _, d := range derived {
		kv := strings.SplitN(d, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad -derived %q (want name=formula)", d)
		}
		if err := s.AddDerivedMetric(kv[0], kv[1]); err != nil {
			return err
		}
	}
	if structPath != "" && measDir != "" {
		doc, profs, err := loadMeasurements(structPath, measDir)
		if err != nil {
			return err
		}
		s.AttachProfiles(doc, profs)
	}
	return repl(s, flushNotes)
}

// loadMeasurements reads a structure file plus every .cpprof profile in a
// directory, enabling the session's per-rank plot graphs.
func loadMeasurements(structPath, dir string) (*structfile.Doc, []*profile.Profile, error) {
	sf, err := os.Open(structPath)
	if err != nil {
		return nil, nil, err
	}
	doc, err := structfile.ReadXML(sf)
	sf.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", structPath, err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.cpprof"))
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no .cpprof files in %s", dir)
	}
	var profs []*profile.Profile
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		p, err := profile.Read(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("reading %s: %w", path, err)
		}
		profs = append(profs, p)
	}
	return doc, profs, nil
}

// repl drives an interactive session over stdin, emulating hpcviewer's
// GUI interactions (expand/collapse, hot-path drill-down, zoom, flatten,
// the source pane and per-rank plots). flushNotes runs after every
// command so degradation notes surface as soon as a lazy section decodes.
func repl(s *engine.Session, flushNotes func()) error {
	out := bufio.NewWriter(os.Stdout)
	err := s.Render(out, render.Options{})
	out.Flush()
	flushNotes()
	if err != nil {
		return err
	}
	fmt.Println("\ntype 'help' for commands, 'quit' to leave")
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("hpcviewer> ")
		if !in.Scan() {
			break
		}
		quit, err := engine.Exec(s, in.Text(), out)
		out.Flush()
		flushNotes()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		if quit {
			break
		}
	}
	return in.Err()
}

func readDB(path string) (*expdb.Experiment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// expdb.Read sniffs the magic, accepting binary v1, binary v2 and XML.
	// The raw file is passed (not a buffered wrapper) so the reader can
	// bound allocations by the file's actual size.
	exp, err := expdb.Read(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	// A v2 database can open degraded (a damaged optional section was
	// dropped) and can carry merge provenance; tell the user on stderr so
	// the rendered views are never silently incomplete.
	for _, note := range exp.Notes {
		fmt.Fprintf(os.Stderr, "hpcviewer: warning: %s\n", note)
	}
	if exp.Provenance != nil && !exp.Provenance.Clean() {
		fmt.Fprintf(os.Stderr, "hpcviewer: %s\n", exp.Provenance.Summary())
	}
	return exp, nil
}
