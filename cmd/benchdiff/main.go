// Command benchdiff compares `go test -bench` output (read from stdin)
// against the baseline numbers committed in BENCH_*.json files (given as
// arguments) and prints per-benchmark deltas for ns/op, B/op and allocs/op.
//
// Usage:
//
//	go test -run XXX -bench ... -benchmem . | benchdiff BENCH_core.json ...
//
// With -max-regress set (a fraction, e.g. 0.5), the tool exits non-zero
// when any matched benchmark's ns/op regresses beyond the threshold;
// allocation counts are compared exactly at any threshold, since they are
// deterministic where ns/op is noisy.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// entry supports both baseline schemas: the flat BENCH_merge.json form
// (ns_per_op at top level) and the before/after BENCH_core.json form, where
// "after" is the committed expectation.
type entry struct {
	Name    string   `json:"name"`
	NsPerOp float64  `json:"ns_per_op"`
	After   *metrics `json:"after"`
}

type baselineFile struct {
	Benchmarks []entry `json:"benchmarks"`
}

func (e *entry) expected() metrics {
	if e.After != nil {
		return *e.After
	}
	return metrics{NsPerOp: e.NsPerOp, BytesPerOp: -1, AllocsPerOp: -1}
}

// benchLine matches one result line of -bench output, with optional
// -benchmem columns and an optional -N GOMAXPROCS suffix on the name.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	maxRegress := flag.Float64("max-regress", 0,
		"fail when ns/op regresses by more than this fraction (0 = report only)")
	flag.Parse()

	base := map[string]metrics{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		var f baselineFile
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
			os.Exit(2)
		}
		for i := range f.Benchmarks {
			base[f.Benchmarks[i].Name] = f.Benchmarks[i].expected()
		}
	}

	pct := func(now, was float64) string {
		if was == 0 {
			if now == 0 {
				return "±0%"
			}
			return "new"
		}
		return fmt.Sprintf("%+.1f%%", 100*(now-was)/was)
	}

	failed := false
	matched := 0
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		want, ok := base[name]
		if !ok {
			fmt.Printf("%-40s (no baseline)\n", name)
			continue
		}
		matched++
		ns, _ := strconv.ParseFloat(m[2], 64)
		out := fmt.Sprintf("%-40s ns/op %12.2f vs %12.2f (%s)", name, ns, want.NsPerOp, pct(ns, want.NsPerOp))
		if m[3] != "" && want.BytesPerOp >= 0 {
			bop, _ := strconv.ParseFloat(m[3], 64)
			aop, _ := strconv.ParseFloat(m[4], 64)
			out += fmt.Sprintf("  B/op %s  allocs/op %s", pct(bop, want.BytesPerOp), pct(aop, want.AllocsPerOp))
			if *maxRegress > 0 && aop > want.AllocsPerOp*1.02+1 {
				out += "  ALLOC-REGRESSION"
				failed = true
			}
		}
		if *maxRegress > 0 && want.NsPerOp > 0 && ns > want.NsPerOp*(1+*maxRegress) {
			out += "  TIME-REGRESSION"
			failed = true
		}
		fmt.Println(out)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines matched a baseline (is stdin -bench output?)")
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
