package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/metric"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// writePair stores a weak-scaling pair: the same program at 2 and at 8
// ranks, where mpi_wait grows far beyond ideal scaling, compute scales
// cleanly, a setup scope disappears at scale and an imbalance-fix scope
// appears.
func writePair(t *testing.T, dir string) (basePath, scaledPath string) {
	t.Helper()
	fkey := func(name string) core.Key {
		return core.Key{Kind: core.KindFrame, Name: core.Sym(name), File: core.Sym(name + ".c"), Line: 1}
	}
	mk := func(ranks int, build func(tr *core.Tree)) *expdb.Experiment {
		reg := metric.NewRegistry()
		if _, err := reg.AddRaw("CYCLES", "cycles", 1); err != nil {
			t.Fatal(err)
		}
		tr := core.NewTree("toy", reg)
		build(tr)
		tr.ComputeMetrics()
		e := expdb.New(tr)
		e.NRanks = ranks
		return e
	}
	base := mk(2, func(tr *core.Tree) {
		tr.AddPath(fkey("main"), fkey("compute")).Base.Add(0, 2000)
		tr.AddPath(fkey("main"), fkey("mpi_wait")).Base.Add(0, 200)
		tr.AddPath(fkey("main"), fkey("setup")).Base.Add(0, 100)
	})
	scaled := mk(8, func(tr *core.Tree) {
		tr.AddPath(fkey("main"), fkey("compute")).Base.Add(0, 8000)  // ideal weak scaling
		tr.AddPath(fkey("main"), fkey("mpi_wait")).Base.Add(0, 3200) // 4x beyond ideal
		tr.AddPath(fkey("main"), fkey("rebalance")).Base.Add(0, 400) // new at scale
	})
	write := func(name string, e *expdb.Experiment) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.WriteBinary(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write("r2.db", base), write("r8.db", scaled)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestHpcdiffText(t *testing.T) {
	dir := t.TempDir()
	a, b := writePair(t, dir)
	var out strings.Builder
	if err := run([]string{"-threshold", "0", "-top", "0", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_report.txt", out.String())
}

func TestHpcdiffJSON(t *testing.T) {
	dir := t.TempDir()
	a, b := writePair(t, dir)
	var out strings.Builder
	if err := run([]string{"-json", "-threshold", "0", "-top", "0", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	// The JSON must parse and carry the headline fields.
	var rep map[string]any
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if rep["mode"] != "weak" || rep["per_rank"] != true {
		t.Fatalf("mode/per_rank = %v/%v, want weak/true", rep["mode"], rep["per_rank"])
	}
	checkGolden(t, "golden_report.json", out.String())
}

func TestHpcdiffUnionOutput(t *testing.T) {
	dir := t.TempDir()
	a, b := writePair(t, dir)
	union := filepath.Join(dir, "union.db")
	var out strings.Builder
	if err := run([]string{"-o", union, "-mode", "none", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote union database union.db") {
		t.Fatalf("no union confirmation in %q", out.String())
	}
	f, err := os.Open(union)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := expdb.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CYCLES[A]", "CYCLES[B]", "CYCLES[B-A]", "CYCLES[B/A]", "in[A]", "in[B]"} {
		if got.Tree.Reg.ByName(want) == nil {
			t.Fatalf("union database lacks column %s", want)
		}
	}
	if got.Tree.FindPath("main", "rebalance") == nil || got.Tree.FindPath("main", "setup") == nil {
		t.Fatal("union database lost one-sided scopes")
	}
}

func TestHpcdiffErrors(t *testing.T) {
	dir := t.TempDir()
	a, _ := writePair(t, dir)
	var out strings.Builder
	if err := run([]string{a}, &out); err == nil {
		t.Fatal("single input did not error")
	}
	if err := run([]string{"-mode", "sideways", a, a}, &out); err == nil {
		t.Fatal("bad mode did not error")
	}
	if err := run([]string{"-labels", "x", a, a}, &out); err == nil {
		t.Fatal("label count mismatch did not error")
	}
	if err := run([]string{"-metric", "WATTS", a, a}, &out); err == nil {
		t.Fatal("unknown metric did not error")
	}
}
