// Command hpcdiff compares experiment databases: it unions their calling
// context trees, attaches per-input, delta, ratio and scaling-loss metric
// columns (Section VI-A's scaled differencing, loss = 1 − ideal/actual),
// and reports the scopes that regressed or improved the most.
//
// Usage:
//
//	hpcdiff before.db after.db                     # top regressions, text
//	hpcdiff -json before.db after.db               # same, as JSON
//	hpcdiff -mode weak 64ranks.db 1024ranks.db     # scaling-loss ranking
//	hpcdiff -metric CYCLES -threshold 0.05 a.db b.db
//	hpcdiff -o union.db a.db b.db c.db             # write the union database
//
// The first database is the baseline; every other input is compared
// against it. With -o the union is written as an ordinary v2 database that
// hpcviewer opens like any other — the diff columns are ordinary metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/diff"
	"repro/internal/expdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpcdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hpcdiff", flag.ContinueOnError)
	metricList := fs.String("metric", "", "comma-separated metrics to compare (default: all raw metrics the inputs share)")
	modeFlag := fs.String("mode", "auto", "scaling expectation: auto, none, weak, strong (auto = weak when rank counts differ)")
	normFlag := fs.String("norm", "auto", "cost normalization: auto, perrank, total (auto = perrank when rank counts differ)")
	labelList := fs.String("labels", "", "comma-separated input labels (default A,B,...)")
	reportMetric := fs.String("report", "", "metric to rank the report by (default: the first compared)")
	threshold := fs.Float64("threshold", 0.01, "report only scopes with |excess| above this fraction of the total (0 = all)")
	top := fs.Int("top", 10, "bound each report list (0 = unlimited)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	outDB := fs.String("o", "", "write the union database to this path")
	outFormat := fs.String("format", "binary", "union database format for -o: binary (v2) or v3 (mappable zero-copy)")
	jobs := fs.Int("jobs", 1, "goroutines for the diff kernels (result is identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) < 2 {
		return fmt.Errorf("need at least 2 databases (baseline first), got %d", len(paths))
	}

	cfg := diff.Config{Jobs: *jobs}
	if *metricList != "" {
		cfg.Metrics = strings.Split(*metricList, ",")
	}
	mode, err := diff.ParseMode(*modeFlag)
	if err != nil {
		return err
	}
	cfg.Mode = mode
	switch *normFlag {
	case "auto":
		cfg.Norm = diff.NormAuto
	case "perrank":
		cfg.Norm = diff.NormPerRank
	case "total":
		cfg.Norm = diff.NormTotal
	default:
		return fmt.Errorf("unknown norm %q (want auto, perrank or total)", *normFlag)
	}

	var labels []string
	if *labelList != "" {
		labels = strings.Split(*labelList, ",")
		if len(labels) != len(paths) {
			return fmt.Errorf("-labels names %d inputs, got %d databases", len(labels), len(paths))
		}
	}

	inputs := make([]diff.Input, len(paths))
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		exp, err := expdb.Read(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", path, err)
		}
		inputs[i].Exp = exp
		if labels != nil {
			inputs[i].Label = labels[i]
		}
	}

	res, err := diff.Diff(cfg, inputs...)
	if err != nil {
		return err
	}

	if *outFormat != "binary" && *outFormat != "v3" {
		return fmt.Errorf("unknown -format %q (want binary or v3)", *outFormat)
	}
	if *outDB != "" {
		write := res.Exp.WriteBinary
		if *outFormat == "v3" {
			write = res.Exp.WriteBinaryV3
		}
		// Atomic publish: never leave a torn union database under -o.
		if err := expdb.WriteFileAtomic(*outDB, func(f *os.File) error { return write(f) }); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote union database %s (%d scopes, %d columns)\n",
			filepath.Base(*outDB), res.Tree.NumNodes(), res.Tree.Reg.Len())
	}

	th := *threshold
	if th == 0 {
		th = -1 // ReportOptions: negative means no threshold
	}
	rep, err := res.Report(diff.ReportOptions{Metric: *reportMetric, Threshold: th, Top: reportTop(*top)})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return rep.WriteText(stdout)
}

// reportTop maps the CLI convention (0 = unlimited) onto ReportOptions'
// (negative = unlimited, 0 = default).
func reportTop(top int) int {
	if top == 0 {
		return -1
	}
	return top
}
