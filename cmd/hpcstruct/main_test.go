package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/structfile"
)

func TestRunWritesStructureFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "moab.hpcstruct")
	if err := run([]string{"-w", "moab", "-stats", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	doc, err := structfile.ReadXML(f)
	if err != nil {
		t.Fatal(err)
	}
	st := doc.Stats()
	if st.Procs == 0 || st.Loops == 0 || st.Aliens == 0 {
		t.Fatalf("moab structure incomplete: %+v", st)
	}
}

func TestRunDefaultOutputName(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := run([]string{"-w", "toy"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("toy.hpcstruct"); err != nil {
		t.Fatal("default-named file missing")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -w accepted")
	}
	if err := run([]string{"-w", "nosuch"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
