// Command hpcstruct recovers the static structure of a workload's lowered
// binary — procedures, loop nests (via dominator analysis of the
// instruction stream), inlined code and line maps — and writes it as an XML
// structure document, mirroring HPCToolkit's hpcstruct.
//
// Usage:
//
//	hpcstruct -w moab [-stats] -o moab.hpcstruct
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lower"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hpcstruct:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hpcstruct", flag.ContinueOnError)
	workload := fs.String("w", "", "workload to analyze: "+strings.Join(workloads.Names(), ", "))
	out := fs.String("o", "", "output structure file (default <workload>.hpcstruct)")
	stats := fs.Bool("stats", false, "print scope statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workload == "" {
		return fmt.Errorf("missing -w; available workloads: %s", strings.Join(workloads.Names(), ", "))
	}
	spec, err := workloads.ByName(*workload)
	if err != nil {
		return err
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		return err
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		return err
	}
	name := *out
	if name == "" {
		name = spec.Name + ".hpcstruct"
	}
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := doc.WriteXML(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st := doc.Stats()
	fmt.Printf("wrote %s\n", name)
	if *stats {
		fmt.Printf("modules=%d files=%d procs=%d loops=%d inlined=%d stmts=%d\n",
			st.LMs, st.Files, st.Procs, st.Loops, st.Aliens, st.Stmts)
	}
	return nil
}
