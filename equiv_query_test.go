// Equivalence tests for the columnar query engine (DESIGN.md §10). The
// struct-of-arrays metric store, the compiled derived-metric kernels and
// the slab-hoisting sorts and hot paths are performance work only: every
// presented value must stay bitwise identical, and every scope order must
// stay order-identical, to the straightforward per-node reference
// implementations they replaced — across every workload, rank count and
// database format version.
package repro

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/workloads"
)

// --- reference implementations --------------------------------------------
//
// These are deliberately naive transcriptions of Equations 1-3 and of the
// pre-columnar sort semantics, built on the public per-node Get API only:
// dense per-node slices, recursive accumulation in child-list order, and
// sort.SliceStable with the historical less function.

// refBase reads a node's Base vector into a dense slice.
func refBase(n *core.Node, ncols int) []float64 {
	out := make([]float64, ncols)
	for id := 0; id < ncols; id++ {
		out[id] = n.Base.Get(id)
	}
	return out
}

// refMetrics recomputes presented metrics per Equations 1 and 2 with a
// per-node recursion, then applies derived formulas per node in registry
// order — the semantics ComputeMetrics + ApplyDerivedTree replaced with
// column sweeps. Accumulation adds children in child-list order, the same
// addition sequence the columnar postorder pass replays, so the reference
// is bitwise comparable (base values are non-negative, so adding a zero is
// a bitwise no-op in both).
func refMetrics(t *testing.T, tr *core.Tree) (incl, excl map[*core.Node][]float64) {
	t.Helper()
	ncols := tr.Reg.Len()
	incl = map[*core.Node][]float64{}
	excl = map[*core.Node][]float64{}
	var visit func(n *core.Node) (iv, frameLocal []float64)
	visit = func(n *core.Node) ([]float64, []float64) {
		iv := refBase(n, ncols)
		fl := refBase(n, ncols)
		for _, c := range n.Children {
			ci, cf := visit(c)
			for id := 0; id < ncols; id++ {
				iv[id] += ci[id]
			}
			if c.Kind != core.KindFrame {
				for id := 0; id < ncols; id++ {
					fl[id] += cf[id]
				}
			}
		}
		var ex []float64
		switch n.Kind {
		case core.KindFrame:
			ex = append([]float64(nil), fl...)
		case core.KindLoop, core.KindAlien:
			ex = refBase(n, ncols)
			for _, c := range n.Children {
				if c.Kind == core.KindStmt {
					for id := 0; id < ncols; id++ {
						ex[id] += c.Base.Get(id)
					}
				}
			}
		case core.KindRoot:
			ex = make([]float64, ncols)
		default:
			ex = refBase(n, ncols)
		}
		incl[n], excl[n] = iv, ex
		return iv, fl
	}
	visit(tr.Root)

	// Derived columns, evaluated per node over the reference values with the
	// scalar EvalEnv path — in registry order, so chained formulas see the
	// earlier derived results, exactly like both real implementations.
	for _, d := range tr.Reg.Columns() {
		if d.Kind != metric.Derived {
			continue
		}
		p, err := d.Program()
		if err != nil {
			t.Fatal(err)
		}
		for n := range incl {
			row := excl[n]
			row[d.ID] = p.EvalEnv(metric.EnvFunc(func(id int) float64 { return row[id] }))
			row = incl[n]
			row[d.ID] = p.EvalEnv(metric.EnvFunc(func(id int) float64 { return row[id] }))
		}
	}
	return incl, excl
}

// refSortScopes is the pre-columnar sort: sort.SliceStable over a closure
// reading per-node vectors, ties (and NaNs, which fail both comparisons)
// broken by label.
func refSortScopes(scopes []*core.Node, spec core.SortSpec) {
	value := func(n *core.Node) float64 {
		if spec.Exclusive {
			return n.Excl.Get(spec.MetricID)
		}
		return n.Incl.Get(spec.MetricID)
	}
	sort.SliceStable(scopes, func(i, j int) bool {
		if spec.ByLabel {
			return scopes[i].Label() < scopes[j].Label()
		}
		a, b := value(scopes[i]), value(scopes[j])
		if a != b {
			if spec.Ascending {
				return a < b
			}
			return a > b
		}
		return scopes[i].Label() < scopes[j].Label()
	})
}

// refHotPath is Equation 3 by direct descent over per-node Get reads.
func refHotPath(start *core.Node, metricID int, t float64) []*core.Node {
	if start == nil {
		return nil
	}
	if t <= 0 {
		t = core.DefaultHotPathThreshold
	}
	path := []*core.Node{start}
	cur := start
	for {
		var best *core.Node
		var bestVal float64
		for _, c := range cur.Children {
			if v := c.Incl.Get(metricID); best == nil || v > bestVal {
				best, bestVal = c, v
			}
		}
		if best == nil {
			return path
		}
		parentVal := cur.Incl.Get(metricID)
		if parentVal <= 0 || bestVal < t*parentVal {
			return path
		}
		path = append(path, best)
		cur = best
	}
}

// --- checks ----------------------------------------------------------------

func checkMetricsEquiv(t *testing.T, tr *core.Tree) {
	t.Helper()
	// Recompute from Base through the columnar path; overrides (summary
	// columns) are wiped by recomputation in both the columnar and the
	// reference world, so the comparison covers base-derived state.
	tr.ComputeMetrics()
	if err := tr.ApplyDerivedTree(); err != nil {
		t.Fatal(err)
	}
	refIncl, refExcl := refMetrics(t, tr)
	ncols := tr.Reg.Len()
	core.Walk(tr.Root, func(n *core.Node) bool {
		for id := 0; id < ncols; id++ {
			if got, want := n.Incl.Get(id), refIncl[n][id]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: inclusive col %d = %v (%#x), reference %v (%#x)",
					n.Label(), id, got, math.Float64bits(got), want, math.Float64bits(want))
			}
			if got, want := n.Excl.Get(id), refExcl[n][id]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: exclusive col %d = %v (%#x), reference %v (%#x)",
					n.Label(), id, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
		return true
	})
}

func checkSortEquiv(t *testing.T, tr *core.Tree) {
	t.Helper()
	last := tr.Reg.Len() - 1
	specs := []core.SortSpec{
		{}, // hpcviewer's default: column 0, inclusive, descending
		{Ascending: true},
		{Exclusive: true},
		{ByLabel: true},
		{MetricID: last},
		{MetricID: last, Exclusive: true, Ascending: true},
	}
	core.Walk(tr.Root, func(n *core.Node) bool {
		if len(n.Children) < 2 {
			return true
		}
		for _, spec := range specs {
			got := append([]*core.Node(nil), n.Children...)
			want := append([]*core.Node(nil), n.Children...)
			core.SortScopes(got, spec)
			refSortScopes(want, spec)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: spec %+v: position %d is %q, reference has %q",
						n.Label(), spec, i, got[i].Label(), want[i].Label())
				}
			}
		}
		return true
	})

	// The tree-wide sort must be the per-list sort applied at every level.
	spec := core.SortSpec{Exclusive: true}
	snap := map[*core.Node][]*core.Node{}
	core.Walk(tr.Root, func(n *core.Node) bool {
		snap[n] = append([]*core.Node(nil), n.Children...)
		return true
	})
	core.SortTree(tr.Root, spec)
	core.Walk(tr.Root, func(n *core.Node) bool {
		want := snap[n]
		refSortScopes(want, spec)
		for i := range want {
			if n.Children[i] != want[i] {
				t.Fatalf("SortTree at %s: position %d is %q, reference has %q",
					n.Label(), i, n.Children[i].Label(), want[i].Label())
			}
		}
		return true
	})
}

func checkHotPathEquiv(t *testing.T, tr *core.Tree) {
	t.Helper()
	starts := []*core.Node{tr.Root}
	for _, c := range tr.Root.Children {
		starts = append(starts, c)
		starts = append(starts, c.Children...)
	}
	cols := []int{0}
	if last := tr.Reg.Len() - 1; last > 0 {
		cols = append(cols, last)
	}
	for _, start := range starts {
		for _, col := range cols {
			for _, th := range []float64{0, 0.3, 0.5, 0.9} {
				got := core.HotPath(start, col, th)
				want := refHotPath(start, col, th)
				if len(got) != len(want) {
					t.Fatalf("HotPath(%s, col %d, t=%v): %d scopes, reference %d",
						start.Label(), col, th, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("HotPath(%s, col %d, t=%v): step %d is %q, reference %q",
							start.Label(), col, th, i, got[i].Label(), want[i].Label())
					}
				}
			}
		}
	}
}

// --- the matrix ------------------------------------------------------------

// equivExperiment merges a workload at a rank count into an experiment with
// summary columns (multi-rank only — they live in the v2 overrides section)
// and a derived column, mirroring what hpcprof -summaries produces.
func equivExperiment(t *testing.T, name string, ranks int) *expdb.Experiment {
	t.Helper()
	doc, profs := mustMPIProfiles(t, name, ranks)
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	if ranks > 1 {
		cyc := res.Tree.Reg.ByName("CYCLES")
		if cyc == nil {
			t.Fatal("no CYCLES column")
		}
		if err := res.AddSummaries(cyc.ID, metric.OpMean, metric.OpMax); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := res.Tree.Reg.AddDerived("work4x", "$0 * 4 - $0"); err != nil {
		t.Fatal(err)
	}
	return expdb.FromMerge(res)
}

// TestColumnarQueryEquivalence runs the full matrix the optimization must
// be invisible across: every workload × {1, 7, 64} ranks × both binary
// format versions, checking metric recomputation bitwise and sort orders
// and hot paths order-exactly against the reference implementations.
func TestColumnarQueryEquivalence(t *testing.T) {
	formats := []struct {
		name  string
		write func(*expdb.Experiment, *bytes.Buffer) error
	}{
		{"v2", func(e *expdb.Experiment, b *bytes.Buffer) error { return e.WriteBinary(b) }},
		{"v1", func(e *expdb.Experiment, b *bytes.Buffer) error { return e.WriteBinaryV1(b) }},
	}
	for _, name := range workloads.Names() {
		for _, ranks := range []int{1, 7, 64} {
			exp := equivExperiment(t, name, ranks)
			for _, f := range formats {
				t.Run(fmt.Sprintf("%s/ranks=%d/%s", name, ranks, f.name), func(t *testing.T) {
					var buf bytes.Buffer
					if err := f.write(exp, &buf); err != nil {
						t.Fatal(err)
					}
					data := buf.Bytes()

					// Sorts and hot paths run over the experiment as read —
					// summary overrides and derived values in place.
					expA, err := expdb.Read(bytes.NewReader(data))
					if err != nil {
						t.Fatal(err)
					}
					checkHotPathEquiv(t, expA.Tree)
					checkSortEquiv(t, expA.Tree)

					// Metric recomputation gets a fresh read (SortTree above
					// reordered expA's child lists, which is fine — but the
					// bitwise check wants the pristine deserialized tree).
					expB, err := expdb.Read(bytes.NewReader(data))
					if err != nil {
						t.Fatal(err)
					}
					checkMetricsEquiv(t, expB.Tree)
				})
			}
		}
	}
}
