// Benchmarks for the pprof bridge and the unattended report builder.
package repro

import (
	"bytes"
	"testing"

	"repro/internal/expdb"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/pprofio"
	"repro/internal/report"
	"repro/internal/source"
)

// pprofBytes exports the merged pflotran experiment as a gzipped pprof
// profile — the import benchmark's fixture.
func pprofBytes(b *testing.B) []byte {
	doc, profs := mustMPIProfiles(b, "pflotran", 16)
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pprofio.Export(expdb.FromMerge(res), &buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkImportPprof measures the full foreign-profile ingestion path:
// gunzip, proto decode, validation, and CCT construction via the
// format-neutral source boundary.
func BenchmarkImportPprof(b *testing.B) {
	raw := pprofBytes(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im, err := pprofio.Import(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := source.BuildTree(im); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReport measures one unattended analysis pass — hot paths,
// waste/efficiency, load imbalance, baseline regressions — plus both
// renderings, over the merged pflotran experiment with summary columns.
func BenchmarkReport(b *testing.B) {
	build := func(ranks int) *expdb.Experiment {
		doc, profs := mustMPIProfiles(b, "pflotran", ranks)
		res, err := merge.Profiles(doc, profs)
		if err != nil {
			b.Fatal(err)
		}
		cyc := res.Tree.Reg.ByName("CYCLES")
		if cyc == nil {
			b.Fatal("no CYCLES column")
		}
		if err := res.AddSummaries(cyc.ID, metric.OpMean, metric.OpMax); err != nil {
			b.Fatal(err)
		}
		return expdb.FromMerge(res)
	}
	exp, base := build(16), build(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := report.Build(exp, report.Options{Baseline: base, Jobs: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.JSON(); err != nil {
			b.Fatal(err)
		}
		if len(r.Markdown()) == 0 {
			b.Fatal("empty markdown")
		}
	}
}
