package callpath_test

import (
	"fmt"
	"os"

	"repro/callpath"
)

// ExampleHotPath runs hot-path analysis (the paper's Equation 3) on the
// Figure 1 worked example.
func ExampleHotPath() {
	tree := callpath.Fig1Tree()
	for _, n := range callpath.HotPath(tree.Root, 0, callpath.DefaultHotPathThreshold) {
		if n.Kind == callpath.KindRoot {
			continue
		}
		fmt.Printf("%s (%.0f%%)\n", n.Label(), 100*n.Incl.Get(0)/tree.Total(0))
	}
	// Output:
	// m (100%)
	// f (70%)
	// g (60%)
	// g (50%)
	// h (40%)
	// loop at file2.c: 8 (40%)
	// loop at file2.c: 9 (40%)
	// file2.c: 9 (40%)
}

// ExampleBuildCallersView reproduces the recursion-aware aggregation of the
// paper's Figure 2b: the recursive procedure g aggregates to 9 (its exposed
// instances), not 14 (the naive sum).
func ExampleBuildCallersView() {
	tree := callpath.Fig1Tree()
	cv := callpath.BuildCallersView(tree)
	for _, r := range cv.Roots {
		if r.Name.String() == "g" {
			fmt.Printf("g: inclusive %.0f, exclusive %.0f\n", r.Incl.Get(0), r.Excl.Get(0))
		}
	}
	// Output:
	// g: inclusive 9, exclusive 4
}

// ExampleAddDerived defines the paper's floating-point-waste metric
// (Section V-D) over a measured tree and sorts the flat view by it.
func ExampleAddDerived() {
	tree := callpath.Fig1Tree()
	// Column 0 is "cost"; pretend a peak of 4 units/cycle with no useful
	// work recorded: waste = cost*4.
	waste, err := callpath.AddDerived(tree, "waste", "$0*4")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("total waste: %.0f\n", tree.Root.Incl.Get(waste))
	// Output:
	// total waste: 40
}

// ExampleRun measures a built-in workload end to end and reports where its
// cycles went.
func ExampleRun() {
	res, err := callpath.Run(callpath.RunConfig{Workload: "toy"})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	tree := res.Experiment.Tree
	cyc, err := callpath.MetricColumn(tree, "CYCLES")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	path := callpath.HotPath(tree.Root, cyc, callpath.DefaultHotPathThreshold)
	fmt.Printf("hot path ends at %s\n", path[len(path)-1].Label())
	// Output:
	// hot path ends at file2.c: 9
}
