package callpath

import (
	"bytes"
	"strings"
	"testing"
)

func TestWorkloadsListed(t *testing.T) {
	names := Workloads()
	if len(names) != 4 {
		t.Fatalf("workloads = %v", names)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(RunConfig{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunToyEndToEnd(t *testing.T) {
	res, err := Run(RunConfig{Workload: "toy"})
	if err != nil {
		t.Fatal(err)
	}
	tree := res.Experiment.Tree
	if tree.NumNodes() == 0 {
		t.Fatal("empty tree")
	}
	cyc, err := MetricColumn(tree, "CYCLES")
	if err != nil {
		t.Fatal(err)
	}
	if tree.Total(cyc) == 0 {
		t.Fatal("no cycles recorded")
	}

	// All three views render.
	var b bytes.Buffer
	if err := RenderTree(&b, tree, RenderOptions{MaxDepth: 6}); err != nil {
		t.Fatal(err)
	}
	if err := RenderCallers(&b, BuildCallersView(tree), tree, RenderOptions{MaxDepth: 3}); err != nil {
		t.Fatal(err)
	}
	if err := RenderFlat(&b, BuildFlatView(tree), tree, RenderOptions{MaxDepth: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "file2.c") {
		t.Fatalf("render incomplete:\n%s", b.String())
	}

	// Hot path works from the public surface.
	hp := HotPath(tree.Root, cyc, DefaultHotPathThreshold)
	if len(hp) < 2 {
		t.Fatalf("hot path = %d scopes", len(hp))
	}
}

func TestRunWithDerivedAndDB(t *testing.T) {
	res, err := Run(RunConfig{Workload: "s3d", Period: 5000})
	if err != nil {
		t.Fatal(err)
	}
	tree := res.Experiment.Tree
	wasteID, err := AddDerived(tree, "fpwaste", "$0*4 - $1")
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Incl.Get(wasteID) <= 0 {
		t.Fatal("derived waste not computed")
	}

	// Round trip through both database formats.
	var xmlBuf, binBuf bytes.Buffer
	if err := WriteXML(&xmlBuf, res.Experiment); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&binBuf, res.Experiment); err != nil {
		t.Fatal(err)
	}
	fromXML, err := ReadXML(&xmlBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(&binBuf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Experiment{fromXML, fromBin} {
		if e.Tree.Total(0) != tree.Total(0) {
			t.Fatalf("total changed after round trip: %g vs %g", e.Tree.Total(0), tree.Total(0))
		}
		if e.Tree.Root.Incl.Get(wasteID) != tree.Root.Incl.Get(wasteID) {
			t.Fatal("derived column lost in round trip")
		}
	}
}

func TestRunParallelWithSummariesAndImbalance(t *testing.T) {
	res, err := Run(RunConfig{Workload: "pflotran", Ranks: 8, Summaries: true})
	if err != nil {
		t.Fatal(err)
	}
	tree := res.Experiment.Tree
	if tree.Reg.ByName("CYCLES (mean)") == nil || tree.Reg.ByName("CYCLES (max)") == nil {
		t.Fatal("summary columns missing")
	}
	rep, err := res.AnalyzeImbalance(
		[]string{"main", "stepper_run", "loop at timestepper.F90: 384", "flow_solve"},
		"CYCLES", 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ImbalanceFactor() <= 0 {
		t.Fatal("no imbalance detected in the skewed workload")
	}
	if res.Experiment.NRanks != 8 {
		t.Fatalf("NRanks = %d", res.Experiment.NRanks)
	}
}

func TestRunParamOverride(t *testing.T) {
	small, err := Run(RunConfig{Workload: "pflotran", Ranks: 2, Params: map[string]int64{"cells": 100}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(RunConfig{Workload: "pflotran", Ranks: 2, Params: map[string]int64{"cells": 400}})
	if err != nil {
		t.Fatal(err)
	}
	if big.Experiment.Tree.Total(0) <= small.Experiment.Tree.Total(0) {
		t.Fatal("cells parameter had no effect")
	}
}

func TestFig1TreeExported(t *testing.T) {
	tree := Fig1Tree()
	if tree.Total(0) != 10 {
		t.Fatalf("Fig1 total = %g", tree.Total(0))
	}
	cv := BuildCallersView(tree)
	cv.ExpandAll()
	fv := BuildFlatView(tree)
	if len(cv.Roots) != 4 || len(fv.Roots) != 1 {
		t.Fatal("views wrong on Fig1 tree")
	}
}

func TestMetricColumnUnknown(t *testing.T) {
	tree := Fig1Tree()
	if _, err := MetricColumn(tree, "NOPE"); err == nil {
		t.Fatal("unknown metric resolved")
	}
}

func TestRunWithThreads(t *testing.T) {
	res, err := Run(RunConfig{Workload: "toy", Ranks: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 4 {
		t.Fatalf("profiles = %d, want 4 (2 ranks x 2 threads)", len(res.Profiles))
	}
	seen := map[[2]int]bool{}
	for _, p := range res.Profiles {
		seen[[2]int{p.Rank, p.Thread}] = true
	}
	if len(seen) != 4 {
		t.Fatalf("duplicate (rank, thread) identities: %v", seen)
	}
	if res.Experiment.NRanks != 4 {
		t.Fatalf("NRanks = %d (profiles merged)", res.Experiment.NRanks)
	}
}

func TestAnalyzeImbalanceUnknownScope(t *testing.T) {
	res, err := Run(RunConfig{Workload: "toy", Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.AnalyzeImbalance([]string{"ghost"}, "CYCLES", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Values {
		if v != 0 {
			t.Fatal("ghost scope produced values")
		}
	}
}

func TestSessionThroughFacade(t *testing.T) {
	src, err := WorkloadProgram("toy")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(Fig1Tree(), src)
	if s.View() != ViewCC {
		t.Fatal("default view wrong")
	}
	path := s.HotPath(0)
	if len(path) == 0 {
		t.Fatal("no hot path through facade")
	}
	s.SwitchView(ViewFlat)
	if err := s.FlattenOnce(); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadProgram("ghost"); err == nil {
		t.Fatal("unknown workload program resolved")
	}
}

func TestAnalyzeScalingThroughFacade(t *testing.T) {
	small, err := Run(RunConfig{Workload: "pflotran", Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(RunConfig{Workload: "pflotran", Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeScaling(small.Experiment.Tree, big.Experiment.Tree, ScalingConfig{
		Metric: "CYCLES", Mode: WeakScaling, RanksSmall: 2, RanksBig: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Column <= 0 {
		t.Fatal("no scaling column")
	}
}
