// Package callpath is the public API of the toolkit: a Go reproduction of
// the call-path-profile presentation system described in Adhianto,
// Mellor-Crummey & Tallent, "Effectively Presenting Call Path Profiles of
// Application Performance" (ICPP 2010) — the hpcviewer paper — together
// with the full measurement pipeline it sits on (sampling, structure
// recovery, correlation, multi-rank merging).
//
// Typical use:
//
//	res, err := callpath.Run(callpath.RunConfig{Workload: "s3d"})
//	tree := res.Experiment.Tree
//	path := callpath.HotPath(tree.Root, 0, 0.5)         // Equation 3
//	cv := callpath.BuildCallersView(tree)               // bottom-up view
//	fv := callpath.BuildFlatView(tree)                  // static view
//	callpath.RenderTree(os.Stdout, tree, callpath.RenderOptions{})
//
// The three views, the inclusive/exclusive attribution rules, hot-path
// analysis, derived metrics ($n formulas), flattening and the summary
// statistics for large parallel runs all follow the paper; see DESIGN.md
// for the per-section mapping and EXPERIMENTS.md for reproduced figures.
package callpath

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/imbalance"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/render"
	"repro/internal/sampler"
	"repro/internal/scaling"
	"repro/internal/structfile"
	"repro/internal/viewer"
	"repro/internal/workloads"
)

// Core presentation types.
type (
	// Tree is a canonical calling context tree with metrics.
	Tree = core.Tree
	// Node is one scope in a tree or view.
	Node = core.Node
	// Key identifies a scope within its parent.
	Key = core.Key
	// Kind classifies scopes.
	Kind = core.Kind
	// CallersView is the bottom-up view (lazily constructed).
	CallersView = core.CallersView
	// FlatView is the static-structure view.
	FlatView = core.FlatView
	// SortSpec selects the metric column and flavor to sort scopes by.
	SortSpec = core.SortSpec
	// Experiment is a serializable performance database.
	Experiment = expdb.Experiment
	// RenderOptions controls the tree-tabular renderer.
	RenderOptions = render.Options
	// RenderColumn selects one metric column/flavor for rendering.
	RenderColumn = render.Column
	// MetricRegistry is the column table of a tree.
	MetricRegistry = metric.Registry
	// SummaryOp selects a summary statistic (mean/min/max/stddev).
	SummaryOp = metric.SummaryOp
	// ImbalanceReport is a per-rank load-imbalance analysis.
	ImbalanceReport = imbalance.Report
	// Program is a synthetic application (for custom workloads).
	Program = prog.Program
)

// Scope kinds.
const (
	KindRoot     = core.KindRoot
	KindFrame    = core.KindFrame
	KindLoop     = core.KindLoop
	KindAlien    = core.KindAlien
	KindStmt     = core.KindStmt
	KindLM       = core.KindLM
	KindFile     = core.KindFile
	KindProc     = core.KindProc
	KindCallSite = core.KindCallSite
)

// Summary operators.
const (
	OpSum    = metric.OpSum
	OpMean   = metric.OpMean
	OpMin    = metric.OpMin
	OpMax    = metric.OpMax
	OpStdDev = metric.OpStdDev
)

// DefaultHotPathThreshold is the paper's t = 50%.
const DefaultHotPathThreshold = core.DefaultHotPathThreshold

// View construction and analysis (Sections III–V of the paper).
var (
	// BuildCallersView creates the bottom-up view with lazily expanded
	// caller chains.
	BuildCallersView = core.BuildCallersView
	// BuildFlatView creates the static view.
	BuildFlatView = core.BuildFlatView
	// HotPath expands the hot path (Equation 3) from a scope.
	HotPath = core.HotPath
	// Flatten elides one layer of hierarchy (Section III-C).
	Flatten = core.Flatten
	// FlattenN applies Flatten n times.
	FlattenN = core.FlattenN
	// SortScopes orders a sibling list by a metric column.
	SortScopes = core.SortScopes
	// SortTree sorts every sibling list of a subtree.
	SortTree = core.SortTree
	// ApplyDerived evaluates derived metric columns over a subtree.
	ApplyDerived = core.ApplyDerived
	// Walk visits a subtree in preorder.
	Walk = core.Walk
	// Fig1Tree builds the paper's Figure 1/2 worked example.
	Fig1Tree = core.Fig1Tree

	// RenderTree / RenderCallers / RenderFlat write a view as a
	// tree-table (the hpcviewer presentation, Section V).
	RenderTree    = render.RenderTree
	RenderCallers = render.RenderCallers
	RenderFlat    = render.RenderFlat
)

// Workloads lists the built-in synthetic applications.
func Workloads() []string { return workloads.Names() }

// RunConfig configures an end-to-end measurement run.
type RunConfig struct {
	// Workload names a built-in workload (see Workloads()).
	Workload string
	// Ranks overrides the workload's default SPMD width (0 = default).
	Ranks int
	// Threads runs each rank as this many threads, one profile per
	// (rank, thread) pair (0 or 1 = single-threaded).
	Threads int
	// Period overrides the base sampling period in cycles (0 = default).
	Period uint64
	// Seed varies the execution deterministically.
	Seed int64
	// Params override workload parameters.
	Params map[string]int64
	// Summaries adds mean/min/max/stddev columns over ranks for every
	// raw metric when more than one rank ran.
	Summaries bool
}

// Result is everything a run produces.
type Result struct {
	// Experiment is the merged database (views are built from
	// Experiment.Tree).
	Experiment *Experiment
	// Doc is the recovered structure document.
	Doc *structfile.Doc
	// Profiles are the per-rank raw profiles (inputs to imbalance
	// analysis).
	Profiles []*profile.Profile
	// Merged retains per-scope summary statistics.
	Merged *merge.Result
}

// Run executes the full pipeline: build the workload, lower it to the
// synthetic ISA, recover structure, execute under sampling on every rank,
// correlate, and merge.
func Run(cfg RunConfig) (*Result, error) {
	spec, err := workloads.ByName(cfg.Workload)
	if err != nil {
		return nil, err
	}
	if cfg.Ranks > 0 {
		spec.Ranks = cfg.Ranks
	}
	if cfg.Period > 0 {
		spec.Period = cfg.Period
	}
	params := spec.Params
	if cfg.Params != nil {
		merged := map[string]int64{}
		for k, v := range spec.Params {
			merged[k] = v
		}
		for k, v := range cfg.Params {
			merged[k] = v
		}
		params = merged
	}

	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		return nil, err
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		return nil, err
	}
	profs, err := mpi.Run(im, mpi.Config{
		NRanks:         spec.Ranks,
		ThreadsPerRank: cfg.Threads,
		Params:         params,
		Seed:           cfg.Seed,
		Events:         sampler.DefaultEvents(spec.Period),
	})
	if err != nil {
		return nil, err
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		return nil, err
	}
	if cfg.Summaries && len(profs) > 1 {
		for _, d := range res.Tree.Reg.Columns() {
			if d.Kind != metric.Raw {
				continue
			}
			if err := res.AddSummaries(d.ID, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev); err != nil {
				return nil, err
			}
		}
	}
	return &Result{
		Experiment: expdb.FromMerge(res),
		Doc:        doc,
		Profiles:   profs,
		Merged:     res,
	}, nil
}

// AddDerived registers a derived metric on the tree and evaluates it
// everywhere. The formula references earlier columns as $0, $1, ...
// (Section V-D); the returned column ID is usable for sorting, rendering
// and hot paths.
func AddDerived(t *Tree, name, formula string) (int, error) {
	d, err := t.Reg.AddDerived(name, formula)
	if err != nil {
		return 0, err
	}
	if err := t.ApplyDerivedTree(); err != nil {
		return 0, err
	}
	return d.ID, nil
}

// MetricColumn resolves a metric name to its column ID.
func MetricColumn(t *Tree, name string) (int, error) {
	d := t.Reg.ByName(name)
	if d == nil {
		return 0, fmt.Errorf("callpath: metric %q not found", name)
	}
	return d.ID, nil
}

// AnalyzeImbalance computes the per-rank series, statistics and histogram
// of the named metric at the scope identified by the label path (Section
// VI-C; Figure 7).
func (r *Result) AnalyzeImbalance(path []string, metricName string, bins int) (*ImbalanceReport, error) {
	return imbalance.Analyze(r.Doc, r.Profiles, path, metricName, bins)
}

// WriteXML / WriteBinary / ReadXML / ReadBinary move experiment databases
// to and from disk.
func WriteXML(w io.Writer, e *Experiment) error    { return e.WriteXML(w) }
func WriteBinary(w io.Writer, e *Experiment) error { return e.WriteBinary(w) }
func ReadXML(r io.Reader) (*Experiment, error)     { return expdb.ReadXML(r) }
func ReadBinary(r io.Reader) (*Experiment, error)  { return expdb.ReadBinary(r) }

// Scalability analysis (Section VI-A): difference two runs of the same
// program under a scaling expectation.
type (
	// ScalingConfig describes the pair of runs being compared.
	ScalingConfig = scaling.Config
	// ScalingResult reports where scalability was lost.
	ScalingResult = scaling.Result
)

// Scaling modes.
const (
	WeakScaling   = scaling.Weak
	StrongScaling = scaling.Strong
)

// AnalyzeScaling annotates big's tree with a scaling-loss column computed
// against small's per-rank costs.
func AnalyzeScaling(small, big *Tree, cfg ScalingConfig) (*ScalingResult, error) {
	return scaling.Analyze(small, big, cfg)
}

// Interactive presentation (the hpcviewer session: expand/collapse, hot
// paths, zoom, flatten, source pane).
type (
	// Session is a stateful interactive view over a tree.
	Session = viewer.Session
	// ViewKind selects the session's active view.
	ViewKind = viewer.ViewKind
)

// Session view kinds.
const (
	ViewCC      = viewer.ViewCC
	ViewCallers = viewer.ViewCallers
	ViewFlat    = viewer.ViewFlat
)

// NewSession starts an interactive session; source (a workload's Program)
// may be nil when no source pane is needed.
func NewSession(t *Tree, source *Program) *Session { return viewer.New(t, source) }

// WorkloadProgram returns the named workload's program, e.g. to attach as
// a session's source pane.
func WorkloadProgram(name string) (*Program, error) {
	spec, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Program, nil
}
