package sim

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/prog"
)

func mustLower(t *testing.T, p *prog.Program) *isa.Image {
	t.Helper()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func run(t *testing.T, im *isa.Image, cfg Config) *VM {
	t.Helper()
	vm, err := New(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestRunStraightLine(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("sl").
		File("a.c").
		Proc("main", 1,
			prog.Wc(2, prog.Cost{Cycles: 10, FLOPs: 4, L1Miss: 2, L2Miss: 1, Instr: 10}),
			prog.Wc(3, prog.Cost{Cycles: 5, FLOPs: 1, Instr: 5}),
		).
		Entry("main").MustBuild())
	vm := run(t, im, Config{})
	if vm.Counters[EvCycles] != 15 || vm.Counters[EvFLOPs] != 5 ||
		vm.Counters[EvL1Miss] != 2 || vm.Counters[EvL2Miss] != 1 || vm.Counters[EvInstr] != 15 {
		t.Fatalf("counters = %v", vm.Counters)
	}
}

func TestRunLoopTripCount(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("loop").
		File("a.c").
		Proc("main", 1,
			prog.L(2, 7, prog.W(3, 3))).
		Entry("main").MustBuild())
	vm := run(t, im, Config{})
	if vm.Counters[EvCycles] != 21 {
		t.Fatalf("cycles = %d, want 21", vm.Counters[EvCycles])
	}
}

func TestRunNestedLoops(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("nest").
		File("a.c").
		Proc("main", 1,
			prog.L(2, 4,
				prog.L(3, 5, prog.W(4, 2)))).
		Entry("main").MustBuild())
	vm := run(t, im, Config{})
	if vm.Counters[EvCycles] != 40 {
		t.Fatalf("cycles = %d, want 40", vm.Counters[EvCycles])
	}
}

func TestRunZeroTripLoop(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("z").
		File("a.c").
		Proc("main", 1,
			prog.L(2, 0, prog.W(3, 100)),
			prog.W(4, 1)).
		Entry("main").MustBuild())
	vm := run(t, im, Config{})
	if vm.Counters[EvCycles] != 1 {
		t.Fatalf("cycles = %d, want 1 (loop body must not run)", vm.Counters[EvCycles])
	}
}

func TestRunParamTripCount(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("p").
		File("a.c").
		Proc("main", 1,
			prog.Lx(2, prog.ParamInt("n"), prog.W(3, 1))).
		Entry("main").MustBuild())
	vm := run(t, im, Config{Params: &prog.Params{Values: map[string]int64{"n": 13}}})
	if vm.Counters[EvCycles] != 13 {
		t.Fatalf("cycles = %d, want 13", vm.Counters[EvCycles])
	}
}

func TestRunCalls(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("c").
		File("a.c").
		Proc("leaf", 10, prog.W(11, 5)).
		Proc("mid", 20, prog.C(21, "leaf"), prog.C(22, "leaf")).
		Proc("main", 1, prog.C(2, "mid"), prog.C(3, "leaf")).
		Entry("main").MustBuild())
	vm := run(t, im, Config{})
	if vm.Counters[EvCycles] != 15 {
		t.Fatalf("cycles = %d, want 15", vm.Counters[EvCycles])
	}
	if vm.Depth() != 0 {
		t.Fatalf("stack depth after run = %d", vm.Depth())
	}
}

func TestRunBoundedRecursion(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("r").
		File("a.c").
		Proc("g", 1,
			prog.W(2, 1),
			prog.IfDepth(3, 4, prog.C(3, "g"))).
		Proc("main", 10, prog.C(11, "g")).
		Entry("main").MustBuild())
	vm := run(t, im, Config{})
	// Depth levels 1..4 each do 1 cycle.
	if vm.Counters[EvCycles] != 4 {
		t.Fatalf("cycles = %d, want 4", vm.Counters[EvCycles])
	}
}

func TestRunDeterministicWithProbBranches(t *testing.T) {
	b := func() *prog.Program {
		return prog.NewBuilder("pb").
			File("a.c").
			Proc("main", 1,
				prog.L(2, 1000,
					prog.IfP(3, 0.3, prog.W(4, 1)))).
			Entry("main").MustBuild()
	}
	im1 := mustLower(t, b())
	im2 := mustLower(t, b())
	vm1 := run(t, im1, Config{Seed: 42})
	vm2 := run(t, im2, Config{Seed: 42})
	if vm1.Counters != vm2.Counters {
		t.Fatalf("same seed, different counters: %v vs %v", vm1.Counters, vm2.Counters)
	}
	vm3 := run(t, im1, Config{Seed: 43})
	if vm1.Counters == vm3.Counters {
		t.Fatal("different seeds produced identical execution (suspicious)")
	}
	// ~30% of 1000 iterations should do work.
	c := vm1.Counters[EvCycles]
	if c < 200 || c > 400 {
		t.Fatalf("probabilistic branch taken %d/1000 times, want ~300", c)
	}
}

func TestRunIfElse(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("ie").
		File("a.c").
		Proc("main", 1,
			prog.If{Line: 2, Cond: prog.ParamCond{Name: "flag"},
				Then: []prog.Stmt{prog.W(3, 100)},
				Else: []prog.Stmt{prog.W(4, 7)}},
		).
		Entry("main").MustBuild())
	on := run(t, im, Config{Params: &prog.Params{Values: map[string]int64{"flag": 1}}})
	if on.Counters[EvCycles] != 100 {
		t.Fatalf("then-branch cycles = %d, want 100", on.Counters[EvCycles])
	}
	off := run(t, im, Config{})
	if off.Counters[EvCycles] != 7 {
		t.Fatalf("else-branch cycles = %d, want 7", off.Counters[EvCycles])
	}
}

func TestRunStackOverflowGuard(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("so").
		File("a.c").
		Proc("g", 1, prog.IfDepth(2, 1<<30, prog.C(2, "g"))).
		Proc("main", 10, prog.C(11, "g")).
		Entry("main").MustBuild())
	vm, err := New(im, Config{MaxStack: 64})
	if err != nil {
		t.Fatal(err)
	}
	err = vm.Run()
	if err == nil || !strings.Contains(err.Error(), "stack") {
		t.Fatalf("unbounded recursion not caught: %v", err)
	}
}

func TestRunStepGuard(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("sg").
		File("a.c").
		Proc("main", 1, prog.L(2, 1<<40, prog.W(3, 1))).
		Entry("main").MustBuild())
	vm, err := New(im, Config{MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err == nil {
		t.Fatal("runaway loop not caught")
	}
}

type recordingObserver struct {
	costs  []Counters
	depths []int
	paths  [][]uint64
	idxs   []int32
}

func (o *recordingObserver) OnCost(vm *VM, idx int32, delta *Counters) {
	o.costs = append(o.costs, *delta)
	o.depths = append(o.depths, vm.Depth())
	o.paths = append(o.paths, vm.CallPath(nil))
	o.idxs = append(o.idxs, idx)
}

func TestObserverSeesCallPath(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("ob").
		File("a.c").
		Proc("leaf", 10, prog.W(11, 5)).
		Proc("main", 1, prog.C(2, "leaf")).
		Entry("main").MustBuild())
	obs := &recordingObserver{}
	run(t, im, Config{Observer: obs})
	if len(obs.costs) != 1 {
		t.Fatalf("observed %d cost events, want 1", len(obs.costs))
	}
	if obs.depths[0] != 2 {
		t.Fatalf("depth = %d, want 2", obs.depths[0])
	}
	path := obs.paths[0]
	if len(path) != 1 {
		t.Fatalf("call path length = %d, want 1", len(path))
	}
	// The path entry is the call instruction in main.
	idx := im.Index(path[0])
	if idx < 0 || im.Code[idx].Op != isa.OpCall {
		t.Fatalf("path PC does not point at a call: %s", im.Disasm(idx))
	}
	// The sampled instruction is the work instruction in leaf.
	if im.Code[obs.idxs[0]].Op != isa.OpWork {
		t.Fatalf("sampled instr is %v", im.Code[obs.idxs[0]].Op)
	}
	if im.Procs[im.ProcAt(obs.idxs[0])].Name != "leaf" {
		t.Fatal("sampled instruction not in leaf")
	}
}

func TestObserverDoesNotPerturbExecution(t *testing.T) {
	p := prog.NewBuilder("np").
		File("a.c").
		Proc("main", 1,
			prog.L(2, 100,
				prog.IfP(3, 0.5, prog.W(4, 3)),
				prog.W(5, 1))).
		Entry("main").MustBuild()
	im := mustLower(t, p)
	plain := run(t, im, Config{Seed: 7})
	observed := run(t, im, Config{Seed: 7, Observer: &recordingObserver{}})
	if plain.Counters != observed.Counters {
		t.Fatalf("observer changed execution: %v vs %v", plain.Counters, observed.Counters)
	}
}

func TestBarrierCharging(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("ba").
		File("a.c").
		Proc("main", 1,
			prog.W(2, 10),
			prog.Sync(3),
			prog.W(4, 5)).
		Entry("main").MustBuild())
	var sawCycles uint64
	vm := run(t, im, Config{
		Barrier: func(cycles uint64) uint64 {
			sawCycles = cycles
			return 100
		},
	})
	if sawCycles != 10 {
		t.Fatalf("barrier saw %d cycles, want 10", sawCycles)
	}
	if vm.Counters[EvIdle] != 100 {
		t.Fatalf("idle = %d, want 100", vm.Counters[EvIdle])
	}
	if vm.Counters[EvCycles] != 115 {
		t.Fatalf("cycles = %d, want 115", vm.Counters[EvCycles])
	}
}

func TestBarrierNoHandlerIsNoop(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("bn").
		File("a.c").
		Proc("main", 1, prog.Sync(2), prog.W(3, 1)).
		Entry("main").MustBuild())
	vm := run(t, im, Config{})
	if vm.Counters[EvIdle] != 0 || vm.Counters[EvCycles] != 1 {
		t.Fatalf("counters = %v", vm.Counters)
	}
}

func TestBarrierIdleObserved(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("bo").
		File("a.c").
		Proc("main", 1, prog.W(2, 1), prog.Sync(3)).
		Entry("main").MustBuild())
	obs := &recordingObserver{}
	run(t, im, Config{
		Observer: obs,
		Barrier:  func(uint64) uint64 { return 50 },
	})
	var idleSeen uint64
	for i, c := range obs.costs {
		if c[EvIdle] > 0 {
			idleSeen += c[EvIdle]
			// idle charge happens inside the synthetic wait procedure
			idx := obs.idxs[i]
			pi := im.ProcAt(idx)
			if im.Procs[pi].Name != lower.WaitProcName {
				t.Fatalf("idle charged in %q, want %q", im.Procs[pi].Name, lower.WaitProcName)
			}
			if len(obs.paths[i]) == 0 {
				t.Fatal("idle charge has empty call path (should be called from main)")
			}
		}
	}
	if idleSeen != 50 {
		t.Fatalf("observed idle = %d, want 50", idleSeen)
	}
}

func TestEventNames(t *testing.T) {
	for e := Event(0); e < NumEvents; e++ {
		name := e.String()
		got, ok := EventByName(name)
		if !ok || got != e {
			t.Fatalf("EventByName(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := EventByName("NOPE"); ok {
		t.Fatal("unknown event resolved")
	}
	if !strings.Contains(Event(99).String(), "99") {
		t.Fatal("out-of-range event name")
	}
}

func TestNewRejectsInvalidImage(t *testing.T) {
	if _, err := New(&isa.Image{EntryProc: 1}, Config{}); err == nil {
		t.Fatal("invalid image accepted")
	}
}

func TestCountersSub(t *testing.T) {
	a := Counters{10, 20, 30, 0, 0, 5}
	b := Counters{1, 2, 3, 0, 0, 5}
	if a.Sub(b) != (Counters{9, 18, 27, 0, 0, 0}) {
		t.Fatalf("Sub = %v", a.Sub(b))
	}
}

func TestRunUnknownOpcode(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("uo").
		File("a.c").
		Proc("main", 1, prog.W(2, 1)).
		Entry("main").MustBuild())
	im.Code[0].Op = isa.Op(99) // corrupt after validation
	vm, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err == nil {
		t.Fatal("unknown opcode executed")
	}
}

func TestRunPCEscape(t *testing.T) {
	// A procedure that falls off its end (no ret) must be caught.
	im := &isa.Image{
		Name:    "esc",
		Base:    0x400000,
		Modules: []string{"esc"},
		Files:   []isa.FileSym{{Name: "a.c", Module: 0}},
		Procs: []isa.ProcSym{
			{Name: "main", File: 0, Line: 1, Start: 0, End: 1},
		},
		Code: []isa.Instr{
			{Op: isa.OpWork, Cost: prog.Cost{Cycles: 1}, File: 0, Line: 2, Inline: isa.NoInline},
		},
		EntryProc: 0,
	}
	vm, err := New(im, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err == nil {
		t.Fatal("pc escape not caught")
	}
}
