// Package sim executes lowered images on a virtual machine with a virtual
// cycle clock and hardware-event counters. It is the "machine" under the
// hpcrun substitute: work instructions advance counters deterministically,
// an Observer hook sees every counter advance (the sampler attaches there),
// and the call stack can be unwound to synthetic return addresses at any
// moment — the same contract asynchronous sampling has with real hardware.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Event identifies one hardware counter.
type Event int

// The measured events. EvIdle accumulates barrier wait time charged by the
// SPMD harness; it backs the idleness metric of the paper's load-imbalance
// study (Section VI-C).
const (
	EvCycles Event = iota
	EvFLOPs
	EvL1Miss
	EvL2Miss
	EvInstr
	EvIdle
	NumEvents
)

var eventNames = [NumEvents]string{"CYCLES", "FLOPS", "L1_DCM", "L2_DCM", "INSTR", "IDLE"}

// String returns the PAPI-style event name.
func (e Event) String() string {
	if e < 0 || e >= NumEvents {
		return fmt.Sprintf("Event(%d)", int(e))
	}
	return eventNames[e]
}

// EventByName returns the event with the given name.
func EventByName(name string) (Event, bool) {
	for i, n := range eventNames {
		if n == name {
			return Event(i), true
		}
	}
	return 0, false
}

// Counters is the state of all event counters.
type Counters [NumEvents]uint64

// Get returns counter e.
func (c *Counters) Get(e Event) uint64 { return c[e] }

// AddCost folds a work-instruction cost bundle into the counters.
func (c *Counters) AddCost(cost prog.Cost) {
	c[EvCycles] += cost.Cycles
	c[EvFLOPs] += cost.FLOPs
	c[EvL1Miss] += cost.L1Miss
	c[EvL2Miss] += cost.L2Miss
	c[EvInstr] += cost.Instr
}

// Sub returns c - o element-wise (callers ensure monotonicity).
func (c Counters) Sub(o Counters) Counters {
	var d Counters
	for i := range c {
		d[i] = c[i] - o[i]
	}
	return d
}

// Observer is notified after every counter advance. idx is the absolute
// instruction index that was executing when the counters moved. The delta
// is passed by pointer and must not be retained; this hook runs once per
// work instruction, so its cost is the simulator's analog of measurement
// overhead.
type Observer interface {
	OnCost(vm *VM, idx int32, delta *Counters)
}

// BarrierFunc is called when an OpBarrier executes. It receives the rank's
// current cycle count and returns the idle cycles to charge before the rank
// proceeds; the SPMD harness (internal/mpi) supplies an implementation that
// blocks until all ranks arrive.
type BarrierFunc func(cycles uint64) uint64

// Config parameterizes an execution.
type Config struct {
	// Params are the runtime parameters (rank, problem sizes).
	Params *prog.Params
	// Seed drives probabilistic branches. Executions with equal images,
	// params and seeds are bit-identical.
	Seed int64
	// MaxSteps bounds interpreted instructions (default 200M) as a
	// runaway guard.
	MaxSteps int64
	// MaxStack bounds call depth (default 4096).
	MaxStack int
	// Observer, if non-nil, sees every counter advance.
	Observer Observer
	// Barrier handles OpBarrier instructions; nil makes barriers no-ops.
	Barrier BarrierFunc
}

type frame struct {
	proc  int32
	pc    int32
	retPC int32 // caller-side instruction index to resume at
	regs  [isa.NumRegs]int64
}

// VM interprets one image.
type VM struct {
	im       *isa.Image
	cfg      Config
	rng      *rand.Rand
	stack    []frame
	procUses []int32 // activation count per procedure, for DepthCond
	// Counters is the current counter state; observers may read it.
	Counters Counters
	// Steps is the number of interpreted instructions so far.
	Steps int64
	// scratch is reused for observer deltas so the per-instruction hook
	// never allocates.
	scratch Counters
}

// New prepares a VM. The image must validate.
func New(im *isa.Image, cfg Config) (*VM, error) {
	if err := im.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200_000_000
	}
	if cfg.MaxStack == 0 {
		cfg.MaxStack = 4096
	}
	if cfg.Params == nil {
		cfg.Params = &prog.Params{}
	}
	return &VM{
		im:       im,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		procUses: make([]int32, len(im.Procs)),
	}, nil
}

// Image returns the image being executed.
func (vm *VM) Image() *isa.Image { return vm.im }

// Params returns the execution parameters.
func (vm *VM) Params() *prog.Params { return vm.cfg.Params }

// Depth returns the current call-stack depth.
func (vm *VM) Depth() int { return len(vm.stack) }

// CallPath appends to buf the synthetic addresses of the call instructions
// that created each live frame, outermost first (the entry frame
// contributes nothing). This is the unwind operation a call path profiler
// performs at every sample.
func (vm *VM) CallPath(buf []uint64) []uint64 {
	for i := 1; i < len(vm.stack); i++ {
		buf = append(buf, vm.im.Addr(vm.stack[i].retPC-1))
	}
	return buf
}

// Run executes the image from its entry procedure to completion.
func (vm *VM) Run() error {
	ep := vm.im.EntryProc
	vm.stack = append(vm.stack[:0], frame{proc: ep, pc: vm.im.Procs[ep].Start, retPC: -1})
	vm.procUses[ep]++

	for len(vm.stack) > 0 {
		if vm.Steps >= vm.cfg.MaxSteps {
			return fmt.Errorf("sim: exceeded %d steps (runaway program?)", vm.cfg.MaxSteps)
		}
		vm.Steps++
		f := &vm.stack[len(vm.stack)-1]
		if f.pc < vm.im.Procs[f.proc].Start || f.pc >= vm.im.Procs[f.proc].End {
			return fmt.Errorf("sim: pc %d escaped procedure %q", f.pc, vm.im.Procs[f.proc].Name)
		}
		in := &vm.im.Code[f.pc]
		switch in.Op {
		case isa.OpWork:
			vm.Counters.AddCost(in.Cost)
			if vm.cfg.Observer != nil {
				vm.scratch = Counters{}
				vm.scratch.AddCost(in.Cost)
				vm.cfg.Observer.OnCost(vm, f.pc, &vm.scratch)
			}
			f.pc++

		case isa.OpSet:
			f.regs[in.A] = vm.im.Exprs[in.B].Eval(vm.cfg.Params)
			f.pc++

		case isa.OpDec:
			f.regs[in.A]--
			f.pc++

		case isa.OpBrZ:
			if f.regs[in.A] <= 0 {
				f.pc = in.Target
			} else {
				f.pc++
			}

		case isa.OpBrCond:
			// The draw is consumed unconditionally so that the branch
			// history — and therefore the execution — is independent
			// of whether a sampler is attached.
			draw := vm.rng.Float64()
			depth := int(vm.procUses[f.proc])
			if vm.im.Conds[in.A].Test(vm.cfg.Params, depth, draw) {
				f.pc = in.Target
			} else {
				f.pc++
			}

		case isa.OpJump:
			f.pc = in.Target

		case isa.OpCall:
			if len(vm.stack) >= vm.cfg.MaxStack {
				return fmt.Errorf("sim: call stack exceeded %d frames calling %q",
					vm.cfg.MaxStack, vm.im.Procs[in.A].Name)
			}
			retPC := f.pc + 1
			vm.stack = append(vm.stack, frame{
				proc:  in.A,
				pc:    vm.im.Procs[in.A].Start,
				retPC: retPC,
			})
			vm.procUses[in.A]++

		case isa.OpRet:
			vm.procUses[f.proc]--
			vm.stack = vm.stack[:len(vm.stack)-1]
			if len(vm.stack) > 0 {
				top := &vm.stack[len(vm.stack)-1]
				top.pc = f.retPC
			}

		case isa.OpBarrier:
			if vm.cfg.Barrier != nil {
				idle := vm.cfg.Barrier(vm.Counters[EvCycles])
				if idle > 0 {
					vm.Counters[EvCycles] += idle
					vm.Counters[EvIdle] += idle
					if vm.cfg.Observer != nil {
						vm.scratch = Counters{}
						vm.scratch[EvCycles] = idle
						vm.scratch[EvIdle] = idle
						vm.cfg.Observer.OnCost(vm, f.pc, &vm.scratch)
					}
				}
			}
			f.pc++

		default:
			return fmt.Errorf("sim: unknown opcode %v at %d", in.Op, f.pc)
		}
	}
	return nil
}
