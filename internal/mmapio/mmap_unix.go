//go:build unix && !nommap

package mmapio

import (
	"fmt"
	"os"
	"syscall"
)

// Map maps path read-only. The file handle is closed before returning (the
// mapping keeps the pages alive), so the region is the only resource to
// release.
func Map(path string) (*Region, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Region{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapio: %s: file too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("mmapio: mmap %s: %w", path, err)
	}
	return &Region{data: data, mapped: true}, nil
}

// Close unmaps the region. Any []byte or []float64 views into it become
// invalid; touching them after Close faults.
func (r *Region) Close() error {
	if r.data == nil {
		return nil
	}
	data := r.data
	r.data = nil
	if !r.mapped {
		return nil
	}
	return syscall.Munmap(data)
}
