//go:build !unix || nommap

package mmapio

import (
	"io"
	"os"
	"unsafe"
)

// Map reads path into a page-aligned heap buffer — the portable stand-in
// for mmap. The open is O(file) rather than O(index), but alignment and
// the read-only contract match the mapped path exactly, so readers built
// on float64 views over the bytes work unchanged.
func Map(path string) (*Region, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := int(st.Size())
	if size == 0 {
		return &Region{}, nil
	}
	buf := alignedBuf(size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return &Region{data: buf}, nil
}

// alignedBuf allocates n bytes starting on a page boundary by over-
// allocating one page and slicing at the first aligned offset.
func alignedBuf(n int) []byte {
	page := os.Getpagesize()
	raw := make([]byte, n+page)
	off := int(uintptr(unsafe.Pointer(&raw[0])) & uintptr(page-1))
	if off != 0 {
		off = page - off
	}
	return raw[off : off+n : off+n]
}

// Close releases the buffer (garbage collection does the actual work).
func (r *Region) Close() error {
	r.data = nil
	return nil
}
