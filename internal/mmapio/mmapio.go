// Package mmapio maps files into memory read-only. It is the zero-copy
// substrate of the v3 experiment-database open: the mapped bytes are handed
// out as column slabs without ever being copied onto the heap, so an open
// database's resident set is just the pages queries actually touch.
//
// Two implementations sit behind one API:
//
//   - On unix (and without the nommap build tag), Map uses mmap(2) with
//     PROT_READ|MAP_PRIVATE: open cost is O(1) in the file size and pages
//     fault in lazily on first access.
//   - Elsewhere — or with `-tags nommap`, for filesystems where mmap
//     misbehaves — Map falls back to reading the file into a page-aligned
//     heap buffer. Alignment and read-only discipline are preserved so
//     callers behave identically; only the laziness is lost.
//
// Either way the returned bytes start on a page boundary, so 8-byte-aligned
// file offsets stay 8-byte-aligned in memory — the precondition for viewing
// slices of the mapping as []float64.
package mmapio

// Region is a read-only byte view of an entire file. Close releases it;
// the bytes must not be accessed afterwards (for a real mapping they are
// unmapped and access faults).
type Region struct {
	data   []byte
	mapped bool
}

// Bytes returns the file contents. Callers must treat them as read-only:
// the memory may be a shared file mapping.
func (r *Region) Bytes() []byte { return r.data }

// Len returns the file size in bytes.
func (r *Region) Len() int { return len(r.data) }

// Mapped reports whether the region is a true memory mapping (false for
// the page-aligned read fallback).
func (r *Region) Mapped() bool { return r.mapped }
