package mpi

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
)

// skewed builds an SPMD program where work grows with rank:
// each rank does (rank+1)*base cycles between two barriers.
func skewed(t *testing.T) *isa.Image {
	t.Helper()
	p := prog.NewBuilder("skew").
		File("solver.f90").
		Proc("main", 1,
			prog.Lx(2, prog.ScaledInt{X: prog.RankInt{}, Num: 1, Den: 1, Off: 1},
				prog.W(3, 1000)),
			prog.Sync(4),
			prog.W(5, 100),
			prog.Sync(6),
		).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestRunSingleRank(t *testing.T) {
	im := skewed(t)
	profs, err := Run(im, Config{NRanks: 1, Events: []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 100},
		{Event: sim.EvIdle, Period: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 1 || profs[0].Rank != 0 {
		t.Fatalf("profiles = %d", len(profs))
	}
	// A single rank never idles.
	if idle := profs[0].Totals()[1]; idle != 0 {
		t.Fatalf("single-rank idle = %d, want 0", idle)
	}
}

func TestRunSkewedIdleness(t *testing.T) {
	im := skewed(t)
	const n = 4
	events := []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 10},
		{Event: sim.EvIdle, Period: 10},
	}
	profs, err := Run(im, Config{NRanks: n, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != n {
		t.Fatalf("profiles = %d, want %d", len(profs), n)
	}
	// Rank r does (r+1)*1000 cycles before the first barrier; the
	// slowest (rank 3) idles ~0, rank 0 idles ~3000.
	idles := make([]float64, n)
	for r, p := range profs {
		if p.Rank != r {
			t.Fatalf("profile order wrong: %d at %d", p.Rank, r)
		}
		idles[r] = float64(p.Totals()[1])
	}
	if !(idles[0] > idles[1] && idles[1] > idles[2] && idles[2] > idles[3]) {
		t.Fatalf("idleness not decreasing with rank: %v", idles)
	}
	if idles[3] > 150 {
		t.Fatalf("slowest rank idles too much: %v", idles)
	}
	if idles[0] < 2500 || idles[0] > 3500 {
		t.Fatalf("rank 0 idle = %v, want ~3000", idles[0])
	}
}

func TestRunDeterministicAcrossSchedules(t *testing.T) {
	im := skewed(t)
	events := []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 10},
		{Event: sim.EvIdle, Period: 10},
	}
	run := func() []uint64 {
		profs, err := Run(im, Config{NRanks: 8, Events: events})
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		for _, p := range profs {
			tot := p.Totals()
			out = append(out, tot[0], tot[1])
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic totals: %v vs %v", a, b)
		}
	}
}

func TestRunIdleAttributedToWaitProc(t *testing.T) {
	im := skewed(t)
	profs, err := Run(im, Config{NRanks: 2, Events: []sampler.EventConfig{
		{Event: sim.EvIdle, Period: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0's idle samples must all sit inside mpi_wait frames.
	wi := im.ProcByName(lower.WaitProcName)
	var found bool
	stack := []*profile.Node{profs[0].Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, row := range n.Samples() {
			if row.Counts[0] == 0 {
				continue
			}
			idx := im.Index(row.PC)
			if im.ProcAt(idx) != wi {
				t.Fatalf("idle sample outside %s", lower.WaitProcName)
			}
			found = true
		}
		stack = append(stack, n.Children()...)
	}
	if !found {
		t.Fatal("no idle samples recorded for rank 0")
	}
}

func TestRunUnevenBarrierCountsTerminates(t *testing.T) {
	// Rank 0 executes an extra barrier round; leave() must keep the
	// program from deadlocking.
	p := prog.NewBuilder("uneven").
		File("a.c").
		Proc("main", 1,
			prog.W(2, 100),
			prog.Sync(3),
			prog.If{Line: 4, Cond: rankZero{}, Then: []prog.Stmt{
				prog.W(5, 10),
				prog.Sync(6),
			}},
		).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	profs, err := Run(im, Config{NRanks: 3, Events: []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 3 {
		t.Fatalf("profiles = %d", len(profs))
	}
}

// rankZero is a test condition: true only on rank 0.
type rankZero struct{}

func (rankZero) Test(p *prog.Params, _ int, _ float64) bool { return p != nil && p.Rank == 0 }

// hybrid builds an MPI+threads program: each thread takes a slice of the
// rank's iterations (an OpenMP-style static partition) and thread 0 of
// each rank does extra serial work — a classic intra-rank imbalance.
func hybrid(t *testing.T) *isa.Image {
	t.Helper()
	p := prog.NewBuilder("hybrid").
		File("omp.c").
		Proc("main", 1,
			// Parallel region: n/nthreads iterations per thread.
			prog.Lx(2, divide{}, prog.W(3, 10)),
			// Serial part on thread 0 only.
			prog.If{Line: 5, Cond: thread0{}, Then: []prog.Stmt{prog.W(6, 500)}},
			prog.Sync(8),
		).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// divide computes n / nthreads.
type divide struct{}

func (divide) Eval(p *prog.Params) int64 {
	return p.Value("n") / prog.NThreadsInt{}.Eval(p)
}

// thread0 is true on thread 0.
type thread0 struct{}

func (thread0) Test(p *prog.Params, _ int, _ float64) bool { return p != nil && p.Thread == 0 }

func TestRunThreadsPerRank(t *testing.T) {
	im := hybrid(t)
	profs, err := Run(im, Config{
		NRanks: 2, ThreadsPerRank: 3,
		Params: map[string]int64{"n": 300},
		Events: []sampler.EventConfig{
			{Event: sim.EvCycles, Period: 10},
			{Event: sim.EvIdle, Period: 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 6 {
		t.Fatalf("profiles = %d, want 6", len(profs))
	}
	// Ordered by (rank, thread) with correct identities.
	for i, p := range profs {
		if p.Rank != i/3 || p.Thread != i%3 {
			t.Fatalf("profile %d = rank %d thread %d", i, p.Rank, p.Thread)
		}
	}
	// Thread 0 does the serial work (100*10 + 500 cycles); threads 1-2
	// idle at the barrier waiting for it.
	t0 := profs[0].Totals()
	t1 := profs[1].Totals()
	if t0[0] <= t1[0]-t1[1] {
		t.Fatalf("thread 0 work (%d) should exceed thread 1 work (%d - idle %d)", t0[0], t1[0], t1[1])
	}
	if t1[1] == 0 {
		t.Fatal("sibling thread never idled at the barrier")
	}
	if t0[1] > 50 {
		t.Fatalf("serial thread idled %d, want ~0", t0[1])
	}
}

func TestThreadExprs(t *testing.T) {
	p := &prog.Params{Thread: 2, NThreads: 4}
	if (prog.ThreadInt{}).Eval(p) != 2 {
		t.Fatal("ThreadInt wrong")
	}
	if (prog.NThreadsInt{}).Eval(p) != 4 {
		t.Fatal("NThreadsInt wrong")
	}
	if (prog.ThreadInt{}).Eval(nil) != 0 || (prog.NThreadsInt{}).Eval(nil) != 1 {
		t.Fatal("nil params defaults wrong")
	}
}

func TestRunBadEventsAborts(t *testing.T) {
	im := skewed(t)
	_, err := Run(im, Config{NRanks: 2, Events: []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 0}, // invalid: zero period
	}})
	if err == nil {
		t.Fatal("invalid events accepted")
	}
}

func TestSortByRankOrdersThreads(t *testing.T) {
	ps := []*profile.Profile{
		{Rank: 1, Thread: 1}, {Rank: 0, Thread: 1}, {Rank: 1, Thread: 0}, {Rank: 0, Thread: 0},
	}
	SortByRank(ps)
	want := [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i, p := range ps {
		if p.Rank != want[i][0] || p.Thread != want[i][1] {
			t.Fatalf("order[%d] = (%d,%d)", i, p.Rank, p.Thread)
		}
	}
}
