// Package mpi executes an SPMD program: N ranks, each a deterministic
// virtual machine with its own sampler, synchronized at barriers. A rank
// arriving early at a barrier is charged the cycle difference to the
// slowest rank as idleness inside the synthetic mpi_wait procedure — the
// measurement substrate behind the paper's PFLOTRAN load-imbalance study
// (Section VI-C), where "load imbalance ... forces some processes to idle
// between synchronization points".
//
// Ranks run as goroutines; the barrier is a reusable cyclic barrier.
// Because each rank's cycle count is deterministic, the computed idleness
// is independent of goroutine scheduling.
package mpi

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config parameterizes an SPMD run.
type Config struct {
	// NRanks is the number of processes (default 1).
	NRanks int
	// ThreadsPerRank runs each rank as that many threads (default 1):
	// every (rank, thread) pair executes its own VM and produces its
	// own profile, like hpcrun's per-thread measurement files. All
	// threads of all ranks join the barriers (a BSP-style hybrid
	// model).
	ThreadsPerRank int
	// Params are shared runtime parameters; each rank additionally
	// receives its Rank/NRanks.
	Params map[string]int64
	// Seed is the base RNG seed; rank r runs with Seed + r.
	Seed int64
	// Events configures sampling; nil uses sampler.DefaultEvents(1000).
	Events []sampler.EventConfig
	// MaxSteps/MaxStack forward to sim.Config.
	MaxSteps int64
	MaxStack int
	// Trace enables time-dimension trace capture on every thread's
	// sampler (thread 0 of each rank is what hpcprof serializes).
	Trace bool
	// TraceBuf is the capture buffer size in records (0 = default).
	TraceBuf int
	// TraceSpill builds the spill store for one thread's capture; nil
	// uses an in-memory store. File-backed stores keep capture memory
	// bounded for long runs.
	TraceSpill func(rank, thread int) (trace.SpillStore, error)
}

// Run executes the image on all ranks and returns one raw profile per
// rank, ordered by rank.
func Run(im *isa.Image, cfg Config) ([]*profile.Profile, error) {
	if cfg.NRanks <= 0 {
		cfg.NRanks = 1
	}
	if cfg.ThreadsPerRank <= 0 {
		cfg.ThreadsPerRank = 1
	}
	events := cfg.Events
	if events == nil {
		events = sampler.DefaultEvents(1000)
	}
	total := cfg.NRanks * cfg.ThreadsPerRank
	bar := newBarrier(total)

	profiles := make([]*profile.Profile, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	for rank := 0; rank < cfg.NRanks; rank++ {
		for thread := 0; thread < cfg.ThreadsPerRank; thread++ {
			wg.Add(1)
			go func(rank, thread int) {
				defer wg.Done()
				slot := rank*cfg.ThreadsPerRank + thread
				s, err := sampler.New(im.Name, rank, thread, events)
				if err != nil {
					errs[slot] = err
					bar.abort()
					return
				}
				if cfg.Trace {
					var spill trace.SpillStore = &trace.MemSpill{}
					if cfg.TraceSpill != nil {
						if spill, err = cfg.TraceSpill(rank, thread); err != nil {
							errs[slot] = fmt.Errorf("rank %d thread %d: trace spill: %w", rank, thread, err)
							bar.abort()
							return
						}
					}
					s.EnableTrace(spill, cfg.TraceBuf)
				}
				params := &prog.Params{
					Rank: rank, NRanks: cfg.NRanks,
					Thread: thread, NThreads: cfg.ThreadsPerRank,
					Values: cfg.Params,
				}
				vm, err := sim.New(im, sim.Config{
					Params:   params,
					Seed:     cfg.Seed + int64(slot),
					MaxSteps: cfg.MaxSteps,
					MaxStack: cfg.MaxStack,
					Observer: s,
					Barrier:  bar.wait,
				})
				if err != nil {
					errs[slot] = err
					bar.abort()
					return
				}
				if err := vm.Run(); err != nil {
					errs[slot] = fmt.Errorf("rank %d thread %d: %w", rank, thread, err)
					bar.abort()
					return
				}
				if err := s.TraceErr(); err != nil {
					errs[slot] = fmt.Errorf("rank %d thread %d: trace: %w", rank, thread, err)
					bar.abort()
					return
				}
				profiles[slot] = s.Profile()
				// A finished thread no longer participates in barriers.
				bar.leave()
			}(rank, thread)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if bar.broken() {
		return nil, fmt.Errorf("mpi: barrier aborted")
	}
	return profiles, nil
}

// barrier is a reusable cyclic barrier that also computes, per round, the
// idle cycles each rank owes: max(arrived cycle counts) - own count.
//
// Ranks that finish execution call leave(), shrinking the participant set,
// so programs whose ranks execute different numbers of barriers still
// terminate (with idleness attributed only among the ranks still inside
// the synchronization).
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
	max     uint64
	relMax  uint64
	dead    bool
}

func newBarrier(n int) *barrier {
	b := &barrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until every active rank has arrived, then returns the idle
// cycles to charge this rank.
func (b *barrier) wait(cycles uint64) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return 0
	}
	gen := b.gen
	b.arrived++
	if cycles > b.max {
		b.max = cycles
	}
	if b.arrived >= b.parties {
		b.release()
	} else {
		for gen == b.gen && !b.dead {
			b.cond.Wait()
		}
	}
	if b.dead {
		return 0
	}
	return b.relMax - cycles
}

// release opens the current round; callers hold the lock.
func (b *barrier) release() {
	b.relMax = b.max
	b.max = 0
	b.arrived = 0
	b.gen++
	b.cond.Broadcast()
}

// leave removes a finished rank from the participant set, releasing the
// current round if it was the last one outstanding.
func (b *barrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties--
	if b.parties > 0 && b.arrived >= b.parties {
		b.release()
	}
}

// abort wakes every waiter; subsequent waits return zero idleness.
func (b *barrier) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dead = true
	b.cond.Broadcast()
}

func (b *barrier) broken() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dead
}

// SortByRank orders profiles by (rank, thread) (Run already returns them
// ordered; this helps callers that regroup).
func SortByRank(ps []*profile.Profile) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Rank != ps[j].Rank {
			return ps[i].Rank < ps[j].Rank
		}
		return ps[i].Thread < ps[j].Thread
	})
}
