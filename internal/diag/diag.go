// Package diag wires Go's runtime diagnostics into the command-line tools:
// one Register call gives a tool -cpuprofile, -memprofile and -trace flags,
// and one Start call turns them on. The resulting files feed `go tool
// pprof` and `go tool trace`, which is how the query-path optimizations in
// this repository were measured.
package diag

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the diagnostic output paths (empty = disabled).
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Register installs the standard diagnostic flags on a flag set; call
// before Parse.
func Register(fs *flag.FlagSet) *Flags {
	d := &Flags{}
	fs.StringVar(&d.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&d.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&d.Trace, "trace", "", "write a runtime execution trace to this file")
	return d
}

// Start begins the requested collections, returning a stop function that
// ends them and flushes the files — call it exactly once (the heap profile
// is written by stop, so it captures the live heap at the end of the run).
// If any collection fails to start, the ones already running are stopped
// and the error returned.
func (d *Flags) Start() (stop func() error, err error) {
	var stops []func() error
	stopAll := func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if d.CPUProfile != "" {
		f, err := os.Create(d.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if d.Trace != "" {
		f, err := os.Create(d.Trace)
		if err != nil {
			stopAll()
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stopAll()
			return nil, err
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	if d.MemProfile != "" {
		path := d.MemProfile
		stops = append(stops, func() error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			// Collect up-to-date allocation statistics first.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}
	return stopAll, nil
}
