package diag

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestRegisterAndStart(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	d := Register(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "run.trace")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem, "-trace", tr}); err != nil {
		t.Fatal(err)
	}
	stop, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Do a little work so the profiles are not empty of samples.
	s := 0
	for i := 0; i < 1_000_000; i++ {
		s += i
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, tr} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartDisabled(t *testing.T) {
	var d Flags
	stop, err := d.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	d := Flags{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "x")}
	if _, err := d.Start(); err == nil {
		t.Fatal("bad path accepted")
	}
}
