package diag

import (
	"strings"
	"testing"
)

func TestResidencyByKind(t *testing.T) {
	spans := []KindSpan{
		{Kind: "column", Data: make([]byte, 100)},
		{Kind: "trace", Data: make([]byte, 50)},
		{Kind: "column", Data: make([]byte, 28)},
		{Kind: "pyramid", Data: nil},
	}
	lines := ResidencyByKind(spans)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (column/trace/pyramid): %v", len(lines), lines)
	}
	// First-appearance order, and spans of the same kind are summed.
	for i, prefix := range []string{"column:", "trace:", "pyramid:"} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Fatalf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}
	if !strings.Contains(lines[0], "of 128 B") {
		t.Fatalf("column spans not aggregated: %q", lines[0])
	}
	if !strings.Contains(lines[2], "of 0 B") {
		t.Fatalf("empty pyramid span misreported: %q", lines[2])
	}
}

func TestResidencyByKindEmpty(t *testing.T) {
	if lines := ResidencyByKind(nil); len(lines) != 0 {
		t.Fatalf("nil spans produced lines: %v", lines)
	}
}
