package diag

import "fmt"

// ResidencyString formats a Residency probe of data for debug output:
// "resident 128 KiB of 24.0 MiB (0.5%)", or "resident n/a of ..." when the
// probe is unavailable on this platform.
func ResidencyString(data []byte) string {
	resident, total, ok := Residency(data)
	if !ok {
		return fmt.Sprintf("resident n/a of %s", byteSize(total))
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(resident) / float64(total)
	}
	return fmt.Sprintf("resident %s of %s (%.1f%%)", byteSize(resident), byteSize(total), pct)
}

// KindSpan labels one byte span for grouped residency reporting; spans
// sharing a Kind are aggregated.
type KindSpan struct {
	Kind string
	Data []byte
}

// ResidencyByKind probes every span and returns one formatted line per
// kind ("column: resident 128 KiB of 24.0 MiB (0.5%)"), in order of each
// kind's first appearance. A kind whose probe fails reports "n/a".
func ResidencyByKind(spans []KindSpan) []string {
	type agg struct {
		resident, total int64
		ok              bool
	}
	var order []string
	byKind := map[string]*agg{}
	for _, sp := range spans {
		a := byKind[sp.Kind]
		if a == nil {
			a = &agg{ok: true}
			byKind[sp.Kind] = a
			order = append(order, sp.Kind)
		}
		resident, total, ok := Residency(sp.Data)
		a.resident += resident
		a.total += total
		a.ok = a.ok && ok
	}
	lines := make([]string, 0, len(order))
	for _, kind := range order {
		a := byKind[kind]
		if !a.ok {
			lines = append(lines, fmt.Sprintf("%s: resident n/a of %s", kind, byteSize(a.total)))
			continue
		}
		pct := 0.0
		if a.total > 0 {
			pct = 100 * float64(a.resident) / float64(a.total)
		}
		lines = append(lines, fmt.Sprintf("%s: resident %s of %s (%.1f%%)",
			kind, byteSize(a.resident), byteSize(a.total), pct))
	}
	return lines
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
