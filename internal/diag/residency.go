package diag

import "fmt"

// ResidencyString formats a Residency probe of data for debug output:
// "resident 128 KiB of 24.0 MiB (0.5%)", or "resident n/a of ..." when the
// probe is unavailable on this platform.
func ResidencyString(data []byte) string {
	resident, total, ok := Residency(data)
	if !ok {
		return fmt.Sprintf("resident n/a of %s", byteSize(total))
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(resident) / float64(total)
	}
	return fmt.Sprintf("resident %s of %s (%.1f%%)", byteSize(resident), byteSize(total), pct)
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
