//go:build !linux

package diag

// Residency is unavailable off linux (no portable mincore); it reports
// ok=false so callers print "n/a" instead of a wrong number.
func Residency(data []byte) (resident, total int64, ok bool) {
	return 0, int64(len(data)), false
}
