//go:build linux

package diag

import (
	"os"
	"syscall"
	"unsafe"
)

// Residency reports how many bytes of data are resident in physical memory
// via mincore(2), making the mapped-open claim observable: an open-but-idle
// v3 database should show resident ≈ index size, not the file size. data
// should start page-aligned (mmapio regions do). ok is false when the probe
// is unavailable or fails; resident is then 0.
func Residency(data []byte) (resident, total int64, ok bool) {
	total = int64(len(data))
	if len(data) == 0 {
		return 0, 0, true
	}
	page := os.Getpagesize()
	npages := (len(data) + page - 1) / page
	vec := make([]byte, npages)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&data[0])), uintptr(len(data)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, total, false
	}
	for _, b := range vec {
		if b&1 != 0 {
			resident += int64(page)
		}
	}
	if resident > total {
		resident = total
	}
	return resident, total, true
}
