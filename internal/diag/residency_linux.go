//go:build linux

package diag

import (
	"os"
	"syscall"
	"unsafe"
)

// Residency reports how many bytes of data are resident in physical memory
// via mincore(2), making the mapped-open claim observable: an open-but-idle
// v3 database should show resident ≈ index size, not the file size. data
// need not start page-aligned — mincore requires alignment, so the probe
// widens to the containing pages (section spans inside a mapping are only
// 8-aligned); residency is therefore page-granular, clamped to the span.
// ok is false when the probe is unavailable or fails; resident is then 0.
func Residency(data []byte) (resident, total int64, ok bool) {
	total = int64(len(data))
	if len(data) == 0 {
		return 0, 0, true
	}
	page := os.Getpagesize()
	addr := uintptr(unsafe.Pointer(&data[0]))
	off := addr % uintptr(page)
	length := uintptr(len(data)) + off
	npages := (int(length) + page - 1) / page
	vec := make([]byte, npages)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		addr-off, length, uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, total, false
	}
	for _, b := range vec {
		if b&1 != 0 {
			resident += int64(page)
		}
	}
	if resident > total {
		resident = total
	}
	return resident, total, true
}
