// Package scaling implements the scalability analysis the paper
// demonstrates in Section VI-A: "we compute a derived metric that
// quantifies scaling loss by scaling and differencing call path profiles
// from a pair of executions" (after Coarfa et al., ICS'07).
//
// Given two experiments of the same program at different scales, the
// *excess work* of a scope under weak scaling is
//
//	excess(s) = cost_big(s) − cost_small(s)
//
// (per-rank averages; ideal weak scaling keeps per-rank cost constant),
// and under strong scaling
//
//	excess(s) = cost_big(s) − cost_small(s) × (ranks_small / ranks_big)
//
// (total cost should shrink proportionally to the added parallelism).
// Scopes are matched structurally between the two trees; the result is a
// new derived column on the big run's tree, so scaling loss sorts, renders
// and hot-paths like any other metric — exactly the paper's point about
// derived metrics focusing attention on inefficiency rather than raw cost.
package scaling

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/merge"
)

// Mode selects the scaling expectation.
type Mode uint8

const (
	// Weak scaling: per-rank work should stay constant as ranks grow.
	Weak Mode = iota
	// Strong scaling: total work should stay constant as ranks grow, so
	// per-rank cost should shrink by ranksSmall/ranksBig.
	Strong
)

func (m Mode) String() string {
	if m == Strong {
		return "strong"
	}
	return "weak"
}

// Config describes the pair of executions being compared.
type Config struct {
	// Metric is the cost column name present in both trees (e.g.
	// "CYCLES").
	Metric string
	// Mode selects the scaling expectation.
	Mode Mode
	// RanksSmall and RanksBig are the process counts of the two runs.
	RanksSmall, RanksBig int
	// Name is the derived column name (default "scaling loss").
	Name string
}

// Result reports where scalability was lost.
type Result struct {
	// Column is the new column ID on the big tree holding per-scope
	// excess work (inclusive and exclusive flavors).
	Column int
	// TotalExcess is the root's inclusive excess.
	TotalExcess float64
	// TotalCost is the big run's root inclusive cost, for normalizing.
	TotalCost float64
}

// LossFraction is the fraction of the big run's cost that is scaling loss.
func (r *Result) LossFraction() float64 {
	if r.TotalCost == 0 {
		return 0
	}
	return r.TotalExcess / r.TotalCost
}

// AnalyzeMerged compares two merge results, taking the rank counts from
// the merges themselves rather than from cfg. After a quarantining
// (-keep-going) merge, NRanks counts only the ranks actually folded, so
// the per-rank normalization stays correct even when some measurement
// files were dropped. Any rank counts set in cfg are overridden.
func AnalyzeMerged(small, big *merge.Result, cfg Config) (*Result, error) {
	if small == nil || big == nil {
		return nil, fmt.Errorf("scaling: nil merge result")
	}
	cfg.RanksSmall = small.NRanks
	cfg.RanksBig = big.NRanks
	return Analyze(small.Tree, big.Tree, cfg)
}

// Analyze annotates big's tree with the excess-work column. Both trees
// must carry the configured metric; the trees are matched scope-by-scope
// from the roots (scopes present in only one run contribute their full
// cost, with the expected sign).
func Analyze(small, big *core.Tree, cfg Config) (*Result, error) {
	if cfg.Metric == "" {
		cfg.Metric = "CYCLES"
	}
	if cfg.Name == "" {
		cfg.Name = "scaling loss"
	}
	if cfg.RanksSmall <= 0 || cfg.RanksBig <= 0 {
		return nil, fmt.Errorf("scaling: rank counts must be positive (got %d, %d)", cfg.RanksSmall, cfg.RanksBig)
	}
	ds := small.Reg.ByName(cfg.Metric)
	db := big.Reg.ByName(cfg.Metric)
	if ds == nil || db == nil {
		return nil, fmt.Errorf("scaling: metric %q missing from one of the runs", cfg.Metric)
	}
	if big.Reg.ByName(cfg.Name) != nil {
		return nil, fmt.Errorf("scaling: column %q already exists", cfg.Name)
	}

	// The expectation factor applied to the small run's per-rank cost.
	factor := 1.0
	if cfg.Mode == Strong {
		factor = float64(cfg.RanksSmall) / float64(cfg.RanksBig)
	}
	// Costs are normalized to per-rank averages so runs of different
	// widths compare; merged trees hold rank sums.
	normSmall := 1.0 / float64(cfg.RanksSmall)
	normBig := 1.0 / float64(cfg.RanksBig)

	// Computed columns carry externally filled values; the experiment
	// database serializes them verbatim instead of recomputing.
	col, err := big.Reg.AddComputed(cfg.Name, db.Unit)
	if err != nil {
		return nil, err
	}

	// Matched walk: compute excess per scope.
	var walk func(bn, sn *core.Node)
	walk = func(bn, sn *core.Node) {
		if bn.Kind != core.KindRoot {
			var sIncl, sExcl float64
			if sn != nil {
				sIncl = sn.Incl.Get(ds.ID)
				sExcl = sn.Excl.Get(ds.ID)
			}
			exIncl := bn.Incl.Get(db.ID)*normBig - sIncl*normSmall*factor
			exExcl := bn.Excl.Get(db.ID)*normBig - sExcl*normSmall*factor
			bn.Incl.Set(col.ID, exIncl)
			bn.Excl.Set(col.ID, exExcl)
		}
		for _, bc := range bn.Children {
			var sc *core.Node
			if sn != nil {
				sc = sn.Child(bc.Key, false)
			}
			walk(bc, sc)
		}
	}
	walk(big.Root, small.Root)

	// Root totals for normalization.
	var totalExcess float64
	for _, c := range big.Root.Children {
		totalExcess += c.Incl.Get(col.ID)
	}
	big.Root.Incl.Set(col.ID, totalExcess)

	return &Result{
		Column:      col.ID,
		TotalExcess: totalExcess,
		TotalCost:   big.Total(db.ID) * normBig,
	}, nil
}
