package scaling

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/structfile"
)

// scalableProg builds an SPMD program with one perfectly weak-scaling
// phase (fixed per-rank work) and one non-scaling phase whose per-rank
// work grows with the rank count (e.g. an all-to-all-like exchange).
func scalableProg(t *testing.T) *prog.Program {
	t.Helper()
	return prog.NewBuilder("scale").
		File("app.f90").
		Proc("compute", 10,
			prog.L(11, 100, prog.W(12, 100))).
		Proc("exchange", 20,
			// Work proportional to the number of ranks: scales badly.
			prog.Lx(21, prog.ScaledInt{X: nRanks{}, Num: 20, Den: 1},
				prog.W(22, 100))).
		Proc("main", 1,
			prog.C(2, "compute"),
			prog.C(3, "exchange"),
			prog.Sync(4)).
		Entry("main").MustBuild()
}

// nRanks evaluates to the rank count.
type nRanks struct{}

func (nRanks) Eval(p *prog.Params) int64 {
	if p == nil {
		return 1
	}
	return int64(p.NRanks)
}

// runResAt simulates the program at the given width and merges the first
// keep ranks (all of them when keep <= 0), mimicking a quarantining merge
// where some rank files were dropped.
func runResAt(t *testing.T, ranks, keep int) *merge.Result {
	t.Helper()
	im, err := lower.Lower(scalableProg(t), lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: ranks, Events: []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if keep > 0 && keep < len(profs) {
		profs = profs[:keep]
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runAt(t *testing.T, ranks int) *core.Tree {
	t.Helper()
	return runResAt(t, ranks, 0).Tree
}

func TestWeakScalingLossAttribution(t *testing.T) {
	small := runAt(t, 2)
	big := runAt(t, 8)
	res, err := Analyze(small, big, Config{
		Metric: "CYCLES", Mode: Weak, RanksSmall: 2, RanksBig: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// compute scales perfectly: its excess is ~0. exchange grows from
	// 40*100 to 160*100 cycles per rank: excess ~12000.
	comp := big.FindPath("main", "compute")
	exch := big.FindPath("main", "exchange")
	if comp == nil || exch == nil {
		t.Fatal("scopes missing")
	}
	if ex := comp.Incl.Get(res.Column); math.Abs(ex) > 500 {
		t.Fatalf("compute excess = %g, want ~0", ex)
	}
	exEx := exch.Incl.Get(res.Column)
	if exEx < 10000 || exEx > 14000 {
		t.Fatalf("exchange excess = %g, want ~12000", exEx)
	}
	// The loss hot path leads to exchange.
	path := core.HotPath(big.Root, res.Column, 0.5)
	found := false
	for _, n := range path {
		if n.Name.String() == "exchange" {
			found = true
		}
	}
	if !found {
		t.Fatalf("scaling-loss hot path missed exchange")
	}
	if res.LossFraction() <= 0 || res.LossFraction() >= 1 {
		t.Fatalf("loss fraction = %g", res.LossFraction())
	}
	if res.TotalExcess <= 0 {
		t.Fatal("no total excess")
	}
}

func TestStrongScalingExpectation(t *testing.T) {
	// Under strong scaling the expectation divides the small run's cost
	// by the parallelism ratio, so even the perfectly weak-scaling
	// compute phase shows loss (its total work did not shrink).
	small := runAt(t, 2)
	big := runAt(t, 8)
	res, err := Analyze(small, big, Config{
		Metric: "CYCLES", Mode: Strong, RanksSmall: 2, RanksBig: 8, Name: "strong loss",
	})
	if err != nil {
		t.Fatal(err)
	}
	comp := big.FindPath("main", "compute")
	// per-rank compute is 10000 cycles in both runs; strong expectation
	// is 10000/4 = 2500, so excess ~7500.
	if ex := comp.Incl.Get(res.Column); ex < 6500 || ex > 8500 {
		t.Fatalf("compute strong-scaling excess = %g, want ~7500", ex)
	}
}

// AnalyzeMerged takes the rank counts from the merges, so a merge that
// quarantined ranks normalizes by the ranks actually folded — identical to
// Analyze fed the post-quarantine counts explicitly.
func TestAnalyzeMergedUsesActualRankCounts(t *testing.T) {
	small := runResAt(t, 2, 0)
	// Two ranks of the 8-wide run were "quarantined".
	big := runResAt(t, 8, 6)
	if big.NRanks != 6 {
		t.Fatalf("NRanks = %d, want 6", big.NRanks)
	}
	res, err := AnalyzeMerged(small, big, Config{Metric: "CYCLES", Mode: Weak})
	if err != nil {
		t.Fatal(err)
	}
	ref := runResAt(t, 8, 6)
	refRes, err := Analyze(small.Tree, ref.Tree, Config{
		Metric: "CYCLES", Mode: Weak, RanksSmall: 2, RanksBig: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalExcess-refRes.TotalExcess) > 1e-9 {
		t.Fatalf("TotalExcess = %g, want %g", res.TotalExcess, refRes.TotalExcess)
	}
	exch := big.Tree.FindPath("main", "exchange")
	if exch == nil {
		t.Fatal("exchange missing")
	}
	// Per-rank exchange work is rank-count-proportional even in the
	// truncated merge: 160*100 − 40*100 = 12000 per rank.
	if ex := exch.Incl.Get(res.Column); ex < 10000 || ex > 14000 {
		t.Fatalf("exchange excess = %g, want ~12000", ex)
	}
	if _, err := AnalyzeMerged(nil, big, Config{}); err == nil {
		t.Fatal("nil result accepted")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	small := runAt(t, 2)
	big := runAt(t, 4)
	if _, err := Analyze(small, big, Config{Metric: "NOPE", RanksSmall: 2, RanksBig: 4}); err == nil {
		t.Fatal("missing metric accepted")
	}
	if _, err := Analyze(small, big, Config{RanksSmall: 0, RanksBig: 4}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := Analyze(small, big, Config{RanksSmall: 2, RanksBig: 4, Name: "l"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(small, big, Config{RanksSmall: 2, RanksBig: 4, Name: "l"}); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestScopeOnlyInBigRun(t *testing.T) {
	// A scope absent from the small run contributes its full big-run
	// cost as excess.
	small := core.NewTree("s", nil)
	if _, err := small.Reg.AddRaw("CYCLES", "cycles", 1); err != nil {
		t.Fatal(err)
	}
	sm := small.AddPath(core.Key{Kind: core.KindFrame, Name: core.Sym("main")})
	ss := sm.Child(core.Key{Kind: core.KindStmt, File: core.Sym("a.c"), Line: 1}, true)
	ss.Base.Add(0, 100)
	small.ComputeMetrics()

	big := core.NewTree("b", nil)
	if _, err := big.Reg.AddRaw("CYCLES", "cycles", 1); err != nil {
		t.Fatal(err)
	}
	bm := big.AddPath(core.Key{Kind: core.KindFrame, Name: core.Sym("main")})
	bs := bm.Child(core.Key{Kind: core.KindStmt, File: core.Sym("a.c"), Line: 1}, true)
	bs.Base.Add(0, 100)
	extra := bm.Child(core.Key{Kind: core.KindFrame, Name: core.Sym("newphase")}, true)
	es := extra.Child(core.Key{Kind: core.KindStmt, File: core.Sym("a.c"), Line: 9}, true)
	es.Base.Add(0, 50)
	big.ComputeMetrics()

	res, err := Analyze(small, big, Config{Metric: "CYCLES", Mode: Weak, RanksSmall: 1, RanksBig: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ex := extra.Incl.Get(res.Column); ex != 50 {
		t.Fatalf("new phase excess = %g, want 50", ex)
	}
	if ex := bs.Incl.Get(res.Column); ex != 0 {
		t.Fatalf("matched stmt excess = %g, want 0", ex)
	}
}
