package profile

import (
	"bytes"
	"testing"
)

// FuzzRead guards the binary profile reader: arbitrary bytes must either
// parse into a valid profile or return an error — never panic, never
// produce a profile that fails validation.
func FuzzRead(f *testing.F) {
	// Seed with genuine encodings of both versions and some mutations.
	p := randomProfile(7)
	var buf, bufV1 bytes.Buffer
	if err := p.Write(&buf); err != nil {
		f.Fatal(err)
	}
	if err := p.WriteV1(&bufV1); err != nil {
		f.Fatal(err)
	}
	f.Add(bufV1.Bytes())
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte("CPP1"))
	f.Add([]byte("CPP2"))
	f.Add([]byte{})
	if len(good) > 10 {
		mutated := append([]byte(nil), good...)
		mutated[len(mutated)/2] ^= 0xff
		f.Add(mutated)
		f.Add(good[:len(good)/2])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("Read returned an invalid profile: %v", verr)
		}
		// Re-encoding must work on anything Read accepted.
		var out bytes.Buffer
		if got.Rank >= 0 && got.Thread >= 0 {
			if err := got.Write(&out); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}
