package profile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary measurement-file format ("CPP1"): varint-based, preorder tree.
//
//	magic "CPP1"
//	program string, rank, thread
//	nMetrics { name, unit, period }*
//	node := callPC(delta-less uvarint)
//	        nSamples { pc uvarint, counts[nMetrics] uvarint }*
//	        nChildren node*
//
// Strings are uvarint length + bytes. The format is the stand-in for
// hpcrun's measurement files and is deliberately compact: Section IX of the
// paper names replacing XML with "a more compact binary format" as ongoing
// work.

const profMagic = "CPP1"

const maxProfileStrLen = 1 << 20

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxProfileStrLen {
		return "", fmt.Errorf("profile: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Write serializes the profile.
func (p *Profile) Write(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(profMagic); err != nil {
		return err
	}
	if err := writeString(bw, p.Program); err != nil {
		return err
	}
	if p.Rank < 0 || p.Thread < 0 {
		return fmt.Errorf("profile: negative rank/thread %d/%d", p.Rank, p.Thread)
	}
	if err := writeUvarint(bw, uint64(p.Rank)); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(p.Thread)); err != nil {
		return err
	}
	if err := writeUvarint(bw, p.Fingerprint); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(len(p.Metrics))); err != nil {
		return err
	}
	for _, m := range p.Metrics {
		if err := writeString(bw, m.Name); err != nil {
			return err
		}
		if err := writeString(bw, m.Unit); err != nil {
			return err
		}
		if err := writeUvarint(bw, m.Period); err != nil {
			return err
		}
	}
	if err := writeNode(bw, p.Root, len(p.Metrics)); err != nil {
		return err
	}
	return bw.Flush()
}

func writeNode(w *bufio.Writer, n *Node, nMetrics int) error {
	if err := writeUvarint(w, n.CallPC); err != nil {
		return err
	}
	rows := n.Samples()
	if err := writeUvarint(w, uint64(len(rows))); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeUvarint(w, row.PC); err != nil {
			return err
		}
		for _, c := range row.Counts {
			if err := writeUvarint(w, c); err != nil {
				return err
			}
		}
	}
	kids := n.Children()
	if err := writeUvarint(w, uint64(len(kids))); err != nil {
		return err
	}
	for _, c := range kids {
		if err := writeNode(w, c, nMetrics); err != nil {
			return err
		}
	}
	return nil
}

// Read deserializes a profile written by Write.
func Read(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(profMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("profile: reading magic: %w", err)
	}
	if string(magic) != profMagic {
		return nil, fmt.Errorf("profile: bad magic %q", magic)
	}
	p := &Profile{}
	var err error
	if p.Program, err = readString(br); err != nil {
		return nil, err
	}
	rank, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	thread, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if rank > math.MaxInt32 || thread > math.MaxInt32 {
		return nil, fmt.Errorf("profile: implausible rank/thread %d/%d", rank, thread)
	}
	p.Rank, p.Thread = int(rank), int(thread)
	if p.Fingerprint, err = readUvarint(br); err != nil {
		return nil, err
	}
	nm, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if nm > 1024 {
		return nil, fmt.Errorf("profile: implausible metric count %d", nm)
	}
	for i := uint64(0); i < nm; i++ {
		var m MetricInfo
		if m.Name, err = readString(br); err != nil {
			return nil, err
		}
		if m.Unit, err = readString(br); err != nil {
			return nil, err
		}
		if m.Period, err = readUvarint(br); err != nil {
			return nil, err
		}
		p.Metrics = append(p.Metrics, m)
	}
	root, err := readNode(br, len(p.Metrics), 0)
	if err != nil {
		return nil, err
	}
	p.Root = root
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

const maxTreeDepth = 100_000

func readNode(r *bufio.Reader, nMetrics int, depth int) (*Node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("profile: tree deeper than %d", maxTreeDepth)
	}
	n := &Node{}
	var err error
	if n.CallPC, err = readUvarint(r); err != nil {
		return nil, err
	}
	ns, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ns; i++ {
		pc, err := readUvarint(r)
		if err != nil {
			return nil, err
		}
		row := make([]uint64, nMetrics)
		for j := 0; j < nMetrics; j++ {
			if row[j], err = readUvarint(r); err != nil {
				return nil, err
			}
		}
		if n.samples == nil {
			n.samples = map[uint64][]uint64{}
		}
		if _, dup := n.samples[pc]; dup {
			return nil, fmt.Errorf("profile: duplicate sample pc 0x%x", pc)
		}
		n.samples[pc] = row
	}
	nc, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nc; i++ {
		c, err := readNode(r, nMetrics, depth+1)
		if err != nil {
			return nil, err
		}
		if n.children == nil {
			n.children = map[uint64]*Node{}
		}
		if _, dup := n.children[c.CallPC]; dup {
			return nil, fmt.Errorf("profile: duplicate child pc 0x%x", c.CallPC)
		}
		n.children[c.CallPC] = c
	}
	return n, nil
}
