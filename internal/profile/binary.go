package profile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/framing"
)

// Binary measurement-file formats.
//
// v1 ("CPP1") is a bare varint stream: magic, program/rank/thread/
// fingerprint, metric descriptors, then the preorder tree
//
//	node := callPC uvarint
//	        nSamples { pc uvarint, counts[nMetrics] uvarint }*
//	        nChildren node*
//
// v2 ("CPP2") wraps the same encodings in the checksummed section
// container of internal/framing:
//
//	magic "CPP2"
//	section 1 (header): program, rank, thread, fingerprint, metrics
//	section 2 (tree):   preorder node stream as in v1
//	end marker
//
// Every section carries a CRC32C trailer, so a flipped bit anywhere in a
// measurement file is detected at read time instead of silently skewing
// merged metrics. Both sections are required: damage to either fails the
// read (rank-level quarantine in hpcprof handles the fallout). Strings are
// uvarint length + bytes throughout. The format is the stand-in for
// hpcrun's measurement files and is deliberately compact: Section IX of
// the paper names replacing XML with "a more compact binary format" as
// ongoing work.

const (
	profMagic   = "CPP1"
	profMagicV2 = "CPP2"
)

// v2 section ids.
const (
	profSecHeader byte = 1
	profSecTree   byte = 2
	profSecTrace  byte = 3 // trace events, skipped by readers before PR 9
)

const maxProfileStrLen = 1 << 20

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxProfileStrLen {
		return "", fmt.Errorf("profile: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Write serializes the profile in the current (v2, checksummed) format.
func (p *Profile) Write(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Rank < 0 || p.Thread < 0 {
		return fmt.Errorf("profile: negative rank/thread %d/%d", p.Rank, p.Thread)
	}
	var hdr bytes.Buffer
	hw := bufio.NewWriter(&hdr)
	if err := p.writeHeader(hw); err != nil {
		return err
	}
	if err := hw.Flush(); err != nil {
		return err
	}
	var tree bytes.Buffer
	tw := bufio.NewWriter(&tree)
	if err := writeNode(tw, p.Root, len(p.Metrics)); err != nil {
		return err
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fw, err := framing.NewWriter(w, profMagicV2)
	if err != nil {
		return err
	}
	if err := fw.Section(profSecHeader, hdr.Bytes()); err != nil {
		return err
	}
	if err := fw.Section(profSecTree, tree.Bytes()); err != nil {
		return err
	}
	if p.Trace != nil && p.Trace.Count() > 0 {
		if err := p.writeTraceSection(fw); err != nil {
			return err
		}
	}
	return fw.Close()
}

// WriteV1 serializes the profile in the legacy unchecksummed v1 format,
// kept for compatibility tests and for producing old-format files.
func (p *Profile) WriteV1(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Rank < 0 || p.Thread < 0 {
		return fmt.Errorf("profile: negative rank/thread %d/%d", p.Rank, p.Thread)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(profMagic); err != nil {
		return err
	}
	if err := p.writeHeader(bw); err != nil {
		return err
	}
	if err := writeNode(bw, p.Root, len(p.Metrics)); err != nil {
		return err
	}
	return bw.Flush()
}

// writeHeader emits the fields shared by both versions: program, rank,
// thread, fingerprint and the metric descriptors.
func (p *Profile) writeHeader(bw *bufio.Writer) error {
	if err := writeString(bw, p.Program); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(p.Rank)); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(p.Thread)); err != nil {
		return err
	}
	if err := writeUvarint(bw, p.Fingerprint); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(len(p.Metrics))); err != nil {
		return err
	}
	for _, m := range p.Metrics {
		if err := writeString(bw, m.Name); err != nil {
			return err
		}
		if err := writeString(bw, m.Unit); err != nil {
			return err
		}
		if err := writeUvarint(bw, m.Period); err != nil {
			return err
		}
	}
	return nil
}

func writeNode(w *bufio.Writer, n *Node, nMetrics int) error {
	if err := writeUvarint(w, n.CallPC); err != nil {
		return err
	}
	rows := n.Samples()
	if err := writeUvarint(w, uint64(len(rows))); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeUvarint(w, row.PC); err != nil {
			return err
		}
		for _, c := range row.Counts {
			if err := writeUvarint(w, c); err != nil {
				return err
			}
		}
	}
	kids := n.Children()
	if err := writeUvarint(w, uint64(len(kids))); err != nil {
		return err
	}
	for _, c := range kids {
		if err := writeNode(w, c, nMetrics); err != nil {
			return err
		}
	}
	return nil
}

// Read deserializes a profile in either format, sniffing the magic.
func Read(r io.Reader) (*Profile, error) {
	size := framing.SizeOf(r)
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(profMagic))
	if err != nil {
		return nil, fmt.Errorf("profile: reading magic: %w", noEOF(err))
	}
	switch string(magic) {
	case profMagic:
		return readV1(br)
	case profMagicV2:
		return readV2(br, size)
	default:
		return nil, fmt.Errorf("profile: bad magic %q", magic)
	}
}

// noEOF upgrades a bare io.EOF to io.ErrUnexpectedEOF: callers of Read
// always expect a complete profile, so running out of input mid-stream is
// truncation, not a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func readV1(br *bufio.Reader) (*Profile, error) {
	if _, err := br.Discard(len(profMagic)); err != nil {
		return nil, err
	}
	p := &Profile{}
	if err := p.readHeader(br); err != nil {
		return nil, err
	}
	root, err := readNode(br, len(p.Metrics), 0)
	if err != nil {
		return nil, err
	}
	p.Root = root
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func readV2(br *bufio.Reader, size int64) (*Profile, error) {
	fr, err := framing.NewReader(br, size, profMagicV2)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	// Trace sections can dwarf the tree; stream them (and any future
	// section) to a discard sink so skipping stays O(chunk), not
	// O(payload). The CRC is still verified.
	fr.SetSink(func(id byte) io.Writer {
		if id == profSecHeader || id == profSecTree {
			return nil
		}
		return io.Discard
	})
	p := &Profile{}
	var sawHeader, sawTree bool
	for {
		id, payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Both sections are required, so checksum damage is as fatal
			// as framing damage here.
			return nil, fmt.Errorf("profile: %w", err)
		}
		switch id {
		case profSecHeader:
			if sawHeader {
				return nil, fmt.Errorf("profile: duplicate header section")
			}
			pr := bufio.NewReader(bytes.NewReader(payload))
			if err := p.readHeader(pr); err != nil {
				return nil, err
			}
			if _, err := pr.ReadByte(); err != io.EOF {
				return nil, fmt.Errorf("profile: trailing bytes in header section")
			}
			sawHeader = true
		case profSecTree:
			if !sawHeader {
				return nil, fmt.Errorf("profile: tree section before header")
			}
			if sawTree {
				return nil, fmt.Errorf("profile: duplicate tree section")
			}
			pr := bufio.NewReader(bytes.NewReader(payload))
			root, err := readNode(pr, len(p.Metrics), 0)
			if err != nil {
				return nil, err
			}
			if _, err := pr.ReadByte(); err != io.EOF {
				return nil, fmt.Errorf("profile: trailing bytes in tree section")
			}
			p.Root = root
			sawTree = true
		default:
			// Unknown sections are skipped for forward compatibility;
			// their checksum was still verified by Next.
		}
	}
	if !sawHeader || !sawTree {
		return nil, fmt.Errorf("profile: missing required section (header %v, tree %v)", sawHeader, sawTree)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// readHeader parses the fields shared by both versions into p.
func (p *Profile) readHeader(br *bufio.Reader) error {
	var err error
	if p.Program, err = readString(br); err != nil {
		return noEOF(err)
	}
	rank, err := readUvarint(br)
	if err != nil {
		return noEOF(err)
	}
	thread, err := readUvarint(br)
	if err != nil {
		return noEOF(err)
	}
	if rank > math.MaxInt32 || thread > math.MaxInt32 {
		return fmt.Errorf("profile: implausible rank/thread %d/%d", rank, thread)
	}
	p.Rank, p.Thread = int(rank), int(thread)
	if p.Fingerprint, err = readUvarint(br); err != nil {
		return noEOF(err)
	}
	nm, err := readUvarint(br)
	if err != nil {
		return noEOF(err)
	}
	if nm > 1024 {
		return fmt.Errorf("profile: implausible metric count %d", nm)
	}
	for i := uint64(0); i < nm; i++ {
		var m MetricInfo
		if m.Name, err = readString(br); err != nil {
			return noEOF(err)
		}
		if m.Unit, err = readString(br); err != nil {
			return noEOF(err)
		}
		if m.Period, err = readUvarint(br); err != nil {
			return noEOF(err)
		}
		p.Metrics = append(p.Metrics, m)
	}
	return nil
}

const maxTreeDepth = 100_000

func readNode(r *bufio.Reader, nMetrics int, depth int) (*Node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("profile: tree deeper than %d", maxTreeDepth)
	}
	n := &Node{}
	var err error
	if n.CallPC, err = readUvarint(r); err != nil {
		return nil, noEOF(err)
	}
	ns, err := readUvarint(r)
	if err != nil {
		return nil, noEOF(err)
	}
	for i := uint64(0); i < ns; i++ {
		pc, err := readUvarint(r)
		if err != nil {
			return nil, noEOF(err)
		}
		row := make([]uint64, nMetrics)
		for j := 0; j < nMetrics; j++ {
			if row[j], err = readUvarint(r); err != nil {
				return nil, noEOF(err)
			}
		}
		if n.samples == nil {
			n.samples = map[uint64][]uint64{}
		}
		if _, dup := n.samples[pc]; dup {
			return nil, fmt.Errorf("profile: duplicate sample pc 0x%x", pc)
		}
		n.samples[pc] = row
	}
	nc, err := readUvarint(r)
	if err != nil {
		return nil, noEOF(err)
	}
	for i := uint64(0); i < nc; i++ {
		c, err := readNode(r, nMetrics, depth+1)
		if err != nil {
			return nil, err
		}
		if n.children == nil {
			n.children = map[uint64]*Node{}
		}
		if _, dup := n.children[c.CallPC]; dup {
			return nil, fmt.Errorf("profile: duplicate child pc 0x%x", c.CallPC)
		}
		n.children[c.CallPC] = c
	}
	return n, nil
}
