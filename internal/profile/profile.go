// Package profile defines the raw call-path profile produced by the
// sampling substrate: a trie of call-site return addresses with per-leaf-PC
// event counts, plus the metric table describing what was sampled. It is
// the moral equivalent of hpcrun's per-thread measurement file; hpcprof's
// stand-in (internal/correlate) later fuses it with static structure.
package profile

import (
	"fmt"
	"sort"
)

// MetricInfo describes one sampled event column.
type MetricInfo struct {
	// Name is the event name, e.g. "CYCLES".
	Name string
	// Unit is a display unit.
	Unit string
	// Period is the sampling period: each sample accounts for Period
	// events.
	Period uint64
}

// Profile is one thread-of-execution's raw call path profile.
type Profile struct {
	// Program is the measured program's name.
	Program string
	// Rank and Thread identify the process and thread.
	Rank   int
	Thread int
	// Fingerprint identifies the measured image (isa.Image.Fingerprint);
	// zero means unknown. Correlation refuses to fuse profiles with a
	// structure document from a different build.
	Fingerprint uint64
	// Metrics describes the sampled events, in column order.
	Metrics []MetricInfo
	// Root is the entry frame (no call site).
	Root *Node
	// Trace holds the thread's time-dimension trace capture, nil unless
	// EnableTrace was called. Traces ride along in the v2 measurement
	// format; readers without trace support skip them.
	Trace *TraceData
}

// Node is one dynamic frame: the frame created by the call instruction at
// CallPC (zero for the entry frame).
type Node struct {
	CallPC   uint64
	children map[uint64]*Node
	samples  map[uint64][]uint64 // leaf PC -> per-metric event counts

	// traceSlot is the frame's dense capture id plus one (0 = none yet),
	// assigned on first trace emission. Intrusive so the capture hot path
	// is an integer check, not a map lookup; owned by the profile's single
	// TraceData.
	traceSlot uint32
}

// NewProfile creates an empty profile.
func NewProfile(program string, rank, thread int, metrics []MetricInfo) *Profile {
	return &Profile{
		Program: program,
		Rank:    rank,
		Thread:  thread,
		Metrics: append([]MetricInfo(nil), metrics...),
		Root:    &Node{},
	}
}

// Child returns the child frame created by the call at pc, creating it when
// create is true.
func (n *Node) Child(pc uint64, create bool) *Node {
	if c, ok := n.children[pc]; ok {
		return c
	}
	if !create {
		return nil
	}
	if n.children == nil {
		n.children = map[uint64]*Node{}
	}
	c := &Node{CallPC: pc}
	n.children[pc] = c
	return c
}

// Children returns the child frames sorted by call PC.
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CallPC < out[j].CallPC })
	return out
}

// NumChildren reports the number of child frames.
func (n *Node) NumChildren() int { return len(n.children) }

// AddSample records count events of metric against the leaf pc within this
// frame.
func (n *Node) AddSample(pc uint64, metric int, nMetrics int, count uint64) {
	if n.samples == nil {
		n.samples = map[uint64][]uint64{}
	}
	row := n.samples[pc]
	if row == nil {
		row = make([]uint64, nMetrics)
		n.samples[pc] = row
	}
	row[metric] += count
}

// Samples returns the frame's (leaf PC, counts) pairs sorted by PC. The
// count slices are shared with the node.
func (n *Node) Samples() []SampleRow {
	out := make([]SampleRow, 0, len(n.samples))
	for pc, counts := range n.samples {
		out = append(out, SampleRow{PC: pc, Counts: counts})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PC < out[j].PC })
	return out
}

// SampleRow is one leaf PC's event counts within a frame.
type SampleRow struct {
	PC     uint64
	Counts []uint64
}

// Record attributes count events of the given metric to the context
// (callPath, leafPC): callPath holds the call instruction addresses from
// outermost to innermost. It returns the attributed frame so the sampler
// can feed the same context to the trace recorder.
func (p *Profile) Record(callPath []uint64, leafPC uint64, metric int, count uint64) *Node {
	n := p.Root
	for _, pc := range callPath {
		n = n.Child(pc, true)
	}
	n.AddSample(leafPC, metric, len(p.Metrics), count)
	return n
}

// MetricIndex returns the column of the named metric, or -1.
func (p *Profile) MetricIndex(name string) int {
	for i, m := range p.Metrics {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// Totals sums every metric over the whole profile.
func (p *Profile) Totals() []uint64 {
	tot := make([]uint64, len(p.Metrics))
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, row := range n.samples {
			for i, c := range row {
				tot[i] += c
			}
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(p.Root)
	return tot
}

// Stats summarizes the profile shape.
type Stats struct {
	Frames  int // trie nodes including the root
	Leaves  int // distinct (frame, leaf PC) pairs
	Samples uint64
}

// Stats computes profile shape statistics. Samples counts metric-0 events
// divided by its period (i.e. the number of metric-0 samples).
func (p *Profile) Stats() Stats {
	var st Stats
	var walk func(n *Node)
	walk = func(n *Node) {
		st.Frames++
		st.Leaves += len(n.samples)
		for _, row := range n.samples {
			if len(row) > 0 && len(p.Metrics) > 0 && p.Metrics[0].Period > 0 {
				st.Samples += row[0] / p.Metrics[0].Period
			}
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(p.Root)
	return st
}

// Validate checks invariants: sample rows have one count per metric and the
// root has CallPC zero.
func (p *Profile) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("profile: nil root")
	}
	if p.Root.CallPC != 0 {
		return fmt.Errorf("profile: root has call PC 0x%x", p.Root.CallPC)
	}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		for pc, row := range n.samples {
			if len(row) != len(p.Metrics) {
				return fmt.Errorf("profile: sample at 0x%x has %d counts, want %d", pc, len(row), len(p.Metrics))
			}
		}
		for pc, c := range n.children {
			if c.CallPC != pc {
				return fmt.Errorf("profile: child keyed 0x%x has call PC 0x%x", pc, c.CallPC)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(p.Root)
}
