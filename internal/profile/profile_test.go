package profile

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func twoMetrics() []MetricInfo {
	return []MetricInfo{
		{Name: "CYCLES", Unit: "cycles", Period: 1000},
		{Name: "L1_DCM", Unit: "misses", Period: 100},
	}
}

func TestRecordAndTotals(t *testing.T) {
	p := NewProfile("app", 0, 0, twoMetrics())
	p.Record([]uint64{0x10, 0x20}, 0x30, 0, 1000)
	p.Record([]uint64{0x10, 0x20}, 0x30, 0, 1000)
	p.Record([]uint64{0x10, 0x20}, 0x34, 1, 100)
	p.Record([]uint64{0x10}, 0x14, 0, 1000)
	p.Record(nil, 0x4, 0, 1000)

	tot := p.Totals()
	if tot[0] != 4000 || tot[1] != 100 {
		t.Fatalf("totals = %v", tot)
	}
	st := p.Stats()
	if st.Frames != 3 {
		t.Fatalf("frames = %d, want 3 (root, 0x10, 0x20)", st.Frames)
	}
	if st.Leaves != 4 {
		t.Fatalf("leaves = %d, want 4", st.Leaves)
	}
	if st.Samples != 4 {
		t.Fatalf("samples = %d, want 4", st.Samples)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChildLookup(t *testing.T) {
	n := &Node{}
	if n.Child(5, false) != nil {
		t.Fatal("lookup created a child")
	}
	c := n.Child(5, true)
	if c == nil || c.CallPC != 5 {
		t.Fatal("create failed")
	}
	if n.Child(5, true) != c {
		t.Fatal("second create returned a different node")
	}
	if n.NumChildren() != 1 {
		t.Fatal("NumChildren wrong")
	}
}

func TestChildrenSorted(t *testing.T) {
	n := &Node{}
	for _, pc := range []uint64{9, 3, 7, 1} {
		n.Child(pc, true)
	}
	kids := n.Children()
	for i := 1; i < len(kids); i++ {
		if kids[i-1].CallPC >= kids[i].CallPC {
			t.Fatalf("children unsorted: %v", kids)
		}
	}
}

func TestSamplesSorted(t *testing.T) {
	n := &Node{}
	for _, pc := range []uint64{9, 3, 7} {
		n.AddSample(pc, 0, 1, 10)
	}
	rows := n.Samples()
	for i := 1; i < len(rows); i++ {
		if rows[i-1].PC >= rows[i].PC {
			t.Fatalf("samples unsorted")
		}
	}
}

func TestMetricIndex(t *testing.T) {
	p := NewProfile("app", 0, 0, twoMetrics())
	if p.MetricIndex("L1_DCM") != 1 || p.MetricIndex("CYCLES") != 0 || p.MetricIndex("X") != -1 {
		t.Fatal("MetricIndex wrong")
	}
}

func TestValidateCatchesBadRoot(t *testing.T) {
	p := NewProfile("app", 0, 0, twoMetrics())
	p.Root.CallPC = 7
	if err := p.Validate(); err == nil {
		t.Fatal("bad root accepted")
	}
	p2 := &Profile{}
	if err := p2.Validate(); err == nil {
		t.Fatal("nil root accepted")
	}
}

func randomProfile(seed int64) *Profile {
	rng := rand.New(rand.NewSource(seed))
	p := NewProfile("rnd", rng.Intn(100), rng.Intn(4), twoMetrics())
	for i := 0; i < 100; i++ {
		depth := rng.Intn(6)
		path := make([]uint64, depth)
		for j := range path {
			path[j] = uint64(rng.Intn(40))*4 + 0x400000
		}
		leaf := uint64(rng.Intn(40))*4 + 0x400000
		metric := rng.Intn(2)
		p.Record(path, leaf, metric, uint64(rng.Intn(5)+1)*p.Metrics[metric].Period)
	}
	return p
}

func profilesEqual(a, b *Profile) bool {
	if a.Program != b.Program || a.Rank != b.Rank || a.Thread != b.Thread {
		return false
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		return false
	}
	var eq func(x, y *Node) bool
	eq = func(x, y *Node) bool {
		if x.CallPC != y.CallPC {
			return false
		}
		xs, ys := x.Samples(), y.Samples()
		if !reflect.DeepEqual(xs, ys) {
			return false
		}
		xc, yc := x.Children(), y.Children()
		if len(xc) != len(yc) {
			return false
		}
		for i := range xc {
			if !eq(xc[i], yc[i]) {
				return false
			}
		}
		return true
	}
	return eq(a.Root, b.Root)
}

func TestBinaryRoundTrip(t *testing.T) {
	p := randomProfile(1)
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !profilesEqual(p, got) {
		t.Fatal("round trip changed the profile")
	}
}

// Property: round trip is lossless for arbitrary random profiles.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProfile(seed)
		var buf bytes.Buffer
		if err := p.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return profilesEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("CPP1"), // truncated after magic
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded", c)
		}
	}
	// Valid prefix then truncation mid-tree.
	p := randomProfile(2)
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated profile accepted")
	}
}

func TestReadRejectsImplausibleCounts(t *testing.T) {
	// Hand-craft: magic + program "" + rank 0 + thread 0 + 2000 metrics.
	var buf bytes.Buffer
	buf.WriteString("CPP1")
	buf.WriteByte(0)              // program len
	buf.WriteByte(0)              // rank
	buf.WriteByte(0)              // thread
	buf.WriteByte(0)              // fingerprint
	buf.Write([]byte{0xD0, 0x0F}) // uvarint 2000
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "metric count") {
		t.Fatalf("implausible metric count accepted: %v", err)
	}
}

func TestWriteRejectsNegativeRank(t *testing.T) {
	p := NewProfile("x", -1, 0, twoMetrics())
	if err := p.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("negative rank accepted")
	}
}

func TestBinaryCompactness(t *testing.T) {
	p := randomProfile(3)
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	// Sanity: varint encoding should stay well under 64 bytes per
	// (frame + leaf) on these small PCs.
	if buf.Len() > 64*(st.Frames+st.Leaves)+256 {
		t.Fatalf("encoding suspiciously large: %d bytes for %+v", buf.Len(), st)
	}
}

func TestStatsWithoutMetrics(t *testing.T) {
	// A profile with no metric columns still reports structural stats.
	p := NewProfile("x", 0, 0, nil)
	p.Root.Child(0x10, true)
	st := p.Stats()
	if st.Frames != 2 || st.Samples != 0 || st.Leaves != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFingerprintRoundTrip(t *testing.T) {
	p := randomProfile(9)
	p.Fingerprint = 0xdeadbeefcafe
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != p.Fingerprint {
		t.Fatalf("fingerprint = %x, want %x", got.Fingerprint, p.Fingerprint)
	}
}

func TestEmptyNodeAccessors(t *testing.T) {
	n := &Node{}
	if len(n.Children()) != 0 || len(n.Samples()) != 0 || n.NumChildren() != 0 {
		t.Fatal("empty node accessors wrong")
	}
}

func TestV1CompatRoundTrip(t *testing.T) {
	// Old-format files must keep reading after the v2 switch.
	p := randomProfile(11)
	var buf bytes.Buffer
	if err := p.WriteV1(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("CPP1")) {
		t.Fatalf("WriteV1 magic = %q", buf.Bytes()[:4])
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !profilesEqual(p, got) {
		t.Fatal("v1 round trip changed the profile")
	}
}

func TestV2MagicAndChecksum(t *testing.T) {
	p := randomProfile(12)
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("CPP2")) {
		t.Fatalf("Write magic = %q", data[:4])
	}
	// Any single flipped bit in the body must be caught by a section CRC
	// (or the parse), never accepted silently.
	for off := 4; off < len(data); off += 7 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x20
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
	}
}

func TestV2TruncationAlwaysErrors(t *testing.T) {
	p := randomProfile(13)
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data); n++ {
		if _, err := Read(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
	}
}
