package profile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/framing"
	"repro/internal/trace"
)

// Trace capture rides inside the profile: the sampler emits one event per
// sample crossing of the trace metric, tagged with the virtual time and
// the dynamic frame the sample landed in. Frames are identified by dense
// first-touch capture ids; when the profile is serialized the ids are
// rewritten to the trie's preorder indices (root = 0, children in sorted
// call-PC order — exactly the order writeNode emits), so a reader can
// resolve any trace record against the tree section without extra tables.

// TraceData is a profile's trace capture state: a bounded-memory recorder
// plus the capture-id → frame mapping (the reverse mapping lives on the
// nodes themselves as traceSlot).
type TraceData struct {
	rec   *trace.Recorder
	nodes []*Node
}

// EnableTrace turns on trace capture into spill with a buffer of
// bufRecords records (0 means trace.DefaultBufRecords). Call before the
// first sample.
func (p *Profile) EnableTrace(spill trace.SpillStore, bufRecords int) {
	p.Trace = &TraceData{
		rec: trace.NewRecorder(spill, bufRecords),
	}
}

// Emit records one trace event: at virtual time t, the sample landed in
// frame n at stack depth depth. Assigns n a dense capture id on first
// touch, stored intrusively so the steady-state cost is one integer
// compare and a buffered 16-byte append.
func (td *TraceData) Emit(t uint64, n *Node, depth int) error {
	id := n.traceSlot - 1
	if n.traceSlot == 0 {
		id = uint32(len(td.nodes))
		n.traceSlot = id + 1
		td.nodes = append(td.nodes, n)
	}
	d := depth
	if d > 65535 {
		d = 65535
	}
	return td.rec.Emit(trace.Rec{T: t, CPID: id, Depth: uint16(d)})
}

// Count reports the number of events captured.
func (td *TraceData) Count() uint64 { return td.rec.Count() }

// LastT reports the timestamp of the last event.
func (td *TraceData) LastT() uint64 { return td.rec.LastT() }

// Nodes returns the frames indexed by capture id.
func (td *TraceData) Nodes() []*Node { return td.nodes }

// Scan replays the captured events in time order, with capture-space ids.
func (td *TraceData) Scan(fn func(trace.Rec) error) error { return td.rec.Scan(fn) }

// Close releases the capture's spill store.
func (td *TraceData) Close() error { return td.rec.Close() }

// PreorderNodes returns the trie's nodes in serialization order: the root
// first, then each subtree in sorted call-PC order — the exact order
// writeNode walks, so index i here is node i of the tree section.
func (p *Profile) PreorderNodes() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p.Root)
	return out
}

// traceHeaderSize is the fixed prefix of a trace section payload:
// count u64 | lastT u64, little-endian.
const traceHeaderSize = 16

// writeTraceSection streams the capture as section profSecTrace: the
// 16-byte header followed by count fixed-width records whose ids have
// been rewritten from capture space to trie preorder. Peak memory is the
// chunk buffer, never O(events).
func (p *Profile) writeTraceSection(fw *framing.Writer) error {
	td := p.Trace
	remap := make([]uint32, len(td.nodes))
	pre := p.PreorderNodes()
	idx := make(map[*Node]uint32, len(pre))
	for i, n := range pre {
		idx[n] = uint32(i)
	}
	for i, n := range td.nodes {
		pi, ok := idx[n]
		if !ok {
			return fmt.Errorf("profile: traced frame %d not in trie", i)
		}
		remap[i] = pi
	}
	length := uint64(traceHeaderSize) + td.Count()*trace.RecSize
	return fw.StreamSection(profSecTrace, length, func(w io.Writer) error {
		var hdr [traceHeaderSize]byte
		binary.LittleEndian.PutUint64(hdr[0:8], td.Count())
		binary.LittleEndian.PutUint64(hdr[8:16], td.LastT())
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		buf := make([]byte, 0, 512*trace.RecSize)
		err := td.Scan(func(r trace.Rec) error {
			if int(r.CPID) >= len(remap) {
				return fmt.Errorf("profile: trace record cpid %d out of range", r.CPID)
			}
			r.CPID = remap[r.CPID]
			buf = trace.AppendRec(buf, r)
			if len(buf) == cap(buf) {
				if _, err := w.Write(buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
			return nil
		})
		if err != nil {
			return err
		}
		if len(buf) > 0 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		return nil
	})
}

// traceSink decodes a streamed trace section payload: header first, then
// records, tolerating arbitrary chunk boundaries.
type traceSink struct {
	fn      func(trace.Rec) error
	carry   []byte
	got     uint64 // payload bytes consumed
	count   uint64
	lastT   uint64
	sawHdr  bool
	scanned uint64
}

func (ts *traceSink) Write(p []byte) (int, error) {
	n := len(p)
	ts.got += uint64(n)
	b := p
	if len(ts.carry) > 0 {
		b = append(ts.carry, p...)
	}
	o := 0
	if !ts.sawHdr {
		if len(b) < traceHeaderSize {
			ts.carry = append(ts.carry[:0], b...)
			return n, nil
		}
		ts.count = binary.LittleEndian.Uint64(b[0:8])
		ts.lastT = binary.LittleEndian.Uint64(b[8:16])
		ts.sawHdr = true
		o = traceHeaderSize
	}
	for o+trace.RecSize <= len(b) {
		ts.scanned++
		if ts.scanned > ts.count {
			return n, fmt.Errorf("profile: trace section holds more records than its header declares")
		}
		if ts.fn != nil {
			if err := ts.fn(trace.DecodeRec(b[o : o+trace.RecSize])); err != nil {
				return n, err
			}
		}
		o += trace.RecSize
	}
	ts.carry = append(ts.carry[:0], b[o:]...)
	return n, nil
}

// ScanTrace streams the trace section of a v2 measurement stream, calling
// fn for each record (preorder-space ids) in time order; fn may be nil to
// read only the header. It returns the section's declared record count
// and last timestamp; (0, 0, nil) when the stream has no trace section
// (including v1 files). Memory stays bounded regardless of trace size.
func ScanTrace(r io.Reader, fn func(trace.Rec) error) (count, lastT uint64, err error) {
	size := framing.SizeOf(r)
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(profMagic))
	if err != nil {
		return 0, 0, fmt.Errorf("profile: reading magic: %w", noEOF(err))
	}
	if string(magic) == profMagic {
		return 0, 0, nil // v1 has no trace sections
	}
	fr, err := framing.NewReader(br, size, profMagicV2)
	if err != nil {
		return 0, 0, fmt.Errorf("profile: %w", err)
	}
	var ts *traceSink
	var sinkErr error
	fr.SetSink(func(id byte) io.Writer {
		if id != profSecTrace {
			return io.Discard
		}
		if ts != nil {
			sinkErr = fmt.Errorf("profile: duplicate trace section")
			return io.Discard
		}
		ts = &traceSink{fn: fn}
		return ts
	})
	for {
		_, _, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, fmt.Errorf("profile: %w", err)
		}
		if sinkErr != nil {
			return 0, 0, sinkErr
		}
	}
	if ts == nil {
		return 0, 0, nil
	}
	if !ts.sawHdr {
		return 0, 0, fmt.Errorf("profile: trace section shorter than its header")
	}
	if want := uint64(traceHeaderSize) + ts.count*trace.RecSize; ts.got != want {
		return 0, 0, fmt.Errorf("profile: trace section length %d does not match declared count %d", ts.got, ts.count)
	}
	return ts.count, ts.lastT, nil
}
