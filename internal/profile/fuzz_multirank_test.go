package profile_test

import (
	"bytes"
	"testing"

	"repro/internal/lower"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
)

// FuzzReadMultiRank seeds the profile reader with genuine per-rank
// measurement files from a rank-skewed SPMD run — multiple metric columns
// (cycles + idleness), non-zero rank IDs, barrier scopes — the encodings a
// multi-rank merge consumes. This lives in an external test package
// because generating the seeds needs internal/mpi, which itself depends on
// this package.
func FuzzReadMultiRank(f *testing.F) {
	p := prog.NewBuilder("fuzzranks").
		File("s.f90").
		Proc("kernel", 10,
			prog.Lx(11, prog.ScaledInt{X: prog.RankInt{}, Num: 30, Den: 1, Off: 30},
				prog.W(12, 10))).
		Proc("main", 1,
			prog.C(2, "kernel"),
			prog.Sync(3)).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		f.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: 4, Events: []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 10},
		{Event: sim.EvIdle, Period: 10},
	}})
	if err != nil {
		f.Fatal(err)
	}
	for _, pr := range profs {
		var buf bytes.Buffer
		if err := pr.Write(&buf); err != nil {
			f.Fatal(err)
		}
		good := buf.Bytes()
		f.Add(good)
		if len(good) > 16 {
			mutated := append([]byte(nil), good...)
			mutated[len(mutated)/3] ^= 0xa5
			f.Add(mutated)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := profile.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("Read returned an invalid profile: %v", verr)
		}
		if got.Rank >= 0 && got.Thread >= 0 {
			var out bytes.Buffer
			if err := got.Write(&out); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}
