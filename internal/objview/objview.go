// Package objview presents metrics correlated with object code: annotated
// disassembly with per-instruction sample counts. Section IX of the paper
// lists this as ongoing work ("HPCToolkit supports a simple text-based
// presentation of such information, but it is cumbersome to use"); this
// package provides that presentation over the synthetic ISA, with the
// ergonomics the paper's principles ask for — per-procedure ranking,
// percent annotations and blank zero cells.
package objview

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/profile"
)

// View is a per-address aggregation of sample counts over one image.
type View struct {
	im      *isa.Image
	metrics []profile.MetricInfo
	counts  map[uint64][]uint64
	totals  []uint64
}

// New aggregates the profiles' samples by instruction address, summing
// across calling contexts and ranks (the object-code view is flat by
// nature).
func New(im *isa.Image, profs []*profile.Profile) (*View, error) {
	if len(profs) == 0 {
		return nil, fmt.Errorf("objview: no profiles")
	}
	v := &View{
		im:      im,
		metrics: profs[0].Metrics,
		counts:  map[uint64][]uint64{},
		totals:  make([]uint64, len(profs[0].Metrics)),
	}
	for _, p := range profs {
		if len(p.Metrics) != len(v.metrics) {
			return nil, fmt.Errorf("objview: profiles have inconsistent metric tables")
		}
		var walk func(n *profile.Node) error
		walk = func(n *profile.Node) error {
			for _, row := range n.Samples() {
				if v.im.Index(row.PC) < 0 {
					return fmt.Errorf("objview: sample PC 0x%x outside image", row.PC)
				}
				acc := v.counts[row.PC]
				if acc == nil {
					acc = make([]uint64, len(v.metrics))
					v.counts[row.PC] = acc
				}
				for i, c := range row.Counts {
					acc[i] += c
					v.totals[i] += c
				}
			}
			for _, c := range n.Children() {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(p.Root); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// Metrics returns the metric table.
func (v *View) Metrics() []profile.MetricInfo { return v.metrics }

// ProcCost is one procedure's aggregate cost.
type ProcCost struct {
	Name   string
	Counts []uint64
}

// HotProcs ranks procedures by the given metric, descending; n bounds the
// result (0 = all).
func (v *View) HotProcs(metricIdx, n int) []ProcCost {
	if metricIdx < 0 || metricIdx >= len(v.metrics) {
		return nil
	}
	out := make([]ProcCost, 0, len(v.im.Procs))
	for pi := range v.im.Procs {
		sym := &v.im.Procs[pi]
		pc := ProcCost{Name: sym.Name, Counts: make([]uint64, len(v.metrics))}
		for i := sym.Start; i < sym.End; i++ {
			if acc, ok := v.counts[v.im.Addr(i)]; ok {
				for m, c := range acc {
					pc.Counts[m] += c
				}
			}
		}
		out = append(out, pc)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Counts[metricIdx] != out[j].Counts[metricIdx] {
			return out[i].Counts[metricIdx] > out[j].Counts[metricIdx]
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// WriteProc writes the procedure's annotated disassembly: one line per
// instruction with the disassembly, source line and per-metric event
// counts (blank when zero, with percent of the program total).
func (v *View) WriteProc(w io.Writer, procName string) error {
	pi := v.im.ProcByName(procName)
	if pi < 0 {
		return fmt.Errorf("objview: unknown procedure %q", procName)
	}
	sym := &v.im.Procs[pi]

	var b strings.Builder
	fmt.Fprintf(&b, "%s  [0x%x-0x%x)\n", sym.Name, v.im.Addr(sym.Start), v.im.Addr(sym.End))
	fmt.Fprintf(&b, "%-46s", "address   instruction")
	for _, m := range v.metrics {
		fmt.Fprintf(&b, " %16s", m.Name)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 46+17*len(v.metrics)))

	for i := sym.Start; i < sym.End; i++ {
		addr := v.im.Addr(i)
		dis := v.im.Disasm(i)
		// Disasm prefixes the index; replace it with the address.
		if cut := strings.Index(dis, ":"); cut >= 0 {
			dis = dis[cut+1:]
		}
		fmt.Fprintf(&b, "0x%06x %-37s", addr, trunc(strings.TrimSpace(dis), 37))
		acc := v.counts[addr]
		for m := range v.metrics {
			cell := ""
			if acc != nil && acc[m] > 0 {
				cell = fmt.Sprintf("%d", acc[m])
				if v.totals[m] > 0 {
					cell += fmt.Sprintf(" %5.1f%%", 100*float64(acc[m])/float64(v.totals[m]))
				}
			}
			fmt.Fprintf(&b, " %16s", cell)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 3 {
		return s[:n]
	}
	return s[:n-3] + "..."
}
