package objview

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
)

func fixture(t *testing.T) (*isa.Image, []*profile.Profile) {
	t.Helper()
	p := prog.NewBuilder("obj").
		File("a.c").
		Proc("hot", 10, prog.L(11, 90, prog.W(12, 100))).
		Proc("cold", 20, prog.W(21, 1000)).
		Proc("main", 1, prog.C(2, "hot"), prog.C(3, "cold")).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New("obj", 0, 0, []sampler.EventConfig{{Event: sim.EvCycles, Period: 100}})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sim.New(im, sim.Config{Observer: s})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	return im, []*profile.Profile{s.Profile()}
}

func TestHotProcsRanking(t *testing.T) {
	im, profs := fixture(t)
	v, err := New(im, profs)
	if err != nil {
		t.Fatal(err)
	}
	ranked := v.HotProcs(0, 0)
	if len(ranked) != 3 {
		t.Fatalf("procs = %d", len(ranked))
	}
	if ranked[0].Name != "hot" {
		t.Fatalf("top proc = %q", ranked[0].Name)
	}
	if ranked[0].Counts[0] < 8*ranked[1].Counts[0] {
		t.Fatalf("hot (%d) should dwarf %s (%d)", ranked[0].Counts[0], ranked[1].Name, ranked[1].Counts[0])
	}
	// Top-N truncation.
	if got := v.HotProcs(0, 1); len(got) != 1 {
		t.Fatalf("top-1 = %d entries", len(got))
	}
	// Bad metric index.
	if v.HotProcs(9, 0) != nil {
		t.Fatal("bad metric index produced ranking")
	}
}

func TestWriteProcAnnotation(t *testing.T) {
	im, profs := fixture(t)
	v, err := New(im, profs)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := v.WriteProc(&b, "hot"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "CYCLES") {
		t.Fatalf("metric header missing:\n%s", out)
	}
	if !strings.Contains(out, "work") || !strings.Contains(out, "brz") {
		t.Fatalf("disassembly missing:\n%s", out)
	}
	// The work instruction carries nearly all samples (with percent).
	if !strings.Contains(out, "%") {
		t.Fatalf("percent annotation missing:\n%s", out)
	}
	// Control instructions carry no cost: their metric cells are blank,
	// so a brz line must end without digits.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "brz") && strings.ContainsAny(strings.TrimSpace(line[40:]), "%") {
			t.Fatalf("control instruction has samples: %q", line)
		}
	}
	if err := v.WriteProc(&b, "ghost"); err == nil {
		t.Fatal("unknown proc rendered")
	}
}

func TestNewValidation(t *testing.T) {
	im, profs := fixture(t)
	if _, err := New(im, nil); err == nil {
		t.Fatal("no profiles accepted")
	}
	// A profile with a PC outside the image must be rejected.
	bad := profile.NewProfile("x", 0, 0, profs[0].Metrics)
	bad.Record(nil, 0x2, 0, 100)
	if _, err := New(im, []*profile.Profile{bad}); err == nil {
		t.Fatal("foreign PC accepted")
	}
	// Inconsistent metric tables are rejected.
	other := profile.NewProfile("x", 1, 0, []profile.MetricInfo{{Name: "A", Period: 1}, {Name: "B", Period: 1}})
	if _, err := New(im, []*profile.Profile{profs[0], other}); err == nil {
		t.Fatal("inconsistent metrics accepted")
	}
}

func TestMultiRankAggregation(t *testing.T) {
	im, profs := fixture(t)
	// Duplicate the profile to fake a second rank: counts double.
	v1, err := New(im, profs)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := New(im, []*profile.Profile{profs[0], profs[0]})
	if err != nil {
		t.Fatal(err)
	}
	a := v1.HotProcs(0, 1)[0].Counts[0]
	b := v2.HotProcs(0, 1)[0].Counts[0]
	if b != 2*a {
		t.Fatalf("aggregation wrong: %d vs %d", a, b)
	}
}
