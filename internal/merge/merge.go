// Package merge combines per-rank call path profiles into one canonical
// tree with per-scope summary statistics, implementing the paper's
// finalization step (Section IV-A step 3) and the scalability strategy of
// Section VII: instead of keeping one metric column per process in memory,
// each rank's profile is folded into streaming accumulators (mean, min,
// max, standard deviation) and discarded.
//
// Merging is parallel by default: ranks are split into contiguous shards,
// each folded into a private Accumulator by one worker, and the shards are
// combined with a pairwise tree reduction (Accumulator.Merge) that sums
// metric columns and summary-statistic moments — see parallel.go.
package merge

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/metric"
	"repro/internal/profile"
	"repro/internal/structfile"
)

// Result is a merged experiment: the summed tree plus per-scope summary
// accumulators over ranks.
type Result struct {
	// Tree holds summed raw metrics over all ranks.
	Tree *core.Tree
	// NRanks is the number of profiles merged.
	NRanks int

	// stats[col][row] accumulates the per-rank inclusive values of raw
	// column col at the scope with dense row id row — column-major like the
	// tree's metric store, so the fold indexes a slab instead of hashing a
	// per-node map, and summary sweeps run over contiguous memory.
	stats [][]metric.Stats
	// seen[row] records that the scope appeared in at least one rank (every
	// folded scope; distinguishes them from rows that only exist because a
	// slab grew past them).
	seen []bool
	raw  int // number of raw columns covered by stats
}

// statsAt returns the accumulator cell for (col, row), growing the column
// slab as needed. The pointer is valid until the slab next grows.
func (r *Result) statsAt(col int, row int32) *metric.Stats {
	for col >= len(r.stats) {
		r.stats = append(r.stats, nil)
	}
	s := r.stats[col]
	if n := int(row) + 1; n > len(s) {
		if n > cap(s) {
			c := 2 * cap(s)
			if c < 64 {
				c = 64
			}
			if c < n {
				c = n
			}
			grown := make([]metric.Stats, n, c)
			copy(grown, s)
			s = grown
		} else {
			s = s[:n]
		}
		r.stats[col] = s
	}
	return &s[row]
}

func (r *Result) markSeen(row int32) {
	if n := int(row) + 1; n > len(r.seen) {
		if n > cap(r.seen) {
			c := 2 * cap(r.seen)
			if c < 64 {
				c = 64
			}
			if c < n {
				c = n
			}
			grown := make([]bool, n, c)
			copy(grown, r.seen)
			r.seen = grown
		} else {
			r.seen = r.seen[:n]
		}
	}
	r.seen[row] = true
}

// Accumulator merges profiles one at a time: feed each rank's profile with
// Add and call Finish once. Only the accumulated tree and O(scopes ×
// metrics) statistics ever stay resident — the streaming shape Section IX
// asks for ("need not have data for all processes resident in memory at
// once"); cmd/hpcprof reads, adds and discards one measurement file at a
// time.
type Accumulator struct {
	doc *structfile.Doc
	res *Result
}

// NewAccumulator prepares a streaming merge against one structure
// document.
func NewAccumulator(doc *structfile.Doc) *Accumulator {
	return &Accumulator{
		doc: doc,
		res: &Result{Tree: core.NewTree("", metric.NewRegistry())},
	}
}

// Add correlates one profile and folds it into the accumulated result; the
// profile can be released afterwards.
func (a *Accumulator) Add(p *profile.Profile) error {
	if a.res == nil {
		return fmt.Errorf("merge: accumulator already finished")
	}
	if a.res.Tree.Program == "" {
		a.res.Tree.Program = p.Program
	}
	rankTree, err := correlate.Correlate(a.doc, p)
	if err != nil {
		return err
	}
	if err := a.res.fold(rankTree); err != nil {
		return err
	}
	a.res.NRanks++
	return nil
}

// Finish pads statistics for scopes absent from some ranks, computes the
// presented metrics, and returns the result. The accumulator cannot be
// reused.
func (a *Accumulator) Finish() (*Result, error) {
	if a.res == nil {
		return nil, fmt.Errorf("merge: accumulator already finished")
	}
	if a.res.NRanks == 0 {
		return nil, fmt.Errorf("merge: no profiles")
	}
	res := a.res
	a.res = nil
	// Scopes missing from some ranks observed zero there: pad every raw
	// column of every seen row up to the rank count, one contiguous column
	// at a time.
	for c := 0; c < res.raw; c++ {
		for row := range res.seen {
			if !res.seen[row] {
				continue
			}
			st := res.statsAt(c, int32(row))
			for st.N < int64(res.NRanks) {
				st.Observe(0)
			}
		}
	}
	res.Tree.ComputeMetrics()
	return res, nil
}

// Profiles correlates each profile against the structure document and
// merges them (the non-streaming convenience over Accumulator), using the
// parallel shard/reduce pipeline with one worker per CPU. Use ProfilesJobs
// to control the worker count.
func Profiles(doc *structfile.Doc, profs []*profile.Profile) (*Result, error) {
	return ProfilesJobs(doc, profs, 0)
}

// fold merges one rank's tree into the accumulator.
func (r *Result) fold(rank *core.Tree) error {
	// Map the rank's columns into the accumulator registry by name.
	cols := make([]int, rank.Reg.Len())
	for i, d := range rank.Reg.Columns() {
		if d.Kind != metric.Raw {
			continue
		}
		if acc := r.Tree.Reg.ByName(d.Name); acc != nil {
			cols[i] = acc.ID
			continue
		}
		nd, err := r.Tree.Reg.AddRaw(d.Name, d.Unit, d.Period)
		if err != nil {
			return err
		}
		cols[i] = nd.ID
	}
	if n := r.Tree.Reg.Len(); n > r.raw {
		r.raw = n
	}

	var walk func(accParent *core.Node, n *core.Node)
	walk = func(accParent *core.Node, n *core.Node) {
		acc := accParent
		if n.Kind != core.KindRoot {
			acc = accParent.Child(n.Key, true)
			acc.NoSource = n.NoSource
			acc.Mod = n.Mod
			if acc.CallLine == 0 {
				acc.CallLine = n.CallLine
				acc.CallFile = n.CallFile
			}
			n.Base.Range(func(id int, v float64) {
				acc.Base.Add(cols[id], v)
			})
			// Observe this rank's inclusive values. Ranks where the
			// scope is absent are padded with zeros afterwards.
			row := acc.Base.Row()
			r.markSeen(row)
			n.Incl.Range(func(id int, v float64) {
				r.statsAt(cols[id], row).Observe(v)
			})
		}
		for _, c := range n.Children {
			walk(acc, c)
		}
	}
	walk(r.Tree.Root, rank.Root)
	return nil
}

// Stats returns the per-rank statistics of raw column col at node (the
// zero Stats when the scope never appeared, or is not a scope of this
// result's tree).
func (r *Result) Stats(n *core.Node, col int) metric.Stats {
	if col < 0 || col >= len(r.stats) || n.Base.Store() != r.Tree.MetricStore() {
		return metric.Stats{}
	}
	s := r.stats[col]
	row := int(n.Base.Row())
	if row >= len(s) {
		return metric.Stats{}
	}
	return s[row]
}

// AddSummaries registers summary columns (e.g. mean/min/max/stddev of
// CYCLES across ranks) and writes their values into each scope's inclusive
// vector, where the views and the renderer pick them up like any other
// column.
func (r *Result) AddSummaries(src int, ops ...metric.SummaryOp) error {
	st := r.Tree.MetricStore()
	for _, op := range ops {
		d, err := r.Tree.Reg.AddSummary(src, op)
		if err != nil {
			return err
		}
		if st != nil && src >= 0 && src < len(r.stats) {
			// Columnar sweep: the source statistics and the destination
			// inclusive column are both row-indexed slabs. Only seen rows
			// can hold statistics, and the root row is never seen, matching
			// the walk below.
			out := st.Col(metric.PlaneIncl, d.ID)
			for row, ss := range r.stats[src] {
				if row < len(r.seen) && r.seen[row] {
					if v := ss.Value(d.Op); v != 0 {
						out[row] = v
					}
				}
			}
			continue
		}
		core.Walk(r.Tree.Root, func(n *core.Node) bool {
			if n.Kind == core.KindRoot {
				return true
			}
			s := r.Stats(n, src)
			if v := s.Value(d.Op); v != 0 {
				n.Incl.Set(d.ID, v)
			}
			return true
		})
	}
	return nil
}

// ImbalanceFactor reports max/mean - 1 of raw column col at node across
// ranks.
func (r *Result) ImbalanceFactor(n *core.Node, col int) float64 {
	st := r.Stats(n, col)
	return st.ImbalanceFactor()
}
