package merge

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lower"
	"repro/internal/metric"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/structfile"
)

// spmdFixture runs a rank-skewed SPMD program and returns the structure
// document plus per-rank raw profiles.
func spmdFixture(t *testing.T, nranks int) (*structfile.Doc, []*profile.Profile) {
	t.Helper()
	p := prog.NewBuilder("spmd").
		File("solver.f90").
		Proc("compute", 10,
			prog.Lx(11, prog.ScaledInt{X: prog.RankInt{}, Num: 100, Den: 1, Off: 100},
				prog.W(12, 10))).
		Proc("main", 1,
			prog.C(2, "compute"),
			prog.Sync(3)).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: nranks, Events: []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 10},
		{Event: sim.EvIdle, Period: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return doc, profs
}

func TestProfilesSumsRanks(t *testing.T) {
	doc, profs := spmdFixture(t, 4)
	res, err := Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	if res.NRanks != 4 {
		t.Fatalf("NRanks = %d", res.NRanks)
	}
	var wantCycles float64
	for _, p := range profs {
		wantCycles += float64(p.Totals()[p.MetricIndex("CYCLES")])
	}
	cyc := res.Tree.Reg.ByName("CYCLES")
	if cyc == nil {
		t.Fatal("CYCLES column missing")
	}
	if got := res.Tree.Total(cyc.ID); got != wantCycles {
		t.Fatalf("summed cycles = %g, want %g", got, wantCycles)
	}
}

func TestProfilesStats(t *testing.T) {
	doc, profs := spmdFixture(t, 4)
	res, err := Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	cyc := res.Tree.Reg.ByName("CYCLES").ID
	compute := res.Tree.FindPath("main", "compute")
	if compute == nil {
		t.Fatal("compute scope missing")
	}
	st := res.Stats(compute, cyc)
	if st.N != 4 {
		t.Fatalf("stats N = %d, want 4", st.N)
	}
	// Rank r does (100 + 100 r) * 10 cycles in compute: 1000, 2000,
	// 3000, 4000 (sampled, so approximately).
	if math.Abs(st.Mean()-2500) > 100 {
		t.Fatalf("mean = %g, want ~2500", st.Mean())
	}
	if st.Max < st.Mean() || st.Min > st.Mean() {
		t.Fatal("min/mean/max ordering broken")
	}
	// Imbalance factor: max/mean - 1 = 4000/2500 - 1 = 0.6.
	if f := res.ImbalanceFactor(compute, cyc); math.Abs(f-0.6) > 0.1 {
		t.Fatalf("imbalance factor = %g, want ~0.6", f)
	}
}

func TestProfilesIdlenessConcentratedOnFastRanks(t *testing.T) {
	doc, profs := spmdFixture(t, 4)
	res, err := Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	idle := res.Tree.Reg.ByName("IDLE")
	if idle == nil {
		t.Fatal("IDLE column missing")
	}
	// Total idleness = sum over ranks of (max - own) ~ 3000+2000+1000+0.
	if tot := res.Tree.Total(idle.ID); math.Abs(tot-6000) > 300 {
		t.Fatalf("total idleness = %g, want ~6000", tot)
	}
	// The idleness hot path leads into the wait procedure.
	hp := core.HotPath(res.Tree.Root, idle.ID, 0.5)
	last := hp[len(hp)-1]
	found := false
	for _, n := range hp {
		if n.Name.String() == lower.WaitProcName {
			found = true
		}
	}
	if !found {
		t.Fatalf("idleness hot path misses %s (ends at %q)", lower.WaitProcName, last.Label())
	}
}

func TestAddSummaries(t *testing.T) {
	doc, profs := spmdFixture(t, 4)
	res, err := Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	cyc := res.Tree.Reg.ByName("CYCLES").ID
	if err := res.AddSummaries(cyc, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev); err != nil {
		t.Fatal(err)
	}
	mean := res.Tree.Reg.ByName("CYCLES (mean)")
	maxCol := res.Tree.Reg.ByName("CYCLES (max)")
	if mean == nil || maxCol == nil {
		t.Fatal("summary columns missing")
	}
	compute := res.Tree.FindPath("main", "compute")
	if compute.Incl.Get(mean.ID) == 0 || compute.Incl.Get(maxCol.ID) == 0 {
		t.Fatal("summary values not written")
	}
	if compute.Incl.Get(maxCol.ID) < compute.Incl.Get(mean.ID) {
		t.Fatal("max < mean")
	}
	if err := res.AddSummaries(99, metric.OpMean); err == nil {
		t.Fatal("summary over bogus column accepted")
	}
}

func TestProfilesScopeAbsentFromSomeRanks(t *testing.T) {
	// A procedure that only rank 0 executes: its per-rank stats must
	// count zeros for the other ranks (min = 0, N = NRanks).
	p := prog.NewBuilder("partial").
		File("a.c").
		Proc("only0", 10, prog.W(11, 1000)).
		Proc("main", 1,
			prog.If{Line: 2, Cond: rank0{}, Then: []prog.Stmt{prog.C(3, "only0")}},
			prog.W(4, 100)).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: 3, Events: []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	only0 := res.Tree.FindPath("main", "only0")
	if only0 == nil {
		t.Fatal("only0 missing from merged tree")
	}
	st := res.Stats(only0, 0)
	if st.N != 3 {
		t.Fatalf("N = %d, want 3 (zero-padded)", st.N)
	}
	if st.Min != 0 {
		t.Fatalf("min = %g, want 0", st.Min)
	}
	if st.Max < 900 {
		t.Fatalf("max = %g, want ~1000", st.Max)
	}
}

type rank0 struct{}

func (rank0) Test(p *prog.Params, _ int, _ float64) bool { return p != nil && p.Rank == 0 }

func TestProfilesEmpty(t *testing.T) {
	if _, err := Profiles(nil, nil); err == nil {
		t.Fatal("empty profile list accepted")
	}
}

func TestAccumulatorStreamingMatchesBatch(t *testing.T) {
	doc, profs := spmdFixture(t, 4)
	batch, err := Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccumulator(doc)
	for _, p := range profs {
		if err := acc.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	stream, err := acc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stream.NRanks != batch.NRanks {
		t.Fatalf("NRanks %d != %d", stream.NRanks, batch.NRanks)
	}
	for col := 0; col < batch.Tree.Reg.Len(); col++ {
		if stream.Tree.Total(col) != batch.Tree.Total(col) {
			t.Fatalf("column %d total differs: %g vs %g",
				col, stream.Tree.Total(col), batch.Tree.Total(col))
		}
	}
	// Stats agree at a known scope.
	bs := batch.Stats(batch.Tree.FindPath("main", "compute"), 0)
	ss := stream.Stats(stream.Tree.FindPath("main", "compute"), 0)
	if bs.N != ss.N || bs.Sum != ss.Sum || bs.Min != ss.Min || bs.Max != ss.Max {
		t.Fatalf("stats differ: %+v vs %+v", bs, ss)
	}
	// A finished accumulator refuses further use.
	if err := acc.Add(profs[0]); err == nil {
		t.Fatal("Add after Finish accepted")
	}
	if _, err := acc.Finish(); err == nil {
		t.Fatal("double Finish accepted")
	}
}

func TestStatsUnknownScope(t *testing.T) {
	doc, profs := spmdFixture(t, 2)
	res, err := Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	ghost := &core.Node{}
	if st := res.Stats(ghost, 0); st.N != 0 {
		t.Fatal("stats for unknown scope not empty")
	}
	known := res.Tree.FindPath("main")
	if st := res.Stats(known, 99); st.N != 0 {
		t.Fatal("stats for unknown column not empty")
	}
}
