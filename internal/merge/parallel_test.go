package merge

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lower"
	"repro/internal/metric"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/render"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// The equivalence harness for the parallel shard/reduce merge: for every
// workload and a spread of rank counts, merging with jobs=1 and jobs=8
// must produce the same experiment — identical trees, metric sums,
// summary statistics and per-node imbalance factors, all bit-for-bit.
// Statistics are exact since the Stats rewrite to raw moments (N, Σx,
// Σx², min, max): merging is pure addition of integer-valued sums, which
// reassociates exactly below 2^53, so no tolerance is needed anywhere.

const (
	meanTol   = 0
	stddevTol = 0
)

// workloadFixture builds one workload through the measurement pipeline at
// the given rank count.
func workloadFixture(t testing.TB, name string, ranks int) (*structfile.Doc, []*profile.Profile) {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: ranks, Params: spec.Params,
		Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		t.Fatal(err)
	}
	return doc, profs
}

// closeEnough compares within a relative tolerance; tol 0 is exact.
func closeEnough(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if tol == 0 {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// sameVector asserts bit-for-bit equality of two metric views.
func sameVector(t *testing.T, where string, a, b *metric.View) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: vector length %d != %d (%v vs %v)", where, a.Len(), b.Len(), a, b)
	}
	a.Range(func(id int, v float64) {
		if got := b.Get(id); got != v {
			t.Fatalf("%s: column %d: %v != %v", where, id, v, got)
		}
	})
}

// sameTree walks two merged results in lockstep asserting identical
// structure, scope order, metric sums and statistics, all exact.
func sameTree(t *testing.T, seq, par *Result) {
	t.Helper()
	if seq.NRanks != par.NRanks {
		t.Fatalf("NRanks %d != %d", seq.NRanks, par.NRanks)
	}
	if seq.Tree.Reg.Len() != par.Tree.Reg.Len() {
		t.Fatalf("registry width %d != %d", seq.Tree.Reg.Len(), par.Tree.Reg.Len())
	}
	for i, d := range seq.Tree.Reg.Columns() {
		pd := par.Tree.Reg.ByID(i)
		if d.Name != pd.Name || d.Kind != pd.Kind || d.Period != pd.Period {
			t.Fatalf("column %d differs: %+v vs %+v", i, d, pd)
		}
	}
	raw := seq.Tree.Reg.Len()
	var walk func(a, b *core.Node, path string)
	walk = func(a, b *core.Node, path string) {
		if a.Key != b.Key {
			t.Fatalf("%s: key %+v != %+v", path, a.Key, b.Key)
		}
		where := path + "/" + a.Label()
		sameVector(t, where+" incl", &a.Incl, &b.Incl)
		sameVector(t, where+" excl", &a.Excl, &b.Excl)
		sameVector(t, where+" base", &a.Base, &b.Base)
		for col := 0; col < raw; col++ {
			sa, sb := seq.Stats(a, col), par.Stats(b, col)
			if sa.N != sb.N {
				t.Fatalf("%s col %d: stats N %d != %d", where, col, sa.N, sb.N)
			}
			if sa.Sum != sb.Sum {
				t.Fatalf("%s col %d: stats Sum %v != %v", where, col, sa.Sum, sb.Sum)
			}
			if !closeEnough(sa.Min, sb.Min, meanTol) || !closeEnough(sa.Max, sb.Max, meanTol) {
				t.Fatalf("%s col %d: min/max (%v,%v) != (%v,%v)", where, col, sa.Min, sa.Max, sb.Min, sb.Max)
			}
			if !closeEnough(sa.Mean(), sb.Mean(), meanTol) {
				t.Fatalf("%s col %d: mean %v != %v", where, col, sa.Mean(), sb.Mean())
			}
			if !closeEnough(sa.StdDev(), sb.StdDev(), stddevTol) {
				t.Fatalf("%s col %d: stddev %v != %v", where, col, sa.StdDev(), sb.StdDev())
			}
			fa, fb := seq.ImbalanceFactor(a, col), par.ImbalanceFactor(b, col)
			if !closeEnough(fa, fb, meanTol) {
				t.Fatalf("%s col %d: imbalance factor %v != %v", where, col, fa, fb)
			}
		}
		if len(a.Children) != len(b.Children) {
			t.Fatalf("%s: %d children != %d", where, len(a.Children), len(b.Children))
		}
		for i := range a.Children {
			walk(a.Children[i], b.Children[i], where)
		}
	}
	walk(seq.Tree.Root, par.Tree.Root, "")
}

func TestParallelMergeMatchesSequential(t *testing.T) {
	for _, name := range workloads.Names() {
		for _, ranks := range []int{1, 7, 64} {
			t.Run(fmt.Sprintf("%s/ranks=%d", name, ranks), func(t *testing.T) {
				doc, profs := workloadFixture(t, name, ranks)
				seq, err := ProfilesJobs(doc, profs, 1)
				if err != nil {
					t.Fatal(err)
				}
				par, err := ProfilesJobs(doc, profs, 8)
				if err != nil {
					t.Fatal(err)
				}
				sameTree(t, seq, par)
			})
		}
	}
}

// TestCombineUnevenShards exercises reductions whose shard counts are not
// powers of two (odd blocks ride along a round) and shards holding zero
// ranks (jobs > len(profs) clamps, but Combine must also cope).
func TestCombineUnevenShards(t *testing.T) {
	doc, profs := workloadFixture(t, "toy", 7)
	seq, err := ProfilesJobs(doc, profs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 3, 5, 7, 64} {
		accs := []*Accumulator{}
		step := (len(profs) + jobs - 1) / jobs
		for lo := 0; lo < len(profs); lo += step {
			hi := lo + step
			if hi > len(profs) {
				hi = len(profs)
			}
			acc := NewAccumulator(doc)
			for _, p := range profs[lo:hi] {
				if err := acc.Add(p); err != nil {
					t.Fatal(err)
				}
			}
			accs = append(accs, acc)
		}
		// An empty trailing shard must be absorbed silently.
		accs = append(accs, NewAccumulator(doc))
		acc, err := Combine(accs)
		if err != nil {
			t.Fatal(err)
		}
		par, err := acc.Finish()
		if err != nil {
			t.Fatal(err)
		}
		sameTree(t, seq, par)
	}
}

func TestMergeConsumesOther(t *testing.T) {
	doc, profs := workloadFixture(t, "toy", 2)
	a, b := NewAccumulator(doc), NewAccumulator(doc)
	if err := a.Add(profs[0]); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(profs[1]); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(profs[1]); err == nil {
		t.Fatal("Add on a consumed accumulator accepted")
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("Merge of a consumed accumulator accepted")
	}
	res, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.NRanks != 2 {
		t.Fatalf("NRanks = %d, want 2", res.NRanks)
	}
	if _, err := Combine(nil); err == nil {
		t.Fatal("Combine of nothing accepted")
	}
}

// TestConcurrentStatsReadsDuringAddSummaries locks down the documented
// concurrency contract: Result.Stats is read-only after Finish and may be
// called from any number of goroutines while AddSummaries registers and
// fills summary columns. Run under -race.
func TestConcurrentStatsReadsDuringAddSummaries(t *testing.T) {
	doc, profs := workloadFixture(t, "pflotran", 16)
	res, err := Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*core.Node
	core.Walk(res.Tree.Root, func(n *core.Node) bool {
		nodes = append(nodes, n)
		return true
	})
	raw := res.Tree.Reg.Len()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink float64
			for _, n := range nodes {
				for col := 0; col < raw; col++ {
					st := res.Stats(n, col)
					sink += st.Mean() + st.StdDev() + res.ImbalanceFactor(n, col)
				}
			}
			_ = sink
		}()
	}
	if err := res.AddSummaries(0, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// renderAll renders the three views plus summary columns into one byte
// stream — the determinism probe.
func renderAll(t *testing.T, name string, ranks, jobs int) []byte {
	t.Helper()
	doc, profs := workloadFixture(t, name, ranks)
	res, err := ProfilesJobs(doc, profs, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Tree.Reg.Columns() {
		if d.Kind != metric.Raw {
			continue
		}
		if err := res.AddSummaries(d.ID, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := render.RenderTree(&buf, res.Tree, render.Options{}); err != nil {
		t.Fatal(err)
	}
	cv := core.BuildCallersView(res.Tree)
	if err := render.RenderCallers(&buf, cv, res.Tree, render.Options{}); err != nil {
		t.Fatal(err)
	}
	fv := core.BuildFlatView(res.Tree)
	if err := render.RenderFlat(&buf, fv, res.Tree, render.Options{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPipelineDeterministic runs the whole pipeline twice — simulate,
// merge in parallel, summarize, render all three views — and diffs the
// rendered bytes, so any map-iteration or scheduling order leaking into
// the output fails loudly. A third run with a different worker count must
// render identically too.
func TestPipelineDeterministic(t *testing.T) {
	first := renderAll(t, "pflotran", 16, 8)
	second := renderAll(t, "pflotran", 16, 8)
	if !bytes.Equal(first, second) {
		t.Fatal("two identical pipeline runs rendered different bytes")
	}
	sequential := renderAll(t, "pflotran", 16, 1)
	if !bytes.Equal(first, sequential) {
		t.Fatal("jobs=8 and jobs=1 rendered different bytes")
	}
}
