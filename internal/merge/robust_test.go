package merge

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ingest"
)

// A nil profile in the slice panics inside Add (the correlate layer
// dereferences it); the worker must surface that as a typed error, not
// crash the process.
func TestMergePanicBecomesError(t *testing.T) {
	doc, profs := workloadFixture(t, "toy", 4)
	profs[1] = nil
	for _, jobs := range []int{1, 2, 4} {
		_, err := ProfilesJobs(doc, profs, jobs)
		if err == nil {
			t.Fatalf("jobs=%d: nil profile accepted", jobs)
		}
		var pe *ingest.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("jobs=%d: error %T is not a PanicError: %v", jobs, err, err)
		}
		if ingest.Classify(err) != ingest.ClassInternal {
			t.Fatalf("jobs=%d: panic classified as %v", jobs, ingest.Classify(err))
		}
	}
}

func TestMergeCtxCancel(t *testing.T) {
	doc, profs := workloadFixture(t, "toy", 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		_, err := ProfilesJobsCtx(ctx, doc, profs, jobs)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
	}
}

// A poisoned accumulator (nil tree) panics inside Merge during the
// pairwise reduction; Combine must recover it into an error.
func TestCombinePanicRecovered(t *testing.T) {
	doc, profs := workloadFixture(t, "toy", 2)
	a := NewAccumulator(doc)
	if err := a.Add(profs[0]); err != nil {
		t.Fatal(err)
	}
	b := NewAccumulator(doc)
	if err := b.Add(profs[1]); err != nil {
		t.Fatal(err)
	}
	b.res.Tree = nil
	_, err := Combine([]*Accumulator{a, b})
	if err == nil {
		t.Fatal("poisoned accumulator accepted")
	}
	var pe *ingest.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a PanicError: %v", err, err)
	}
}
