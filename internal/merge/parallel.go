package merge

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/metric"
	"repro/internal/profile"
	"repro/internal/structfile"
)

// This file implements the parallel shard/reduce merge topology (Section
// VII at scale): the rank profiles are split into contiguous shards, one
// worker folds each shard into a private Accumulator, and the shards are
// combined with a pairwise tree reduction of Accumulator.Merge operations.
//
// Determinism: shards are contiguous rank ranges and reductions always
// merge a left block with the block immediately to its right, so the
// first-occurrence order of scopes and metric columns — and therefore
// every child list and column ID — is identical to the sequential fold.
// Metric sums are sums of integer-valued float64 samples, so they are
// exact under any association; the summary statistics keep raw moments
// (N, Σx, Σx², min, max), so their combine is the same exact addition
// and the merged database is byte-identical for any jobs value.

// Merge folds another unfinished accumulator into a, summing metric
// columns (matched by name) and adding the per-scope summary moments,
// so shards can be reduced pairwise in any grouping. The other
// accumulator is consumed: it cannot be used afterwards.
func (a *Accumulator) Merge(other *Accumulator) error {
	if a.res == nil || other == nil || other.res == nil {
		return fmt.Errorf("merge: Merge on a finished accumulator")
	}
	o := other.res
	other.res = nil
	if o.NRanks == 0 {
		return nil
	}
	r := a.res
	if r.Tree.Program == "" {
		r.Tree.Program = o.Tree.Program
	}
	// Map the other shard's columns into this registry by name, exactly
	// as fold does for a rank tree.
	cols := make([]int, o.Tree.Reg.Len())
	for i, d := range o.Tree.Reg.Columns() {
		if d.Kind != metric.Raw {
			continue
		}
		if acc := r.Tree.Reg.ByName(d.Name); acc != nil {
			cols[i] = acc.ID
			continue
		}
		nd, err := r.Tree.Reg.AddRaw(d.Name, d.Unit, d.Period)
		if err != nil {
			return err
		}
		cols[i] = nd.ID
	}
	if n := r.Tree.Reg.Len(); n > r.raw {
		r.raw = n
	}

	var walk func(accParent *core.Node, n *core.Node)
	walk = func(accParent *core.Node, n *core.Node) {
		acc := accParent
		if n.Kind != core.KindRoot {
			acc = accParent.Child(n.Key, true)
			acc.NoSource = n.NoSource
			acc.Mod = n.Mod
			if acc.CallLine == 0 {
				acc.CallLine = n.CallLine
				acc.CallFile = n.CallFile
			}
			n.Base.Range(func(id int, v float64) {
				acc.Base.Add(cols[id], v)
			})
			orow := int(n.Base.Row())
			if orow < len(o.seen) && o.seen[orow] {
				row := acc.Base.Row()
				r.markSeen(row)
				for c := range o.stats {
					s := o.stats[c]
					if orow < len(s) && s[orow].N > 0 {
						r.statsAt(cols[c], row).Merge(s[orow])
					}
				}
			}
		}
		for _, c := range n.Children {
			walk(acc, c)
		}
	}
	walk(r.Tree.Root, o.Tree.Root)
	r.NRanks += o.NRanks
	return nil
}

// Combine reduces several shard accumulators into one with a pairwise
// tree reduction: each round merges accumulator 2i+1 into 2i, rounds
// running their merges concurrently. The input accumulators are consumed;
// the returned accumulator is accs[0], still unfinished. Shards must be
// contiguous, in-order blocks for the result to match a sequential fold.
func Combine(accs []*Accumulator) (*Accumulator, error) {
	if len(accs) == 0 {
		return nil, fmt.Errorf("merge: no accumulators to combine")
	}
	for len(accs) > 1 {
		pairs := len(accs) / 2
		errs := make([]error, pairs)
		next := make([]*Accumulator, 0, (len(accs)+1)/2)
		var wg sync.WaitGroup
		for i := 0; i+1 < len(accs); i += 2 {
			next = append(next, accs[i])
			wg.Add(1)
			go func(slot int, dst, src *Accumulator) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						errs[slot] = &ingest.PanicError{Value: r, Stack: debug.Stack()}
					}
				}()
				errs[slot] = dst.Merge(src)
			}(i/2, accs[i], accs[i+1])
		}
		if len(accs)%2 == 1 {
			next = append(next, accs[len(accs)-1])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		accs = next
	}
	return accs[0], nil
}

// ProfilesJobs correlates and merges the profiles using up to jobs
// parallel workers (GOMAXPROCS when jobs <= 0). Each worker folds a
// contiguous shard of ranks into a private accumulator; the shards are
// then combined with a pairwise tree reduction. The result is equivalent
// to the sequential Profiles fold: identical tree, scope order and metric
// sums; summary statistics within floating-point reassociation error.
func ProfilesJobs(doc *structfile.Doc, profs []*profile.Profile, jobs int) (*Result, error) {
	return ProfilesJobsCtx(context.Background(), doc, profs, jobs)
}

// addRecover folds one profile with panic containment: a poisoned profile
// (or a bug tickled by it) surfaces as a typed *ingest.PanicError instead
// of crashing the whole merge.
func addRecover(acc *Accumulator, p *profile.Profile) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &ingest.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return acc.Add(p)
}

// ProfilesJobsCtx is ProfilesJobs with cancellation and panic containment:
// workers stop at the next profile once ctx is done, the first failure
// halts the remaining work, and a panic while folding one profile is
// reported as an *ingest.PanicError rather than crashing the process.
func ProfilesJobsCtx(ctx context.Context, doc *structfile.Doc, profs []*profile.Profile, jobs int) (*Result, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(profs) {
		jobs = len(profs)
	}
	if jobs <= 1 {
		acc := NewAccumulator(doc)
		for _, p := range profs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := addRecover(acc, p); err != nil {
				return nil, err
			}
		}
		return acc.Finish()
	}

	accs := make([]*Accumulator, jobs)
	errs := make([]error, jobs)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		accs[w] = NewAccumulator(doc)
		lo, hi := shard(len(profs), jobs, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for _, p := range profs[lo:hi] {
				if stop.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				if err := addRecover(accs[w], p); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	// Prefer a real failure over a cancellation notice.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	acc, err := Combine(accs)
	if err != nil {
		return nil, err
	}
	return acc.Finish()
}

// shard returns the half-open bounds of contiguous block w of n items
// split into jobs near-equal blocks.
func shard(n, jobs, w int) (lo, hi int) {
	return n * w / jobs, n * (w + 1) / jobs
}
