package engine

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/render"
)

// diffPair builds the before/after experiments the diff goldens present:
// the paper's worked example, and a perturbed run where the hot loop
// statement got slower, f's local work grew, one call path disappeared and
// a new one showed up.
func diffPair(t testing.TB) (before, after *expdb.Experiment) {
	t.Helper()
	a := core.Fig1Tree()
	m := a.FindPath("m")
	if m == nil {
		t.Fatal("Fig1 tree has no m")
	}
	stale := m.Child(core.Key{Kind: core.KindFrame, Name: core.Sym("stale"), File: core.Sym("file3.c"), Line: 1}, true)
	stale.CallFile, stale.CallLine = core.Sym("file1.c"), 9
	stale.Child(core.Key{Kind: core.KindStmt, File: core.Sym("file3.c"), Line: 2}, true).Base.Add(0, 2)
	a.ComputeMetrics()

	b := core.Fig1Tree()
	core.Walk(b.Root, func(n *core.Node) bool {
		if n.Kind == core.KindStmt && n.File == core.Sym("file2.c") && n.Line == 9 {
			n.Base.Add(0, 6) // the loop nest regressed
		}
		if n.Kind == core.KindStmt && n.File == core.Sym("file1.c") && n.Line == 2 {
			n.Base.Add(0, 2) // f's own statement too
		}
		return true
	})
	mb := b.FindPath("m")
	fresh := mb.Child(core.Key{Kind: core.KindFrame, Name: core.Sym("fresh"), File: core.Sym("file3.c"), Line: 5}, true)
	fresh.CallFile, fresh.CallLine = core.Sym("file1.c"), 10
	fresh.Child(core.Key{Kind: core.KindStmt, File: core.Sym("file3.c"), Line: 6}, true).Base.Add(0, 5)
	b.ComputeMetrics()

	return expdb.New(a), expdb.New(b)
}

// diffSession opens a session on the before-run with the after-run in its
// catalog under "after".
func diffSession(t testing.TB, before, after *expdb.Experiment) *Session {
	t.Helper()
	s := NewSession(NewSnapshot(before))
	s.SetCatalog(SnapshotCatalog{"after": NewSnapshot(after)})
	return s
}

// runScript drives a session through Exec lines, failing on user errors,
// and returns the concatenated output.
func runScript(t testing.TB, s *Session, script []string) string {
	t.Helper()
	var out strings.Builder
	for _, line := range script {
		resp := s.Do(Request{Line: line})
		if resp.Err != "" {
			t.Fatalf("%q: %s", line, resp.Err)
		}
		out.WriteString(resp.Output)
	}
	return out.String()
}

// TestGoldenDiffViews locks what a diff session renders in all three views:
// the union scopes with per-input, delta, ratio and presence columns are
// ordinary metrics, so cc, callers and flat need no diff-specific code.
// Regenerate with `go test ./internal/engine -run TestGoldenDiffViews -update`.
func TestGoldenDiffViews(t *testing.T) {
	cases := []struct {
		name   string
		script []string
	}{
		{"diff_cc", []string{"diff after", "sort cost[B-A]", "expandall"}},
		{"diff_callers", []string{"diff after", "view callers", "expandall", "sort cost[B-A]"}},
		{"diff_flat", []string{"diff after", "view flat", "sort cost[B-A]:excl"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before, after := diffPair(t)
			s := diffSession(t, before, after)
			defer s.Close()
			runScript(t, s, tc.script)
			var b strings.Builder
			if err := s.Render(&b, render.Options{}); err != nil {
				t.Fatal(err)
			}
			got := b.String()

			path := filepath.Join("testdata", "golden_"+tc.name+".txt")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("golden mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", tc.name, got, want)
			}
		})
	}
}

// TestDiffCommandLifecycle exercises the command surface around a diff:
// catalog listing, the diff banner, and back restoring the original
// database and registry.
func TestDiffCommandLifecycle(t *testing.T) {
	before, after := diffPair(t)
	s := diffSession(t, before, after)
	defer s.Close()

	out := runScript(t, s, []string{"catalog"})
	if !strings.Contains(out, "after") {
		t.Fatalf("catalog output %q does not list 'after'", out)
	}
	if resp := s.Do(Request{Line: "diff missing"}); resp.Err == "" {
		t.Fatal("diff against an unknown name did not error")
	}
	baseCols := s.Registry().Len()
	out = runScript(t, s, []string{"diff after"})
	if !strings.Contains(out, `vs B "after"`) || !strings.Contains(out, "mode none") {
		t.Fatalf("diff banner missing: %q", out)
	}
	if !s.InDiff() {
		t.Fatal("session does not report being in a diff")
	}
	if s.Registry().ByName("cost[B-A]") == nil || s.Registry().ByName("in[A]") == nil {
		t.Fatal("diff columns not in the session registry")
	}
	// The diff is an ordinary database: hot paths over the delta column.
	out = runScript(t, s, []string{"hot cost[B-A]"})
	if !strings.Contains(out, "hot path ends at") {
		t.Fatalf("hot path over delta column failed: %q", out)
	}
	runScript(t, s, []string{"back"})
	if s.InDiff() {
		t.Fatal("back did not leave the diff")
	}
	if s.Registry().Len() != baseCols || s.Registry().ByName("cost[B-A]") != nil {
		t.Fatal("back did not restore the original registry")
	}
	if resp := s.Do(Request{Line: "back"}); resp.Err == "" {
		t.Fatal("back outside a diff did not error")
	}
}

// TestConcurrentDiffSessions runs 8 sessions over the same snapshot pair,
// each diffing and rendering concurrently (exercised under -race in CI).
// Every session must render byte-identical output: the inputs are only
// read, and each union is private to its session.
func TestConcurrentDiffSessions(t *testing.T) {
	before, after := diffPair(t)
	bsnap, asnap := NewSnapshot(before), NewSnapshot(after)
	cat := SnapshotCatalog{"after": asnap}
	script := []string{"diff after", "sort cost[B-A]", "expandall", "view callers", "expandall", "view flat", "view cc"}

	const sessions = 8
	outs := make([]string, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := NewSession(bsnap)
			defer s.Close()
			s.SetCatalog(cat)
			var out strings.Builder
			for _, line := range script {
				resp := s.Do(Request{Line: line})
				if resp.Err != "" {
					t.Errorf("session %d %q: %s", i, line, resp.Err)
					return
				}
			}
			if err := s.Render(&out, render.Options{}); err != nil {
				t.Errorf("session %d render: %v", i, err)
				return
			}
			outs[i] = out.String()
		}(i)
	}
	wg.Wait()
	for i := 1; i < sessions; i++ {
		if outs[i] != outs[0] {
			t.Fatalf("session %d rendered differently:\n--- session 0 ---\n%s\n--- session %d ---\n%s",
				i, outs[0], i, outs[i])
		}
	}
}
