// Package engine is the concurrency-safe presentation engine behind the
// paper's interactive analyses. It separates what the process-local viewer
// entangled:
//
//   - Snapshot: an opened experiment database — CCT, metric store, registry
//     — sealed immutable after load. The only post-seal mutation, lazy
//     fault-in of override-backed metric sections, runs behind the
//     snapshot's write lock while every query holds the read lock, and each
//     fault bumps a generation counter so session caches can never serve
//     stale orders.
//
//   - Session: one user's presentation state over a shared snapshot — view
//     selection, expansion, zoom, flattening, sort, selection, highlights,
//     memoized query results, and an overlay registry for session-private
//     derived metrics. Any number of sessions may run over one snapshot
//     concurrently; each renders byte-identically to a session that had the
//     database to itself.
//
//   - Exec: the request/response command surface (the REPL grammar) thin
//     frontends speak — the interactive CLI and the HTTP server are both
//     line-in, text-out clients of the same engine.
package engine

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/ingest"
)

// Snapshot is an immutable view of a loaded experiment database, shared by
// any number of concurrent sessions.
//
// Immutability discipline: the tree's structure, its metric store and its
// registry are sealed at construction (presented metrics are computed and
// derived kernels applied before the snapshot is handed out). The one
// exception is lazy fault-in of override-backed columns from a lazily
// opened database, which rewrites shared metric slabs; it runs under mu's
// write lock, while every session query runs under the read lock, and each
// first-time fault advances gen so sessions invalidate their memoized
// orders, hot paths and overlay columns.
type Snapshot struct {
	tree *core.Tree
	exp  *expdb.Experiment // nil for bare-tree snapshots
	ldb  *expdb.LazyDB     // nil unless lazily opened
	mdb  *expdb.MappedDB   // nil unless mapped (v3 zero-copy)

	// refs counts owners: the creator (released by Close) plus one per
	// live Session. closer runs when the count hits zero — for mapped
	// snapshots it unmaps the file, so it must not run while any session
	// could still dereference a borrowed slab.
	refs   atomic.Int64
	closer func() error

	// baseCols is the registry length at seal time: the boundary between
	// shared database columns (below) and session-overlay derived columns
	// (at or above).
	baseCols int

	// hookMu guards lastRelease: hooks appended by lifecycle owners (the
	// catalog) that run after the closer at final release.
	hookMu      sync.Mutex
	lastRelease []func()

	// mu orders queries (read lock) against fault-in (write lock).
	mu sync.RWMutex
	// gen counts fault-in events; sessions compare it to their last
	// observed value and drop caches on change. Written under mu; read
	// atomically so sessions can check it cheaply under the read lock.
	gen atomic.Uint64

	// faulter loads one metric column on first use; faulted memoizes the
	// per-column outcome so each column faults exactly once per snapshot.
	// Guarded by mu.
	faulter func(metricID int) error
	faulted map[int]error
	// allFaulted short-circuits FaultAll once every column has been
	// offered. Guarded by mu.
	allFaulted bool
	// lazyFlag mirrors faulter != nil so sessions can test for lazy
	// columns without taking the lock.
	lazyFlag atomic.Bool
}

// NewSnapshot seals an in-memory experiment. The experiment must be fully
// materialized (expdb.Read and expdb.FromMerge results are).
func NewSnapshot(exp *expdb.Experiment) *Snapshot {
	sn := &Snapshot{tree: exp.Tree, exp: exp}
	sn.seal()
	return sn
}

// NewLazySnapshot seals a lazily opened database: required sections are
// resident, override-backed columns fault in through the database's
// NeedColumn on first use — synchronized and generation-stamped by the
// snapshot, so concurrent sessions may trigger the fault safely.
func NewLazySnapshot(ldb *expdb.LazyDB) *Snapshot {
	sn := &Snapshot{tree: ldb.Experiment().Tree, exp: ldb.Experiment(), ldb: ldb}
	sn.faulter = ldb.NeedColumn
	sn.seal()
	return sn
}

// NewTreeSnapshot seals a bare computed tree (no database around it) — the
// entry point for hand-built trees and tests.
func NewTreeSnapshot(t *core.Tree) *Snapshot {
	sn := &Snapshot{tree: t}
	sn.seal()
	return sn
}

// NewMappedSnapshot seals a zero-copy mapped (v3) database. Metadata is
// decoded here (a snapshot cannot present without the tree); column slabs
// stay untouched in the mapping until sessions fault them, when the
// database verifies each section's checksum exactly once. The snapshot
// owns the mapping: it is unmapped when the last owner (creator + live
// sessions) releases the snapshot.
func NewMappedSnapshot(mdb *expdb.MappedDB) (*Snapshot, error) {
	exp, err := mdb.Experiment()
	if err != nil {
		return nil, err
	}
	sn := &Snapshot{tree: exp.Tree, exp: exp, mdb: mdb}
	sn.faulter = mdb.NeedColumn
	sn.closer = mdb.Close
	sn.seal()
	return sn, nil
}

// Open opens an experiment database file and seals it as a snapshot. v3
// databases are mapped zero-copy (O(index) at the storage layer, metadata
// decoded here); other formats open lazily.
func Open(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var head [len(expdb.MagicV3)]byte
	n, _ := io.ReadFull(f, head[:])
	if string(head[:n]) == expdb.MagicV3 {
		f.Close()
		mdb, err := expdb.OpenMapped(path)
		if err != nil {
			return nil, err
		}
		sn, err := NewMappedSnapshot(mdb)
		if err != nil {
			mdb.Close()
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		return sn, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	// OpenLazy consumes the whole stream (the CRC scan), retaining section
	// payloads in memory, so the file handle can close immediately.
	ldb, err := expdb.OpenLazy(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return NewLazySnapshot(ldb), nil
}

// OpenReader opens a database from a stream (sniffing XML/v1/v2 like
// expdb.OpenLazy) and seals it.
func OpenReader(r io.Reader) (*Snapshot, error) {
	ldb, err := expdb.OpenLazy(r)
	if err != nil {
		return nil, err
	}
	return NewLazySnapshot(ldb), nil
}

// seal freezes the snapshot: presented metrics are computed (a no-op for
// database-loaded trees, whose finalize already ran) and the base column
// boundary recorded.
func (sn *Snapshot) seal() {
	sn.tree.EnsureComputed()
	sn.baseCols = sn.tree.Reg.Len()
	sn.faulted = map[int]error{}
	sn.lazyFlag.Store(sn.faulter != nil)
	sn.refs.Store(1)
}

// Retain adds an owner. Sessions retain their snapshot at construction and
// release it on Close, so a mapped file is never unmapped under a live
// session.
func (sn *Snapshot) Retain() { sn.refs.Add(1) }

// Release drops one owner; the last release runs the snapshot's closer
// (unmapping the file for mapped databases), then any OnLastRelease hooks.
func (sn *Snapshot) Release() error {
	if sn.refs.Add(-1) != 0 {
		return nil
	}
	var err error
	if sn.closer != nil {
		err = sn.closer()
	}
	sn.hookMu.Lock()
	hooks := sn.lastRelease
	sn.lastRelease = nil
	sn.hookMu.Unlock()
	for _, f := range hooks {
		f()
	}
	return err
}

// RefCount reports the current number of owners (creator + live sessions +
// any lifecycle manager references). It is a point-in-time observation for
// stats and tests, not a synchronization primitive.
func (sn *Snapshot) RefCount() int64 { return sn.refs.Load() }

// OnLastRelease registers f to run after the final Release — for a mapped
// database, after the file is actually unmapped. The catalog uses it to
// account resident bytes at true unmap time (an evicted snapshot stays
// mapped while sessions still retain it). Safe to call concurrently with
// Retain/Release; if the count already hit zero the hook never runs.
func (sn *Snapshot) OnLastRelease(f func()) {
	sn.hookMu.Lock()
	sn.lastRelease = append(sn.lastRelease, f)
	sn.hookMu.Unlock()
}

// Close releases the creator's reference. Call it once, when the frontend
// is done handing the snapshot to new sessions; live sessions keep the
// snapshot (and its mapping) alive until they close.
func (sn *Snapshot) Close() error { return sn.Release() }

// lazy reports whether the snapshot has lazily faulted columns.
func (sn *Snapshot) lazy() bool { return sn.lazyFlag.Load() }

// Tree returns the shared tree. Callers must treat it as read-only.
func (sn *Snapshot) Tree() *core.Tree { return sn.tree }

// Experiment returns the database wrapper (nil for bare-tree snapshots).
func (sn *Snapshot) Experiment() *expdb.Experiment { return sn.exp }

// BaseColumns reports the number of sealed registry columns; session
// overlay columns are assigned IDs from this boundary up.
func (sn *Snapshot) BaseColumns() int { return sn.baseCols }

// Generation returns the fault-in generation counter.
func (sn *Snapshot) Generation() uint64 { return sn.gen.Load() }

// Notes returns a copy of the database's degradation notes (fault-in may
// append to them; the copy is taken under the read lock).
func (sn *Snapshot) Notes() []string {
	if sn.exp == nil {
		return nil
	}
	sn.mu.RLock()
	defer sn.mu.RUnlock()
	return append([]string(nil), sn.exp.Notes...)
}

// MappedBytes returns the raw bytes of a mapped (v3) database for
// residency probing, nil for any other snapshot. Read-only.
func (sn *Snapshot) MappedBytes() []byte {
	if sn.mdb == nil {
		return nil
	}
	return sn.mdb.MappedBytes()
}

// Mapped reports whether the snapshot is backed by a true memory mapping.
func (sn *Snapshot) Mapped() bool { return sn.mdb != nil && sn.mdb.Mapped() }

// SectionSpans returns the mapped database's sections as named byte
// spans (nil for eager snapshots), for per-kind residency probes.
func (sn *Snapshot) SectionSpans() []expdb.SectionSpan {
	if sn.mdb == nil {
		return nil
	}
	return sn.mdb.SectionSpans()
}

// Provenance faults in and returns the database's quarantine report (nil
// when absent).
func (sn *Snapshot) Provenance() (*ingest.Report, error) {
	if sn.mdb != nil {
		sn.mu.Lock()
		defer sn.mu.Unlock()
		return sn.mdb.Provenance()
	}
	if sn.ldb == nil {
		if sn.exp == nil {
			return nil, nil
		}
		return sn.exp.Provenance, nil
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.ldb.Provenance()
}

// Trace returns the snapshot's trace view (time-dimension data), building
// and checksum-verifying it on first call. Only mapped (v3) snapshots
// carry traces; others return (nil, nil). The view is immutable and safe
// for concurrent renders; the snapshot's refcount keeps its mapping alive,
// so callers must hold a reference (sessions do) for as long as they use
// the view. Damage degrades into Notes, never an error here.
func (sn *Snapshot) Trace() (*expdb.TraceView, error) {
	if sn.mdb == nil {
		return nil, nil
	}
	// The database appends degradation notes to the shared Experiment under
	// its own lock; take the snapshot's write lock so Notes() readers (who
	// hold the read lock) never race the append.
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.mdb.Trace()
}

// NodeAt resolves a trace call-path id (structural tree row) to its node;
// nil for non-mapped snapshots or out-of-range rows.
func (sn *Snapshot) NodeAt(row int) *core.Node {
	if sn.mdb == nil {
		return nil
	}
	return sn.mdb.NodeAt(row)
}

// SetColumnFaulter replaces the snapshot's column faulter and forgets which
// columns have faulted. Sessions created before the call keep their own
// fault bookkeeping; this is intended for wiring a custom loader (or a
// note-flushing wrapper) right after construction, before sessions exist.
func (sn *Snapshot) SetColumnFaulter(f func(metricID int) error) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.faulter = f
	sn.faulted = map[int]error{}
	sn.allFaulted = false
	sn.lazyFlag.Store(f != nil)
}

// needColumn runs the column faulter exactly once per column across every
// session of the snapshot, under the write lock (queries are excluded while
// shared slabs may be rewritten). The recorded outcome is returned to every
// later requester. Each first-time fault advances the generation.
func (sn *Snapshot) needColumn(id int) error {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.needColumnLocked(id)
}

func (sn *Snapshot) needColumnLocked(id int) error {
	if sn.faulter == nil {
		return nil
	}
	if err, ok := sn.faulted[id]; ok {
		return err
	}
	sn.gen.Add(1)
	err := sn.faulter(id)
	sn.faulted[id] = err
	return err
}

// FaultAll offers every sealed column to the faulter. Sessions call it
// before building or expanding an aggregating view (Callers, Flat): those
// views copy every resident column of the scopes they aggregate, so their
// contents must not depend on which columns other sessions happened to
// fault first — materializing everything makes the aggregate a pure
// function of the database. The first error is returned, but every column
// is still offered.
func (sn *Snapshot) FaultAll() error {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.faulter == nil || sn.allFaulted {
		return nil
	}
	var first error
	for id := 0; id < sn.baseCols; id++ {
		if err := sn.needColumnLocked(id); err != nil && first == nil {
			first = err
		}
	}
	sn.allFaulted = true
	return first
}
