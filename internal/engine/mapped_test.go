package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/expdb"
)

// v3FixtureFile writes the merged multi-rank fixture as a mapped-format
// (v3) database file and returns its path and exact bytes.
func v3FixtureFile(t *testing.T) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := mergedFixture(t).WriteBinaryV3(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "experiment.db")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

func mappedSnapshot(t *testing.T, path string) *Snapshot {
	t.Helper()
	mdb, err := expdb.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := NewMappedSnapshot(mdb)
	if err != nil {
		mdb.Close()
		t.Fatal(err)
	}
	return sn
}

// TestConcurrentSessionsOverMappedSnapshot is the zero-copy layout's
// concurrency gate, designed to run under -race: 8 sessions share ONE
// mapped snapshot, each registering session-private derived metrics and
// running a diff (Compare + Back) that recomputes over the shared slabs,
// while renders race the first-touch column checksum passes. Every session
// must render byte-identically to the same stream replayed in isolation,
// and — the mapped file being the shared substrate — its bytes must be
// bit-for-bit untouched afterwards: all writes land in copy-on-write heap
// slabs, never the mapping.
func TestConcurrentSessionsOverMappedSnapshot(t *testing.T) {
	path, original := v3FixtureFile(t)
	const sessions = 8
	streams := commandStreams(sessions)
	// Fold a diff recompute into every stream: diff the database against
	// itself from the catalog, render inside the diff, and come back.
	for i := range streams {
		streams[i] = append(append([]string{}, streams[i]...), "diff self CYCLES", "expandall", "ls", "back", "ls")
	}

	catalogFor := func(sn *Snapshot) SnapshotCatalog {
		return SnapshotCatalog{"self": mappedSnapshot(t, path)}
	}

	want := make([]string, sessions)
	for i, stream := range streams {
		sn := mappedSnapshot(t, path)
		s := NewSession(sn)
		s.SetCatalog(catalogFor(sn))
		want[i] = replay(s, stream)
		s.Close()
	}
	for i, w := range want {
		if !strings.Contains(w, "scope") {
			t.Fatalf("stream %d produced no render:\n%s", i, w)
		}
		if !strings.Contains(w, "diff:") {
			t.Fatalf("stream %d never entered the diff:\n%s", i, w)
		}
	}

	shared := mappedSnapshot(t, path)
	catalog := catalogFor(shared)
	got := make([]string, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := NewSession(shared)
			defer s.Close()
			s.SetCatalog(catalog)
			got[i] = replay(s, streams[i])
		}(i)
	}
	wg.Wait()

	for i := range got {
		if got[i] != want[i] {
			t.Errorf("session %d over the shared mapping diverged from isolated replay\n--- shared ---\n%s\n--- isolated ---\n%s",
				i, got[i], want[i])
		}
	}

	// The mapping is read-only end to end: derived-metric materialization,
	// summary sorts and the diff recompute all went through copy-on-write.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(original, after) {
		t.Fatal("mapped database bytes changed under concurrent sessions")
	}
}

// TestMappedSnapshotRefcount checks the unmap discipline: the mapping
// survives the creator's Close while sessions are live and is released
// only when the last session closes.
func TestMappedSnapshotRefcount(t *testing.T) {
	path, _ := v3FixtureFile(t)
	snap := mappedSnapshot(t, path)
	if !snap.Mapped() {
		t.Skip("mmap unavailable on this platform")
	}

	s1 := NewSession(snap)
	s2 := NewSession(snap)
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if !snap.Mapped() {
		t.Fatal("creator Close unmapped under live sessions")
	}
	// Sessions still render off the mapping after the creator is gone.
	if resp := s1.Do(Request{Line: "expandall"}); resp.Err != "" {
		t.Fatalf("expandall: %s", resp.Err)
	}
	if resp := s1.Do(Request{Line: "ls"}); resp.Err != "" || !strings.Contains(resp.Output, "scope") {
		t.Fatalf("render after creator close: %q err=%s", resp.Output, resp.Err)
	}
	s1.Close()
	if !snap.Mapped() {
		t.Fatal("unmapped while one session remained")
	}
	s2.Close()
	if snap.Mapped() {
		t.Fatal("last session close did not release the mapping")
	}
	// Double close of a session must not double-release.
	s2.Close()
}
