package engine

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/trace"
)

// The trace command renders hpctraceviewer's time×rank canvas as text:
// one row per rank, one character per time cell, colored by call-path
// depth (deeper = busier). Rendering is O(W·H) over the database's zoom
// pyramid regardless of how many trace events were captured.

// depthChar maps a cell's call-path depth to its glyph: '.' for empty
// cells, '0'-'9' then 'a'-'z' for depths, saturating at 'z'.
func depthChar(c trace.Cell) byte {
	if c.Empty() {
		return '.'
	}
	d := int(c.Depth)
	switch {
	case d < 10:
		return byte('0' + d)
	case d < 36:
		return byte('a' + d - 10)
	}
	return 'z'
}

// RenderTrace renders the time×rank view for [t0,t1) (t1=0 means the full
// span) at w×h cells, followed by a legend of the top call paths by
// samples shown. The output is a pure function of the database bytes and
// the arguments, so concurrent sessions render byte-identically.
func (s *Session) RenderTrace(out io.Writer, t0, t1 uint64, w, h int) error {
	tv, err := s.snap.Trace()
	if err != nil {
		return err
	}
	if tv == nil || len(tv.TraceRanks()) == 0 {
		return fmt.Errorf("no trace data in this database (capture with hpcrun -trace, merge with hpcprof -traces -format v3)")
	}
	g, err := trace.View(tv, t0, t1, nil, w, h)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace [%d,%d) %dx%d cells, %d ranks\n", g.T0, g.T1, g.W, g.H, len(g.Ranks))
	samples := map[uint32]uint64{}
	for y := 0; y < g.H; y++ {
		line := make([]byte, g.W)
		for x := 0; x < g.W; x++ {
			c := g.At(x, y)
			line[x] = depthChar(c)
			if !c.Empty() {
				samples[c.CPID] += uint64(c.Samples)
			}
		}
		fmt.Fprintf(out, "rank %4d |%s|\n", g.Ranks[y], line)
	}

	type entry struct {
		cpid  uint32
		count uint64
	}
	top := make([]entry, 0, len(samples))
	for id, n := range samples {
		top = append(top, entry{id, n})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].count != top[j].count {
			return top[i].count > top[j].count
		}
		return top[i].cpid < top[j].cpid
	})
	if len(top) > 5 {
		top = top[:5]
	}
	if len(top) > 0 {
		fmt.Fprintln(out, "top call paths shown:")
		for _, e := range top {
			label := "?"
			if n := s.snap.NodeAt(int(e.cpid)); n != nil {
				label = n.Label()
			}
			fmt.Fprintf(out, "  %8d samples  %s\n", e.count, label)
		}
	}
	return nil
}
