package engine

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/mpi"
	"repro/internal/render"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// mergedFixture builds a merged multi-rank experiment whose summary columns
// live in the v2 overrides section — the shape a lazy open can skip.
func mergedFixture(t *testing.T) *expdb.Experiment {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: 3, Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	cyc := res.Tree.Reg.ByName("CYCLES")
	if cyc == nil {
		t.Fatal("no CYCLES column")
	}
	if err := res.AddSummaries(cyc.ID, metric.OpMean, metric.OpMax); err != nil {
		t.Fatal(err)
	}
	return expdb.FromMerge(res)
}

// TestSortOrdersMemoized checks the observable of the query cache: reusing
// a sibling order across renders returns the identical slice, and anything
// that can change metric values invalidates it.
func TestSortOrdersMemoized(t *testing.T) {
	s := session(t)
	s.Expand(s.Tree().Root.Children[0])

	a := s.VisibleRows()
	first := make([]*core.Node, len(a))
	for i, r := range a {
		first[i] = r.Node
	}
	b := s.VisibleRows()
	if len(a) != len(b) {
		t.Fatalf("re-render changed row count: %d vs %d", len(a), len(b))
	}
	for i := range b {
		if b[i].Node != first[i] {
			t.Fatalf("re-render reordered row %d", i)
		}
	}

	// A derived metric changes values: sorting by it must see the fresh
	// column, not a stale memoized order.
	if err := s.AddDerivedMetric("neg", "0 - $0"); err != nil {
		t.Fatal(err)
	}
	d := s.Registry().ByName("neg")
	s.SetSort(core.SortSpec{MetricID: d.ID})
	got := rowLabels(s.VisibleRows())
	// Derived columns are session-private now: the fresh session registers
	// the same formula and gets the same column ID (same base boundary).
	s2 := newTestSession(s.Tree(), nil)
	if err := s2.AddDerivedMetric("neg", "0 - $0"); err != nil {
		t.Fatal(err)
	}
	s2.Expand(s.Tree().Root.Children[0])
	s2.SetSort(core.SortSpec{MetricID: d.ID})
	want := rowLabels(s2.VisibleRows())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cached session rows %v, fresh session rows %v", got, want)
	}
}

// TestCachedSessionMatchesFresh drives one session through a churn of
// interactions and checks every render against a fresh, uncached session
// configured identically — the cache must be invisible.
func TestCachedSessionMatchesFresh(t *testing.T) {
	tr := core.Fig1Tree()
	s := newTestSession(tr, nil)
	check := func(step string) {
		t.Helper()
		fresh := newTestSession(tr, nil)
		fresh.SwitchView(s.view)
		for n := range s.expanded {
			fresh.expanded[n] = true
		}
		fresh.SetSort(s.sort)
		fresh.flatten = s.flatten
		fresh.zoom = append([]*core.Node(nil), s.zoom...)
		got, want := rowLabels(s.VisibleRows()), rowLabels(fresh.VisibleRows())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: cached rows %v, fresh rows %v", step, got, want)
		}
	}
	check("initial")
	if err := s.ExpandAll(tr.Root); err != nil {
		t.Fatal(err)
	}
	check("expandall")
	s.SetSort(core.SortSpec{MetricID: 0, Ascending: true})
	check("ascending")
	s.SetSort(core.SortSpec{ByLabel: true})
	check("bylabel")
	s.SwitchView(ViewFlat)
	if err := s.ExpandAll(tr.Root); err != nil {
		t.Fatal(err)
	}
	check("flat")
	if err := s.FlattenOnce(); err != nil {
		t.Fatal(err)
	}
	check("flattened")
	s.SwitchView(ViewCallers)
	if err := s.ExpandAll(tr.Root); err == nil {
		_ = err
	}
	check("callers")
}

// TestHotPathMemoized checks that repeated hot-path queries return the same
// path and that the memoized result respects threshold changes.
func TestHotPathMemoized(t *testing.T) {
	s := session(t)
	p1 := s.HotPath(0)
	// HotPath selects the path endpoint; reset so the second query is
	// identical to the first.
	s.Select(nil)
	p2 := s.HotPath(0)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("hot path changed across identical queries: %v vs %v", p1, p2)
	}
	s.Select(nil)
	s.SetThreshold(0.99)
	p3 := s.HotPath(0)
	fresh := newTestSession(s.Tree(), nil)
	fresh.SetThreshold(0.99)
	want := fresh.HotPath(0)
	if len(p3) != len(want) {
		t.Fatalf("threshold change served stale path: %d vs %d scopes", len(p3), len(want))
	}
}

// TestColumnFaulterLazySession fronts a lazily opened database with a
// session: only columns the scripted interaction touches are faulted, the
// faulter runs once per column, and the rendered values match an eager
// session byte for byte.
func TestColumnFaulterLazySession(t *testing.T) {
	e := mergedFixture(t)
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	eager, err := expdb.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	db, err := expdb.OpenLazy(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSession(db.Experiment().Tree, nil)
	var faults []int
	s.SetColumnFaulter(func(id int) error {
		faults = append(faults, id)
		return db.NeedColumn(id)
	})

	// Sorting by the raw column touches nothing optional.
	raw := s.Tree().Reg.ByName("CYCLES")
	s.SetSort(core.SortSpec{MetricID: raw.ID})
	s.VisibleRows()
	s.VisibleRows()
	if n := db.SectionReads()["overrides"]; n != 0 {
		t.Fatalf("raw-column session decoded overrides %d times", n)
	}
	if len(faults) != 1 {
		t.Fatalf("faulter ran %d times for one column, want 1", len(faults))
	}

	// Rendering a summary column faults it in; the output then matches an
	// eager session rendering the same thing.
	var sum int
	for _, d := range s.Tree().Reg.Columns() {
		if d.Kind == metric.Summary {
			sum = d.ID
			break
		}
	}
	cols := []render.Column{{MetricID: sum, Inclusive: true}}
	s.SetColumns(cols)
	if err := s.ExpandAll(s.Tree().Root); err != nil {
		t.Fatal(err)
	}
	var lazyOut bytes.Buffer
	if err := s.Render(&lazyOut, render.Options{}); err != nil {
		t.Fatal(err)
	}
	if n := db.SectionReads()["overrides"]; n != 1 {
		t.Fatalf("summary render decoded overrides %d times, want 1", n)
	}

	se := newTestSession(eager.Tree, nil)
	se.SetSort(core.SortSpec{MetricID: raw.ID})
	se.SetColumns(cols)
	if err := se.ExpandAll(se.Tree().Root); err != nil {
		t.Fatal(err)
	}
	var eagerOut bytes.Buffer
	if err := se.Render(&eagerOut, render.Options{}); err != nil {
		t.Fatal(err)
	}
	if lazyOut.String() != eagerOut.String() {
		t.Fatalf("lazy render differs from eager render:\n--- lazy ---\n%s--- eager ---\n%s", lazyOut.String(), eagerOut.String())
	}
}

// TestReplLazyDrivesFaulting runs a scripted REPL session against a lazy
// database: the default render shows every column (faulting the overrides
// in), but a session restricted to raw columns never touches them.
func TestReplLazyDrivesFaulting(t *testing.T) {
	e := mergedFixture(t)
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := expdb.OpenLazy(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSession(db.Experiment().Tree, nil)
	s.SetColumnFaulter(db.NeedColumn)
	for _, line := range []string{"cols CYCLES", "ls", "expandall", "sort CYCLES", "hot CYCLES"} {
		if _, err := Exec(s, line, io.Discard); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	if n := db.SectionReads()["overrides"]; n != 0 {
		t.Fatalf("raw-only REPL session decoded overrides %d times", n)
	}
	if _, err := Exec(s, "cols all", io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(s, "ls", io.Discard); err != nil {
		t.Fatal(err)
	}
	if n := db.SectionReads()["overrides"]; n != 1 {
		t.Fatalf("full-column render decoded overrides %d times, want 1", n)
	}
}
