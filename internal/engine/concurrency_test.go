package engine

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/expdb"
)

// commandStreams returns n deterministic interaction scripts covering the
// full engine surface: view switches, expansion, sorting (by raw, summary,
// derived and label), derived-metric registration, hot paths, zoom,
// flattening, column selection, limits and summary stats. Streams repeat
// cyclically, so concurrent sessions include both identical scripts racing
// each other and different scripts interleaving.
func commandStreams(n int) [][]string {
	base := [][]string{
		{"ls", "expand 0", "hot CYCLES", "view callers", "expand 1", "view flat", "flatten", "ls"},
		{"view callers", "expandall", "sort CYCLES:excl", "ls", "view cc", "cols all", "ls"},
		{"derived waste=$0*2", "sort waste", "expandall", "ls", "stats waste"},
		{"sort name", "expandall", "ls", "view flat", "flatten", "flatten", "ls", "unflatten", "ls"},
		{"cols CYCLES", "expand 0", "zoom 0", "ls", "out", "ls", "top 2", "ls", "depth 2", "ls"},
		{"derived ratio=$0/($0+1)", "cols all", "hot ratio", "ls", "view callers", "hot ratio", "ls"},
		{"expandall", "threshold 0.9", "hot CYCLES", "view flat", "hot CYCLES", "ls", "stats CYCLES:excl"},
		{"view callers", "ls", "expand 0", "expand 2", "sort name", "ls", "view cc", "derived d2=$1+$0", "sort d2", "ls", "metrics"},
	}
	out := make([][]string, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out
}

// replay runs one command stream against a session and returns the
// concatenated responses (outputs and error texts — both must match).
func replay(s *Session, stream []string) string {
	var out strings.Builder
	for _, line := range stream {
		resp := s.Do(Request{Line: line})
		out.WriteString(resp.Output)
		if resp.Err != "" {
			fmt.Fprintf(&out, "error: %s\n", resp.Err)
		}
	}
	return out.String()
}

// fixtureBytes serializes the merged multi-rank experiment (its summary
// columns live in the v2 overrides section, so lazy opens exercise
// fault-in).
func fixtureBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := mergedFixture(t).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func lazySnapshot(t *testing.T, data []byte) *Snapshot {
	t.Helper()
	db, err := expdb.OpenLazy(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return NewLazySnapshot(db)
}

// isolatedReplays replays each stream in full isolation: a fresh database
// open, a fresh snapshot, one session — the ground truth a concurrent
// session must be indistinguishable from.
func isolatedReplays(t *testing.T, data []byte, streams [][]string) []string {
	t.Helper()
	want := make([]string, len(streams))
	for i, stream := range streams {
		s := NewSession(lazySnapshot(t, data))
		want[i] = replay(s, stream)
		s.Close()
	}
	return want
}

// TestConcurrentSessionEquivalence is the engine's core guarantee, and the
// PR's acceptance gate: 32 sessions hammering ONE shared snapshot
// concurrently — mixed view switches, sorts, session-private derived
// formulas, hot paths, lazy column fault-in — each produce renders
// byte-identical to the same command stream replayed in isolation (its own
// database open, its own snapshot, no sharing). Run under -race this also
// serves as the shared-state hazard hammer: any unsynchronized mutation of
// the shared tree, store, registry or lazy database is a detector hit.
func TestConcurrentSessionEquivalence(t *testing.T) {
	data := fixtureBytes(t)
	const sessions = 32
	streams := commandStreams(sessions)
	want := isolatedReplays(t, data, streams)

	// Sanity: the scripts render real tables, not just error chatter.
	for i, w := range want {
		if !strings.Contains(w, "scope") {
			t.Fatalf("stream %d produced no render:\n%s", i, w)
		}
	}

	shared := lazySnapshot(t, data)
	got := make([]string, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := NewSession(shared)
			defer s.Close()
			got[i] = replay(s, streams[i])
		}(i)
	}
	wg.Wait()

	for i := range got {
		if got[i] != want[i] {
			t.Errorf("session %d diverged from isolated replay\n--- shared ---\n%s\n--- isolated ---\n%s",
				i, got[i], want[i])
		}
	}
}

// TestConcurrentSessionsRepeatedRounds re-runs sessions over an
// already-warm snapshot (every lazy column faulted, generation settled):
// later joiners must see exactly what the first wave saw.
func TestConcurrentSessionsRepeatedRounds(t *testing.T) {
	data := fixtureBytes(t)
	const sessions = 8
	streams := commandStreams(sessions)
	want := isolatedReplays(t, data, streams)

	shared := lazySnapshot(t, data)
	for round := 0; round < 3; round++ {
		got := make([]string, sessions)
		var wg sync.WaitGroup
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s := NewSession(shared)
				defer s.Close()
				got[i] = replay(s, streams[i])
			}(i)
		}
		wg.Wait()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d session %d diverged from isolated replay", round, i)
			}
		}
	}
}

// TestClosedSessionDoesNotPoisonSnapshot cancels a session around
// in-flight bulk expansion and checks the shared snapshot still serves
// fresh sessions bit-for-bit correctly — cancellation must only ever be a
// session-local event.
func TestClosedSessionDoesNotPoisonSnapshot(t *testing.T) {
	data := fixtureBytes(t)
	shared := lazySnapshot(t, data)

	// Ground truth from a private snapshot.
	clean := NewSession(lazySnapshot(t, data))
	defer clean.Close()
	want := replay(clean, []string{"view callers", "expandall", "sort CYCLES", "ls"})

	// A session cancelled before bulk expansion: ExpandAllCtx observes the
	// dead context and stops early.
	victim := NewSession(shared)
	victim.SwitchView(ViewCallers)
	victim.VisibleRows()
	victim.Close()
	if err := victim.ExpandAll(victim.Tree().Root); err == nil {
		t.Fatal("cancelled session expanded everything anyway")
	}

	// Sessions racing their own cancellation, for the race detector's
	// benefit (Close is documented safe from another goroutine).
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewSession(shared)
			s.SetJobs(4)
			s.SwitchView(ViewCallers)
			done := make(chan struct{})
			go func() { s.Close(); close(done) }()
			_ = s.ExpandAll(s.Tree().Root)
			<-done
		}()
	}
	wg.Wait()

	// The snapshot is unharmed: a fresh session over it matches the
	// private-snapshot ground truth exactly.
	after := NewSession(shared)
	defer after.Close()
	if got := replay(after, []string{"view callers", "expandall", "sort CYCLES", "ls"}); got != want {
		t.Fatalf("snapshot poisoned by cancelled sessions\n--- shared after cancel ---\n%s\n--- clean ---\n%s", got, want)
	}
}

// TestSessionDerivedIsolation: two sessions over one snapshot register
// different formulas under the same column name; neither observes the
// other's values, and the shared registry never grows.
func TestSessionDerivedIsolation(t *testing.T) {
	data := fixtureBytes(t)
	shared := lazySnapshot(t, data)
	baseLen := shared.Tree().Reg.Len()

	a := NewSession(shared)
	b := NewSession(shared)
	defer a.Close()
	defer b.Close()
	if err := a.AddDerivedMetric("x", "$0 * 2"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDerivedMetric("x", "$0 * 10"); err != nil {
		t.Fatal(err)
	}
	da, db := a.Registry().ByName("x"), b.Registry().ByName("x")
	if da.ID != db.ID {
		t.Fatalf("same formula slot got different IDs: %d vs %d", da.ID, db.ID)
	}
	root := shared.Tree().Root
	va := a.cellValue(root, da.ID, true)
	vb := b.cellValue(root, db.ID, true)
	if va == 0 || vb != 5*va {
		t.Fatalf("overlay isolation broken: a=%g b=%g", va, vb)
	}
	if shared.Tree().Reg.Len() != baseLen {
		t.Fatalf("shared registry grew from %d to %d", baseLen, shared.Tree().Reg.Len())
	}
	if got := root.Incl.Get(da.ID); got != 0 {
		t.Fatalf("derived values leaked into the shared store: %g", got)
	}
}
