package engine

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/render"
)

// The command surface maps hpcviewer's toolbar onto line commands; Exec
// interprets one command against a session. It is the shared grammar of
// every frontend: `hpcviewer -interactive` feeds it stdin lines, hpcserver
// feeds it HTTP request bodies — the engine responds identically.

// Help describes the commands.
const Help = `commands:
  ls                      render the current view (rows are numbered)
  view cc|callers|flat    switch view
  expand N / collapse N   open or close row N
  expandall [N]           open everything under row N (or the whole view)
  select N                select row N (hot paths and src start here)
  hot METRIC              hot-path analysis; expands and highlights
  sort METRIC[:excl]      sort by a metric column; sort name = A-to-Z
  cols M1,M2[:excl]/all   choose metric pane columns
  threshold T             hot-path threshold in (0,1]
  zoom N / out            restrict the CC view to row N / undo
  flatten / unflatten     elide or restore the flat view's top level
  derived NAME=FORMULA    add a derived metric ($n column references)
  stats METRIC[:excl]     summary statistics over the visible rows
  src [N]                 show source around row N (or the selection)
  plot METRIC [bins]      per-rank scatter/sorted/histogram at the selection
  trace [W [H]] [T0 T1]   time×rank trace view (depth-colored cells; needs
                          a v3 database merged with hpcprof -traces)
  metrics                 list metric columns
  catalog                 list databases available to diff against
  diff NAME [METRIC] [MODE]  diff against catalog entry NAME (mode:
                          auto|none|weak|strong); rebases onto the union
  back                    leave the diff, restore the original database
  top N / depth N         limit children per scope / tree depth
  help                    this text
  quit                    leave`

// Exec runs one command line. It returns true when the session should
// end. Errors are user errors (bad command, bad row) and do not terminate
// the session.
func Exec(s *Session, line string, out io.Writer) (quit bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false, nil
	}
	cmd, args := fields[0], fields[1:]

	rowArg := func() (*core.Node, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("%s takes a row number", cmd)
		}
		idx, err := strconv.Atoi(args[0])
		if err != nil {
			return nil, fmt.Errorf("bad row %q", args[0])
		}
		return s.RowNode(idx)
	}
	// Metric names resolve against the session registry, so commands can
	// address this session's derived columns too.
	metricArg := func(spec string) (*core.SortSpec, error) {
		name, excl := strings.CutSuffix(spec, ":excl")
		d := s.Registry().ByName(name)
		if d == nil {
			return nil, fmt.Errorf("unknown metric %q", name)
		}
		return &core.SortSpec{MetricID: d.ID, Exclusive: excl}, nil
	}
	renderNow := func() error {
		return s.Render(out, render.Options{})
	}

	switch cmd {
	case "quit", "exit", "q":
		return true, nil
	case "help", "?":
		fmt.Fprintln(out, Help)
		return false, nil
	case "ls":
		return false, renderNow()
	case "view":
		if len(args) != 1 {
			return false, fmt.Errorf("view takes cc, callers or flat")
		}
		switch args[0] {
		case "cc":
			s.SwitchView(ViewCC)
		case "callers":
			s.SwitchView(ViewCallers)
		case "flat":
			s.SwitchView(ViewFlat)
		default:
			return false, fmt.Errorf("unknown view %q", args[0])
		}
		return false, renderNow()
	case "expand":
		n, err := rowArg()
		if err != nil {
			return false, err
		}
		s.Expand(n)
		return false, renderNow()
	case "collapse":
		n, err := rowArg()
		if err != nil {
			return false, err
		}
		s.Collapse(n)
		return false, renderNow()
	case "expandall":
		if len(args) == 0 {
			for _, r := range s.VisibleRows() {
				if err := s.ExpandAll(r.Node); err != nil {
					return false, err
				}
			}
		} else {
			n, err := rowArg()
			if err != nil {
				return false, err
			}
			if err := s.ExpandAll(n); err != nil {
				return false, err
			}
		}
		return false, renderNow()
	case "select":
		n, err := rowArg()
		if err != nil {
			return false, err
		}
		s.Select(n)
		fmt.Fprintf(out, "selected %s\n", n.Label())
		return false, nil
	case "hot":
		if len(args) != 1 {
			return false, fmt.Errorf("hot takes a metric name")
		}
		spec, err := metricArg(args[0])
		if err != nil {
			return false, err
		}
		path := s.HotPath(spec.MetricID)
		if len(path) == 0 {
			fmt.Fprintln(out, "no hot path")
			return false, nil
		}
		fmt.Fprintf(out, "hot path ends at %s\n", path[len(path)-1].Label())
		return false, renderNow()
	case "sort":
		if len(args) != 1 {
			return false, fmt.Errorf("sort takes METRIC, METRIC:excl or name")
		}
		if args[0] == "name" {
			s.SetSort(core.SortSpec{ByLabel: true})
			return false, renderNow()
		}
		spec, err := metricArg(args[0])
		if err != nil {
			return false, err
		}
		s.SetSort(*spec)
		return false, renderNow()
	case "cols":
		if len(args) != 1 {
			return false, fmt.Errorf("cols takes METRIC[,METRIC...] or all")
		}
		if args[0] == "all" {
			s.SetColumns(nil)
			return false, renderNow()
		}
		var cols []render.Column
		for _, part := range strings.Split(args[0], ",") {
			name, excl := strings.CutSuffix(part, ":excl")
			d := s.Registry().ByName(name)
			if d == nil {
				return false, fmt.Errorf("unknown metric %q", name)
			}
			cols = append(cols, render.Column{MetricID: d.ID, Inclusive: !excl})
		}
		s.SetColumns(cols)
		return false, renderNow()
	case "threshold":
		if len(args) != 1 {
			return false, fmt.Errorf("threshold takes a number in (0,1]")
		}
		t, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return false, fmt.Errorf("bad threshold %q", args[0])
		}
		s.SetThreshold(t)
		return false, nil
	case "zoom":
		n, err := rowArg()
		if err != nil {
			return false, err
		}
		if err := s.ZoomIn(n); err != nil {
			return false, err
		}
		return false, renderNow()
	case "out":
		s.ZoomOut()
		return false, renderNow()
	case "flatten":
		if err := s.FlattenOnce(); err != nil {
			return false, err
		}
		return false, renderNow()
	case "unflatten":
		s.Unflatten()
		return false, renderNow()
	case "derived":
		if len(args) == 0 {
			return false, fmt.Errorf("derived takes NAME=FORMULA")
		}
		// Formulas may contain spaces; rejoin.
		def := strings.Join(args, " ")
		kv := strings.SplitN(def, "=", 2)
		if len(kv) != 2 {
			return false, fmt.Errorf("derived takes NAME=FORMULA")
		}
		if err := s.AddDerivedMetric(strings.TrimSpace(kv[0]), kv[1]); err != nil {
			return false, err
		}
		fmt.Fprintf(out, "added %s\n", strings.TrimSpace(kv[0]))
		return false, nil
	case "stats":
		if len(args) != 1 {
			return false, fmt.Errorf("stats takes METRIC[:excl]")
		}
		spec, err := metricArg(args[0])
		if err != nil {
			return false, err
		}
		st := s.SummaryStats(spec.MetricID, !spec.Exclusive)
		fmt.Fprintf(out, "n=%d sum=%s mean=%s min=%s max=%s stddev=%s imbalance=%.3f\n",
			st.N, statCell(st.Sum), statCell(st.Mean()), statCell(st.Min),
			statCell(st.Max), statCell(st.StdDev()), st.ImbalanceFactor())
		return false, nil
	case "plot":
		if len(args) < 1 || len(args) > 2 {
			return false, fmt.Errorf("plot takes METRIC [bins]")
		}
		bins := 10
		if len(args) == 2 {
			n, err := strconv.Atoi(args[1])
			if err != nil || n <= 0 {
				return false, fmt.Errorf("bad bin count %q", args[1])
			}
			bins = n
		}
		return false, s.Plot(out, args[0], bins)
	case "trace":
		w, h := 64, 0
		var t0, t1 uint64
		if len(args) != 0 && len(args) != 1 && len(args) != 2 && len(args) != 4 {
			return false, fmt.Errorf("trace takes [W [H]] [T0 T1]")
		}
		if len(args) >= 1 {
			n, err := strconv.Atoi(args[0])
			if err != nil || n <= 0 {
				return false, fmt.Errorf("bad width %q", args[0])
			}
			w = n
		}
		if len(args) >= 2 {
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 0 {
				return false, fmt.Errorf("bad height %q", args[1])
			}
			h = n
		}
		if len(args) == 4 {
			a, err1 := strconv.ParseUint(args[2], 10, 64)
			b, err2 := strconv.ParseUint(args[3], 10, 64)
			if err1 != nil || err2 != nil {
				return false, fmt.Errorf("bad time window %q %q", args[2], args[3])
			}
			t0, t1 = a, b
		}
		return false, s.RenderTrace(out, t0, t1, w, h)
	case "src":
		if len(args) == 1 {
			n, err := rowArg()
			if err != nil {
				return false, err
			}
			s.Select(n)
		}
		return false, s.ShowSource(out, 4)
	case "metrics":
		for _, d := range s.Registry().Columns() {
			fmt.Fprintf(out, "%3d  %-26s %-8s %s\n", d.ID, d.Name, d.Kind, d.Formula)
		}
		return false, nil
	case "catalog":
		c := s.Catalog()
		if c == nil {
			return false, fmt.Errorf("no catalog attached")
		}
		names := c.SnapshotNames()
		if len(names) == 0 {
			fmt.Fprintln(out, "(catalog is empty)")
			return false, nil
		}
		for _, name := range names {
			fmt.Fprintln(out, name)
		}
		return false, nil
	case "diff", "compare":
		if len(args) < 1 || len(args) > 3 {
			return false, fmt.Errorf("diff takes NAME [METRIC] [MODE]")
		}
		cfg := diff.Config{Jobs: s.jobs}
		if len(args) >= 2 {
			cfg.Metrics = []string{args[1]}
		}
		if len(args) == 3 {
			mode, err := diff.ParseMode(args[2])
			if err != nil {
				return false, err
			}
			cfg.Mode = mode
		}
		res, err := s.Compare(args[0], cfg)
		if err != nil {
			return false, err
		}
		fmt.Fprintf(out, "diff: %s (%d ranks) vs %s %q (%d ranks), mode %s\n",
			res.Inputs[0].Label, res.Inputs[0].Ranks,
			res.Inputs[1].Label, args[0], res.Inputs[1].Ranks, res.Mode)
		for _, note := range res.Exp.Notes {
			fmt.Fprintf(out, "note: %s\n", note)
		}
		return false, renderNow()
	case "back":
		if err := s.Back(); err != nil {
			return false, err
		}
		return false, renderNow()
	case "top":
		if len(args) != 1 {
			return false, fmt.Errorf("top takes a number")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return false, fmt.Errorf("bad count %q", args[0])
		}
		s.SetLimits(n, s.maxDepth)
		return false, renderNow()
	case "depth":
		if len(args) != 1 {
			return false, fmt.Errorf("depth takes a number")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return false, fmt.Errorf("bad depth %q", args[0])
		}
		s.SetLimits(s.topN, n)
		return false, renderNow()
	}
	return false, fmt.Errorf("unknown command %q (try help)", cmd)
}

// statCell formats a statistic like a metric cell, with "0" instead of the
// table renderer's blank (a stats line has no column alignment to keep).
func statCell(v float64) string {
	if v == 0 {
		return "0"
	}
	return render.FormatValue(v)
}

// Request is one command submitted to a session through the
// request/response surface.
type Request struct {
	// Line is a command in the Exec grammar (see Help).
	Line string
}

// Response is the engine's answer to one Request.
type Response struct {
	// Output is the rendered text (tables, messages).
	Output string
	// Err is the user-level error text ("" if none).
	Err string
	// Quit reports that the command ended the session.
	Quit bool
}

// Do executes one request against the session and captures the response —
// the transport-independent form of Exec that hpcserver exposes over
// HTTP/JSON.
func (s *Session) Do(req Request) Response {
	var out strings.Builder
	quit, err := Exec(s, req.Line, &out)
	resp := Response{Output: out.String(), Quit: quit}
	if err != nil {
		resp.Err = err.Error()
	}
	return resp
}
