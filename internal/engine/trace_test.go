package engine

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// tracedDBPath writes a v3 database with trace sections for the toy
// workload (deterministic: fixed program, seed and periods).
func tracedDBPath(t *testing.T, nranks int) string {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{
		NRanks: nranks,
		Events: sampler.DefaultEvents(spec.Period),
		Trace:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	e := expdb.FromMerge(res)
	if err := expdb.TraceRanksFromProfiles(e, doc, profs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "traced.db")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteBinaryV3(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGoldenTrace locks the trace command's rendered canvas against a
// golden file. Regenerate deliberately with
// `go test ./internal/engine -run TestGoldenTrace -update`.
func TestGoldenTrace(t *testing.T) {
	sn, err := Open(tracedDBPath(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	s := NewSession(sn)
	defer s.Close()

	resp := s.Do(Request{Line: "trace 64 3"})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	got := resp.Output

	path := filepath.Join("testdata", "golden_trace.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestTraceWithoutData: the command degrades to a user error on databases
// without trace sections.
func TestTraceWithoutData(t *testing.T) {
	s := NewSession(NewSnapshot(mergedFixture(t)))
	defer s.Close()
	resp := s.Do(Request{Line: "trace"})
	if resp.Err == "" || !strings.Contains(resp.Err, "no trace data") {
		t.Fatalf("want a no-trace-data error, got %q / %q", resp.Err, resp.Output)
	}
}

// TestConcurrentTraceRenderEquivalence: 8 sessions over ONE shared mapped
// snapshot render trace views concurrently (interleaved with metric
// queries that trigger lazy fault-in); each transcript must be
// byte-identical to the same stream replayed in isolation. Under -race
// this doubles as the shared-mapping hazard hammer for the trace path.
func TestConcurrentTraceRenderEquivalence(t *testing.T) {
	path := tracedDBPath(t, 4)
	streams := make([][]string, 8)
	for i := range streams {
		w := 16 + 8*i
		streams[i] = []string{
			"trace",
			"expandall",
			"trace " + itoa(w) + " 4",
			"trace " + itoa(w) + " 2 0 2000",
			"sort CYCLES",
			"trace 32",
		}
	}

	// Ground truth: isolated replays, each with its own mapping.
	want := make([]string, len(streams))
	for i, stream := range streams {
		sn, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSession(sn)
		want[i] = replay(s, stream)
		s.Close()
		sn.Close()
	}
	for i, w := range want {
		if !strings.Contains(w, "rank ") {
			t.Fatalf("stream %d rendered no trace rows:\n%s", i, w)
		}
	}

	shared, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(streams))
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := NewSession(shared)
			got[i] = replay(s, streams[i])
			s.Close()
		}(i)
	}
	wg.Wait()
	if err := shared.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range streams {
		if got[i] != want[i] {
			t.Fatalf("session %d diverged from isolated replay:\n--- got ---\n%s\n--- want ---\n%s",
				i, got[i], want[i])
		}
	}
}
