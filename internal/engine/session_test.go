package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/prog"
	"repro/internal/render"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// newTestSession seals a tree as a snapshot and opens one session over it
// — the single-user shape the viewer package used to construct directly.
func newTestSession(tr *core.Tree, src *prog.Program) *Session {
	s := NewSession(NewTreeSnapshot(tr))
	s.SetSource(src)
	return s
}

func session(t *testing.T) *Session {
	t.Helper()
	return newTestSession(core.Fig1Tree(), nil)
}

func rowLabels(rows []render.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Node.Label()
	}
	return out
}

func TestTopDownAccess(t *testing.T) {
	s := session(t)
	rows := s.VisibleRows()
	// Only the entry frame is visible before any expansion: the paper's
	// "forces the user to approach performance data in a top-down
	// fashion".
	if len(rows) != 1 || rows[0].Node.Label() != "m" {
		t.Fatalf("initial rows = %v", rowLabels(rows))
	}
	if !rows[0].HasHidden {
		t.Fatal("collapsed root not marked expandable")
	}
}

func TestExpandCollapse(t *testing.T) {
	s := session(t)
	rows := s.VisibleRows()
	m := rows[0].Node
	s.Expand(m)
	rows = s.VisibleRows()
	// m + its two children (f sorted before g by inclusive cost).
	want := []string{"m", "f", "g"}
	got := rowLabels(rows)
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("rows after expand = %v, want %v", got, want)
	}
	s.Collapse(m)
	if n := len(s.VisibleRows()); n != 1 {
		t.Fatalf("rows after collapse = %d", n)
	}
}

func TestHotPathExpandsAndSelects(t *testing.T) {
	s := session(t)
	path := s.HotPath(0)
	if len(path) == 0 {
		t.Fatal("no hot path")
	}
	end := path[len(path)-1]
	if s.Selected() != end {
		t.Fatal("hot path endpoint not selected")
	}
	// Every scope along the path is now visible.
	rows := s.VisibleRows()
	visible := map[*core.Node]bool{}
	for _, r := range rows {
		visible[r.Node] = true
	}
	for _, n := range path {
		if n.Kind == core.KindRoot {
			continue
		}
		if !visible[n] {
			t.Fatalf("hot path scope %q not visible", n.Label())
		}
	}
	// Scopes off the path stay collapsed: g3 (m's other child) is
	// visible but its statement child is not.
	if visible[end] && len(rows) > len(path)+3 {
		t.Fatalf("too many rows after hot path: %v", rowLabels(rows))
	}
}

func TestThresholdAffectsHotPath(t *testing.T) {
	s := session(t)
	s.SetThreshold(0.8)
	p80 := s.HotPath(0)
	// A hot path selects its endpoint; start over from the top for a
	// fair comparison.
	s.Select(nil)
	s.SetThreshold(0.5)
	p50 := s.HotPath(0)
	if len(p80) >= len(p50) {
		t.Fatalf("t=0.8 path (%d) should be shorter than t=0.5 (%d)", len(p80), len(p50))
	}
	// Out-of-range threshold restores the default.
	s.Select(nil)
	s.SetThreshold(-1)
	if len(s.HotPath(0)) != len(p50) {
		t.Fatal("default threshold not restored")
	}
}

func TestZoom(t *testing.T) {
	s := session(t)
	s.Expand(s.VisibleRows()[0].Node) // expand m
	rows := s.VisibleRows()
	var f *core.Node
	for _, r := range rows {
		if r.Node.Label() == "f" {
			f = r.Node
		}
	}
	if err := s.ZoomIn(f); err != nil {
		t.Fatal(err)
	}
	got := rowLabels(s.VisibleRows())
	// f's children: g1 and f's own statement.
	if len(got) != 2 {
		t.Fatalf("zoomed rows = %v", got)
	}
	s.ZoomOut()
	if rowLabels(s.VisibleRows())[0] != "m" {
		t.Fatal("zoom out failed")
	}
	// Zoom only applies to the CC view.
	s.SwitchView(ViewFlat)
	if err := s.ZoomIn(f); err == nil {
		t.Fatal("zoom allowed in flat view")
	}
}

func TestCallersViewLazyExpansion(t *testing.T) {
	s := session(t)
	s.SwitchView(ViewCallers)
	rows := s.VisibleRows()
	if len(rows) != 4 {
		t.Fatalf("callers roots = %v", rowLabels(rows))
	}
	// Roots are marked expandable even though children are not yet
	// materialized.
	var g *core.Node
	for _, r := range rows {
		if r.Node.Name.String() == "g" {
			if !r.HasHidden {
				t.Fatal("unexpanded callers root lacks expander")
			}
			g = r.Node
		}
	}
	s.Expand(g)
	rows = s.VisibleRows()
	labels := strings.Join(rowLabels(rows), ",")
	if !strings.Contains(labels, "g,g") && !strings.Contains(labels, "g,f") && !strings.Contains(labels, "g,m") {
		t.Fatalf("caller chain not materialized: %v", rowLabels(rows))
	}
}

func TestFlattenInFlatView(t *testing.T) {
	s := session(t)
	if err := s.FlattenOnce(); err == nil {
		t.Fatal("flatten allowed outside flat view")
	}
	s.SwitchView(ViewFlat)
	if len(s.VisibleRows()) != 1 { // one load module
		t.Fatalf("flat roots = %v", rowLabels(s.VisibleRows()))
	}
	if err := s.FlattenOnce(); err != nil {
		t.Fatal(err)
	}
	if got := rowLabels(s.VisibleRows()); len(got) != 2 {
		t.Fatalf("after flatten = %v", got)
	}
	if err := s.FlattenOnce(); err != nil {
		t.Fatal(err)
	}
	if got := rowLabels(s.VisibleRows()); len(got) != 4 { // 4 procedures
		t.Fatalf("after flatten x2 = %v", got)
	}
	if s.FlattenLevel() != 2 {
		t.Fatalf("level = %d", s.FlattenLevel())
	}
	s.Unflatten()
	if got := rowLabels(s.VisibleRows()); len(got) != 2 {
		t.Fatalf("after unflatten = %v", got)
	}
}

func TestSwitchViewResetsState(t *testing.T) {
	s := session(t)
	s.HotPath(0)
	s.SwitchView(ViewFlat)
	if len(s.VisibleRows()) != 1 {
		t.Fatal("expansion leaked across views")
	}
	if s.Selected() != nil {
		t.Fatal("selection leaked across views")
	}
}

func TestRowAddressing(t *testing.T) {
	s := session(t)
	s.ExpandAll(s.Tree().Root)
	rows := s.VisibleRows()
	for i := range rows {
		n, err := s.RowNode(i)
		if err != nil || n != rows[i].Node {
			t.Fatalf("RowNode(%d) mismatch", i)
		}
	}
	if _, err := s.RowNode(len(rows)); err == nil {
		t.Fatal("out-of-range row resolved")
	}
	if _, err := s.RowNode(-1); err == nil {
		t.Fatal("negative row resolved")
	}
}

func TestSessionRenderNumbersAndHighlight(t *testing.T) {
	s := session(t)
	s.HotPath(0)
	var b strings.Builder
	if err := s.Render(&b, render.Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "  0 *") {
		t.Fatalf("row numbering/highlight missing:\n%s", out)
	}
	if !strings.Contains(out, "cost (I)") {
		t.Fatalf("metric header missing:\n%s", out)
	}
}

func TestSourcePane(t *testing.T) {
	spec := workloads.Toy()
	tree := core.Fig1Tree()
	s := newTestSession(tree, spec.Program)

	// Select h (a frame): the source pane shows its call site.
	h := tree.FindPath("m", "f", "g", "g", "h")
	s.Select(h)
	var b strings.Builder
	if err := s.ShowSource(&b, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "file2.c:4") {
		t.Fatalf("source header wrong:\n%s", out)
	}
	if !strings.Contains(out, ">    4 |") {
		t.Fatalf("call line not marked:\n%s", out)
	}

	// Errors: nothing selected / no source program.
	s2 := newTestSession(tree, spec.Program)
	if err := s2.ShowSource(&b, 2); err == nil {
		t.Fatal("no selection accepted")
	}
	s3 := newTestSession(tree, nil)
	s3.Select(h)
	if err := s3.ShowSource(&b, 2); err == nil {
		t.Fatal("missing source program accepted")
	}
}

func TestViewKindString(t *testing.T) {
	if ViewCC.String() == "" || ViewCallers.String() == "" || ViewFlat.String() == "" {
		t.Fatal("empty view names")
	}
	if !strings.Contains(ViewKind(9).String(), "9") {
		t.Fatal("unknown view name")
	}
}

func TestSortAffectsRowOrder(t *testing.T) {
	s := session(t)
	s.Expand(s.VisibleRows()[0].Node)
	s.SetSort(core.SortSpec{MetricID: 0, Exclusive: true})
	got := rowLabels(s.VisibleRows())
	// Exclusive sort puts g3 (excl 3) before f (excl 1).
	if got[1] != "g" {
		t.Fatalf("exclusive sort order = %v", got)
	}
}

func TestPlotPerRank(t *testing.T) {
	// Build a small multi-rank run, merge it, and plot a scope.
	spec := workloads.PFLOTRAN()
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: 4, Params: spec.Params,
		Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSession(res.Tree, spec.Program)
	s.AttachProfiles(doc, profs)

	// Plot requires a selection in the CC view.
	var b strings.Builder
	if err := s.Plot(&b, "CYCLES", 5); err == nil {
		t.Fatal("plot without selection accepted")
	}
	fs := res.Tree.FindPath("main", "stepper_run", "loop at timestepper.F90: 384", "flow_solve")
	if fs == nil {
		t.Fatal("flow_solve missing")
	}
	s.Select(fs)
	if err := s.Plot(&b, "CYCLES", 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"per-rank (scatter):", "histogram:", "flow_solve"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// Via the REPL.
	b.Reset()
	if _, err := Exec(s, "plot CYCLES 4", &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "imbalance=") {
		t.Fatalf("repl plot output:\n%s", b.String())
	}
	if _, err := Exec(s, "plot CYCLES zz", &b); err == nil {
		t.Fatal("bad bins accepted")
	}
	// No profiles attached.
	s2 := newTestSession(res.Tree, nil)
	s2.Select(fs)
	if err := s2.Plot(&b, "CYCLES", 5); err == nil {
		t.Fatal("plot without profiles accepted")
	}
	// Plot outside the CC view.
	s.SwitchView(ViewFlat)
	s.Select(fs)
	if err := s.Plot(&b, "CYCLES", 5); err == nil {
		t.Fatal("plot in flat view accepted")
	}
}

func TestHotPathInDerivedViews(t *testing.T) {
	s := session(t)
	// Callers view: no selection -> starts from the hottest root (m,
	// inclusive 10) and ends there (lazy children get expanded but m has
	// no callers).
	s.SwitchView(ViewCallers)
	path := s.HotPath(0)
	if len(path) == 0 || path[0].Name.String() != "m" {
		t.Fatalf("callers hot path = %v", rowLabels(s.VisibleRows()))
	}
	// Flat view: starts from the only module and descends.
	s.SwitchView(ViewFlat)
	path = s.HotPath(0)
	if len(path) < 2 {
		t.Fatalf("flat hot path too short: %d", len(path))
	}
	if path[0].Kind != core.KindLM {
		t.Fatalf("flat hot path starts at %v", path[0].Kind)
	}
}

func TestExpandAllInCallersView(t *testing.T) {
	s := session(t)
	s.SwitchView(ViewCallers)
	rows := s.VisibleRows()
	// ExpandAll on the recursive procedure's root materializes and shows
	// its whole caller trie (ga's 6 descendants in Figure 2b).
	var g *core.Node
	for _, r := range rows {
		if r.Node.Name.String() == "g" {
			g = r.Node
		}
	}
	s.ExpandAll(g)
	n := len(s.VisibleRows())
	if n != len(rows)+6 {
		t.Fatalf("rows after ExpandAll(g) = %d, want %d", n, len(rows)+6)
	}
}
