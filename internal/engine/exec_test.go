package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// execOK runs a script of commands, failing the test on any error.
func execOK(t *testing.T, s *Session, lines ...string) string {
	t.Helper()
	var out strings.Builder
	for _, line := range lines {
		quit, err := Exec(s, line, &out)
		if err != nil {
			t.Fatalf("command %q: %v", line, err)
		}
		if quit {
			t.Fatalf("command %q quit unexpectedly", line)
		}
	}
	return out.String()
}

func TestReplBasicScript(t *testing.T) {
	s := newTestSession(core.Fig1Tree(), workloads.Toy().Program)
	out := execOK(t, s,
		"ls",
		"expand 0",
		"hot cost",
		"metrics",
	)
	if !strings.Contains(out, "m") || !strings.Contains(out, "hot path ends at") {
		t.Fatalf("script output:\n%s", out)
	}
	if !strings.Contains(out, "cost") {
		t.Fatalf("metrics listing missing:\n%s", out)
	}
}

func TestReplQuitAndHelp(t *testing.T) {
	s := newTestSession(core.Fig1Tree(), nil)
	var out strings.Builder
	quit, err := Exec(s, "help", &out)
	if err != nil || quit {
		t.Fatal("help failed")
	}
	if !strings.Contains(out.String(), "commands:") {
		t.Fatal("help text missing")
	}
	quit, err = Exec(s, "quit", &out)
	if err != nil || !quit {
		t.Fatal("quit did not quit")
	}
	quit, err = Exec(s, "", &out)
	if err != nil || quit {
		t.Fatal("blank line misbehaved")
	}
}

func TestReplViewSwitchAndFlatten(t *testing.T) {
	s := newTestSession(core.Fig1Tree(), nil)
	out := execOK(t, s,
		"view flat",
		"flatten",
		"flatten",
		"ls",
		"unflatten",
	)
	if !strings.Contains(out, "h") {
		t.Fatalf("flattened view missing procs:\n%s", out)
	}
	if s.FlattenLevel() != 1 {
		t.Fatalf("flatten level = %d", s.FlattenLevel())
	}
}

func TestReplCallersExpand(t *testing.T) {
	s := newTestSession(core.Fig1Tree(), nil)
	execOK(t, s, "view callers", "ls")
	// Row order: sorted by inclusive cost: m (10), g (9), f (7), h (4).
	out := execOK(t, s, "expand 1")
	if !strings.Contains(out, "g") {
		t.Fatalf("callers expansion output:\n%s", out)
	}
}

func TestReplSortZoomSelectSrc(t *testing.T) {
	s := newTestSession(core.Fig1Tree(), workloads.Toy().Program)
	execOK(t, s, "expand 0", "sort cost:excl")
	out := execOK(t, s, "select 1")
	if !strings.Contains(out, "selected") {
		t.Fatalf("select output: %s", out)
	}
	out = execOK(t, s, "zoom 0", "out")
	_ = out
	// Source for a frame row: select g1 and show its call site.
	execOK(t, s, "expand 0")
	rows := s.VisibleRows()
	var idx int = -1
	for i, r := range rows {
		if r.Node.Label() == "f" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("f not visible: %v", rowLabels(rows))
	}
	srcOut := execOK(t, s, "src "+itoa(idx))
	if !strings.Contains(srcOut, "file1.c:7") {
		t.Fatalf("source pane wrong:\n%s", srcOut)
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

func TestReplDerived(t *testing.T) {
	s := newTestSession(core.Fig1Tree(), nil)
	out := execOK(t, s, "derived double = $0 * 2", "metrics")
	if !strings.Contains(out, "double") {
		t.Fatalf("derived column missing:\n%s", out)
	}
	d := s.Registry().ByName("double")
	if d == nil {
		t.Fatal("derived not registered")
	}
	// The column lives in the session overlay, never in the shared store.
	if got := s.cellValue(s.Tree().Root, d.ID, true); got != 20 {
		t.Fatalf("derived value = %g, want 20", got)
	}
	if got := s.Tree().Root.Incl.Get(d.ID); got != 0 {
		t.Fatalf("derived column leaked into the shared store: %g", got)
	}
}

func TestReplTopDepthLimits(t *testing.T) {
	s := newTestSession(core.Fig1Tree(), nil)
	execOK(t, s, "expandall", "depth 2")
	rows := s.VisibleRows()
	for _, r := range rows {
		if r.Depth >= 2 {
			t.Fatalf("depth limit ignored: %v at depth %d", r.Node.Label(), r.Depth)
		}
	}
	execOK(t, s, "top 1")
	rows = s.VisibleRows()
	// m has two children; only one shows.
	if len(rows) != 2 {
		t.Fatalf("top limit ignored: %v", rowLabels(rows))
	}
}

func TestReplSortByName(t *testing.T) {
	s := newTestSession(core.Fig1Tree(), nil)
	execOK(t, s, "expand 0", "sort name")
	got := rowLabels(s.VisibleRows())
	// A->Z at each level: f before g under m.
	if got[1] != "f" || got[2] != "g" {
		t.Fatalf("name sort = %v", got)
	}
}

func TestReplCols(t *testing.T) {
	s := newTestSession(core.Fig1Tree(), nil)
	out := execOK(t, s, "cols cost")
	if strings.Contains(out, "cost (E)") {
		t.Fatalf("exclusive column still shown:\n%s", out)
	}
	if !strings.Contains(out, "cost (I)") {
		t.Fatalf("inclusive column missing:\n%s", out)
	}
	out = execOK(t, s, "cols cost:excl")
	if !strings.Contains(out, "cost (E)") || strings.Contains(out, "cost (I)") {
		t.Fatalf("cols :excl wrong:\n%s", out)
	}
	out = execOK(t, s, "cols all")
	if !strings.Contains(out, "cost (I)") || !strings.Contains(out, "cost (E)") {
		t.Fatalf("cols all wrong:\n%s", out)
	}
	var b strings.Builder
	if _, err := Exec(s, "cols NOPE", &b); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestReplErrors(t *testing.T) {
	s := newTestSession(core.Fig1Tree(), nil)
	s.VisibleRows()
	bad := []string{
		"bogus",
		"view martian",
		"expand zz",
		"expand 99",
		"hot NOPE",
		"sort NOPE",
		"threshold x",
		"zoom 99",
		"derived novalue",
		"derived bad=((",
		"top -1",
		"depth x",
		"flatten", // not in flat view
		"src",     // nothing selected
	}
	var out strings.Builder
	for _, line := range bad {
		if _, err := Exec(s, line, &out); err == nil {
			t.Errorf("command %q succeeded, want error", line)
		}
	}
}
