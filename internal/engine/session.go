package engine

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/imbalance"
	"repro/internal/metric"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/render"
	"repro/internal/structfile"
)

// ViewKind selects the active view.
type ViewKind uint8

const (
	// ViewCC is the Calling Context View.
	ViewCC ViewKind = iota
	// ViewCallers is the bottom-up Callers View.
	ViewCallers
	// ViewFlat is the static Flat View.
	ViewFlat
)

func (v ViewKind) String() string {
	switch v {
	case ViewCC:
		return "calling-context"
	case ViewCallers:
		return "callers"
	case ViewFlat:
		return "flat"
	}
	return fmt.Sprintf("ViewKind(%d)", uint8(v))
}

// Session is one user's interactive presentation of a shared snapshot: the
// stateful equivalent of hpcviewer's GUI, driven programmatically, from
// the hpcviewer REPL, or over HTTP by hpcserver.
//
// Concurrency: any number of sessions may run over one Snapshot at the
// same time — session queries hold the snapshot's read lock while touching
// shared scopes and metric slabs, and everything a session mutates (views
// built from the shared tree, expansion/zoom/sort state, memoized orders,
// derived-metric overlays) is private to it. One Session is NOT safe for
// concurrent use by multiple goroutines; each frontend serializes the
// calls of a given session (the HTTP server locks per token).
//
// Every public query method runs in two phases: a fault phase (lazy column
// fault-in, which may take the snapshot's write lock) strictly before a
// query phase under the read lock — never the reverse, so the lock order
// is acyclic.
type Session struct {
	snap *Snapshot
	// reg is the session's column registry: the snapshot's sealed columns
	// (shared descriptors) plus any session-registered derived columns.
	reg *metric.Registry
	// source, when non-nil, backs the source pane.
	source *prog.Program
	// doc and profiles, when attached, back the per-rank plot graphs.
	doc      *structfile.Doc
	profiles []*profile.Profile

	view ViewKind
	// callers and flat are this session's materializations of the derived
	// views; they read the shared tree but live in private arenas/stores.
	callers  *core.CallersView
	flat     *core.FlatView
	expanded map[*core.Node]bool
	sort     core.SortSpec
	// zoom restricts the Calling Context View to one subtree.
	zoom []*core.Node
	// flatten is the Flat View's current flattening level.
	flatten   int
	selected  *core.Node
	highlight map[*core.Node]bool
	threshold float64
	// topN and maxDepth bound the visible rows (0 = unlimited).
	topN     int
	maxDepth int
	// columns selects the metric pane's columns (nil = all).
	columns []render.Column
	// rows caches the last computed visible rows (for addressing).
	rows []render.Row

	// cache memoizes sorted sibling orders and hot paths across renders;
	// see cache.go for the invalidation discipline.
	cache *queryCache
	// overlay holds materialized session-derived columns; see overlay.go.
	overlay map[*metric.Store]*overlayCols
	// requested tracks which columns this session has offered to the
	// snapshot's faulter; faultErr records the first failure (surfaced by
	// the next Render, then cleared).
	requested map[int]bool
	faultErr  error
	// snapGen is the last snapshot generation this session reconciled its
	// caches against.
	snapGen uint64

	// catalog resolves database names for the diff command (nil = none).
	catalog Catalog
	// home is the snapshot the session presented before Compare rebased it
	// onto a diff (nil when not in a diff).
	home *Snapshot

	// jobs bounds ExpandAll's parallelism (<=1 serial).
	jobs int
	// released guards the one-shot reference release in Close (Close may
	// be called more than once, e.g. abort then defer).
	released atomic.Bool
	// ctx is cancelled by Close; in-flight callers-view expansion observes
	// it between roots.
	ctx    context.Context
	cancel context.CancelFunc
}

// NewSession opens a session over a snapshot.
func NewSession(snap *Snapshot) *Session {
	ctx, cancel := context.WithCancel(context.Background())
	snap.Retain()
	return &Session{
		snap:      snap,
		reg:       snap.tree.Reg.Clone(),
		expanded:  map[*core.Node]bool{},
		highlight: map[*core.Node]bool{},
		threshold: core.DefaultHotPathThreshold,
		cache:     newQueryCache(),
		requested: map[int]bool{},
		snapGen:   snap.gen.Load(),
		jobs:      1,
		ctx:       ctx,
		cancel:    cancel,
	}
}

// Close cancels the session: in-flight bulk expansion stops at the next
// root, and the shared snapshot is untouched (everything the session built
// is private to it). Close is safe to call from another goroutine — it is
// how a frontend aborts a stuck query — and releases the session's
// snapshot references exactly once, so a mapped database is unmapped only
// after its last session is gone.
func (s *Session) Close() {
	s.cancel()
	if s.released.CompareAndSwap(false, true) {
		s.snap.Release()
		if s.home != nil {
			s.home.Release()
		}
	}
}

// Cancel stops the session's in-flight work — bulk expansion observes the
// context between roots — without releasing its snapshot references. Use it
// when a concurrent goroutine may still be inside Do and the mapping must
// stay alive until it drains; call Close once it has.
func (s *Session) Cancel() { s.cancel() }

// Context returns the session's lifetime context (done after Close).
func (s *Session) Context() context.Context { return s.ctx }

// Snapshot returns the shared snapshot the session presents.
func (s *Session) Snapshot() *Snapshot { return s.snap }

// Tree returns the underlying shared tree. Callers must treat it as
// read-only.
func (s *Session) Tree() *core.Tree { return s.snap.tree }

// Registry returns the session's column registry: the snapshot's sealed
// columns plus this session's derived columns. Other sessions never see
// the latter.
func (s *Session) Registry() *metric.Registry { return s.reg }

// SetSource attaches the program source backing the source pane.
func (s *Session) SetSource(p *prog.Program) { s.source = p }

// SetJobs bounds the parallelism of bulk callers-view expansion
// (ExpandAll); <=1 expands serially.
func (s *Session) SetJobs(jobs int) { s.jobs = jobs }

// View returns the active view kind.
func (s *Session) View() ViewKind { return s.view }

// SwitchView changes the active view, preserving sort and threshold but
// clearing expansion, zoom and highlights (each view has its own scopes).
func (s *Session) SwitchView(v ViewKind) {
	if v == s.view {
		return
	}
	s.view = v
	s.expanded = map[*core.Node]bool{}
	s.highlight = map[*core.Node]bool{}
	s.zoom = nil
	s.selected = nil
	s.rows = nil
	// Switching may build a view lazily (new scopes, new sibling lists).
	s.cache.bump()
}

// SetSort selects the sort column/flavor.
func (s *Session) SetSort(spec core.SortSpec) { s.sort = spec }

// Sort returns the current sort spec.
func (s *Session) Sort() core.SortSpec { return s.sort }

// SetThreshold adjusts the hot-path threshold (the paper exposes it as a
// preference; values outside (0,1] restore the default).
func (s *Session) SetThreshold(t float64) {
	if t <= 0 || t > 1 {
		t = core.DefaultHotPathThreshold
	}
	s.threshold = t
}

// SetLimits bounds the visible rows: at most topN children per scope and
// maxDepth levels (0 = unlimited).
func (s *Session) SetLimits(topN, maxDepth int) {
	s.topN, s.maxDepth = topN, maxDepth
}

// Limits returns the current topN and maxDepth bounds.
func (s *Session) Limits() (topN, maxDepth int) { return s.topN, s.maxDepth }

// SetColumns selects which metric columns the metric pane shows (nil
// restores all columns).
func (s *Session) SetColumns(cols []render.Column) { s.columns = cols }

// Select makes the node the current selection (for source pane and
// hot-path starting point).
func (s *Session) Select(n *core.Node) { s.selected = n }

// Selected returns the current selection (nil if none).
func (s *Session) Selected() *core.Node { return s.selected }

// Collapse closes one scope.
func (s *Session) Collapse(n *core.Node) { delete(s.expanded, n) }

// ZoomIn restricts the Calling Context View to the subtree at n.
func (s *Session) ZoomIn(n *core.Node) error {
	if s.view != ViewCC {
		return fmt.Errorf("engine: zoom applies to the calling context view")
	}
	s.zoom = append(s.zoom, n)
	return nil
}

// ZoomOut undoes one ZoomIn.
func (s *Session) ZoomOut() {
	if len(s.zoom) > 0 {
		s.zoom = s.zoom[:len(s.zoom)-1]
	}
}

// FlattenOnce elides the Flat View's current top level (Section III-C).
func (s *Session) FlattenOnce() error {
	if s.view != ViewFlat {
		return fmt.Errorf("engine: flattening applies to the flat view")
	}
	s.flatten++
	return nil
}

// Unflatten undoes one FlattenOnce.
func (s *Session) Unflatten() {
	if s.flatten > 0 {
		s.flatten--
	}
}

// FlattenLevel reports the current flattening depth.
func (s *Session) FlattenLevel() int { return s.flatten }

// SetColumnFaulter rewires the snapshot's column faulter (see
// Snapshot.SetColumnFaulter) and resets this session's fault bookkeeping.
// Intended for single-session use right after opening.
func (s *Session) SetColumnFaulter(f func(metricID int) error) {
	s.snap.SetColumnFaulter(f)
	s.requested = map[int]bool{}
	s.faultErr = nil
}

// --- fault phase -----------------------------------------------------

// faultColumn offers one sealed column to the snapshot's faulter, once per
// session. A first offer may change metric values (even when another
// session already materialized the column — this session had not observed
// it), so it invalidates the session's memoized orders. Must not be called
// with the snapshot read lock held.
func (s *Session) faultColumn(id int) {
	if id >= s.snap.baseCols || !s.snap.lazy() || s.requested[id] {
		return
	}
	s.requested[id] = true
	if err := s.snap.needColumn(id); err != nil && s.faultErr == nil {
		s.faultErr = err
	}
	s.cache.bump()
}

// faultForView materializes every lazy column before an aggregating view
// (Callers, Flat) is built or expanded: those views copy every resident
// column of the scopes they aggregate, so their contents must be a pure
// function of the database, not of which columns other sessions faulted
// first. Must not be called with the snapshot read lock held.
func (s *Session) faultForView() {
	if s.view == ViewCC || !s.snap.lazy() {
		return
	}
	if err := s.snap.FaultAll(); err != nil && s.faultErr == nil {
		s.faultErr = err
	}
}

// faultSort offers the sort column (the order of every sibling list
// depends on it).
func (s *Session) faultSort() {
	if !s.sort.ByLabel {
		s.faultColumn(s.sort.MetricID)
	}
}

// --- query phase -----------------------------------------------------

// refreshLocked reconciles the session with the snapshot generation:
// if any session faulted a column since this session last looked, shared
// slabs changed under the memoized orders and overlay columns, so both are
// dropped. Runs under the snapshot read lock (the generation is stable
// while it is held).
func (s *Session) refreshLocked() {
	if g := s.snap.gen.Load(); g != s.snapGen {
		s.snapGen = g
		s.cache.bump()
		s.overlay = nil
	}
}

// rootsLocked returns the active view's current top-level scopes plus the
// scope that owns the list (nil for a view's forest) — the identity the
// query cache keys sibling orders by. Builds the derived views on first
// use; they read the shared tree, so this runs under the read lock.
func (s *Session) rootsLocked() (parent *core.Node, ns []*core.Node) {
	switch s.view {
	case ViewCC:
		if len(s.zoom) > 0 {
			z := s.zoom[len(s.zoom)-1]
			return z, z.Children
		}
		return s.snap.tree.Root, s.snap.tree.Root.Children
	case ViewCallers:
		if s.callers == nil {
			s.callers = core.BuildCallersView(s.snap.tree)
		}
		return nil, s.callers.Roots
	case ViewFlat:
		if s.flat == nil {
			s.flat = core.BuildFlatView(s.snap.tree)
		}
		return nil, core.FlattenN(s.flat.Roots, s.flatten)
	}
	return nil, nil
}

// visibleRowsLocked recomputes the rows currently on screen: top-level
// scopes always, descendants only along expanded chains, every sibling
// list ordered by the session sort.
func (s *Session) visibleRowsLocked() []render.Row {
	s.rows = s.rows[:0]
	var add func(parent *core.Node, ns []*core.Node, depth int)
	add = func(parent *core.Node, ns []*core.Node, depth int) {
		sorted := s.sortedSiblings(parent, ns)
		if s.topN > 0 && len(sorted) > s.topN {
			sorted = sorted[:s.topN]
		}
		for _, n := range sorted {
			childrenShown := s.expanded[n] && (s.maxDepth == 0 || depth+1 < s.maxDepth)
			hidden := len(n.Children) > 0 && !childrenShown
			// The Callers View materializes children lazily: an
			// unexpanded root row may not know its callers yet, so it
			// is presented as expandable regardless.
			if s.view == ViewCallers && s.callers != nil && n.Parent == nil && !s.callers.Expanded(n) {
				hidden = true
			}
			s.rows = append(s.rows, render.Row{Node: n, Depth: depth, HasHidden: hidden})
			if childrenShown {
				add(n, n.Children, depth+1)
			}
		}
	}
	parent, ns := s.rootsLocked()
	add(parent, ns, 0)
	return s.rows
}

// VisibleRows recomputes and returns the rows currently on screen.
func (s *Session) VisibleRows() []render.Row {
	s.faultSort()
	s.faultForView()
	s.snap.mu.RLock()
	defer s.snap.mu.RUnlock()
	s.refreshLocked()
	return s.visibleRowsLocked()
}

// RowNode resolves a row number from the last VisibleRows/Render call
// (computing the rows first if none have been rendered yet).
func (s *Session) RowNode(idx int) (*core.Node, error) {
	if len(s.rows) == 0 {
		s.VisibleRows()
	}
	if idx < 0 || idx >= len(s.rows) {
		return nil, fmt.Errorf("engine: row %d out of range (0..%d)", idx, len(s.rows)-1)
	}
	return s.rows[idx].Node, nil
}

// Expand opens one scope (for the Callers View this materializes the
// caller chain on demand — Section VII's lazy construction).
func (s *Session) Expand(n *core.Node) {
	s.faultForView()
	s.snap.mu.RLock()
	defer s.snap.mu.RUnlock()
	s.refreshLocked()
	s.expandLocked(n)
}

func (s *Session) expandLocked(n *core.Node) {
	if s.view == ViewCallers && s.callers != nil {
		for _, r := range s.callers.Roots {
			if r == n {
				s.callers.Expand(r)
				// Materialization may have created caller rows.
				s.cache.bump()
			}
		}
	}
	s.expanded[n] = true
}

// ExpandAll opens every scope under n (and n itself). In the Callers View
// this materializes every caller subtrie — in parallel when SetJobs allows
// — which can fail on a damaged view or be cut short by Close; the scopes
// opened so far stay open.
func (s *Session) ExpandAll(n *core.Node) error {
	s.faultForView()
	s.snap.mu.RLock()
	defer s.snap.mu.RUnlock()
	s.refreshLocked()
	var err error
	if s.view == ViewCallers && s.callers != nil {
		err = s.callers.ExpandAllCtx(s.ctx, s.jobs)
		s.cache.bump()
	}
	core.Walk(n, func(x *core.Node) bool {
		s.expanded[x] = true
		return true
	})
	return err
}

// HotPath runs hot-path analysis (Equation 3) over the given metric from
// the selection (or the whole view when nothing is selected), expands
// every scope along the path so it is visible, highlights it, and selects
// its endpoint — the paper's one-click drill-down.
func (s *Session) HotPath(metricID int) []*core.Node {
	s.faultColumn(metricID)
	s.faultForView()
	s.snap.mu.RLock()
	defer s.snap.mu.RUnlock()
	s.refreshLocked()
	start := s.selected
	if start == nil {
		if s.view == ViewCC && len(s.zoom) > 0 {
			start = s.zoom[len(s.zoom)-1]
		} else if s.view == ViewCC {
			start = s.snap.tree.Root
		} else {
			// Derived views have a forest; start from the hottest root.
			_, roots := s.rootsLocked()
			if len(roots) == 0 {
				return nil
			}
			best := roots[0]
			for _, r := range roots[1:] {
				if s.cellValue(r, metricID, true) > s.cellValue(best, metricID, true) {
					best = r
				}
			}
			start = best
		}
	}
	if s.view == ViewCallers && s.callers != nil {
		// The path may need lazily built caller chains.
		for _, r := range s.callers.Roots {
			if r == start {
				s.callers.Expand(r)
				s.cache.bump()
			}
		}
	}
	path := s.hotPathCached(start, metricID)
	s.highlight = map[*core.Node]bool{}
	for _, n := range path {
		s.highlight[n] = true
		s.expanded[n] = true
	}
	if len(path) > 0 {
		s.selected = path[len(path)-1]
	}
	return path
}

// Render writes the visible rows with row numbers. Columns about to be
// displayed are faulted in first (lazy databases); a fault failure aborts
// the render with the section's typed error.
func (s *Session) Render(w io.Writer, opt render.Options) error {
	if opt.Columns == nil {
		opt.Columns = s.columns
	}
	if s.snap.lazy() {
		if opt.Columns != nil {
			for _, c := range opt.Columns {
				s.faultColumn(c.MetricID)
			}
		} else {
			for _, d := range s.reg.Columns() {
				s.faultColumn(d.ID)
			}
		}
	}
	s.faultSort()
	s.faultForView()
	s.snap.mu.RLock()
	defer s.snap.mu.RUnlock()
	s.refreshLocked()
	rows := s.visibleRowsLocked()
	if err := s.faultErr; err != nil {
		s.faultErr = nil
		return err
	}
	opt.Highlight = s.highlight
	if opt.Totals == nil {
		opt.Totals = s.total
	}
	if opt.Value == nil {
		opt.Value = s.cellValue
	}
	return render.RenderRows(w, rows, s.reg, opt)
}

// AddDerivedMetric registers a session-private derived column. Unlike the
// database's own derived metrics it is never written to any store: values
// materialize lazily into the session's overlay (see overlay.go), so
// concurrent sessions over the same snapshot cannot observe each other's
// formulas. Columns the formula reads are faulted in first when the
// snapshot fronts a lazy database.
func (s *Session) AddDerivedMetric(name, formula string) error {
	d, err := s.reg.AddDerived(name, formula)
	if err != nil {
		return err
	}
	if s.snap.lazy() {
		if p, perr := d.Program(); perr == nil {
			for _, rc := range p.ColumnRefs() {
				s.faultColumn(rc)
			}
		}
	}
	// Values of the new column do not affect existing orders, but the
	// single-session viewer historically invalidated here; keep the
	// stronger discipline (the column may become the sort key next).
	s.cache.bump()
	if err := s.faultErr; err != nil {
		s.faultErr = nil
		return err
	}
	return nil
}

// SummaryStats folds the inclusive values of one column over the current
// view's visible rows (Section VII's mean/min/max/stddev summarization,
// applied to the scopes on screen).
func (s *Session) SummaryStats(metricID int, inclusive bool) metric.Stats {
	s.faultColumn(metricID)
	s.faultSort()
	s.faultForView()
	s.snap.mu.RLock()
	defer s.snap.mu.RUnlock()
	s.refreshLocked()
	var st metric.Stats
	for _, row := range s.visibleRowsLocked() {
		st.Observe(s.cellValue(row.Node, metricID, inclusive))
	}
	return st
}

// AttachProfiles supplies the raw per-rank profiles and the structure
// document, enabling per-rank plot graphs (the three graphs of Figure 7).
func (s *Session) AttachProfiles(doc *structfile.Doc, profs []*profile.Profile) {
	s.doc = doc
	s.profiles = profs
}

// Plot renders the per-rank distribution of the named metric at the
// selected Calling Context View scope: scatter, sorted series and
// histogram (Section VI-C). Requires AttachProfiles and a selection in the
// CC view (the per-rank series is defined by a calling context).
func (s *Session) Plot(w io.Writer, metricName string, bins int) error {
	if s.doc == nil || len(s.profiles) == 0 {
		return fmt.Errorf("engine: no profiles attached (plot needs the raw measurements)")
	}
	n := s.selected
	if n == nil {
		return fmt.Errorf("engine: nothing selected")
	}
	if s.view != ViewCC {
		return fmt.Errorf("engine: plots are defined over calling contexts (switch to the cc view)")
	}
	s.snap.mu.RLock()
	defer s.snap.mu.RUnlock()
	var path []string
	for _, a := range n.Path() {
		path = append(path, a.Label())
	}
	rep, err := imbalance.Analyze(s.doc, s.profiles, path, metricName, bins)
	if err != nil {
		return err
	}
	return rep.Render(w)
}

// ShowSource writes the source pane for the selection: the pseudo-source
// window around the scope's line. Call sites show the caller-side line
// (clicking the call-site icon in hpcviewer), everything else its own
// line.
func (s *Session) ShowSource(w io.Writer, context int) error {
	if s.source == nil {
		return fmt.Errorf("engine: no program source attached")
	}
	n := s.selected
	if n == nil {
		return fmt.Errorf("engine: nothing selected")
	}
	if n.NoSource {
		return fmt.Errorf("engine: %s is binary-only (no source)", n.Label())
	}
	file, line := n.File, n.Line
	if n.Kind == core.KindFrame && n.CallLine > 0 {
		file, line = n.CallFile, n.CallLine
	}
	if file == 0 || line <= 0 {
		return fmt.Errorf("engine: %s has no source location", n.Label())
	}
	fmt.Fprintf(w, "%s:%d (%s)\n", file, line, n.Label())
	return s.source.WriteSource(w, file.String(), line, context)
}
