package engine

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/render"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGoldenViews locks the engine's rendered presentation of the paper's
// worked example in all three views — Calling Context fully expanded,
// Callers fully expanded, and Flat flattened once — against golden files.
// The frontends (CLI and HTTP) are deliberately format-free, so these
// goldens pin what every user of the engine sees. Regenerate deliberately
// with `go test ./internal/engine -run TestGoldenViews -update`.
func TestGoldenViews(t *testing.T) {
	cases := []struct {
		name   string
		script []string
	}{
		{"cc", []string{"expandall"}},
		{"callers", []string{"view callers", "expandall", "sort cost"}},
		{"flat", []string{"view flat", "flatten", "sort cost:excl"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSession(NewTreeSnapshot(core.Fig1Tree()))
			defer s.Close()
			for _, line := range tc.script {
				if resp := s.Do(Request{Line: line}); resp.Err != "" {
					t.Fatalf("%q: %s", line, resp.Err)
				}
			}
			var b strings.Builder
			if err := s.Render(&b, render.Options{}); err != nil {
				t.Fatal(err)
			}
			got := b.String()

			path := filepath.Join("testdata", "golden_"+tc.name+".txt")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("golden mismatch for %s view:\n--- got ---\n%s\n--- want ---\n%s",
					tc.name, got, want)
			}
		})
	}
}
