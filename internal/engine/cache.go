package engine

import (
	"container/list"

	"repro/internal/core"
)

// queryCache memoizes the expensive per-interaction query results — sorted
// sibling orders and hot paths — in one bounded LRU owned by a session.
// Re-rendering after an expand, collapse or selection re-sorts every
// visible sibling list from scratch without it; with it, only lists never
// ordered under the current (view, spec) pay the sort.
//
// Every key carries a generation stamp. Anything that can change metric
// values or sibling-list membership — derived-metric registration, lazy
// caller materialization, view switches, column fault-in (the session's
// own, or another session's observed through the snapshot generation) —
// bumps the generation, so stale entries can never be returned; they age
// out of the LRU instead of being scanned for.
const cacheCapacity = 256

// siblingsKey identifies one sorted sibling list: the list is owned by a
// parent scope (nil for a view's top-level forest, which flattening can
// re-shape — hence the flatten level).
type siblingsKey struct {
	view    ViewKind
	parent  *core.Node
	flatten int
	spec    core.SortSpec
	gen     uint64
}

// hotKey identifies one hot-path query (Equation 3 is deterministic in its
// start scope, column and threshold).
type hotKey struct {
	start     *core.Node
	metricID  int
	threshold float64
	gen       uint64
}

type cacheEntry struct {
	key  any // siblingsKey or hotKey
	rows []*core.Node
}

type queryCache struct {
	gen uint64
	lru *list.List // *cacheEntry; front = most recently used
	idx map[any]*list.Element
}

func newQueryCache() *queryCache {
	return &queryCache{lru: list.New(), idx: map[any]*list.Element{}}
}

// bump invalidates every existing entry.
func (c *queryCache) bump() { c.gen++ }

func (c *queryCache) get(key any) ([]*core.Node, bool) {
	el, ok := c.idx[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).rows, true
}

func (c *queryCache) put(key any, rows []*core.Node) {
	if el, ok := c.idx[key]; ok {
		el.Value.(*cacheEntry).rows = rows
		c.lru.MoveToFront(el)
		return
	}
	c.idx[key] = c.lru.PushFront(&cacheEntry{key: key, rows: rows})
	for c.lru.Len() > cacheCapacity {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.idx, el.Value.(*cacheEntry).key)
	}
}

// sortedSiblings returns ns ordered by the session sort, memoized per
// sibling list. The returned slice is owned by the cache: callers may
// re-slice but must not reorder it. Runs under the snapshot read lock.
func (s *Session) sortedSiblings(parent *core.Node, ns []*core.Node) []*core.Node {
	key := siblingsKey{view: s.view, parent: parent, flatten: s.flatten, spec: s.sort, gen: s.cache.gen}
	if rows, ok := s.cache.get(key); ok {
		return rows
	}
	sorted := append([]*core.Node(nil), ns...)
	if s.sort.ByLabel || s.sort.MetricID < s.snap.baseCols {
		core.SortScopes(sorted, s.sort)
	} else {
		// Overlay (session-private) sort column: same comparator, with the
		// key read routed through the overlay.
		inclusive := !s.sort.Exclusive
		id := s.sort.MetricID
		core.SortScopesFunc(sorted, s.sort, func(n *core.Node) float64 {
			return s.cellValue(n, id, inclusive)
		})
	}
	s.cache.put(key, sorted)
	return sorted
}

// hotPathCached returns the memoized Equation 3 result for (start, metric)
// at the current threshold. Runs under the snapshot read lock.
func (s *Session) hotPathCached(start *core.Node, metricID int) []*core.Node {
	key := hotKey{start: start, metricID: metricID, threshold: s.threshold, gen: s.cache.gen}
	if path, ok := s.cache.get(key); ok {
		return path
	}
	var path []*core.Node
	if metricID < s.snap.baseCols {
		path = core.HotPath(start, metricID, s.threshold)
	} else {
		path = core.HotPathFunc(start, func(n *core.Node) float64 {
			return s.cellValue(n, metricID, true)
		}, s.threshold)
	}
	s.cache.put(key, path)
	return path
}
