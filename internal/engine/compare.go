package engine

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/expdb"
)

// Catalog resolves database names to snapshots, so sessions can diff the
// database they present against others the frontend has opened. Lookups
// may be called from many sessions at once; implementations must be safe
// for concurrent use.
type Catalog interface {
	// LookupSnapshot returns the named snapshot with one reference
	// retained for the caller, who must Release it when done. The retain
	// happens under the catalog's lock so a lifecycle catalog can never
	// evict (and unmap) the snapshot between lookup and use.
	LookupSnapshot(name string) (*Snapshot, error)
	// SnapshotNames lists the available names, sorted.
	SnapshotNames() []string
}

// SnapshotCatalog is a static in-memory Catalog. The map must not be
// mutated once sessions can see it.
type SnapshotCatalog map[string]*Snapshot

// LookupSnapshot implements Catalog.
func (c SnapshotCatalog) LookupSnapshot(name string) (*Snapshot, error) {
	sn, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("engine: no database %q in the catalog", name)
	}
	sn.Retain()
	return sn, nil
}

// SnapshotNames implements Catalog.
func (c SnapshotCatalog) SnapshotNames() []string {
	names := make([]string, 0, len(c))
	for name := range c {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DiffInput is one snapshot handed to DiffSnapshots.
type DiffInput struct {
	// Label names the input's columns (see diff.Input).
	Label string
	// Snap is the sealed snapshot to diff.
	Snap *Snapshot
}

// DiffSnapshots unions sealed snapshots into a fresh diff snapshot. Every
// input's lazy columns are faulted in first (diffing must see the whole
// database, and the shared slabs must stop moving before the union walks
// them); after that the inputs are only read, so the snapshots can stay
// live under other sessions throughout.
func DiffSnapshots(cfg diff.Config, inputs ...DiffInput) (*Snapshot, *diff.Result, error) {
	dins := make([]diff.Input, len(inputs))
	for i, in := range inputs {
		if in.Snap == nil {
			return nil, nil, fmt.Errorf("engine: diff input %d has no snapshot", i)
		}
		if err := in.Snap.FaultAll(); err != nil {
			return nil, nil, fmt.Errorf("engine: faulting diff input %d: %w", i, err)
		}
		exp := in.Snap.Experiment()
		if exp == nil {
			// Bare-tree snapshot: wrap it so the differ has rank counts
			// and provenance fields to look at.
			exp = &expdb.Experiment{Program: in.Snap.Tree().Program, NRanks: 1, Tree: in.Snap.Tree()}
		}
		dins[i] = diff.Input{Label: in.Label, Exp: exp}
	}
	res, err := diff.Diff(cfg, dins...)
	if err != nil {
		return nil, nil, err
	}
	return NewSnapshot(res.Exp), res, nil
}

// SetCatalog attaches the catalog the session's diff command resolves
// names against.
func (s *Session) SetCatalog(c Catalog) { s.catalog = c }

// Catalog returns the attached catalog (nil if none).
func (s *Session) Catalog() Catalog { return s.catalog }

// Compare diffs the session's current database (the baseline, labeled A)
// against the named catalog entry (labeled B) and rebases the session onto
// the union snapshot: every view, sort, hot path and threshold now runs
// over the diff columns like any other database. The pre-diff snapshot is
// remembered; Back returns to it.
func (s *Session) Compare(name string, cfg diff.Config) (*diff.Result, error) {
	if s.catalog == nil {
		return nil, fmt.Errorf("engine: no catalog attached (nothing to diff against)")
	}
	other, err := s.catalog.LookupSnapshot(name)
	if err != nil {
		return nil, err
	}
	snap, res, err := DiffSnapshots(cfg,
		DiffInput{Label: "A", Snap: s.snap},
		DiffInput{Label: "B", Snap: other})
	// The union copies every value into a fresh in-memory experiment, so
	// the lookup reference (which kept other mapped through the walk) can
	// drop as soon as the diff is built — or failed.
	other.Release()
	if err != nil {
		return nil, err
	}
	if s.home == nil {
		// The home pointer is its own reference: the pre-diff snapshot must
		// survive (stay mapped) while the session presents the diff.
		s.home = s.snap
		s.home.Retain()
	}
	s.rebase(snap)
	return res, nil
}

// Back leaves the diff and restores the database the session presented
// before Compare.
func (s *Session) Back() error {
	if s.home == nil {
		return fmt.Errorf("engine: not presenting a diff")
	}
	home := s.home
	s.home = nil
	s.rebase(home)
	// rebase retained home as the new current snapshot; drop the home
	// pointer's reference now that the field is cleared.
	home.Release()
	return nil
}

// InDiff reports whether the session currently presents a Compare result.
func (s *Session) InDiff() bool { return s.home != nil }

// rebase points the session at a different snapshot and resets every piece
// of per-database presentation state — the same reset SwitchView applies,
// widened to the whole session because the scopes, the registry and the
// shared slabs all changed identity.
func (s *Session) rebase(snap *Snapshot) {
	snap.Retain()
	old := s.snap
	s.snap = snap
	old.Release()
	s.reg = snap.tree.Reg.Clone()
	s.view = ViewCC
	s.callers = nil
	s.flat = nil
	s.expanded = map[*core.Node]bool{}
	s.highlight = map[*core.Node]bool{}
	s.zoom = nil
	s.flatten = 0
	s.selected = nil
	s.rows = nil
	s.sort = core.SortSpec{}
	s.columns = nil
	s.cache = newQueryCache()
	s.overlay = nil
	s.requested = map[int]bool{}
	s.faultErr = nil
	s.snapGen = snap.gen.Load()
}
