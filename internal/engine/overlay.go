package engine

import (
	"repro/internal/core"
	"repro/internal/metric"
)

// Session-private derived metrics never write to any metric store: the
// stores belong to the shared snapshot (the tree's) or to views that copy
// from it, and sessions must not be able to observe each other's formulas.
// Instead a session materializes each of its derived columns into overlay
// slabs — one []float64 per (store, column, flavor), computed on first read
// with the same compiled column kernel ApplyDerivedTree uses, then indexed
// by row exactly like a resident slab.
//
// The overlay is invalidated wholesale when the snapshot generation moves
// (a lazy column fault-in rewrote shared slabs the formulas read).
//
// Semantics: a derived column is a spreadsheet formula over the row it is
// read at. On Calling Context View scopes that is the formula over the
// scope's own metrics — identical to applying the formula tree-wide. On
// Callers/Flat View scopes it is the formula over the row's aggregated
// inputs, which makes the value a pure function of the view row regardless
// of when the view was built relative to the registration — the property
// the concurrent-session equivalence guarantee rests on.

// overlayCols holds one store's materialized overlay columns per flavor.
type overlayCols struct {
	incl map[int][]float64
	excl map[int][]float64
}

func (oc *overlayCols) plane(inclusive bool) map[int][]float64 {
	if inclusive {
		return oc.incl
	}
	return oc.excl
}

// cellValue reads one metric cell for the session: resident columns come
// straight from the node's views (byte-identical to the single-session
// viewer), session-derived columns from the overlay. It is the render
// layer's Options.Value hook and the sort/hot-path key reader; it runs
// under the snapshot read lock (the overlay itself is session-private, so
// lazily materializing it there is safe).
func (s *Session) cellValue(n *core.Node, id int, inclusive bool) float64 {
	if id < s.snap.baseCols {
		if inclusive {
			return n.Incl.Get(id)
		}
		return n.Excl.Get(id)
	}
	st := n.Incl.Store()
	if st == nil {
		// Hand-built (non-store-backed) scopes: evaluate per cell, like
		// ApplyDerived's per-node walk.
		return s.evalCell(n, id, inclusive)
	}
	slab := s.overlaySlab(st, id, inclusive)
	if r := int(n.Incl.Row()); r < len(slab) {
		return slab[r]
	}
	return 0
}

// overlaySlab returns the materialized overlay column for (store, id,
// flavor), computing it on first use.
func (s *Session) overlaySlab(st *metric.Store, id int, inclusive bool) []float64 {
	if s.overlay == nil {
		s.overlay = map[*metric.Store]*overlayCols{}
	}
	oc := s.overlay[st]
	if oc == nil {
		oc = &overlayCols{incl: map[int][]float64{}, excl: map[int][]float64{}}
		s.overlay[st] = oc
	}
	plane := oc.plane(inclusive)
	if slab, ok := plane[id]; ok {
		return slab
	}
	slab := s.materializeOverlay(st, id, inclusive)
	plane[id] = slab
	return slab
}

// materializeOverlay runs a derived column's compiled kernel over one
// store's rows. References below the base boundary read the store's
// resident slabs (read-only — never materializing columns in the shared
// store); references at or above it recurse into earlier overlay columns
// (the registry validated refs are strictly earlier, so this terminates).
func (s *Session) materializeOverlay(st *metric.Store, id int, inclusive bool) []float64 {
	rows := st.NumRows()
	dst := make([]float64, rows)
	d := s.reg.ByID(id)
	if d == nil || d.Kind != metric.Derived {
		return dst
	}
	prog, err := d.Program()
	if err != nil {
		// Registry-accepted formulas always compile; a failure here would
		// mean a hand-constructed Desc, which reads as zero.
		return dst
	}
	plane := metric.PlaneExcl
	if inclusive {
		plane = metric.PlaneIncl
	}
	refs := prog.ColumnRefs()
	cols := make([][]float64, len(refs))
	for i, rc := range refs {
		if rc >= s.snap.baseCols {
			cols[i] = s.overlaySlab(st, rc, inclusive)
			continue
		}
		src := st.ColRead(plane, rc)
		if len(src) >= rows {
			cols[i] = src
			continue
		}
		// The read-only slab may lag the row count (or be absent); the
		// kernel requires full-length inputs, so pad a copy.
		pad := make([]float64, rows)
		copy(pad, src)
		cols[i] = pad
	}
	prog.EvalCols(dst, cols)
	return dst
}

// evalCell evaluates a session-derived column for one non-store-backed
// scope, routing references back through cellValue.
func (s *Session) evalCell(n *core.Node, id int, inclusive bool) float64 {
	d := s.reg.ByID(id)
	if d == nil || d.Kind != metric.Derived {
		return 0
	}
	prog, err := d.Program()
	if err != nil {
		return 0
	}
	return prog.EvalEnv(metric.EnvFunc(func(ref int) float64 {
		return s.cellValue(n, ref, inclusive)
	}))
}

// total supplies percent denominators: resident columns use the tree's
// root totals (identical to the single-session viewer), overlay columns
// the root's overlay value.
func (s *Session) total(metricID int) float64 {
	if metricID < s.snap.baseCols {
		return s.snap.tree.Total(metricID)
	}
	return s.cellValue(s.snap.tree.Root, metricID, true)
}
