package faultio_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diff"
	"repro/internal/expdb"
	"repro/internal/faultio"
	"repro/internal/ingest"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// The fault-injection matrix: every workload's measurement files and
// experiment databases, in both format versions, under truncation and
// byte-corruption sweeps. The invariant is the robustness contract of the
// ingestion pipeline — a damaged input produces a clean typed error or a
// documented degraded result, never a panic or a hang.

// artifact is one on-disk byte image plus the decoder contract for it.
type artifact struct {
	name string
	data []byte
	// decode parses data, reporting (degraded, err). degraded means the
	// open succeeded but carried notes about dropped sections.
	decode func(data []byte) (bool, error)
	// checksummed formats must detect any single-byte corruption; v1
	// formats only promise not to crash (a flipped byte may decode into
	// different, internally consistent data).
	checksummed bool
}

func decodeProfile(data []byte) (bool, error) {
	_, err := profile.Read(bytes.NewReader(data))
	return false, err
}

// decodeTracedProfile additionally requires the trace section the capture
// wrote to still be present and scan cleanly. A flipped section-id byte
// turns the section into an unknown kind the reader skips by design
// (forward compatibility), so "the trace vanished" is the detectable
// symptom for that corruption.
func decodeTracedProfile(data []byte) (bool, error) {
	if _, err := profile.Read(bytes.NewReader(data)); err != nil {
		return false, err
	}
	count, _, err := profile.ScanTrace(bytes.NewReader(data), nil)
	if err != nil {
		return false, err
	}
	if count == 0 {
		return false, fmt.Errorf("trace section lost")
	}
	return false, nil
}

func decodeDB(data []byte) (bool, error) {
	e, err := expdb.ReadBinary(bytes.NewReader(data))
	if err != nil {
		return false, err
	}
	return len(e.Notes) > 0, nil
}

// decodeLazyDB opens the database lazily and then touches every
// lazily-skipped section the way a viewer session eventually would: fault
// each metric column in, read the provenance record, and materialize the
// rest. Damage to a skipped section must surface at these accesses as the
// same typed errors or degradation notes an eager open reports — never a
// panic.
func decodeLazyDB(data []byte) (bool, error) {
	db, err := expdb.OpenLazy(bytes.NewReader(data))
	if err != nil {
		return false, err
	}
	e := db.Experiment()
	for _, d := range e.Tree.Reg.Columns() {
		if err := db.NeedColumn(d.ID); err != nil {
			return len(e.Notes) > 0, err
		}
	}
	if _, err := db.Provenance(); err != nil {
		return len(e.Notes) > 0, err
	}
	if err := db.MaterializeAll(); err != nil {
		return len(e.Notes) > 0, err
	}
	return len(e.Notes) > 0, nil
}

// decodeMappedDB stages the bytes as a file and opens them through the
// zero-copy mapped path, then touches everything a viewer eventually
// would: metadata, every column's checksum pass, provenance. The v3
// contract matches v2-lazy: metadata damage is a typed error, column and
// provenance damage degrade with notes, and nothing ever faults the
// process (all index ranges are validated before the mapping is trusted).
func decodeMappedDB(data []byte) (bool, error) {
	dir, err := os.MkdirTemp("", "faultv3")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "experiment.db")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return false, err
	}
	db, err := expdb.OpenMapped(path)
	if err != nil {
		return false, err
	}
	defer db.Close()
	e, err := db.Experiment()
	if err != nil {
		return false, err
	}
	for _, d := range e.Tree.Reg.Columns() {
		if err := db.NeedColumn(d.ID); err != nil {
			return len(e.Notes) > 0, err
		}
	}
	if _, err := db.Provenance(); err != nil {
		return len(e.Notes) > 0, err
	}
	if err := db.VerifyAll(); err != nil {
		return len(e.Notes) > 0, err
	}
	// Trace/pyramid/tracemeta damage must degrade — dropped ranks with
	// notes — while profile views stay intact, and whatever traces survive
	// must still render a view without failing.
	tv, err := db.Trace()
	if err != nil {
		return len(e.Notes) > 0, err
	}
	if tv != nil && len(tv.TraceRanks()) > 0 {
		if _, verr := trace.View(tv, 0, 0, nil, 32, 0); verr != nil {
			return len(e.Notes) > 0, verr
		}
	}
	return len(e.Notes) > 0, nil
}

// buildArtifacts simulates one workload at a small rank count and encodes
// its first rank profile and merged database in every format version.
func buildArtifacts(t *testing.T, name string) []artifact {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	// Trace capture is on so the profile-v2 artifact carries a trace
	// section and the v3 artifacts carry trace, pyramid and tracemeta
	// sections — the sweep then covers every section kind of every format.
	profs, err := mpi.Run(im, mpi.Config{
		NRanks: 2,
		Events: sampler.DefaultEvents(spec.Period),
		Trace:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	// Summary columns populate the overrides section; a provenance record
	// populates section 6, so the sweep exercises every v2 section kind.
	for _, d := range res.Tree.Reg.Columns() {
		if d.Kind == metric.Raw {
			if err := res.AddSummaries(d.ID, metric.OpMean, metric.OpMax); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	exp := expdb.FromMerge(res)
	if err := expdb.TraceRanksFromProfiles(exp, doc, profs); err != nil {
		t.Fatal(err)
	}
	exp.Provenance = &ingest.Report{Attempted: 3, Merged: 2, Bad: []ingest.BadRank{
		{Path: "lost.cpprof", Rank: 2, Offset: 5, Class: ingest.ClassTruncated, Message: "unexpected EOF"},
	}}

	enc := func(name string, f func(*bytes.Buffer) error, decode func([]byte) (bool, error), sum bool) artifact {
		var buf bytes.Buffer
		if err := f(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return artifact{name: name, data: buf.Bytes(), decode: decode, checksummed: sum}
	}
	p := profs[0]
	return []artifact{
		enc("profile-v2", func(b *bytes.Buffer) error { return p.Write(b) }, decodeTracedProfile, true),
		enc("profile-v1", func(b *bytes.Buffer) error { return p.WriteV1(b) }, decodeProfile, false),
		enc("expdb-v2", func(b *bytes.Buffer) error { return exp.WriteBinary(b) }, decodeDB, true),
		enc("expdb-v2-lazy", func(b *bytes.Buffer) error { return exp.WriteBinary(b) }, decodeLazyDB, true),
		enc("expdb-v1", func(b *bytes.Buffer) error { return exp.WriteBinaryV1(b) }, decodeDB, false),
		enc("expdb-v3", func(b *bytes.Buffer) error { return exp.WriteBinaryV3(b) }, decodeDB, true),
		enc("expdb-v3-mapped", func(b *bytes.Buffer) error { return exp.WriteBinaryV3(b) }, decodeMappedDB, true),
	}
}

// sweepOffsets picks byte positions covering both ends densely and the
// interior with an even stride, bounding the quadratic sweep cost.
func sweepOffsets(n, samples int) []int {
	seen := make(map[int]bool)
	var offs []int
	add := func(i int) {
		if i >= 0 && i < n && !seen[i] {
			seen[i] = true
			offs = append(offs, i)
		}
	}
	for i := 0; i < 16; i++ {
		add(i)
		add(n - 1 - i)
	}
	if samples > 0 {
		step := n / samples
		if step < 1 {
			step = 1
		}
		for i := 0; i < n; i += step {
			add(i)
		}
	}
	return offs
}

// frameOffsets walks a v2 frame and returns one offset inside every
// structural element: each id byte, length varint, payload and CRC
// trailer, plus magic and end marker — "every section of every file".
func frameOffsets(data []byte, magicLen int) []int {
	offs := []int{0, magicLen - 1} // magic
	off := magicLen
	for off < len(data) {
		offs = append(offs, off) // id byte (or end marker)
		if data[off] == 0 {
			break
		}
		n, vlen := binary.Uvarint(data[off+1:])
		if vlen <= 0 {
			break
		}
		offs = append(offs, off+1) // length varint
		payload := off + 1 + vlen
		if n > 0 {
			offs = append(offs, payload+int(n)/2, payload, payload+int(n)-1)
		}
		offs = append(offs, payload+int(n), payload+int(n)+3) // CRC trailer
		off = payload + int(n) + 4
	}
	return offs
}

// v3Offsets parses the v3 trailer and index (both fixed-width) and returns
// one offset inside every structural element: the magic, each section's
// first, middle and last byte, every index entry, and every trailer byte —
// the aligned-layout analogue of frameOffsets.
func v3Offsets(data []byte) []int {
	n := len(data)
	if n < 40 {
		return nil
	}
	offs := []int{0, 7} // magic
	tr := data[n-32:]
	indexOff := int(binary.LittleEndian.Uint64(tr[0:8]))
	count := int(binary.LittleEndian.Uint64(tr[8:16]))
	if indexOff < 8 || indexOff > n-32 || count < 0 || count > (n-32-indexOff)/32 {
		return offs
	}
	for i := 0; i < count; i++ {
		en := indexOff + i*32
		off := int(binary.LittleEndian.Uint64(data[en+8 : en+16]))
		length := int(binary.LittleEndian.Uint64(data[en+16 : en+24]))
		if off >= 8 && length > 0 && off+length <= indexOff {
			offs = append(offs, off, off+length/2, off+length-1)
		}
		offs = append(offs, en, en+15, en+31) // the index entry itself
	}
	for i := n - 32; i < n; i++ {
		offs = append(offs, i) // every trailer byte
	}
	return offs
}

// decodeSafely runs decode with panic containment so a crash is reported
// as a test failure naming the byte offset, not a process abort.
func decodeSafely(t *testing.T, a artifact, data []byte, what string) (degraded bool, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s/%s: PANIC: %v", a.name, what, r)
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return a.decode(data)
}

func TestFaultMatrix(t *testing.T) {
	for _, workload := range workloads.Names() {
		t.Run(workload, func(t *testing.T) {
			arts := buildArtifacts(t, workload)
			for _, a := range arts {
				a := a
				t.Run(a.name+"/baseline", func(t *testing.T) {
					degraded, err := decodeSafely(t, a, a.data, "baseline")
					if err != nil {
						t.Fatalf("pristine file rejected: %v", err)
					}
					if degraded {
						t.Fatal("pristine file opened degraded")
					}
				})
				t.Run(a.name+"/truncate", func(t *testing.T) {
					for _, cut := range sweepOffsets(len(a.data), 64) {
						_, err := decodeSafely(t, a, faultio.Truncate(a.data, cut), fmt.Sprintf("cut@%d", cut))
						if err == nil {
							t.Errorf("truncation at %d/%d read cleanly", cut, len(a.data))
						}
					}
				})
				t.Run(a.name+"/corrupt", func(t *testing.T) {
					offs := sweepOffsets(len(a.data), 64)
					if a.checksummed && strings.HasPrefix(a.name, "expdb-v3") {
						// Aligned layout: hit every section, index entry
						// and trailer byte.
						offs = append(offs, v3Offsets(a.data)...)
					} else if a.checksummed {
						// Also hit every structural element of the frame:
						// magic ("CPP2" is 4 bytes, "CPDB2" is 5), ids,
						// lengths, payloads, CRC trailers, end marker.
						magicLen := 4
						if strings.HasPrefix(a.name, "expdb-v2") {
							magicLen = 5
						}
						offs = append(offs, frameOffsets(a.data, magicLen)...)
					}
					for _, off := range offs {
						mut := faultio.Corrupt(a.data, off, 0x10)
						degraded, err := decodeSafely(t, a, mut, fmt.Sprintf("flip@%d", off))
						if !a.checksummed {
							continue // v1: no-crash is the whole contract
						}
						if err == nil && !degraded {
							t.Errorf("corruption at %d/%d went undetected", off, len(a.data))
						}
					}
				})
			}
			// A quarantined (-keep-going) database must not diff silently:
			// the comparison covers only its merged ranks, and the diff has
			// to carry that caveat as a provenance note. The round trip
			// through v2 bytes also proves the quarantine record survives
			// serialization into the diff path.
			t.Run("diff-provenance", func(t *testing.T) {
				var raw []byte
				for _, a := range arts {
					if a.name == "expdb-v2" {
						raw = a.data
					}
				}
				readExp := func() *expdb.Experiment {
					e, err := expdb.ReadBinary(bytes.NewReader(raw))
					if err != nil {
						t.Fatal(err)
					}
					return e
				}
				clean := readExp()
				clean.Provenance = nil
				dirty := readExp()
				if dirty.Provenance == nil || dirty.Provenance.Clean() {
					t.Fatal("round-tripped database lost its quarantine record")
				}
				res, err := diff.Diff(diff.Config{},
					diff.Input{Label: "clean", Exp: clean},
					diff.Input{Label: "dirty", Exp: dirty})
				if err != nil {
					t.Fatal(err)
				}
				var found bool
				for _, n := range res.Exp.Notes {
					if strings.Contains(n, "input clean") {
						t.Errorf("clean input blamed: %q", n)
					}
					if strings.Contains(n, "input dirty is quarantined") &&
						strings.Contains(n, "merged ranks only") {
						found = true
					}
				}
				if !found {
					t.Fatalf("quarantined-vs-clean diff lacks a provenance note: %v", res.Exp.Notes)
				}
				// The note must ride the report too, whichever side is dirty.
				rev, err := diff.Diff(diff.Config{},
					diff.Input{Label: "dirty", Exp: readExp()},
					diff.Input{Label: "clean", Exp: clean})
				if err != nil {
					t.Fatal(err)
				}
				rep, err := rev.Report(diff.ReportOptions{})
				if err != nil {
					t.Fatal(err)
				}
				found = false
				for _, n := range rep.Notes {
					found = found || strings.Contains(n, "input dirty is quarantined")
				}
				if !found {
					t.Fatalf("report dropped the provenance note: %v", rep.Notes)
				}
			})
		})
	}
}

// Streaming faults: the readers must also behave when the transport —
// not the stored bytes — fails or dribbles.
func TestReaderFaults(t *testing.T) {
	for _, a := range buildArtifacts(t, "toy") {
		a := a
		t.Run(a.name+"/ioerror", func(t *testing.T) {
			r := faultio.ErrReaderAt(bytes.NewReader(a.data), int64(len(a.data)/2), nil)
			var err error
			if a.name == "profile-v1" || a.name == "profile-v2" {
				_, err = profile.Read(r)
			} else {
				_, err = expdb.ReadBinary(r)
			}
			if err == nil {
				t.Fatal("mid-file I/O error ignored")
			}
		})
		t.Run(a.name+"/shortreads", func(t *testing.T) {
			r := faultio.ShortReader(bytes.NewReader(a.data), 7)
			var err error
			if a.name == "profile-v1" || a.name == "profile-v2" {
				_, err = profile.Read(r)
			} else {
				_, err = expdb.ReadBinary(r)
			}
			if err != nil {
				t.Fatalf("short reads broke a pristine file: %v", err)
			}
		})
	}
}
