package faultio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestTruncate(t *testing.T) {
	data := []byte("0123456789")
	if got := Truncate(data, 4); string(got) != "0123" {
		t.Fatalf("Truncate = %q", got)
	}
	if got := Truncate(data, -1); len(got) != 0 {
		t.Fatalf("Truncate(-1) = %q", got)
	}
	if got := Truncate(data, 99); string(got) != "0123456789" {
		t.Fatalf("Truncate(99) = %q", got)
	}
	// Copies: mutating the result must not touch the input.
	got := Truncate(data, 10)
	got[0] = 'X'
	if data[0] != '0' {
		t.Fatal("Truncate aliases its input")
	}
}

func TestCorrupt(t *testing.T) {
	data := []byte("abcd")
	got := Corrupt(data, 2, 0xff)
	if string(data) != "abcd" {
		t.Fatal("Corrupt mutated its input")
	}
	if got[2] != 'c'^0xff || got[0] != 'a' || got[3] != 'd' {
		t.Fatalf("Corrupt = %v", got)
	}
	if got := Corrupt(data, 99, 0xff); !bytes.Equal(got, data) {
		t.Fatal("out-of-range offset changed data")
	}
}

func TestTruncateReader(t *testing.T) {
	r := TruncateReader(strings.NewReader("0123456789"), 6)
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "012345" {
		t.Fatalf("got %q, %v", got, err)
	}
	// A parser that keeps reading sees clean EOF, as with a real cut file.
	if _, err := r.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("after cut: %v", err)
	}
}

func TestCorruptReader(t *testing.T) {
	// The flip must land on the right stream offset even across small reads.
	r := CorruptReader(strings.NewReader("0123456789"), 7, 0x01)
	var got []byte
	buf := make([]byte, 3)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	want := []byte("0123456789")
	want[7] ^= 0x01
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestErrReaderAt(t *testing.T) {
	r := ErrReaderAt(strings.NewReader("0123456789"), 4, nil)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if string(got) != "0123" {
		t.Fatalf("got %q before the fault", got)
	}
	custom := errors.New("device error")
	r = ErrReaderAt(strings.NewReader("x"), 0, custom)
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, custom) {
		t.Fatalf("custom err = %v", err)
	}
}

func TestShortReaderDeterministic(t *testing.T) {
	src := strings.Repeat("abcdefgh", 100)
	read := func(seed uint64) ([]byte, []int) {
		r := ShortReader(strings.NewReader(src), seed)
		var data []byte
		var sizes []int
		buf := make([]byte, 64)
		for {
			n, err := r.Read(buf)
			data = append(data, buf[:n]...)
			if n > 0 {
				sizes = append(sizes, n)
			}
			if err != nil {
				break
			}
		}
		return data, sizes
	}
	a, sa := read(42)
	b, sb := read(42)
	if string(a) != src || string(b) != src {
		t.Fatal("ShortReader changed the byte stream")
	}
	if len(sa) != len(sb) {
		t.Fatal("same seed, different read pattern")
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed, different read pattern")
		}
		if sa[i] < 1 || sa[i] > 8 {
			t.Fatalf("read size %d out of range", sa[i])
		}
	}
}
