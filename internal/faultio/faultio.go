// Package faultio provides deterministic fault-injection wrappers around
// io.Reader and []byte, used by the robustness test matrix to simulate the
// ways measurement files and databases really break at scale: truncation
// (killed jobs), bit flips (flaky filesystems), short reads (network
// filesystems) and transient I/O errors. Every wrapper is deterministic —
// seeded, never wall-clock dependent — so a failing corruption reproduces
// byte-for-byte.
package faultio

import (
	"errors"
	"io"
)

// ErrInjected is the default error surfaced by ErrReaderAt.
var ErrInjected = errors.New("faultio: injected I/O error")

// Truncate returns a copy of data cut to n bytes (all of it when n is out
// of range).
func Truncate(data []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(data) {
		n = len(data)
	}
	return append([]byte(nil), data[:n]...)
}

// Corrupt returns a copy of data with the byte at off XORed with xor
// (which must be nonzero to actually change the byte).
func Corrupt(data []byte, off int, xor byte) []byte {
	out := append([]byte(nil), data...)
	if off >= 0 && off < len(out) {
		out[off] ^= xor
	}
	return out
}

// TruncateReader reads from r but reports io.EOF after n bytes, simulating
// a file whose tail was never written.
func TruncateReader(r io.Reader, n int64) io.Reader {
	return &truncReader{r: r, left: n}
}

type truncReader struct {
	r    io.Reader
	left int64
}

func (t *truncReader) Read(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > t.left {
		p = p[:t.left]
	}
	n, err := t.r.Read(p)
	t.left -= int64(n)
	return n, err
}

// CorruptReader passes r through but XORs the byte at stream offset off
// with xor, simulating a single flipped storage block byte.
func CorruptReader(r io.Reader, off int64, xor byte) io.Reader {
	return &corruptReader{r: r, target: off, xor: xor}
}

type corruptReader struct {
	r      io.Reader
	off    int64
	target int64
	xor    byte
}

func (c *corruptReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 && c.target >= c.off && c.target < c.off+int64(n) {
		p[c.target-c.off] ^= c.xor
	}
	c.off += int64(n)
	return n, err
}

// ErrReaderAt reads from r until off bytes have been served, then returns
// err (ErrInjected when err is nil) on every subsequent call, simulating a
// transient device error mid-file.
func ErrReaderAt(r io.Reader, off int64, err error) io.Reader {
	if err == nil {
		err = ErrInjected
	}
	return &errReader{r: r, left: off, err: err}
}

type errReader struct {
	r    io.Reader
	left int64
	err  error
}

func (e *errReader) Read(p []byte) (int, error) {
	if e.left <= 0 {
		return 0, e.err
	}
	if int64(len(p)) > e.left {
		p = p[:e.left]
	}
	n, err := e.r.Read(p)
	e.left -= int64(n)
	return n, err
}

// ShortReader delivers r's bytes in deterministically sized small reads
// (1..8 bytes, derived from seed), exercising every partial-read path in a
// parser without changing the byte stream.
func ShortReader(r io.Reader, seed uint64) io.Reader {
	return &shortReader{r: r, rng: rng{state: seed}}
}

type shortReader struct {
	r   io.Reader
	rng rng
}

func (s *shortReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return s.r.Read(p)
	}
	n := int(s.rng.next()%8) + 1
	if n > len(p) {
		n = len(p)
	}
	return s.r.Read(p[:n])
}

// rng is splitmix64: tiny, seedable and good enough for read-size jitter.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
