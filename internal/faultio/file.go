package faultio

import "os"

// The file-level injectors damage databases in place on disk, for
// live-serving chaos tests: a published file whose generation is closed or
// evicted can be truncated or scribbled to simulate storage rot between
// open and reopen. They must never be aimed at a file a live mapping still
// reads — in-place damage under an mmap is undefined behavior by design;
// the serving path's protection against torn bytes is the atomic
// publish/rename protocol, not tolerance for mutation.

// CorruptSpan returns a copy of data with n bytes starting at off XORed
// with deterministic nonzero values derived from seed. Spans beat single
// flips for coverage: one byte can land in alignment padding no checksum
// covers, a span cannot.
func CorruptSpan(data []byte, off, n int, seed uint64) []byte {
	out := append([]byte(nil), data...)
	corruptSpan(out, off, n, seed)
	return out
}

func corruptSpan(data []byte, off, n int, seed uint64) {
	r := rng{state: seed}
	for i := off; i < off+n && i < len(data); i++ {
		if i < 0 {
			continue
		}
		x := byte(r.next())
		if x == 0 {
			x = 0x5a
		}
		data[i] ^= x
	}
}

// TruncateFile cuts the file at path to n bytes in place (no-op when the
// file is already shorter), simulating a tail lost to storage failure.
func TruncateFile(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n < 0 {
		n = 0
	}
	if n >= fi.Size() {
		return nil
	}
	return os.Truncate(path, n)
}

// CorruptFileSpan XORs n bytes at off in the file at path, in place,
// with the same deterministic pattern as CorruptSpan.
func CorruptFileSpan(path string, off, n int64, seed uint64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	corruptSpan(data, int(off), int(n), seed)
	return os.WriteFile(path, data, 0o644)
}
