package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// fixtureV3At builds the merged toy experiment at a given rank count and
// serializes it in the mapped (v3) format — the payload the lifecycle tests
// publish, ingest, corrupt and truncate. Different rank counts render
// differently, which is how chaos tests tell generations apart.
var fixtureMu sync.Mutex
var fixtureByRanks = map[int][]byte{}

func fixtureV3At(t *testing.T, ranks int) []byte {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if data, ok := fixtureByRanks[ranks]; ok {
		return data
	}
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: ranks, Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := expdb.FromMerge(res).WriteBinaryV3(&buf); err != nil {
		t.Fatal(err)
	}
	fixtureByRanks[ranks] = buf.Bytes()
	return fixtureByRanks[ranks]
}

func fixtureV3(t *testing.T) []byte { return fixtureV3At(t, 2) }

// writeDB drops the fixture under the given path, atomically, as a
// published database must be written.
func writeDB(t *testing.T, path string) {
	t.Helper()
	data := fixtureV3(t)
	err := expdb.WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// render runs one session over the snapshot and returns the ls output —
// the byte-identity probe used by the lifecycle races.
func render(t *testing.T, snap *engine.Snapshot) string {
	t.Helper()
	s := engine.NewSession(snap)
	defer s.Close()
	resp := s.Do(engine.Request{Line: "ls"})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	return resp.Output
}

func TestKeyValidateAndNames(t *testing.T) {
	good := []Key{
		{Service: "s3d", Ts: 0},
		{Service: "s3d", Run: "run-1", Ts: 42},
		{Service: "a.b_c-d", Run: "x9", Ts: 7},
	}
	for _, k := range good {
		if err := k.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", k, err)
		}
		name := spoolFileName(k)
		got, ok := parseSpoolFileName(name)
		if !ok || got != k {
			t.Errorf("round-trip %v -> %q -> %v ok=%v", k, name, got, ok)
		}
	}
	bad := []Key{
		{Service: "", Ts: 0},
		{Service: "has space", Ts: 0},
		{Service: "a__b", Ts: 0},
		{Service: "ok", Run: "bad/slash", Ts: 0},
		{Service: "ok", Ts: -1},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("Validate(%v) accepted a bad key", k)
		}
	}
	for _, name := range []string{"x.txt", "a.db", "a__b__c__d.db", "a__notanumber.db"} {
		if _, ok := parseSpoolFileName(name); ok {
			t.Errorf("parseSpoolFileName(%q) accepted a non-spool name", name)
		}
	}

	ser, ts, hasTs, err := ParseName("s3d/run1@42")
	if err != nil || ser != "s3d/run1" || ts != 42 || !hasTs {
		t.Fatalf("ParseName = %q %d %v %v", ser, ts, hasTs, err)
	}
	ser, _, hasTs, err = ParseName("s3d")
	if err != nil || ser != "s3d" || hasTs {
		t.Fatalf("ParseName bare = %q %v %v", ser, hasTs, err)
	}
	if _, _, _, err := ParseName("@12"); err == nil {
		t.Fatal("ParseName accepted an empty series")
	}
	if _, _, _, err := ParseName("s3d@twelve"); err == nil {
		t.Fatal("ParseName accepted a non-numeric timestamp")
	}
}

// TestGenerationSwap is invariant 3: a republish flips what new Acquires
// see, without touching the snapshot in-flight sessions hold.
func TestGenerationSwap(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{})
	defer c.Close()
	p1 := filepath.Join(dir, "gen1.db")
	p2 := filepath.Join(dir, "gen2.db")
	writeDB(t, p1)
	writeDB(t, p2)

	if err := c.Publish(Key{Service: "s3d", Run: "r", Ts: 1}, p1); err != nil {
		t.Fatal(err)
	}
	old, key, err := c.Acquire("s3d/r")
	if err != nil {
		t.Fatal(err)
	}
	defer old.Release()
	if key.Ts != 1 {
		t.Fatalf("acquired ts %d, want 1", key.Ts)
	}
	before := render(t, old)

	// Republish: same series, newer timestamp.
	if err := c.Publish(Key{Service: "s3d", Run: "r", Ts: 2}, p2); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(Key{Service: "s3d", Run: "r", Ts: 2}, p2); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate publish: %v, want ErrDuplicate", err)
	}
	fresh, key2, err := c.Acquire("s3d/r")
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Release()
	if key2.Ts != 2 {
		t.Fatalf("post-republish acquire resolved ts %d, want 2", key2.Ts)
	}
	if fresh == old {
		t.Fatal("republish did not produce a distinct generation snapshot")
	}
	// The old generation stays addressable by explicit @ts and the session's
	// retained snapshot still renders identically.
	pinned, key3, err := c.Acquire("s3d/r@1")
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Release()
	if key3.Ts != 1 || pinned != old {
		t.Fatalf("explicit @1 acquire: key %v snap-match=%v", key3, pinned == old)
	}
	if after := render(t, old); after != before {
		t.Fatal("in-flight generation's render changed across a republish")
	}

	if _, _, err := c.Acquire("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown series: %v, want ErrNotFound", err)
	}
	if _, _, err := c.Acquire("s3d/r@99"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown generation: %v, want ErrNotFound", err)
	}
}

// TestGenerationTrim: only MaxGenerations stay resolvable; trimmed ones
// lose the catalog reference but in-flight sessions are untouched.
func TestGenerationTrim(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{MaxGenerations: 2})
	defer c.Close()
	paths := make([]string, 4)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("g%d.db", i))
		writeDB(t, paths[i])
	}
	if err := c.Publish(Key{Service: "svc", Ts: 0}, paths[0]); err != nil {
		t.Fatal(err)
	}
	held, _, err := c.Acquire("svc@0")
	if err != nil {
		t.Fatal(err)
	}
	defer held.Release()
	for i := 1; i < 4; i++ {
		if err := c.Publish(Key{Service: "svc", Ts: int64(i)}, paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	gens := c.Generations("svc")
	if len(gens) != 2 || gens[0].Ts != 2 || gens[1].Ts != 3 {
		t.Fatalf("generations after trim = %v, want ts 2,3", gens)
	}
	if _, _, err := c.Acquire("svc@0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("trimmed generation still resolvable: %v", err)
	}
	// The trimmed generation's snapshot must still be fully usable by the
	// session that holds it.
	if out := render(t, held); out == "" {
		t.Fatal("trimmed generation failed to render")
	}
}

// TestLRUEviction is invariant 2 in its steady-state form: a budget of two
// databases forces the least-recently-used open snapshot out as a third is
// opened, while acquired references keep rendering.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	size := int64(len(fixtureV3(t)))
	c := New(Config{MemBudget: 2 * size})
	defer c.Close()
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, fmt.Sprintf("svc%d.db", i))
		writeDB(t, p)
		if err := c.Publish(Key{Service: fmt.Sprintf("svc%d", i), Ts: 1}, p); err != nil {
			t.Fatal(err)
		}
	}
	s0, _, err := c.Acquire("svc0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AcquireRelease("svc1"); err != nil {
		t.Fatal(err)
	}
	// Opening svc2 exceeds the budget; svc0 — least recently used — is the
	// victim even though the caller still holds a reference: eviction only
	// drops the catalog's, so the held snapshot must keep working.
	if _, _, err := c.AcquireRelease("svc2"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under budget pressure: %+v", st)
	}
	if st.OpenBytes > 2*size {
		t.Fatalf("open bytes %d exceed budget %d", st.OpenBytes, 2*size)
	}
	if out := render(t, s0); out == "" {
		t.Fatal("held snapshot failed to render after eviction pressure")
	}

	// Re-acquiring the evicted series re-opens from disk: a distinct
	// snapshot, while the held one lives on independently.
	again, _, err := c.Acquire("svc0")
	if err != nil {
		t.Fatal(err)
	}
	if again == s0 {
		t.Fatal("re-acquire after eviction returned the evicted snapshot")
	}
	if out := render(t, again); out == "" {
		t.Fatal("re-opened snapshot failed to render")
	}
	again.Release()
	s0.Release()
	if st := c.Stats(); st.Opens < 4 {
		t.Fatalf("opens = %d, want >= 4 (3 first opens + 1 re-open)", st.Opens)
	}
}

// AcquireRelease is a test helper: resolve, touch, release immediately.
func (c *Catalog) AcquireRelease(name string) (*engine.Snapshot, Key, error) {
	snap, key, err := c.Acquire(name)
	if err != nil {
		return nil, key, err
	}
	snap.Release()
	return snap, key, nil
}

// TestResidentAccounting: resident bytes reflect true unmap, which happens
// at the LAST release — after both the catalog evicts and the holder lets
// go, in either order.
func TestResidentAccounting(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "svc.db")
	writeDB(t, p)
	c := New(Config{})
	defer c.Close()
	if err := c.Publish(Key{Service: "svc", Ts: 1}, p); err != nil {
		t.Fatal(err)
	}
	snap, _, err := c.Acquire("svc")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().ResidentBytes; got == 0 {
		t.Fatal("resident bytes zero while a snapshot is open")
	}
	c.EvictAll()
	// The catalog dropped its reference; the acquired one keeps the mapping.
	if got := c.Stats().ResidentBytes; got == 0 {
		t.Fatal("resident bytes zero while a session still holds the snapshot")
	}
	if st := c.Stats(); st.Open != 0 || st.OpenBytes != 0 {
		t.Fatalf("open accounting after EvictAll: %+v", st)
	}
	snap.Release() // last reference: unmap happens here
	if got := c.Stats().ResidentBytes; got != 0 {
		t.Fatalf("resident bytes %d after last release, want 0", got)
	}
}

func TestIngestLifecycle(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{Dir: dir})
	defer c.Close()
	data := fixtureV3(t)

	key := Key{Service: "s3d", Run: "run1", Ts: 10}
	if err := c.Ingest(key, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(key, bytes.NewReader(data)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate ingest: %v, want ErrDuplicate", err)
	}
	snap, got, err := c.Acquire("s3d/run1")
	if err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Fatalf("acquired %v, want %v", got, key)
	}
	if out := render(t, snap); out == "" {
		t.Fatal("ingested database failed to render")
	}
	snap.Release()

	// Corrupt payloads are rejected with a typed IngestError, leave no file
	// behind, and the live generation keeps serving.
	for name, mangle := range map[string]func([]byte) []byte{
		"smashed-span": func(b []byte) []byte {
			// A 256-byte XOR at midfile: single-byte flips can land in
			// alignment padding no checksum covers, a span cannot.
			bad := append([]byte(nil), b...)
			for i := len(bad) / 2; i < len(bad)/2+256 && i < len(bad); i++ {
				bad[i] ^= 0x40
			}
			return bad
		},
		"truncated": func(b []byte) []byte { return b[:len(b)/3] },
		"empty":     func(b []byte) []byte { return nil },
	} {
		bad := mangle(data)
		err := c.Ingest(Key{Service: "s3d", Run: "run1", Ts: 11}, bytes.NewReader(bad))
		var ie *IngestError
		if !errors.As(err, &ie) {
			t.Fatalf("%s: ingest error = %v, want IngestError", name, err)
		}
		if _, serr := os.Stat(filepath.Join(dir, spoolFileName(Key{Service: "s3d", Run: "run1", Ts: 11}))); !os.IsNotExist(serr) {
			t.Fatalf("%s: rejected ingest left a file behind", name)
		}
		if _, k, aerr := c.AcquireRelease("s3d/run1"); aerr != nil || k != key {
			t.Fatalf("%s: live generation damaged by rejected ingest: %v %v", name, k, aerr)
		}
	}
	st := c.Stats()
	if st.Ingested != 1 || st.IngestErrors != 3 {
		t.Fatalf("ingest counters = %d/%d, want 1/3", st.Ingested, st.IngestErrors)
	}

	// Restart: a fresh catalog over the same directory reloads the
	// published generation.
	c2 := New(Config{Dir: dir})
	defer c2.Close()
	n, err := c2.LoadDir()
	if err != nil || n != 1 {
		t.Fatalf("LoadDir = %d, %v, want 1", n, err)
	}
	if _, k, err := c2.AcquireRelease("s3d/run1"); err != nil || k != key {
		t.Fatalf("reloaded catalog: %v %v", k, err)
	}
}

func TestScanSpool(t *testing.T) {
	spool := t.TempDir()
	c := New(Config{Dir: t.TempDir()})
	defer c.Close()
	data := fixtureV3(t)

	good := filepath.Join(spool, "svc__run__5.db")
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(spool, "svc__run__6.db")
	mangled := append([]byte(nil), data...)
	for i := len(mangled) / 2; i < len(mangled)/2+256 && i < len(mangled); i++ {
		mangled[i] ^= 0x01
	}
	if err := os.WriteFile(bad, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	// Stranger files are ignored, not eaten.
	stranger := filepath.Join(spool, "notes.txt")
	if err := os.WriteFile(stranger, []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	n, err := c.ScanSpool(spool)
	if n != 1 {
		t.Fatalf("ScanSpool ingested %d, want 1", n)
	}
	if err == nil {
		t.Fatal("ScanSpool swallowed the corrupt file's error")
	}
	if _, serr := os.Stat(good); !os.IsNotExist(serr) {
		t.Fatal("ingested spool file was not removed")
	}
	if _, serr := os.Stat(bad + ".bad"); serr != nil {
		t.Fatal("corrupt spool file was not quarantined as .bad")
	}
	if _, serr := os.Stat(stranger); serr != nil {
		t.Fatal("stranger file disappeared from the spool")
	}
	if _, _, err := c.AcquireRelease("svc/run@5"); err != nil {
		t.Fatal(err)
	}
	// A second scan is a no-op: the .bad file no longer parses as a spool name.
	if n, _ := c.ScanSpool(spool); n != 0 {
		t.Fatalf("second scan ingested %d, want 0", n)
	}
}

func TestPinAndClose(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "svc.db")
	writeDB(t, p)
	snap, err := engine.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{MemBudget: 1}) // absurd budget: pins must survive it anyway
	if err := c.Pin("before", snap); err != nil {
		t.Fatal(err)
	}
	snap.Release() // catalog's pin keeps it alive
	if err := c.Pin("before", snap); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate pin: %v, want ErrDuplicate", err)
	}
	if err := c.Pin("x@3", snap); err == nil {
		t.Fatal("pin with @ts accepted")
	}
	got, _, err := c.Acquire("before")
	if err != nil {
		t.Fatal(err)
	}
	if got != snap {
		t.Fatal("pinned acquire returned a different snapshot")
	}
	if out := render(t, got); out == "" {
		t.Fatal("pinned snapshot failed to render")
	}
	got.Release()
	c.EvictAll() // must not touch pins
	if _, _, err := c.AcquireRelease("before"); err != nil {
		t.Fatalf("pin evicted by EvictAll: %v", err)
	}
	c.Close()
	if _, _, err := c.Acquire("before"); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: %v, want ErrClosed", err)
	}
	if err := c.Publish(Key{Service: "x", Ts: 0}, p); !errors.Is(err, ErrClosed) {
		t.Fatalf("publish after close: %v, want ErrClosed", err)
	}
	if err := c.Ingest(Key{Service: "x", Ts: 0}, bytes.NewReader(nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: %v, want ErrClosed", err)
	}
	c.Close() // idempotent
}

// TestOpenErrorTyped: a generation whose backing file is damaged after
// publish (the validate-at-ingest gate was bypassed) surfaces a typed
// OpenError at Acquire, and the catalog caches nothing for it.
func TestOpenErrorTyped(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "svc.db")
	data := fixtureV3(t)
	mangled := append([]byte(nil), data...)
	// Smash the index region so the open itself fails.
	copy(mangled[8:], []byte("garbage!"))
	if err := os.WriteFile(p, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	defer c.Close()
	if err := c.Publish(Key{Service: "svc", Ts: 1}, p); err != nil {
		t.Fatal(err)
	}
	_, _, err := c.Acquire("svc")
	var oe *OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("acquire over damaged file: %v, want OpenError", err)
	}
	if st := c.Stats(); st.Open != 0 {
		t.Fatalf("damaged generation counted as open: %+v", st)
	}
	// Repair the file on disk; the next acquire succeeds.
	writeDB(t, p)
	snap, _, err := c.Acquire("svc")
	if err != nil {
		t.Fatalf("acquire after repair: %v", err)
	}
	snap.Release()
}

// TestPublishOutOfOrderKeepsNewest: "latest" is a timestamp promise, not an
// arrival-order one. A generation published late (out-of-order spool
// delivery, or LoadDir's lexicographic scan putting "1000" before "999")
// must slot in behind the newer one, and history trims by timestamp.
func TestPublishOutOfOrderKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{MaxGenerations: 2})
	defer c.Close()
	paths := map[int64]string{}
	for _, ts := range []int64{999, 1000, 998} {
		p := filepath.Join(dir, fmt.Sprintf("g%d.db", ts))
		writeDB(t, p)
		paths[ts] = p
	}
	if err := c.Publish(Key{Service: "svc", Ts: 1000}, paths[1000]); err != nil {
		t.Fatal(err)
	}
	// Late arrival of an older run must not displace ts=1000 from "latest".
	if err := c.Publish(Key{Service: "svc", Ts: 999}, paths[999]); err != nil {
		t.Fatal(err)
	}
	if _, k, err := c.AcquireRelease("svc"); err != nil || k.Ts != 1000 {
		t.Fatalf("after late publish, latest = %v (%v), want ts 1000", k, err)
	}
	if gens := c.Generations("svc"); len(gens) != 2 || gens[0].Ts != 999 || gens[1].Ts != 1000 {
		t.Fatalf("generations = %v, want ascending ts 999,1000", gens)
	}
	// An even older straggler overflows MaxGenerations and must be the one
	// trimmed — by timestamp, not by arrival.
	if err := c.Publish(Key{Service: "svc", Ts: 998}, paths[998]); err != nil {
		t.Fatal(err)
	}
	if gens := c.Generations("svc"); len(gens) != 2 || gens[0].Ts != 999 || gens[1].Ts != 1000 {
		t.Fatalf("generations after straggler = %v, want ts 999,1000", gens)
	}
	if _, k, err := c.AcquireRelease("svc"); err != nil || k.Ts != 1000 {
		t.Fatalf("latest after straggler = %v (%v), want ts 1000", k, err)
	}
}

// TestLoadDirOutOfOrderTimestamps: mixed-width timestamps make os.ReadDir's
// lexicographic order disagree with numeric order ("svc__1000.db" sorts
// before "svc__999.db"); a restart must still resolve the numerically
// newest generation.
func TestLoadDirOutOfOrderTimestamps(t *testing.T) {
	dir := t.TempDir()
	for _, ts := range []int64{999, 1000} {
		writeDB(t, filepath.Join(dir, fmt.Sprintf("svc__%d.db", ts)))
	}
	c := New(Config{Dir: dir})
	defer c.Close()
	n, err := c.LoadDir()
	if err != nil || n != 2 {
		t.Fatalf("LoadDir = %d, %v", n, err)
	}
	if _, k, err := c.AcquireRelease("svc"); err != nil || k.Ts != 1000 {
		t.Fatalf("latest after LoadDir = %v (%v), want ts 1000", k, err)
	}
}

// TestTrimSkipsPinnedHead: a pinned entry sitting at the head of a series
// is not history — trimming must skip it and keep shedding the unpinned
// tail instead of wedging and accumulating generations unboundedly.
func TestTrimSkipsPinnedHead(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "pin.db")
	writeDB(t, p)
	snap, err := engine.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	c := New(Config{MaxGenerations: 2})
	defer c.Close()
	if err := c.Pin("svc", snap); err != nil {
		t.Fatal(err)
	}
	for ts := int64(1); ts <= 5; ts++ {
		gp := filepath.Join(dir, fmt.Sprintf("g%d.db", ts))
		writeDB(t, gp)
		if err := c.Publish(Key{Service: "svc", Ts: ts}, gp); err != nil {
			t.Fatal(err)
		}
	}
	gens := c.Generations("svc")
	if len(gens) != 3 || gens[0].Ts != 0 || gens[1].Ts != 4 || gens[2].Ts != 5 {
		t.Fatalf("generations = %v, want pinned ts 0 + unpinned ts 4,5", gens)
	}
	// The pin survives and still resolves; the series' latest is the newest
	// unpinned publish.
	if got, _, err := c.AcquireRelease("svc@0"); err != nil || got != snap {
		t.Fatalf("pinned acquire = %v (%v), want the pinned snapshot", got, err)
	}
	if _, k, err := c.AcquireRelease("svc"); err != nil || k.Ts != 5 {
		t.Fatalf("latest = %v (%v), want ts 5", k, err)
	}
}

// TestConcurrentIngestSameKey: two ingests of one key race; exactly one
// publishes, the losers get ErrDuplicate, and — the destructive half of
// the old race — the losers must not have replaced or deleted the file
// backing the winner's published generation.
func TestConcurrentIngestSameKey(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{Dir: dir})
	defer c.Close()
	data := fixtureV3(t)
	key := Key{Service: "svc", Ts: 7}

	const racers = 8
	errs := make(chan error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- c.Ingest(key, bytes.NewReader(data))
		}()
	}
	wg.Wait()
	close(errs)
	won, dups := 0, 0
	for err := range errs {
		switch {
		case err == nil:
			won++
		case errors.Is(err, ErrDuplicate):
			dups++
		default:
			t.Fatalf("concurrent ingest: %v", err)
		}
	}
	if won != 1 || dups != racers-1 {
		t.Fatalf("outcomes = %d published, %d duplicates, want 1/%d", won, dups, racers-1)
	}
	// The published generation must still open — its backing file intact,
	// not deleted or replaced by a losing racer's cleanup.
	snap, k, err := c.Acquire("svc")
	if err != nil || k != key {
		t.Fatalf("acquire after race = %v (%v)", k, err)
	}
	if out := render(t, snap); out == "" {
		t.Fatal("post-race generation failed to render")
	}
	snap.Release()
	if err := ValidateFile(filepath.Join(dir, spoolFileName(key))); err != nil {
		t.Fatalf("published file damaged by losing racer: %v", err)
	}
	if st := c.Stats(); st.Ingested != 1 || st.IngestErrors != 0 {
		t.Fatalf("stats after race = %+v, want 1 ingested, 0 errors", st)
	}
}
