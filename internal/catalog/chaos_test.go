package catalog

// Live-serving chaos: these tests drive the catalog's full lifecycle —
// republish, eviction, on-disk rot, rejection sweeps — under concurrent
// query load, and are the core of `make chaos` (which runs them under
// -race). The invariants they enforce are the package's three: never a
// torn database, never an unmap under a reader, generations swap
// atomically.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultio"
)

// TestChaosLifecycleUnderLoad is the headline race: 8 query workers
// acquire, render and release across 3 series while a republisher swaps
// every series to a new generation mid-flight and an evictor strips the
// catalog's references. Every render must be byte-identical to the
// reference render for the generation the worker actually acquired — a
// worker holding ts=1 must never observe ts=2 bytes or a torn mix — and
// when the last reference drops, resident accounting must hit zero: the
// munmap happened at last release, not at eviction.
func TestChaosLifecycleUnderLoad(t *testing.T) {
	dir := t.TempDir()
	genA := fixtureV3At(t, 2)
	genB := fixtureV3At(t, 3)
	if bytes.Equal(genA, genB) {
		t.Fatal("fixture variants are identical; the swap test would prove nothing")
	}

	const nSeries = 3
	// A budget of ~1.5 databases over 3 series keeps eviction constantly
	// active while queries run.
	c := New(Config{Dir: dir, MemBudget: int64(len(genA)) * 3 / 2})
	defer c.Close()

	writeVariant := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	for i := 0; i < nSeries; i++ {
		p := writeVariant(fmt.Sprintf("seed%d.db", i), genA)
		if err := c.Publish(Key{Service: fmt.Sprintf("svc%d", i), Ts: 1}, p); err != nil {
			t.Fatal(err)
		}
	}

	// Reference renders, one per generation, computed in isolation.
	wantByTs := map[int64]string{}
	for ts, data := range map[int64][]byte{1: genA, 2: genB} {
		p := writeVariant(fmt.Sprintf("ref%d.db", ts), data)
		snap, err := engine.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		wantByTs[ts] = render(t, snap)
		snap.Release()
	}
	if wantByTs[1] == wantByTs[2] {
		t.Fatal("generation renders are indistinguishable")
	}

	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	errc := make(chan error, workers+2)
	start := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("svc%d", (w+i)%nSeries)
				snap, key, err := c.Acquire(name)
				if err != nil {
					errc <- fmt.Errorf("worker %d: acquire %s: %w", w, name, err)
					return
				}
				want, ok := wantByTs[key.Ts]
				if !ok {
					snap.Release()
					errc <- fmt.Errorf("worker %d: acquired unexpected generation %s", w, key)
					return
				}
				s := engine.NewSession(snap)
				resp := s.Do(engine.Request{Line: "ls"})
				s.Close()
				snap.Release()
				if resp.Err != "" {
					errc <- fmt.Errorf("worker %d: render %s: %s", w, key, resp.Err)
					return
				}
				if resp.Output != want {
					errc <- fmt.Errorf("worker %d: render of %s diverged from its generation's reference", w, key)
					return
				}
			}
		}(w)
	}

	// The republisher swaps every series to generation B while queries run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < nSeries; i++ {
			p := writeVariant(fmt.Sprintf("swap%d.db", i), genB)
			if err := c.Publish(Key{Service: fmt.Sprintf("svc%d", i), Ts: 2}, p); err != nil {
				errc <- fmt.Errorf("republish svc%d: %w", i, err)
				return
			}
		}
	}()

	// The evictor strips catalog references repeatedly; sessions holding
	// acquired snapshots must be unaffected.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 20; i++ {
			c.EvictAll()
		}
	}()

	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	st := c.Stats()
	if st.Opens == 0 {
		t.Fatal("chaos run opened nothing")
	}
	// All references are gone: dropping the catalog's own must take
	// resident bytes to zero — the mmaps were held exactly as long as a
	// reader existed, no longer.
	c.EvictAll()
	if got := c.Stats().ResidentBytes; got != 0 {
		t.Fatalf("resident bytes %d after last release, want 0 (leaked mapping)", got)
	}
	t.Logf("chaos stats: %+v", st)
}

// TestChaosIngestRejectionSweep replays the faultio damage matrix against
// the ingest gate: truncations at many depths and corruption spans at many
// offsets must all be rejected with a typed IngestError, leave no file in
// the catalog directory, and never disturb the series' live generation.
func TestChaosIngestRejectionSweep(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{Dir: dir})
	defer c.Close()
	data := fixtureV3(t)

	good := Key{Service: "svc", Run: "r", Ts: 1}
	if err := c.Ingest(good, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}

	var payloads []struct {
		name string
		data []byte
	}
	for _, frac := range []int{0, 1, 8, 2} { // empty, 1/1, cut at 1/8 and 1/2
		n := 0
		if frac > 0 {
			n = len(data) / frac
		}
		if n == len(data) {
			continue
		}
		payloads = append(payloads, struct {
			name string
			data []byte
		}{fmt.Sprintf("truncated-to-%d", n), faultio.Truncate(data, n)})
	}
	for i, off := range []int{16, len(data) / 4, len(data) / 2, 3 * len(data) / 4, len(data) - 300} {
		payloads = append(payloads, struct {
			name string
			data []byte
		}{fmt.Sprintf("corrupt-span-at-%d", off), faultio.CorruptSpan(data, off, 256, uint64(i+1))})
	}

	rejected := 0
	for i, p := range payloads {
		key := Key{Service: "svc", Run: "r", Ts: int64(100 + i)}
		err := c.Ingest(key, bytes.NewReader(p.data))
		var ie *IngestError
		if !errors.As(err, &ie) {
			t.Errorf("%s: err = %v, want IngestError", p.name, err)
			continue
		}
		rejected++
		if _, serr := os.Stat(filepath.Join(dir, spoolFileName(key))); !os.IsNotExist(serr) {
			t.Errorf("%s: rejected ingest left a file", p.name)
		}
	}
	if rejected != len(payloads) {
		t.Fatalf("rejected %d/%d damaged payloads", rejected, len(payloads))
	}
	// The live generation is untouched by the whole sweep.
	snap, key, err := c.Acquire("svc/r")
	if err != nil || key != good {
		t.Fatalf("live generation after sweep: %v %v", key, err)
	}
	if out := render(t, snap); out == "" {
		t.Fatal("live generation failed to render after sweep")
	}
	snap.Release()
	if st := c.Stats(); st.IngestErrors != uint64(len(payloads)) || st.Generations != 1 {
		t.Fatalf("stats after sweep: %+v", st)
	}
}

// TestChaosRotAfterEviction damages a published file on disk after its
// generation is evicted AND the last reader has released — the only safe
// moment for in-place damage, because a live mmap of the inode would make
// truncation undefined behavior (that hazard is exactly why the publish
// protocol forbids rewriting published files). The next Acquire must fail
// with a typed OpenError, and a healthy republish must restore service.
func TestChaosRotAfterEviction(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{Dir: dir})
	defer c.Close()
	data := fixtureV3(t)
	path := filepath.Join(dir, "svc__1.db")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(Key{Service: "svc", Ts: 1}, path); err != nil {
		t.Fatal(err)
	}
	held, _, err := c.Acquire("svc")
	if err != nil {
		t.Fatal(err)
	}
	before := render(t, held)
	held.Release()

	// Evict (drops the last reference, unmapping the file), then rot it:
	// truncate to half and scribble the head.
	c.EvictAll()
	if got := c.Stats().ResidentBytes; got != 0 {
		t.Fatalf("mapping still resident (%d bytes); rotting now would be UB", got)
	}
	if err := faultio.TruncateFile(path, int64(len(data))/2); err != nil {
		t.Fatal(err)
	}
	if err := faultio.CorruptFileSpan(path, 8, 64, 7); err != nil {
		t.Fatal(err)
	}

	_, _, err = c.Acquire("svc")
	var oe *OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("acquire over rotted file: %v, want OpenError", err)
	}

	// A healthy republish under a new timestamp restores service.
	p2 := filepath.Join(dir, "svc__2.db")
	if err := os.WriteFile(p2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(Key{Service: "svc", Ts: 2}, p2); err != nil {
		t.Fatal(err)
	}
	snap, key, err := c.Acquire("svc")
	if err != nil || key.Ts != 2 {
		t.Fatalf("acquire after republish: %v %v", key, err)
	}
	if out := render(t, snap); out != before {
		t.Fatal("republished generation renders differently from the original data")
	}
	snap.Release()
}
