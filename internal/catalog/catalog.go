// Package catalog is the lifecycle layer between storage and serving: a
// multi-tenant registry of experiment databases that one hpcserver process
// serves to thousands of sessions. Where the presentation engine made many
// sessions over one immutable snapshot safe (PR 5) and the v3 layout made
// opening a database O(index) (PR 7), the catalog supplies what neither
// has — time: databases arrive (ingest, spool), get opened on demand under
// a memory budget (LRU eviction), are superseded by newer runs (atomic
// generation swap) and disappear — all while queries are in flight.
//
// Invariants, in decreasing order of importance:
//
//  1. Never serve a torn database. Every file the catalog publishes was
//     written via temp file + fsync + rename (expdb.WriteFileAtomic) and
//     validated — full checksum sweep — before it became resolvable. A
//     published file is immutable: replacing a generation means publishing
//     a new file under a new timestamp, never rewriting bytes a live
//     mapping could see.
//
//  2. Never unmap under a reader. The catalog holds one reference on each
//     open snapshot (engine.Snapshot.Retain/Release); Acquire hands the
//     caller its own reference, taken under the catalog lock, so eviction
//     can never race a lookup. Eviction only drops the catalog's
//     reference — the munmap happens at whatever point the last session
//     releases, which the resident-bytes stat observes via OnLastRelease.
//
//  3. Generations swap atomically. A series (service, run) resolves to its
//     latest published generation at Acquire time; sessions keep the
//     snapshot they acquired for their whole life (the engine refcounts),
//     so a republish flips what *new* sessions see without touching
//     in-flight ones.
package catalog

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// Key identifies one published database generation: a series (service,
// run) plus a timestamp that orders generations within the series. Run may
// be empty for single-run services ("after" as a bare diff target).
type Key struct {
	Service string
	Run     string
	Ts      int64
}

// Series names the (service, run) pair the key belongs to.
func (k Key) Series() string {
	if k.Run == "" {
		return k.Service
	}
	return k.Service + "/" + k.Run
}

// String renders the fully-qualified generation name, "service/run@ts".
func (k Key) String() string { return fmt.Sprintf("%s@%d", k.Series(), k.Ts) }

// Validate rejects keys whose parts could not round-trip through names,
// file names or URLs.
func (k Key) Validate() error {
	if err := validPart(k.Service); err != nil {
		return fmt.Errorf("catalog: bad service %q: %w", k.Service, err)
	}
	if k.Run != "" {
		if err := validPart(k.Run); err != nil {
			return fmt.Errorf("catalog: bad run %q: %w", k.Run, err)
		}
	}
	if k.Ts < 0 {
		return fmt.Errorf("catalog: negative timestamp %d", k.Ts)
	}
	return nil
}

func validPart(s string) error {
	if s == "" {
		return errors.New("empty")
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
		default:
			return fmt.Errorf("character %q not allowed (want [A-Za-z0-9._-])", r)
		}
	}
	if strings.Contains(s, "__") {
		return errors.New("double underscore is the spool filename separator")
	}
	return nil
}

// ParseName splits a catalog name — "service", "service/run" or either
// with a trailing "@ts" — into its series and optional timestamp.
func ParseName(name string) (series string, ts int64, hasTs bool, err error) {
	series = name
	if at := strings.LastIndexByte(name, '@'); at >= 0 {
		series = name[:at]
		ts, err = strconv.ParseInt(name[at+1:], 10, 64)
		if err != nil {
			return "", 0, false, fmt.Errorf("catalog: bad timestamp in %q: %w", name, err)
		}
		hasTs = true
	}
	if series == "" {
		return "", 0, false, fmt.Errorf("catalog: empty series in %q", name)
	}
	return series, ts, hasTs, nil
}

// Sentinel and typed errors. Acquire and Ingest wrap causes so frontends
// can map them onto transport status codes without string matching.
var (
	// ErrNotFound reports an unknown series or generation.
	ErrNotFound = errors.New("catalog: not found")
	// ErrDuplicate reports a publish for a (series, ts) that already exists.
	ErrDuplicate = errors.New("catalog: generation already published")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("catalog: closed")
)

// OpenError reports that a published generation failed to open or
// validate — the serving-time face of on-disk damage.
type OpenError struct {
	Key Key
	Err error
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("catalog: opening %s: %v", e.Key, e.Err)
}
func (e *OpenError) Unwrap() error { return e.Err }

// IngestError reports a rejected ingest (torn, corrupt or unreadable
// payload). The database was NOT published.
type IngestError struct {
	Key Key
	Err error
}

func (e *IngestError) Error() string {
	return fmt.Sprintf("catalog: ingest %s rejected: %v", e.Key, e.Err)
}
func (e *IngestError) Unwrap() error { return e.Err }

// Config shapes a catalog.
type Config struct {
	// Dir is where ingested databases are stored. Required for Ingest and
	// the spool watcher; a publish-only catalog may leave it empty.
	Dir string
	// MemBudget bounds the total size (bytes on disk, a proxy for mapped
	// resident ceiling) of snapshots the catalog keeps open; 0 = unbounded.
	// The budget is enforced by LRU eviction after each open — a single
	// database larger than the budget still serves, and pinned snapshots
	// never evict.
	MemBudget int64
	// MaxGenerations bounds how many generations per series stay
	// resolvable; older ones are dropped at publish. Default 3.
	MaxGenerations int
	// Logf, when set, receives operational messages (spool quarantines,
	// eviction decisions). Never required for correctness.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time counters snapshot, JSON-ready for /v1/stats.
type Stats struct {
	Series        int   `json:"series"`
	Generations   int   `json:"generations"`
	Open          int   `json:"open_snapshots"`
	OpenBytes     int64 `json:"open_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
	MemBudget     int64 `json:"mem_budget"`

	Opens        uint64 `json:"opens"`
	Evictions    uint64 `json:"evictions"`
	Published    uint64 `json:"published"`
	Ingested     uint64 `json:"ingested"`
	IngestErrors uint64 `json:"ingest_errors"`
}

// generation is one published database file (or pinned snapshot).
type generation struct {
	key    Key
	seq    uint64 // global publish order, tie-break within equal Ts
	path   string // "" for pinned snapshots
	size   int64
	pinned bool

	// snap is non-nil while the catalog holds a reference (open or
	// pinned). lastUse is the LRU clock tick of the latest Acquire.
	snap    *engine.Snapshot
	lastUse uint64
	// opening is non-nil while one goroutine opens the file; others wait
	// on it instead of duplicating the open.
	opening chan struct{}
	// dead marks a generation dropped from its series while an open was in
	// flight; the open's result is handed to callers but never cached.
	dead bool
}

// series is one (service, run) line of generations, ascending publish order.
type series struct {
	name string
	gens []*generation
}

// Catalog is safe for concurrent use by any number of goroutines.
type Catalog struct {
	cfg Config

	mu     sync.Mutex
	byName map[string]*series
	clock  uint64 // LRU ticks
	seq    uint64 // publish sequence
	closed bool
	// reserving holds keys whose ingest is between its duplicate check and
	// its publish, so two concurrent ingests of one key cannot both write
	// the canonical path (the loser's rename would replace the winner's
	// published — immutable! — file).
	reserving map[Key]bool

	openCount int
	openBytes int64

	opens        uint64
	evictions    uint64
	published    uint64
	ingested     uint64
	ingestErrors uint64

	// residentBytes tracks bytes still actually resident (mapped or heap
	// approximation): incremented at open, decremented by each snapshot's
	// OnLastRelease hook — which may fire long after eviction, when the
	// last session releases. Atomic because the hook runs outside mu.
	residentBytes atomic.Int64

	// measureMu guards measures, the per-generation total-cost memo behind
	// Pick. Separate from mu: measuring acquires generations.
	measureMu sync.Mutex
	measures  map[Key]float64
}

// New creates a catalog.
func New(cfg Config) *Catalog {
	if cfg.MaxGenerations <= 0 {
		cfg.MaxGenerations = 3
	}
	return &Catalog{cfg: cfg, byName: map[string]*series{}, reserving: map[Key]bool{}}
}

func (c *Catalog) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Publish registers an existing database file as the newest generation of
// its series. The file must already be complete and durable (written via
// expdb.WriteFileAtomic); Publish does not validate its contents — Ingest
// does, and Acquire surfaces a typed OpenError for damaged files. Publish
// is the atomic swap: once it returns, new Acquires of the series resolve
// to this generation, while snapshots handed out earlier are untouched.
func (c *Catalog) Publish(key Key, path string) error {
	if err := key.Validate(); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("catalog: publish %s: %w", key, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.publishLocked(key, path, fi.Size(), nil)
}

// Pin registers an already-open snapshot under a series name, outside the
// eviction and generation lifecycle: pinned snapshots never evict and have
// no backing path. This is how static `-compare name=path` entries and the
// default database join the catalog. The catalog takes its own reference.
func (c *Catalog) Pin(name string, snap *engine.Snapshot) error {
	ser, ts, hasTs, err := ParseName(name)
	if err != nil {
		return err
	}
	if hasTs {
		return fmt.Errorf("catalog: pin %q: pinned names cannot carry @ts", name)
	}
	key := Key{Service: ser, Ts: ts}
	if i := strings.IndexByte(ser, '/'); i >= 0 {
		key = Key{Service: ser[:i], Run: ser[i+1:], Ts: ts}
	}
	if err := key.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.publishLocked(key, "", int64(len(snap.MappedBytes())), snap)
}

// publishLocked inserts a generation; pinned when snap != nil.
func (c *Catalog) publishLocked(key Key, path string, size int64, snap *engine.Snapshot) error {
	s := c.byName[key.Series()]
	if s == nil {
		s = &series{name: key.Series()}
		c.byName[s.name] = s
	}
	for _, g := range s.gens {
		if g.key.Ts == key.Ts {
			return fmt.Errorf("%w: %s", ErrDuplicate, key)
		}
	}
	c.seq++
	g := &generation{key: key, seq: c.seq, path: path, size: size}
	if snap != nil {
		snap.Retain()
		g.snap = snap
		g.pinned = true
		c.openCount++
		c.openBytes += size
	}
	// Insert in ascending (Ts, seq) order, not arrival order: "latest" is a
	// timestamp promise, so a generation arriving late (out-of-order spool
	// delivery, LoadDir's lexicographic scan of mixed-width timestamps)
	// must not displace a newer one from resolveLocked's gens[len-1].
	i := len(s.gens)
	for i > 0 && s.gens[i-1].key.Ts > key.Ts {
		i--
	}
	s.gens = append(s.gens, nil)
	copy(s.gens[i+1:], s.gens[i:])
	s.gens[i] = g
	c.published++
	// Trim history: only the newest MaxGenerations unpinned generations
	// stay resolvable. Pinned entries are not history — they are skipped
	// (never trimmed) and don't count against the budget, so a series whose
	// oldest entry is pinned still sheds its unpinned tail. The trimmed
	// generations' snapshots (if open) lose the catalog reference; sessions
	// still holding them are unaffected.
	unpinned := 0
	for _, g := range s.gens {
		if !g.pinned {
			unpinned++
		}
	}
	for i := 0; unpinned > c.cfg.MaxGenerations && i < len(s.gens); {
		if s.gens[i].pinned {
			i++
			continue
		}
		old := s.gens[i]
		s.gens = append(s.gens[:i], s.gens[i+1:]...)
		c.dropLocked(old)
		unpinned--
	}
	return nil
}

// dropLocked releases the catalog's reference on a generation leaving the
// resolvable set (trim or eviction) and marks it dead for any in-flight
// open.
func (c *Catalog) dropLocked(g *generation) {
	g.dead = true
	if g.snap != nil {
		c.openCount--
		c.openBytes -= g.size
		snap := g.snap
		g.snap = nil
		// Release may unmap right here (no sessions) — the OnLastRelease
		// hook only touches atomics, so holding mu is fine.
		_ = snap.Release()
	}
}

// resolveLocked finds the generation a name refers to: the series' newest,
// or the one matching an explicit @ts.
func (c *Catalog) resolveLocked(seriesName string, ts int64, hasTs bool) *generation {
	s := c.byName[seriesName]
	if s == nil || len(s.gens) == 0 {
		return nil
	}
	if !hasTs {
		return s.gens[len(s.gens)-1]
	}
	for i := len(s.gens) - 1; i >= 0; i-- {
		if s.gens[i].key.Ts == ts {
			return s.gens[i]
		}
	}
	return nil
}

// Acquire resolves a name ("service/run", optionally "@ts") to an open
// snapshot, opening the backing file if needed (possibly evicting others
// to stay under the memory budget) and returning it with one reference
// retained for the caller, who must Release it. The retain happens under
// the catalog lock: eviction can never unmap a snapshot between resolution
// and the caller's retain.
func (c *Catalog) Acquire(name string) (*engine.Snapshot, Key, error) {
	seriesName, ts, hasTs, err := ParseName(name)
	if err != nil {
		return nil, Key{}, err
	}
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, Key{}, ErrClosed
		}
		g := c.resolveLocked(seriesName, ts, hasTs)
		if g == nil {
			c.mu.Unlock()
			return nil, Key{}, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		if g.snap != nil {
			c.clock++
			g.lastUse = c.clock
			snap := g.snap
			snap.Retain()
			key := g.key
			c.mu.Unlock()
			return snap, key, nil
		}
		if ch := g.opening; ch != nil {
			// Someone else is opening this generation; wait and re-resolve
			// (the open may fail, or the series may republish meanwhile).
			c.mu.Unlock()
			<-ch
			c.mu.Lock()
			continue
		}
		g.opening = make(chan struct{})
		c.mu.Unlock()
		snap, err := c.open(g)
		c.mu.Lock()
		close(g.opening)
		g.opening = nil
		if err != nil {
			c.mu.Unlock()
			return nil, Key{}, &OpenError{Key: g.key, Err: err}
		}
		if g.dead || c.closed {
			// The generation left the resolvable set while opening. Serve
			// the caller (the bytes were valid) but cache nothing: the
			// caller's release closes the mapping.
			key := g.key
			c.mu.Unlock()
			return snap, key, nil
		}
		c.installLocked(g, snap)
		c.clock++
		g.lastUse = c.clock
		snap.Retain() // caller's reference, on top of the catalog's
		key := g.key
		c.evictLocked(g)
		c.mu.Unlock()
		return snap, key, nil
	}
}

// open opens one generation's file outside the lock and wires resident
// accounting to the snapshot's true unmap point.
func (c *Catalog) open(g *generation) (*engine.Snapshot, error) {
	snap, err := engine.Open(g.path)
	if err != nil {
		return nil, err
	}
	size := g.size
	c.residentBytes.Add(size)
	snap.OnLastRelease(func() { c.residentBytes.Add(-size) })
	return snap, nil
}

// installLocked records an open snapshot as the catalog's reference.
func (c *Catalog) installLocked(g *generation, snap *engine.Snapshot) {
	g.snap = snap
	c.openCount++
	c.openBytes += g.size
	c.opens++
}

// evictLocked drops least-recently-used open snapshots until the open set
// fits the budget. keep (the generation just acquired) and pinned entries
// are exempt; a single oversized database therefore still serves.
func (c *Catalog) evictLocked(keep *generation) {
	if c.cfg.MemBudget <= 0 {
		return
	}
	for c.openBytes > c.cfg.MemBudget {
		var victim *generation
		for _, s := range c.byName {
			for _, g := range s.gens {
				if g.snap == nil || g.pinned || g == keep {
					continue
				}
				if victim == nil || g.lastUse < victim.lastUse {
					victim = g
				}
			}
		}
		if victim == nil {
			return
		}
		c.evictions++
		c.logf("catalog: evicting %s (%d bytes, open %d over budget %d)",
			victim.key, victim.size, c.openBytes, c.cfg.MemBudget)
		c.openCount--
		c.openBytes -= victim.size
		snap := victim.snap
		victim.snap = nil
		_ = snap.Release()
	}
}

// EvictAll drops the catalog's reference on every open, unpinned snapshot —
// the drain path, and a chaos lever. Sessions keep theirs.
func (c *Catalog) EvictAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.byName {
		for _, g := range s.gens {
			if g.snap == nil || g.pinned {
				continue
			}
			c.evictions++
			c.openCount--
			c.openBytes -= g.size
			snap := g.snap
			g.snap = nil
			_ = snap.Release()
		}
	}
}

// Close evicts everything — including pinned snapshots' catalog
// references — and refuses further use.
func (c *Catalog) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, s := range c.byName {
		for _, g := range s.gens {
			if g.snap == nil {
				continue
			}
			c.openCount--
			c.openBytes -= g.size
			snap := g.snap
			g.snap = nil
			_ = snap.Release()
		}
	}
}

// Names lists every resolvable series, sorted — the engine.Catalog
// vocabulary sessions see in the `catalog` command.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.byName))
	for name, s := range c.byName {
		if len(s.gens) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Generations lists a series' resolvable generation keys, oldest first.
func (c *Catalog) Generations(seriesName string) []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.byName[seriesName]
	if s == nil {
		return nil
	}
	keys := make([]Key, len(s.gens))
	for i, g := range s.gens {
		keys[i] = g.key
	}
	return keys
}

// Stats reports the catalog's counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Series:        len(c.byName),
		Open:          c.openCount,
		OpenBytes:     c.openBytes,
		ResidentBytes: c.residentBytes.Load(),
		MemBudget:     c.cfg.MemBudget,
		Opens:         c.opens,
		Evictions:     c.evictions,
		Published:     c.published,
		Ingested:      c.ingested,
		IngestErrors:  c.ingestErrors,
	}
	for _, s := range c.byName {
		st.Generations += len(s.gens)
	}
	return st
}
