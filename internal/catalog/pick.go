package catalog

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadStrategy reports an unrecognized Pick strategy.
var ErrBadStrategy = errors.New("catalog: unknown pick strategy")

// Pick selects one generation of a series by a data-driven strategy —
// the answer to "which of this service's runs should I look at":
//
//   - "latest" (or ""): the newest generation, same as a bare Acquire.
//   - "most-samples": the generation with the largest total cost (column
//     0 inclusive at the root) — the run that actually captured the most
//     work. Ties resolve to the newest generation.
//   - "p50": the generation with the lower-median total cost — a
//     representative run, robust against one outlier capture.
//
// Measures are computed by briefly acquiring each generation (faulting
// its columns) and are memoized per generation key, so repeated picks
// over a stable series touch no database. Damaged generations are skipped;
// Pick fails only when no generation could be measured.
func (c *Catalog) Pick(seriesName, strategy string) (Key, error) {
	keys := c.Generations(seriesName)
	if len(keys) == 0 {
		return Key{}, fmt.Errorf("%w: %s", ErrNotFound, seriesName)
	}
	switch strategy {
	case "", "latest":
		return keys[len(keys)-1], nil
	case "most-samples", "p50":
	default:
		return Key{}, fmt.Errorf("%w %q (want latest, most-samples or p50)", ErrBadStrategy, strategy)
	}

	type measured struct {
		key Key
		m   float64
	}
	var ms []measured
	var firstErr error
	for _, k := range keys {
		m, err := c.measure(k)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ms = append(ms, measured{k, m})
	}
	if len(ms) == 0 {
		return Key{}, fmt.Errorf("catalog: no measurable generation of %s: %w", seriesName, firstErr)
	}

	switch strategy {
	case "most-samples":
		best := ms[0]
		for _, e := range ms[1:] {
			if e.m > best.m || (e.m == best.m && e.key.Ts > best.key.Ts) {
				best = e
			}
		}
		return best.key, nil
	default: // p50
		sort.Slice(ms, func(i, j int) bool {
			if ms[i].m != ms[j].m {
				return ms[i].m < ms[j].m
			}
			return ms[i].key.Ts < ms[j].key.Ts
		})
		return ms[(len(ms)-1)/2].key, nil
	}
}

// measure returns a generation's total cost, memoized under measureMu
// (generations are immutable, so an entry never goes stale).
func (c *Catalog) measure(k Key) (float64, error) {
	c.measureMu.Lock()
	if c.measures == nil {
		c.measures = map[Key]float64{}
	}
	if v, ok := c.measures[k]; ok {
		c.measureMu.Unlock()
		return v, nil
	}
	c.measureMu.Unlock()

	snap, _, err := c.Acquire(k.String())
	if err != nil {
		return 0, err
	}
	defer snap.Release()
	if err := snap.FaultAll(); err != nil {
		return 0, err
	}
	v := snap.Tree().Root.Incl.Get(0)

	c.measureMu.Lock()
	if c.measures == nil {
		c.measures = map[Key]float64{}
	}
	c.measures[k] = v
	c.measureMu.Unlock()
	return v, nil
}
