package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/expdb"
)

func TestPickStrategies(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{MaxGenerations: 10})
	defer c.Close()

	// Three generations with distinct total costs: ranks 2 < 4 < 6, and
	// publish order deliberately not cost order.
	for i, tc := range []struct {
		ts    int64
		ranks int
	}{{1, 4}, {2, 6}, {3, 2}} {
		path := filepath.Join(dir, "gen", string(rune('a'+i)), "exp.db")
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data := fixtureV3At(t, tc.ranks)
		err := expdb.WriteFileAtomic(path, func(f *os.File) error {
			_, err := f.Write(data)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Publish(Key{Service: "svc", Run: "r", Ts: tc.ts}, path); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		strategy string
		wantTs   int64
	}{
		{"", 3},             // latest = newest generation
		{"latest", 3},
		{"most-samples", 2}, // 6 ranks captured the most work
		{"p50", 1},          // median cost is the 4-rank run
	}
	for _, tc := range cases {
		key, err := c.Pick("svc/r", tc.strategy)
		if err != nil {
			t.Fatalf("Pick(%q): %v", tc.strategy, err)
		}
		if key.Ts != tc.wantTs {
			t.Fatalf("Pick(%q) = @%d, want @%d", tc.strategy, key.Ts, tc.wantTs)
		}
	}

	// Measures are memoized: a second pick must not open anything.
	opensBefore := c.Stats().Opens
	if _, err := c.Pick("svc/r", "p50"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Opens; got != opensBefore {
		t.Fatalf("memoized pick re-opened databases (%d -> %d opens)", opensBefore, got)
	}

	if _, err := c.Pick("svc/r", "bogus"); !errors.Is(err, ErrBadStrategy) {
		t.Fatalf("bad strategy error = %v, want ErrBadStrategy", err)
	}
	if _, err := c.Pick("nope", "p50"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown series error = %v, want ErrNotFound", err)
	}
}
