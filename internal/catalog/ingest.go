package catalog

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/expdb"
)

// Ingest lands one database in the catalog: the payload is streamed to a
// temporary file in the catalog directory, fsynced and renamed into place
// (expdb.WriteFileAtomic — a crash at any instant leaves either nothing or
// the complete file), validated with a full checksum sweep, and only then
// published. A torn, truncated or corrupted payload is rejected with a
// typed IngestError, its file removed, and the series' previous generation
// keeps serving untouched.
func (c *Catalog) Ingest(key Key, r io.Reader) error {
	if err := c.ingest(key, r); err != nil {
		// Duplicates are not damage — the spool path retries them freely —
		// so only real rejections count as errors.
		if !errors.Is(err, ErrDuplicate) {
			c.mu.Lock()
			c.ingestErrors++
			c.mu.Unlock()
		}
		return err
	}
	c.mu.Lock()
	c.ingested++
	c.mu.Unlock()
	return nil
}

func (c *Catalog) ingest(key Key, r io.Reader) error {
	if err := key.Validate(); err != nil {
		return err
	}
	// Reserve the key before doing any I/O and hold the reservation through
	// publish: the on-disk name is deterministic, so two concurrent ingests
	// of one key would otherwise both write the canonical path — the
	// loser's rename replacing the winner's just-published (immutable!)
	// file, and the loser's cleanup deleting the file backing the winner's
	// generation. With the reservation, exactly one ingest per key is ever
	// between duplicate check and publish.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.cfg.Dir == "" {
		c.mu.Unlock()
		return &IngestError{Key: key, Err: fmt.Errorf("catalog has no storage directory")}
	}
	dup := c.reserving[key]
	if s := c.byName[key.Series()]; s != nil {
		for _, g := range s.gens {
			dup = dup || g.key.Ts == key.Ts
		}
	}
	if !dup {
		c.reserving[key] = true
	}
	c.mu.Unlock()
	if dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, key)
	}
	defer func() {
		c.mu.Lock()
		delete(c.reserving, key)
		c.mu.Unlock()
	}()

	path := filepath.Join(c.cfg.Dir, spoolFileName(key))
	if err := os.MkdirAll(c.cfg.Dir, 0o755); err != nil {
		return &IngestError{Key: key, Err: err}
	}
	err := expdb.WriteFileAtomic(path, func(f *os.File) error {
		_, err := io.Copy(f, r)
		return err
	})
	if err != nil {
		return &IngestError{Key: key, Err: err}
	}
	if err := ValidateFile(path); err != nil {
		os.Remove(path)
		return &IngestError{Key: key, Err: err}
	}
	if err := c.Publish(key, path); err != nil {
		// The file is complete and validated. On ErrDuplicate (a direct
		// Publish of this key slipped in despite the reservation) the
		// canonical path now backs the published generation — deleting it
		// would poison every later Acquire — so leave the file alone.
		if !errors.Is(err, ErrDuplicate) {
			os.Remove(path)
		}
		return err
	}
	return nil
}

// ValidateFile fully checks a database file before it may be published:
// the open must succeed, metadata must decode, and every section checksum
// must verify. The serving path tolerates column damage by degrading with
// notes; the ingest path does not tolerate anything — degradation notes
// are rejections here — because rejecting now is free while rejecting
// later costs a session.
func ValidateFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var head [len(expdb.MagicV3)]byte
	n, _ := io.ReadFull(f, head[:])
	f.Close()
	if string(head[:n]) == expdb.MagicV3 {
		mdb, err := expdb.OpenMapped(path)
		if err != nil {
			return err
		}
		defer mdb.Close()
		exp, err := mdb.Experiment()
		if err != nil {
			return err
		}
		// VerifyAll sweeps every section checksum but reports column damage
		// the way serving wants it — detached columns plus a note. Strict
		// mode: any note is a rejection.
		if err := mdb.VerifyAll(); err != nil {
			return err
		}
		if notes := exp.Notes; len(notes) > 0 {
			return fmt.Errorf("damaged database: %s", notes[0])
		}
		return nil
	}
	// v2/v1/XML: open through the engine and force every lazy column in, so
	// deferred CRC checks run now; a degraded open (notes) is a rejection.
	snap, err := engine.Open(path)
	if err != nil {
		return err
	}
	defer snap.Release()
	if err := snap.FaultAll(); err != nil {
		return err
	}
	if notes := snap.Notes(); len(notes) > 0 {
		return fmt.Errorf("damaged database: %s", notes[0])
	}
	return nil
}

// spoolFileName renders a key as its canonical on-disk name,
// "service__run__ts.db" ("service__ts.db" with no run). Key.Validate
// guarantees the parts contain no "__", so the parse is unambiguous.
func spoolFileName(k Key) string {
	if k.Run == "" {
		return fmt.Sprintf("%s__%d.db", k.Service, k.Ts)
	}
	return fmt.Sprintf("%s__%s__%d.db", k.Service, k.Run, k.Ts)
}

// parseSpoolFileName inverts spoolFileName; ok is false for names that are
// not spool databases (temp files, quarantined .bad files, strangers).
func parseSpoolFileName(name string) (Key, bool) {
	base, found := strings.CutSuffix(name, ".db")
	if !found {
		return Key{}, false
	}
	parts := strings.Split(base, "__")
	if len(parts) != 2 && len(parts) != 3 {
		return Key{}, false
	}
	ts, err := strconv.ParseInt(parts[len(parts)-1], 10, 64)
	if err != nil {
		return Key{}, false
	}
	k := Key{Service: parts[0], Ts: ts}
	if len(parts) == 3 {
		k.Run = parts[1]
	}
	if k.Validate() != nil {
		return Key{}, false
	}
	return k, true
}

// LoadDir publishes every database already sitting in the catalog
// directory — the restart path: databases ingested by a previous process
// become resolvable again without copying. Files that fail validation are
// skipped (and logged); they will error with a typed OpenError if later
// acquired by explicit republish.
func (c *Catalog) LoadDir() (published int, err error) {
	if c.cfg.Dir == "" {
		return 0, nil
	}
	ents, err := os.ReadDir(c.cfg.Dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	for _, ent := range ents {
		key, ok := parseSpoolFileName(ent.Name())
		if !ok {
			continue
		}
		path := filepath.Join(c.cfg.Dir, ent.Name())
		if verr := ValidateFile(path); verr != nil {
			c.logf("catalog: skipping damaged %s: %v", ent.Name(), verr)
			continue
		}
		if perr := c.Publish(key, path); perr != nil {
			c.logf("catalog: load %s: %v", ent.Name(), perr)
			continue
		}
		published++
	}
	return published, nil
}

// ScanSpool ingests every well-named database file out of a spool
// directory: each is copied into the catalog atomically, validated,
// published and removed from the spool. Files that fail validation are
// renamed to "<name>.bad" so one poisoned drop cannot wedge the watcher in
// a retry loop. Producers must write spool files atomically themselves
// (hpcprof -o does); a file mid-rename is simply not visible yet.
func (c *Catalog) ScanSpool(dir string) (ingested int, firstErr error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		key, ok := parseSpoolFileName(ent.Name())
		if !ok {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		err := c.ingestSpoolFile(key, path)
		switch {
		case err == nil:
			ingested++
			os.Remove(path)
		case errors.Is(err, ErrDuplicate):
			// Already published (e.g. the remove failed last pass); the
			// spool copy is redundant.
			os.Remove(path)
		default:
			c.logf("catalog: quarantining spool file %s: %v", ent.Name(), err)
			if rerr := os.Rename(path, path+".bad"); rerr != nil && firstErr == nil {
				firstErr = rerr
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return ingested, firstErr
}

func (c *Catalog) ingestSpoolFile(key Key, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return &IngestError{Key: key, Err: err}
	}
	defer f.Close()
	return c.Ingest(key, f)
}

// WatchSpool polls dir every interval, ingesting whatever lands there,
// until ctx is cancelled. Intended to run as one goroutine per spool.
func (c *Catalog) WatchSpool(ctx context.Context, dir string, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if _, err := c.ScanSpool(dir); err != nil {
			c.logf("catalog: spool scan %s: %v", dir, err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
