package server

import (
	"errors"
	"net/http"
	"strconv"

	"repro/internal/catalog"
	"repro/internal/trace"
)

// Trace and pick routes:
//
//	GET /v1/trace?db=NAME&w=&h=&t0=&t1=  time×rank grid JSON
//	GET /v1/pick?series=NAME&strategy=   choose a generation by data
//
// /v1/trace renders in O(w·h) over the database's zoom pyramid, so its
// cost is bounded by the requested grid, never by how many trace events
// the run captured. The handler holds a catalog reference for the whole
// render (never unmapped under it) and releases it before responding.

// traceResponse is the grid in parallel arrays (row-major, y*w+x). An
// empty cell has cpid 4294967295 (trace.EmptyCPID); labels maps every
// non-empty cpid shown to its scope label.
type traceResponse struct {
	T0      uint64            `json:"t0"`
	T1      uint64            `json:"t1"`
	W       int               `json:"w"`
	H       int               `json:"h"`
	Ranks   []int             `json:"ranks"`
	CPID    []uint32          `json:"cpid"`
	Depth   []uint16          `json:"depth"`
	Samples []uint16          `json:"samples"`
	Labels  map[string]string `json:"labels,omitempty"`
}

func (srv *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	intQ := func(name string, def int) (int, bool) {
		s := q.Get(name)
		if s == "" {
			return def, true
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return 0, false
		}
		return n, true
	}
	u64Q := func(name string) (uint64, bool) {
		s := q.Get(name)
		if s == "" {
			return 0, true
		}
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return 0, false
		}
		return n, true
	}
	gw, ok1 := intQ("w", 256)
	gh, ok2 := intQ("h", 0)
	t0, ok3 := u64Q("t0")
	t1, ok4 := u64Q("t1")
	if !ok1 || !ok2 || !ok3 || !ok4 || gw <= 0 || gh < 0 {
		writeError(w, http.StatusBadRequest, "bad-request",
			"trace takes integer ?w= ?h= ?t0= ?t1=")
		return
	}

	snap := srv.snap
	if db := q.Get("db"); db != "" {
		acq, _, err := srv.cat.Acquire(db)
		if err != nil {
			writeAcquireError(w, err)
			return
		}
		defer acq.Release()
		snap = acq
	} else if snap == nil {
		writeError(w, http.StatusNotFound, "no-default-database",
			"server has no default database; pass ?db=NAME")
		return
	}

	tv, err := snap.Trace()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "trace-failed", err.Error())
		return
	}
	if tv == nil || len(tv.TraceRanks()) == 0 {
		writeError(w, http.StatusNotFound, "no-trace-data",
			"database has no trace sections (capture with hpcrun -trace, merge with hpcprof -traces -format v3)")
		return
	}
	g, err := trace.View(tv, t0, t1, nil, gw, gh)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-view", err.Error())
		return
	}

	resp := traceResponse{
		T0: g.T0, T1: g.T1, W: g.W, H: g.H, Ranks: g.Ranks,
		CPID:    make([]uint32, len(g.Cells)),
		Depth:   make([]uint16, len(g.Cells)),
		Samples: make([]uint16, len(g.Cells)),
		Labels:  map[string]string{},
	}
	for i, c := range g.Cells {
		resp.CPID[i] = c.CPID
		resp.Depth[i] = c.Depth
		resp.Samples[i] = c.Samples
		if !c.Empty() {
			id := strconv.FormatUint(uint64(c.CPID), 10)
			if _, done := resp.Labels[id]; !done {
				if n := snap.NodeAt(int(c.CPID)); n != nil {
					resp.Labels[id] = n.Label()
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// pickResponse names the generation a strategy chose.
type pickResponse struct {
	Name     string `json:"name"`
	Ts       int64  `json:"ts"`
	Strategy string `json:"strategy"`
}

func (srv *Server) handlePick(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seriesName := q.Get("series")
	if seriesName == "" {
		writeError(w, http.StatusBadRequest, "bad-request", "pick needs ?series=NAME")
		return
	}
	strategy := q.Get("strategy")
	key, err := srv.cat.Pick(seriesName, strategy)
	switch {
	case err == nil:
	case errors.Is(err, catalog.ErrNotFound):
		writeError(w, http.StatusNotFound, "unknown-series", err.Error())
		return
	case errors.Is(err, catalog.ErrBadStrategy):
		writeError(w, http.StatusBadRequest, "bad-strategy", err.Error())
		return
	default:
		writeAcquireError(w, err)
		return
	}
	if strategy == "" {
		strategy = "latest"
	}
	writeJSON(w, http.StatusOK, pickResponse{Name: key.String(), Ts: key.Ts, Strategy: strategy})
}
