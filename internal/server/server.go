// Package server is the HTTP/JSON frontend over internal/engine and
// internal/catalog: a multi-tenant catalog of experiment databases serving
// any number of concurrent presentation sessions, each keyed by an
// unguessable token.
//
// The server is deliberately thin — it owns transport concerns only
// (tokens, per-session serialization, JSON framing, admission control,
// deadlines, shutdown); every presentation capability is the engine's and
// every lifecycle capability the catalog's. A session speaks the same
// command grammar as `hpcviewer -interactive` (see engine.Help), so a
// command stream sent over HTTP renders byte-identically to the same
// stream typed into the CLI.
//
// API:
//
//	GET    /healthz                    liveness probe ("ok")
//	GET    /readyz                     readiness: 503 while draining
//	GET    /v1/stats                   sessions, shed/panic counters, catalog stats
//	GET    /v1/info                    default database shape: node/metric counts, notes
//	GET    /v1/catalog                 databases available for sessions and diffing
//	GET    /v1/trace?db=&w=&h=&t0=&t1=  time×rank trace grid JSON (O(w·h) render)
//	GET    /v1/pick?series=&strategy=  choose a generation (latest|most-samples|p50)
//	POST   /v1/ingest?service=&run=&ts=  publish a database (body = db bytes)
//	POST   /v1/compare                 {"other": NAME, ...} -> diff report (see compare.go)
//	POST   /v1/sessions                {"db": NAME?} -> {"token", "db"}
//	POST   /v1/sessions/{token}/exec   {"line": "..."} -> {"output", "error", "quit"}
//	DELETE /v1/sessions/{token}        close and forget the session
//
// Robustness contract: request bodies are size-capped (oversized -> 413),
// load beyond the bounded admission queue is shed with 429/503 and a
// Retry-After header instead of queueing unboundedly, a request that
// outlives its deadline kills its session (504) rather than wedging a
// worker, and a panic inside one session's command kills that session
// (500, counted in /v1/stats) — never the process. Degraded responses
// carry a typed JSON error body: {"error":{"type","message"}}.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/prog"
)

// Config shapes a server beyond its default snapshot.
type Config struct {
	// Source, when non-nil, backs the src command of every session.
	Source *prog.Program
	// Jobs bounds each session's bulk callers-view expansion (<=1 serial).
	Jobs int
	// Catalog is the lifecycle catalog behind session creation, diffing
	// and ingest. Nil gets a private pin-only catalog (no storage dir).
	Catalog *catalog.Catalog

	// MaxInflight bounds concurrently executing heavy requests (session
	// create/exec/compare/ingest); further requests wait in a queue of at
	// most MaxQueue before being shed with 429/503. Zero values take the
	// defaults (64 inflight, 256 queued, 2s queue wait).
	MaxInflight  int
	MaxQueue     int
	QueueTimeout time.Duration
	// ExecTimeout is the per-request deadline for session commands; a
	// command still running when it expires gets its session killed (the
	// engine cancels in-flight expansion) and the request a 504. Zero
	// takes the default 30s; negative disables.
	ExecTimeout time.Duration
	// MaxBodyBytes caps control-plane POST bodies (exec, compare, session
	// create); MaxIngestBytes caps ingest payloads. Defaults 1 MiB / 1 GiB.
	MaxBodyBytes   int64
	MaxIngestBytes int64
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 2 * time.Second
	}
	if cfg.ExecTimeout == 0 {
		cfg.ExecTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxIngestBytes <= 0 {
		cfg.MaxIngestBytes = 1 << 30
	}
	if cfg.Catalog == nil {
		cfg.Catalog = catalog.New(catalog.Config{})
	}
	return cfg
}

// Server shares a catalog of snapshots across HTTP sessions.
type Server struct {
	snap *engine.Snapshot // default database; nil in catalog-only mode
	cfg  Config
	cat  *catalog.Catalog

	admit *limiter

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool
	draining atomic.Bool

	sessionsCreated atomic.Uint64
	sessionPanics   atomic.Uint64
	execTimeouts    atomic.Uint64

	// diffs caches computed unions; see compare.go.
	diffMu sync.Mutex
	diffs  map[diffCacheKey]*diffCacheEntry

	// testExecHook, when set (tests only), runs inside the exec goroutine
	// before the engine executes the line — the lever for injecting
	// slowness and panics into live serving without a debug grammar.
	testExecHook func(line string)
}

// session pairs an engine session with the mutex that serializes its
// requests: engine.Session is single-user by contract, and concurrent
// requests for one token must not interleave inside it. Distinct sessions
// never share this lock — their concurrency is the engine's business.
type session struct {
	mu sync.Mutex
	s  *engine.Session
	// db names the catalog generation the session was created over
	// ("" = the default database).
	db string
	// dead flips (before the engine session closes) when the session is
	// killed; a request already past the token lookup checks it under mu so
	// it can never run a command against a released snapshot.
	dead atomic.Bool
}

// New creates a server over a sealed default snapshot with default limits.
// source may be nil (the src command then reports that no source is
// attached). jobs bounds each session's bulk callers-view expansion.
func New(snap *engine.Snapshot, source *prog.Program, jobs int) *Server {
	return NewWithConfig(snap, Config{Source: source, Jobs: jobs})
}

// NewWithConfig creates a server. snap may be nil when every session names
// a catalog database explicitly.
func NewWithConfig(snap *engine.Snapshot, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		snap:     snap,
		cfg:      cfg,
		cat:      cfg.Catalog,
		admit:    newLimiter(cfg.MaxInflight, cfg.MaxQueue, cfg.QueueTimeout),
		sessions: map[string]*session{},
		diffs:    map[diffCacheKey]*diffCacheEntry{},
	}
}

// Catalog returns the lifecycle catalog behind the server.
func (srv *Server) Catalog() *catalog.Catalog { return srv.cat }

// Handler returns the HTTP handler for the API above. Health, readiness
// and stats bypass admission control — they must answer while shedding.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", srv.handleReady)
	mux.HandleFunc("GET /v1/stats", srv.handleStats)
	mux.HandleFunc("GET /v1/info", srv.handleInfo)
	mux.HandleFunc("GET /v1/catalog", srv.handleCatalog)
	mux.HandleFunc("GET /v1/trace", srv.limited(srv.handleTrace, serveWhileDraining))
	mux.HandleFunc("GET /v1/pick", srv.limited(srv.handlePick, serveWhileDraining))
	mux.HandleFunc("GET /v1/report", srv.limited(srv.handleReport, serveWhileDraining))
	mux.HandleFunc("POST /v1/ingest", srv.limited(srv.handleIngest, shedWhileDraining))
	mux.HandleFunc("POST /v1/compare", srv.limited(srv.handleCompare, shedWhileDraining))
	mux.HandleFunc("POST /v1/sessions", srv.limited(srv.handleCreate, shedWhileDraining))
	// Exec keeps serving during a drain: existing sessions finish their
	// work inside the shutdown window; only NEW work is refused.
	mux.HandleFunc("POST /v1/sessions/{token}/exec", srv.limited(srv.handleExec, serveWhileDraining))
	mux.HandleFunc("DELETE /v1/sessions/{token}", srv.handleDelete)
	return mux
}

// StartDrain flips /readyz to 503 so load balancers stop sending new work,
// while existing sessions keep serving. Call it before http.Server.Shutdown.
func (srv *Server) StartDrain() { srv.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (srv *Server) Draining() bool { return srv.draining.Load() }

// Close shuts every session down (cancelling their in-flight work) and
// refuses new ones. Graceful shutdown calls it after the HTTP server
// drains.
func (srv *Server) Close() {
	srv.draining.Store(true)
	srv.mu.Lock()
	srv.closed = true
	sessions := make([]*session, 0, len(srv.sessions))
	for token, se := range srv.sessions {
		sessions = append(sessions, se)
		delete(srv.sessions, token)
	}
	srv.mu.Unlock()
	// Cancel everything first so in-flight commands all start winding down,
	// then wait for each worker to leave the session (mu barrier) before
	// releasing its snapshot — never unmap under a reader.
	for _, se := range sessions {
		se.dead.Store(true)
		se.s.Cancel()
	}
	for _, se := range sessions {
		se.mu.Lock()
		se.mu.Unlock() //nolint:staticcheck // empty critical section = drain barrier
		se.s.Close()
	}
}

// SessionCount reports the number of live sessions.
func (srv *Server) SessionCount() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

// --- typed errors and admission ---------------------------------------

// apiError is the typed JSON error envelope degraded responses carry.
type apiError struct {
	Type    string `json:"type"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, typ, msg string) {
	writeJSON(w, status, struct {
		Error apiError `json:"error"`
	}{apiError{Type: typ, Message: msg}})
}

// writeShed answers an overload response: 429 (try again, the queue timed
// out) or 503 (queue full / draining), always with Retry-After.
func writeShed(w http.ResponseWriter, status int, typ, msg string, retryAfter time.Duration) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, status, typ, msg)
}

// limiter is the bounded admission queue: MaxInflight slots execute,
// MaxQueue requests wait, the rest shed immediately. Waiting is bounded by
// the queue timeout and the client's own context.
type limiter struct {
	slots chan struct{}
	queue chan struct{}
	wait  time.Duration
	shed  atomic.Uint64
}

func newLimiter(inflight, queued int, wait time.Duration) *limiter {
	return &limiter{
		slots: make(chan struct{}, inflight),
		queue: make(chan struct{}, queued),
		wait:  wait,
	}
}

// acquire returns a release func, or nil with a shed status/type.
func (l *limiter) acquire(done <-chan struct{}) (release func(), status int, typ string) {
	select {
	case l.slots <- struct{}{}:
		return func() { <-l.slots }, 0, ""
	default:
	}
	select {
	case l.queue <- struct{}{}:
	default:
		l.shed.Add(1)
		return nil, http.StatusServiceUnavailable, "queue-full"
	}
	defer func() { <-l.queue }()
	t := time.NewTimer(l.wait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		return func() { <-l.slots }, 0, ""
	case <-t.C:
		l.shed.Add(1)
		return nil, http.StatusTooManyRequests, "queue-timeout"
	case <-done:
		l.shed.Add(1)
		return nil, http.StatusServiceUnavailable, "client-gone"
	}
}

// drainPolicy says what a handler does while the server drains: work that
// would create state (sessions, generations, unions) is shed, work that
// finishes existing state (exec) keeps serving.
type drainPolicy bool

const (
	shedWhileDraining  drainPolicy = true
	serveWhileDraining drainPolicy = false
)

// limited wraps a handler in admission control and the body-size cap.
func (srv *Server) limited(h http.HandlerFunc, drain drainPolicy) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if drain == shedWhileDraining && srv.draining.Load() {
			writeShed(w, http.StatusServiceUnavailable, "draining", "server is draining", 5*time.Second)
			return
		}
		release, status, typ := srv.admit.acquire(r.Context().Done())
		if release == nil {
			writeShed(w, status, typ, "server overloaded, request shed", srv.cfg.QueueTimeout)
			return
		}
		defer release()
		limit := srv.cfg.MaxBodyBytes
		if r.URL.Path == "/v1/ingest" {
			limit = srv.cfg.MaxIngestBytes
		}
		r.Body = http.MaxBytesReader(w, r.Body, limit)
		h(w, r)
	}
}

// decodeBody decodes a JSON request body, mapping an exceeded size cap
// onto 413 and malformed JSON onto 400. An empty body decodes to the zero
// value (dst untouched).
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	err := json.NewDecoder(r.Body).Decode(dst)
	if err == nil || errors.Is(err, io.EOF) { // io.EOF: empty body = zero request
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, "body-too-large",
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		return false
	}
	writeError(w, http.StatusBadRequest, "bad-request", "bad request body: "+err.Error())
	return false
}

// --- health, stats -----------------------------------------------------

func (srv *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if srv.draining.Load() {
		writeShed(w, http.StatusServiceUnavailable, "draining", "server is draining", 5*time.Second)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

type statsResponse struct {
	Sessions        int           `json:"sessions"`
	SessionsCreated uint64        `json:"sessions_created"`
	SessionPanics   uint64        `json:"session_panics"`
	ExecTimeouts    uint64        `json:"exec_timeouts"`
	ShedRequests    uint64        `json:"shed_requests"`
	Draining        bool          `json:"draining"`
	Catalog         catalog.Stats `json:"catalog"`
}

func (srv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Sessions:        srv.SessionCount(),
		SessionsCreated: srv.sessionsCreated.Load(),
		SessionPanics:   srv.sessionPanics.Load(),
		ExecTimeouts:    srv.execTimeouts.Load(),
		ShedRequests:    srv.admit.shed.Load(),
		Draining:        srv.draining.Load(),
		Catalog:         srv.cat.Stats(),
	})
}

// --- info --------------------------------------------------------------

type infoResponse struct {
	Nodes   int      `json:"nodes"`
	Metrics []string `json:"metrics"`
	Notes   []string `json:"notes,omitempty"`
}

func (srv *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if srv.snap == nil {
		writeError(w, http.StatusNotFound, "no-default-database",
			"server has no default database; sessions must name one from /v1/catalog")
		return
	}
	info := infoResponse{Nodes: srv.snap.Tree().NumNodes(), Notes: srv.snap.Notes()}
	for _, d := range srv.snap.Tree().Reg.Columns() {
		info.Metrics = append(info.Metrics, d.Name)
	}
	writeJSON(w, http.StatusOK, info)
}

// --- ingest ------------------------------------------------------------

type ingestResponse struct {
	Name string `json:"name"`
}

func (srv *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ts, err := strconv.ParseInt(q.Get("ts"), 10, 64)
	if q.Get("service") == "" || q.Get("ts") == "" || err != nil {
		writeError(w, http.StatusBadRequest, "bad-key",
			"ingest needs ?service= and integer ?ts= (and optionally ?run=)")
		return
	}
	key := catalog.Key{Service: q.Get("service"), Run: q.Get("run"), Ts: ts}
	if err := key.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad-key", err.Error())
		return
	}
	if err := srv.cat.Ingest(key, r.Body); err != nil {
		var tooBig *http.MaxBytesError
		var ierr *catalog.IngestError
		switch {
		case errors.As(err, &tooBig):
			writeError(w, http.StatusRequestEntityTooLarge, "body-too-large",
				fmt.Sprintf("ingest body exceeds %d bytes", tooBig.Limit))
		case errors.Is(err, catalog.ErrDuplicate):
			writeError(w, http.StatusConflict, "duplicate-generation", err.Error())
		case errors.As(err, &ierr):
			writeError(w, http.StatusUnprocessableEntity, "invalid-database", err.Error())
		default:
			writeError(w, http.StatusInternalServerError, "ingest-failed", err.Error())
		}
		return
	}
	writeJSON(w, http.StatusCreated, ingestResponse{Name: key.String()})
}

// --- sessions ----------------------------------------------------------

type createRequest struct {
	// DB names a catalog database ("service/run", optionally "@ts") to
	// present; empty means the server's default database.
	DB string `json:"db,omitempty"`
}

type createResponse struct {
	Token string `json:"token"`
	DB    string `json:"db,omitempty"`
}

func (srv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !decodeBody(w, r, &req) {
		return
	}
	token, err := newToken()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "token generation failed")
		return
	}

	snap := srv.snap
	dbName := ""
	if req.DB != "" {
		acq, key, err := srv.cat.Acquire(req.DB)
		if err != nil {
			writeAcquireError(w, err)
			return
		}
		snap = acq
		dbName = key.String()
		// NewSession takes its own reference below; the Acquire reference
		// drops right after.
		defer acq.Release()
	} else if snap == nil {
		writeError(w, http.StatusNotFound, "no-default-database",
			`server has no default database; pass {"db": NAME}`)
		return
	}

	s := engine.NewSession(snap)
	s.SetSource(srv.cfg.Source)
	s.SetJobs(srv.cfg.Jobs)
	s.SetCatalog(srv)
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		s.Close()
		writeShed(w, http.StatusServiceUnavailable, "shutting-down", "server shutting down", 5*time.Second)
		return
	}
	srv.sessions[token] = &session{s: s, db: dbName}
	srv.mu.Unlock()
	srv.sessionsCreated.Add(1)
	writeJSON(w, http.StatusCreated, createResponse{Token: token, DB: dbName})
}

// writeAcquireError maps catalog acquire failures onto typed statuses: an
// unknown name is the client's fault, a damaged published file is a
// degraded server state (503: another generation may publish any moment).
func writeAcquireError(w http.ResponseWriter, err error) {
	var oerr *catalog.OpenError
	switch {
	case errors.Is(err, catalog.ErrNotFound):
		writeError(w, http.StatusNotFound, "unknown-database", err.Error())
	case errors.As(err, &oerr):
		writeShed(w, http.StatusServiceUnavailable, "database-damaged", err.Error(), 5*time.Second)
	case errors.Is(err, catalog.ErrClosed):
		writeShed(w, http.StatusServiceUnavailable, "shutting-down", err.Error(), 5*time.Second)
	default:
		writeError(w, http.StatusBadRequest, "bad-database-name", err.Error())
	}
}

type execRequest struct {
	Line string `json:"line"`
}

type execResponse struct {
	Output string `json:"output"`
	Err    string `json:"error,omitempty"`
	Quit   bool   `json:"quit,omitempty"`
}

func (srv *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	token := r.PathValue("token")
	srv.mu.Lock()
	se := srv.sessions[token]
	srv.mu.Unlock()
	if se == nil {
		writeError(w, http.StatusNotFound, "unknown-session", "unknown session")
		return
	}
	var req execRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, ok := srv.execSession(w, token, se, engine.Request{Line: req.Line})
	if !ok {
		return
	}
	if resp.Quit {
		srv.remove(token)
	}
	writeJSON(w, http.StatusOK, execResponse{Output: resp.Output, Err: resp.Err, Quit: resp.Quit})
}

// execResult carries one command's outcome out of its goroutine.
type execResult struct {
	resp     engine.Response
	panicked any
	stack    []byte
	// dead reports the session was killed before the command could run.
	dead bool
}

// execSession runs one engine command under the per-request deadline with
// panic isolation. A panic or deadline kills the session — its in-flight
// work must be cancelled — but never the process: the session is removed,
// the failure is counted in /v1/stats, and the client gets a typed error.
// Returns ok=false when it already wrote an error response.
//
// Release discipline: the session's snapshot may only be released once no
// goroutine is inside se.s.Do — otherwise a catalog eviction could leave
// the session holding the last reference and the release would unmap
// memory the worker is still reading. The deadline path therefore only
// cancels and unroutes the session; the final Close happens in a reaper
// that waits for the worker to drain into the buffered channel.
func (srv *Server) execSession(w http.ResponseWriter, token string, se *session, req engine.Request) (engine.Response, bool) {
	done := make(chan execResult, 1)
	go func() {
		defer func() {
			// The recover runs after the mu-unlock defer below (LIFO), so a
			// panic never leaves se.mu locked for the requests queued on it.
			if p := recover(); p != nil {
				done <- execResult{panicked: p, stack: debug.Stack()}
			}
		}()
		se.mu.Lock()
		defer se.mu.Unlock()
		if se.dead.Load() {
			// The session was killed (deadline, panic, delete, shutdown)
			// while this request waited on se.mu; its snapshot reference is
			// gone or going, so the command must not touch the engine.
			done <- execResult{dead: true}
			return
		}
		if hook := srv.testExecHook; hook != nil {
			hook(req.Line)
		}
		done <- execResult{resp: se.s.Do(req)}
	}()

	var deadline <-chan time.Time
	if srv.cfg.ExecTimeout > 0 {
		t := time.NewTimer(srv.cfg.ExecTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case res := <-done:
		switch {
		case res.panicked != nil:
			srv.sessionPanics.Add(1)
			srv.remove(token)
			writeError(w, http.StatusInternalServerError, "session-panic",
				fmt.Sprintf("command %q crashed its session (session closed): %v", req.Line, res.panicked))
			return engine.Response{}, false
		case res.dead:
			writeError(w, http.StatusNotFound, "unknown-session", "session closed")
			return engine.Response{}, false
		}
		return res.resp, true
	case <-deadline:
		// Kill the session — but never unmap under the reader: cancel its
		// context (in-flight bulk expansion stops at the next root) and
		// unroute the token now, then let a reaper release the snapshot
		// only after the worker has drained into the buffered channel.
		srv.execTimeouts.Add(1)
		se.dead.Store(true)
		se.s.Cancel()
		srv.forget(token)
		go func() {
			if res := <-done; res.panicked != nil {
				srv.sessionPanics.Add(1)
			}
			se.s.Close()
		}()
		writeError(w, http.StatusGatewayTimeout, "deadline-exceeded",
			fmt.Sprintf("command %q exceeded the %s request deadline (session closed)", req.Line, srv.cfg.ExecTimeout))
		return engine.Response{}, false
	}
}

func (srv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !srv.remove(r.PathValue("token")) {
		writeError(w, http.StatusNotFound, "unknown-session", "unknown session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// remove closes and forgets one session; reports whether it existed. It
// marks the session dead and cancels it first, then waits for any worker
// still inside the engine (holding se.mu) to drain before releasing the
// snapshot — a DELETE racing an in-flight command must not unmap under it.
func (srv *Server) remove(token string) bool {
	srv.mu.Lock()
	se := srv.sessions[token]
	delete(srv.sessions, token)
	srv.mu.Unlock()
	if se == nil {
		return false
	}
	se.dead.Store(true)
	se.s.Cancel()
	se.mu.Lock()
	se.mu.Unlock() //nolint:staticcheck // empty critical section = drain barrier
	se.s.Close()
	return true
}

// forget unroutes a token without closing its session; the caller owns the
// close (the deadline path, whose reaper must drain the worker first).
func (srv *Server) forget(token string) {
	srv.mu.Lock()
	delete(srv.sessions, token)
	srv.mu.Unlock()
}

func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
