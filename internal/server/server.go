// Package server is the HTTP/JSON frontend over internal/engine: one
// opened experiment database (an engine.Snapshot) serving any number of
// concurrent presentation sessions, each keyed by an unguessable token.
//
// The server is deliberately thin — it owns transport concerns only
// (tokens, per-session serialization, JSON framing, shutdown); every
// presentation capability is the engine's. A session speaks the same
// command grammar as `hpcviewer -interactive` (see engine.Help), so a
// command stream sent over HTTP renders byte-identically to the same
// stream typed into the CLI.
//
// API:
//
//	GET    /healthz                    liveness probe ("ok")
//	GET    /v1/info                    database shape: node/metric counts, notes
//	GET    /v1/catalog                 extra databases available for diffing
//	POST   /v1/compare                 {"other": NAME, ...} -> diff report (see compare.go)
//	POST   /v1/sessions                create a session -> {"token": "..."}
//	POST   /v1/sessions/{token}/exec   {"line": "..."} -> {"output", "error", "quit"}
//	DELETE /v1/sessions/{token}        close and forget the session
//
// A command that quits (the REPL's "quit") closes the session server-side;
// further requests with its token return 404.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/engine"
	"repro/internal/prog"
)

// Server shares one snapshot across HTTP sessions.
type Server struct {
	snap   *engine.Snapshot
	source *prog.Program
	jobs   int

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool

	// catalog holds extra databases for diffing (see compare.go).
	catalog catalogState
}

// session pairs an engine session with the mutex that serializes its
// requests: engine.Session is single-user by contract, and concurrent
// requests for one token must not interleave inside it. Distinct sessions
// never share this lock — their concurrency is the engine's business.
type session struct {
	mu sync.Mutex
	s  *engine.Session
}

// New creates a server over a sealed snapshot. source may be nil (the src
// command then reports that no source is attached). jobs bounds each
// session's bulk callers-view expansion (<=1 serial).
func New(snap *engine.Snapshot, source *prog.Program, jobs int) *Server {
	return &Server{snap: snap, source: source, jobs: jobs, sessions: map[string]*session{}}
}

// Handler returns the HTTP handler for the API above.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/info", srv.handleInfo)
	mux.HandleFunc("GET /v1/catalog", srv.handleCatalog)
	mux.HandleFunc("POST /v1/compare", srv.handleCompare)
	mux.HandleFunc("POST /v1/sessions", srv.handleCreate)
	mux.HandleFunc("POST /v1/sessions/{token}/exec", srv.handleExec)
	mux.HandleFunc("DELETE /v1/sessions/{token}", srv.handleDelete)
	return mux
}

// Close shuts every session down (cancelling their in-flight work) and
// refuses new ones. Graceful shutdown calls it after the HTTP server
// drains.
func (srv *Server) Close() {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	srv.closed = true
	for token, se := range srv.sessions {
		se.s.Close()
		delete(srv.sessions, token)
	}
}

// SessionCount reports the number of live sessions.
func (srv *Server) SessionCount() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

type infoResponse struct {
	Nodes   int      `json:"nodes"`
	Metrics []string `json:"metrics"`
	Notes   []string `json:"notes,omitempty"`
}

func (srv *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info := infoResponse{Nodes: srv.snap.Tree().NumNodes(), Notes: srv.snap.Notes()}
	for _, d := range srv.snap.Tree().Reg.Columns() {
		info.Metrics = append(info.Metrics, d.Name)
	}
	writeJSON(w, http.StatusOK, info)
}

type createResponse struct {
	Token string `json:"token"`
}

func (srv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	token, err := newToken()
	if err != nil {
		http.Error(w, "token generation failed", http.StatusInternalServerError)
		return
	}
	s := engine.NewSession(srv.snap)
	s.SetSource(srv.source)
	s.SetJobs(srv.jobs)
	s.SetCatalog(srv)
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		s.Close()
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	srv.sessions[token] = &session{s: s}
	srv.mu.Unlock()
	writeJSON(w, http.StatusCreated, createResponse{Token: token})
}

type execRequest struct {
	Line string `json:"line"`
}

type execResponse struct {
	Output string `json:"output"`
	Err    string `json:"error,omitempty"`
	Quit   bool   `json:"quit,omitempty"`
}

func (srv *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	token := r.PathValue("token")
	srv.mu.Lock()
	se := srv.sessions[token]
	srv.mu.Unlock()
	if se == nil {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	var req execRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	se.mu.Lock()
	resp := se.s.Do(engine.Request{Line: req.Line})
	se.mu.Unlock()
	if resp.Quit {
		srv.remove(token)
	}
	writeJSON(w, http.StatusOK, execResponse{Output: resp.Output, Err: resp.Err, Quit: resp.Quit})
}

func (srv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !srv.remove(r.PathValue("token")) {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// remove closes and forgets one session; reports whether it existed.
func (srv *Server) remove(token string) bool {
	srv.mu.Lock()
	se := srv.sessions[token]
	delete(srv.sessions, token)
	srv.mu.Unlock()
	if se == nil {
		return false
	}
	se.s.Close()
	return true
}

func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
