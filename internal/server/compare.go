package server

import (
	"net/http"
	"sync"

	"repro/internal/diff"
	"repro/internal/engine"
)

// The server implements engine.Catalog over its lifecycle catalog, so
// every session's `diff NAME` resolves against the same generations HTTP
// clients see. Lookups return retained snapshots (the engine releases
// them after the union is built), taken under the catalog lock so an
// eviction or republish can never unmap a snapshot mid-diff.

// AddSnapshot pins an already-open database under name, making it visible
// to GET /v1/catalog, POST /v1/compare and every session's diff command.
// Pinned snapshots sit outside the eviction/generation lifecycle — the
// static `-compare name=path` entries. Safe to call while serving.
func (srv *Server) AddSnapshot(name string, snap *engine.Snapshot) error {
	return srv.cat.Pin(name, snap)
}

// LookupSnapshot implements engine.Catalog: the returned snapshot is
// retained for the caller, who must Release it.
func (srv *Server) LookupSnapshot(name string) (*engine.Snapshot, error) {
	snap, _, err := srv.cat.Acquire(name)
	return snap, err
}

// SnapshotNames implements engine.Catalog.
func (srv *Server) SnapshotNames() []string { return srv.cat.Names() }

type catalogResponse struct {
	Databases []string `json:"databases"`
}

func (srv *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, catalogResponse{Databases: srv.cat.Names()})
}

// compareRequest asks for a diff between two catalog entries. An empty
// base means the database the server was started on.
type compareRequest struct {
	Base  string `json:"base,omitempty"`
	Other string `json:"other"`
	// Metric picks one compared metric for the report (default: first).
	Metric string `json:"metric,omitempty"`
	// Mode is the scaling expectation: auto, none, weak, strong.
	Mode string `json:"mode,omitempty"`
	// Threshold and Top shape the report (see diff.ReportOptions).
	Threshold float64 `json:"threshold,omitempty"`
	Top       int     `json:"top,omitempty"`
}

func (srv *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Other == "" {
		writeError(w, http.StatusBadRequest, "bad-request", `missing "other" database name`)
		return
	}
	mode := diff.ModeAuto
	if req.Mode != "" {
		m, err := diff.ParseMode(req.Mode)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad-request", err.Error())
			return
		}
		mode = m
	}
	// Acquire both inputs up front — the references pin their generations
	// (and mappings) for the duration of the union, against concurrent
	// eviction and republish.
	base := srv.snap
	if req.Base != "" {
		sn, _, err := srv.cat.Acquire(req.Base)
		if err != nil {
			writeAcquireError(w, err)
			return
		}
		base = sn
		defer sn.Release()
	} else if base == nil {
		writeError(w, http.StatusNotFound, "no-default-database",
			`server has no default database; pass "base"`)
		return
	}
	other, _, err := srv.cat.Acquire(req.Other)
	if err != nil {
		writeAcquireError(w, err)
		return
	}
	defer other.Release()

	res, err := srv.cachedDiff(req, mode, base, other)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "diff-failed", err.Error())
		return
	}
	rep, err := res.Report(diff.ReportOptions{Metric: req.Metric, Threshold: req.Threshold, Top: req.Top})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "report-failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// diffCacheKey identifies a union by the snapshot identities themselves —
// not names, which can be republished onto new generations. A cached
// result is fully materialized (the union copies every value), so it stays
// valid after its inputs are evicted or unmapped; the snapshot pointers
// serve only as identity.
type diffCacheKey struct {
	base, other *engine.Snapshot
	metric      string
	mode        diff.Mode
}

// diffCacheEntry computes its result at most once; concurrent requests
// for the same key share the wait instead of redundantly unioning.
type diffCacheEntry struct {
	once sync.Once
	res  *diff.Result
	err  error
}

// maxDiffCacheEntries bounds the cache; republishing rotates generations,
// and unions over dead generations would otherwise accumulate forever.
const maxDiffCacheEntries = 128

func (srv *Server) cachedDiff(req compareRequest, mode diff.Mode, base, other *engine.Snapshot) (*diff.Result, error) {
	var metrics []string
	if req.Metric != "" {
		metrics = []string{req.Metric}
	}
	key := diffCacheKey{base: base, other: other, metric: req.Metric, mode: mode}
	srv.diffMu.Lock()
	e, ok := srv.diffs[key]
	if !ok {
		if len(srv.diffs) >= maxDiffCacheEntries {
			srv.diffs = map[diffCacheKey]*diffCacheEntry{}
		}
		e = &diffCacheEntry{}
		srv.diffs[key] = e
	}
	srv.diffMu.Unlock()

	// Diff outside the lock: inputs are read-only after FaultAll, and the
	// once collapses racing requests for one key into a single union.
	e.once.Do(func() {
		_, e.res, e.err = engine.DiffSnapshots(diff.Config{Metrics: metrics, Mode: mode, Jobs: srv.cfg.Jobs},
			engine.DiffInput{Label: "A", Snap: base},
			engine.DiffInput{Label: "B", Snap: other})
	})
	if e.err != nil {
		// Failed unions don't deserve cache residency (the input may be
		// republished healthy); drop the entry.
		srv.diffMu.Lock()
		if srv.diffs[key] == e {
			delete(srv.diffs, key)
		}
		srv.diffMu.Unlock()
		return nil, e.err
	}
	return e.res, e.err
}
