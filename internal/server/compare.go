package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/diff"
	"repro/internal/engine"
)

// catalog state: extra opened databases sessions can diff against, plus a
// cache of computed unions (a diff over a large database is expensive and
// read-only once built, so concurrent compare requests share it).
type catalogState struct {
	mu    sync.Mutex
	snaps map[string]*engine.Snapshot
	diffs map[string]*diff.Result
}

// AddSnapshot registers another opened database under name, making it
// visible to GET /v1/catalog, POST /v1/compare and every session's diff
// command. Safe to call while serving.
func (srv *Server) AddSnapshot(name string, snap *engine.Snapshot) error {
	if name == "" || strings.ContainsAny(name, " \t,") {
		return fmt.Errorf("server: catalog name %q must be non-empty without spaces or commas", name)
	}
	srv.catalog.mu.Lock()
	defer srv.catalog.mu.Unlock()
	if srv.catalog.snaps == nil {
		srv.catalog.snaps = map[string]*engine.Snapshot{}
	}
	if _, ok := srv.catalog.snaps[name]; ok {
		return fmt.Errorf("server: catalog already has %q", name)
	}
	srv.catalog.snaps[name] = snap
	return nil
}

// LookupSnapshot implements engine.Catalog over the registered databases.
func (srv *Server) LookupSnapshot(name string) (*engine.Snapshot, error) {
	srv.catalog.mu.Lock()
	defer srv.catalog.mu.Unlock()
	sn, ok := srv.catalog.snaps[name]
	if !ok {
		return nil, fmt.Errorf("server: no database %q in the catalog", name)
	}
	return sn, nil
}

// SnapshotNames implements engine.Catalog.
func (srv *Server) SnapshotNames() []string {
	srv.catalog.mu.Lock()
	defer srv.catalog.mu.Unlock()
	names := make([]string, 0, len(srv.catalog.snaps))
	for name := range srv.catalog.snaps {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

type catalogResponse struct {
	Databases []string `json:"databases"`
}

func (srv *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, catalogResponse{Databases: srv.SnapshotNames()})
}

// compareRequest asks for a diff between two catalog entries. An empty
// base means the database the server was started on.
type compareRequest struct {
	Base  string `json:"base,omitempty"`
	Other string `json:"other"`
	// Metric picks one compared metric for the report (default: first).
	Metric string `json:"metric,omitempty"`
	// Mode is the scaling expectation: auto, none, weak, strong.
	Mode string `json:"mode,omitempty"`
	// Threshold and Top shape the report (see diff.ReportOptions).
	Threshold float64 `json:"threshold,omitempty"`
	Top       int     `json:"top,omitempty"`
}

func (srv *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Other == "" {
		http.Error(w, `missing "other" database name`, http.StatusBadRequest)
		return
	}
	mode := diff.ModeAuto
	if req.Mode != "" {
		m, err := diff.ParseMode(req.Mode)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mode = m
	}
	base := srv.snap
	if req.Base != "" {
		sn, err := srv.LookupSnapshot(req.Base)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		base = sn
	}
	other, err := srv.LookupSnapshot(req.Other)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}

	res, err := srv.cachedDiff(req, mode, base, other)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	rep, err := res.Report(diff.ReportOptions{Metric: req.Metric, Threshold: req.Threshold, Top: req.Top})
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// cachedDiff returns the union for one (base, other, metric, mode) tuple,
// computing it at most once — the result is immutable, so later requests
// (and different report thresholds) reuse it.
func (srv *Server) cachedDiff(req compareRequest, mode diff.Mode, base, other *engine.Snapshot) (*diff.Result, error) {
	var metrics []string
	if req.Metric != "" {
		metrics = []string{req.Metric}
	}
	key := fmt.Sprintf("%s\x00%s\x00%s\x00%s", req.Base, req.Other, req.Metric, mode)
	srv.catalog.mu.Lock()
	if res, ok := srv.catalog.diffs[key]; ok {
		srv.catalog.mu.Unlock()
		return res, nil
	}
	srv.catalog.mu.Unlock()

	// Diff outside the lock: inputs are read-only after FaultAll, and two
	// racing requests computing the same key just do redundant work once.
	_, res, err := engine.DiffSnapshots(diff.Config{Metrics: metrics, Mode: mode, Jobs: srv.jobs},
		engine.DiffInput{Label: "A", Snap: base},
		engine.DiffInput{Label: "B", Snap: other})
	if err != nil {
		return nil, err
	}
	srv.catalog.mu.Lock()
	if srv.catalog.diffs == nil {
		srv.catalog.diffs = map[string]*diff.Result{}
	}
	if prev, ok := srv.catalog.diffs[key]; ok {
		res = prev // keep the first; results are interchangeable
	} else {
		srv.catalog.diffs[key] = res
	}
	srv.catalog.mu.Unlock()
	return res, nil
}
