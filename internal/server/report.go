package server

import (
	"net/http"
	"strconv"

	"repro/internal/engine"
	"repro/internal/expdb"
	"repro/internal/report"
)

// Report route:
//
//	GET /v1/report?db=NAME[&baseline=NAME][&metric=M][&top=N]
//	              [&threshold=T][&bins=B]
//
// runs the unattended analysis of internal/report over a catalog entry
// (default: the server's default database) and returns the report JSON.
// Both snapshots are acquired and refcounted for the whole build, so a
// concurrent republish or eviction never unmaps a database under the
// analysis; the report only reads the snapshots, so concurrent requests
// over one entry are safe.
func (srv *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opt := report.Options{Metric: q.Get("metric"), Jobs: srv.cfg.Jobs}
	ok := true
	intQ := func(name string, dst *int) {
		s := q.Get(name)
		if s == "" {
			return
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			ok = false
			return
		}
		*dst = n
	}
	intQ("top", &opt.Top)
	intQ("bins", &opt.Bins)
	if s := q.Get("threshold"); s != "" {
		t, err := strconv.ParseFloat(s, 64)
		if err != nil {
			ok = false
		}
		opt.Threshold = t
	}
	if !ok {
		writeError(w, http.StatusBadRequest, "bad-request",
			"report takes integer ?top= ?bins= and float ?threshold=")
		return
	}

	snap := srv.snap
	if db := q.Get("db"); db != "" {
		acq, _, err := srv.cat.Acquire(db)
		if err != nil {
			writeAcquireError(w, err)
			return
		}
		defer acq.Release()
		snap = acq
	} else if snap == nil {
		writeError(w, http.StatusNotFound, "no-default-database",
			"server has no default database; pass ?db=NAME")
		return
	}
	exp, err := reportExperiment(snap)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "report-failed", err.Error())
		return
	}
	if base := q.Get("baseline"); base != "" {
		acq, _, err := srv.cat.Acquire(base)
		if err != nil {
			writeAcquireError(w, err)
			return
		}
		defer acq.Release()
		opt.Baseline, err = reportExperiment(acq)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "report-failed", err.Error())
			return
		}
	}

	rep, err := report.Build(exp, opt)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "report-failed", err.Error())
		return
	}
	// Serve the report's own canonical rendering, not writeJSON's compact
	// encoding: the HTTP bytes must equal what hpcreport writes for the
	// same database and options.
	b, err := rep.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "report-failed", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// reportExperiment faults a snapshot's lazy columns (the analyses read
// every raw and summary value) and wraps it for the report builder.
func reportExperiment(sn *engine.Snapshot) (*expdb.Experiment, error) {
	if err := sn.FaultAll(); err != nil {
		return nil, err
	}
	if exp := sn.Experiment(); exp != nil {
		return exp, nil
	}
	return &expdb.Experiment{Program: sn.Tree().Program, NRanks: 1, Tree: sn.Tree()}, nil
}
