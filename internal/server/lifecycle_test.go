package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// fixtureV3Bytes serializes the toy workload in the mapped (v3) format —
// the payload ingest tests push over HTTP.
func fixtureV3Bytes(t *testing.T, ranks int) []byte {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: ranks, Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := expdb.FromMerge(res).WriteBinaryV3(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// apiErrorOf decodes the typed error envelope degraded responses carry.
func apiErrorOf(t *testing.T, body []byte) apiError {
	t.Helper()
	var e struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("response is not a typed error envelope: %v\n%s", err, body)
	}
	if e.Error.Type == "" {
		t.Fatalf("error envelope has no type: %s", body)
	}
	return e.Error
}

func getStats(t *testing.T, hc *http.Client, base string) statsResponse {
	t.Helper()
	resp, err := hc.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestHealthReadyAndDrain: the probes answer, and StartDrain flips /readyz
// to 503 while sessions created before the drain keep executing — only new
// state (sessions, ingest, compare) is shed.
func TestHealthReadyAndDrain(t *testing.T) {
	srv := New(lazySnapshot(t, fixtureBytes(t)), nil, 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := hc.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	c := &client{t: t, base: ts.URL, hc: hc}
	token := c.createSession()

	srv.StartDrain()
	resp, err := hc.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining /readyz lacks Retry-After")
	}
	if e := apiErrorOf(t, body); e.Type != "draining" {
		t.Fatalf("draining error type = %q", e.Type)
	}
	// /healthz still says the process is alive.
	if resp, err := hc.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("/healthz while draining: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// Existing sessions keep serving through the drain window...
	if out, errText, _ := c.exec(token, "ls"); errText != "" || out == "" {
		t.Fatalf("exec while draining: %q / %q", out, errText)
	}
	// ...but new sessions are shed with a typed 503.
	status, data := postJSON(t, hc, ts.URL+"/v1/sessions", map[string]any{})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("create while draining = %d, want 503", status)
	}
	if e := apiErrorOf(t, data); e.Type != "draining" {
		t.Fatalf("create-while-draining error type = %q", e.Type)
	}
	if !getStats(t, hc, ts.URL).Draining {
		t.Fatal("stats do not report draining")
	}
}

// TestBodyCap413 is the regression test the listener hardening demands: an
// oversized control-plane body must produce 413 with a typed error, not an
// unbounded read.
func TestBodyCap413(t *testing.T) {
	srv := NewWithConfig(lazySnapshot(t, fixtureBytes(t)), Config{Jobs: 1, MaxBodyBytes: 256})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()
	c := &client{t: t, base: ts.URL, hc: hc}
	token := c.createSession()

	huge := strings.Repeat("x", 4096)
	for _, url := range []string{
		ts.URL + "/v1/sessions",
		ts.URL + "/v1/sessions/" + token + "/exec",
		ts.URL + "/v1/compare",
	} {
		status, data := postJSON(t, hc, url, map[string]any{"line": huge, "db": huge, "other": huge})
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s with 4KiB body = %d, want 413 (%s)", url, status, data)
		}
		if e := apiErrorOf(t, data); e.Type != "body-too-large" {
			t.Fatalf("%s error type = %q, want body-too-large", url, e.Type)
		}
	}
	// A small body still works afterwards: the cap rejects the request, not
	// the connection or the session.
	if out, errText, _ := c.exec(token, "ls"); errText != "" || out == "" {
		t.Fatalf("exec after 413s: %q / %q", out, errText)
	}

	// The ingest cap is separate: a payload over MaxIngestBytes gets 413
	// and nothing is published.
	srv2 := NewWithConfig(nil, Config{Jobs: 1, MaxIngestBytes: 1024,
		Catalog: catalog.New(catalog.Config{Dir: t.TempDir()})})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	big := fixtureV3Bytes(t, 2)
	if len(big) <= 1024 {
		t.Fatalf("fixture unexpectedly small (%d bytes)", len(big))
	}
	resp, err := ts2.Client().Post(ts2.URL+"/v1/ingest?service=svc&ts=1", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest = %d (%s), want 413", resp.StatusCode, data)
	}
	if e := apiErrorOf(t, data); e.Type != "body-too-large" {
		t.Fatalf("oversized ingest error type = %q", e.Type)
	}
	if st := srv2.Catalog().Stats(); st.Generations != 0 {
		t.Fatalf("oversized ingest published something: %+v", st)
	}
}

// TestIngestToSessionE2E walks the full lifecycle over HTTP: ingest a
// database, see it in the catalog, open a session over it by name, render,
// republish a new generation, and watch new sessions resolve to it while
// the old session keeps its own.
func TestIngestToSessionE2E(t *testing.T) {
	srv := NewWithConfig(nil, Config{Jobs: 1,
		Catalog: catalog.New(catalog.Config{Dir: t.TempDir()})})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()
	c := &client{t: t, base: ts.URL, hc: hc}

	ingest := func(query string, payload []byte) (int, []byte) {
		t.Helper()
		resp, err := hc.Post(ts.URL+"/v1/ingest?"+query, "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}

	genA := fixtureV3Bytes(t, 2)
	genB := fixtureV3Bytes(t, 3)

	// No default database: /v1/info and bare session creation are typed 404s.
	resp, err := hc.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || apiErrorOf(t, data).Type != "no-default-database" {
		t.Fatalf("/v1/info with no default = %d %s", resp.StatusCode, data)
	}
	status, data := postJSON(t, hc, ts.URL+"/v1/sessions", map[string]any{})
	if status != http.StatusNotFound || apiErrorOf(t, data).Type != "no-default-database" {
		t.Fatalf("bare session with no default = %d %s", status, data)
	}

	// Ingest generation A and serve a session over it.
	status, data = ingest("service=s3d&run=run1&ts=1", genA)
	if status != http.StatusCreated {
		t.Fatalf("ingest = %d: %s", status, data)
	}
	var ing ingestResponse
	if err := json.Unmarshal(data, &ing); err != nil || ing.Name != "s3d/run1@1" {
		t.Fatalf("ingest response %q: %v", data, err)
	}
	status, data = postJSON(t, hc, ts.URL+"/v1/sessions", map[string]any{"db": "s3d/run1"})
	if status != http.StatusCreated {
		t.Fatalf("session over ingested db = %d: %s", status, data)
	}
	var created createResponse
	if err := json.Unmarshal(data, &created); err != nil {
		t.Fatal(err)
	}
	if created.DB != "s3d/run1@1" {
		t.Fatalf("session db = %q, want s3d/run1@1", created.DB)
	}
	outA, errText, _ := c.exec(created.Token, "ls")
	if errText != "" || outA == "" {
		t.Fatalf("render over ingested db: %q / %q", outA, errText)
	}

	// Error shapes: duplicate, invalid payload, bad key, unknown name.
	if status, data = ingest("service=s3d&run=run1&ts=1", genA); status != http.StatusConflict || apiErrorOf(t, data).Type != "duplicate-generation" {
		t.Fatalf("duplicate ingest = %d %s", status, data)
	}
	bad := append([]byte(nil), genA...)
	for i := len(bad) / 2; i < len(bad)/2+256 && i < len(bad); i++ {
		bad[i] ^= 0x40
	}
	if status, data = ingest("service=s3d&run=run1&ts=9", bad); status != http.StatusUnprocessableEntity || apiErrorOf(t, data).Type != "invalid-database" {
		t.Fatalf("corrupt ingest = %d %s", status, data)
	}
	if status, data = ingest("service=bad..name&ts=x", genA); status != http.StatusBadRequest {
		t.Fatalf("bad key ingest = %d %s", status, data)
	}
	if status, data = postJSON(t, hc, ts.URL+"/v1/sessions", map[string]any{"db": "nope"}); status != http.StatusNotFound || apiErrorOf(t, data).Type != "unknown-database" {
		t.Fatalf("unknown db session = %d %s", status, data)
	}

	// Republish: generation B supersedes for NEW sessions; the session over
	// A renders exactly as before.
	if status, data = ingest("service=s3d&run=run1&ts=2", genB); status != http.StatusCreated {
		t.Fatalf("republish = %d: %s", status, data)
	}
	status, data = postJSON(t, hc, ts.URL+"/v1/sessions", map[string]any{"db": "s3d/run1"})
	if status != http.StatusCreated {
		t.Fatalf("session after republish = %d", status)
	}
	var created2 createResponse
	if err := json.Unmarshal(data, &created2); err != nil {
		t.Fatal(err)
	}
	if created2.DB != "s3d/run1@2" {
		t.Fatalf("post-republish session db = %q, want s3d/run1@2", created2.DB)
	}
	outB, errText, _ := c.exec(created2.Token, "ls")
	if errText != "" {
		t.Fatalf("render over republished db: %q", errText)
	}
	if outB == outA {
		t.Fatal("generations A and B render identically; the swap is unobservable")
	}
	if out, errText, _ := c.exec(created.Token, "ls"); errText != "" || out != outA {
		t.Fatal("in-flight session's render changed across a republish")
	}
	// Explicit @ts pins a session to the old generation.
	status, data = postJSON(t, hc, ts.URL+"/v1/sessions", map[string]any{"db": "s3d/run1@1"})
	if status != http.StatusCreated {
		t.Fatalf("session @1 = %d", status)
	}
	var created3 createResponse
	if err := json.Unmarshal(data, &created3); err != nil {
		t.Fatal(err)
	}
	if out, _, _ := c.exec(created3.Token, "ls"); out != outA {
		t.Fatal("@ts-pinned session did not see generation A")
	}

	st := getStats(t, hc, ts.URL)
	if st.Sessions != 3 || st.Catalog.Ingested != 2 || st.Catalog.IngestErrors == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
