package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// getReport fetches /v1/report+query and returns status and body.
func getReport(t *testing.T, base, query string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/report" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestReportEndpoint exercises GET /v1/report over the default snapshot
// and over named catalog entries, including the baseline diff.
func TestReportEndpoint(t *testing.T) {
	data := fixtureBytes(t)
	srv := New(lazySnapshot(t, data), nil, 1)
	defer srv.Close()
	if err := srv.AddSnapshot("other", lazySnapshot(t, data)); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddSnapshot("base", lazySnapshot(t, data)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := getReport(t, ts.URL, "")
	if status != http.StatusOK {
		t.Fatalf("default report: status %d: %s", status, body)
	}
	var rep struct {
		Program  string            `json:"program"`
		Ranks    int               `json:"ranks"`
		Scopes   int               `json:"scopes"`
		HotPaths []json.RawMessage `json:"hot_paths"`
		Waste    []json.RawMessage `json:"waste"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Ranks != 3 || rep.Scopes == 0 {
		t.Fatalf("report ranks=%d scopes=%d, want 3 ranks and scopes > 0", rep.Ranks, rep.Scopes)
	}
	if len(rep.HotPaths) == 0 {
		t.Fatal("report has no hot paths")
	}
	if len(rep.Waste) == 0 {
		t.Fatal("fixture has mean/max summaries but report has no waste analysis")
	}

	// Named db plus baseline: same bytes on both sides, so the diff runs
	// and reports no movers.
	status, body = getReport(t, ts.URL, "?db=other&baseline=base&top=3")
	if status != http.StatusOK {
		t.Fatalf("baseline report: status %d: %s", status, body)
	}
	var withBase struct {
		Regressions *struct {
			Regressions  []json.RawMessage `json:"regressions"`
			Improvements []json.RawMessage `json:"improvements"`
		} `json:"regressions"`
	}
	if err := json.Unmarshal(body, &withBase); err != nil {
		t.Fatal(err)
	}
	if withBase.Regressions == nil {
		t.Fatal("baseline given but report has no regressions section")
	}
	if n := len(withBase.Regressions.Regressions); n != 0 {
		t.Fatalf("identical databases diffed to %d regressions", n)
	}

	// Error paths.
	if status, _ := getReport(t, ts.URL, "?db=nope"); status != http.StatusNotFound {
		t.Fatalf("unknown db: status %d, want 404", status)
	}
	if status, _ := getReport(t, ts.URL, "?baseline=nope"); status != http.StatusNotFound {
		t.Fatalf("unknown baseline: status %d, want 404", status)
	}
	if status, _ := getReport(t, ts.URL, "?top=many"); status != http.StatusBadRequest {
		t.Fatalf("bad top: status %d, want 400", status)
	}
	if status, _ := getReport(t, ts.URL, "?threshold=hot"); status != http.StatusBadRequest {
		t.Fatalf("bad threshold: status %d, want 400", status)
	}
	if status, _ := getReport(t, ts.URL, "?metric=NOPE"); status == http.StatusOK {
		t.Fatal("unknown metric reported 200")
	}

	// Identical queries return identical bytes (report determinism holds
	// across the transport too).
	_, b1 := getReport(t, ts.URL, "?db=other&baseline=base")
	_, b2 := getReport(t, ts.URL, "?db=other&baseline=base")
	if string(b1) != string(b2) {
		t.Fatal("same report query returned different bytes")
	}
}

// TestReportEndpointNoDefault checks the no-default-database error and
// that concurrent report requests over one shared entry are safe.
func TestReportEndpointNoDefault(t *testing.T) {
	srv := NewWithConfig(nil, Config{Jobs: 1})
	defer srv.Close()
	if err := srv.AddSnapshot("only", lazySnapshot(t, fixtureBytes(t))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _ := getReport(t, ts.URL, ""); status != http.StatusNotFound {
		t.Fatalf("no default db: status %d, want 404", status)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/report?db=only")
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			if _, err := io.ReadAll(resp.Body); err != nil {
				errs <- err.Error()
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- resp.Status
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent report failed: %s", e)
	}
}
