package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// fixtureBytes builds the merged multi-rank toy experiment (summary columns
// in the v2 overrides section, so lazy opens exercise column fault-in) and
// serializes it.
func fixtureBytes(t *testing.T) []byte {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: 3, Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	cyc := res.Tree.Reg.ByName("CYCLES")
	if cyc == nil {
		t.Fatal("no CYCLES column")
	}
	if err := res.AddSummaries(cyc.ID, metric.OpMean, metric.OpMax); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := expdb.FromMerge(res).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func lazySnapshot(t *testing.T, data []byte) *engine.Snapshot {
	t.Helper()
	db, err := expdb.OpenLazy(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return engine.NewLazySnapshot(db)
}

type client struct {
	t    *testing.T
	base string
	hc   *http.Client
}

func (c *client) createSession() string {
	resp, err := c.hc.Post(c.base+"/v1/sessions", "application/json", nil)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		c.t.Fatalf("create session: status %d", resp.StatusCode)
	}
	var body struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		c.t.Fatal(err)
	}
	if body.Token == "" {
		c.t.Fatal("empty session token")
	}
	return body.Token
}

func (c *client) exec(token, line string) (output, errText string, quit bool) {
	payload, _ := json.Marshal(map[string]string{"line": line})
	resp, err := c.hc.Post(c.base+"/v1/sessions/"+token+"/exec", "application/json", bytes.NewReader(payload))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("exec %q: status %d", line, resp.StatusCode)
	}
	var body struct {
		Output string `json:"output"`
		Err    string `json:"error"`
		Quit   bool   `json:"quit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		c.t.Fatal(err)
	}
	return body.Output, body.Err, body.Quit
}

// TestHTTPSessionEquivalence is the transport half of the PR's acceptance
// gate: command streams executed over HTTP against one shared server
// produce byte-identical output to the same streams replayed through
// private engine sessions over private database opens. The HTTP layer adds
// tokens and JSON framing — never presentation semantics.
func TestHTTPSessionEquivalence(t *testing.T) {
	data := fixtureBytes(t)
	streams := [][]string{
		{"ls", "expand 0", "hot CYCLES", "view callers", "expandall", "ls"},
		{"view flat", "flatten", "sort CYCLES:excl", "ls", "stats CYCLES"},
		{"derived waste=$0*2", "sort waste", "expandall", "ls", "stats waste"},
		{"cols all", "sort name", "ls", "zoom 0", "ls", "out", "metrics"},
		{"view callers", "expand 0", "sort CYCLES", "ls", "view cc", "top 2", "ls"},
		{"hot CYCLES", "threshold 0.9", "hot CYCLES", "depth 3", "ls"},
		{"derived d2=$1+$0", "cols all", "sort d2", "ls", "hot d2", "ls"},
		{"expandall", "ls", "view flat", "flatten", "flatten", "ls", "unflatten", "ls"},
	}

	// Ground truth: isolated engine replays, one private snapshot each.
	want := make([]string, len(streams))
	for i, stream := range streams {
		s := engine.NewSession(lazySnapshot(t, data))
		var out strings.Builder
		for _, line := range stream {
			resp := s.Do(engine.Request{Line: line})
			out.WriteString(resp.Output)
			if resp.Err != "" {
				fmt.Fprintf(&out, "error: %s\n", resp.Err)
			}
		}
		s.Close()
		want[i] = out.String()
		if !strings.Contains(want[i], "scope") {
			t.Fatalf("stream %d produced no render:\n%s", i, want[i])
		}
	}

	srv := New(lazySnapshot(t, data), nil, 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	got := make([]string, len(streams))
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &client{t: t, base: ts.URL, hc: ts.Client()}
			token := c.createSession()
			var out strings.Builder
			for _, line := range streams[i] {
				output, errText, _ := c.exec(token, line)
				out.WriteString(output)
				if errText != "" {
					fmt.Fprintf(&out, "error: %s\n", errText)
				}
			}
			got[i] = out.String()
		}(i)
	}
	wg.Wait()

	for i := range got {
		if got[i] != want[i] {
			t.Errorf("HTTP stream %d diverged from isolated engine replay\n--- http ---\n%s\n--- engine ---\n%s",
				i, got[i], want[i])
		}
	}
}

// TestSessionLifecycle covers the transport contract: create, exec,
// delete, 404s for unknown tokens, quit closing server-side, and Close
// refusing new sessions.
func TestSessionLifecycle(t *testing.T) {
	srv := New(lazySnapshot(t, fixtureBytes(t)), nil, 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, hc: ts.Client()}

	// Health and info.
	resp, err := c.hc.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	resp, err = c.hc.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Nodes   int      `json:"nodes"`
		Metrics []string `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Nodes == 0 || len(info.Metrics) == 0 {
		t.Fatalf("empty info: %+v", info)
	}

	token := c.createSession()
	if srv.SessionCount() != 1 {
		t.Fatalf("session count = %d, want 1", srv.SessionCount())
	}
	if out, errText, _ := c.exec(token, "ls"); errText != "" || !strings.Contains(out, "scope") {
		t.Fatalf("ls over HTTP: err=%q out=%q", errText, out)
	}

	// Unknown token → 404.
	payload := strings.NewReader(`{"line":"ls"}`)
	resp, err = c.hc.Post(ts.URL+"/v1/sessions/nope/exec", "application/json", payload)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown token: status %d, want 404", resp.StatusCode)
	}

	// quit closes the session server-side; the token is then dead.
	if _, _, quit := c.exec(token, "quit"); !quit {
		t.Fatal("quit not reported")
	}
	if srv.SessionCount() != 0 {
		t.Fatalf("session survived quit: count %d", srv.SessionCount())
	}
	resp, err = c.hc.Post(ts.URL+"/v1/sessions/"+token+"/exec", "application/json", strings.NewReader(`{"line":"ls"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dead token: status %d, want 404", resp.StatusCode)
	}

	// DELETE on a live session, then 404 on repeat.
	token2 := c.createSession()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+token2, nil)
	resp, err = c.hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", resp.StatusCode)
	}
	resp, err = c.hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("repeat delete: status %d, want 404", resp.StatusCode)
	}

	// After Close, new sessions are refused.
	srv.Close()
	resp, err = c.hc.Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create after close: status %d, want 503", resp.StatusCode)
	}
}
