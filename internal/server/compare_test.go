package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// fixtureAt serializes the toy workload merged at the given rank count, so
// compare tests get a genuine weak-scaling pair of lazily opened databases.
func fixtureAt(t *testing.T, ranks int) []byte {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: ranks, Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := expdb.FromMerge(res).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postJSON posts a JSON body and returns status and response bytes.
func postJSON(t *testing.T, hc *http.Client, url string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestCompareEndpoint(t *testing.T) {
	srv := New(lazySnapshot(t, fixtureAt(t, 2)), nil, 1)
	defer srv.Close()
	if err := srv.AddSnapshot("big", lazySnapshot(t, fixtureAt(t, 6))); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddSnapshot("big", lazySnapshot(t, fixtureAt(t, 6))); err == nil {
		t.Fatal("duplicate catalog name did not error")
	}
	if err := srv.AddSnapshot("bad name", nil); err == nil {
		t.Fatal("catalog name with a space did not error")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()

	// Catalog listing.
	resp, err := hc.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var cat catalogResponse
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cat.Databases) != 1 || cat.Databases[0] != "big" {
		t.Fatalf("catalog = %v, want [big]", cat.Databases)
	}

	// A weak-scaling compare of the served database against "big".
	status, data := postJSON(t, hc, ts.URL+"/v1/compare", map[string]any{"other": "big", "threshold": -1, "top": -1})
	if status != http.StatusOK {
		t.Fatalf("compare: status %d: %s", status, data)
	}
	var rep struct {
		Mode      string `json:"mode"`
		PerRank   bool   `json:"per_rank"`
		BaseRanks int    `json:"base_ranks"`
		Ranks     int    `json:"ranks"`
		Metric    string `json:"metric"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("compare response is not JSON: %v\n%s", err, data)
	}
	if rep.Mode != "weak" || !rep.PerRank || rep.BaseRanks != 2 || rep.Ranks != 6 {
		t.Fatalf("report header = %+v, want weak per-rank 2->6", rep)
	}

	// The same compare again hits the cached union and matches bytes.
	status2, data2 := postJSON(t, hc, ts.URL+"/v1/compare", map[string]any{"other": "big", "threshold": -1, "top": -1})
	if status2 != http.StatusOK || !bytes.Equal(data, data2) {
		t.Fatalf("repeat compare diverged (status %d)", status2)
	}
	srv.diffMu.Lock()
	cached := len(srv.diffs)
	srv.diffMu.Unlock()
	if cached != 1 {
		t.Fatalf("cached %d diffs, want 1", cached)
	}

	// Error shapes.
	for _, tc := range []struct {
		body map[string]any
		want int
	}{
		{map[string]any{}, http.StatusBadRequest},
		{map[string]any{"other": "nope"}, http.StatusNotFound},
		{map[string]any{"base": "nope", "other": "big"}, http.StatusNotFound},
		{map[string]any{"other": "big", "mode": "sideways"}, http.StatusBadRequest},
		{map[string]any{"other": "big", "metric": "WATTS"}, http.StatusUnprocessableEntity},
	} {
		status, data := postJSON(t, hc, ts.URL+"/v1/compare", tc.body)
		if status != tc.want {
			t.Fatalf("compare %v: status %d, want %d (%s)", tc.body, status, tc.want, data)
		}
	}
}

// TestSessionDiffOverHTTP drives the engine's diff command through the
// HTTP session surface: the catalog attached to server sessions is the
// same one the compare endpoint reads.
func TestSessionDiffOverHTTP(t *testing.T) {
	srv := New(lazySnapshot(t, fixtureAt(t, 2)), nil, 1)
	defer srv.Close()
	if err := srv.AddSnapshot("big", lazySnapshot(t, fixtureAt(t, 6))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, hc: ts.Client()}
	token := c.createSession()

	out, errText, _ := c.exec(token, "catalog")
	if errText != "" || !strings.Contains(out, "big") {
		t.Fatalf("catalog: %q / %q", out, errText)
	}
	out, errText, _ = c.exec(token, "diff big CYCLES weak")
	if errText != "" {
		t.Fatalf("diff: %s", errText)
	}
	if !strings.Contains(out, `vs B "big"`) || !strings.Contains(out, "mode weak") {
		t.Fatalf("diff banner missing: %q", out)
	}
	if !strings.Contains(out, "CYCLES[loss(B)") { // header may truncate the name
		t.Fatalf("rendered diff lacks the loss column: %q", out)
	}
	out, errText, _ = c.exec(token, "sort CYCLES[loss(B)]")
	if errText != "" || !strings.Contains(out, "scope") {
		t.Fatalf("sort over loss column: %q / %q", out, errText)
	}
	if _, errText, _ = c.exec(token, "back"); errText != "" {
		t.Fatalf("back: %s", errText)
	}
	if out, _, _ := c.exec(token, "metrics"); strings.Contains(out, "loss(") {
		t.Fatalf("back did not restore the original metrics: %q", out)
	}
}
