package server

// Live-serving chaos for the HTTP layer: panics, stuck commands and
// request floods are injected into a serving process (via testExecHook —
// the hook runs inside the exec goroutine, exactly where a real engine
// bug would fire) and the process must degrade per contract: typed
// errors, killed sessions, shed requests — never a crash, never a wedge.
// `make chaos` runs these under -race.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestChaosPanicIsolation: a panic inside one session's command kills that
// session — typed 500, token gone, counted — while the process and every
// other session keep serving.
func TestChaosPanicIsolation(t *testing.T) {
	srv := New(lazySnapshot(t, fixtureBytes(t)), nil, 1)
	defer srv.Close()
	srv.testExecHook = func(line string) {
		if strings.Contains(line, "BOOM") {
			panic("injected chaos panic")
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()
	c := &client{t: t, base: ts.URL, hc: hc}

	victim := c.createSession()
	bystander := c.createSession()

	status, data := postJSON(t, hc, ts.URL+"/v1/sessions/"+victim+"/exec", map[string]string{"line": "ls BOOM"})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking exec = %d (%s), want 500", status, data)
	}
	if e := apiErrorOf(t, data); e.Type != "session-panic" {
		t.Fatalf("panic error type = %q", e.Type)
	}
	// The victim session is dead...
	status, _ = postJSON(t, hc, ts.URL+"/v1/sessions/"+victim+"/exec", map[string]string{"line": "ls"})
	if status != http.StatusNotFound {
		t.Fatalf("exec on panicked session = %d, want 404", status)
	}
	// ...the bystander is fine, repeatedly...
	for i := 0; i < 3; i++ {
		if out, errText, _ := c.exec(bystander, "ls"); errText != "" || out == "" {
			t.Fatalf("bystander exec %d: %q / %q", i, out, errText)
		}
	}
	// ...and the books record exactly one panic.
	st := getStats(t, hc, ts.URL)
	if st.SessionPanics != 1 || st.Sessions != 1 {
		t.Fatalf("stats after panic = %+v", st)
	}
}

// TestChaosDeadlineKillsSession: a command that outlives ExecTimeout gets
// a typed 504, its session is killed (not the process), and the counter
// moves. The stuck goroutine drains into the buffered result channel.
func TestChaosDeadlineKillsSession(t *testing.T) {
	gate := make(chan struct{})
	srv := NewWithConfig(lazySnapshot(t, fixtureBytes(t)), Config{Jobs: 1, ExecTimeout: 50 * time.Millisecond})
	defer srv.Close()
	srv.testExecHook = func(line string) {
		if strings.Contains(line, "STALL") {
			<-gate
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()
	c := &client{t: t, base: ts.URL, hc: hc}

	token := c.createSession()
	status, data := postJSON(t, hc, ts.URL+"/v1/sessions/"+token+"/exec", map[string]string{"line": "ls STALL"})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("stalled exec = %d (%s), want 504", status, data)
	}
	if e := apiErrorOf(t, data); e.Type != "deadline-exceeded" {
		t.Fatalf("deadline error type = %q", e.Type)
	}
	close(gate) // unwedge the goroutine; it drains into the buffered channel
	status, _ = postJSON(t, hc, ts.URL+"/v1/sessions/"+token+"/exec", map[string]string{"line": "ls"})
	if status != http.StatusNotFound {
		t.Fatalf("exec on timed-out session = %d, want 404", status)
	}
	if st := getStats(t, hc, ts.URL); st.ExecTimeouts != 1 {
		t.Fatalf("stats after timeout = %+v", st)
	}
	// The server still creates and serves fresh sessions.
	fresh := c.createSession()
	if out, errText, _ := c.exec(fresh, "ls"); errText != "" || out == "" {
		t.Fatalf("fresh session after timeout: %q / %q", out, errText)
	}
}

// TestChaosAdmissionFlood: with one execution slot held hostage, a flood
// of requests must split into exactly the contract's three outcomes —
// served (200), queued-then-expired (429) or shed immediately (503) —
// every shed response carrying Retry-After and a typed error, and the
// books balancing: served + shed = flood.
func TestChaosAdmissionFlood(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv := NewWithConfig(lazySnapshot(t, fixtureBytes(t)), Config{
		Jobs:         1,
		MaxInflight:  1,
		MaxQueue:     2,
		QueueTimeout: 100 * time.Millisecond,
	})
	defer srv.Close()
	srv.testExecHook = func(line string) {
		if strings.Contains(line, "HOLD") {
			entered <- struct{}{}
			<-gate
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()
	c := &client{t: t, base: ts.URL, hc: hc}
	token := c.createSession()

	// Occupy the only slot.
	var hostage sync.WaitGroup
	hostage.Add(1)
	go func() {
		defer hostage.Done()
		status, _ := postJSON(t, hc, ts.URL+"/v1/sessions/"+token+"/exec", map[string]string{"line": "ls HOLD"})
		if status != http.StatusOK {
			t.Errorf("hostage exec = %d", status)
		}
	}()
	<-entered

	// Flood. Every response must be one of the three contract outcomes.
	const flood = 12
	statuses := make(chan int, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/"+token+"/exec",
				strings.NewReader(`{"line":"ls"}`))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := hc.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("shed %d response lacks Retry-After", resp.StatusCode)
				}
			default:
				t.Errorf("flood response %d outside the contract", resp.StatusCode)
			}
			statuses <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(statuses)
	counts := map[int]int{}
	for s := range statuses {
		counts[s]++
	}
	// The slot is hostage and the queue holds 2 with a 100ms expiry: at
	// least flood-3 requests must have been shed outright, and none can
	// have been served while the gate was closed.
	if counts[http.StatusOK] != 0 {
		t.Fatalf("%d requests served while the only slot was hostage: %v", counts[http.StatusOK], counts)
	}
	shed := counts[http.StatusTooManyRequests] + counts[http.StatusServiceUnavailable]
	if shed != flood {
		t.Fatalf("flood outcomes don't balance: %v", counts)
	}
	if counts[http.StatusServiceUnavailable] < flood-3 {
		t.Fatalf("queue of 2 shed only %d immediately: %v", counts[http.StatusServiceUnavailable], counts)
	}

	close(gate)
	hostage.Wait()

	// Recovery: with the slot free, the same session serves again.
	if out, errText, _ := c.exec(token, "ls"); errText != "" || out == "" {
		t.Fatalf("exec after flood: %q / %q", out, errText)
	}
	st := getStats(t, hc, ts.URL)
	if st.ShedRequests < uint64(flood) {
		t.Fatalf("shed counter %d < flood %d", st.ShedRequests, flood)
	}
}
