package server

// Live-serving chaos for the HTTP layer: panics, stuck commands and
// request floods are injected into a serving process (via testExecHook —
// the hook runs inside the exec goroutine, exactly where a real engine
// bug would fire) and the process must degrade per contract: typed
// errors, killed sessions, shed requests — never a crash, never a wedge.
// `make chaos` runs these under -race.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestChaosPanicIsolation: a panic inside one session's command kills that
// session — typed 500, token gone, counted — while the process and every
// other session keep serving.
func TestChaosPanicIsolation(t *testing.T) {
	srv := New(lazySnapshot(t, fixtureBytes(t)), nil, 1)
	defer srv.Close()
	srv.testExecHook = func(line string) {
		if strings.Contains(line, "BOOM") {
			panic("injected chaos panic")
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()
	c := &client{t: t, base: ts.URL, hc: hc}

	victim := c.createSession()
	bystander := c.createSession()

	status, data := postJSON(t, hc, ts.URL+"/v1/sessions/"+victim+"/exec", map[string]string{"line": "ls BOOM"})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking exec = %d (%s), want 500", status, data)
	}
	if e := apiErrorOf(t, data); e.Type != "session-panic" {
		t.Fatalf("panic error type = %q", e.Type)
	}
	// The victim session is dead...
	status, _ = postJSON(t, hc, ts.URL+"/v1/sessions/"+victim+"/exec", map[string]string{"line": "ls"})
	if status != http.StatusNotFound {
		t.Fatalf("exec on panicked session = %d, want 404", status)
	}
	// ...the bystander is fine, repeatedly...
	for i := 0; i < 3; i++ {
		if out, errText, _ := c.exec(bystander, "ls"); errText != "" || out == "" {
			t.Fatalf("bystander exec %d: %q / %q", i, out, errText)
		}
	}
	// ...and the books record exactly one panic.
	st := getStats(t, hc, ts.URL)
	if st.SessionPanics != 1 || st.Sessions != 1 {
		t.Fatalf("stats after panic = %+v", st)
	}
}

// TestChaosDeadlineKillsSession: a command that outlives ExecTimeout gets
// a typed 504, its session is killed (not the process), and the counter
// moves. The stuck goroutine drains into the buffered result channel.
func TestChaosDeadlineKillsSession(t *testing.T) {
	gate := make(chan struct{})
	srv := NewWithConfig(lazySnapshot(t, fixtureBytes(t)), Config{Jobs: 1, ExecTimeout: 50 * time.Millisecond})
	defer srv.Close()
	srv.testExecHook = func(line string) {
		if strings.Contains(line, "STALL") {
			<-gate
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()
	c := &client{t: t, base: ts.URL, hc: hc}

	token := c.createSession()
	status, data := postJSON(t, hc, ts.URL+"/v1/sessions/"+token+"/exec", map[string]string{"line": "ls STALL"})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("stalled exec = %d (%s), want 504", status, data)
	}
	if e := apiErrorOf(t, data); e.Type != "deadline-exceeded" {
		t.Fatalf("deadline error type = %q", e.Type)
	}
	close(gate) // unwedge the goroutine; it drains into the buffered channel
	status, _ = postJSON(t, hc, ts.URL+"/v1/sessions/"+token+"/exec", map[string]string{"line": "ls"})
	if status != http.StatusNotFound {
		t.Fatalf("exec on timed-out session = %d, want 404", status)
	}
	if st := getStats(t, hc, ts.URL); st.ExecTimeouts != 1 {
		t.Fatalf("stats after timeout = %+v", st)
	}
	// The server still creates and serves fresh sessions.
	fresh := c.createSession()
	if out, errText, _ := c.exec(fresh, "ls"); errText != "" || out == "" {
		t.Fatalf("fresh session after timeout: %q / %q", out, errText)
	}
}

// TestChaosAdmissionFlood: with one execution slot held hostage, a flood
// of requests must split into exactly the contract's three outcomes —
// served (200), queued-then-expired (429) or shed immediately (503) —
// every shed response carrying Retry-After and a typed error, and the
// books balancing: served + shed = flood.
func TestChaosAdmissionFlood(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv := NewWithConfig(lazySnapshot(t, fixtureBytes(t)), Config{
		Jobs:         1,
		MaxInflight:  1,
		MaxQueue:     2,
		QueueTimeout: 100 * time.Millisecond,
	})
	defer srv.Close()
	srv.testExecHook = func(line string) {
		if strings.Contains(line, "HOLD") {
			entered <- struct{}{}
			<-gate
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()
	c := &client{t: t, base: ts.URL, hc: hc}
	token := c.createSession()

	// Occupy the only slot.
	var hostage sync.WaitGroup
	hostage.Add(1)
	go func() {
		defer hostage.Done()
		status, _ := postJSON(t, hc, ts.URL+"/v1/sessions/"+token+"/exec", map[string]string{"line": "ls HOLD"})
		if status != http.StatusOK {
			t.Errorf("hostage exec = %d", status)
		}
	}()
	<-entered

	// Flood. Every response must be one of the three contract outcomes.
	const flood = 12
	statuses := make(chan int, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/"+token+"/exec",
				strings.NewReader(`{"line":"ls"}`))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := hc.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("shed %d response lacks Retry-After", resp.StatusCode)
				}
			default:
				t.Errorf("flood response %d outside the contract", resp.StatusCode)
			}
			statuses <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(statuses)
	counts := map[int]int{}
	for s := range statuses {
		counts[s]++
	}
	// The slot is hostage and the queue holds 2 with a 100ms expiry: at
	// least flood-3 requests must have been shed outright, and none can
	// have been served while the gate was closed.
	if counts[http.StatusOK] != 0 {
		t.Fatalf("%d requests served while the only slot was hostage: %v", counts[http.StatusOK], counts)
	}
	shed := counts[http.StatusTooManyRequests] + counts[http.StatusServiceUnavailable]
	if shed != flood {
		t.Fatalf("flood outcomes don't balance: %v", counts)
	}
	if counts[http.StatusServiceUnavailable] < flood-3 {
		t.Fatalf("queue of 2 shed only %d immediately: %v", counts[http.StatusServiceUnavailable], counts)
	}

	close(gate)
	hostage.Wait()

	// Recovery: with the slot free, the same session serves again.
	if out, errText, _ := c.exec(token, "ls"); errText != "" || out == "" {
		t.Fatalf("exec after flood: %q / %q", out, errText)
	}
	st := getStats(t, hc, ts.URL)
	if st.ShedRequests < uint64(flood) {
		t.Fatalf("shed counter %d < flood %d", st.ShedRequests, flood)
	}
}

// TestChaosDeadlineNeverUnmapsUnderReader is the PR invariant at its
// sharpest: when a deadline kills a session whose worker is still inside
// the engine — and that session holds the LAST reference on its snapshot —
// the release (and so the munmap, for mapped databases) must not happen
// until the worker drains. Releasing at the 504 would hand unmapped memory
// to a goroutine mid-read.
func TestChaosDeadlineNeverUnmapsUnderReader(t *testing.T) {
	gate := make(chan struct{})
	stalled := make(chan struct{})
	snap := lazySnapshot(t, fixtureBytes(t))
	unmapped := make(chan struct{})
	snap.OnLastRelease(func() { close(unmapped) })

	srv := NewWithConfig(snap, Config{Jobs: 1, ExecTimeout: 50 * time.Millisecond})
	srv.testExecHook = func(line string) {
		if strings.Contains(line, "STALL") {
			close(stalled)
			<-gate
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()
	c := &client{t: t, base: ts.URL, hc: hc}

	token := c.createSession()
	// Drop the test's own reference: the session now holds the last one,
	// so the session's close is exactly the snapshot's release point.
	snap.Release()

	status, _ := postJSON(t, hc, ts.URL+"/v1/sessions/"+token+"/exec", map[string]string{"line": "ls STALL"})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("stalled exec = %d, want 504", status)
	}
	<-stalled
	// The 504 is out but the worker is still wedged inside the session:
	// the snapshot must still be alive.
	select {
	case <-unmapped:
		t.Fatal("snapshot released while a worker was still inside the session")
	case <-time.After(100 * time.Millisecond):
	}
	// Unwedge the worker; the reaper now drains it and closes the session,
	// which is when the last reference — and the mapping — may go.
	close(gate)
	select {
	case <-unmapped:
	case <-time.After(2 * time.Second):
		t.Fatal("snapshot never released after the worker drained")
	}
}

// TestChaosPanicReleasesQueuedRequest: a panic must not poison the
// session's request lock. A request already past the token lookup and
// queued behind the panicking command must complete promptly — served, or
// refused with the typed dead-session 404 — never wedge until its own
// deadline leaks a goroutine and an admission slot.
func TestChaosPanicReleasesQueuedRequest(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	srv := NewWithConfig(lazySnapshot(t, fixtureBytes(t)), Config{Jobs: 1, ExecTimeout: 10 * time.Second})
	defer srv.Close()
	srv.testExecHook = func(line string) {
		if strings.Contains(line, "BOOM") {
			close(entered)
			<-gate
			panic("injected chaos panic")
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()
	c := &client{t: t, base: ts.URL, hc: hc}
	token := c.createSession()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, _ := postJSON(t, hc, ts.URL+"/v1/sessions/"+token+"/exec", map[string]string{"line": "ls BOOM"})
		if status != http.StatusInternalServerError {
			t.Errorf("panicking exec = %d, want 500", status)
		}
	}()
	<-entered

	// Queue a second request behind the held session lock, then let the
	// first one panic under it.
	queued := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, _ := postJSON(t, hc, ts.URL+"/v1/sessions/"+token+"/exec", map[string]string{"line": "ls"})
		queued <- status
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the session lock
	close(gate)

	select {
	case status := <-queued:
		if status != http.StatusOK && status != http.StatusNotFound {
			t.Fatalf("queued request after panic = %d, want 200 or 404", status)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request queued behind a panic wedged on the poisoned session lock")
	}
	wg.Wait()
	if st := getStats(t, hc, ts.URL); st.ExecTimeouts != 0 {
		t.Fatalf("queued request hit its deadline instead of draining: %+v", st)
	}
}
