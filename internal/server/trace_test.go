package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// tracedV3Bytes builds a v3 database with trace sections.
func tracedV3Bytes(t *testing.T, ranks int) []byte {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{
		NRanks: ranks,
		Events: sampler.DefaultEvents(spec.Period),
		Trace:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	e := expdb.FromMerge(res)
	if err := expdb.TraceRanksFromProfiles(e, doc, profs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteBinaryV3(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func publishBytes(t *testing.T, c *catalog.Catalog, key catalog.Key, data []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "exp.db")
	err := expdb.WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(key, path); err != nil {
		t.Fatal(err)
	}
}

func getJSON(t *testing.T, hc *http.Client, url string, dst any) int {
	t.Helper()
	resp, err := hc.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dst != nil {
		if err := json.Unmarshal(data, dst); err != nil {
			t.Fatalf("bad JSON (%v): %s", err, data)
		}
	}
	return resp.StatusCode
}

func TestTraceEndpoint(t *testing.T) {
	cat := catalog.New(catalog.Config{})
	publishBytes(t, cat, catalog.Key{Service: "svc", Run: "r", Ts: 1}, tracedV3Bytes(t, 3))
	srv := NewWithConfig(nil, Config{Catalog: cat})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()

	var g traceResponse
	if status := getJSON(t, hc, ts.URL+"/v1/trace?db=svc/r&w=32&h=3", &g); status != http.StatusOK {
		t.Fatalf("trace status %d", status)
	}
	if g.W != 32 || g.H != 3 || len(g.Ranks) != 3 {
		t.Fatalf("grid shape %dx%d ranks %v", g.W, g.H, g.Ranks)
	}
	if len(g.CPID) != 32*3 || len(g.Depth) != 32*3 || len(g.Samples) != 32*3 {
		t.Fatalf("cell arrays %d/%d/%d, want %d", len(g.CPID), len(g.Depth), len(g.Samples), 32*3)
	}
	nonEmpty := 0
	for i, id := range g.CPID {
		if id == trace.EmptyCPID {
			continue
		}
		nonEmpty++
		if g.Depth[i] == 0 && g.Samples[i] == 0 {
			t.Fatalf("cell %d: cpid %d with zero depth and samples", i, id)
		}
	}
	if nonEmpty == 0 {
		t.Fatal("grid is entirely empty")
	}
	if len(g.Labels) == 0 {
		t.Fatal("no labels returned")
	}

	// Narrow window renders and respects bounds.
	if status := getJSON(t, hc, ts.URL+"/v1/trace?db=svc/r&w=8&t0=0&t1=500", &g); status != http.StatusOK {
		t.Fatalf("windowed trace status %d", status)
	}
	if g.T0 != 0 || g.T1 != 500 || g.W != 8 {
		t.Fatalf("window [%d,%d) w=%d", g.T0, g.T1, g.W)
	}

	// Typed errors: bad params, unknown db, trace-less db.
	if status := getJSON(t, hc, ts.URL+"/v1/trace?db=svc/r&w=zap", nil); status != http.StatusBadRequest {
		t.Fatalf("bad width status %d", status)
	}
	if status := getJSON(t, hc, ts.URL+"/v1/trace?db=nope", nil); status != http.StatusNotFound {
		t.Fatalf("unknown db status %d", status)
	}
	publishBytes(t, cat, catalog.Key{Service: "plain", Ts: 1}, fixtureAt(t, 2))
	if status := getJSON(t, hc, ts.URL+"/v1/trace?db=plain", nil); status != http.StatusNotFound {
		t.Fatalf("trace-less db status %d", status)
	}
	// No default database and no ?db=.
	if status := getJSON(t, hc, ts.URL+"/v1/trace", nil); status != http.StatusNotFound {
		t.Fatalf("no-default status %d", status)
	}
}

func TestPickEndpoint(t *testing.T) {
	cat := catalog.New(catalog.Config{MaxGenerations: 10})
	publishBytes(t, cat, catalog.Key{Service: "svc", Run: "r", Ts: 1}, tracedV3Bytes(t, 4))
	publishBytes(t, cat, catalog.Key{Service: "svc", Run: "r", Ts: 2}, tracedV3Bytes(t, 6))
	publishBytes(t, cat, catalog.Key{Service: "svc", Run: "r", Ts: 3}, tracedV3Bytes(t, 2))
	srv := NewWithConfig(nil, Config{Catalog: cat})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc := ts.Client()

	cases := []struct {
		query  string
		wantTs int64
	}{
		{"series=svc/r", 3},
		{"series=svc/r&strategy=most-samples", 2},
		{"series=svc/r&strategy=p50", 1},
	}
	for _, tc := range cases {
		var p pickResponse
		if status := getJSON(t, hc, ts.URL+"/v1/pick?"+tc.query, &p); status != http.StatusOK {
			t.Fatalf("%s: status %d", tc.query, status)
		}
		if p.Ts != tc.wantTs {
			t.Fatalf("%s -> @%d, want @%d", tc.query, p.Ts, tc.wantTs)
		}
	}
	if status := getJSON(t, hc, ts.URL+"/v1/pick?series=svc/r&strategy=zap", nil); status != http.StatusBadRequest {
		t.Fatalf("bad strategy status %d", status)
	}
	if status := getJSON(t, hc, ts.URL+"/v1/pick?series=nope&strategy=p50", nil); status != http.StatusNotFound {
		t.Fatalf("unknown series status %d", status)
	}
	if status := getJSON(t, hc, ts.URL+"/v1/pick", nil); status != http.StatusBadRequest {
		t.Fatalf("missing series status %d", status)
	}
}
