package core

import "repro/internal/metric"

// nodeArena allocates Nodes in chunked slabs. A CCT allocates tens of
// thousands of scopes that live and die together with their tree, so
// individual heap objects buy nothing and cost an allocation (plus GC
// bookkeeping) each. Slabs are never reallocated — a full slab is simply
// retired and a fresh one started — so node pointers stay stable for the
// life of the tree.
//
// An arena is single-writer: a tree is built by one goroutine at a time
// (the tree's own construction, one merge reduction step, or one Callers
// View root expansion, which owns a private arena per root). Concurrent
// readers only follow node pointers, never alloc.
type nodeArena struct {
	slab []Node
	// store is the columnar metric store backing this arena's nodes: each
	// alloc claims one dense row and binds the node's Base/Incl/Excl views
	// to it. One store per arena keeps the invariant that slab views never
	// alias across trees (a tree, a callers-view root, a flat view each
	// own a private store, so parallel builders never share slabs).
	store *metric.Store
}

// Slab capacities double from arenaMinChunk to arenaMaxChunk: a toy tree
// (a merge shard, one Callers View root) pays for a handful of nodes, while
// a production CCT quickly reaches full-size slabs that amortize allocation
// to noise.
const (
	arenaMinChunk = 8
	arenaMaxChunk = 512
)

// alloc returns a pointer to a zeroed Node inside the current slab,
// starting a new slab when full.
func (a *nodeArena) alloc() *Node {
	if len(a.slab) == cap(a.slab) {
		c := 2 * cap(a.slab)
		if c < arenaMinChunk {
			c = arenaMinChunk
		}
		if c > arenaMaxChunk {
			c = arenaMaxChunk
		}
		a.slab = make([]Node, 0, c)
	}
	a.slab = a.slab[:len(a.slab)+1]
	n := &a.slab[len(a.slab)-1]
	if a.store != nil {
		row := a.store.AddRow()
		n.Base = metric.NewView(a.store, metric.PlaneBase, row)
		n.Incl = metric.NewView(a.store, metric.PlaneIncl, row)
		n.Excl = metric.NewView(a.store, metric.PlaneExcl, row)
	}
	return n
}
