package core

import (
	"fmt"

	"repro/internal/metric"
)

// ComputeMetrics performs the initialization step of Section IV-A: it
// computes presented exclusive costs per Equation 1 and inclusive costs per
// Equation 2 from the directly attributed Base values.
//
// Rules (Equation 1), using the paper's hybrid definition:
//   - dynamic scopes (frames): exclusive is the sum of Base over every
//     descendant reachable without crossing another frame — "sum every
//     descendant statement of x that is not across a call site";
//   - other static scopes (loops, inlined code): exclusive is the sum of
//     Base over direct statement children only, so a loop's exclusive
//     excludes its nested loops (Figure 2a: l1 = 0 while l2 = 4);
//   - statements keep their Base.
//
// Inclusive costs (Equation 2) are the bottom-up sums of Base, so a fused
// call-site/callee line reports "the cost of the callee and any routine it
// calls" (Section V-B).
func (t *Tree) ComputeMetrics() {
	t.computeMu.Lock()
	defer t.computeMu.Unlock()
	t.recomputeMetrics()
}

// EnsureComputed computes presented metrics once; concurrent callers (e.g.
// several goroutines building views over one shared tree) serialize on the
// tree's compute lock and all but the first become no-ops.
func (t *Tree) EnsureComputed() {
	t.computeMu.Lock()
	defer t.computeMu.Unlock()
	if !t.computed {
		t.recomputeMetrics()
	}
}

// recomputeMetrics does the actual Equation 1/2 walk; callers hold
// computeMu.
func (t *Tree) recomputeMetrics() {
	// The walk works with value vectors and assigns them into the node
	// without re-cloning: AddVector never aliases its argument's storage
	// (the empty-receiver path copies), so a child's published Incl/Excl
	// sharing arrays with the vector returned to its parent is safe — the
	// parent only reads it.
	var visit func(n *Node) (incl, frameLocal metric.Vector)
	visit = func(n *Node) (metric.Vector, metric.Vector) {
		incl := n.Base.CloneValue()
		frameLocal := n.Base.CloneValue()
		for _, c := range n.Children {
			ci, cf := visit(c)
			incl.AddVector(&ci)
			if c.Kind != KindFrame {
				frameLocal.AddVector(&cf)
			}
		}
		switch n.Kind {
		case KindFrame:
			n.Excl = frameLocal
		case KindLoop, KindAlien:
			ex := n.Base.CloneValue()
			for _, c := range n.Children {
				if c.Kind == KindStmt {
					ex.AddVector(&c.Base)
				}
			}
			n.Excl = ex
		case KindStmt:
			n.Excl = n.Base.CloneValue()
		case KindRoot:
			n.Excl = metric.Vector{}
		default:
			n.Excl = n.Base.CloneValue()
		}
		n.Incl = incl
		return incl, frameLocal
	}
	visit(t.Root)
	t.computed = true
}

// StaticExcl computes a frame's exclusive cost under the *static* rule: the
// sum of Base over its direct statement children. This is what the Flat
// View's dynamic call-site rows report (Figure 2c's hy shows 0 because all
// of h's samples are nested in loops, not direct children).
func StaticExcl(frame *Node) *metric.Vector {
	ex := frame.Base.Clone()
	for _, c := range frame.Children {
		if c.Kind == KindStmt {
			ex.AddVector(&c.Base)
		}
	}
	return ex
}

// ApplyDerived evaluates every Derived column of the registry over each
// node of the subtree rooted at start, storing results in both the
// exclusive and inclusive vectors (a derived column is a spreadsheet
// formula applied row-wise to whichever flavor is displayed, Section V-D).
func ApplyDerived(reg *metric.Registry, start *Node) error {
	type compiled struct {
		id   int
		expr *metric.Expr
	}
	var derived []compiled
	for _, d := range reg.Columns() {
		if d.Kind != metric.Derived {
			continue
		}
		e, err := d.Expr()
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		derived = append(derived, compiled{id: d.ID, expr: e})
	}
	if len(derived) == 0 {
		return nil
	}
	// Evaluation errors (possible only for hand-built expression trees;
	// Parse validates operators and functions) abort the walk and surface
	// as a typed error instead of a panic mid-traversal.
	var evalErr error
	Walk(start, func(n *Node) bool {
		if evalErr != nil {
			return false
		}
		for _, d := range derived {
			ev, err := d.expr.Eval(metric.EnvFunc(func(id int) float64 { return n.Excl.Get(id) }))
			if err != nil {
				evalErr = err
				return false
			}
			n.Excl.Set(d.id, ev)
			iv, err := d.expr.Eval(metric.EnvFunc(func(id int) float64 { return n.Incl.Get(id) }))
			if err != nil {
				evalErr = err
				return false
			}
			n.Incl.Set(d.id, iv)
		}
		return true
	})
	if evalErr != nil {
		return fmt.Errorf("core: %w", evalErr)
	}
	return nil
}

// ApplyDerivedTree applies derived metrics to the whole tree.
func (t *Tree) ApplyDerivedTree() error { return ApplyDerived(t.Reg, t.Root) }
