package core

import (
	"fmt"

	"repro/internal/metric"
)

// ComputeMetrics performs the initialization step of Section IV-A: it
// computes presented exclusive costs per Equation 1 and inclusive costs per
// Equation 2 from the directly attributed Base values.
//
// Rules (Equation 1), using the paper's hybrid definition:
//   - dynamic scopes (frames): exclusive is the sum of Base over every
//     descendant reachable without crossing another frame — "sum every
//     descendant statement of x that is not across a call site";
//   - other static scopes (loops, inlined code): exclusive is the sum of
//     Base over direct statement children only, so a loop's exclusive
//     excludes its nested loops (Figure 2a: l1 = 0 while l2 = 4);
//   - statements keep their Base.
//
// Inclusive costs (Equation 2) are the bottom-up sums of Base, so a fused
// call-site/callee line reports "the cost of the callee and any routine it
// calls" (Section V-B).
//
// On a store-backed tree the computation runs column-at-a-time over the
// contiguous metric slabs: one postorder index is built per recomputation
// (child lists may have been re-sorted since) and each column is then a
// pair of linear sweeps. Per-parent accumulation follows child order — the
// same addition sequence as the per-node recursion — and zero additions are
// bitwise no-ops (slabs never hold negative zero), so the columnar results
// are bitwise identical to the sparse-vector recursion they replace.
func (t *Tree) ComputeMetrics() {
	t.computeMu.Lock()
	defer t.computeMu.Unlock()
	t.recomputeMetrics()
}

// EnsureComputed computes presented metrics once; concurrent callers (e.g.
// several goroutines building views over one shared tree) serialize on the
// tree's compute lock and all but the first become no-ops.
func (t *Tree) EnsureComputed() {
	t.computeMu.Lock()
	defer t.computeMu.Unlock()
	if !t.computed {
		t.recomputeMetrics()
	}
}

// MarkComputed records that presented metrics are already final without
// running the Equation 1/2 sweeps. Loaders whose on-disk form stores the
// presented planes directly (the v3 mapped database bakes Base, inclusive
// and exclusive column slabs) call this so EnsureComputed does not
// overwrite — and copy-on-write — the loaded columns.
func (t *Tree) MarkComputed() {
	t.computeMu.Lock()
	t.computed = true
	t.computeMu.Unlock()
}

// Exclusive-rule classes, precomputed per postorder entry so the finalize
// sweep is a flat switch over dense arrays.
const (
	exBase      uint8 = iota // statements, view rows: exclusive = Base
	exFrame                  // frames: exclusive = frame-local sum
	exLoopAlien              // loops/inlined code: Base + direct stmt children
	exRoot                   // the invisible root: empty
)

// topoScratch is the flattened postorder index of a tree: children precede
// parents, and siblings appear in child-list order, so a linear pass that
// adds post[i] into parent[i] replays exactly the additions the recursive
// walk performed. Rebuilt on each recomputation (sorting reorders child
// lists) reusing slice capacity, so the steady state allocates nothing.
type topoScratch struct {
	post     []int32 // node rows in postorder
	parent   []int32 // parent row of post[i], -1 for the root
	addFL    []bool  // post[i] feeds its parent's frame-local sum (Kind != Frame)
	exKind   []uint8 // exclusive rule class for post[i]
	stmtLo   []int32 // exLoopAlien entries: range into stmtRows
	stmtHi   []int32
	stmtRows []int32 // rows of direct statement children, in child order
}

func (tp *topoScratch) reset() {
	tp.post = tp.post[:0]
	tp.parent = tp.parent[:0]
	tp.addFL = tp.addFL[:0]
	tp.exKind = tp.exKind[:0]
	tp.stmtLo = tp.stmtLo[:0]
	tp.stmtHi = tp.stmtHi[:0]
	tp.stmtRows = tp.stmtRows[:0]
}

// buildTopo flattens the tree into t.topo. It reports false when some node
// is not backed by the tree's store (hand-attached children on a hand-built
// tree), in which case the caller must use the per-node recursion.
func (t *Tree) buildTopo() bool {
	st := t.arena.store
	tp := &t.topo
	tp.reset()
	ok := true
	var visit func(n *Node, parentRow int32)
	visit = func(n *Node, parentRow int32) {
		if !ok || n.Base.Store() != st {
			ok = false
			return
		}
		row := n.Base.Row()
		for _, c := range n.Children {
			visit(c, row)
			if !ok {
				return
			}
		}
		tp.post = append(tp.post, row)
		tp.parent = append(tp.parent, parentRow)
		tp.addFL = append(tp.addFL, n.Kind != KindFrame)
		lo := int32(len(tp.stmtRows))
		var ek uint8
		switch n.Kind {
		case KindFrame:
			ek = exFrame
		case KindLoop, KindAlien:
			ek = exLoopAlien
			for _, c := range n.Children {
				if c.Kind == KindStmt {
					tp.stmtRows = append(tp.stmtRows, c.Base.Row())
				}
			}
		case KindRoot:
			ek = exRoot
		default:
			ek = exBase
		}
		tp.exKind = append(tp.exKind, ek)
		tp.stmtLo = append(tp.stmtLo, lo)
		tp.stmtHi = append(tp.stmtHi, int32(len(tp.stmtRows)))
	}
	visit(t.Root, -1)
	return ok
}

// recomputeMetrics does the actual Equation 1/2 computation; callers hold
// computeMu. Presented values are replaced outright — summary/computed
// overrides and derived columns are wiped and re-applied by their owners
// afterwards, exactly as with the per-node vector replacement this
// supersedes.
func (t *Tree) recomputeMetrics() {
	st := t.arena.store
	if st == nil || !t.buildTopo() {
		t.recomputeMetricsGeneric()
		t.computed = true
		return
	}
	tp := &t.topo
	rows := st.NumRows()
	if cap(t.fl) < rows {
		t.fl = make([]float64, rows)
	}
	fl := t.fl[:rows]

	baseCols := st.NumCols(metric.PlaneBase)
	for col := 0; col < baseCols; col++ {
		base := st.Col(metric.PlaneBase, col)
		incl := st.Col(metric.PlaneIncl, col)
		excl := st.Col(metric.PlaneExcl, col)
		// Equation 2, plus the frame-local sums feeding Equation 1:
		// postorder guarantees a child's total is final before it is added
		// into its parent, in child-list order.
		copy(incl, base)
		copy(fl, base)
		for i, r := range tp.post {
			if p := tp.parent[i]; p >= 0 {
				incl[p] += incl[r]
				if tp.addFL[i] {
					fl[p] += fl[r]
				}
			}
		}
		// Equation 1 by precomputed rule class.
		for i, r := range tp.post {
			switch tp.exKind[i] {
			case exBase:
				excl[r] = base[r]
			case exFrame:
				excl[r] = fl[r]
			case exLoopAlien:
				v := base[r]
				for _, sr := range tp.stmtRows[tp.stmtLo[i]:tp.stmtHi[i]] {
					v += base[sr]
				}
				excl[r] = v
			case exRoot:
				excl[r] = 0
			}
		}
	}
	// Presented columns with no base samples (summaries, computed values,
	// derived results written by earlier passes) are wiped: recomputation
	// replaces the presented vectors entirely.
	for col := baseCols; col < st.NumCols(metric.PlaneIncl); col++ {
		clear(st.Col(metric.PlaneIncl, col))
	}
	for col := baseCols; col < st.NumCols(metric.PlaneExcl); col++ {
		clear(st.Col(metric.PlaneExcl, col))
	}
	t.computed = true
}

// recomputeMetricsGeneric is the per-node recursion, kept for trees whose
// nodes are not all backed by the tree's store (hand-built Tree literals,
// hand-attached children in tests).
func (t *Tree) recomputeMetricsGeneric() {
	var visit func(n *Node) (incl, frameLocal *metric.Vector)
	visit = func(n *Node) (*metric.Vector, *metric.Vector) {
		incl := n.Base.Clone()
		frameLocal := n.Base.Clone()
		for _, c := range n.Children {
			ci, cf := visit(c)
			incl.AddVector(ci)
			if c.Kind != KindFrame {
				frameLocal.AddVector(cf)
			}
		}
		switch n.Kind {
		case KindFrame:
			n.Excl.SetVector(frameLocal)
		case KindLoop, KindAlien:
			ex := n.Base.Clone()
			for _, c := range n.Children {
				if c.Kind == KindStmt {
					c.Base.Range(func(id int, x float64) { ex.Add(id, x) })
				}
			}
			n.Excl.SetVector(ex)
		case KindRoot:
			n.Excl.Reset()
		default:
			n.Excl.SetVector(n.Base.Clone())
		}
		n.Incl.SetVector(incl)
		return incl, frameLocal
	}
	visit(t.Root)
}

// StaticExcl computes a frame's exclusive cost under the *static* rule: the
// sum of Base over its direct statement children. This is what the Flat
// View's dynamic call-site rows report (Figure 2c's hy shows 0 because all
// of h's samples are nested in loops, not direct children).
func StaticExcl(frame *Node) *metric.Vector {
	ex := frame.Base.Clone()
	for _, c := range frame.Children {
		if c.Kind == KindStmt {
			c.Base.Range(func(id int, x float64) { ex.Add(id, x) })
		}
	}
	return ex
}

// compiledDerived pairs a derived column with its compiled stack program.
type compiledDerived struct {
	id   int
	prog *metric.Program
}

// compileDerived compiles every Derived column of the registry, in registry
// order, appending to dst (reused scratch for steady-state zero-alloc
// callers). Compilation reports exactly the *EvalError the tree evaluator
// would have produced (possible only for hand-built expression trees; Parse
// validates operators and functions), wrapped the same way.
func compileDerived(reg *metric.Registry, dst []compiledDerived) ([]compiledDerived, error) {
	derived := dst
	for _, d := range reg.Columns() {
		if d.Kind != metric.Derived {
			continue
		}
		p, err := d.Program()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		derived = append(derived, compiledDerived{id: d.ID, prog: p})
	}
	return derived, nil
}

// ApplyDerived evaluates every Derived column of the registry over each
// node of the subtree rooted at start, storing results in both the
// exclusive and inclusive vectors (a derived column is a spreadsheet
// formula applied row-wise to whichever flavor is displayed, Section V-D).
// Formulas are compiled once; the per-node evaluation cannot fail after
// that.
func ApplyDerived(reg *metric.Registry, start *Node) error {
	derived, err := compileDerived(reg, nil)
	if err != nil {
		return err
	}
	if len(derived) == 0 {
		return nil
	}
	Walk(start, func(n *Node) bool {
		for _, d := range derived {
			ev := d.prog.EvalEnv(metric.EnvFunc(n.Excl.Get))
			n.Excl.Set(d.id, ev)
			iv := d.prog.EvalEnv(metric.EnvFunc(n.Incl.Get))
			n.Incl.Set(d.id, iv)
		}
		return true
	})
	return nil
}

// ApplyDerivedTree applies derived metrics to the whole tree. On a
// store-backed tree each formula runs as a vectorized kernel over whole
// metric columns: per derived column — in registry order, so a later
// formula referencing an earlier derived column sees its final values, like
// the per-node walk — the referenced slabs are prefetched once and the
// compiled program fills the output column in a single pass.
func (t *Tree) ApplyDerivedTree() error {
	st := t.arena.store
	if st == nil || !storeBacked(t.Root, st) {
		return ApplyDerived(t.Reg, t.Root)
	}
	derived, err := compileDerived(t.Reg, t.derived[:0])
	t.derived = derived
	if err != nil {
		return err
	}
	for _, d := range derived {
		refs := d.prog.ColumnRefs()
		for _, plane := range [2]metric.Plane{metric.PlaneExcl, metric.PlaneIncl} {
			cols := t.kernCols[:0]
			for _, rc := range refs {
				cols = append(cols, st.Col(plane, rc))
			}
			t.kernCols = cols
			d.prog.EvalCols(st.Col(plane, d.id), cols)
		}
	}
	return nil
}

// storeBacked reports whether every node under n reads and writes store st
// — the precondition for whole-column kernels. Closure-free so the check
// itself does not allocate.
func storeBacked(n *Node, st *metric.Store) bool {
	if n.Base.Store() != st {
		return false
	}
	for _, c := range n.Children {
		if !storeBacked(c, st) {
			return false
		}
	}
	return true
}
