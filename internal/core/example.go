package core

import "repro/internal/metric"

// Fig1Tree builds the canonical calling context tree of the paper's worked
// example (Figure 1's two-file program, executed as in Figure 2a), with one
// metric column "cost" (ID 0). The returned tree reproduces the exact
// numbers of Figures 2a/2b/2c and anchors the golden tests; it also serves
// as a small self-contained input for examples and benchmarks.
//
// Sample placement (all on metric 0):
//
//	m calls f (m:7) and g (m:8); f calls g (f:2); g may recurse (g:3) and
//	call h (g:4); h runs a doubly nested loop (h:8, h:9).
//	f's own work:   1 sample at file1.c:2
//	g1's own work:  1 sample at file2.c:3   (g called from f)
//	g2's own work:  1 sample at file2.c:4   (g called from g)
//	g3's own work:  3 samples at file2.c:3  (g called from m)
//	h's work:       4 samples at file2.c:9, inside loop l2 inside l1
func Fig1Tree() *Tree {
	reg := metric.NewRegistry()
	if _, err := reg.AddRaw("cost", "samples", 1); err != nil {
		panic(err)
	}
	t := NewTree("toy", reg)

	const mod = "toy.exe"
	frame := func(parent *Node, name, file string, declLine int, callFile string, callLine int) *Node {
		n := parent.Child(Key{Kind: KindFrame, Name: Sym(name), File: Sym(file), Line: declLine}, true)
		n.Mod = Sym(mod)
		n.CallFile = Sym(callFile)
		n.CallLine = callLine
		return n
	}
	stmt := func(parent *Node, file string, line int, cost float64) *Node {
		n := parent.Child(Key{Kind: KindStmt, File: Sym(file), Line: line}, true)
		n.Base.Add(0, cost)
		return n
	}
	loop := func(parent *Node, file string, line int) *Node {
		return parent.Child(Key{Kind: KindLoop, File: Sym(file), Line: line}, true)
	}

	m := frame(t.Root, "m", "file1.c", 6, "", 0)
	f := frame(m, "f", "file1.c", 1, "file1.c", 7)
	stmt(f, "file1.c", 2, 1)
	g1 := frame(f, "g", "file2.c", 2, "file1.c", 2)
	stmt(g1, "file2.c", 3, 1)
	g2 := frame(g1, "g", "file2.c", 2, "file2.c", 3)
	stmt(g2, "file2.c", 4, 1)
	h := frame(g2, "h", "file2.c", 7, "file2.c", 4)
	l1 := loop(h, "file2.c", 8)
	l2 := loop(l1, "file2.c", 9)
	stmt(l2, "file2.c", 9, 4)
	g3 := frame(m, "g", "file2.c", 2, "file1.c", 8)
	stmt(g3, "file2.c", 3, 3)

	t.ComputeMetrics()
	return t
}
