package core

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// A poisoned instance list (nil instance) panics inside buildSubtrie;
// ExpandAll must recover it into an error naming the root instead of
// crashing.
func TestExpandAllRecoversPanic(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		v := BuildCallersView(Fig1Tree())
		if len(v.Roots) == 0 {
			t.Fatal("no roots")
		}
		root := v.Roots[0]
		v.instances[root] = append(v.instances[root], nil)
		err := v.ExpandAllCtx(context.Background(), jobs)
		if err == nil {
			t.Fatalf("jobs=%d: poisoned subtrie accepted", jobs)
		}
		if !strings.Contains(err.Error(), "panic expanding callers view") {
			t.Fatalf("jobs=%d: err = %v", jobs, err)
		}
	}
}

func TestExpandAllCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		v := BuildCallersView(Fig1Tree())
		if err := v.ExpandAllCtx(ctx, jobs); !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
	}
}

// A clean tree still expands without error through the error-returning
// entry points.
func TestExpandAllNoError(t *testing.T) {
	v := BuildCallersView(Fig1Tree())
	if err := v.ExpandAll(); err != nil {
		t.Fatal(err)
	}
	v2 := BuildCallersView(Fig1Tree())
	if err := v2.ExpandAllParallel(3); err != nil {
		t.Fatal(err)
	}
}
