package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/intern"
	"repro/internal/metric"
)

// The Callers View (Section III-B) is the bottom-up view: one root row per
// procedure aggregating every context it ran in, with children unwinding
// the call chain upward ("called from ...").
//
// Recursion handling (Section IV-B): an instance of procedure p is
// "exposed" when no proper ancestor frame is also an instance of p; only
// exposed instances contribute to p's root row, which is why Figure 2b's ga
// shows 9 (= g1's 6 + g3's 3) and not 14. The generalization to interior
// rows: instance i contributes its own (inclusive, exclusive) pair to the
// caller-path trie node at depth d exactly when no ancestor instance shares
// the same reversed-path prefix of length d. Equivalently, i contributes at
// depths strictly greater than
//
//	D(i) = max over ancestor instances j of lcp(rev(i), rev(j))
//
// where rev(x) is x's caller-procedure chain from innermost to outermost.
// With that rule, Figure 2b reproduces exactly: g2 (an unexposed instance)
// skips the root but creates the "called from g" subtree with its own cost.

// procID identifies a procedure across contexts. Both fields are interned
// symbols, so procID is an 8-byte comparable value — exposure checks and
// row lookups never hash string bytes.
type procID struct {
	name intern.Sym
	file intern.Sym
}

func frameProc(n *Node) procID { return procID{name: n.Name, file: n.File} }

// expandState memoizes one root row's subtrie construction: the Once makes
// concurrent Expand calls on the same root build it exactly once, done
// publishes completion to Expanded without holding any lock.
type expandState struct {
	once sync.Once
	done atomic.Bool
}

// CallersView is the bottom-up view. Roots are procedure rows; expanding a
// root materializes its caller subtrie on demand (Section VII: "the Callers
// View is constructed dynamically ... we store and process data only when
// needed").
//
// Construction is concurrency-safe: distinct roots own disjoint subtries
// and the CCT is only read, so any number of goroutines may Expand (and
// read Expanded) simultaneously — the locking protocol behind the viewer's
// on-demand expansion and ExpandAllParallel.
type CallersView struct {
	Reg   *metric.Registry
	Roots []*Node

	instances map[*Node][]*Node      // root row -> frame instances of that proc
	expand    map[*Node]*expandState // root row -> memoized expansion; read-only after Build
}

// BuildCallersView scans the CCT once, creating one root row per procedure
// with exposed-aggregate costs. Caller subtries are not built until
// Expand/ExpandAll — the lazy construction the paper credits for the view's
// scalability. The tree is only read (metrics are computed first under the
// tree's lock), so several views may be built from one tree concurrently.
func BuildCallersView(t *Tree) *CallersView {
	t.EnsureComputed()
	v := &CallersView{
		Reg:       t.Reg,
		instances: map[*Node][]*Node{},
		expand:    map[*Node]*expandState{},
	}
	rows := map[procID]*Node{}

	Walk(t.Root, func(n *Node) bool {
		if n.Kind != KindFrame {
			return true
		}
		id := frameProc(n)
		row, ok := rows[id]
		if !ok {
			// Each root row owns a private arena and metric store: its
			// subtrie is built by exactly one goroutine (under the expansion
			// Once), so disjoint roots expand in parallel with no allocator
			// contention — and no store's slabs are ever shared across trees.
			arena := &nodeArena{store: metric.NewStore()}
			row = arena.alloc()
			row.Key = Key{Kind: KindProc, Name: n.Name, File: n.File, Line: n.Line}
			row.NoSource = n.NoSource
			row.arena = arena
			rows[id] = row
			v.Roots = append(v.Roots, row)
			v.expand[row] = &expandState{}
		}
		v.instances[row] = append(v.instances[row], n)
		if exposed(n) {
			row.Incl.AddView(&n.Incl)
			row.Excl.AddView(&n.Excl)
		}
		return true
	})
	// Order root rows by resolved name with a full (file, line, id)
	// secondary key: the same procedure name can occur in several files or
	// load modules, and name alone under sort.Slice reordered such ties
	// run-to-run.
	sort.Slice(v.Roots, func(i, j int) bool {
		a, b := v.Roots[i], v.Roots[j]
		if a.Name != b.Name {
			return a.Name.String() < b.Name.String()
		}
		if a.File != b.File {
			return a.File.String() < b.File.String()
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.ID < b.ID
	})
	return v
}

// exposed reports whether frame n has no proper ancestor frame of the same
// procedure.
func exposed(n *Node) bool {
	id := frameProc(n)
	for a := n.Parent; a != nil; a = a.Parent {
		if a.Kind == KindFrame && frameProc(a) == id {
			return false
		}
	}
	return true
}

// Expanded reports whether the root's caller subtrie has been built. Safe
// to call concurrently with Expand.
func (v *CallersView) Expanded(root *Node) bool {
	st := v.expand[root]
	return st != nil && st.done.Load()
}

// Expand materializes the caller subtrie of one root row, exactly once no
// matter how many goroutines race here. Safe to call repeatedly and
// concurrently (with Expand on any root and Expanded on this one); calls
// for nodes that are not root rows of this view are no-ops.
func (v *CallersView) Expand(root *Node) {
	st := v.expand[root]
	if st == nil {
		return
	}
	st.once.Do(func() {
		v.buildSubtrie(root)
		st.done.Store(true)
	})
}

// buildSubtrie constructs one root's caller trie; callers hold the root's
// expansion Once. Only nodes under root are written; the CCT instances are
// read-only, which is what makes disjoint roots expandable in parallel.
func (v *CallersView) buildSubtrie(root *Node) {
	for _, inst := range v.instances[root] {
		rev, ancestors := reversedPath(inst)
		// D = deepest reversed-path prefix shared with an ancestor
		// instance; contribute at depths > D only.
		d0 := -1
		for _, anc := range ancestors {
			ra, _ := reversedPath(anc)
			if l := lcp(rev, ra); l > d0 {
				d0 = l
			}
		}
		cur := root
		callee := inst
		for d := 0; d < len(rev); d++ {
			caller := rev[d]
			// Trie levels merge by caller *procedure* (matching the
			// exposure computation); the call site into the callee is
			// kept for display.
			cur = cur.Child(Key{Kind: KindProc, Name: caller.Name, File: caller.File, Line: caller.Line}, true)
			cur.NoSource = caller.NoSource
			if cur.CallLine == 0 {
				cur.CallLine = callee.CallLine
				cur.CallFile = callee.CallFile
			}
			// This trie node covers the reversed-path prefix of length
			// d+1; the instance contributes when that length exceeds
			// the deepest prefix shared with an ancestor instance.
			if d+1 > d0 {
				cur.Incl.AddView(&inst.Incl)
				cur.Excl.AddView(&inst.Excl)
			}
			callee = caller
		}
	}
}

// ExpandAll eagerly builds every caller subtrie. A panic while expanding
// one root (a poisoned subtrie) is recovered and returned as an error
// instead of crashing the process.
func (v *CallersView) ExpandAll() error {
	return v.ExpandAllCtx(context.Background(), 1)
}

// ExpandAllParallel builds every caller subtrie using up to jobs
// goroutines (GOMAXPROCS when jobs <= 0). Roots are independent, so the
// result is identical to ExpandAll.
func (v *CallersView) ExpandAllParallel(jobs int) error {
	return v.ExpandAllCtx(context.Background(), jobs)
}

// ExpandAllCtx is ExpandAllParallel with cancellation: expansion stops at
// the next root once ctx is done, and a worker panic is recovered,
// reported as an error, and cancels the remaining work — one poisoned
// subtrie cannot crash or wedge the process.
func (v *CallersView) ExpandAllCtx(ctx context.Context, jobs int) error {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(v.Roots) {
		jobs = len(v.Roots)
	}
	expand := func(root *Node) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("core: panic expanding callers view of %q: %v", root.Name.String(), r)
			}
		}()
		v.Expand(root)
		return nil
	}
	if jobs <= 1 {
		for _, r := range v.Roots {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := expand(r); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var stop atomic.Bool
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(v.Roots) {
					return
				}
				if err := expand(v.Roots[i]); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Prefer a real failure over a cancellation notice.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// reversedPath returns the caller-frame chain of inst from innermost to
// outermost, plus the ancestor frames that are instances of the same
// procedure.
func reversedPath(inst *Node) (rev []*Node, sameProc []*Node) {
	id := frameProc(inst)
	for a := inst.Parent; a != nil; a = a.Parent {
		if a.Kind != KindFrame {
			continue
		}
		rev = append(rev, a)
		if frameProc(a) == id {
			sameProc = append(sameProc, a)
		}
	}
	return rev, sameProc
}

// lcp returns the length of the longest common prefix of two caller chains,
// comparing procedure identities.
func lcp(a, b []*Node) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if frameProc(a[i]) != frameProc(b[i]) {
			return i
		}
	}
	return n
}
