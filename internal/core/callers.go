package core

import (
	"sort"

	"repro/internal/metric"
)

// The Callers View (Section III-B) is the bottom-up view: one root row per
// procedure aggregating every context it ran in, with children unwinding
// the call chain upward ("called from ...").
//
// Recursion handling (Section IV-B): an instance of procedure p is
// "exposed" when no proper ancestor frame is also an instance of p; only
// exposed instances contribute to p's root row, which is why Figure 2b's ga
// shows 9 (= g1's 6 + g3's 3) and not 14. The generalization to interior
// rows: instance i contributes its own (inclusive, exclusive) pair to the
// caller-path trie node at depth d exactly when no ancestor instance shares
// the same reversed-path prefix of length d. Equivalently, i contributes at
// depths strictly greater than
//
//	D(i) = max over ancestor instances j of lcp(rev(i), rev(j))
//
// where rev(x) is x's caller-procedure chain from innermost to outermost.
// With that rule, Figure 2b reproduces exactly: g2 (an unexposed instance)
// skips the root but creates the "called from g" subtree with its own cost.

// procID identifies a procedure across contexts.
type procID struct {
	name string
	file string
}

func frameProc(n *Node) procID { return procID{name: n.Name, file: n.File} }

// CallersView is the bottom-up view. Roots are procedure rows; expanding a
// root materializes its caller subtrie on demand (Section VII: "the Callers
// View is constructed dynamically ... we store and process data only when
// needed").
type CallersView struct {
	Reg   *metric.Registry
	Roots []*Node

	instances map[*Node][]*Node // root row -> frame instances of that proc
	expanded  map[*Node]bool
}

// BuildCallersView scans the CCT once, creating one root row per procedure
// with exposed-aggregate costs. Caller subtries are not built until
// Expand/ExpandAll — the lazy construction the paper credits for the view's
// scalability.
func BuildCallersView(t *Tree) *CallersView {
	if !t.computed {
		t.ComputeMetrics()
	}
	v := &CallersView{
		Reg:       t.Reg,
		instances: map[*Node][]*Node{},
		expanded:  map[*Node]bool{},
	}
	rows := map[procID]*Node{}

	Walk(t.Root, func(n *Node) bool {
		if n.Kind != KindFrame {
			return true
		}
		id := frameProc(n)
		row, ok := rows[id]
		if !ok {
			row = &Node{Key: Key{Kind: KindProc, Name: n.Name, File: n.File, Line: n.Line},
				NoSource: n.NoSource}
			rows[id] = row
			v.Roots = append(v.Roots, row)
		}
		v.instances[row] = append(v.instances[row], n)
		if exposed(n) {
			row.Incl.AddVector(&n.Incl)
			row.Excl.AddVector(&n.Excl)
		}
		return true
	})
	sort.Slice(v.Roots, func(i, j int) bool { return v.Roots[i].Name < v.Roots[j].Name })
	return v
}

// exposed reports whether frame n has no proper ancestor frame of the same
// procedure.
func exposed(n *Node) bool {
	id := frameProc(n)
	for a := n.Parent; a != nil; a = a.Parent {
		if a.Kind == KindFrame && frameProc(a) == id {
			return false
		}
	}
	return true
}

// Expanded reports whether the root's caller subtrie has been built.
func (v *CallersView) Expanded(root *Node) bool { return v.expanded[root] }

// Expand materializes the caller subtrie of one root row. Safe to call
// repeatedly.
func (v *CallersView) Expand(root *Node) {
	if v.expanded[root] {
		return
	}
	v.expanded[root] = true
	for _, inst := range v.instances[root] {
		rev, ancestors := reversedPath(inst)
		// D = deepest reversed-path prefix shared with an ancestor
		// instance; contribute at depths > D only.
		d0 := -1
		for _, anc := range ancestors {
			ra, _ := reversedPath(anc)
			if l := lcp(rev, ra); l > d0 {
				d0 = l
			}
		}
		cur := root
		callee := inst
		for d := 0; d < len(rev); d++ {
			caller := rev[d]
			// Trie levels merge by caller *procedure* (matching the
			// exposure computation); the call site into the callee is
			// kept for display.
			cur = cur.Child(Key{Kind: KindProc, Name: caller.Name, File: caller.File, Line: caller.Line}, true)
			cur.NoSource = caller.NoSource
			if cur.CallLine == 0 {
				cur.CallLine = callee.CallLine
				cur.CallFile = callee.CallFile
			}
			// This trie node covers the reversed-path prefix of length
			// d+1; the instance contributes when that length exceeds
			// the deepest prefix shared with an ancestor instance.
			if d+1 > d0 {
				cur.Incl.AddVector(&inst.Incl)
				cur.Excl.AddVector(&inst.Excl)
			}
			callee = caller
		}
	}
}

// ExpandAll eagerly builds every caller subtrie.
func (v *CallersView) ExpandAll() {
	for _, r := range v.Roots {
		v.Expand(r)
	}
}

// reversedPath returns the caller-frame chain of inst from innermost to
// outermost, plus the ancestor frames that are instances of the same
// procedure.
func reversedPath(inst *Node) (rev []*Node, sameProc []*Node) {
	id := frameProc(inst)
	for a := inst.Parent; a != nil; a = a.Parent {
		if a.Kind != KindFrame {
			continue
		}
		rev = append(rev, a)
		if frameProc(a) == id {
			sameProc = append(sameProc, a)
		}
	}
	return rev, sameProc
}

// lcp returns the length of the longest common prefix of two caller chains,
// comparing procedure identities.
func lcp(a, b []*Node) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if frameProc(a[i]) != frameProc(b[i]) {
			return i
		}
	}
	return n
}
