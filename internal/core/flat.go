package core

import "repro/internal/metric"

// The Flat View (Section III-C) correlates costs to the program's static
// structure: load module → file → procedure → loop/inlined code →
// statement, with dynamic call-site rows nested in their static context.
//
// Aggregation rules, validated against Figure 2c:
//
//   - Inclusive: a CCT node contributes its inclusive cost to a flat scope
//     s exactly when no CCT ancestor also maps into s's flat subtree (the
//     "exposed with respect to s" generalization of Section IV-B). That
//     yields gx = 9 (g1 + g3, skipping the nested g2) and file2 = 9 (g1 +
//     g3, skipping h which is nested under g's instances).
//
//   - Exclusive: procedure rows sum the *frame-rule* exclusive of exposed
//     instances (gx = 4); loop/alien/statement rows sum their instances'
//     exclusive (sample sets are disjoint, no exposure needed); file and
//     module rows sum their children (file2 = 8); dynamic call-site rows
//     report the callee's *static-rule* exclusive — direct child statements
//     only — which is why hy shows 0 (h's samples are nested in loops)
//     while fy shows 1.

// FlatView is the static view.
type FlatView struct {
	Reg *metric.Registry
	// Roots are the load modules.
	Roots []*Node
}

// BuildFlatView computes the Flat View of a tree in a single walk. Like
// BuildCallersView it only reads the tree, so concurrent builds are safe.
func BuildFlatView(t *Tree) *FlatView {
	t.EnsureComputed()
	v := &FlatView{Reg: t.Reg}
	// The view is built by this one goroutine; a private arena with its own
	// metric store packs its scopes into slabs like the CCT's, keeping the
	// no-cross-tree-aliasing invariant.
	arena := &nodeArena{store: metric.NewStore()}
	root := arena.alloc()
	root.Key = Key{Kind: KindRoot}
	root.arena = arena

	// active counts, per flat scope, how many CCT ancestors on the
	// current walk path map into that scope's flat subtree.
	active := map[*Node]int{}

	// flatHome materializes the (LM, file, proc) chain for a frame and
	// returns all three, outermost first.
	flatHome := func(fr *Node) []*Node {
		lm := root.Child(Key{Kind: KindLM, Name: fr.Mod}, true)
		file := lm.Child(Key{Kind: KindFile, Name: fr.File}, true)
		file.NoSource = fr.File == 0
		proc := file.Child(Key{Kind: KindProc, Name: fr.Name, File: fr.File, Line: fr.Line}, true)
		proc.NoSource = fr.NoSource
		return []*Node{lm, file, proc}
	}

	// walk carries the flat path of the current CCT node's *context*:
	// for children of a frame that is the frame's home chain; for
	// children of loops/aliens it extends with the mapped scope.
	var walk func(n *Node, ctxPath []*Node)
	walk = func(n *Node, ctxPath []*Node) {
		var touched []*Node
		childCtx := ctxPath

		if n.Kind != KindRoot {
			var fp []*Node
			switch n.Kind {
			case KindFrame:
				fp = flatHome(n)
			case KindLoop, KindAlien, KindStmt:
				parent := ctxPath[len(ctxPath)-1]
				var k Key
				switch n.Kind {
				case KindLoop:
					k = Key{Kind: KindLoop, File: n.File, Line: n.Line, ID: n.ID}
				case KindAlien:
					k = Key{Kind: KindAlien, Name: n.Name, File: n.File, Line: n.Line, ID: n.ID}
				case KindStmt:
					k = Key{Kind: KindStmt, File: n.File, Line: n.Line}
				}
				c := parent.Child(k, true)
				c.NoSource = n.NoSource
				if c.CallLine == 0 {
					c.CallLine = n.CallLine
					c.CallFile = n.CallFile
				}
				fp = append(append([]*Node(nil), ctxPath...), c)
			default:
				fp = ctxPath
			}

			for _, s := range fp {
				if active[s] == 0 {
					s.Incl.AddView(&n.Incl)
				}
			}
			self := fp[len(fp)-1]
			switch n.Kind {
			case KindFrame:
				if active[self] == 0 {
					self.Excl.AddView(&n.Excl)
				}
			case KindLoop, KindAlien, KindStmt:
				self.Excl.AddView(&n.Excl)
			}
			touched = append(touched, fp...)

			// Dynamic call-site row in the caller's static context.
			if n.Kind == KindFrame && len(ctxPath) > 0 {
				ctx := ctxPath[len(ctxPath)-1]
				cs := ctx.Child(Key{Kind: KindCallSite, Name: n.Name, File: n.CallFile, Line: n.CallLine, ID: n.ID}, true)
				cs.NoSource = n.NoSource
				if active[cs] == 0 {
					cs.Incl.AddView(&n.Incl)
					cs.Excl.AddVector(StaticExcl(n))
				}
				touched = append(touched, cs)
			}

			for _, s := range touched {
				active[s]++
			}
			childCtx = fp
		}

		for _, c := range n.Children {
			walk(c, childCtx)
		}

		for _, s := range touched {
			active[s]--
		}
	}
	walk(t.Root, nil)

	// Containers (files, modules) report the sum of their children's
	// exclusive costs (file2 = g's 4 + h's 4 = 8 in Figure 2c).
	var fixContainers func(s *Node)
	fixContainers = func(s *Node) {
		for _, c := range s.Children {
			fixContainers(c)
		}
		if s.Kind == KindFile || s.Kind == KindLM {
			s.Excl.Reset()
			for _, c := range s.Children {
				s.Excl.AddView(&c.Excl)
			}
		}
	}
	fixContainers(root)

	v.Roots = root.Children
	return v
}
