package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metric"
)

func TestTreeBasics(t *testing.T) {
	tree := NewTree("x", nil)
	if tree.NumNodes() != 0 {
		t.Fatal("empty tree has nodes")
	}
	n := tree.AddPath(
		Key{Kind: KindFrame, Name: Sym("main")},
		Key{Kind: KindLoop, File: Sym("a.c"), Line: 3},
		Key{Kind: KindStmt, File: Sym("a.c"), Line: 4},
	)
	if tree.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", tree.NumNodes())
	}
	// AddPath is idempotent.
	n2 := tree.AddPath(
		Key{Kind: KindFrame, Name: Sym("main")},
		Key{Kind: KindLoop, File: Sym("a.c"), Line: 3},
		Key{Kind: KindStmt, File: Sym("a.c"), Line: 4},
	)
	if n != n2 {
		t.Fatal("AddPath created duplicates")
	}
	if got := len(n.Path()); got != 3 {
		t.Fatalf("path length = %d, want 3", got)
	}
	if n.EnclosingFrame() == nil || n.EnclosingFrame().Name.String() != "main" {
		t.Fatal("EnclosingFrame wrong")
	}
}

func TestLabels(t *testing.T) {
	cases := []struct {
		n    Node
		want string
	}{
		{Node{Key: Key{Kind: KindFrame, Name: Sym("foo")}}, "foo"},
		{Node{Key: Key{Kind: KindFrame}}, "<unknown>"},
		{Node{Key: Key{Kind: KindLoop, File: Sym("dir/a.c"), Line: 5}}, "loop at a.c: 5"},
		{Node{Key: Key{Kind: KindStmt, File: Sym("a.c"), Line: 7}}, "a.c: 7"},
		{Node{Key: Key{Kind: KindStmt, Line: 7}}, "??: 7"},
		{Node{Key: Key{Kind: KindAlien, Name: Sym("inl")}}, "inlined inl"},
		{Node{Key: Key{Kind: KindLM, Name: Sym("app.exe")}}, "app.exe"},
		{Node{Key: Key{Kind: KindFile}}, "<unknown file>"},
		{Node{Key: Key{Kind: KindRoot}}, "<root>"},
	}
	for _, c := range cases {
		if got := c.n.Label(); got != c.want {
			t.Errorf("Label(%v) = %q, want %q", c.n.Kind, got, c.want)
		}
	}
}

func TestFindPathAndFindFirst(t *testing.T) {
	tree := Fig1Tree()
	if tree.FindPath("m", "f", "g") == nil {
		t.Fatal("FindPath m/f/g failed")
	}
	if tree.FindPath("m", "nosuch") != nil {
		t.Fatal("FindPath found a ghost")
	}
	h := tree.FindFirst("h")
	if h == nil || h.Kind != KindFrame {
		t.Fatal("FindFirst h failed")
	}
	if tree.FindFirst("zzz") != nil {
		t.Fatal("FindFirst found a ghost")
	}
}

func TestComputeMetricsStmtOnly(t *testing.T) {
	tree := NewTree("x", nil)
	main := tree.AddPath(Key{Kind: KindFrame, Name: Sym("main")})
	s := main.Child(Key{Kind: KindStmt, File: Sym("a.c"), Line: 2}, true)
	s.Base.Add(0, 5)
	tree.ComputeMetrics()
	if main.Incl.Get(0) != 5 || main.Excl.Get(0) != 5 {
		t.Fatalf("main = (%g,%g), want (5,5)", main.Incl.Get(0), main.Excl.Get(0))
	}
	if s.Incl.Get(0) != 5 || s.Excl.Get(0) != 5 {
		t.Fatal("stmt metrics wrong")
	}
}

func TestComputeMetricsLoopExclusiveExcludesNestedLoops(t *testing.T) {
	tree := NewTree("x", nil)
	main := tree.AddPath(Key{Kind: KindFrame, Name: Sym("main")})
	l1 := main.Child(Key{Kind: KindLoop, File: Sym("a.c"), Line: 2}, true)
	s1 := l1.Child(Key{Kind: KindStmt, File: Sym("a.c"), Line: 3}, true)
	s1.Base.Add(0, 2)
	l2 := l1.Child(Key{Kind: KindLoop, File: Sym("a.c"), Line: 4}, true)
	s2 := l2.Child(Key{Kind: KindStmt, File: Sym("a.c"), Line: 5}, true)
	s2.Base.Add(0, 7)
	tree.ComputeMetrics()
	// l1's exclusive: its own direct statement (2) but not l2's 7.
	if got := l1.Excl.Get(0); got != 2 {
		t.Fatalf("l1 excl = %g, want 2", got)
	}
	if got := l1.Incl.Get(0); got != 9 {
		t.Fatalf("l1 incl = %g, want 9", got)
	}
	// The frame's exclusive spans the whole loop nest (rule 1).
	if got := main.Excl.Get(0); got != 9 {
		t.Fatalf("main excl = %g, want 9", got)
	}
}

func TestComputeMetricsFrameBoundary(t *testing.T) {
	tree := NewTree("x", nil)
	main := tree.AddPath(Key{Kind: KindFrame, Name: Sym("main")})
	s := main.Child(Key{Kind: KindStmt, File: Sym("a.c"), Line: 2}, true)
	s.Base.Add(0, 1)
	callee := main.Child(Key{Kind: KindFrame, Name: Sym("leaf")}, true)
	cs := callee.Child(Key{Kind: KindStmt, File: Sym("b.c"), Line: 9}, true)
	cs.Base.Add(0, 10)
	tree.ComputeMetrics()
	if got := main.Excl.Get(0); got != 1 {
		t.Fatalf("main excl = %g, want 1 (callee cost must not leak)", got)
	}
	if got := main.Incl.Get(0); got != 11 {
		t.Fatalf("main incl = %g, want 11", got)
	}
}

func TestSparseZeroScopes(t *testing.T) {
	// A scope whose metrics are all zero keeps empty vectors — the
	// representation behind "any metric table cell where data is zero is
	// left blank".
	tree := Fig1Tree()
	m := tree.FindFirst("m")
	if m.Excl.Len() != 0 {
		t.Fatalf("m's zero exclusive is materialized: %v", m.Excl.String())
	}
}

func TestHotPathFig1(t *testing.T) {
	tree := Fig1Tree()
	path := HotPath(tree.Root, 0, 0.5)
	// root(10) -> m(10) -> f(7) -> g1(6) -> g2(5) -> h(4) -> l1(4) ->
	// l2(4) -> stmt(4): every child holds >= 50% of its parent.
	wantLabels := []string{"<root>", "m", "f", "g", "g", "h", "loop at file2.c: 8", "loop at file2.c: 9", "file2.c: 9"}
	if len(path) != len(wantLabels) {
		t.Fatalf("path = %v, want %v", labels(path), wantLabels)
	}
	for i, w := range wantLabels {
		if path[i].Label() != w {
			t.Fatalf("path[%d] = %q, want %q", i, path[i].Label(), w)
		}
	}
}

func TestHotPathThreshold(t *testing.T) {
	tree := Fig1Tree()
	// With t = 80%, the descent stops at f (g1 has 6/7 = 86% but g2 has
	// 5/6 = 83%, h has 4/5 = 80%...). Walk manually: m->f requires 7/10
	// = 70% >= 80%? No. So path ends at m.
	path := HotPath(tree.Root, 0, 0.8)
	if got := path[len(path)-1].Label(); got != "m" {
		t.Fatalf("hot path with t=0.8 ends at %q, want m", got)
	}
	// t <= 0 falls back to the default threshold.
	def := HotPath(tree.Root, 0, 0)
	if len(def) < 3 {
		t.Fatalf("default threshold path too short: %v", labels(def))
	}
}

func TestHotPathFromSubtree(t *testing.T) {
	tree := Fig1Tree()
	h := tree.FindFirst("h")
	path := HotPath(h, 0, 0.5)
	if len(path) != 4 { // h -> l1 -> l2 -> stmt
		t.Fatalf("path from h = %v", labels(path))
	}
}

func TestHotPathNilAndLeaf(t *testing.T) {
	if HotPath(nil, 0, 0.5) != nil {
		t.Fatal("nil start should give nil path")
	}
	leaf := &Node{Key: Key{Kind: KindStmt, File: Sym("a.c"), Line: 1}}
	p := HotPath(leaf, 0, 0.5)
	if len(p) != 1 || p[0] != leaf {
		t.Fatal("leaf hot path should be itself")
	}
}

func TestHotPathZeroMetric(t *testing.T) {
	// A subtree with no values of the metric: path stays at the start.
	tree := Fig1Tree()
	m := tree.FindFirst("m")
	p := HotPath(m, 7, 0.5) // column 7 doesn't exist
	if len(p) != 1 {
		t.Fatalf("path over absent metric = %v", labels(p))
	}
}

func TestFlatten(t *testing.T) {
	tree := Fig1Tree()
	v := BuildFlatView(tree)
	lms := v.Roots
	files := Flatten(lms)
	if len(files) != 2 {
		t.Fatalf("flatten(modules) = %v", labels(files))
	}
	procs := Flatten(files)
	if len(procs) != 4 {
		t.Fatalf("flatten(files) = %v", labels(procs))
	}
	// One more level: loops, call sites and statements of all procs,
	// enabling cross-routine loop comparison (Section III-C).
	inner := Flatten(procs)
	var loops int
	for _, s := range inner {
		if s.Kind == KindLoop {
			loops++
		}
	}
	if loops != 1 { // l1 (l2 is nested inside l1)
		t.Fatalf("loops after flatten = %d, want 1", loops)
	}
	// Leaves survive flattening.
	leaf := &Node{Key: Key{Kind: KindStmt}}
	out := Flatten([]*Node{leaf})
	if len(out) != 1 || out[0] != leaf {
		t.Fatal("flatten dropped a leaf")
	}
	if got := FlattenN(lms, 2); len(got) != 4 {
		t.Fatalf("FlattenN(2) = %v", labels(got))
	}
}

func TestSortScopes(t *testing.T) {
	tree := Fig1Tree()
	m := tree.FindFirst("m")
	kids := append([]*Node(nil), m.Children...)
	SortScopes(kids, SortSpec{MetricID: 0})
	if kids[0].Label() != "f" || kids[1].Label() != "g" {
		t.Fatalf("descending sort = %v", labels(kids))
	}
	SortScopes(kids, SortSpec{MetricID: 0, Ascending: true})
	if kids[0].Label() != "g" {
		t.Fatalf("ascending sort = %v", labels(kids))
	}
	// Exclusive sort: g3 (3) above f (1).
	SortScopes(kids, SortSpec{MetricID: 0, Exclusive: true})
	if kids[0].Label() != "g" {
		t.Fatalf("exclusive sort = %v", labels(kids))
	}
}

func TestSortByLabel(t *testing.T) {
	tree := Fig1Tree()
	m := tree.FindFirst("m")
	kids := append([]*Node(nil), m.Children...)
	SortScopes(kids, SortSpec{ByLabel: true})
	if kids[0].Label() != "f" || kids[1].Label() != "g" {
		t.Fatalf("label sort = %v", labels(kids))
	}
}

func TestSortTreeDeterministicTies(t *testing.T) {
	tree := NewTree("ties", nil)
	main := tree.AddPath(Key{Kind: KindFrame, Name: Sym("main")})
	for _, name := range []string{"zeta", "alpha", "mid"} {
		c := main.Child(Key{Kind: KindFrame, Name: Sym(name)}, true)
		s := c.Child(Key{Kind: KindStmt, File: Sym("a.c"), Line: 1}, true)
		s.Base.Add(0, 5)
	}
	tree.ComputeMetrics()
	SortTree(tree.Root, SortSpec{MetricID: 0})
	got := labels(main.Children)
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie-broken order = %v, want %v", got, want)
		}
	}
}

func TestCallersViewLazy(t *testing.T) {
	tree := Fig1Tree()
	v := BuildCallersView(tree)
	var g *Node
	for _, r := range v.Roots {
		if r.Name.String() == "g" {
			g = r
		}
	}
	if g == nil {
		t.Fatal("no g root")
	}
	// Root rows exist without expansion; children do not.
	if v.Expanded(g) || len(g.Children) != 0 {
		t.Fatal("callers view was expanded eagerly")
	}
	if g.Incl.Get(0) != 9 {
		t.Fatalf("unexpanded root incl = %g, want 9", g.Incl.Get(0))
	}
	v.Expand(g)
	if !v.Expanded(g) || len(g.Children) != 3 {
		t.Fatalf("expansion failed: %v", labels(g.Children))
	}
	// Repeated expansion must not double the costs.
	v.Expand(g)
	if len(g.Children) != 3 {
		t.Fatal("double expansion duplicated children")
	}
	for _, c := range g.Children {
		if c.Name.String() == "f" && c.Incl.Get(0) != 6 {
			t.Fatalf("double expansion doubled costs: %g", c.Incl.Get(0))
		}
	}
}

func TestCallersViewDeepRecursionNoDoubleCount(t *testing.T) {
	// m -> g -> g -> g: the "called from g" row must show only the
	// second instance's cost (the third is nested within it), and the
	// "called from g <- g" row only the third's.
	reg := metric.NewRegistry()
	if _, err := reg.AddRaw("cost", "samples", 1); err != nil {
		t.Fatal(err)
	}
	tree := NewTree("deep", reg)
	mk := func(parent *Node, name string) *Node {
		return parent.Child(Key{Kind: KindFrame, Name: Sym(name), File: Sym("a.c")}, true)
	}
	addWork := func(fr *Node, line int, v float64) {
		s := fr.Child(Key{Kind: KindStmt, File: Sym("a.c"), Line: line}, true)
		s.Base.Add(0, v)
	}
	m := mk(tree.Root, "m")
	gA := mk(m, "g")
	addWork(gA, 10, 1)
	gB := mk(gA, "g")
	addWork(gB, 11, 2)
	gC := mk(gB, "g")
	addWork(gC, 12, 4)
	tree.ComputeMetrics()

	v := BuildCallersView(tree)
	v.ExpandAll()
	var g *Node
	for _, r := range v.Roots {
		if r.Name.String() == "g" {
			g = r
		}
	}
	// Root: only gA is exposed -> (7, 1).
	if got := costs(g); got != (ie{7, 1}) {
		t.Fatalf("g root = %+v, want {7 1}", got)
	}
	fromG := child(t, g, procNamed("g"), "g<-g")
	if got := costs(fromG); got != (ie{6, 2}) {
		t.Fatalf("g<-g = %+v, want {6 2} (gB only)", got)
	}
	fromGG := child(t, fromG, procNamed("g"), "g<-g<-g")
	if got := costs(fromGG); got != (ie{4, 4}) {
		t.Fatalf("g<-g<-g = %+v, want {4 4} (gC only)", got)
	}
	// And m appears under g<-g<-g<-m etc. with gC's cost plus... each
	// instance contributes along its own path: path of gA is [m], gB is
	// [g,m], gC is [g,g,m].
	fromM := child(t, g, procNamed("m"), "g<-m")
	if got := costs(fromM); got != (ie{7, 1}) {
		t.Fatalf("g<-m = %+v, want {7 1} (gA)", got)
	}
}

func TestDerivedMetricsOnTree(t *testing.T) {
	reg := metric.NewRegistry()
	if _, err := reg.AddRaw("cycles", "cycles", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddRaw("flops", "ops", 1); err != nil {
		t.Fatal(err)
	}
	// Floating-point waste (Section V-D): cycles*peak - flops, peak = 4.
	if _, err := reg.AddDerived("fpwaste", "$0*4 - $1"); err != nil {
		t.Fatal(err)
	}
	tree := NewTree("d", reg)
	main := tree.AddPath(Key{Kind: KindFrame, Name: Sym("main")})
	s := main.Child(Key{Kind: KindStmt, File: Sym("a.c"), Line: 2}, true)
	s.Base.Add(0, 100) // cycles
	s.Base.Add(1, 150) // flops
	tree.ComputeMetrics()
	if err := tree.ApplyDerivedTree(); err != nil {
		t.Fatal(err)
	}
	if got := main.Incl.Get(2); got != 250 {
		t.Fatalf("waste incl = %g, want 250", got)
	}
	if got := s.Excl.Get(2); got != 250 {
		t.Fatalf("waste excl = %g, want 250", got)
	}
	// Derived metrics drive hot paths and sorting like any other column.
	p := HotPath(tree.Root, 2, 0.5)
	if p[len(p)-1] != s {
		t.Fatalf("hot path over derived metric = %v", labels(p))
	}
}

func TestApplyDerivedOnViews(t *testing.T) {
	reg := metric.NewRegistry()
	if _, err := reg.AddRaw("c", "cycles", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddDerived("double", "$0*2"); err != nil {
		t.Fatal(err)
	}
	tree := NewTree("d", reg)
	main := tree.AddPath(Key{Kind: KindFrame, Name: Sym("main"), File: Sym("a.c")})
	st := main.Child(Key{Kind: KindStmt, File: Sym("a.c"), Line: 1}, true)
	st.Base.Add(0, 3)
	tree.ComputeMetrics()
	fv := BuildFlatView(tree)
	for _, lm := range fv.Roots {
		if err := ApplyDerived(reg, lm); err != nil {
			t.Fatal(err)
		}
	}
	proc := fv.Roots[0].Children[0].Children[0]
	if proc.Incl.Get(1) != 6 {
		t.Fatalf("derived on flat view = %g, want 6", proc.Incl.Get(1))
	}
}

// Property: for any random CCT, the root's inclusive cost equals the sum of
// all Base values (conservation), and every frame's inclusive is at least
// its exclusive.
func TestMetricConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		tree, total := randomCCT(seed, 200)
		tree.ComputeMetrics()
		if tree.Total(0) != total {
			return false
		}
		ok := true
		Walk(tree.Root, func(n *Node) bool {
			if n.Incl.Get(0) < n.Excl.Get(0)-1e-9 {
				ok = false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: flat-view and callers-view aggregation conserve exclusive
// costs at statement level (statements' exclusives are disjoint samples).
func TestFlatStmtConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		tree, total := randomCCT(seed, 150)
		tree.ComputeMetrics()
		v := BuildFlatView(tree)
		var stmtSum float64
		for _, lm := range v.Roots {
			Walk(lm, func(n *Node) bool {
				if n.Kind == KindStmt {
					stmtSum += n.Excl.Get(0)
				}
				return true
			})
		}
		return stmtSum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every callers-view root row's inclusive cost never exceeds the
// program total, even under recursion (exposed aggregation).
func TestCallersRootBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		tree, total := randomCCT(seed, 150)
		tree.ComputeMetrics()
		v := BuildCallersView(tree)
		for _, r := range v.Roots {
			if r.Incl.Get(0) > total+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomCCT builds a random calling context tree with recursion and loops;
// returns the tree and the total Base cost.
func randomCCT(seed int64, size int) (*Tree, float64) {
	rng := rand.New(rand.NewSource(seed))
	reg := metric.NewRegistry()
	if _, err := reg.AddRaw("cost", "samples", 1); err != nil {
		panic(err)
	}
	tree := NewTree("rnd", reg)
	procs := []string{"main", "a", "b", "c", "rec"}
	var total float64

	cur := tree.Root.Child(Key{Kind: KindFrame, Name: Sym("main"), File: Sym("m.c")}, true)
	stack := []*Node{cur}
	for i := 0; i < size; i++ {
		switch rng.Intn(5) {
		case 0: // push a frame
			name := procs[rng.Intn(len(procs))]
			fr := stack[len(stack)-1].Child(Key{Kind: KindFrame, Name: Sym(name), File: Sym(name + ".c"), ID: uint64(rng.Intn(4))}, true)
			fr.CallLine = rng.Intn(9) + 1
			fr.CallFile = Sym("m.c")
			stack = append(stack, fr)
		case 1: // push a loop
			l := stack[len(stack)-1].Child(Key{Kind: KindLoop, File: Sym("m.c"), Line: rng.Intn(20) + 1}, true)
			stack = append(stack, l)
		case 2, 3: // sample at a statement
			v := float64(rng.Intn(5) + 1)
			s := stack[len(stack)-1].Child(Key{Kind: KindStmt, File: Sym("m.c"), Line: rng.Intn(40) + 1}, true)
			s.Base.Add(0, v)
			total += v
		case 4: // pop
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	return tree, total
}

func TestWalkPrunes(t *testing.T) {
	tree := Fig1Tree()
	var visited int
	Walk(tree.Root, func(n *Node) bool {
		visited++
		return n.Kind != KindFrame || n.Name.String() != "f" // prune below f
	})
	total := tree.NumNodes() + 1
	if visited >= total {
		t.Fatalf("prune ineffective: visited %d of %d", visited, total)
	}
}
