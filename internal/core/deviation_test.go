package core

import (
	"testing"

	"repro/internal/metric"
)

// TestFlatCallSiteDeepRecursionKnownDeviation pins down the documented
// deviation (EXPERIMENTS.md, caveat 3): for self-recursive chains of depth
// >= 3 through one call site, the flat view's call-site row aggregates
// exposed instances only, so the deepest instances' own exclusive cost does
// not surface there. The Calling Context View and Callers View remain
// exact; Figure 2 (depth 2) is unaffected. If the aggregation rule ever
// changes, this test documents what behavior changed.
func TestFlatCallSiteDeepRecursionKnownDeviation(t *testing.T) {
	reg := metric.NewRegistry()
	if _, err := reg.AddRaw("cost", "samples", 1); err != nil {
		t.Fatal(err)
	}
	tree := NewTree("deep", reg)
	frame := func(parent *Node, name string, callLine int) *Node {
		n := parent.Child(Key{Kind: KindFrame, Name: Sym(name), File: Sym("a.c"), Line: 1}, true)
		n.CallFile = Sym("a.c")
		n.CallLine = callLine
		return n
	}
	work := func(fr *Node, line int, v float64) {
		s := fr.Child(Key{Kind: KindStmt, File: Sym("a.c"), Line: line}, true)
		s.Base.Add(0, v)
	}
	// m -> g1 -> g2 -> g3, all through the same call site a.c:3.
	m := frame(tree.Root, "m", 0)
	g1 := frame(m, "g", 9)
	work(g1, 2, 1)
	g2 := frame(g1, "g", 3)
	work(g2, 2, 2)
	g3 := frame(g2, "g", 3)
	work(g3, 2, 4)
	tree.ComputeMetrics()

	// CCV is exact: every instance carries its own cost.
	if g3.Excl.Get(0) != 4 || g2.Excl.Get(0) != 2 || g1.Excl.Get(0) != 1 {
		t.Fatal("CCV exclusive wrong")
	}

	fv := BuildFlatView(tree)
	var gx, gz *Node
	Walk(fv.Roots[0], func(n *Node) bool {
		if n.Kind == KindProc && n.Name.String() == "g" {
			gx = n
		}
		if n.Kind == KindCallSite && n.Name.String() == "g" {
			gz = n
		}
		return true
	})
	if gx == nil || gz == nil {
		t.Fatal("flat scopes missing")
	}
	// Proc row: exposed instance g1 only -> (7, 1).
	if gx.Incl.Get(0) != 7 || gx.Excl.Get(0) != 1 {
		t.Fatalf("gx = (%g, %g), want (7, 1)", gx.Incl.Get(0), gx.Excl.Get(0))
	}
	// Call-site row: g2 is the exposed instance w.r.t. the site -> its
	// inclusive (6) and direct-statement exclusive (2). g3's own 4 is
	// visible in the CCV/inclusive but NOT as flat exclusive anywhere —
	// the documented deviation.
	if gz.Incl.Get(0) != 6 || gz.Excl.Get(0) != 2 {
		t.Fatalf("gz = (%g, %g), want (6, 2)", gz.Incl.Get(0), gz.Excl.Get(0))
	}
	var flatExclSum float64
	Walk(fv.Roots[0], func(n *Node) bool {
		if n.Kind == KindStmt {
			flatExclSum += n.Excl.Get(0)
		}
		return true
	})
	// Statement rows DO conserve everything (they sum all instances).
	if flatExclSum != 7 {
		t.Fatalf("flat statement exclusives = %g, want 7", flatExclSum)
	}
}
