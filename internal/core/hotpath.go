package core

import (
	"slices"
	"strings"

	"repro/internal/metric"
)

// Hot path analysis (Section V-C, Equation 3): starting from a scope x,
// repeatedly descend into the child with the greatest inclusive value of
// the selected metric while that child accounts for at least threshold t of
// the parent's inclusive cost. It applies to any subtree and any metric —
// including derived metrics — and is how Figure 3 finds the
// chemkin_m_reaction_rate_ bottleneck and Figure 7 finds the imbalanced
// time-stepping loop.

// DefaultHotPathThreshold is the t = 50% the paper found most useful.
const DefaultHotPathThreshold = 0.5

// HotPath returns the scopes of H(start) in order, beginning with start
// itself. metricID selects the inclusive metric column; t is the descent
// threshold (DefaultHotPathThreshold when <= 0). The path ends at the first
// scope none of whose children reaches t of its inclusive cost.
func HotPath(start *Node, metricID int, t float64) []*Node {
	if start == nil {
		return nil
	}
	// Hoist the inclusive column slab out of the descent: per-child reads
	// become direct row loads instead of store lookups. ColRead never
	// materializes anything, so concurrent queries over a shared tree stay
	// race-free; nodes from a different store (or none) take the slow path.
	st := start.Incl.Store()
	var slab []float64
	if st != nil {
		slab = st.ColRead(metric.PlaneIncl, metricID)
	}
	incl := func(n *Node) float64 {
		if st != nil && n.Incl.Store() == st {
			if r := int(n.Incl.Row()); r < len(slab) {
				return slab[r]
			}
			return 0
		}
		return n.Incl.Get(metricID)
	}
	return HotPathFunc(start, incl, t)
}

// HotPathFunc is HotPath with the inclusive metric read supplied by the
// caller: incl must return the scope's inclusive value of the selected
// column. Sessions use it to run Equation 3 over overlay (session-private)
// derived columns that are not resident in the tree's shared store; with a
// reader equivalent to the store lookup it returns exactly what HotPath
// returns.
func HotPathFunc(start *Node, incl func(*Node) float64, t float64) []*Node {
	if start == nil {
		return nil
	}
	if t <= 0 {
		t = DefaultHotPathThreshold
	}
	path := []*Node{start}
	cur := start
	for {
		var best *Node
		var bestVal float64
		for _, c := range cur.Children {
			if v := incl(c); best == nil || v > bestVal {
				best, bestVal = c, v
			}
		}
		if best == nil {
			return path
		}
		parentVal := incl(cur)
		if parentVal <= 0 || bestVal < t*parentVal {
			return path
		}
		path = append(path, best)
		cur = best
	}
}

// Flatten implements the Flat View's flattening operation (Section III-C):
// each scope with children is elided and replaced by its children; leaves
// are kept ("applying flattening to a childless scope has no effect").
// Flattening a list of sibling scopes once removes one layer of hierarchy,
// enabling direct comparison of, e.g., loops across different routines
// (Figure 6).
func Flatten(scopes []*Node) []*Node {
	var out []*Node
	for _, s := range scopes {
		if len(s.Children) == 0 {
			out = append(out, s)
			continue
		}
		out = append(out, s.Children...)
	}
	return out
}

// FlattenN applies Flatten n times.
func FlattenN(scopes []*Node, n int) []*Node {
	for i := 0; i < n; i++ {
		scopes = Flatten(scopes)
	}
	return scopes
}

// SortSpec selects the column and flavor scopes are ordered by. The zero
// value — column 0, inclusive, descending — is hpcviewer's default.
type SortSpec struct {
	// MetricID is the column to sort by.
	MetricID int
	// Exclusive compares exclusive values instead of inclusive ones.
	Exclusive bool
	// Ascending inverts the default descending order.
	Ascending bool
	// ByLabel sorts A→Z by the scope labels in the navigation pane
	// instead of a metric column (the capability the paper's footnote 2
	// notes "arose from design orthogonality"); Ascending is ignored.
	ByLabel bool
}

func (s SortSpec) value(n *Node) float64 {
	if s.Exclusive {
		return n.Excl.Get(s.MetricID)
	}
	return n.Incl.Get(s.MetricID)
}

// SortScopes orders a sibling list by the spec, breaking ties by label so
// output is deterministic. The paper's navigation pane keeps every level
// sorted by the selected metric column (Section V-A).
//
// Stable-sorting by a fixed less relation is uniquely determined, so the
// slices.SortStableFunc comparator here orders identically to the
// sort.SliceStable closure it replaces — without the interface boxing and
// per-call closure allocations. On store-backed trees metric reads are
// direct slab loads and tie-break labels come from the per-node label
// cache, so steady-state sorting does not allocate.
func SortScopes(scopes []*Node, spec SortSpec) {
	if spec.ByLabel {
		SortScopesFunc(scopes, spec, nil)
		return
	}
	// Hoist the metric column slab out of the O(n log n) comparisons: on
	// store-backed siblings each comparison is two direct row loads. The
	// read-only slab may lag the row count; rows past its end are zero.
	plane := metric.PlaneIncl
	if spec.Exclusive {
		plane = metric.PlaneExcl
	}
	var st *metric.Store
	var slab []float64
	if len(scopes) > 0 {
		if st = scopes[0].Incl.Store(); st != nil {
			slab = st.ColRead(plane, spec.MetricID)
		}
	}
	value := func(n *Node) float64 {
		v := &n.Incl
		if spec.Exclusive {
			v = &n.Excl
		}
		if st != nil && v.Store() == st {
			if r := int(v.Row()); r < len(slab) {
				return slab[r]
			}
			return 0
		}
		return v.Get(spec.MetricID)
	}
	SortScopesFunc(scopes, spec, value)
}

// SortScopesFunc is SortScopes with the sort key supplied by the caller:
// value must return the scope's value in the selected column and flavor.
// Sessions use it to order sibling lists by overlay (session-private)
// derived columns; with a reader equivalent to the store lookup it orders
// exactly as SortScopes does — same direction handling, same NaN ties, same
// label tie-break. A ByLabel spec ignores value.
func SortScopesFunc(scopes []*Node, spec SortSpec, value func(*Node) float64) {
	if spec.ByLabel {
		slices.SortStableFunc(scopes, func(a, b *Node) int {
			return strings.Compare(a.labelString(), b.labelString())
		})
		return
	}
	slices.SortStableFunc(scopes, func(x, y *Node) int {
		a, b := value(x), value(y)
		if a != b {
			// Translated from the former sort.SliceStable less function:
			// NaNs compare as ties here (both directions false), with no
			// label fallback, preserving its exact ordering.
			if spec.Ascending {
				switch {
				case a < b:
					return -1
				case b < a:
					return 1
				}
				return 0
			}
			switch {
			case a > b:
				return -1
			case b > a:
				return 1
			}
			return 0
		}
		return strings.Compare(x.labelString(), y.labelString())
	})
}

// SortTree sorts every sibling list in the subtree.
func SortTree(start *Node, spec SortSpec) {
	sortTreeRec(start, spec)
}

func sortTreeRec(n *Node, spec SortSpec) {
	SortScopes(n.Children, spec)
	for _, c := range n.Children {
		sortTreeRec(c, spec)
	}
}
