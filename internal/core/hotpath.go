package core

import "sort"

// Hot path analysis (Section V-C, Equation 3): starting from a scope x,
// repeatedly descend into the child with the greatest inclusive value of
// the selected metric while that child accounts for at least threshold t of
// the parent's inclusive cost. It applies to any subtree and any metric —
// including derived metrics — and is how Figure 3 finds the
// chemkin_m_reaction_rate_ bottleneck and Figure 7 finds the imbalanced
// time-stepping loop.

// DefaultHotPathThreshold is the t = 50% the paper found most useful.
const DefaultHotPathThreshold = 0.5

// HotPath returns the scopes of H(start) in order, beginning with start
// itself. metricID selects the inclusive metric column; t is the descent
// threshold (DefaultHotPathThreshold when <= 0). The path ends at the first
// scope none of whose children reaches t of its inclusive cost.
func HotPath(start *Node, metricID int, t float64) []*Node {
	if start == nil {
		return nil
	}
	if t <= 0 {
		t = DefaultHotPathThreshold
	}
	path := []*Node{start}
	cur := start
	for {
		var best *Node
		var bestVal float64
		for _, c := range cur.Children {
			if v := c.Incl.Get(metricID); best == nil || v > bestVal {
				best, bestVal = c, v
			}
		}
		if best == nil {
			return path
		}
		parentVal := cur.Incl.Get(metricID)
		if parentVal <= 0 || bestVal < t*parentVal {
			return path
		}
		path = append(path, best)
		cur = best
	}
}

// Flatten implements the Flat View's flattening operation (Section III-C):
// each scope with children is elided and replaced by its children; leaves
// are kept ("applying flattening to a childless scope has no effect").
// Flattening a list of sibling scopes once removes one layer of hierarchy,
// enabling direct comparison of, e.g., loops across different routines
// (Figure 6).
func Flatten(scopes []*Node) []*Node {
	var out []*Node
	for _, s := range scopes {
		if len(s.Children) == 0 {
			out = append(out, s)
			continue
		}
		out = append(out, s.Children...)
	}
	return out
}

// FlattenN applies Flatten n times.
func FlattenN(scopes []*Node, n int) []*Node {
	for i := 0; i < n; i++ {
		scopes = Flatten(scopes)
	}
	return scopes
}

// SortSpec selects the column and flavor scopes are ordered by. The zero
// value — column 0, inclusive, descending — is hpcviewer's default.
type SortSpec struct {
	// MetricID is the column to sort by.
	MetricID int
	// Exclusive compares exclusive values instead of inclusive ones.
	Exclusive bool
	// Ascending inverts the default descending order.
	Ascending bool
	// ByLabel sorts A→Z by the scope labels in the navigation pane
	// instead of a metric column (the capability the paper's footnote 2
	// notes "arose from design orthogonality"); Ascending is ignored.
	ByLabel bool
}

func (s SortSpec) value(n *Node) float64 {
	if s.Exclusive {
		return n.Excl.Get(s.MetricID)
	}
	return n.Incl.Get(s.MetricID)
}

// SortScopes orders a sibling list by the spec, breaking ties by label so
// output is deterministic. The paper's navigation pane keeps every level
// sorted by the selected metric column (Section V-A).
func SortScopes(scopes []*Node, spec SortSpec) {
	if spec.ByLabel {
		sort.SliceStable(scopes, func(i, j int) bool {
			return scopes[i].Label() < scopes[j].Label()
		})
		return
	}
	sort.SliceStable(scopes, func(i, j int) bool {
		a, b := spec.value(scopes[i]), spec.value(scopes[j])
		if a != b {
			if spec.Ascending {
				return a < b
			}
			return a > b
		}
		return scopes[i].Label() < scopes[j].Label()
	})
}

// SortTree sorts every sibling list in the subtree.
func SortTree(start *Node, spec SortSpec) {
	Walk(start, func(n *Node) bool {
		SortScopes(n.Children, spec)
		return true
	})
}
