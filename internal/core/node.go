// Package core implements the paper's primary contribution: the canonical
// calling context tree with static structure fused in, hybrid
// inclusive/exclusive metric attribution (Section IV, Equations 1 and 2),
// recursion-aware aggregation via exposed instances (Section IV-B), and the
// three complementary views — Calling Context, Callers and Flat (Section
// III) — plus hot path analysis (Section V-C, Equation 3) and flattening
// (Section III-C).
package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/intern"
	"repro/internal/metric"
)

// Kind classifies scopes. The first group appears in the Calling Context
// View; the second group appears only in derived views.
type Kind uint8

const (
	// KindRoot is the invisible root of a tree.
	KindRoot Kind = iota
	// KindFrame is a dynamic scope: the fusion of a call site and its
	// callee on one line, as hpcviewer presents them (Section V-B). The
	// entry frame (main) has no call site.
	KindFrame
	// KindLoop is a recovered loop.
	KindLoop
	// KindAlien is inlined code.
	KindAlien
	// KindStmt is a statement; samples initially land here.
	KindStmt

	// KindLM is a load module (Flat View only).
	KindLM
	// KindFile is a source file (Flat View only).
	KindFile
	// KindProc is an aggregated procedure: a Flat View procedure row or
	// a Callers View row (the root row of a procedure, or one of its
	// transitive callers).
	KindProc
	// KindCallSite is a Flat View dynamic row: a call site aggregated
	// within its static context (the paper's hy/gz/... nodes in Figure
	// 2c).
	KindCallSite
)

func (k Kind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindFrame:
		return "frame"
	case KindLoop:
		return "loop"
	case KindAlien:
		return "alien"
	case KindStmt:
		return "stmt"
	case KindLM:
		return "module"
	case KindFile:
		return "file"
	case KindProc:
		return "proc"
	case KindCallSite:
		return "callsite"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Sym interns a string into the process-wide symbol table. It is the
// constructor for the Name/File fields of Key (and the Mod/CallFile fields
// of Node); the zero Sym is the empty string.
func Sym(s string) intern.Sym { return intern.S(s) }

// Key identifies a child scope within its parent. Two samples fuse into the
// same scope exactly when their keys match at every level.
//
// The key is a fixed-size comparable struct of integers: names and files
// are interned symbols (intern.Sym), so map hashing and equality never
// touch string bytes — the dominant cost of CCT construction before
// interning. Strings are resolved back only at the presentation edge
// (Label, serialization).
type Key struct {
	Kind Kind
	// Name is the procedure name (Frame, Alien, Proc, CallSite), module
	// name (LM) or file name (File), interned.
	Name intern.Sym
	// File is the source file of the scope (callee's file for frames),
	// interned.
	File intern.Sym
	// Line is the statement line, call-site line, loop header line, or
	// procedure declaration line.
	Line int
	// ID disambiguates scopes beyond source position: the call
	// instruction address for frames, the loop header address for loops,
	// the inline-site address for aliens. Zero for hand-built trees.
	ID uint64
}

// Node is one scope in a tree (CCT or derived view).
type Node struct {
	Key
	// NoSource marks scopes with no source information (rendered
	// "plain black" per Section III-D.2).
	NoSource bool
	// Mod is the load module containing the scope (used by the Flat
	// View's top level); set on frames during correlation. Interned.
	Mod intern.Sym
	// CallLine is the call-site line for Frame scopes (the caller-side
	// line), and the inlined call line for Alien scopes.
	CallLine int
	// CallFile is the file containing that call site. Interned.
	CallFile intern.Sym

	Parent   *Node
	Children []*Node
	// index accelerates Child lookups once fan-out exceeds
	// childIndexThreshold; below that, the Children slice is scanned
	// directly (most CCT scopes have a handful of children, and a map
	// per scope was a large share of tree-construction allocations).
	index map[Key]*Node

	// arena is the tree's node allocator; children of an arena-owned
	// node are allocated from the same arena. Nil for hand-built nodes.
	arena *nodeArena

	// labelSym caches the interned Label() so repeated sort tie-breaks
	// resolve a symbol instead of re-formatting the label. Zero means
	// unset (labels are never empty); accessed atomically because sibling
	// lists may be sorted by concurrent readers.
	labelSym uint32

	// Base holds directly attributed costs: sample counts at statements
	// (and barrier samples at dynamic scopes). Views and Equations 1/2
	// are computed from Base. For nodes of an arena-owned tree the three
	// vectors are views into the tree's columnar metric store, indexed by
	// the node's dense row id.
	Base metric.View
	// Excl is the presented exclusive cost (Equation 1 / view rules).
	Excl metric.View
	// Incl is the presented inclusive cost (Equation 2).
	Incl metric.View
}

// childIndexThreshold is the fan-out at which a scope switches from linear
// child scans to a map index. Keys are 32-byte integer structs, so scanning
// a short slice beats hashing; profiles show the crossover near a dozen.
const childIndexThreshold = 8

// Child returns the child with the given key, creating it when create is
// true.
func (n *Node) Child(k Key, create bool) *Node {
	if n.index != nil {
		if c, ok := n.index[k]; ok {
			return c
		}
	} else {
		for _, c := range n.Children {
			if c.Key == k {
				return c
			}
		}
	}
	if !create {
		return nil
	}
	var c *Node
	if n.arena != nil {
		c = n.arena.alloc()
	} else {
		c = new(Node)
	}
	c.Key = k
	c.Parent = n
	c.arena = n.arena
	n.Children = append(n.Children, c)
	if n.index != nil {
		n.index[k] = c
	} else if len(n.Children) > childIndexThreshold {
		idx := make(map[Key]*Node, 2*len(n.Children))
		for _, ch := range n.Children {
			idx[ch.Key] = ch
		}
		n.index = idx
	}
	return c
}

// EnclosingFrame returns the nearest ancestor (or self) that is a Frame,
// nil when none exists.
func (n *Node) EnclosingFrame() *Node {
	for x := n; x != nil; x = x.Parent {
		if x.Kind == KindFrame {
			return x
		}
	}
	return nil
}

// Path returns the scopes from the root (exclusive) to n (inclusive).
func (n *Node) Path() []*Node {
	var path []*Node
	for x := n; x != nil && x.Kind != KindRoot; x = x.Parent {
		path = append(path, x)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Label renders the scope the way hpcviewer's navigation pane would:
// procedures by name, loops as "loop at file:line", statements as
// "file:line", call sites with the callee name. This is the presentation
// edge where symbols resolve back to strings.
func (n *Node) Label() string {
	switch n.Kind {
	case KindRoot:
		return "<root>"
	case KindFrame, KindProc, KindCallSite:
		if n.Name == 0 {
			return "<unknown>"
		}
		return n.Name.String()
	case KindLoop:
		return fmt.Sprintf("loop at %s: %d", baseName(n.File.String()), n.Line)
	case KindAlien:
		return fmt.Sprintf("inlined %s", n.Name)
	case KindStmt:
		return fmt.Sprintf("%s: %d", baseName(n.File.String()), n.Line)
	case KindLM:
		return n.Name.String()
	case KindFile:
		if n.Name == 0 {
			return "<unknown file>"
		}
		return n.Name.String()
	}
	return "?"
}

func baseName(path string) string {
	if path == "" {
		return "??"
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// labelString returns Label(), interned and cached on the node: the sort
// comparators call it O(n log n) times per sibling list, and formatting
// loop/statement labels allocates. Safe under concurrent sorts of disjoint
// sibling lists (the cache cell is atomic; intern.S is idempotent).
func (n *Node) labelString() string {
	if s := atomic.LoadUint32(&n.labelSym); s != 0 {
		return intern.Sym(s).String()
	}
	l := n.Label()
	atomic.StoreUint32(&n.labelSym, uint32(intern.S(l)))
	return l
}

// Tree is a canonical calling context tree plus its metric registry.
type Tree struct {
	// Program names the measured program.
	Program string
	// Reg is the metric column registry shared by all views of this
	// tree.
	Reg *metric.Registry
	// Root is the invisible root; its children are entry frames.
	Root *Node

	// arena owns every node created under Root via Child/AddPath: nodes
	// live in chunked slabs and die with the tree instead of one heap
	// object each.
	arena nodeArena

	// computeMu serializes metric (re)computation so derived views can be
	// built concurrently over one shared tree.
	computeMu sync.Mutex
	computed  bool

	// topo and the kernel scratch slices are reused across recomputations
	// and derived-metric sweeps so the steady state allocates nothing;
	// they are only touched by the single writer that mutates the tree.
	topo     topoScratch
	fl       []float64
	kernCols [][]float64
	derived  []compiledDerived
}

// NewTree creates an empty tree with the given registry (a fresh one when
// nil).
func NewTree(program string, reg *metric.Registry) *Tree {
	if reg == nil {
		reg = metric.NewRegistry()
	}
	t := &Tree{Program: program, Reg: reg}
	t.arena.store = metric.NewStore()
	t.Root = t.arena.alloc()
	t.Root.Key = Key{Kind: KindRoot}
	t.Root.arena = &t.arena
	return t
}

// MetricStore returns the tree's columnar metric store: one slab per metric
// column per plane, indexed by dense node row (Node.Base.Row()). Nil only
// for hand-built Tree literals.
func (t *Tree) MetricStore() *metric.Store { return t.arena.store }

// AddPath materializes (or finds) the scope chain keys under the root and
// returns the final node. Intended for tests and tree builders.
func (t *Tree) AddPath(keys ...Key) *Node {
	n := t.Root
	for _, k := range keys {
		n = n.Child(k, true)
	}
	return n
}

// Walk visits every node under (and including) start in depth-first
// preorder. Returning false from f prunes the subtree.
func Walk(start *Node, f func(n *Node) bool) {
	if !f(start) {
		return
	}
	for _, c := range start.Children {
		Walk(c, f)
	}
}

// NumNodes counts the scopes in the tree, excluding the root.
func (t *Tree) NumNodes() int {
	n := -1
	Walk(t.Root, func(*Node) bool { n++; return true })
	return n
}

// Total returns the root's inclusive value of a metric column: the
// denominator for the percent annotations in every view.
func (t *Tree) Total(metricID int) float64 {
	return t.Root.Incl.Get(metricID)
}

// FindPath descends from the root matching each predicate against child
// labels, returning nil if any step fails. Convenient for tests:
// tree.FindPath("main", "loop at a.c: 2", "kernel").
func (t *Tree) FindPath(labels ...string) *Node {
	n := t.Root
	for _, want := range labels {
		var next *Node
		for _, c := range n.Children {
			if c.Label() == want {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		n = next
	}
	return n
}

// FindFirst returns the first node in preorder whose label matches.
func (t *Tree) FindFirst(label string) *Node {
	var found *Node
	Walk(t.Root, func(n *Node) bool {
		if found != nil {
			return false
		}
		if n.Kind != KindRoot && n.Label() == label {
			found = n
			return false
		}
		return true
	})
	return found
}
