package core

import (
	"testing"

	"repro/internal/metric"
)

// The symbol-interned Key and arena allocator exist to keep the CCT hot
// paths allocation-free; these tests pin that down so a regression fails
// loudly instead of showing up as a slow profile load months later.

func TestChildHitAllocsLinear(t *testing.T) {
	tree := NewTree("t", metric.NewRegistry())
	k := Key{Kind: KindFrame, Name: Sym("f"), File: Sym("f.c"), Line: 1}
	tree.Root.Child(k, true)
	if len(tree.Root.Children) > childIndexThreshold {
		t.Fatalf("test wants the linear-scan regime")
	}
	if n := testing.AllocsPerRun(1000, func() {
		if tree.Root.Child(k, false) == nil {
			t.Fatal("lost child")
		}
	}); n != 0 {
		t.Errorf("Child hit (linear scan) allocates %v/op, want 0", n)
	}
}

func TestChildHitAllocsIndexed(t *testing.T) {
	tree := NewTree("t", metric.NewRegistry())
	var k Key
	for i := 0; i < 4*childIndexThreshold; i++ {
		k = Key{Kind: KindStmt, File: Sym("a.c"), Line: i + 1}
		tree.Root.Child(k, true)
	}
	if tree.Root.index == nil {
		t.Fatalf("test wants the indexed regime")
	}
	if n := testing.AllocsPerRun(1000, func() {
		if tree.Root.Child(k, false) == nil {
			t.Fatal("lost child")
		}
	}); n != 0 {
		t.Errorf("Child hit (indexed) allocates %v/op, want 0", n)
	}
}

func TestChildCreateAmortizedAllocs(t *testing.T) {
	tree := NewTree("t", metric.NewRegistry())
	file := Sym("a.c")
	line := 0
	// Every run creates a fresh node: slab, Children and index-map growth
	// all amortize to well under one allocation per node.
	n := testing.AllocsPerRun(4096, func() {
		line++
		tree.Root.Child(Key{Kind: KindStmt, File: file, Line: line}, true)
	})
	if n >= 1 {
		t.Errorf("Child create allocates %v/op amortized, want < 1", n)
	}
}
