package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// The concurrency harness for the lazy Callers View: construction and
// expansion must be safe from any number of goroutines (run under -race)
// and must produce exactly the sequential result.

// randomRecursiveTree builds a CCT with recursion and loops, big enough
// that concurrent expansion has real work to interleave.
func randomRecursiveTree(nodes int, seed int64) *Tree {
	rng := rand.New(rand.NewSource(seed))
	t := NewTree("race", nil)
	if _, err := t.Reg.AddRaw("CYCLES", "cycles", 1); err != nil {
		panic(err)
	}
	procs := make([]string, 12)
	for i := range procs {
		procs[i] = fmt.Sprintf("p%02d", i)
	}
	cur := t.Root.Child(Key{Kind: KindFrame, Name: Sym("main"), File: Sym("main.c")}, true)
	stack := []*Node{cur}
	for created := 1; created < nodes; created++ {
		switch op := rng.Intn(5); {
		case op <= 1 && len(stack) < 24:
			name := procs[rng.Intn(len(procs))]
			fr := stack[len(stack)-1].Child(Key{Kind: KindFrame, Name: Sym(name), File: Sym("x.c"), ID: uint64(rng.Intn(4))}, true)
			fr.CallLine = rng.Intn(90) + 1
			fr.CallFile = Sym("x.c")
			stack = append(stack, fr)
		case op == 2:
			st := stack[len(stack)-1].Child(Key{Kind: KindStmt, File: Sym("x.c"), Line: rng.Intn(300) + 1}, true)
			st.Base.Add(0, float64(rng.Intn(50)+1))
		default:
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	return t
}

// sameView asserts two callers views are structurally identical with
// identical metrics, children compared in order.
func sameView(t *testing.T, a, b *CallersView) {
	t.Helper()
	if len(a.Roots) != len(b.Roots) {
		t.Fatalf("root count %d != %d", len(a.Roots), len(b.Roots))
	}
	var walk func(x, y *Node, path string)
	walk = func(x, y *Node, path string) {
		if x.Key != y.Key {
			t.Fatalf("%s: key %+v != %+v", path, x.Key, y.Key)
		}
		where := path + "/" + x.Label()
		x.Incl.Range(func(id int, v float64) {
			if got := y.Incl.Get(id); got != v {
				t.Fatalf("%s: incl col %d: %v != %v", where, id, v, got)
			}
		})
		x.Excl.Range(func(id int, v float64) {
			if got := y.Excl.Get(id); got != v {
				t.Fatalf("%s: excl col %d: %v != %v", where, id, v, got)
			}
		})
		if x.Incl.Len() != y.Incl.Len() || x.Excl.Len() != y.Excl.Len() {
			t.Fatalf("%s: vector widths differ", where)
		}
		if len(x.Children) != len(y.Children) {
			t.Fatalf("%s: %d children != %d", where, len(x.Children), len(y.Children))
		}
		for i := range x.Children {
			walk(x.Children[i], y.Children[i], where)
		}
	}
	for i := range a.Roots {
		walk(a.Roots[i], b.Roots[i], "")
	}
}

// TestCallersViewLazyConstruction checks that building the view does not
// build subtries, Expand builds exactly the requested root, and expansion
// is memoized.
func TestCallersViewLazyConstruction(t *testing.T) {
	tree := randomRecursiveTree(2000, 3)
	v := BuildCallersView(tree)
	if len(v.Roots) == 0 {
		t.Fatal("no roots")
	}
	for _, r := range v.Roots {
		if len(r.Children) != 0 {
			t.Fatalf("root %s materialized eagerly", r.Label())
		}
		if v.Expanded(r) {
			t.Fatalf("root %s reports expanded before Expand", r.Label())
		}
	}
	v.Expand(v.Roots[0])
	if !v.Expanded(v.Roots[0]) {
		t.Fatal("expanded root not reported as expanded")
	}
	for _, r := range v.Roots[1:] {
		if v.Expanded(r) {
			t.Fatalf("expanding one root leaked into %s", r.Label())
		}
	}
	// Repeated expansion must not double the costs: snapshot, expand
	// again, compare.
	before := v.Roots[0].Incl.Clone()
	children := len(v.Roots[0].Children)
	v.Expand(v.Roots[0])
	if got := v.Roots[0].Incl; got.Len() != before.Len() {
		t.Fatal("second Expand changed the root vector")
	}
	if len(v.Roots[0].Children) != children {
		t.Fatal("second Expand grew the subtrie")
	}
	// Expanding a node that is not a root row of this view is a no-op.
	v.Expand(tree.Root)
	v.Expand(&Node{})
	if v.Expanded(&Node{}) {
		t.Fatal("foreign node reports expanded")
	}
}

// TestConcurrentBuildCallersView builds views of one shared (initially
// uncomputed) tree from 16 goroutines; every view must equal the
// sequential reference. Run under -race: this exercises the tree's
// compute lock and the read-only walk.
func TestConcurrentBuildCallersView(t *testing.T) {
	tree := randomRecursiveTree(4000, 7)
	views := make([]*CallersView, 16)
	var wg sync.WaitGroup
	for g := range views {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := BuildCallersView(tree)
			v.ExpandAll()
			views[g] = v
		}(g)
	}
	wg.Wait()

	ref := BuildCallersView(randomRecursiveTree(4000, 7))
	ref.ExpandAll()
	for _, v := range views {
		sameView(t, ref, v)
	}
}

// TestConcurrentExpandSharedView hammers one shared view with 16
// goroutines expanding overlapping root sets concurrently; the result
// must be identical to a sequentially expanded twin (each root built
// exactly once, no double counting).
func TestConcurrentExpandSharedView(t *testing.T) {
	tree := randomRecursiveTree(4000, 11)
	v := BuildCallersView(tree)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Overlapping slices: everyone fights over the same roots.
			for i := g % 3; i < len(v.Roots); i++ {
				v.Expand(v.Roots[i])
				if !v.Expanded(v.Roots[i]) {
					panic("Expand returned before subtrie was built")
				}
			}
		}(g)
	}
	wg.Wait()

	ref := BuildCallersView(randomRecursiveTree(4000, 11))
	ref.ExpandAll()
	sameView(t, ref, v)
}

// TestExpandAllParallelMatchesSequential checks the worker-pool expansion
// against ExpandAll for several job counts.
func TestExpandAllParallelMatchesSequential(t *testing.T) {
	ref := BuildCallersView(randomRecursiveTree(4000, 13))
	ref.ExpandAll()
	for _, jobs := range []int{0, 1, 2, 4, 16} {
		v := BuildCallersView(randomRecursiveTree(4000, 13))
		v.ExpandAllParallel(jobs)
		for _, r := range v.Roots {
			if !v.Expanded(r) {
				t.Fatalf("jobs=%d: root %s not expanded", jobs, r.Label())
			}
		}
		sameView(t, ref, v)
	}
}
