package core

// Golden tests reproducing Figure 2 of the paper exactly: the calling
// context tree (2a), the callers tree (2b) and the flat tree (2c), with the
// inclusive/exclusive cost pairs printed in the figure.

import "testing"

type ie struct{ incl, excl float64 }

func costs(n *Node) ie { return ie{n.Incl.Get(0), n.Excl.Get(0)} }

func child(t *testing.T, n *Node, pred func(*Node) bool, desc string) *Node {
	t.Helper()
	var found *Node
	for _, c := range n.Children {
		if pred(c) {
			if found != nil {
				t.Fatalf("ambiguous child %q under %q", desc, n.Label())
			}
			found = c
		}
	}
	if found == nil {
		t.Fatalf("no child %q under %q (children: %v)", desc, n.Label(), labels(n.Children))
	}
	return found
}

func labels(ns []*Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Label()
	}
	return out
}

func frameNamed(name string) func(*Node) bool {
	return func(n *Node) bool { return n.Kind == KindFrame && n.Name.String() == name }
}
func procNamed(name string) func(*Node) bool {
	return func(n *Node) bool { return n.Kind == KindProc && n.Name.String() == name }
}
func loopAt(line int) func(*Node) bool {
	return func(n *Node) bool { return n.Kind == KindLoop && n.Line == line }
}
func callSiteTo(name string) func(*Node) bool {
	return func(n *Node) bool { return n.Kind == KindCallSite && n.Name.String() == name }
}

// TestFig2aCallingContextView checks every (inclusive, exclusive) pair of
// Figure 2a: m 10 0; f 7 1; g1 6 1; g2 5 1; g3 3 3; h 4 4; l1 4 0; l2 4 4.
func TestFig2aCallingContextView(t *testing.T) {
	tree := Fig1Tree()
	m := child(t, tree.Root, frameNamed("m"), "m")
	f := child(t, m, frameNamed("f"), "f")
	g1 := child(t, f, frameNamed("g"), "g1")
	g2 := child(t, g1, frameNamed("g"), "g2")
	h := child(t, g2, frameNamed("h"), "h")
	l1 := child(t, h, loopAt(8), "l1")
	l2 := child(t, l1, loopAt(9), "l2")
	g3 := child(t, m, frameNamed("g"), "g3")

	want := map[string]struct {
		n *Node
		c ie
	}{
		"m":  {m, ie{10, 0}},
		"f":  {f, ie{7, 1}},
		"g1": {g1, ie{6, 1}},
		"g2": {g2, ie{5, 1}},
		"g3": {g3, ie{3, 3}},
		"h":  {h, ie{4, 4}},
		"l1": {l1, ie{4, 0}},
		"l2": {l2, ie{4, 4}},
	}
	for name, w := range want {
		if got := costs(w.n); got != w.c {
			t.Errorf("%s = (%g, %g), want (%g, %g)", name, got.incl, got.excl, w.c.incl, w.c.excl)
		}
	}
	// Root inclusive is the total cost of the execution.
	if tree.Total(0) != 10 {
		t.Errorf("total = %g, want 10", tree.Total(0))
	}
}

// TestFig2bCallersView checks every node of Figure 2b:
//
//	ga 9 4 ── gb 5 1 ── fc 5 1 ── md 5 1
//	       ├─ fb 6 1 ── mc 6 1
//	       └─ ma 3 3
//	fa 7 1 ── mb 7 1
//	h  4 4 ── gc 4 4 ── gd 4 4 ── fd 4 4 ── me 4 4
//	m 10 0
func TestFig2bCallersView(t *testing.T) {
	tree := Fig1Tree()
	v := BuildCallersView(tree)
	v.ExpandAll()

	if len(v.Roots) != 4 {
		t.Fatalf("roots = %v, want 4", labels(v.Roots))
	}
	byName := map[string]*Node{}
	for _, r := range v.Roots {
		byName[r.Name.String()] = r
	}

	ga, fa, hr, mr := byName["g"], byName["f"], byName["h"], byName["m"]
	if ga == nil || fa == nil || hr == nil || mr == nil {
		t.Fatalf("missing roots: %v", labels(v.Roots))
	}

	// Root rows: exposed-instance aggregates.
	if got := costs(ga); got != (ie{9, 4}) {
		t.Errorf("ga = %+v, want {9 4}", got)
	}
	if got := costs(fa); got != (ie{7, 1}) {
		t.Errorf("fa = %+v, want {7 1}", got)
	}
	if got := costs(hr); got != (ie{4, 4}) {
		t.Errorf("h = %+v, want {4 4}", got)
	}
	if got := costs(mr); got != (ie{10, 0}) {
		t.Errorf("m = %+v, want {10 0}", got)
	}
	if len(mr.Children) != 0 {
		t.Errorf("m should have no callers, got %v", labels(mr.Children))
	}

	// g's callers: g (g2's context), f (g1's), m (g3's).
	gb := child(t, ga, procNamed("g"), "gb")
	fb := child(t, ga, procNamed("f"), "fb")
	ma := child(t, ga, procNamed("m"), "ma")
	if got := costs(gb); got != (ie{5, 1}) {
		t.Errorf("gb = %+v, want {5 1}", got)
	}
	if got := costs(fb); got != (ie{6, 1}) {
		t.Errorf("fb = %+v, want {6 1}", got)
	}
	if got := costs(ma); got != (ie{3, 3}) {
		t.Errorf("ma = %+v, want {3 3}", got)
	}

	fc := child(t, gb, procNamed("f"), "fc")
	md := child(t, fc, procNamed("m"), "md")
	if got := costs(fc); got != (ie{5, 1}) {
		t.Errorf("fc = %+v, want {5 1}", got)
	}
	if got := costs(md); got != (ie{5, 1}) {
		t.Errorf("md = %+v, want {5 1}", got)
	}

	mc := child(t, fb, procNamed("m"), "mc")
	if got := costs(mc); got != (ie{6, 1}) {
		t.Errorf("mc = %+v, want {6 1}", got)
	}

	// f's caller chain: m.
	mb := child(t, fa, procNamed("m"), "mb")
	if got := costs(mb); got != (ie{7, 1}) {
		t.Errorf("mb = %+v, want {7 1}", got)
	}

	// h's caller chain: g <- g <- f <- m, all (4,4).
	gc := child(t, hr, procNamed("g"), "gc")
	gd := child(t, gc, procNamed("g"), "gd")
	fd := child(t, gd, procNamed("f"), "fd")
	me := child(t, fd, procNamed("m"), "me")
	for name, n := range map[string]*Node{"gc": gc, "gd": gd, "fd": fd, "me": me} {
		if got := costs(n); got != (ie{4, 4}) {
			t.Errorf("%s = %+v, want {4 4}", name, got)
		}
	}
}

// TestFig2cFlatView checks Figure 2c:
//
//	file2 9 8:  gx 9 4 { hy 4 0, gz 5 1, stmts }, hx 4 4 { l1 4 0 { l2 4 4 } }
//	file1 10 1: m 10 0 { fy 7 1, gv 3 3 }, fx 7 1 { gy 6 1 }
func TestFig2cFlatView(t *testing.T) {
	tree := Fig1Tree()
	v := BuildFlatView(tree)
	if len(v.Roots) != 1 {
		t.Fatalf("modules = %v, want 1", labels(v.Roots))
	}
	lm := v.Roots[0]
	var file1, file2 *Node
	for _, f := range lm.Children {
		switch f.Name.String() {
		case "file1.c":
			file1 = f
		case "file2.c":
			file2 = f
		}
	}
	if file1 == nil || file2 == nil {
		t.Fatalf("files = %v", labels(lm.Children))
	}
	if got := costs(file2); got != (ie{9, 8}) {
		t.Errorf("file2 = %+v, want {9 8}", got)
	}
	if got := costs(file1); got != (ie{10, 1}) {
		t.Errorf("file1 = %+v, want {10 1}", got)
	}

	gx := child(t, file2, procNamed("g"), "gx")
	hx := child(t, file2, procNamed("h"), "hx")
	if got := costs(gx); got != (ie{9, 4}) {
		t.Errorf("gx = %+v, want {9 4}", got)
	}
	if got := costs(hx); got != (ie{4, 4}) {
		t.Errorf("hx = %+v, want {4 4}", got)
	}

	// gx's dynamic rows: the recursive call (gz 5 1) and the call to h
	// (hy 4 0 — rule for dynamic scopes in the flat view).
	gz := child(t, gx, callSiteTo("g"), "gz")
	hy := child(t, gx, callSiteTo("h"), "hy")
	if got := costs(gz); got != (ie{5, 1}) {
		t.Errorf("gz = %+v, want {5 1}", got)
	}
	if got := costs(hy); got != (ie{4, 0}) {
		t.Errorf("hy = %+v, want {4 0}", got)
	}

	// hx's loop nest.
	l1 := child(t, hx, loopAt(8), "l1")
	l2 := child(t, l1, loopAt(9), "l2")
	if got := costs(l1); got != (ie{4, 0}) {
		t.Errorf("l1 = %+v, want {4 0}", got)
	}
	if got := costs(l2); got != (ie{4, 4}) {
		t.Errorf("l2 = %+v, want {4 4}", got)
	}

	// file1: m with call-site rows fy (7 1) and gv (3 3); fx with gy (6 1).
	mx := child(t, file1, procNamed("m"), "m")
	fx := child(t, file1, procNamed("f"), "fx")
	if got := costs(mx); got != (ie{10, 0}) {
		t.Errorf("m = %+v, want {10 0}", got)
	}
	if got := costs(fx); got != (ie{7, 1}) {
		t.Errorf("fx = %+v, want {7 1}", got)
	}
	fy := child(t, mx, callSiteTo("f"), "fy")
	gv := child(t, mx, callSiteTo("g"), "gv")
	gy := child(t, fx, callSiteTo("g"), "gy")
	if got := costs(fy); got != (ie{7, 1}) {
		t.Errorf("fy = %+v, want {7 1}", got)
	}
	if got := costs(gv); got != (ie{3, 3}) {
		t.Errorf("gv = %+v, want {3 3}", got)
	}
	if got := costs(gy); got != (ie{6, 1}) {
		t.Errorf("gy = %+v, want {6 1}", got)
	}

	// The paper's consistency observation: gx's inclusive cost equals
	// ga's in the Callers View.
	cv := BuildCallersView(tree)
	for _, r := range cv.Roots {
		if r.Name.String() == "g" && r.Incl.Get(0) != gx.Incl.Get(0) {
			t.Errorf("callers g (%g) != flat g (%g)", r.Incl.Get(0), gx.Incl.Get(0))
		}
	}
}

// TestNaiveAggregationOvercounts documents why exposed-instance
// aggregation matters (Section IV-B): naively summing all instances of g
// counts the recursive chain twice.
func TestNaiveAggregationOvercounts(t *testing.T) {
	tree := Fig1Tree()
	var naiveIncl, naiveExcl float64
	Walk(tree.Root, func(n *Node) bool {
		if n.Kind == KindFrame && n.Name.String() == "g" {
			naiveIncl += n.Incl.Get(0)
			naiveExcl += n.Excl.Get(0)
		}
		return true
	})
	if naiveIncl != 14 || naiveExcl != 5 {
		t.Fatalf("naive sums = (%g, %g), expected the overcounted (14, 5)", naiveIncl, naiveExcl)
	}
	// The correct exposed aggregate is (9, 4) — checked in Fig2b/2c
	// tests — so the naive inclusive overcounts by g2's entire subtree.
}
