package framing

import (
	"errors"
	"hash/crc32"
	"io"
)

// Aligned-section layout support for the v3 zero-copy formats.
//
// The varint-framed container above cannot be mapped: payload offsets
// depend on varint widths, so an 8-byte-aligned float64 slab lands at an
// arbitrary offset. The aligned writer instead lays sections out back to
// back at 8-byte-aligned offsets with their metadata lifted out-of-line
// into a fixed-width index the format writes at the end of the file:
//
//	section* := payload bytes | zero pad to the next 8-byte boundary
//
// Each section's CRC32C covers the padded span, so every file byte between
// the magic and the index is covered by exactly one checksum — the property
// the corruption fault matrix demands — and the logical (unpadded) length
// is recorded in the caller's index entry.

// Align is the section alignment of the aligned container: float64 slabs
// require 8-byte alignment once the file is mapped at a page boundary.
const Align = 8

// AlignUp rounds n up to the next multiple of Align.
func AlignUp(n int64) int64 { return (n + Align - 1) &^ (Align - 1) }

// AlignedSection records where one section landed: the caller serializes
// these into its index.
type AlignedSection struct {
	// Offset is the section's byte offset from the start of the stream the
	// writer was handed (the caller writes the magic first, so offsets are
	// already 8-aligned when the magic is 8 bytes).
	Offset int64
	// Length is the logical payload length, excluding pad.
	Length int64
	// CRC is the CRC32C over the padded span AlignUp(Length).
	CRC uint32
}

// AlignedWriter appends 8-aligned checksummed sections to a stream.
// The caller is responsible for writing a leading magic whose length is a
// multiple of Align before the first Section call, and for serializing the
// section table after the last.
type AlignedWriter struct {
	w   io.Writer
	off int64
}

// NewAlignedWriter wraps w, which has already received off bytes (the
// magic). off must be a multiple of Align.
func NewAlignedWriter(w io.Writer, off int64) *AlignedWriter {
	return &AlignedWriter{w: w, off: off}
}

// Offset reports the next section's offset (always 8-aligned).
func (aw *AlignedWriter) Offset() int64 { return aw.off }

var zeroPad [Align]byte

// Section writes payload plus zero pad to the next 8-byte boundary and
// returns its placement record. The CRC covers payload and pad.
func (aw *AlignedWriter) Section(payload []byte) (AlignedSection, error) {
	sec := AlignedSection{Offset: aw.off, Length: int64(len(payload))}
	if _, err := aw.w.Write(payload); err != nil {
		return sec, err
	}
	pad := zeroPad[:AlignUp(sec.Length)-sec.Length]
	if len(pad) > 0 {
		if _, err := aw.w.Write(pad); err != nil {
			return sec, err
		}
	}
	crc := crc32.Update(0, castagnoli, payload)
	sec.CRC = crc32.Update(crc, castagnoli, pad)
	aw.off += AlignUp(sec.Length)
	return sec, nil
}

// ChecksumPadded returns the CRC32C an aligned section's span should carry:
// the reader-side twin of Section, over the mapped bytes.
func ChecksumPadded(span []byte) uint32 {
	return crc32.Update(0, castagnoli, span)
}

// SectionWriter streams one aligned section incrementally, for payloads too
// large to materialize (trace record streams). The CRC is accumulated over
// the bytes as they pass through, so peak memory stays at the caller's
// chunk size regardless of section length.
type SectionWriter struct {
	aw  *AlignedWriter
	n   int64
	crc uint32
	err error
}

// Begin starts a streaming section at the writer's current offset. Exactly
// one streaming section may be open at a time; the caller must Finish it
// before the next Section or Begin call.
func (aw *AlignedWriter) Begin() *SectionWriter {
	return &SectionWriter{aw: aw}
}

// Write appends payload bytes to the open section.
func (sw *SectionWriter) Write(p []byte) (int, error) {
	if sw.err != nil {
		return 0, sw.err
	}
	n, err := sw.aw.w.Write(p)
	sw.n += int64(n)
	sw.crc = crc32.Update(sw.crc, castagnoli, p[:n])
	if err != nil {
		sw.err = err
	}
	return n, err
}

// Finish pads the section to the next 8-byte boundary and returns its
// placement record, mirroring Section.
func (sw *SectionWriter) Finish() (AlignedSection, error) {
	sec := AlignedSection{Offset: sw.aw.off, Length: sw.n}
	if sw.err != nil {
		return sec, sw.err
	}
	pad := zeroPad[:AlignUp(sw.n)-sw.n]
	if len(pad) > 0 {
		if _, err := sw.aw.w.Write(pad); err != nil {
			sw.err = err
			return sec, err
		}
	}
	sec.CRC = crc32.Update(sw.crc, castagnoli, pad)
	sw.aw.off += AlignUp(sw.n)
	sw.err = errSectionFinished
	return sec, nil
}

var errSectionFinished = errors.New("framing: write after section Finish")
