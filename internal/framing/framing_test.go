package framing

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func frame(t *testing.T, magic string, secs map[byte][]byte, order []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, magic)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range order {
		if err := w.Section(id, secs[id]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	secs := map[byte][]byte{
		1: []byte("hello"),
		2: {},
		3: bytes.Repeat([]byte{0xab}, 3000),
	}
	data := frame(t, "MAGK", secs, []byte{1, 2, 3})
	// Both with a known size and with size unknown (non-seekable source).
	for _, size := range []int64{int64(len(data)), -1} {
		r, err := NewReader(bytes.NewReader(data), size, "MAGK")
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		for {
			id, payload, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("size=%d: %v", size, err)
			}
			got = append(got, id)
			if !bytes.Equal(payload, secs[id]) {
				t.Fatalf("size=%d: section %d payload mismatch", size, id)
			}
		}
		if string(got) != "\x01\x02\x03" {
			t.Fatalf("size=%d: sections %v", size, got)
		}
	}
}

func TestBadMagic(t *testing.T) {
	data := frame(t, "MAGK", map[byte][]byte{1: []byte("x")}, []byte{1})
	var fe *FrameError
	if _, err := NewReader(bytes.NewReader(data), int64(len(data)), "OTHR"); !errors.As(err, &fe) {
		t.Fatalf("bad magic error = %v", err)
	}
	if _, err := NewReader(strings.NewReader("MA"), 2, "MAGK"); err == nil {
		t.Fatal("short magic accepted")
	}
}

func TestChecksumErrorIsRecoverable(t *testing.T) {
	secs := map[byte][]byte{1: []byte("first"), 2: []byte("second"), 3: []byte("third")}
	data := frame(t, "MAGK", secs, []byte{1, 2, 3})
	// Corrupt a payload byte of section 2 ("second" starts after
	// 4 magic + 1 id + 1 len + 5 payload + 4 crc + 1 id + 1 len).
	off := bytes.Index(data, []byte("second"))
	data[off] ^= 0xff
	r, err := NewReader(bytes.NewReader(data), int64(len(data)), "MAGK")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[byte]bool{}
	for {
		id, payload, err := r.Next()
		if err == io.EOF {
			break
		}
		var ck *ChecksumError
		if errors.As(err, &ck) {
			if ck.SectionID != 2 {
				t.Fatalf("checksum failure on section %d", ck.SectionID)
			}
			// The damaged payload is still surfaced, fully consumed.
			if len(payload) != len(secs[2]) {
				t.Fatalf("damaged payload length %d", len(payload))
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		seen[id] = true
	}
	if !seen[1] || !seen[3] {
		t.Fatalf("intact sections lost: %v", seen)
	}
}

func TestTruncationIsFatal(t *testing.T) {
	data := frame(t, "MAGK", map[byte][]byte{1: []byte("payload"), 2: []byte("more")}, []byte{1, 2})
	for n := len("MAGK"); n < len(data); n++ {
		r, err := NewReader(bytes.NewReader(data[:n]), int64(n), "MAGK")
		if err != nil {
			continue // magic itself truncated
		}
		for {
			_, _, err := r.Next()
			if err == io.EOF {
				t.Fatalf("prefix %d/%d read cleanly", n, len(data))
			}
			if err != nil {
				var fe *FrameError
				var ck *ChecksumError
				if !errors.As(err, &fe) && !errors.As(err, &ck) {
					t.Fatalf("prefix %d: untyped error %v", n, err)
				}
				break
			}
		}
	}
}

func TestLyingLengthBounded(t *testing.T) {
	// A section claiming far more payload than the input holds must be
	// rejected when the size is known, and must not allocate it either way.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "MAGK")
	buf.WriteByte(7)
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // uvarint ~2^62
	_ = w
	data := buf.Bytes()
	for _, size := range []int64{int64(len(data)), -1} {
		r, err := NewReader(bytes.NewReader(data), size, "MAGK")
		if err != nil {
			t.Fatal(err)
		}
		var fe *FrameError
		if _, _, err := r.Next(); !errors.As(err, &fe) {
			t.Fatalf("size=%d: lying length error = %v", size, err)
		}
	}
}

func TestWriterRejectsEndMarkerID(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "MAGK")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section(0, []byte("x")); err == nil {
		t.Fatal("section id 0 accepted")
	}
}

func TestSizeOf(t *testing.T) {
	br := bytes.NewReader([]byte("hello world"))
	if got := SizeOf(br); got != 11 {
		t.Fatalf("SizeOf = %d", got)
	}
	// Partially consumed: remaining bytes only.
	var one [6]byte
	if _, err := io.ReadFull(br, one[:]); err != nil {
		t.Fatal(err)
	}
	if got := SizeOf(br); got != 5 {
		t.Fatalf("SizeOf after read = %d", got)
	}
	// The measurement must not disturb the read position.
	rest, err := io.ReadAll(br)
	if err != nil || string(rest) != "world" {
		t.Fatalf("position disturbed: %q, %v", rest, err)
	}
	if got := SizeOf(strings.NewReader("x")); got != 1 {
		t.Fatalf("SizeOf(strings.Reader) = %d", got)
	}
	if got := SizeOf(io.LimitReader(br, 1)); got != -1 {
		t.Fatalf("SizeOf(non-seeker) = %d", got)
	}
}

func TestTrailingGarbageAfterEndMarker(t *testing.T) {
	// The reader stops at the end marker; callers detect trailing bytes
	// themselves. Next after EOF keeps returning EOF-ish results without
	// panicking.
	data := frame(t, "MAGK", map[byte][]byte{1: []byte("x")}, []byte{1})
	data = append(data, "garbage"...)
	r, err := NewReader(bytes.NewReader(data), int64(len(data)), "MAGK")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF at end marker, got %v", err)
	}
}
