// Package framing implements the checksummed section container shared by
// the v2 binary formats ("CPP2" measurement files, "CPDB2" experiment
// databases). A framed stream is
//
//	magic bytes
//	section*  :=  id byte (nonzero) | uvarint payload length | payload | crc32c(payload) LE
//	end byte 0
//
// Per-section CRC32C trailers let a reader pinpoint which section a flaky
// filesystem damaged: a corrupt optional section can be dropped (degraded
// open) while the rest of the file stays trustworthy. Payload lengths are
// validated against the remaining input size when it is known, so a
// malicious length cannot drive a huge allocation from a tiny file.
package framing

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// EndMarker terminates a framed stream; section ids must be nonzero.
const EndMarker byte = 0

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of payload, the per-section trailer value.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// ChecksumError reports a section whose payload did not match its CRC32C
// trailer. The section was fully consumed: the caller may keep reading the
// following sections and decide per section id whether the damage is fatal
// or degradable.
type ChecksumError struct {
	SectionID byte
	Offset    int64 // stream offset of the section's id byte
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("framing: section %d at offset %d failed its CRC32C check", e.SectionID, e.Offset)
}

// FrameError reports damage to the framing itself (bad length, missing end
// marker, truncation). Framing damage is always fatal: section boundaries
// can no longer be trusted.
type FrameError struct {
	Offset int64
	Reason string
	Err    error // underlying error, if any
}

func (e *FrameError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("framing: at offset %d: %s: %v", e.Offset, e.Reason, e.Err)
	}
	return fmt.Sprintf("framing: at offset %d: %s", e.Offset, e.Reason)
}

func (e *FrameError) Unwrap() error { return e.Err }

// SizeOf reports the number of bytes remaining in r when r can be measured
// without consuming it (io.Seeker), and -1 otherwise. Readers use the size
// to bound count- and length-driven allocations.
func SizeOf(r io.Reader) int64 {
	s, ok := r.(io.Seeker)
	if !ok {
		return -1
	}
	cur, err := s.Seek(0, io.SeekCurrent)
	if err != nil {
		return -1
	}
	end, err := s.Seek(0, io.SeekEnd)
	if err != nil {
		return -1
	}
	if _, err := s.Seek(cur, io.SeekStart); err != nil {
		return -1
	}
	return end - cur
}

// Writer frames sections onto an io.Writer.
type Writer struct {
	w io.Writer
}

// NewWriter writes the magic and returns a section writer.
func NewWriter(w io.Writer, magic string) (*Writer, error) {
	if _, err := io.WriteString(w, magic); err != nil {
		return nil, err
	}
	return &Writer{w: w}, nil
}

// Section frames one section. The id must be nonzero.
func (fw *Writer) Section(id byte, payload []byte) error {
	if id == EndMarker {
		return fmt.Errorf("framing: section id 0 is reserved for the end marker")
	}
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = id
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := fw.w.Write(hdr[:1+n]); err != nil {
		return err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], Checksum(payload))
	_, err := fw.w.Write(crc[:])
	return err
}

// StreamSection frames one section whose payload length is known up front
// but whose bytes are produced incrementally: fn receives a writer that
// accumulates the CRC as bytes pass through, so the payload is never
// materialized. fn must write exactly length bytes or the stream is left
// inconsistent and an error is returned.
func (fw *Writer) StreamSection(id byte, length uint64, fn func(io.Writer) error) error {
	if id == EndMarker {
		return fmt.Errorf("framing: section id 0 is reserved for the end marker")
	}
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = id
	n := binary.PutUvarint(hdr[1:], length)
	if _, err := fw.w.Write(hdr[:1+n]); err != nil {
		return err
	}
	cw := &crcWriter{w: fw.w}
	if err := fn(cw); err != nil {
		return err
	}
	if uint64(cw.n) != length {
		return fmt.Errorf("framing: streamed section %d wrote %d bytes, declared %d", id, cw.n, length)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], cw.crc)
	_, err := fw.w.Write(crc[:])
	return err
}

// crcWriter forwards writes while accumulating their CRC32C and length.
type crcWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	return n, err
}

// Close writes the end marker. The underlying writer is not closed.
func (fw *Writer) Close() error {
	_, err := fw.w.Write([]byte{EndMarker})
	return err
}

// Reader iterates the sections of a framed stream.
type Reader struct {
	br   *bufio.Reader
	size int64 // total input size including magic, -1 if unknown
	off  int64 // bytes consumed so far
	sink func(id byte) io.Writer
}

// SetSink registers a per-section streaming sink. When fn returns a
// non-nil writer for a section id, Next streams that section's payload
// through the writer in bounded chunks instead of buffering it, and
// returns a nil payload for the section. The CRC is still verified over
// the streamed bytes. Use io.Discard to skip a large section (a trace
// section in a measurement file) without O(payload) memory.
func (fr *Reader) SetSink(fn func(id byte) io.Writer) { fr.sink = fn }

// NewReader checks the magic and returns a section reader. size is the
// total input length including the magic (use SizeOf on the unwrapped
// source), or -1 when unknown; it bounds payload allocations.
func NewReader(r io.Reader, size int64, magic string) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	fr := &Reader{br: br, size: size}
	got := make([]byte, len(magic))
	if err := fr.readFull(got); err != nil {
		return nil, &FrameError{Offset: 0, Reason: "reading magic", Err: err}
	}
	if string(got) != magic {
		return nil, &FrameError{Offset: 0, Reason: fmt.Sprintf("bad magic %q, want %q", got, magic)}
	}
	return fr, nil
}

func (fr *Reader) readFull(p []byte) error {
	n, err := io.ReadFull(fr.br, p)
	fr.off += int64(n)
	return err
}

// remaining reports how many input bytes are left, or a very large number
// when the size is unknown.
func (fr *Reader) remaining() int64 {
	if fr.size < 0 {
		return 1<<63 - 1
	}
	return fr.size - fr.off
}

// maxChunk bounds a single payload allocation when the input size is
// unknown: payloads are then read in chunks so a lying length can never
// allocate more than the data actually present plus one chunk.
const maxChunk = 1 << 20

// Next returns the next section. It returns (0, nil, io.EOF) at the end
// marker; a *ChecksumError when the payload fails its CRC (the section is
// fully consumed — the caller may continue); and a *FrameError when the
// framing itself is damaged (fatal).
func (fr *Reader) Next() (byte, []byte, error) {
	start := fr.off
	id, err := fr.br.ReadByte()
	if err != nil {
		// A well-formed stream ends with the end marker, so raw EOF here
		// means the tail was cut off.
		return 0, nil, &FrameError{Offset: start, Reason: "truncated before end marker", Err: io.ErrUnexpectedEOF}
	}
	fr.off++
	if id == EndMarker {
		return 0, nil, io.EOF
	}
	n, err := binary.ReadUvarint(fr.br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, &FrameError{Offset: start, Reason: "reading section length", Err: err}
	}
	fr.off += int64(uvarintLen(n))
	if int64(n) < 0 || (fr.size >= 0 && int64(n) > fr.remaining()) {
		return 0, nil, &FrameError{Offset: start, Reason: fmt.Sprintf("section %d length %d exceeds remaining input", id, n)}
	}
	if fr.sink != nil {
		if w := fr.sink(id); w != nil {
			return fr.streamPayload(id, n, start, w)
		}
	}
	var payload []byte
	if fr.size >= 0 || n <= maxChunk {
		payload = make([]byte, n)
		if err := fr.readFull(payload); err != nil {
			return 0, nil, &FrameError{Offset: start, Reason: fmt.Sprintf("reading section %d payload", id), Err: err}
		}
	} else {
		// Unknown input size: grow with the data actually read.
		payload = make([]byte, 0, maxChunk)
		for uint64(len(payload)) < n {
			c := n - uint64(len(payload))
			if c > maxChunk {
				c = maxChunk
			}
			chunk := make([]byte, c)
			if err := fr.readFull(chunk); err != nil {
				return 0, nil, &FrameError{Offset: start, Reason: fmt.Sprintf("reading section %d payload", id), Err: err}
			}
			payload = append(payload, chunk...)
		}
	}
	var crc [4]byte
	if err := fr.readFull(crc[:]); err != nil {
		return 0, nil, &FrameError{Offset: start, Reason: fmt.Sprintf("reading section %d checksum", id), Err: err}
	}
	if binary.LittleEndian.Uint32(crc[:]) != Checksum(payload) {
		return id, payload, &ChecksumError{SectionID: id, Offset: start}
	}
	return id, payload, nil
}

// streamPayload consumes a section's payload in bounded chunks, forwarding
// each chunk to w and accumulating the CRC, then verifies the trailer.
// Sink write errors are surfaced as-is so the caller can distinguish its
// own failures from stream damage.
func (fr *Reader) streamPayload(id byte, n uint64, start int64, w io.Writer) (byte, []byte, error) {
	var buf [32 * 1024]byte
	crc := uint32(0)
	for left := n; left > 0; {
		c := left
		if c > uint64(len(buf)) {
			c = uint64(len(buf))
		}
		chunk := buf[:c]
		if err := fr.readFull(chunk); err != nil {
			return 0, nil, &FrameError{Offset: start, Reason: fmt.Sprintf("reading section %d payload", id), Err: err}
		}
		crc = crc32.Update(crc, castagnoli, chunk)
		if _, err := w.Write(chunk); err != nil {
			return 0, nil, err
		}
		left -= c
	}
	var trailer [4]byte
	if err := fr.readFull(trailer[:]); err != nil {
		return 0, nil, &FrameError{Offset: start, Reason: fmt.Sprintf("reading section %d checksum", id), Err: err}
	}
	if binary.LittleEndian.Uint32(trailer[:]) != crc {
		return id, nil, &ChecksumError{SectionID: id, Offset: start}
	}
	return id, nil, nil
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}
