package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/expdb"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/mpi"
	"repro/internal/sampler"
	"repro/internal/structfile"
	"repro/internal/workloads"
)

// fixture builds the merged toy experiment at the given rank count, with
// mean/max summary columns when summaries is set.
func fixture(t *testing.T, ranks int, summaries bool) *expdb.Experiment {
	t.Helper()
	spec, err := workloads.ByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: ranks, Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	if summaries {
		cyc := res.Tree.Reg.ByName("CYCLES")
		if cyc == nil {
			t.Fatal("no CYCLES column")
		}
		if err := res.AddSummaries(cyc.ID, metric.OpMean, metric.OpMax); err != nil {
			t.Fatal(err)
		}
	}
	return expdb.FromMerge(res)
}

func TestReportBuild(t *testing.T) {
	exp := fixture(t, 3, true)
	r, err := Build(exp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ranks != 3 || r.Scopes != exp.Tree.NumNodes() {
		t.Fatalf("ranks=%d scopes=%d, want 3/%d", r.Ranks, r.Scopes, exp.Tree.NumNodes())
	}
	if len(r.HotPaths) == 0 {
		t.Fatal("no hot paths")
	}
	for _, hp := range r.HotPaths {
		if hp.Metric != "CYCLES" {
			t.Fatalf("hot path metric %q, want CYCLES (first raw column)", hp.Metric)
		}
		if len(hp.Steps) == 0 || hp.Steps[0].Fraction != 1 {
			t.Fatalf("hot path %q: steps %+v", hp.Root, hp.Steps)
		}
		for _, s := range hp.Steps {
			if s.Incl > hp.Total {
				t.Fatalf("step %q inclusive %g exceeds root total %g", s.Label, s.Incl, hp.Total)
			}
		}
	}
	if len(r.Waste) != 1 {
		t.Fatalf("waste analyses = %d, want 1 (one raw metric with summaries)", len(r.Waste))
	}
	wm := r.Waste[0]
	if wm.Efficiency <= 0 || wm.Efficiency > 1 {
		t.Fatalf("efficiency %g outside (0, 1]", wm.Efficiency)
	}
	if wm.TotalMax < wm.TotalMean || wm.TotalWaste < 0 {
		t.Fatalf("mean %g max %g waste %g inconsistent", wm.TotalMean, wm.TotalMax, wm.TotalWaste)
	}
	if len(r.Imbalance) != 1 {
		t.Fatalf("imbalance analyses = %d, want 1", len(r.Imbalance))
	}
	im := r.Imbalance[0]
	if im.Frames == 0 || im.MaxFactor < im.MeanFactor {
		t.Fatalf("imbalance %+v inconsistent", im)
	}
	for i := 1; i < len(im.Worst); i++ {
		if im.Worst[i].Factor > im.Worst[i-1].Factor {
			t.Fatal("worst offenders not sorted by factor")
		}
	}
	if r.Regressions != nil {
		t.Fatal("regressions present without a baseline")
	}
	md := r.Markdown()
	for _, want := range []string{"## Hot paths", "## Waste and parallel efficiency", "## Load imbalance"} {
		if !bytes.Contains(md, []byte(want)) {
			t.Fatalf("markdown missing %q", want)
		}
	}
}

// TestReportNoSummaries: without cross-rank summary columns the report
// degrades to hot paths plus an explanatory note.
func TestReportNoSummaries(t *testing.T) {
	r, err := Build(fixture(t, 3, false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Waste) != 0 || len(r.Imbalance) != 0 {
		t.Fatal("waste/imbalance produced without summary columns")
	}
	found := false
	for _, n := range r.Notes {
		found = found || strings.Contains(n, "hpcprof -summaries")
	}
	if !found {
		t.Fatalf("notes %q missing the summaries hint", r.Notes)
	}
}

// TestReportJobsDeterminism is the PR's determinism check: report bytes —
// JSON and markdown, including the baseline diff — must not depend on the
// worker count.
func TestReportJobsDeterminism(t *testing.T) {
	exp := fixture(t, 3, true)
	base := fixture(t, 7, true)
	render := func(jobs int) ([]byte, []byte) {
		r, err := Build(exp, Options{Baseline: base, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		j, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j, r.Markdown()
	}
	j1, m1 := render(1)
	j8, m8 := render(8)
	if !bytes.Equal(j1, j8) {
		t.Fatal("report JSON differs between -jobs 1 and -jobs 8")
	}
	if !bytes.Equal(m1, m8) {
		t.Fatal("report markdown differs between -jobs 1 and -jobs 8")
	}
	var r struct {
		Regressions *struct{} `json:"regressions"`
	}
	if err := json.Unmarshal(j1, &r); err != nil {
		t.Fatal(err)
	}
	if r.Regressions == nil {
		t.Fatal("baseline diff missing from report")
	}
}

func TestReportErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("nil experiment did not error")
	}
	if _, err := Build(fixture(t, 1, false), Options{Metric: "NOPE"}); err == nil {
		t.Fatal("unknown metric did not error")
	}
}
