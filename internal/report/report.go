// Package report runs the paper's interactive analyses unattended,
// producing a deterministic machine-readable summary of one experiment
// database — the workflow of "Automated Programmatic Performance Analysis"
// applied to this reproduction's engine. A report bundles:
//
//   - hot path analysis per entry frame (Section V-C, Equation 3),
//   - the derived waste/efficiency metrics of Section VI-B, recovered
//     from cross-rank summary columns,
//   - the load-imbalance analysis of Section VI-C (internal/imbalance),
//   - and, given a baseline database, the top regressions and
//     improvements via internal/diff.
//
// Build only reads its inputs (safe over shared refcounted snapshots) and
// its output depends only on the database bytes and the options — never
// on worker counts, map order or timestamps — so report bytes are stable
// across runs and suitable for golden tests and CI gating.
package report

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/expdb"
	"repro/internal/imbalance"
	"repro/internal/metric"
)

// Options shape a report.
type Options struct {
	// Metric names the primary raw metric for hot paths and regressions
	// (default: the first raw column).
	Metric string
	// Threshold is the hot-path descent threshold (Equation 3's t);
	// default core.DefaultHotPathThreshold.
	Threshold float64
	// Top bounds every ranked list (default 10).
	Top int
	// Bins sizes the imbalance histogram (default 10).
	Bins int
	// Jobs bounds diff kernel parallelism; the report bytes do not
	// depend on it.
	Jobs int
	// Baseline, when set, adds a regression analysis of the reported
	// database against it.
	Baseline *expdb.Experiment
}

// Metric describes one column of the database.
type Metric struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
	Kind string `json:"kind"`
}

// Step is one scope of a hot path.
type Step struct {
	Label string  `json:"label"`
	Kind  string  `json:"kind"`
	Incl  float64 `json:"incl"`
	// Fraction is this scope's share of the previous step's inclusive
	// cost (1 for the first step).
	Fraction float64 `json:"fraction"`
}

// HotPath is the Equation 3 descent from one entry frame.
type HotPath struct {
	Root   string  `json:"root"`
	Metric string  `json:"metric"`
	Total  float64 `json:"total"`
	Steps  []Step  `json:"steps"`
}

// WasteMetric is the Section VI-B derived waste/efficiency analysis of
// one raw metric, from its cross-rank summary columns.
type WasteMetric struct {
	Metric string `json:"metric"`
	// TotalMean/TotalMax are the program's per-rank mean and maximum
	// inclusive cost; TotalWaste is ranks·(max−mean); Efficiency is
	// mean/max (1 = perfectly balanced).
	TotalMean  float64 `json:"total_mean"`
	TotalMax   float64 `json:"total_max"`
	TotalWaste float64 `json:"total_waste"`
	Efficiency float64 `json:"efficiency"`
	// TopScopes are the frames where rebalancing pays most, by waste.
	TopScopes []imbalance.ScopeStat `json:"top_scopes,omitempty"`
}

// ImbalanceMetric is the Section VI-C load-imbalance distribution of one
// raw metric over significant frames (inclusive mean ≥ 1% of program
// mean).
type ImbalanceMetric struct {
	Metric     string                `json:"metric"`
	Frames     int                   `json:"frames"`
	MeanFactor float64               `json:"mean_factor"`
	MaxFactor  float64               `json:"max_factor"`
	Histogram  []imbalance.Bin       `json:"histogram,omitempty"`
	Worst      []imbalance.ScopeStat `json:"worst,omitempty"`
}

// Report is the complete unattended analysis of one database.
type Report struct {
	Program   string            `json:"program"`
	Ranks     int               `json:"ranks"`
	Scopes    int               `json:"scopes"`
	Metrics   []Metric          `json:"metrics"`
	HotPaths  []HotPath         `json:"hot_paths,omitempty"`
	Waste     []WasteMetric     `json:"waste,omitempty"`
	Imbalance []ImbalanceMetric `json:"imbalance,omitempty"`
	// Regressions compares against the baseline database (nil without
	// one).
	Regressions *diff.Report `json:"regressions,omitempty"`
	Notes       []string     `json:"notes,omitempty"`
}

// Build analyzes one database. The experiment is only read.
func Build(exp *expdb.Experiment, opt Options) (*Report, error) {
	if exp == nil || exp.Tree == nil {
		return nil, fmt.Errorf("report: no tree")
	}
	if opt.Threshold <= 0 {
		opt.Threshold = core.DefaultHotPathThreshold
	}
	if opt.Top == 0 {
		opt.Top = 10
	}
	if opt.Bins <= 0 {
		opt.Bins = 10
	}
	tree := exp.Tree
	r := &Report{
		Program: exp.Program,
		Ranks:   exp.NRanks,
		Scopes:  tree.NumNodes(),
		Notes:   exp.Notes,
	}
	for _, d := range tree.Reg.Columns() {
		r.Metrics = append(r.Metrics, Metric{Name: d.Name, Unit: d.Unit, Kind: d.Kind.String()})
	}

	primary, err := primaryMetric(tree.Reg, opt.Metric)
	if err != nil {
		return nil, err
	}
	for _, entry := range tree.Root.Children {
		r.HotPaths = append(r.HotPaths, hotPath(entry, primary, opt.Threshold))
	}

	for _, d := range tree.Reg.Columns() {
		if d.Kind != metric.Raw {
			continue
		}
		meanID, maxID, ok := summaryCols(tree.Reg, d.ID)
		if !ok {
			continue
		}
		scopes := imbalance.FromSummaries(tree, exp.NRanks, meanID, maxID)
		r.Waste = append(r.Waste, wasteMetric(tree, exp.NRanks, d, meanID, maxID, scopes, opt.Top))
		if im, ok := imbalanceMetric(tree, d, meanID, scopes, opt); ok {
			r.Imbalance = append(r.Imbalance, im)
		}
	}
	if len(r.Waste) == 0 {
		r.Notes = append(r.Notes,
			"no cross-rank summary columns: waste/imbalance analyses skipped (merge with hpcprof -summaries)")
	}

	if opt.Baseline != nil {
		rep, err := regressions(exp, opt)
		if err != nil {
			return nil, err
		}
		r.Regressions = rep
	}
	return r, nil
}

// primaryMetric resolves the hot-path metric: the named raw column, or
// the first raw column.
func primaryMetric(reg *metric.Registry, name string) (*metric.Desc, error) {
	if name != "" {
		d := reg.ByName(name)
		if d == nil {
			return nil, fmt.Errorf("report: no metric %q", name)
		}
		return d, nil
	}
	for _, d := range reg.Columns() {
		if d.Kind == metric.Raw {
			return d, nil
		}
	}
	return nil, fmt.Errorf("report: database has no raw metric columns")
}

// hotPath runs Equation 3 from one entry frame.
func hotPath(entry *core.Node, d *metric.Desc, t float64) HotPath {
	hp := HotPath{
		Root:   entry.Label(),
		Metric: d.Name,
		Total:  entry.Incl.Get(d.ID),
	}
	prev := hp.Total
	for i, n := range core.HotPath(entry, d.ID, t) {
		incl := n.Incl.Get(d.ID)
		frac := 1.0
		if i > 0 && prev > 0 {
			frac = incl / prev
		}
		hp.Steps = append(hp.Steps, Step{
			Label:    n.Label(),
			Kind:     n.Kind.String(),
			Incl:     incl,
			Fraction: frac,
		})
		prev = incl
	}
	return hp
}

// summaryCols finds the mean and max summary columns over one raw column.
func summaryCols(reg *metric.Registry, src int) (meanID, maxID int, ok bool) {
	meanID, maxID = -1, -1
	for _, d := range reg.Columns() {
		if d.Kind != metric.Summary || d.Source != src {
			continue
		}
		switch d.Op {
		case metric.OpMean:
			meanID = d.ID
		case metric.OpMax:
			maxID = d.ID
		}
	}
	return meanID, maxID, meanID >= 0 && maxID >= 0
}

func wasteMetric(tree *core.Tree, ranks int, d *metric.Desc, meanID, maxID int, scopes []imbalance.ScopeStat, top int) WasteMetric {
	// Summary columns hold no value at the invisible root, so program
	// totals come from summing the entry frames. Mean is linear so the sum
	// is exact; the max sum is an upper bound (exact for one entry frame).
	var totalMean, totalMax float64
	for _, entry := range tree.Root.Children {
		totalMean += entry.Incl.Get(meanID)
		totalMax += entry.Incl.Get(maxID)
	}
	wm := WasteMetric{
		Metric:     d.Name,
		TotalMean:  totalMean,
		TotalMax:   totalMax,
		TotalWaste: float64(ranks) * (totalMax - totalMean),
	}
	if totalMax > 0 {
		wm.Efficiency = totalMean / totalMax
	}
	if top > 0 && len(scopes) > top {
		scopes = scopes[:top]
	}
	wm.TopScopes = append([]imbalance.ScopeStat(nil), scopes...)
	return wm
}

// imbalanceMetric summarizes the imbalance-factor distribution over
// significant frames (mean ≥ 1% of the program mean).
func imbalanceMetric(tree *core.Tree, d *metric.Desc, meanID int, scopes []imbalance.ScopeStat, opt Options) (ImbalanceMetric, bool) {
	var programMean float64
	for _, entry := range tree.Root.Children {
		programMean += entry.Incl.Get(meanID)
	}
	cut := 0.01 * programMean
	var sig []imbalance.ScopeStat
	var factors []float64
	var stats metric.Stats
	for _, s := range scopes {
		if s.Mean < cut {
			continue
		}
		sig = append(sig, s)
		factors = append(factors, s.Factor)
		stats.Observe(s.Factor)
	}
	if len(sig) == 0 {
		return ImbalanceMetric{}, false
	}
	im := ImbalanceMetric{
		Metric:     d.Name,
		Frames:     len(sig),
		MeanFactor: stats.Mean(),
		MaxFactor:  stats.Max,
		Histogram:  imbalance.Histogram(factors, opt.Bins),
	}
	// Worst offenders by factor (sig is waste-ordered; re-rank a copy).
	worst := append([]imbalance.ScopeStat(nil), sig...)
	for i := 1; i < len(worst); i++ {
		for j := i; j > 0 && less(worst[j], worst[j-1]); j-- {
			worst[j], worst[j-1] = worst[j-1], worst[j]
		}
	}
	if opt.Top > 0 && len(worst) > opt.Top {
		worst = worst[:opt.Top]
	}
	im.Worst = worst
	return im, true
}

// less orders by descending imbalance factor, ties by path.
func less(a, b imbalance.ScopeStat) bool {
	if a.Factor != b.Factor {
		return a.Factor > b.Factor
	}
	return strings.Join(a.Path, "\x00") < strings.Join(b.Path, "\x00")
}

// regressions diffs the database against the baseline and reports the
// top movers of the primary metric.
func regressions(exp *expdb.Experiment, opt Options) (*diff.Report, error) {
	var metrics []string
	if opt.Metric != "" {
		metrics = []string{opt.Metric}
	}
	res, err := diff.Diff(diff.Config{Metrics: metrics, Jobs: opt.Jobs},
		diff.Input{Label: "baseline", Exp: opt.Baseline},
		diff.Input{Label: "current", Exp: exp})
	if err != nil {
		return nil, fmt.Errorf("report: baseline diff: %w", err)
	}
	rep, err := res.Report(diff.ReportOptions{Metric: opt.Metric, Top: opt.Top})
	if err != nil {
		return nil, fmt.Errorf("report: baseline diff: %w", err)
	}
	return rep, nil
}

// JSON renders the report as stable indented JSON (struct field order,
// no maps, trailing newline).
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
