package report

import (
	"fmt"
	"strings"
)

// Markdown renders the report for humans. The output is a pure function
// of the report value, so markdown bytes are as stable as the JSON.
func (r *Report) Markdown() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# Performance report: %s\n\n", r.Program)
	fmt.Fprintf(&b, "%d ranks, %d scopes, %d metric columns\n", r.Ranks, r.Scopes, len(r.Metrics))
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}

	if len(r.HotPaths) > 0 {
		b.WriteString("\n## Hot paths\n")
		for _, hp := range r.HotPaths {
			fmt.Fprintf(&b, "\n### %s — %s (total %.6g)\n\n", hp.Root, hp.Metric, hp.Total)
			for i, s := range hp.Steps {
				fmt.Fprintf(&b, "%s- %s `%s` %.6g (%.0f%%)\n",
					strings.Repeat("  ", i), s.Label, s.Kind, s.Incl, 100*s.Fraction)
			}
		}
	}

	if len(r.Waste) > 0 {
		b.WriteString("\n## Waste and parallel efficiency\n")
		for _, wm := range r.Waste {
			fmt.Fprintf(&b, "\n### %s\n\n", wm.Metric)
			fmt.Fprintf(&b, "per-rank mean %.6g, max %.6g → efficiency %.3f, total waste %.6g\n\n",
				wm.TotalMean, wm.TotalMax, wm.Efficiency, wm.TotalWaste)
			if len(wm.TopScopes) > 0 {
				b.WriteString("| scope | waste | factor | mean | max |\n")
				b.WriteString("|---|---|---|---|---|\n")
				for _, s := range wm.TopScopes {
					fmt.Fprintf(&b, "| %s | %.6g | %.3f | %.6g | %.6g |\n",
						strings.Join(s.Path, " > "), s.Waste, s.Factor, s.Mean, s.Max)
				}
			}
		}
	}

	if len(r.Imbalance) > 0 {
		b.WriteString("\n## Load imbalance\n")
		for _, im := range r.Imbalance {
			fmt.Fprintf(&b, "\n### %s\n\n", im.Metric)
			fmt.Fprintf(&b, "%d significant frames, imbalance factor mean %.3f, worst %.3f\n\n",
				im.Frames, im.MeanFactor, im.MaxFactor)
			if len(im.Histogram) > 0 {
				maxCount := 0
				for _, bin := range im.Histogram {
					if bin.Count > maxCount {
						maxCount = bin.Count
					}
				}
				for _, bin := range im.Histogram {
					bar := ""
					if maxCount > 0 {
						bar = strings.Repeat("#", bin.Count*30/maxCount)
					}
					fmt.Fprintf(&b, "    [%.3f, %.3f) %-30s %d\n", bin.Lo, bin.Hi, bar, bin.Count)
				}
				b.WriteString("\n")
			}
			if len(im.Worst) > 0 {
				b.WriteString("| scope | factor | mean | max |\n")
				b.WriteString("|---|---|---|---|\n")
				for _, s := range im.Worst {
					fmt.Fprintf(&b, "| %s | %.3f | %.6g | %.6g |\n",
						strings.Join(s.Path, " > "), s.Factor, s.Mean, s.Max)
				}
			}
		}
	}

	if reg := r.Regressions; reg != nil {
		fmt.Fprintf(&b, "\n## Regressions vs %s\n\n", reg.BaseLabel)
		fmt.Fprintf(&b, "%s: total %.6g → %.6g (Δ %.6g, mode %s)\n",
			reg.Metric, reg.TotalBase, reg.Total, reg.TotalDelta, reg.Mode)
		if len(reg.Regressions) > 0 {
			b.WriteString("\n**Regressed**\n\n| scope | base | value | Δ | ratio |\n|---|---|---|---|---|\n")
			for _, e := range reg.Regressions {
				fmt.Fprintf(&b, "| %s | %.6g | %.6g | %+.6g | %.3f |\n",
					strings.Join(e.Path, " > "), e.Base, e.Value, e.Delta, e.Ratio)
			}
		}
		if len(reg.Improvements) > 0 {
			b.WriteString("\n**Improved**\n\n| scope | base | value | Δ | ratio |\n|---|---|---|---|---|\n")
			for _, e := range reg.Improvements {
				fmt.Fprintf(&b, "| %s | %.6g | %.6g | %+.6g | %.3f |\n",
					strings.Join(e.Path, " > "), e.Base, e.Value, e.Delta, e.Ratio)
			}
		}
	}
	return []byte(b.String())
}
