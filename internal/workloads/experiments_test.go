package workloads

// Shape tests for the paper's case-study figures (the per-figure experiment
// index lives in DESIGN.md; paper-vs-measured values in EXPERIMENTS.md).
// Absolute values come from the synthetic cost model; what these tests pin
// down is the *shape* each figure demonstrates: who dominates, by roughly
// what factor, and where hot paths end.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/imbalance"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/structfile"
)

// runSeq runs a sequential workload through the full pipeline.
func runSeq(t testing.TB, spec Spec) *core.Tree {
	t.Helper()
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New(spec.Name, 0, 0, sampler.DefaultEvents(spec.Period))
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sim.New(im, sim.Config{Observer: s})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	tree, err := correlate.Correlate(doc, s.Profile())
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// runMPI runs an SPMD workload and returns the structure document, the raw
// profiles and the merged result.
func runMPI(t testing.TB, spec Spec, ranks int) (*structfile.Doc, []*profile.Profile, *merge.Result) {
	t.Helper()
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{
		NRanks: ranks,
		Params: spec.Params,
		Events: sampler.DefaultEvents(spec.Period),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	return doc, profs, res
}

func shareOf(t *core.Tree, n *core.Node, col int) float64 {
	if n == nil {
		return 0
	}
	tot := t.Total(col)
	if tot == 0 {
		return 0
	}
	return n.Incl.Get(col) / tot
}

func col(t testing.TB, tree *core.Tree, name string) int {
	d := tree.Reg.ByName(name)
	if d == nil {
		t.Fatalf("metric %q missing", name)
	}
	return d.ID
}

func TestWorkloadRegistry(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("workloads = %v", names)
	}
	for _, n := range names {
		spec, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Program == nil || spec.Name != n {
			t.Fatalf("bad spec for %q", n)
		}
		if err := spec.Program.Validate(); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestToyPipeline(t *testing.T) {
	tree := runSeq(t, Toy())
	// Recursion: two nested instances of g under m -> g is impossible
	// (recursion happens via f? no: g recurses on itself).
	if tree.FindPath("m", "g", "g") == nil && tree.FindPath("m", "f", "g", "g") == nil {
		t.Fatal("no recursive g chain found")
	}
	// h's loop nest appears.
	if tree.FindFirst("loop at file2.c: 8") == nil {
		t.Fatal("h's outer loop missing")
	}
}

// E-FIG3: the S3D Calling Context View hot path (Figure 3).
func TestFig3S3DHotPath(t *testing.T) {
	tree := runSeq(t, S3D())
	cyc := col(t, tree, "CYCLES")

	path := core.HotPath(tree.Root, cyc, 0.5)
	var labels []string
	for _, n := range path {
		labels = append(labels, n.Label())
	}
	joined := strings.Join(labels, " | ")
	for _, want := range []string{"main", "solve_driver", "integrate",
		"loop at integrate_erk.f90: 82", "rhsf", "chemkin_m_reaction_rate_"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("hot path %q misses %q", joined, want)
		}
	}

	// The reaction-rate routine holds ~41.4% of inclusive cycles.
	react := tree.FindFirst("chemkin_m_reaction_rate_")
	if s := shareOf(tree, react, cyc); s < 0.38 || s > 0.47 {
		t.Fatalf("reaction rate share = %.3f, want ~0.414", s)
	}

	// The loop at integrate_erk.f90:82: ~97.9% inclusive, ~0.0%
	// exclusive.
	loop := tree.FindFirst("loop at integrate_erk.f90: 82")
	if loop == nil {
		t.Fatal("RK loop missing")
	}
	if s := shareOf(tree, loop, cyc); s < 0.95 {
		t.Fatalf("RK loop inclusive share = %.3f, want ~0.979", s)
	}
	if e := loop.Excl.Get(cyc) / tree.Total(cyc); e > 0.005 {
		t.Fatalf("RK loop exclusive share = %.4f, want ~0", e)
	}
}

// E-FIG6: derived floating-point waste and relative efficiency (Figure 6).
func TestFig6DerivedWaste(t *testing.T) {
	tree := runSeq(t, S3D())
	cyc := col(t, tree, "CYCLES")
	flops := col(t, tree, "FLOPS")

	waste, err := tree.Reg.AddDerived("fpwaste", "$0*4 - $1")
	if err != nil {
		t.Fatal(err)
	}
	releff, err := tree.Reg.AddDerived("releff", "$1 / ($0*4)")
	if err != nil {
		t.Fatal(err)
	}
	_ = cyc
	_ = flops
	if err := tree.ApplyDerivedTree(); err != nil {
		t.Fatal(err)
	}

	// Flatten the Flat View to loop level and rank by waste, as the
	// paper does in Figure 6.
	fv := core.BuildFlatView(tree)
	for _, lm := range fv.Roots {
		if err := core.ApplyDerived(tree.Reg, lm); err != nil {
			t.Fatal(err)
		}
	}
	scopes := core.FlattenN(fv.Roots, 3) // modules -> files -> procs -> their children
	var loops []*core.Node
	for _, s := range scopes {
		if s.Kind == core.KindLoop {
			loops = append(loops, s)
		}
	}
	if len(loops) < 5 {
		t.Fatalf("only %d loops in flattened view", len(loops))
	}
	// Rank by *exclusive* waste: outer control loops hold their cost in
	// callees, so exclusive ranking surfaces the leaf compute loops the
	// way Figure 6 does.
	core.SortScopes(loops, core.SortSpec{MetricID: waste.ID, Exclusive: true})

	top := loops[0]
	if top.Label() != "loop at transport_m.f90: 310" {
		var lbls []string
		for _, l := range loops {
			lbls = append(lbls, l.Label())
		}
		t.Fatalf("top waste loop = %q, want flux diffusion; ranking: %v", top.Label(), lbls)
	}
	// Its relative efficiency is ~6%.
	if e := top.Excl.Get(releff.ID); e < 0.04 || e > 0.09 {
		t.Fatalf("flux loop efficiency = %.3f, want ~0.06", e)
	}
	// Its share of total waste is ~13.5% in the paper; our calibration
	// gives ~16%.
	totalWaste := tree.Root.Incl.Get(waste.ID)
	if s := top.Excl.Get(waste.ID) / totalWaste; s < 0.10 || s > 0.25 {
		t.Fatalf("flux loop waste share = %.3f, want ~0.135", s)
	}
	// The exponential's loop runs at ~39%: "fairly tightly tuned".
	var expLoop *core.Node
	for _, l := range loops {
		if l.File.String() == "exp_avx.c" {
			expLoop = l
		}
	}
	if expLoop == nil {
		t.Fatal("exp loop missing from flattened view")
	}
	if e := expLoop.Excl.Get(releff.ID); e < 0.33 || e > 0.45 {
		t.Fatalf("exp loop efficiency = %.3f, want ~0.39", e)
	}
}

// E-FIG4: the MOAB Callers View for the compiler's memset (Figure 4).
func TestFig4MemsetCallers(t *testing.T) {
	tree := runSeq(t, MOAB())
	l1 := col(t, tree, "L1_DCM")

	cv := core.BuildCallersView(tree)
	cv.ExpandAll()
	var memset *core.Node
	for _, r := range cv.Roots {
		if r.Name.String() == "_intel_fast_memset.A" {
			memset = r
		}
	}
	if memset == nil {
		t.Fatal("memset root row missing from Callers View")
	}
	if !memset.NoSource {
		t.Fatal("memset should be binary-only")
	}
	// ~9.7% of total L1 misses.
	if s := memset.Incl.Get(l1) / tree.Total(l1); s < 0.075 || s > 0.12 {
		t.Fatalf("memset L1 share = %.3f, want ~0.097", s)
	}
	// Called from exactly two contexts; Sequence_data::create dominates
	// (9.6% of the 9.7%).
	if len(memset.Children) != 2 {
		var lbls []string
		for _, c := range memset.Children {
			lbls = append(lbls, c.Label())
		}
		t.Fatalf("memset callers = %v, want 2", lbls)
	}
	kids := append([]*core.Node(nil), memset.Children...)
	core.SortScopes(kids, core.SortSpec{MetricID: l1})
	if kids[0].Name.String() != "Sequence_data::create" {
		t.Fatalf("dominant caller = %q", kids[0].Name)
	}
	if frac := kids[0].Incl.Get(l1) / memset.Incl.Get(l1); frac < 0.95 {
		t.Fatalf("create's fraction of memset misses = %.3f, want ~0.99", frac)
	}
}

// E-FIG5: the MOAB Flat View with attribution through inlining (Figure 5).
func TestFig5FlatInlining(t *testing.T) {
	tree := runSeq(t, MOAB())
	cyc := col(t, tree, "CYCLES")
	l1 := col(t, tree, "L1_DCM")

	fv := core.BuildFlatView(tree)
	var gc *core.Node
	for _, lm := range fv.Roots {
		core.Walk(lm, func(n *core.Node) bool {
			if n.Kind == core.KindProc && n.Name.String() == "MBCore::get_coords" {
				gc = n
				return false
			}
			return true
		})
	}
	if gc == nil {
		t.Fatal("get_coords missing from Flat View")
	}
	// All of the routine's cycles are in its loop, which holds ~18.9%
	// of the execution total.
	var loop *core.Node
	for _, c := range gc.Children {
		if c.Kind == core.KindLoop {
			loop = c
		}
	}
	if loop == nil {
		t.Fatal("get_coords loop missing")
	}
	if s := loop.Incl.Get(cyc) / tree.Total(cyc); s < 0.16 || s > 0.23 {
		t.Fatalf("get_coords loop share = %.3f, want ~0.189", s)
	}
	if frac := loop.Incl.Get(cyc) / gc.Incl.Get(cyc); frac < 0.99 {
		t.Fatalf("loop fraction of routine = %.3f, want ~1", frac)
	}

	// The hierarchy below: inlined find > inlined loop > inlined
	// compare.
	var find *core.Node
	for _, c := range loop.Children {
		if c.Kind == core.KindAlien && c.Name.String() == "SequenceManager::find" {
			find = c
		}
	}
	if find == nil {
		t.Fatal("inlined find missing under the loop")
	}
	var rbLoop *core.Node
	for _, c := range find.Children {
		if c.Kind == core.KindLoop {
			rbLoop = c
		}
	}
	if rbLoop == nil {
		t.Fatal("inlined search loop missing under find")
	}
	var compare *core.Node
	for _, c := range rbLoop.Children {
		if c.Kind == core.KindAlien && c.Name.String() == "SequenceCompare" {
			compare = c
		}
	}
	if compare == nil {
		t.Fatal("inlined compare missing under the search loop")
	}
	// The comparison operator accounts for ~19.8% of total L1 misses.
	if s := compare.Incl.Get(l1) / tree.Total(l1); s < 0.17 || s > 0.24 {
		t.Fatalf("compare L1 share = %.3f, want ~0.198", s)
	}
}

// E-FIG7: PFLOTRAN load imbalance (Figure 7).
func TestFig7LoadImbalance(t *testing.T) {
	spec := PFLOTRAN()
	const ranks = 16
	doc, profs, res := runMPI(t, spec, ranks)

	idle := col(t, res.Tree, "IDLE")
	cyc := col(t, res.Tree, "CYCLES")

	// Hot-path analysis over total idleness drills into the main
	// iteration loop at timestepper.F90:384.
	hp := core.HotPath(res.Tree.Root, idle, 0.5)
	var joined []string
	for _, n := range hp {
		joined = append(joined, n.Label())
	}
	path := strings.Join(joined, " | ")
	if !strings.Contains(path, "loop at timestepper.F90: 384") {
		t.Fatalf("idleness hot path misses the time-stepping loop: %q", path)
	}
	if !strings.Contains(path, "mpi_wait") {
		t.Fatalf("idleness hot path misses mpi_wait: %q", path)
	}

	// Per-rank inclusive cycles at the loop scatter unevenly.
	rep, err := imbalance.Analyze(doc, profs,
		[]string{"main", "stepper_run", "loop at timestepper.F90: 384"}, "CYCLES", 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.N != ranks {
		t.Fatalf("series length = %d", rep.Stats.N)
	}
	if rep.Stats.Min <= 0 {
		t.Fatal("some rank has no cycles at the loop")
	}
	// With barriers inside the loop every rank's wall time there is
	// equal; the *work* distribution is what scatters. Check the
	// flow_solve work instead.
	work, err := imbalance.Analyze(doc, profs,
		[]string{"main", "stepper_run", "loop at timestepper.F90: 384", "flow_solve"}, "CYCLES", 8)
	if err != nil {
		t.Fatal(err)
	}
	if f := work.ImbalanceFactor(); f < 0.1 {
		t.Fatalf("flow_solve imbalance factor = %.3f, want > 0.1", f)
	}
	if work.Stats.Max < 1.3*work.Stats.Min {
		t.Fatalf("work spread too small: min=%g max=%g", work.Stats.Min, work.Stats.Max)
	}

	// The merged summary stats expose the same imbalance without
	// per-rank columns (Section VII).
	fs := res.Tree.FindPath("main", "stepper_run", "loop at timestepper.F90: 384", "flow_solve")
	if fs == nil {
		t.Fatal("flow_solve missing from merged tree")
	}
	if f := res.ImbalanceFactor(fs, cyc); f < 0.1 {
		t.Fatalf("merged imbalance factor = %.3f", f)
	}

	// Render the report (Figure 7's three graphs) and sanity-check it.
	var b strings.Builder
	if err := work.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"per-rank (scatter):", "sorted:", "histogram:", "imbalance="} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// E-OVH: sampling overhead stays small at realistic sampling rates
// (Section I: "accurate and precise call path profiles for only a few
// percent overhead"). Wall-clock comparison lives in the benchmarks; here
// we check the structural driver of overhead: samples are rare relative to
// interpreted instructions.
func TestSamplingOverheadFewPercent(t *testing.T) {
	spec := S3D()
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New(spec.Name, 0, 0, sampler.DefaultEvents(50_000))
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sim.New(im, sim.Config{Observer: s})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Samples() == 0 {
		t.Fatal("no samples at all")
	}
	ratio := float64(s.Samples()) / float64(vm.Steps)
	if ratio > 0.05 {
		t.Fatalf("samples per interpreted instruction = %.4f, want < 0.05", ratio)
	}
}
