package workloads

// TestSectionVIBAnalysisWorkflow scripts the analysis methodology of the
// paper's Section VI-B on the MOAB profile:
//
//	"Often analysis begins with the Calling Context View to see if there
//	is any calling context that particularly dominates ... If not, the
//	user typically moves to the Callers View to understand how much cost
//	is incurred by each procedure at the top of the rank ordered list ...
//	Once the user knows what procedures and contexts are costly, the user
//	can move to the Flat View to understand the costs associated with a
//	procedure along with its loops and inlined code."

import (
	"testing"

	"repro/internal/core"
	"repro/internal/viewer"
)

func TestSectionVIBAnalysisWorkflow(t *testing.T) {
	tree := runSeq(t, MOAB())
	l1 := col(t, tree, "L1_DCM")
	s := viewer.New(tree, MOAB().Program)

	// Step 1: Calling Context View, hot path on L1 misses. For MOAB no
	// single calling context dominates the misses: the benchmark loop's
	// three phases split them, so the path stalls at that broad loop
	// (none of its children reaches the 50% threshold) instead of
	// drilling to a leaf — the signal to move to the Callers View.
	path := s.HotPath(l1)
	end := path[len(path)-1]
	if end.Kind == core.KindStmt {
		t.Fatalf("CCV hot path unexpectedly decisive: drilled to %q", end.Label())
	}
	for _, c := range end.Children {
		if c.Incl.Get(l1) >= 0.5*end.Incl.Get(l1) {
			t.Fatalf("endpoint %q has a dominating child %q — path should have continued",
				end.Label(), c.Label())
		}
	}

	// Step 2: the Callers View's rank-ordered top. Rank procedures by
	// exclusive L1 misses: the inlined compare's host and the memset
	// replacement surface near the top even though neither dominates any
	// single calling context.
	s.SwitchView(viewer.ViewCallers)
	rows := s.VisibleRows()
	if len(rows) < 4 {
		t.Fatalf("callers rows = %d", len(rows))
	}
	s.SetSort(core.SortSpec{MetricID: l1, Exclusive: true})
	rows = s.VisibleRows()
	top3 := map[string]bool{}
	for _, r := range rows[:3] {
		top3[r.Node.Name.String()] = true
	}
	if !top3["MBCore::get_coords"] {
		var names []string
		for _, r := range rows[:5] {
			names = append(names, r.Node.Name.String())
		}
		t.Fatalf("get_coords not in callers top-3 by exclusive L1: %v", names)
	}

	// Investigate memset's contexts from the Callers View: two callers,
	// one dominant (Figure 4's reading).
	var memset *core.Node
	for _, r := range rows {
		if r.Node.Name.String() == "_intel_fast_memset.A" {
			memset = r.Node
		}
	}
	if memset == nil {
		t.Fatal("memset missing from callers view")
	}
	s.Expand(memset)
	if len(memset.Children) != 2 {
		t.Fatalf("memset contexts = %d", len(memset.Children))
	}

	// Step 3: the Flat View for the costly procedure: its loop and the
	// inlined hierarchy below it (Figure 5's reading).
	s.SwitchView(viewer.ViewFlat)
	var gc *core.Node
	for _, r := range s.VisibleRows() {
		core.Walk(r.Node, func(n *core.Node) bool {
			if n.Kind == core.KindProc && n.Name.String() == "MBCore::get_coords" {
				gc = n
				return false
			}
			return true
		})
	}
	if gc == nil {
		t.Fatal("get_coords missing from flat view")
	}
	s.Select(gc)
	// Hot path within the flat subtree drills through loop -> inlined
	// find -> inlined loop -> inlined compare.
	path = s.HotPath(l1)
	kinds := map[core.Kind]bool{}
	names := map[string]bool{}
	for _, n := range path {
		kinds[n.Kind] = true
		names[n.Name.String()] = true
	}
	if !kinds[core.KindLoop] || !kinds[core.KindAlien] {
		t.Fatalf("flat drill-down misses loop/inline scopes: %v", pathLabels(path))
	}
	if !names["SequenceCompare"] {
		t.Fatalf("flat drill-down misses the inlined compare: %v", pathLabels(path))
	}
}

func pathLabels(ns []*core.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Label()
	}
	return out
}
