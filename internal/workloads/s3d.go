package workloads

import "repro/internal/prog"

// S3D models the turbulent combustion code of Figures 3 and 6. Calibrated
// shape targets (paper value in parentheses):
//
//   - the hot path from main descends through solve_driver and the
//     Runge-Kutta loop at integrate_erk.f90:82 into rhsf and ends at
//     chemkin_m_reaction_rate_, which holds ≈41% of inclusive cycles
//     (41.4%);
//   - the loop at integrate_erk.f90:82 has ≈98% inclusive cycles (97.9%)
//     but ≈0% exclusive (0.0%): all its work is in the rhsf it calls;
//   - the flux-diffusion loop in computespeciesdiffflux streams memory at
//     ≈6% floating-point efficiency (6%) and tops the FP-waste ranking
//     with ≈14% of total waste (13.5%);
//   - the math library's exponential loop runs at ≈39% efficiency (39%),
//     "fairly tightly tuned".
//
// Peak is modeled as 4 FLOPs/cycle, so a Work item with cycles=c and
// flops=4*c*e runs at efficiency e.
func S3D() Spec {
	// eff returns a cost bundle of c cycles at FP efficiency e with an
	// L1 miss rate typical for the efficiency class (memory-bound code
	// misses more).
	eff := func(c uint64, e float64) prog.Cost {
		return prog.Cost{
			Cycles: c,
			FLOPs:  uint64(4 * float64(c) * e),
			L1Miss: uint64(float64(c) * (0.25 - 0.2*e)),
			L2Miss: uint64(float64(c) * (0.05 - 0.04*e)),
			Instr:  c,
		}
	}

	p := prog.NewBuilder("s3d").
		Module("s3d.x").
		//
		// Chemistry: the reaction-rate bottleneck of Figure 3. The
		// Arrhenius evaluations call the math library's exponential.
		File("chemkin_m.f90").
		Proc("chemkin_m_reaction_rate_", 200,
			prog.L(210, 50,
				prog.Wc(212, eff(1600, 0.75)),
				prog.C(214, "exp"))).
		//
		// Transport: the memory-bound flux-diffusion loop of Figure 6.
		File("transport_m.f90").
		Proc("computespeciesdiffflux", 300,
			prog.L(310, 64,
				prog.Wc(312, eff(375, 0.06)))).
		//
		// Thermochemistry.
		File("thermchem_m.f90").
		Proc("calc_temp", 400,
			prog.L(410, 24,
				prog.Wc(412, eff(1040, 0.35)))).
		//
		// Right-hand-side assembly: derivative/filter loops plus the
		// physics calls. Sized so the reaction rate holds just over
		// half of rhsf — the hot path's t=50% rule must carry through
		// it (Figure 3).
		File("rhsf.f90").
		Proc("rhsf", 100,
			prog.W(101, 50),
			prog.L(110, 24, prog.Wc(111, eff(1000, 0.28))),
			prog.L(120, 24, prog.Wc(121, eff(1000, 0.28))),
			prog.C(140, "chemkin_m_reaction_rate_"),
			prog.C(150, "computespeciesdiffflux"),
			prog.C(160, "calc_temp")).
		//
		// Math library: exp at 39% efficiency, tightly tuned.
		File("exp_avx.c").
		Proc("exp", 10,
			prog.L(12, 8, prog.Wc(13, eff(66, 0.39)))).
		//
		// Time integration: the Runge-Kutta stage loop of Figure 3.
		// Besides rhsf, each stage updates the state vectors and
		// applies boundary conditions, keeping rhsf at ~78% of the
		// total so the hot path threshold chains down to the chemistry.
		File("integrate_erk.f90").
		Proc("integrate", 70,
			prog.W(75, 30),
			prog.L(82, 6,
				prog.C(83, "rhsf"),
				prog.C(84, "computestagevalues"),
				prog.C(85, "apply_bc"))).
		Proc("computestagevalues", 120,
			prog.L(122, 15, prog.Wc(123, eff(3000, 0.55)))).
		Proc("apply_bc", 140,
			prog.L(142, 8, prog.Wc(143, eff(1500, 0.20)))).
		//
		// Driver.
		File("solve_driver.f90").
		Proc("solve_driver", 50,
			prog.L(55, 5,
				prog.C(56, "integrate"),
				prog.C(58, "write_savefile"))).
		Proc("write_savefile", 90,
			prog.Wc(91, prog.Cost{Cycles: 3000, L1Miss: 600, Instr: 3000})).
		File("driver.f90").
		Proc("main", 10,
			prog.C(12, "init_field"),
			prog.C(14, "solve_driver")).
		Proc("init_field", 30,
			prog.L(32, 16, prog.Wc(33, eff(5000, 0.20)))).
		Entry("main").
		MustBuild()

	return Spec{
		Name:        "s3d",
		Description: "S3D turbulent combustion analogue (Figures 3 and 6)",
		Program:     p,
		Ranks:       1,
		Period:      1000,
	}
}
