package workloads

import "repro/internal/prog"

// PFLOTRAN models the subsurface flow and reactive transport code of the
// paper's load-imbalance study (Figure 7, Section VI-C). The test problem
// is a steady-state groundwater flow on a grid partitioned unevenly across
// ranks: each rank owns a deterministic pseudo-random cell count in
// [cells*3/4, cells*3/2], so per-rank work scatters like the top graph of
// Figure 7. Every time step ends in a barrier; fast ranks accumulate
// idleness inside mpi_wait under the main iteration loop at
// timestepper.F90:384 — the context the paper's hot-path analysis over
// total idleness drills down to.
//
// Parameters: "cells" (per-rank average cell count, default 600) and
// "species" (chemical species per cell, default 15 as in the paper).
func PFLOTRAN() Spec {
	p := prog.NewBuilder("pflotran").
		Module("pflotran.exe").
		File("flow.F90").
		Proc("flow_solve", 100,
			prog.Lx(105, rankCells{},
				prog.Wc(106, prog.Cost{Cycles: 400, FLOPs: 480, L1Miss: 40, Instr: 400}))).
		File("transport.F90").
		Proc("transport_solve", 200,
			prog.Lx(205, rankCellSpecies{},
				prog.Wc(206, prog.Cost{Cycles: 60, FLOPs: 48, L1Miss: 8, Instr: 60}))).
		File("reaction.F90").
		Proc("reduce_residual", 300,
			// A global reduction whose cost grows with the number of
			// ranks (a linear all-gather model): the weak-scaling
			// bottleneck the Section VI-A analysis localizes.
			prog.Lx(305, prog.ScaledInt{X: prog.NRanksInt{}, Num: 8, Den: 1},
				prog.Wc(306, prog.Cost{Cycles: 600, L1Miss: 60, Instr: 600}))).
		File("timestepper.F90").
		Proc("stepper_run", 380,
			prog.L(384, 12,
				prog.C(386, "flow_solve"),
				prog.C(388, "transport_solve"),
				prog.C(389, "reduce_residual"),
				prog.Sync(390))).
		File("pflotran.F90").
		Proc("main", 10,
			prog.C(12, "init_simulation"),
			prog.C(14, "stepper_run")).
		Proc("init_simulation", 40,
			prog.L(42, 8, prog.W(43, 2000)),
			prog.Sync(45)).
		Entry("main").
		MustBuild()

	return Spec{
		Name:        "pflotran",
		Description: "PFLOTRAN subsurface-flow analogue: SPMD with uneven domain partition (Figure 7)",
		Program:     p,
		Ranks:       32,
		Params:      map[string]int64{"cells": 600, "species": 15},
		Period:      1000,
	}
}

// rankCells evaluates each rank's cell count: a deterministic
// pseudo-random value in [0.75, 1.5] × the "cells" parameter.
type rankCells struct{}

// Eval implements prog.IntExpr.
func (rankCells) Eval(p *prog.Params) int64 {
	base := p.Value("cells")
	if base == 0 {
		base = 600
	}
	// quarters in [3, 6] -> cells in [3/4, 3/2] of base
	q := prog.HashInt{Seed: 7, Lo: 3, Hi: 6}.Eval(p)
	return base * q / 4
}

// rankCellSpecies is cells × species for the transport phase.
type rankCellSpecies struct{}

// Eval implements prog.IntExpr.
func (rankCellSpecies) Eval(p *prog.Params) int64 {
	species := p.Value("species")
	if species == 0 {
		species = 15
	}
	return rankCells{}.Eval(p) * species
}
