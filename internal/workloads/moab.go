package workloads

import (
	"repro/internal/lower"
	"repro/internal/prog"
)

// MOAB models the mbperf_IMesh mesh benchmark of Figures 4 and 5.
// Calibrated shape targets (paper value in parentheses):
//
//   - MBCore::get_coords spends all of its cycles in one loop that holds
//     ≈19% of the execution's total cycles (18.9%), and within the loop
//     the cost flows through a hierarchy of inlined code: the sequence-
//     manager find operation, the red-black-tree search loop inlined into
//     it, and the SequenceCompare operator inlined into that loop;
//   - the inlined comparison operator accounts for ≈20% of total L1 data
//     cache misses (19.8%);
//   - _intel_fast_memset.A (binary-only, the compiler's memset
//     replacement) is called from two contexts and accounts for ≈10% of
//     total L1 misses (9.7%), almost all (9.6%) from the call by
//     Sequence_data::create.
func MOAB() Spec {
	p := prog.NewBuilder("mbperf").
		Module("mbperf_iMesh").
		//
		// The compiler runtime's memset replacement: binary only.
		File("").
		RuntimeProc("_intel_fast_memset.A",
			prog.L(1, 100, prog.Wc(1, prog.Cost{Cycles: 80, L1Miss: 9, Instr: 80}))).
		//
		// The sequence manager with its inlinable search machinery.
		File("SequenceManager.hpp").
		InlineProc("SequenceCompare", 40,
			// Pointer-chasing comparison: very L1-heavy.
			prog.Wc(42, prog.Cost{Cycles: 90, FLOPs: 4, L1Miss: 18, L2Miss: 2, Instr: 90})).
		InlineProc("SequenceManager::find", 20,
			// Red-black-tree descent, inlined into callers; the loop
			// itself is recovered from branch structure.
			prog.L(24, 10,
				prog.C(26, "SequenceCompare"),
				prog.W(27, 9))).
		//
		// The measured routine of Figure 5.
		File("MBCore.cpp").
		Proc("MBCore::get_coords", 680,
			prog.L(686, 100,
				prog.C(688, "SequenceManager::find"),
				prog.Wc(690, prog.Cost{Cycles: 700, FLOPs: 560, L1Miss: 40, Instr: 700}))).
		//
		// Initialization: the dominant memset caller of Figure 4.
		File("SequenceData.cpp").
		Proc("Sequence_data::create", 120,
			prog.W(122, 2000),
			prog.L(124, 96, prog.C(125, "_intel_fast_memset.A"))).
		File("TypeSequenceManager.cpp").
		Proc("TypeSequenceManager::init", 60,
			prog.W(61, 500),
			prog.C(63, "_intel_fast_memset.A")).
		//
		// The rest of the benchmark's work.
		File("TagServer.cpp").
		Proc("tag_get_data", 200,
			prog.L(205, 64, prog.Wc(206, prog.Cost{Cycles: 5000, FLOPs: 1000, L1Miss: 500, L2Miss: 50, Instr: 5000}))).
		File("AEntityFactory.cpp").
		Proc("build_connectivity", 300,
			prog.L(304, 50, prog.Wc(305, prog.Cost{Cycles: 6000, FLOPs: 600, L1Miss: 500, L2Miss: 60, Instr: 6000}))).
		//
		// Driver.
		File("mbperf.cc").
		Proc("main", 10,
			prog.C(12, "Sequence_data::create"),
			prog.C(13, "TypeSequenceManager::init"),
			prog.L(15, 10,
				prog.C(16, "MBCore::get_coords"),
				prog.C(17, "tag_get_data"),
				prog.C(18, "build_connectivity")),
			prog.Wc(20, prog.Cost{Cycles: 20000, FLOPs: 2000, L1Miss: 2000, Instr: 20000})).
		Entry("main").
		MustBuild()

	return Spec{
		Name:        "moab",
		Description: "MOAB mbperf mesh benchmark analogue with deep inlining (Figures 4 and 5)",
		Program:     p,
		LowerOpts:   lower.Options{Inline: true},
		Ranks:       1,
		Period:      500,
	}
}
