// Package workloads defines the synthetic applications that stand in for
// the paper's case studies. Each workload is a prog.Program whose call,
// loop and inlining structure — and cost calibration — mirror the shape of
// the corresponding figure in the paper:
//
//	toy       Figure 1/2's two-file example with recursion
//	s3d       the S3D turbulent combustion code (Figures 3 and 6)
//	moab      the MOAB mesh benchmark mbperf (Figures 4 and 5)
//	pflotran  the PFLOTRAN subsurface-flow code on many ranks (Figure 7)
//
// The substitution rationale is in DESIGN.md: the presentation algorithms
// consume call path profiles plus static structure, both of which these
// programs produce through the full measurement pipeline (lowering,
// structure recovery, sampled execution, correlation).
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/lower"
	"repro/internal/prog"
)

// Spec bundles a workload program with how it should be built and run.
type Spec struct {
	// Name is the registry key.
	Name string
	// Description summarizes what the workload models.
	Description string
	// Program is the synthetic application.
	Program *prog.Program
	// LowerOpts configure compilation (e.g. inlining for moab).
	LowerOpts lower.Options
	// Ranks is the default SPMD width (1 = sequential).
	Ranks int
	// Params are default runtime parameters.
	Params map[string]int64
	// Period is the default base sampling period in cycles.
	Period uint64
}

// builders maps workload names to constructors; construction is cheap, so
// specs are built on demand.
var builders = map[string]func() Spec{
	"toy":      Toy,
	"s3d":      S3D,
	"moab":     MOAB,
	"pflotran": PFLOTRAN,
}

// Names lists available workloads in sorted order.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName builds the named workload.
func ByName(name string) (Spec, error) {
	b, ok := builders[name]
	if !ok {
		return Spec{}, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return b(), nil
}

// Toy is the paper's Figure 1 program: two files, a recursive procedure g
// and a doubly nested loop in h. Useful as a quickstart and for exercising
// recursion through the full pipeline. (The exact Figure 2 numbers are
// reproduced by the hand-built core.Fig1Tree; this executable version has
// sampled, not hand-placed, costs.)
func Toy() Spec {
	p := prog.NewBuilder("toy").
		Module("toy.exe").
		File("file1.c").
		Proc("f", 1,
			prog.W(2, 500), // f's own work on its call line
			prog.C(2, "g")).
		Proc("m", 6,
			prog.C(7, "f"),
			prog.C(8, "g")).
		File("file2.c").
		Proc("g", 2,
			prog.W(3, 400),
			prog.IfDepth(3, 2, prog.C(3, "g")),
			prog.C(4, "h")).
		Proc("h", 7,
			prog.L(8, 20,
				prog.L(9, 25,
					prog.W(9, 4)))).
		Entry("m").
		MustBuild()
	return Spec{
		Name:        "toy",
		Description: "Figure 1's two-file example: recursion in g, loop nest in h",
		Program:     p,
		Ranks:       1,
		Period:      100,
	}
}
