// Package lower compiles a prog.Program into an isa.Image, playing the role
// of an optimizing compiler producing the binary that the rest of the
// toolkit measures and analyzes.
//
// Loops are lowered to counter-register control flow (set / test / dec /
// back-edge jump) so that loop structure must be *recovered* by dominator
// analysis in internal/cfg, just as hpcstruct recovers loops from native
// object code. Procedures marked Inline are spliced into their callers with
// inline-provenance records, which is what makes the paper's "attribution
// through multiple levels of inlining" (Figure 5) a real recovered artifact
// rather than an input.
package lower

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Options configures lowering.
type Options struct {
	// Inline enables the inlining pass for procedures marked
	// prog.Proc.Inline.
	Inline bool
	// MaxInlineDepth bounds transitive inlining (default 4).
	MaxInlineDepth int
	// Base is the image load address (default 0x400000).
	Base uint64
}

func (o *Options) setDefaults() {
	if o.MaxInlineDepth == 0 {
		o.MaxInlineDepth = 4
	}
	if o.Base == 0 {
		o.Base = 0x400000
	}
}

// WaitProcName is the synthetic runtime procedure that absorbs barrier idle
// time; it appears in profiles exactly like MPI_Wait does in the paper's
// PFLOTRAN study.
const WaitProcName = "mpi_wait"

// Lower compiles p. The program must validate.
func Lower(p *prog.Program, opt Options) (*isa.Image, error) {
	opt.setDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lw := &lowerer{
		opt: opt,
		im: &isa.Image{
			Name: p.Name,
			Base: opt.Base,
		},
		procIdx: map[string]int32{},
		procDef: map[string]*prog.Proc{},
		fileIdx: map[*prog.File]int32{},
	}
	lw.collectSymbols(p)
	if lw.needsWait && lw.im.ProcByName(WaitProcName) < 0 {
		// Synthesize the barrier-wait runtime procedure.
		lw.declareProc(&prog.Proc{Name: WaitProcName, NoSource: true}, isa.NoFile)
	}
	for _, sym := range lw.procOrder {
		if err := lw.emitProc(sym); err != nil {
			return nil, err
		}
	}
	lw.im.EntryProc = lw.procIdx[p.Entry]
	if err := lw.im.Validate(); err != nil {
		return nil, fmt.Errorf("lower: produced invalid image: %w", err)
	}
	return lw.im, nil
}

type lowerer struct {
	opt       Options
	im        *isa.Image
	procIdx   map[string]int32
	procDef   map[string]*prog.Proc
	fileIdx   map[*prog.File]int32
	procOrder []string
	needsWait bool
	barrierID int32
}

// emitCtx tracks the static context during body emission.
type emitCtx struct {
	file        int32    // file of the code being emitted
	inline      int32    // innermost inline node (isa.NoInline at top level)
	inlineStack []string // procedures on the inline path, for cycle detection
	loopDepth   int      // current loop nesting, indexes the register file
}

func (lw *lowerer) collectSymbols(p *prog.Program) {
	for mi, m := range p.Modules {
		lw.im.Modules = append(lw.im.Modules, m.Name)
		for _, f := range m.Files {
			fid := int32(len(lw.im.Files))
			lw.im.Files = append(lw.im.Files, isa.FileSym{Name: f.Name, Module: int32(mi)})
			lw.fileIdx[f] = fid
			for _, pr := range f.Procs {
				file := fid
				if pr.NoSource {
					file = isa.NoFile
				}
				lw.declareProc(pr, file)
				if containsBarrier(pr.Body) {
					lw.needsWait = true
				}
			}
		}
	}
}

func (lw *lowerer) declareProc(pr *prog.Proc, file int32) {
	lw.procIdx[pr.Name] = int32(len(lw.im.Procs))
	lw.im.Procs = append(lw.im.Procs, isa.ProcSym{
		Name: pr.Name,
		File: file,
		Line: int32(pr.Line),
	})
	lw.procDef[pr.Name] = pr
	lw.procOrder = append(lw.procOrder, pr.Name)
}

func containsBarrier(body []prog.Stmt) bool {
	for _, s := range body {
		switch s := s.(type) {
		case prog.Barrier:
			return true
		case prog.Loop:
			if containsBarrier(s.Body) {
				return true
			}
		case prog.If:
			if containsBarrier(s.Then) || containsBarrier(s.Else) {
				return true
			}
		}
	}
	return false
}

func (lw *lowerer) emitProc(name string) error {
	pr := lw.procDef[name]
	idx := lw.procIdx[name]
	sym := &lw.im.Procs[idx]
	sym.Start = int32(len(lw.im.Code))
	ctx := emitCtx{file: sym.File, inline: isa.NoInline}
	if name == WaitProcName && len(pr.Body) == 0 {
		// The synthetic wait procedure: a single barrier instruction.
		lw.emit(isa.Instr{Op: isa.OpBarrier, A: -1, File: isa.NoFile, Inline: isa.NoInline})
	} else if err := lw.emitBody(pr.Body, ctx); err != nil {
		return fmt.Errorf("lower: %s: %w", name, err)
	}
	lw.emit(isa.Instr{Op: isa.OpRet, File: ctx.file, Line: sym.Line, Inline: isa.NoInline})
	sym = &lw.im.Procs[idx] // re-take: Procs may have been appended to
	sym.End = int32(len(lw.im.Code))
	return nil
}

func (lw *lowerer) emit(in isa.Instr) int32 {
	lw.im.Code = append(lw.im.Code, in)
	return int32(len(lw.im.Code) - 1)
}

func (lw *lowerer) emitBody(body []prog.Stmt, ctx emitCtx) error {
	for _, s := range body {
		if err := lw.emitStmt(s, ctx); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) emitStmt(s prog.Stmt, ctx emitCtx) error {
	switch s := s.(type) {
	case prog.Work:
		lw.emit(isa.Instr{
			Op: isa.OpWork, Cost: s.Cost,
			File: ctx.file, Line: int32(s.Line), Inline: ctx.inline,
		})
		return nil

	case prog.Loop:
		return lw.emitLoop(s, ctx)

	case prog.Call:
		return lw.emitCall(s, ctx)

	case prog.If:
		return lw.emitIf(s, ctx)

	case prog.Barrier:
		// A barrier is a call to the synthetic wait procedure; idle time
		// accrues inside that callee's frame, giving profiles the
		// familiar "time in MPI_Wait under the sync point" shape.
		lw.barrierID++
		lw.emit(isa.Instr{
			Op: isa.OpCall, A: lw.procIdx[WaitProcName],
			File: ctx.file, Line: int32(s.Line), Inline: ctx.inline,
		})
		return nil
	}
	return fmt.Errorf("unknown statement type %T", s)
}

func (lw *lowerer) emitLoop(s prog.Loop, ctx emitCtx) error {
	if ctx.loopDepth >= isa.NumRegs {
		return fmt.Errorf("loop nesting exceeds %d at line %d (inlining may deepen nesting)", isa.NumRegs, s.Line)
	}
	reg := int32(ctx.loopDepth)
	exprID := int32(len(lw.im.Exprs))
	lw.im.Exprs = append(lw.im.Exprs, s.Trips)

	line := int32(s.Line)
	lw.emit(isa.Instr{Op: isa.OpSet, A: reg, B: exprID, File: ctx.file, Line: line, Inline: ctx.inline})
	head := lw.emit(isa.Instr{Op: isa.OpBrZ, A: reg, File: ctx.file, Line: line, Inline: ctx.inline})

	bodyCtx := ctx
	bodyCtx.loopDepth++
	if err := lw.emitBody(s.Body, bodyCtx); err != nil {
		return err
	}

	lw.emit(isa.Instr{Op: isa.OpDec, A: reg, File: ctx.file, Line: line, Inline: ctx.inline})
	lw.emit(isa.Instr{Op: isa.OpJump, Target: head, File: ctx.file, Line: line, Inline: ctx.inline})
	exit := int32(len(lw.im.Code))
	lw.im.Code[head].Target = exit
	return nil
}

func (lw *lowerer) emitCall(s prog.Call, ctx emitCtx) error {
	callee := lw.procDef[s.Callee]
	if lw.shouldInline(callee, ctx) {
		return lw.emitInlined(s, callee, ctx)
	}
	lw.emit(isa.Instr{
		Op: isa.OpCall, A: lw.procIdx[s.Callee],
		File: ctx.file, Line: int32(s.Line), Inline: ctx.inline,
	})
	return nil
}

func (lw *lowerer) shouldInline(callee *prog.Proc, ctx emitCtx) bool {
	if !lw.opt.Inline || !callee.Inline || callee.NoSource {
		return false
	}
	if len(ctx.inlineStack) >= lw.opt.MaxInlineDepth {
		return false
	}
	// Never inline along a cycle (direct or mutual recursion).
	for _, name := range ctx.inlineStack {
		if name == callee.Name {
			return false
		}
	}
	// Barriers must stay out-of-line so the wait frame is visible.
	return !containsBarrier(callee.Body)
}

func (lw *lowerer) emitInlined(call prog.Call, callee *prog.Proc, ctx emitCtx) error {
	calleeFile := lw.im.Procs[lw.procIdx[callee.Name]].File
	node := int32(len(lw.im.Inlines))
	lw.im.Inlines = append(lw.im.Inlines, isa.InlineNode{
		Parent:   ctx.inline,
		Proc:     callee.Name,
		File:     calleeFile,
		DeclLine: int32(callee.Line),
		CallFile: ctx.file,
		CallLine: int32(call.Line),
	})
	inCtx := ctx
	inCtx.file = calleeFile
	inCtx.inline = node
	inCtx.inlineStack = append(append([]string(nil), ctx.inlineStack...), callee.Name)
	return lw.emitBody(callee.Body, inCtx)
}

func (lw *lowerer) emitIf(s prog.If, ctx emitCtx) error {
	condID := int32(len(lw.im.Conds))
	lw.im.Conds = append(lw.im.Conds, s.Cond)
	line := int32(s.Line)

	br := lw.emit(isa.Instr{Op: isa.OpBrCond, A: condID, File: ctx.file, Line: line, Inline: ctx.inline})
	if err := lw.emitBody(s.Else, ctx); err != nil {
		return err
	}
	jmp := lw.emit(isa.Instr{Op: isa.OpJump, File: ctx.file, Line: line, Inline: ctx.inline})
	lw.im.Code[br].Target = int32(len(lw.im.Code)) // then-block entry
	if err := lw.emitBody(s.Then, ctx); err != nil {
		return err
	}
	lw.im.Code[jmp].Target = int32(len(lw.im.Code)) // join point
	return nil
}
