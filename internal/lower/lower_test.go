package lower

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

func buildLoopProg(t *testing.T) *prog.Program {
	t.Helper()
	return prog.NewBuilder("loops").
		File("a.c").
		Proc("main", 1,
			prog.L(2, 10,
				prog.L(3, 5,
					prog.W(4, 2)),
				prog.W(5, 1)),
		).
		Entry("main").
		MustBuild()
}

func TestLowerLoopShape(t *testing.T) {
	im, err := Lower(buildLoopProg(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Validate(); err != nil {
		t.Fatalf("image invalid: %v", err)
	}
	// Expected shape for the outer loop: set, brz, <inner loop>, work,
	// dec, jump, ret. Count opcode frequencies instead of exact layout.
	counts := map[isa.Op]int{}
	for _, in := range im.Code {
		counts[in.Op]++
	}
	if counts[isa.OpSet] != 2 || counts[isa.OpBrZ] != 2 || counts[isa.OpDec] != 2 || counts[isa.OpJump] != 2 {
		t.Fatalf("loop control counts wrong: %v", counts)
	}
	if counts[isa.OpWork] != 2 || counts[isa.OpRet] != 1 {
		t.Fatalf("body counts wrong: %v", counts)
	}
	// Back edges: each OpJump targets a preceding OpBrZ.
	for i, in := range im.Code {
		if in.Op == isa.OpJump {
			if in.Target >= int32(i) {
				t.Fatalf("jump at %d is not a back edge (target %d)", i, in.Target)
			}
			if im.Code[in.Target].Op != isa.OpBrZ {
				t.Fatalf("back edge target at %d is %v, want brz", in.Target, im.Code[in.Target].Op)
			}
		}
	}
	// Nested loops use distinct registers.
	var regs []int32
	for _, in := range im.Code {
		if in.Op == isa.OpSet {
			regs = append(regs, in.A)
		}
	}
	if len(regs) != 2 || regs[0] == regs[1] {
		t.Fatalf("loop registers = %v, want two distinct", regs)
	}
}

func TestLowerCallAndEntry(t *testing.T) {
	p := prog.NewBuilder("calls").
		File("a.c").
		Proc("helper", 10, prog.W(11, 3)).
		Proc("main", 1, prog.C(2, "helper")).
		Entry("main").
		MustBuild()
	im, err := Lower(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if im.Procs[im.EntryProc].Name != "main" {
		t.Fatalf("entry proc = %q", im.Procs[im.EntryProc].Name)
	}
	found := false
	for _, in := range im.Code {
		if in.Op == isa.OpCall {
			found = true
			if im.Procs[in.A].Name != "helper" {
				t.Fatalf("call target = %q", im.Procs[in.A].Name)
			}
			if in.Line != 2 {
				t.Fatalf("call line = %d, want 2", in.Line)
			}
		}
	}
	if !found {
		t.Fatal("no call emitted")
	}
}

func TestLowerIfShape(t *testing.T) {
	p := prog.NewBuilder("ifs").
		File("a.c").
		Proc("main", 1,
			prog.If{Line: 2, Cond: prog.ProbCond{P: 0.5},
				Then: []prog.Stmt{prog.W(3, 1)},
				Else: []prog.Stmt{prog.W(4, 2)}},
		).
		Entry("main").
		MustBuild()
	im, err := Lower(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Conds) != 1 {
		t.Fatalf("conds = %d, want 1", len(im.Conds))
	}
	// brcond(then), else-work, jump(end), then-work, ret
	ops := make([]isa.Op, len(im.Code))
	for i, in := range im.Code {
		ops[i] = in.Op
	}
	want := []isa.Op{isa.OpBrCond, isa.OpWork, isa.OpJump, isa.OpWork, isa.OpRet}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
	if im.Code[0].Target != 3 {
		t.Fatalf("brcond target = %d, want 3 (then block)", im.Code[0].Target)
	}
	if im.Code[2].Target != 4 {
		t.Fatalf("jump target = %d, want 4 (join)", im.Code[2].Target)
	}
}

func TestLowerInlining(t *testing.T) {
	p := prog.NewBuilder("inl").
		File("a.c").
		InlineProc("compare", 20, prog.W(21, 1)).
		InlineProc("find", 10,
			prog.L(11, 4, prog.C(12, "compare"))).
		Proc("main", 1, prog.C(2, "find")).
		Entry("main").
		MustBuild()

	// Without inlining: two call sites.
	plain, err := Lower(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	for _, in := range plain.Code {
		if in.Op == isa.OpCall {
			calls++
		}
	}
	if calls != 2 {
		t.Fatalf("plain lowering calls = %d, want 2", calls)
	}
	if len(plain.Inlines) != 0 {
		t.Fatal("plain lowering produced inline records")
	}

	// With inlining: no calls remain; inline provenance is chained.
	inl, err := Lower(p, Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inl.Code {
		pi := inl.ProcAt(int32(i))
		if in.Op == isa.OpCall && inl.Procs[pi].Name == "main" {
			t.Fatal("call survived inlining in main")
		}
	}
	if len(inl.Inlines) < 2 {
		t.Fatalf("inline records = %d, want >= 2", len(inl.Inlines))
	}
	// Find an instruction in main with a two-deep inline chain
	// (compare inlined into find inlined into main).
	mainIdx := inl.ProcByName("main")
	sym := inl.Procs[mainIdx]
	deep := false
	for i := sym.Start; i < sym.End; i++ {
		chain := inl.InlineChain(i)
		if len(chain) == 2 && chain[0].Proc == "find" && chain[1].Proc == "compare" {
			deep = true
			if chain[0].CallLine != 2 || chain[1].CallLine != 12 {
				t.Fatalf("inline call lines = %d,%d want 2,12", chain[0].CallLine, chain[1].CallLine)
			}
		}
	}
	if !deep {
		t.Fatal("no two-deep inline chain found in main")
	}
}

func TestLowerInliningSkipsRecursion(t *testing.T) {
	p := prog.NewBuilder("rec").
		File("a.c").
		InlineProc("r", 10,
			prog.IfDepth(11, 3, prog.C(11, "r")),
			prog.W(12, 1)).
		Proc("main", 1, prog.C(2, "r")).
		Entry("main").
		MustBuild()
	im, err := Lower(p, Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	// r is inlined into main once, but the self-call inside must remain a
	// real call (cycle).
	callsToR := 0
	for _, in := range im.Code {
		if in.Op == isa.OpCall && im.Procs[in.A].Name == "r" {
			callsToR++
		}
	}
	if callsToR == 0 {
		t.Fatal("recursive call was eliminated")
	}
}

func TestLowerInlineDepthLimit(t *testing.T) {
	b := prog.NewBuilder("deep").File("a.c")
	// chain of 6 inline procs: i0 calls i1 calls ... i5
	for i := 5; i >= 0; i-- {
		name := procName(i)
		if i == 5 {
			b.InlineProc(name, 10*i+1, prog.W(10*i+2, 1))
		} else {
			b.InlineProc(name, 10*i+1, prog.C(10*i+2, procName(i+1)))
		}
	}
	b.Proc("main", 1, prog.C(2, "i0"))
	p := b.Entry("main").MustBuild()
	im, err := Lower(p, Options{Inline: true, MaxInlineDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	for _, in := range im.Code {
		pi := im.ProcAt(int32(in.Target)) // dummy use to keep loop simple
		_ = pi
		if in.Op == isa.OpCall {
			calls++
		}
	}
	if calls == 0 {
		t.Fatal("depth limit did not stop inlining")
	}
	maxChain := 0
	for i := range im.Code {
		if n := len(im.InlineChain(int32(i))); n > maxChain {
			maxChain = n
		}
	}
	if maxChain > 3 {
		t.Fatalf("inline chain depth %d exceeds limit 3", maxChain)
	}
}

func procName(i int) string { return string(rune('i')) + string(rune('0'+i)) }

func TestLowerBarrierSynthesizesWaitProc(t *testing.T) {
	p := prog.NewBuilder("spmd").
		File("a.c").
		Proc("main", 1,
			prog.W(2, 5),
			prog.Sync(3),
		).
		Entry("main").
		MustBuild()
	im, err := Lower(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wi := im.ProcByName(WaitProcName)
	if wi < 0 {
		t.Fatal("wait proc not synthesized")
	}
	if im.Procs[wi].File != isa.NoFile {
		t.Fatal("wait proc should have no source file")
	}
	// Barrier lowers to a call to the wait proc; the wait proc contains
	// an OpBarrier.
	callsWait, barrierInWait := false, false
	for i, in := range im.Code {
		if in.Op == isa.OpCall && in.A == wi {
			callsWait = true
		}
		if in.Op == isa.OpBarrier && im.ProcAt(int32(i)) == wi {
			barrierInWait = true
		}
	}
	if !callsWait || !barrierInWait {
		t.Fatalf("barrier lowering wrong: callsWait=%v barrierInWait=%v", callsWait, barrierInWait)
	}
}

func TestLowerNoBarrierNoWaitProc(t *testing.T) {
	p := prog.NewBuilder("plain").
		File("a.c").
		Proc("main", 1, prog.W(2, 1)).
		Entry("main").
		MustBuild()
	im, err := Lower(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if im.ProcByName(WaitProcName) >= 0 {
		t.Fatal("wait proc synthesized without barriers")
	}
}

func TestLowerTooDeepLoopsError(t *testing.T) {
	body := []prog.Stmt{prog.W(99, 1)}
	for i := 0; i < isa.NumRegs+1; i++ {
		body = []prog.Stmt{prog.L(2+i, 2, body...)}
	}
	p := prog.NewBuilder("deep").
		File("a.c").
		Proc("main", 1, body...).
		Entry("main").
		MustBuild()
	if _, err := Lower(p, Options{}); err == nil {
		t.Fatal("excessive loop nesting accepted")
	}
}

func TestLowerRejectsInvalidProgram(t *testing.T) {
	p := &prog.Program{Name: "bad"} // no entry
	if _, err := Lower(p, Options{}); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestLowerLineAttribution(t *testing.T) {
	p := prog.NewBuilder("lines").
		File("a.c").
		Proc("main", 1,
			prog.W(5, 1),
			prog.L(6, 2, prog.W(7, 1))).
		Entry("main").
		MustBuild()
	im, err := Lower(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range im.Code {
		switch in.Op {
		case isa.OpSet, isa.OpBrZ, isa.OpDec, isa.OpJump:
			if in.Line != 6 {
				t.Fatalf("loop control on line %d, want 6", in.Line)
			}
		}
	}
}
