// Package cfg recovers control-flow structure from lowered code: it builds
// a basic-block control-flow graph per procedure, computes dominators with
// the Cooper-Harvey-Kennedy iterative algorithm, and identifies natural
// loops from back edges. This is the analytical heart of the hpcstruct
// substitute: loop scopes shown in the paper's views (Figures 2, 3, 5, 6)
// are *recovered* here from branch structure, not copied from the source
// model.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Block is a basic block: a maximal straight-line instruction range
// [Start, End) within one procedure.
type Block struct {
	ID    int
	Start int32
	End   int32
	Succs []int
	Preds []int
}

// Graph is the CFG of one procedure.
type Graph struct {
	Image  *isa.Image
	ProcID int32
	Blocks []*Block
	// blockOf maps an instruction offset (relative to the proc start) to
	// its block ID.
	blockOf []int
	idom    []int // computed on demand; -1 root/unreachable
	rpo     []int
}

// Build constructs the CFG for procedure procID of im.
func Build(im *isa.Image, procID int32) (*Graph, error) {
	if procID < 0 || int(procID) >= len(im.Procs) {
		return nil, fmt.Errorf("cfg: proc index %d out of range", procID)
	}
	sym := im.Procs[procID]
	n := sym.End - sym.Start
	g := &Graph{Image: im, ProcID: procID, blockOf: make([]int, n)}
	if n == 0 {
		return g, nil
	}

	// Pass 1: identify leaders.
	leader := make([]bool, n)
	leader[0] = true
	for i := sym.Start; i < sym.End; i++ {
		in := &im.Code[i]
		switch in.Op {
		case isa.OpJump, isa.OpBrZ, isa.OpBrCond:
			leader[in.Target-sym.Start] = true
			if i+1 < sym.End {
				leader[i+1-sym.Start] = true
			}
		case isa.OpRet:
			if i+1 < sym.End {
				leader[i+1-sym.Start] = true
			}
		}
	}

	// Pass 2: materialize blocks.
	for off := int32(0); off < n; off++ {
		if leader[off] {
			g.Blocks = append(g.Blocks, &Block{ID: len(g.Blocks), Start: sym.Start + off})
		}
		g.blockOf[off] = len(g.Blocks) - 1
	}
	for bi, b := range g.Blocks {
		if bi+1 < len(g.Blocks) {
			b.End = g.Blocks[bi+1].Start
		} else {
			b.End = sym.End
		}
	}

	// Pass 3: edges.
	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for bi, b := range g.Blocks {
		last := &im.Code[b.End-1]
		switch last.Op {
		case isa.OpJump:
			addEdge(bi, g.blockOf[last.Target-sym.Start])
		case isa.OpBrZ, isa.OpBrCond:
			addEdge(bi, g.blockOf[last.Target-sym.Start])
			if b.End < sym.End {
				addEdge(bi, g.blockOf[b.End-sym.Start])
			}
		case isa.OpRet:
			// no successors
		default:
			if b.End < sym.End {
				addEdge(bi, g.blockOf[b.End-sym.Start])
			}
		}
	}
	return g, nil
}

// BlockAt returns the block containing the given absolute instruction
// index, or nil.
func (g *Graph) BlockAt(idx int32) *Block {
	sym := g.Image.Procs[g.ProcID]
	if idx < sym.Start || idx >= sym.End || len(g.Blocks) == 0 {
		return nil
	}
	return g.Blocks[g.blockOf[idx-sym.Start]]
}

// reversePostorder computes an RPO over blocks reachable from block 0.
func (g *Graph) reversePostorder() []int {
	if g.rpo != nil {
		return g.rpo
	}
	n := len(g.Blocks)
	seen := make([]bool, n)
	post := make([]int, 0, n)
	// Iterative DFS to avoid recursion depth issues on long chains.
	type frame struct {
		b    int
		next int
	}
	if n == 0 {
		return nil
	}
	stack := []frame{{b: 0}}
	seen[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Blocks[f.b].Succs) {
			s := g.Blocks[f.b].Succs[f.next]
			f.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, len(post))
	for i, b := range post {
		rpo[len(post)-1-i] = b
	}
	g.rpo = rpo
	return rpo
}

// Dominators returns the immediate-dominator array: idom[b] is the
// immediate dominator of block b, -1 for the entry block and for
// unreachable blocks. Cooper, Harvey & Kennedy, "A Simple, Fast Dominance
// Algorithm".
func (g *Graph) Dominators() []int {
	if g.idom != nil {
		return g.idom
	}
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		g.idom = idom
		return idom
	}
	rpo := g.reversePostorder()
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b] = i
	}
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	idom[0] = 0
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if rpoNum[p] < 0 || idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[0] = -1
	g.idom = idom
	return idom
}

// Dominates reports whether block a dominates block b (reflexive).
func (g *Graph) Dominates(a, b int) bool {
	idom := g.Dominators()
	for {
		if a == b {
			return true
		}
		if b == 0 || idom[b] == -1 {
			return false
		}
		b = idom[b]
	}
}

// Loop is a recovered natural loop.
type Loop struct {
	ID int
	// Head is the header block.
	Head int
	// Blocks is the sorted set of member block IDs (including Head).
	Blocks []int
	// Parent/Children give the nesting forest; Parent is nil for
	// outermost loops.
	Parent   *Loop
	Children []*Loop
	// File and Line locate the loop in the source, taken from the header
	// block's first instruction (lowering stamps loop-control
	// instructions with the loop's source line).
	File int32
	Line int32
	// Inline is the inline-provenance node shared by the loop's control
	// instructions (isa.NoInline when the loop is not inlined code).
	Inline int32
	// Depth is the nesting depth (outermost loop = 1).
	Depth int
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool {
	i := sort.SearchInts(l.Blocks, b)
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// LoopForest is the set of loops of one procedure, with per-instruction
// innermost-loop resolution.
type LoopForest struct {
	// Roots are the outermost loops, ordered by header position.
	Roots []*Loop
	// Loops is every loop, indexed by Loop.ID.
	Loops []*Loop
	// inner maps instruction offsets (relative to proc start) to the
	// innermost enclosing loop ID, -1 for none.
	inner []int
	proc  isa.ProcSym
}

// InnermostAt returns the innermost loop containing the absolute
// instruction index, or nil.
func (f *LoopForest) InnermostAt(idx int32) *Loop {
	if idx < f.proc.Start || idx >= f.proc.End {
		return nil
	}
	id := f.inner[idx-f.proc.Start]
	if id < 0 {
		return nil
	}
	return f.Loops[id]
}

// Chain returns the loop nest containing idx from outermost to innermost.
func (f *LoopForest) Chain(idx int32) []*Loop {
	var chain []*Loop
	for l := f.InnermostAt(idx); l != nil; l = l.Parent {
		chain = append(chain, l)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// NaturalLoops identifies back edges (edges u->v where v dominates u),
// floods each to the natural loop body, merges loops sharing a header, and
// arranges them into a nesting forest.
func (g *Graph) NaturalLoops() *LoopForest {
	sym := g.Image.Procs[g.ProcID]
	forest := &LoopForest{proc: sym, inner: make([]int, sym.End-sym.Start)}
	for i := range forest.inner {
		forest.inner[i] = -1
	}
	if len(g.Blocks) == 0 {
		return forest
	}
	g.Dominators()

	// Collect loop bodies per header.
	bodies := map[int]map[int]bool{} // header block -> member set
	var headers []int
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !g.Dominates(s, b.ID) {
				continue
			}
			body, ok := bodies[s]
			if !ok {
				body = map[int]bool{s: true}
				bodies[s] = body
				headers = append(headers, s)
			}
			// Flood backwards from the back-edge source until the
			// header.
			stack := []int{b.ID}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] {
					continue
				}
				body[x] = true
				stack = append(stack, g.Blocks[x].Preds...)
			}
		}
	}
	sort.Ints(headers)

	for _, h := range headers {
		members := make([]int, 0, len(bodies[h]))
		for b := range bodies[h] {
			members = append(members, b)
		}
		sort.Ints(members)
		head := g.Blocks[h]
		first := g.Image.Code[head.Start]
		l := &Loop{
			ID:     len(forest.Loops),
			Head:   h,
			Blocks: members,
			File:   first.File,
			Line:   first.Line,
			Inline: first.Inline,
		}
		forest.Loops = append(forest.Loops, l)
	}

	// Nesting: the parent of l is the smallest loop that properly
	// contains l's header and is not l itself.
	ordered := append([]*Loop(nil), forest.Loops...)
	sort.Slice(ordered, func(i, j int) bool { return len(ordered[i].Blocks) < len(ordered[j].Blocks) })
	for _, l := range forest.Loops {
		var parent *Loop
		for _, cand := range ordered {
			// A proper container must be strictly larger and contain
			// l's header; ordered is ascending by size, so the first
			// match is the innermost container.
			if len(cand.Blocks) > len(l.Blocks) && cand.Contains(l.Head) {
				parent = cand
				break
			}
		}
		if parent != nil {
			l.Parent = parent
			parent.Children = append(parent.Children, l)
		} else {
			forest.Roots = append(forest.Roots, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		sort.Slice(l.Children, func(i, j int) bool { return l.Children[i].Head < l.Children[j].Head })
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	sort.Slice(forest.Roots, func(i, j int) bool { return forest.Roots[i].Head < forest.Roots[j].Head })
	for _, r := range forest.Roots {
		setDepth(r, 1)
	}

	// Per-instruction innermost loop: process loops outermost-first so
	// inner loops overwrite.
	byDepth := append([]*Loop(nil), forest.Loops...)
	sort.Slice(byDepth, func(i, j int) bool { return byDepth[i].Depth < byDepth[j].Depth })
	for _, l := range byDepth {
		for _, b := range l.Blocks {
			blk := g.Blocks[b]
			for i := blk.Start; i < blk.End; i++ {
				forest.inner[i-sym.Start] = l.ID
			}
		}
	}
	return forest
}
