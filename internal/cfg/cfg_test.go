package cfg

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/prog"
)

func lowered(t *testing.T, b *prog.Builder, opt lower.Options) *isa.Image {
	t.Helper()
	im, err := lower.Lower(b.MustBuild(), opt)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return im
}

func mainGraph(t *testing.T, im *isa.Image) *Graph {
	t.Helper()
	g, err := Build(im, im.ProcByName("main"))
	if err != nil {
		t.Fatalf("cfg build: %v", err)
	}
	return g
}

func TestBuildStraightLine(t *testing.T) {
	im := lowered(t, prog.NewBuilder("sl").
		File("a.c").
		Proc("main", 1, prog.W(2, 1), prog.W(3, 2)).
		Entry("main"), lower.Options{})
	g := mainGraph(t, im)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	if len(g.Blocks[0].Succs) != 0 {
		t.Fatal("straight-line block should have no successors")
	}
}

func TestBuildSingleLoop(t *testing.T) {
	im := lowered(t, prog.NewBuilder("l1").
		File("a.c").
		Proc("main", 1, prog.L(2, 10, prog.W(3, 1))).
		Entry("main"), lower.Options{})
	g := mainGraph(t, im)
	forest := g.NaturalLoops()
	if len(forest.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(forest.Loops))
	}
	l := forest.Loops[0]
	if l.Line != 2 {
		t.Fatalf("loop line = %d, want 2", l.Line)
	}
	if l.Depth != 1 || l.Parent != nil {
		t.Fatalf("loop nesting wrong: depth=%d", l.Depth)
	}
	// The loop body's work instruction is inside the loop.
	for i, in := range im.Code {
		if in.Op == isa.OpWork {
			if forest.InnermostAt(int32(i)) != l {
				t.Fatal("work instruction not attributed to the loop")
			}
		}
	}
}

func TestBuildNestedLoops(t *testing.T) {
	im := lowered(t, prog.NewBuilder("l2").
		File("a.c").
		Proc("main", 1,
			prog.L(2, 10,
				prog.W(3, 1),
				prog.L(4, 5, prog.W(5, 1)),
			)).
		Entry("main"), lower.Options{})
	g := mainGraph(t, im)
	forest := g.NaturalLoops()
	if len(forest.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(forest.Loops))
	}
	if len(forest.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(forest.Roots))
	}
	outer := forest.Roots[0]
	if outer.Line != 2 || len(outer.Children) != 1 {
		t.Fatalf("outer loop wrong: line=%d children=%d", outer.Line, len(outer.Children))
	}
	inner := outer.Children[0]
	if inner.Line != 4 || inner.Depth != 2 || inner.Parent != outer {
		t.Fatalf("inner loop wrong: line=%d depth=%d", inner.Line, inner.Depth)
	}
	// Chain resolution: the deepest work statement sits in both loops.
	for i, in := range im.Code {
		if in.Op == isa.OpWork && in.Line == 5 {
			chain := forest.Chain(int32(i))
			if len(chain) != 2 || chain[0] != outer || chain[1] != inner {
				t.Fatalf("chain at line 5 = %v", chain)
			}
		}
		if in.Op == isa.OpWork && in.Line == 3 {
			chain := forest.Chain(int32(i))
			if len(chain) != 1 || chain[0] != outer {
				t.Fatalf("chain at line 3 = %v", chain)
			}
		}
	}
}

func TestBuildSiblingLoops(t *testing.T) {
	im := lowered(t, prog.NewBuilder("l3").
		File("a.c").
		Proc("main", 1,
			prog.L(2, 3, prog.W(3, 1)),
			prog.L(5, 4, prog.W(6, 1)),
		).
		Entry("main"), lower.Options{})
	forest := mainGraph(t, im).NaturalLoops()
	if len(forest.Roots) != 2 || len(forest.Loops) != 2 {
		t.Fatalf("roots=%d loops=%d, want 2/2", len(forest.Roots), len(forest.Loops))
	}
	if forest.Roots[0].Line != 2 || forest.Roots[1].Line != 5 {
		t.Fatalf("root lines = %d,%d", forest.Roots[0].Line, forest.Roots[1].Line)
	}
}

func TestTripleNesting(t *testing.T) {
	im := lowered(t, prog.NewBuilder("l4").
		File("a.c").
		Proc("main", 1,
			prog.L(2, 2,
				prog.L(3, 2,
					prog.L(4, 2, prog.W(5, 1))))).
		Entry("main"), lower.Options{})
	forest := mainGraph(t, im).NaturalLoops()
	if len(forest.Loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(forest.Loops))
	}
	depths := map[int32]int{}
	for _, l := range forest.Loops {
		depths[l.Line] = l.Depth
	}
	if depths[2] != 1 || depths[3] != 2 || depths[4] != 3 {
		t.Fatalf("depths = %v", depths)
	}
}

func TestIfNoLoops(t *testing.T) {
	im := lowered(t, prog.NewBuilder("if").
		File("a.c").
		Proc("main", 1,
			prog.If{Line: 2, Cond: prog.ProbCond{P: 0.5},
				Then: []prog.Stmt{prog.W(3, 1)},
				Else: []prog.Stmt{prog.W(4, 1)}},
		).
		Entry("main"), lower.Options{})
	g := mainGraph(t, im)
	forest := g.NaturalLoops()
	if len(forest.Loops) != 0 {
		t.Fatalf("if-else produced %d loops", len(forest.Loops))
	}
	// Diamond: entry block with two successors that join.
	if len(g.Blocks) < 3 {
		t.Fatalf("blocks = %d, want >= 3", len(g.Blocks))
	}
	if len(g.Blocks[0].Succs) != 2 {
		t.Fatalf("entry successors = %d, want 2", len(g.Blocks[0].Succs))
	}
}

func TestDominatorsDiamond(t *testing.T) {
	im := lowered(t, prog.NewBuilder("dia").
		File("a.c").
		Proc("main", 1,
			prog.W(2, 1),
			prog.If{Line: 3, Cond: prog.ProbCond{P: 0.5},
				Then: []prog.Stmt{prog.W(4, 1)},
				Else: []prog.Stmt{prog.W(5, 1)}},
			prog.W(6, 1),
		).
		Entry("main"), lower.Options{})
	g := mainGraph(t, im)
	idom := g.Dominators()
	if idom[0] != -1 {
		t.Fatal("entry must have no idom")
	}
	// Every other reachable block is dominated by the entry.
	for b := 1; b < len(g.Blocks); b++ {
		if !g.Dominates(0, b) {
			t.Fatalf("entry does not dominate block %d", b)
		}
	}
	// Find the join block (the one containing line 6's work); its idom
	// must be the branching block (block 0), not either arm.
	var join int = -1
	for bi, blk := range g.Blocks {
		for i := blk.Start; i < blk.End; i++ {
			if im.Code[i].Op == isa.OpWork && im.Code[i].Line == 6 {
				join = bi
			}
		}
	}
	if join < 0 {
		t.Fatal("join block not found")
	}
	if idom[join] != 0 {
		t.Fatalf("idom(join) = %d, want 0", idom[join])
	}
}

func TestDominatesReflexive(t *testing.T) {
	im := lowered(t, prog.NewBuilder("r").
		File("a.c").
		Proc("main", 1, prog.L(2, 3, prog.W(3, 1))).
		Entry("main"), lower.Options{})
	g := mainGraph(t, im)
	for b := range g.Blocks {
		if !g.Dominates(b, b) {
			t.Fatalf("Dominates(%d,%d) = false", b, b)
		}
	}
}

func TestLoopInsideInlinedCode(t *testing.T) {
	// A loop that only exists because an inlined callee contained it:
	// the recovered loop must carry the inline provenance.
	im := lowered(t, prog.NewBuilder("inl").
		File("a.c").
		InlineProc("kernel", 10, prog.L(11, 8, prog.W(12, 1))).
		Proc("main", 1, prog.C(2, "kernel")).
		Entry("main"), lower.Options{Inline: true})
	g := mainGraph(t, im)
	forest := g.NaturalLoops()
	if len(forest.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(forest.Loops))
	}
	l := forest.Loops[0]
	if l.Inline == isa.NoInline {
		t.Fatal("inlined loop lost its inline provenance")
	}
	if im.Inlines[l.Inline].Proc != "kernel" {
		t.Fatalf("loop inline proc = %q", im.Inlines[l.Inline].Proc)
	}
	if l.Line != 11 {
		t.Fatalf("loop line = %d, want 11 (callee's line)", l.Line)
	}
}

func TestBlockAt(t *testing.T) {
	im := lowered(t, prog.NewBuilder("ba").
		File("a.c").
		Proc("main", 1, prog.L(2, 3, prog.W(3, 1))).
		Entry("main"), lower.Options{})
	g := mainGraph(t, im)
	sym := im.Procs[im.ProcByName("main")]
	for i := sym.Start; i < sym.End; i++ {
		b := g.BlockAt(i)
		if b == nil || i < b.Start || i >= b.End {
			t.Fatalf("BlockAt(%d) wrong", i)
		}
	}
	if g.BlockAt(sym.End) != nil || g.BlockAt(sym.Start-1) != nil {
		t.Fatal("BlockAt out of range returned a block")
	}
}

func TestBuildBadProcIndex(t *testing.T) {
	im := lowered(t, prog.NewBuilder("x").
		File("a.c").Proc("main", 1, prog.W(2, 1)).Entry("main"), lower.Options{})
	if _, err := Build(im, 99); err == nil {
		t.Fatal("bad proc index accepted")
	}
	if _, err := Build(im, -1); err == nil {
		t.Fatal("negative proc index accepted")
	}
}

// Loops guarded by conditionals (if around a loop) are still found, and the
// conditional's blocks stay out of the loop.
func TestLoopUnderConditional(t *testing.T) {
	im := lowered(t, prog.NewBuilder("cl").
		File("a.c").
		Proc("main", 1,
			prog.IfP(2, 0.5,
				prog.L(3, 4, prog.W(4, 1))),
			prog.W(6, 1),
		).
		Entry("main"), lower.Options{})
	g := mainGraph(t, im)
	forest := g.NaturalLoops()
	if len(forest.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(forest.Loops))
	}
	l := forest.Loops[0]
	if l.Line != 3 {
		t.Fatalf("loop line = %d, want 3", l.Line)
	}
	// line-6 work is outside the loop
	for i, in := range im.Code {
		if in.Op == isa.OpWork && in.Line == 6 && forest.InnermostAt(int32(i)) != nil {
			t.Fatal("post-loop work attributed to loop")
		}
	}
}
