// Package source is the format-neutral boundary of the ingestion stack:
// everything that can produce a calling context tree — hpcrun measurement
// files fused with a structure document (internal/correlate), Go
// runtime/pprof protos (internal/pprofio), or any future format — is
// expressed as a Profile: a stream of attributed call-path samples plus
// metric descriptors and an optional rank/thread identity.
//
// Build is the single generic consumer: it materializes the scope chains
// of every sample into a core.Tree (creating metric columns by name) and
// accumulates the sample values into the tree's columnar metric store.
// Because node creation order follows the stream exactly, a source that
// emits samples in a deterministic order yields a byte-deterministic
// database — the property the correlate equivalence lock pins.
package source

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/intern"
	"repro/internal/metric"
)

// Metric describes one sample-value column of a profile source.
type Metric struct {
	// Name is the column name, e.g. "CYCLES" or "cpu/nanoseconds".
	Name string
	// Unit is a display unit.
	Unit string
	// Period is the number of events one unit of value accounts for; use
	// 1 when values are already in final units (pprof).
	Period uint64
}

// Identity names the thread of execution a profile measured. The zero
// Identity (rank 0, thread 0) is correct for single-process sources.
type Identity struct {
	Rank   int
	Thread int
}

// Scope is one element of a sample's attributed call path: the core.Key
// that identifies the scope within its parent plus the presentation
// attributes the scope carries. Attribute fields are applied only when
// set (and call-site fields only once), so revisiting a scope with the
// same attributes — the invariant every deterministic source upholds —
// never changes it.
type Scope struct {
	// Key identifies the scope within its parent (kind, interned
	// name/file symbols, line, disambiguating id).
	Key core.Key
	// NoSource marks scopes with no source information.
	NoSource bool
	// Mod is the load module containing the scope, interned.
	Mod intern.Sym
	// CallLine / CallFile locate the call site of a Frame (or the inlined
	// call of an Alien) in the caller.
	CallLine int
	CallFile intern.Sym
}

// Profile is a format-neutral profile: a deterministic stream of
// attributed call-path samples.
type Profile interface {
	// Program names the measured program.
	Program() string
	// Identity reports which process/thread the profile measured.
	Identity() Identity
	// Metrics describes the sample-value columns, in value order.
	Metrics() []Metric
	// Samples streams every sample: path is the scope chain from the
	// entry frame to the attributed scope (inclusive, outermost first)
	// and values holds one entry per metric. Both slices are only valid
	// during the callback. The stream order must be deterministic — it
	// fixes the tree's node creation order and therefore the database
	// bytes.
	Samples(emit func(path []Scope, values []float64) error) error
}

// Build streams one profile into an existing tree, creating any missing
// metric columns (matched by name) and scopes, and returns the column
// mapping from profile metric index to registry column. Values
// accumulate, so building several profiles into one tree yields their
// summed profile.
func Build(tree *core.Tree, p Profile) ([]int, error) {
	ms := p.Metrics()
	cols := make([]int, len(ms))
	for i, m := range ms {
		if d := tree.Reg.ByName(m.Name); d != nil {
			cols[i] = d.ID
			continue
		}
		d, err := tree.Reg.AddRaw(m.Name, m.Unit, m.Period)
		if err != nil {
			return nil, fmt.Errorf("source: %w", err)
		}
		cols[i] = d.ID
	}
	err := p.Samples(func(path []Scope, values []float64) error {
		if len(values) != len(cols) {
			return fmt.Errorf("source: sample has %d values, profile declares %d metrics",
				len(values), len(cols))
		}
		n := tree.Root
		for i := range path {
			s := &path[i]
			n = n.Child(s.Key, true)
			applyScope(n, s)
		}
		for i, v := range values {
			if v != 0 {
				n.Base.Add(cols[i], v)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cols, nil
}

// applyScope carries a scope's attributes onto its node. Marks are
// sticky and call-site coordinates are set once: under the deterministic
// same-attributes invariant this equals unconditional assignment, without
// ever un-setting an attribute an earlier sample established.
func applyScope(n *core.Node, s *Scope) {
	if s.NoSource {
		n.NoSource = true
	}
	if s.Mod != 0 {
		n.Mod = s.Mod
	}
	if (s.CallLine != 0 || s.CallFile != 0) && n.CallLine == 0 && n.CallFile == 0 {
		n.CallLine = s.CallLine
		n.CallFile = s.CallFile
	}
}

// BuildTree builds a fresh computed tree from one profile: the
// format-neutral equivalent of correlate.Correlate.
func BuildTree(p Profile) (*core.Tree, error) {
	tree := core.NewTree(p.Program(), metric.NewRegistry())
	if _, err := Build(tree, p); err != nil {
		return nil, err
	}
	tree.ComputeMetrics()
	return tree, nil
}
