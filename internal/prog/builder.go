package prog

import "fmt"

// Builder assembles Programs fluently. Workload definitions read almost
// like the source listings in the paper's Figure 1.
type Builder struct {
	prog *Program
	mod  *Module
	file *File
	errs []error
}

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name}}
}

// Module starts (or switches to) a load module.
func (b *Builder) Module(name string) *Builder {
	for _, m := range b.prog.Modules {
		if m.Name == name {
			b.mod = m
			b.file = nil
			return b
		}
	}
	b.mod = &Module{Name: name}
	b.prog.Modules = append(b.prog.Modules, b.mod)
	b.file = nil
	return b
}

// File starts (or switches to) a source file in the current module.
func (b *Builder) File(name string) *Builder {
	if b.mod == nil {
		b.Module(b.prog.Name)
	}
	for _, f := range b.mod.Files {
		if f.Name == name {
			b.file = f
			return b
		}
	}
	b.file = &File{Name: name}
	b.mod.Files = append(b.mod.Files, b.file)
	return b
}

// Proc declares a procedure in the current file.
func (b *Builder) Proc(name string, line int, body ...Stmt) *Builder {
	return b.addProc(&Proc{Name: name, Line: line, Body: body})
}

// InlineProc declares a procedure that the lowering pass may inline.
func (b *Builder) InlineProc(name string, line int, body ...Stmt) *Builder {
	return b.addProc(&Proc{Name: name, Line: line, Body: body, Inline: true})
}

// RuntimeProc declares a binary-only procedure (no source information).
func (b *Builder) RuntimeProc(name string, body ...Stmt) *Builder {
	return b.addProc(&Proc{Name: name, Line: 0, Body: body, NoSource: true})
}

func (b *Builder) addProc(p *Proc) *Builder {
	if b.file == nil {
		b.File(b.prog.Name + ".c")
	}
	b.file.Procs = append(b.file.Procs, p)
	return b
}

// Entry sets the entry procedure.
func (b *Builder) Entry(name string) *Builder {
	b.prog.Entry = name
	return b
}

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.prog.Entry == "" {
		b.prog.Entry = "main"
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build but panics on error; intended for the static workload
// definitions that ship with the repository.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("prog: MustBuild: %v", err))
	}
	return p
}

// Convenience statement constructors; they keep workload definitions
// compact and close to the shape of Figure 1.

// W returns straight-line work of the given cycle count (one instruction
// per cycle implied, no FLOPs or misses; use Wc for a full cost bundle).
func W(line int, cycles uint64) Work {
	return Work{Line: line, Cost: Cost{Cycles: cycles, Instr: cycles}}
}

// Wc returns straight-line work with an explicit cost bundle.
func Wc(line int, c Cost) Work { return Work{Line: line, Cost: c} }

// L returns a counted loop with a fixed trip count.
func L(line int, trips int64, body ...Stmt) Loop {
	return Loop{Line: line, Trips: ConstInt(trips), Body: body}
}

// Lx returns a counted loop with a computed trip count.
func Lx(line int, trips IntExpr, body ...Stmt) Loop {
	return Loop{Line: line, Trips: trips, Body: body}
}

// C returns a direct call.
func C(line int, callee string) Call { return Call{Line: line, Callee: callee} }

// IfP returns a probabilistic conditional.
func IfP(line int, p float64, then ...Stmt) If {
	return If{Line: line, Cond: ProbCond{P: p}, Then: then}
}

// IfDepth returns a recursion-bounding conditional: Then runs while the
// enclosing procedure's activation depth is below max.
func IfDepth(line int, max int, then ...Stmt) If {
	return If{Line: line, Cond: DepthCond{Max: max}, Then: then}
}

// IfParam returns a conditional on a named parameter being non-zero.
func IfParam(line int, name string, then ...Stmt) If {
	return If{Line: line, Cond: ParamCond{Name: name}, Then: then}
}

// Sync returns an SPMD barrier statement.
func Sync(line int) Barrier { return Barrier{Line: line} }
