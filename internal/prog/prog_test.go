package prog

import (
	"strings"
	"testing"
)

// fig1 builds the two-file program from Figure 1 of the paper.
func fig1(t *testing.T) *Program {
	t.Helper()
	p, err := NewBuilder("toy").
		Module("toy.exe").
		File("file1.c").
		Proc("f", 1, C(2, "g")).
		Proc("m", 6, C(7, "f"), C(8, "g")).
		File("file2.c").
		Proc("g", 2,
			IfDepth(3, 2, C(3, "g")),
			IfP(4, 0.5, C(4, "h")),
			W(3, 1)).
		Proc("h", 7,
			L(8, 10,
				L(9, 10, W(9, 1)))).
		Entry("m").
		Build()
	if err != nil {
		t.Fatalf("fig1 build: %v", err)
	}
	return p
}

func TestBuilderFig1(t *testing.T) {
	p := fig1(t)
	if len(p.Modules) != 1 || len(p.Modules[0].Files) != 2 {
		t.Fatalf("unexpected structure: %d modules", len(p.Modules))
	}
	if got := len(p.Procs()); got != 4 {
		t.Fatalf("procs = %d, want 4", got)
	}
	m, f, pr, err := p.FindProc("h")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "toy.exe" || f.Name != "file2.c" || pr.Line != 7 {
		t.Fatalf("FindProc(h) = %s %s %d", m.Name, f.Name, pr.Line)
	}
}

func TestFindProcMissing(t *testing.T) {
	p := fig1(t)
	if _, _, _, err := p.FindProc("nosuch"); err == nil {
		t.Fatal("FindProc of missing proc succeeded")
	}
}

func TestValidateCatchesDanglingCall(t *testing.T) {
	_, err := NewBuilder("bad").
		File("a.c").
		Proc("main", 1, C(2, "ghost"), C(3, "phantom")).
		Build()
	if err == nil {
		t.Fatal("dangling call accepted")
	}
	if !strings.Contains(err.Error(), "ghost") || !strings.Contains(err.Error(), "phantom") {
		t.Fatalf("error should name missing procs: %v", err)
	}
}

func TestValidateCatchesDuplicateProc(t *testing.T) {
	_, err := NewBuilder("bad").
		File("a.c").
		Proc("main", 1).
		Proc("main", 5).
		Build()
	if err == nil {
		t.Fatal("duplicate proc accepted")
	}
}

func TestValidateCatchesMissingEntry(t *testing.T) {
	_, err := NewBuilder("bad").
		File("a.c").
		Proc("helper", 1).
		Entry("main").
		Build()
	if err == nil {
		t.Fatal("missing entry accepted")
	}
}

func TestValidateCatchesBadLine(t *testing.T) {
	_, err := NewBuilder("bad").
		File("a.c").
		Proc("main", 1, Work{Line: 0, Cost: Cost{Cycles: 1}}).
		Entry("main").
		Build()
	if err == nil {
		t.Fatal("non-positive line accepted")
	}
}

func TestValidateCatchesNilLoopTrips(t *testing.T) {
	_, err := NewBuilder("bad").
		File("a.c").
		Proc("main", 1, Loop{Line: 2, Body: []Stmt{W(3, 1)}}).
		Entry("main").
		Build()
	if err == nil {
		t.Fatal("nil trip count accepted")
	}
}

func TestValidateCatchesNilCond(t *testing.T) {
	_, err := NewBuilder("bad").
		File("a.c").
		Proc("main", 1, If{Line: 2, Then: []Stmt{W(3, 1)}}).
		Entry("main").
		Build()
	if err == nil {
		t.Fatal("nil condition accepted")
	}
}

func TestValidateChecksNestedBodies(t *testing.T) {
	_, err := NewBuilder("bad").
		File("a.c").
		Proc("main", 1,
			L(2, 3,
				IfP(3, 0.5, C(4, "ghost")))).
		Entry("main").
		Build()
	if err == nil {
		t.Fatal("nested dangling call accepted")
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{Cycles: 1, FLOPs: 2, L1Miss: 3, L2Miss: 4, Instr: 5}
	b := Cost{Cycles: 10, FLOPs: 20, L1Miss: 30, L2Miss: 40, Instr: 50}
	sum := a.Add(b)
	if sum != (Cost{11, 22, 33, 44, 55}) {
		t.Fatalf("Add = %+v", sum)
	}
	if a.Scale(3) != (Cost{3, 6, 9, 12, 15}) {
		t.Fatalf("Scale = %+v", a.Scale(3))
	}
	if !(Cost{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestIntExprs(t *testing.T) {
	p := &Params{Rank: 3, NRanks: 8, Values: map[string]int64{"n": 100}}
	cases := []struct {
		e    IntExpr
		want int64
	}{
		{ConstInt(7), 7},
		{ParamInt("n"), 100},
		{ParamInt("absent"), 0},
		{RankInt{}, 3},
		{ScaledInt{X: ParamInt("n"), Num: 3, Den: 4, Off: 5}, 80},
		{ScaledInt{X: ConstInt(10), Num: 2}, 20}, // zero Den treated as 1
	}
	for i, c := range cases {
		if got := c.e.Eval(p); got != c.want {
			t.Errorf("case %d: got %d, want %d", i, got, c.want)
		}
	}
	if (ParamInt("n")).Eval(nil) != 0 {
		t.Fatal("nil params should evaluate to zero")
	}
	if (RankInt{}).Eval(nil) != 0 {
		t.Fatal("nil params rank should be zero")
	}
}

func TestConds(t *testing.T) {
	p := &Params{Values: map[string]int64{"flag": 1}}
	if !(ProbCond{P: 0.5}).Test(p, 1, 0.4) || (ProbCond{P: 0.5}).Test(p, 1, 0.6) {
		t.Fatal("ProbCond wrong")
	}
	if !(DepthCond{Max: 3}).Test(p, 2, 0) || (DepthCond{Max: 3}).Test(p, 3, 0) {
		t.Fatal("DepthCond wrong")
	}
	if !(ParamCond{Name: "flag"}).Test(p, 1, 0) || (ParamCond{Name: "off"}).Test(p, 1, 0) {
		t.Fatal("ParamCond wrong")
	}
}

func TestBuilderModuleFileSwitching(t *testing.T) {
	b := NewBuilder("x")
	b.Module("m1").File("a.c").Proc("main", 1)
	b.Module("m2").File("b.c").Proc("lib", 1)
	b.Module("m1").File("a.c").Proc("extra", 9)
	p, err := b.Entry("main").Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Modules) != 2 {
		t.Fatalf("modules = %d, want 2", len(p.Modules))
	}
	if len(p.Modules[0].Files[0].Procs) != 2 {
		t.Fatalf("switch-back did not reuse file: %d procs", len(p.Modules[0].Files[0].Procs))
	}
}

func TestBuilderDefaults(t *testing.T) {
	// Proc without Module/File gets defaults; entry defaults to main.
	p, err := NewBuilder("d").Proc("main", 1, W(2, 1)).Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != "main" {
		t.Fatalf("default entry = %q", p.Entry)
	}
	if p.Modules[0].Name != "d" || p.Modules[0].Files[0].Name != "d.c" {
		t.Fatalf("default module/file = %q/%q", p.Modules[0].Name, p.Modules[0].Files[0].Name)
	}
}

func TestRuntimeProc(t *testing.T) {
	p, err := NewBuilder("r").
		File("a.c").
		Proc("main", 1, C(2, "memset")).
		RuntimeProc("memset", W(1, 5)).
		Entry("main").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	_, _, pr, err := p.FindProc("memset")
	if err != nil {
		t.Fatal(err)
	}
	if !pr.NoSource {
		t.Fatal("runtime proc should have NoSource set")
	}
}

func TestStmtSrcLine(t *testing.T) {
	stmts := []Stmt{W(4, 1), L(5, 2), C(6, "x"), IfP(7, 0.5)}
	for i, want := range []int{4, 5, 6, 7} {
		if got := stmts[i].SrcLine(); got != want {
			t.Errorf("SrcLine[%d] = %d, want %d", i, got, want)
		}
	}
}
