package prog

import (
	"strings"
	"testing"
)

func sourceProg(t *testing.T) *Program {
	t.Helper()
	return NewBuilder("src").
		Module("src.exe").
		File("main.c").
		Proc("main", 1,
			W(2, 10),
			L(3, 5,
				C(4, "helper"),
				IfP(5, 0.25, W(6, 1))),
			Sync(8)).
		Proc("helper", 10,
			Lx(11, ParamInt("n"), Wc(12, Cost{Cycles: 3, FLOPs: 2}))).
		File("other.c").
		Proc("spare", 1, W(2, 1)).
		Entry("main").MustBuild()
}

func TestSourceFileRendering(t *testing.T) {
	p := sourceProg(t)
	lines, err := p.SourceFile("main.c")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{
		1:  "void main() {",
		2:  "work(",
		3:  "for (i = 0; i < 5; i++) {",
		4:  "helper();",
		5:  "if (rand() < 0.25) {",
		8:  "mpi_barrier();",
		10: "void helper() {",
		11: "for (i = 0; i < n; i++) {",
		12: "flops=2",
	}
	for n, frag := range want {
		if n > len(lines) {
			t.Fatalf("file too short: %d lines, want >= %d", len(lines), n)
		}
		if !strings.Contains(lines[n-1], frag) {
			t.Errorf("line %d = %q, want fragment %q", n, lines[n-1], frag)
		}
	}
	// Unclaimed lines are blank.
	if lines[7-1] != "" {
		t.Errorf("line 7 should be blank, got %q", lines[6])
	}
	// Nested statements are indented deeper than their parents.
	if !strings.HasPrefix(lines[4-1], "    ") {
		t.Errorf("loop body not indented: %q", lines[3])
	}
}

func TestSourceFileUnknown(t *testing.T) {
	p := sourceProg(t)
	if _, err := p.SourceFile("ghost.c"); err == nil {
		t.Fatal("unknown file rendered")
	}
}

func TestWriteSourceWindow(t *testing.T) {
	p := sourceProg(t)
	var b strings.Builder
	if err := p.WriteSource(&b, "main.c", 4, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, ">    4 |") {
		t.Fatalf("selected line not marked:\n%s", out)
	}
	if !strings.Contains(out, "   2 |") || !strings.Contains(out, "   6 |") {
		t.Fatalf("context window wrong:\n%s", out)
	}
	if strings.Contains(out, "  10 |") {
		t.Fatalf("window leaked beyond context:\n%s", out)
	}
	if err := p.WriteSource(&b, "main.c", 999, 2); err == nil {
		t.Fatal("out-of-range line accepted")
	}
	// Default context when <= 0.
	b.Reset()
	if err := p.WriteSource(&b, "main.c", 4, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "   1 |") {
		t.Fatalf("default context missing:\n%s", b.String())
	}
}

func TestFilesListing(t *testing.T) {
	p := sourceProg(t)
	files := p.Files()
	if len(files) != 2 || files[0] != "main.c" || files[1] != "other.c" {
		t.Fatalf("files = %v", files)
	}
}

func TestExprAndCondStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{exprString(ConstInt(7)), "7"},
		{exprString(ParamInt("cells")), "cells"},
		{exprString(RankInt{}), "rank"},
		{exprString(ScaledInt{X: RankInt{}, Num: 3, Den: 4, Off: 5}), "rank*3/4+5"},
		{exprString(ScaledInt{X: ConstInt(2), Num: 3}), "2*3/1"},
		{exprString(HashInt{Lo: 1, Hi: 9}), "hash(rank)%[1,9]"},
		{condString(ProbCond{P: 0.5}), "rand() < 0.50"},
		{condString(DepthCond{Max: 3}), "depth < 3"},
		{condString(ParamCond{Name: "flag"}), "flag != 0"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestSourceSharedLineJoins(t *testing.T) {
	// Work and a call on the same line (as in Figure 1's f) join rather
	// than overwrite.
	p := NewBuilder("j").
		File("a.c").
		Proc("f", 1,
			W(2, 5),
			C(2, "g")).
		Proc("g", 5, W(6, 1)).
		Entry("f").MustBuild()
	lines, err := p.SourceFile("a.c")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lines[1], "work(") || !strings.Contains(lines[1], "g();") {
		t.Fatalf("shared line = %q", lines[1])
	}
}
