package prog

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Source rendering: hpcviewer pairs its navigation pane with a source pane
// ("selecting any of the lines in the navigation pane navigates the source
// pane to the corresponding source code"). Our programs are synthetic, so
// the model renders its own pseudo-source: a C-like listing with correct
// line numbers, which the viewer's source pane shows around a selected
// scope.

// SourceFile renders the named file's pseudo-source. Line numbers in the
// listing match the statement lines of the model; lines nobody claims are
// left blank. Returns an error when the file is unknown.
func (p *Program) SourceFile(name string) ([]string, error) {
	var file *File
	for _, m := range p.Modules {
		for _, f := range m.Files {
			if f.Name == name {
				file = f
			}
		}
	}
	if file == nil {
		return nil, fmt.Errorf("prog: no source for file %q", name)
	}

	// lines maps line number -> rendered text; procedures and statements
	// claim their lines, nested constructs indent.
	lines := map[int]string{}
	claim := func(n int, text string) {
		if n <= 0 {
			return
		}
		if cur, ok := lines[n]; ok && cur != "" {
			// Two constructs on one line (e.g. work plus call): join.
			if !strings.Contains(cur, text) {
				lines[n] = cur + "  /* + */ " + text
			}
			return
		}
		lines[n] = text
	}

	var renderBody func(body []Stmt, depth int)
	renderBody = func(body []Stmt, depth int) {
		ind := strings.Repeat("  ", depth)
		for _, s := range body {
			switch s := s.(type) {
			case Work:
				claim(s.Line, fmt.Sprintf("%swork(cycles=%d, flops=%d, l1=%d);",
					ind, s.Cost.Cycles, s.Cost.FLOPs, s.Cost.L1Miss))
			case Call:
				claim(s.Line, fmt.Sprintf("%s%s();", ind, s.Callee))
			case Barrier:
				claim(s.Line, ind+"mpi_barrier();")
			case Loop:
				claim(s.Line, fmt.Sprintf("%sfor (i = 0; i < %s; i++) {", ind, exprString(s.Trips)))
				renderBody(s.Body, depth+1)
			case If:
				claim(s.Line, fmt.Sprintf("%sif (%s) {", ind, condString(s.Cond)))
				renderBody(s.Then, depth+1)
				renderBody(s.Else, depth+1)
			}
		}
	}

	for _, pr := range file.Procs {
		if pr.NoSource {
			continue
		}
		claim(pr.Line, fmt.Sprintf("void %s() {", pr.Name))
		renderBody(pr.Body, 1)
	}

	max := 0
	for n := range lines {
		if n > max {
			max = n
		}
	}
	out := make([]string, max)
	for n, text := range lines {
		out[n-1] = text
	}
	return out, nil
}

// WriteSource writes a window of the file around the given line (1-based),
// marking it with '>' — the source pane's behavior when the navigation
// pane selects a scope.
func (p *Program) WriteSource(w io.Writer, file string, line, context int) error {
	lines, err := p.SourceFile(file)
	if err != nil {
		return err
	}
	if context <= 0 {
		context = 3
	}
	lo := line - context
	if lo < 1 {
		lo = 1
	}
	hi := line + context
	if hi > len(lines) {
		hi = len(lines)
	}
	if line < 1 || line > len(lines) {
		return fmt.Errorf("prog: line %d outside %s (1..%d)", line, file, len(lines))
	}
	for n := lo; n <= hi; n++ {
		mark := "  "
		if n == line {
			mark = "> "
		}
		if _, err := fmt.Fprintf(w, "%s%4d | %s\n", mark, n, lines[n-1]); err != nil {
			return err
		}
	}
	return nil
}

// Files lists every source file name in deterministic order.
func (p *Program) Files() []string {
	var out []string
	for _, m := range p.Modules {
		for _, f := range m.Files {
			if f.Name != "" {
				out = append(out, f.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

func exprString(e IntExpr) string {
	switch e := e.(type) {
	case ConstInt:
		return fmt.Sprintf("%d", int64(e))
	case ParamInt:
		return string(e)
	case RankInt:
		return "rank"
	case NRanksInt:
		return "nranks"
	case ThreadInt:
		return "thread"
	case NThreadsInt:
		return "nthreads"
	case ScaledInt:
		den := e.Den
		if den == 0 {
			den = 1
		}
		s := fmt.Sprintf("%s*%d/%d", exprString(e.X), e.Num, den)
		if e.Off != 0 {
			s += fmt.Sprintf("+%d", e.Off)
		}
		return s
	case HashInt:
		return fmt.Sprintf("hash(rank)%%[%d,%d]", e.Lo, e.Hi)
	}
	return "n"
}

func condString(c Cond) string {
	switch c := c.(type) {
	case ProbCond:
		return fmt.Sprintf("rand() < %.2f", c.P)
	case DepthCond:
		return fmt.Sprintf("depth < %d", c.Max)
	case ParamCond:
		return c.Name + " != 0"
	}
	return "cond"
}
