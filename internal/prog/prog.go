// Package prog defines the synthetic source-program model the toolkit
// measures. A Program plays the role of an application's source code: it
// has load modules, files, procedures, loops, straight-line work,
// conditionals and calls (direct and recursive). A separate lowering pass
// (internal/lower) compiles a Program to the synthetic ISA that the
// measurement substrate executes and analyzes, mirroring how HPCToolkit
// measures compiled binaries rather than source.
//
// The model substitutes for the real applications of the paper (S3D, MOAB,
// PFLOTRAN): the presentation algorithms under study consume call path
// profiles and static structure, both of which this model produces through
// the same pipeline stages (sampling, structure recovery, correlation).
package prog

import (
	"fmt"
	"sort"
)

// Cost is a bundle of hardware-counter events charged by one execution of a
// unit of work. The counters mirror the PAPI presets used in the paper
// (total cycles, floating-point ops, L1/L2 data-cache misses, instructions).
type Cost struct {
	Cycles uint64
	FLOPs  uint64
	L1Miss uint64
	L2Miss uint64
	Instr  uint64
}

// Add returns c + o.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		Cycles: c.Cycles + o.Cycles,
		FLOPs:  c.FLOPs + o.FLOPs,
		L1Miss: c.L1Miss + o.L1Miss,
		L2Miss: c.L2Miss + o.L2Miss,
		Instr:  c.Instr + o.Instr,
	}
}

// Scale returns c with every counter multiplied by k.
func (c Cost) Scale(k uint64) Cost {
	return Cost{
		Cycles: c.Cycles * k,
		FLOPs:  c.FLOPs * k,
		L1Miss: c.L1Miss * k,
		L2Miss: c.L2Miss * k,
		Instr:  c.Instr * k,
	}
}

// IsZero reports whether every counter is zero.
func (c Cost) IsZero() bool { return c == Cost{} }

// Program is a whole synthetic application.
type Program struct {
	Name    string
	Modules []*Module
	// Entry names the procedure where execution starts, usually "main".
	Entry string
}

// Module is a load module (executable or shared library).
type Module struct {
	Name  string
	Files []*File
}

// File is a source file within a module.
type File struct {
	Name  string
	Procs []*Proc
}

// Proc is a procedure definition.
type Proc struct {
	Name string
	// Line is the line of the procedure header in its file.
	Line int
	// Body is the statement list.
	Body []Stmt
	// Inline marks the procedure as an inlining candidate: the lowering
	// pass will splice its body into callers (recording inline
	// provenance) instead of emitting a call, like an optimizing
	// compiler. Recursive procedures are never inlined.
	Inline bool
	// NoSource marks binary-only procedures (e.g. compiler runtime,
	// libm): structure recovery will know their names but report no
	// source file, matching the paper's "main shown in plain black".
	NoSource bool
}

// Stmt is a node of a procedure body.
type Stmt interface {
	stmt()
	// SrcLine is the statement's source line.
	SrcLine() int
}

// Work is straight-line computation on one source line.
type Work struct {
	Line int
	Cost Cost
}

// Loop is a counted loop. Trips is evaluated once at loop entry.
type Loop struct {
	Line  int
	Trips IntExpr
	Body  []Stmt
}

// Call invokes another procedure by name.
type Call struct {
	Line   int
	Callee string
}

// If executes Then when Cond evaluates true, otherwise Else (may be nil).
type If struct {
	Line int
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// Barrier is an SPMD synchronization point. When executed under the MPI
// harness, the rank waits for all other ranks and is charged idle cycles
// inside a synthetic mpi_wait procedure; outside the harness it is a no-op.
type Barrier struct {
	Line int
}

func (Work) stmt()    {}
func (Loop) stmt()    {}
func (Call) stmt()    {}
func (If) stmt()      {}
func (Barrier) stmt() {}

// SrcLine implements Stmt.
func (b Barrier) SrcLine() int { return b.Line }

// SrcLine implements Stmt.
func (w Work) SrcLine() int { return w.Line }

// SrcLine implements Stmt.
func (l Loop) SrcLine() int { return l.Line }

// SrcLine implements Stmt.
func (c Call) SrcLine() int { return c.Line }

// SrcLine implements Stmt.
func (i If) SrcLine() int { return i.Line }

// Params carries the runtime parameters an execution is instantiated with:
// the MPI-style rank/size pair, the OpenMP-style thread/size pair, and
// arbitrary named integers (problem sizes, trip counts). IntExprs and
// Conds are evaluated against it.
type Params struct {
	Rank     int
	NRanks   int
	Thread   int
	NThreads int
	Values   map[string]int64
}

// Value returns the named parameter (zero if absent).
func (p *Params) Value(name string) int64 {
	if p == nil || p.Values == nil {
		return 0
	}
	return p.Values[name]
}

// IntExpr is an integer expression evaluated at run time against the
// execution parameters.
type IntExpr interface {
	Eval(p *Params) int64
}

// ConstInt is a constant.
type ConstInt int64

// Eval implements IntExpr.
func (c ConstInt) Eval(*Params) int64 { return int64(c) }

// ParamInt reads a named parameter.
type ParamInt string

// Eval implements IntExpr.
func (v ParamInt) Eval(p *Params) int64 { return p.Value(string(v)) }

// RankInt reads the execution's rank.
type RankInt struct{}

// Eval implements IntExpr.
func (RankInt) Eval(p *Params) int64 {
	if p == nil {
		return 0
	}
	return int64(p.Rank)
}

// NRanksInt reads the execution's total rank count (1 when standalone);
// collective-communication cost models scale with it.
type NRanksInt struct{}

// Eval implements IntExpr.
func (NRanksInt) Eval(p *Params) int64 {
	if p == nil || p.NRanks <= 0 {
		return 1
	}
	return int64(p.NRanks)
}

// ThreadInt reads the execution's thread id within its rank.
type ThreadInt struct{}

// Eval implements IntExpr.
func (ThreadInt) Eval(p *Params) int64 {
	if p == nil {
		return 0
	}
	return int64(p.Thread)
}

// NThreadsInt reads the threads-per-rank count (1 when single-threaded);
// OpenMP-style loop partitions divide by it.
type NThreadsInt struct{}

// Eval implements IntExpr.
func (NThreadsInt) Eval(p *Params) int64 {
	if p == nil || p.NThreads <= 0 {
		return 1
	}
	return int64(p.NThreads)
}

// HashInt maps the rank to a deterministic pseudo-random value in
// [Lo, Hi], modeling irregular domain decompositions (the scattered
// per-process work of the paper's Figure 7). Knuth multiplicative hashing
// keeps it reproducible across runs and platforms.
type HashInt struct {
	Seed   int64
	Lo, Hi int64
}

// Eval implements IntExpr.
func (h HashInt) Eval(p *Params) int64 {
	if h.Hi <= h.Lo {
		return h.Lo
	}
	rank := int64(0)
	if p != nil {
		rank = int64(p.Rank)
	}
	x := uint64(rank+h.Seed+1) * 2654435761
	x ^= x >> 16
	x *= 2246822519
	x ^= x >> 13
	span := uint64(h.Hi - h.Lo + 1)
	return h.Lo + int64(x%span)
}

// ScaledInt computes X*Num/Den + Off, the common "partition by rank" shape.
type ScaledInt struct {
	X        IntExpr
	Num, Den int64
	Off      int64
}

// Eval implements IntExpr.
func (s ScaledInt) Eval(p *Params) int64 {
	den := s.Den
	if den == 0 {
		den = 1
	}
	return s.X.Eval(p)*s.Num/den + s.Off
}

// Cond is a runtime predicate for If statements. Implementations must be
// deterministic given (params, rng seed, call depth) so executions are
// reproducible.
type Cond interface {
	// Test is evaluated with the execution parameters, the current call
	// depth of the enclosing procedure (number of activation records of
	// that procedure on the stack, >= 1) and a deterministic PRNG draw
	// in [0,1).
	Test(p *Params, depth int, draw float64) bool
}

// ProbCond is true with probability P (uses the deterministic draw).
type ProbCond struct{ P float64 }

// Test implements Cond.
func (c ProbCond) Test(_ *Params, _ int, draw float64) bool { return draw < c.P }

// DepthCond is true while the enclosing procedure's recursion depth is
// below Max; the standard way to express bounded recursion.
type DepthCond struct{ Max int }

// Test implements Cond.
func (c DepthCond) Test(_ *Params, depth int, _ float64) bool { return depth < c.Max }

// ParamCond is true when parameter Name is non-zero.
type ParamCond struct{ Name string }

// Test implements Cond.
func (c ParamCond) Test(p *Params, _ int, _ float64) bool { return p.Value(c.Name) != 0 }

// FindProc returns the procedure named name and its enclosing file and
// module, or an error naming the missing procedure.
func (p *Program) FindProc(name string) (*Module, *File, *Proc, error) {
	for _, m := range p.Modules {
		for _, f := range m.Files {
			for _, pr := range f.Procs {
				if pr.Name == name {
					return m, f, pr, nil
				}
			}
		}
	}
	return nil, nil, nil, fmt.Errorf("prog: procedure %q not found", name)
}

// Procs returns every procedure in deterministic (module, file, decl)
// order.
func (p *Program) Procs() []*Proc {
	var out []*Proc
	for _, m := range p.Modules {
		for _, f := range m.Files {
			out = append(out, f.Procs...)
		}
	}
	return out
}

// Validate checks the program for dangling callees, duplicate procedure
// names, a missing entry point, and non-positive lines.
func (p *Program) Validate() error {
	if p.Entry == "" {
		return fmt.Errorf("prog: program %q has no entry procedure", p.Name)
	}
	seen := map[string]bool{}
	for _, m := range p.Modules {
		for _, f := range m.Files {
			for _, pr := range f.Procs {
				if seen[pr.Name] {
					return fmt.Errorf("prog: duplicate procedure %q", pr.Name)
				}
				seen[pr.Name] = true
			}
		}
	}
	if !seen[p.Entry] {
		return fmt.Errorf("prog: entry procedure %q not defined", p.Entry)
	}
	var missing []string
	for _, m := range p.Modules {
		for _, f := range m.Files {
			for _, pr := range f.Procs {
				if err := validateBody(pr.Name, pr.Body, seen, &missing); err != nil {
					return err
				}
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("prog: calls to undefined procedures: %v", missing)
	}
	return nil
}

func validateBody(proc string, body []Stmt, defined map[string]bool, missing *[]string) error {
	for _, s := range body {
		if s.SrcLine() <= 0 {
			return fmt.Errorf("prog: %s: statement with non-positive line %d", proc, s.SrcLine())
		}
		switch s := s.(type) {
		case Call:
			if !defined[s.Callee] {
				found := false
				for _, m := range *missing {
					if m == s.Callee {
						found = true
						break
					}
				}
				if !found {
					*missing = append(*missing, s.Callee)
				}
			}
		case Loop:
			if s.Trips == nil {
				return fmt.Errorf("prog: %s: loop at line %d has nil trip count", proc, s.Line)
			}
			if err := validateBody(proc, s.Body, defined, missing); err != nil {
				return err
			}
		case If:
			if s.Cond == nil {
				return fmt.Errorf("prog: %s: if at line %d has nil condition", proc, s.Line)
			}
			if err := validateBody(proc, s.Then, defined, missing); err != nil {
				return err
			}
			if err := validateBody(proc, s.Else, defined, missing); err != nil {
				return err
			}
		}
	}
	return nil
}
