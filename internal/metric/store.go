package metric

// Store is a columnar (struct-of-arrays) metric store: one contiguous
// []float64 slab per metric column per plane, indexed by dense row id. A
// tree allocates one row per scope, so the query hot paths — Equation 1/2
// recomputation, column sorts, derived-metric kernels, summary sweeps —
// become linear passes over contiguous memory instead of per-node sparse
// vector operations.
//
// Sparse-vector semantics are preserved at the API edge (View): zeros are
// indistinguishable from absent entries, negative zero is never stored, and
// Range/Len enumerate only non-zero cells in ascending column order, so the
// serialized form of a store-backed tree is byte-identical to the
// vector-backed one.
//
// Slabs grow lazily: a column's slab may be shorter than the row count
// (reads past the end are zero) and is only extended — zero-filled, with
// geometric capacity — when a row actually writes to it. AddRow is
// therefore allocation-free, which keeps tree construction cheap.
//
// Concurrency: a store is single-writer, like the node arena that owns it.
// Concurrent readers are safe once writes have ceased (the tree compute
// lock orders recomputation against view builds, exactly as before).

// Plane selects which of a scope's three metric flavors a column belongs
// to: directly attributed Base values, presented inclusive (Equation 2) or
// presented exclusive (Equation 1) costs.
type Plane uint8

const (
	PlaneBase Plane = iota
	PlaneIncl
	PlaneExcl
	numPlanes
)

// Store holds the column slabs. The zero value is not ready to use; call
// NewStore.
//
// Ownership: slabs are normally heap memory owned by the store, but a
// loader may install foreign memory — an mmap'd v3 column section — with
// AdoptCol(..., borrowed=true). Borrowed slabs are strictly read-only;
// every write path (Col, set, add, View.Reset) detaches them first by
// copying to owned heap memory (copy-on-write), so a mapped file's bytes
// can never be scribbled through the store.
type Store struct {
	rows   int
	planes [numPlanes][][]float64
	// borrowed marks columns whose slab aliases foreign read-only memory;
	// indexes parallel planes (absent entries mean owned).
	borrowed [numPlanes][]bool
}

// NewStore returns an empty store with no rows.
func NewStore() *Store { return &Store{} }

// NumRows reports how many rows have been allocated.
func (s *Store) NumRows() int { return s.rows }

// NumCols reports how many columns plane p has materialized. Columns appear
// on first write, in ascending id order (writes to column c materialize
// slots 0..c).
func (s *Store) NumCols(p Plane) int { return len(s.planes[p]) }

// AddRow claims the next dense row id without allocating: slabs are
// extended lazily when the row first writes to a column.
func (s *Store) AddRow() int32 {
	r := s.rows
	s.rows++
	return int32(r)
}

// Col returns plane p's slab for column col, materialized to the full
// current row count — the entry point for whole-column kernel sweeps.
// The slice is owned by the store: it is valid until the next row is added
// or the slab is grown by a write to a higher row.
func (s *Store) Col(p Plane, col int) []float64 {
	if s.rows == 0 {
		s.ensureCol(p, col)
		return nil
	}
	return s.slabFor(p, col, int32(s.rows-1))
}

// ColRead returns column col's slab exactly as currently materialized —
// possibly shorter than the row count, possibly nil — without growing
// anything. Unlike Col it never mutates the store, so concurrent readers
// (parallel view builds, sorts, hot-path queries over a finished tree) may
// call it freely; rows beyond its length read as zero.
func (s *Store) ColRead(p Plane, col int) []float64 {
	cols := s.planes[p]
	if col < 0 || col >= len(cols) {
		return nil
	}
	return cols[col]
}

// AdoptCol installs slab as column col of plane p, replacing whatever was
// there. With borrowed=true the slab is treated as foreign read-only memory
// (e.g. a float64 view over an mmap'd file section): reads serve it
// zero-copy and the first write detaches it by copying (see unborrow).
// The slab length fixes how many rows read from it; rows beyond read zero.
func (s *Store) AdoptCol(p Plane, col int, slab []float64, borrowed bool) {
	s.ensureCol(p, col)
	s.planes[p][col] = slab
	s.setBorrowed(p, col, borrowed)
}

// DetachCol drops column col of plane p entirely: reads return zero and the
// borrowed flag is cleared. Used to degrade a mapped column whose section
// failed its checksum.
func (s *Store) DetachCol(p Plane, col int) {
	if col >= 0 && col < len(s.planes[p]) {
		s.planes[p][col] = nil
		s.setBorrowed(p, col, false)
	}
}

// Borrowed reports whether column col of plane p currently aliases foreign
// memory (no write has detached it yet).
func (s *Store) Borrowed(p Plane, col int) bool {
	bs := s.borrowed[p]
	return col >= 0 && col < len(bs) && bs[col]
}

func (s *Store) setBorrowed(p Plane, col int, v bool) {
	bs := s.borrowed[p]
	if !v && col >= len(bs) {
		return
	}
	for col >= len(bs) {
		bs = append(bs, false)
	}
	bs[col] = v
	s.borrowed[p] = bs
}

// unborrow detaches a borrowed slab by copying it to owned heap memory —
// the copy-on-write step guarding every store write path.
func (s *Store) unborrow(p Plane, col int) {
	slab := s.planes[p][col]
	owned := make([]float64, len(slab))
	copy(owned, slab)
	s.planes[p][col] = owned
	s.setBorrowed(p, col, false)
}

func (s *Store) get(p Plane, col int, row int32) float64 {
	cols := s.planes[p]
	if col < 0 || col >= len(cols) {
		return 0
	}
	slab := cols[col]
	if int(row) >= len(slab) {
		return 0
	}
	return slab[row]
}

// set stores x, normalizing zero: sparse vectors delete entries that reach
// zero, so a negative zero (e.g. from `$0 * -1` at a blank cell) was never
// observable — the slab must not make it so. Writing a zero to a row the
// slab has not reached stays free.
func (s *Store) set(p Plane, col int, row int32, x float64) {
	if x == 0 {
		cols := s.planes[p]
		if col >= 0 && col < len(cols) {
			if slab := cols[col]; int(row) < len(slab) && slab[row] != 0 {
				if s.Borrowed(p, col) {
					s.unborrow(p, col)
				}
				s.planes[p][col][row] = 0
			}
		}
		return
	}
	s.slabFor(p, col, row)[row] = x
}

func (s *Store) add(p Plane, col int, row int32, x float64) {
	if x == 0 {
		return
	}
	s.slabFor(p, col, row)[row] += x
}

func (s *Store) ensureCol(p Plane, col int) {
	cols := s.planes[p]
	for col >= len(cols) {
		cols = append(cols, nil)
	}
	s.planes[p] = cols
}

// slabFor returns column col of plane p with length at least row+1,
// zero-filling and growing capacity geometrically as needed. Go heap
// allocations are zeroed through their full capacity and slabs never
// shrink, so re-slicing within capacity exposes only zeros.
func (s *Store) slabFor(p Plane, col int, row int32) []float64 {
	s.ensureCol(p, col)
	if s.Borrowed(p, col) {
		s.unborrow(p, col)
	}
	slab := s.planes[p][col]
	if n := int(row) + 1; n > len(slab) {
		if n > cap(slab) {
			c := 2 * cap(slab)
			if c < 64 {
				c = 64
			}
			if c < n {
				c = n
			}
			grown := make([]float64, n, c)
			copy(grown, slab)
			slab = grown
		} else {
			slab = slab[:n]
		}
		s.planes[p][col] = slab
	}
	return slab
}

// View is a scope's handle on one plane of a store row. It exposes the
// sparse Vector API — Get/Set/Add/Range/Clone and friends — over the
// columnar slabs, so node-at-a-time code is unchanged while column sweeps
// go straight to the slabs.
//
// The zero View (no store) backs itself by a lazily allocated private
// Vector, so hand-built nodes outside any tree keep working. A View must
// not be moved to a different tree: slab views never alias across trees
// (each tree, callers-view root and flat view owns a private store).
type View struct {
	s    *Store
	priv *Vector
	row  int32
	p    Plane
}

// NewView binds a view to one plane of a store row.
func NewView(s *Store, p Plane, row int32) View { return View{s: s, p: p, row: row} }

// Store returns the backing store (nil for a private-vector view).
func (v *View) Store() *Store { return v.s }

// Row returns the dense row id within the backing store.
func (v *View) Row() int32 { return v.row }

func (v *View) vec() *Vector {
	if v.priv == nil {
		v.priv = &Vector{}
	}
	return v.priv
}

// Get returns the value in column id (zero if absent).
func (v *View) Get(id int) float64 {
	if v.s != nil {
		return v.s.get(v.p, id, v.row)
	}
	if v.priv == nil {
		return 0
	}
	return v.priv.Get(id)
}

// Has reports whether column id holds a non-zero value.
func (v *View) Has(id int) bool { return v.Get(id) != 0 }

// Set stores x in column id; zero clears the cell.
func (v *View) Set(id int, x float64) {
	if v.s != nil {
		v.s.set(v.p, id, v.row, x)
		return
	}
	v.vec().Set(id, x)
}

// Add adds x to column id.
func (v *View) Add(id int, x float64) {
	if x == 0 {
		return
	}
	if v.s != nil {
		v.s.add(v.p, id, v.row, x)
		return
	}
	v.vec().Add(id, x)
}

// AddVector adds every entry of o.
func (v *View) AddVector(o *Vector) {
	if o == nil {
		return
	}
	if v.s == nil {
		v.vec().AddVector(o)
		return
	}
	for i, id := range o.ids {
		v.s.add(v.p, int(id), v.row, o.vals[i])
	}
}

// AddView adds every non-zero entry of o, in ascending column order.
func (v *View) AddView(o *View) {
	if o == nil {
		return
	}
	if o.s == nil {
		if o.priv != nil {
			v.AddVector(o.priv)
		}
		return
	}
	row := int(o.row)
	for id, slab := range o.s.planes[o.p] {
		if row < len(slab) {
			if x := slab[row]; x != 0 {
				v.Add(id, x)
			}
		}
	}
}

// Range calls f for every non-zero entry in ascending column order.
func (v *View) Range(f func(id int, x float64)) {
	if v.s == nil {
		if v.priv != nil {
			v.priv.Range(f)
		}
		return
	}
	row := int(v.row)
	for id, slab := range v.s.planes[v.p] {
		if row < len(slab) {
			if x := slab[row]; x != 0 {
				f(id, x)
			}
		}
	}
}

// Len reports the number of non-zero entries.
func (v *View) Len() int {
	if v.s == nil {
		if v.priv == nil {
			return 0
		}
		return v.priv.Len()
	}
	n := 0
	row := int(v.row)
	for _, slab := range v.s.planes[v.p] {
		if row < len(slab) && slab[row] != 0 {
			n++
		}
	}
	return n
}

// IsZero reports whether the view has no non-zero entries.
func (v *View) IsZero() bool {
	if v.s == nil {
		return v.priv == nil || v.priv.IsZero()
	}
	row := int(v.row)
	for _, slab := range v.s.planes[v.p] {
		if row < len(slab) && slab[row] != 0 {
			return false
		}
	}
	return true
}

// Reset clears every entry.
func (v *View) Reset() {
	if v.s == nil {
		if v.priv != nil {
			*v.priv = Vector{}
		}
		return
	}
	row := int(v.row)
	for id, slab := range v.s.planes[v.p] {
		if row < len(slab) && slab[row] != 0 {
			// Route through set so a borrowed (mapped) slab is detached
			// before the write.
			v.s.set(v.p, id, v.row, 0)
		}
	}
}

// SetVector replaces the view's contents with o's entries.
func (v *View) SetVector(o *Vector) {
	v.Reset()
	if o == nil {
		return
	}
	for i, id := range o.ids {
		v.Set(int(id), o.vals[i])
	}
}

// Clone returns the view's entries as an independent sparse Vector.
func (v *View) Clone() *Vector {
	if v.s == nil {
		if v.priv == nil {
			return &Vector{}
		}
		return v.priv.Clone()
	}
	c := &Vector{}
	n := v.Len()
	if n > 0 {
		c.ids = make([]int32, 0, n)
		c.vals = make([]float64, 0, n)
		row := int(v.row)
		for id, slab := range v.s.planes[v.p] {
			if row < len(slab) {
				if x := slab[row]; x != 0 {
					c.ids = append(c.ids, int32(id))
					c.vals = append(c.vals, x)
				}
			}
		}
	}
	return c
}

// CloneValue returns the view's entries as an independent Vector value.
func (v *View) CloneValue() Vector {
	if v.s == nil {
		if v.priv == nil {
			return Vector{}
		}
		return v.priv.CloneValue()
	}
	return *v.Clone()
}

// Grow pre-sizes a private-vector view for n additional entries; a no-op
// for store-backed views, whose slabs grow lazily per column.
func (v *View) Grow(n int) {
	if v.s != nil {
		return
	}
	v.vec().Grow(n)
}

// String renders the view for debugging, e.g. "{0:12 2:3.5}".
func (v *View) String() string {
	if v.s == nil {
		if v.priv == nil {
			return "{}"
		}
		return v.priv.String()
	}
	c := v.Clone()
	return c.String()
}
