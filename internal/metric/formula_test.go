package metric

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

type cols []float64

func (c cols) Column(id int) float64 {
	if id < 0 || id >= len(c) {
		return 0
	}
	return c[id]
}

func evalOK(t *testing.T, src string, env Env) float64 {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

// mustEval evaluates an expression that is known to be valid.
func mustEval(e *Expr, env Env) float64 {
	v, err := e.Eval(env)
	if err != nil {
		panic(err)
	}
	return v
}

func TestFormulaArithmetic(t *testing.T) {
	env := cols{10, 3, 2}
	tests := []struct {
		src  string
		want float64
	}{
		{"1+2", 3},
		{"2*3+4", 10},
		{"2+3*4", 14},
		{"(2+3)*4", 20},
		{"10-2-3", 5},   // left associative
		{"100/10/2", 5}, // left associative
		{"2^3^2", 512},  // right associative
		{"-$0", -10},
		{"--4", 4},
		{"$0*$1 - $2", 28},
		{"$0 / $1", 10.0 / 3},
		{"$9", 0}, // absent column is zero
		{"1.5e2", 150},
		{"2.5E-1", 0.25},
		{"min(3, 1, 2)", 1},
		{"max($0, $1, 7)", 10},
		{"abs(-3)", 3},
		{"sqrt(16)", 4},
		{"pow(2, 10)", 1024},
		{"exp(0)", 1},
		{"log(1)", 0},
		{"log(0)", 0},        // clamped
		{"log(-5)", 0},       // clamped
		{"$0 / ($1 - 3)", 0}, // divide by zero -> 0, not Inf
	}
	for _, tc := range tests {
		if got := evalOK(t, tc.src, env); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%q = %g, want %g", tc.src, got, tc.want)
		}
	}
}

func TestFormulaFloatingPointWasteRecipe(t *testing.T) {
	// The paper's Section V-D waste metric:
	// cycles * peak_flops_per_cycle - flops, with $0=cycles, $1=flops.
	env := cols{1000, 1500}
	if got := evalOK(t, "$0*4 - $1", env); got != 2500 {
		t.Fatalf("waste = %g, want 2500", got)
	}
	// relative efficiency = flops / (cycles*peak)
	if got := evalOK(t, "$1 / ($0*4)", env); math.Abs(got-0.375) > 1e-12 {
		t.Fatalf("efficiency = %g, want 0.375", got)
	}
}

func TestFormulaErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"$",
		"$x",
		"(1",
		"1)",
		"foo(1)",
		"min()",
		"pow(1)",
		"pow(1,2,3)",
		"abs(1,2)",
		"1 2",
		"#",
		"$0 $1",
		"min(1,)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestFormulaColumnRefs(t *testing.T) {
	e, err := Parse("$3 + $1*$3 - min($0, $5)")
	if err != nil {
		t.Fatal(err)
	}
	got := e.ColumnRefs()
	want := []int{0, 1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("refs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("refs = %v, want %v", got, want)
		}
	}
}

func TestFormulaStringRoundTrip(t *testing.T) {
	src := "$0*4 - $1"
	e := MustParse(src)
	if e.String() != src {
		t.Fatalf("String() = %q, want %q", e.String(), src)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of invalid formula did not panic")
		}
	}()
	MustParse("((")
}

// Property: parsing never panics and evaluation of a successfully parsed
// formula over finite inputs never yields NaN from division (we clamp /0).
func TestFormulaDivisionNeverNaN(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return true
		}
		e := MustParse("$0 / $1 + $2 / ($0 - $0)")
		got := mustEval(e, cols{a, b, c})
		return !math.IsNaN(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: formula (a+b)*c == a*c + b*c for integer-valued columns
// (distributivity holds exactly for small integers in float64).
func TestFormulaDistributivity(t *testing.T) {
	left := MustParse("($0 + $1) * $2")
	right := MustParse("$0*$2 + $1*$2")
	f := func(a, b, c int16) bool {
		env := cols{float64(a), float64(b), float64(c)}
		return mustEval(left, env) == mustEval(right, env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Evaluation errors are typed, not panics: a hand-built expression tree
// with an operator or function the evaluator does not implement must
// surface an *EvalError carrying the formula source.
func TestEvalErrorsAreTyped(t *testing.T) {
	env := cols{1, 2, 3}
	badOp := &Expr{root: binNode{op: '%', l: numNode(1), r: numNode(2)}, src: "1%2"}
	if _, err := badOp.Eval(env); err == nil {
		t.Fatal("unknown operator evaluated without error")
	} else {
		var ee *EvalError
		if !errors.As(err, &ee) {
			t.Fatalf("unknown operator error is %T, want *EvalError", err)
		}
		if ee.Formula != "1%2" {
			t.Fatalf("EvalError.Formula = %q, want the expression source", ee.Formula)
		}
	}
	badFn := &Expr{root: callNode{name: "median", args: []node{numNode(1)}}, src: "median(1)"}
	if _, err := badFn.Eval(env); err == nil {
		t.Fatal("unknown function evaluated without error")
	} else if !strings.Contains(err.Error(), "median") {
		t.Fatalf("error does not name the function: %v", err)
	}
	// The error must also propagate out of nested expressions.
	nested := &Expr{root: binNode{op: '+', l: numNode(1), r: callNode{name: "median", args: []node{numNode(1)}}}, src: "1+median(1)"}
	if _, err := nested.Eval(env); err == nil {
		t.Fatal("nested unknown function evaluated without error")
	}
}
