package metric

import (
	"fmt"
	"math"
)

// A Program is a derived-metric formula compiled once into a small postfix
// stack program, so evaluation over a whole metric column is a tight loop
// over slabs instead of a per-scope walk of the expression tree. The
// instruction semantics mirror the tree evaluator exactly — same operand
// order, same divide-by-zero and log-domain conventions, left fold for
// variadic min/max — so compiled and interpreted evaluation are bitwise
// identical.

type opCode uint8

const (
	opConst opCode = iota // push val
	opCol                 // push column refs[n]
	opNeg                 // negate top
	opAdd                 // pop b, a; push a+b
	opSub                 // pop b, a; push a-b
	opMul                 // pop b, a; push a*b
	opDiv                 // pop b, a; push a/b (0 when b == 0)
	opPow                 // pop b, a; push pow(a, b)
	opAbs                 // abs(top)
	opSqrt                // sqrt(top)
	opLog                 // log(top), 0 for top <= 0
	opExp                 // exp(top)
	opMin                 // pop n args; push left-fold min
	opMax                 // pop n args; push left-fold max
)

type instr struct {
	op  opCode
	n   int32   // opCol: index into refs; opMin/opMax: argument count
	val float64 // opConst
}

// Program is a compiled formula.
type Program struct {
	code  []instr
	refs  []int // referenced column ids, ascending (shared with the Expr)
	depth int   // maximum evaluation stack depth
}

// ColumnRefs returns the distinct column ids the program reads, ascending.
// The slice is shared; callers must not modify it.
func (p *Program) ColumnRefs() []int { return p.refs }

// Compile lowers the expression to a stack program. Expressions produced by
// Parse always compile; hand-built trees with an operator or function the
// evaluator does not implement return the same *EvalError their tree
// evaluation would.
func (e *Expr) Compile() (*Program, error) {
	p := &Program{refs: e.refs}
	refIdx := make(map[int]int32, len(e.refs))
	for i, r := range e.refs {
		refIdx[r] = int32(i)
	}
	cur, max := 0, 0
	push := func(in instr, delta int) {
		p.code = append(p.code, in)
		cur += delta
		if cur > max {
			max = cur
		}
	}
	var emit func(n node) error
	emit = func(n node) error {
		switch n := n.(type) {
		case numNode:
			push(instr{op: opConst, val: float64(n)}, 1)
		case colNode:
			push(instr{op: opCol, n: refIdx[int(n)]}, 1)
		case unaryNode:
			if err := emit(n.x); err != nil {
				return err
			}
			push(instr{op: opNeg}, 0)
		case binNode:
			if err := emit(n.l); err != nil {
				return err
			}
			if err := emit(n.r); err != nil {
				return err
			}
			var op opCode
			switch n.op {
			case '+':
				op = opAdd
			case '-':
				op = opSub
			case '*':
				op = opMul
			case '/':
				op = opDiv
			case '^':
				op = opPow
			default:
				return &EvalError{Formula: e.src, Detail: fmt.Sprintf("unknown operator %q", string(n.op))}
			}
			push(instr{op: op}, -1)
		case callNode:
			for _, a := range n.args {
				if err := emit(a); err != nil {
					return err
				}
			}
			switch n.name {
			case "abs":
				push(instr{op: opAbs}, 0)
			case "sqrt":
				push(instr{op: opSqrt}, 0)
			case "log":
				push(instr{op: opLog}, 0)
			case "exp":
				push(instr{op: opExp}, 0)
			case "pow":
				push(instr{op: opPow}, -1)
			case "min":
				push(instr{op: opMin, n: int32(len(n.args))}, -(len(n.args) - 1))
			case "max":
				push(instr{op: opMax, n: int32(len(n.args))}, -(len(n.args) - 1))
			default:
				return &EvalError{Formula: e.src, Detail: fmt.Sprintf("unknown function %q", n.name)}
			}
		default:
			return &EvalError{Formula: e.src, Detail: "unknown expression node"}
		}
		return nil
	}
	if err := emit(e.root); err != nil {
		return nil, err
	}
	p.depth = max
	return p, nil
}

// step executes the program over one row's column values: vals[i] holds the
// value of column ColumnRefs()[i]. The stack must have at least depth slots.
func (p *Program) step(stack, vals []float64) float64 {
	sp := 0
	for _, in := range p.code {
		switch in.op {
		case opConst:
			stack[sp] = in.val
			sp++
		case opCol:
			stack[sp] = vals[in.n]
			sp++
		case opNeg:
			stack[sp-1] = -stack[sp-1]
		case opAdd:
			stack[sp-2] += stack[sp-1]
			sp--
		case opSub:
			stack[sp-2] -= stack[sp-1]
			sp--
		case opMul:
			stack[sp-2] *= stack[sp-1]
			sp--
		case opDiv:
			if stack[sp-1] == 0 {
				stack[sp-2] = 0
			} else {
				stack[sp-2] /= stack[sp-1]
			}
			sp--
		case opPow:
			stack[sp-2] = math.Pow(stack[sp-2], stack[sp-1])
			sp--
		case opAbs:
			stack[sp-1] = math.Abs(stack[sp-1])
		case opSqrt:
			stack[sp-1] = math.Sqrt(stack[sp-1])
		case opLog:
			if stack[sp-1] <= 0 {
				stack[sp-1] = 0
			} else {
				stack[sp-1] = math.Log(stack[sp-1])
			}
		case opExp:
			stack[sp-1] = math.Exp(stack[sp-1])
		case opMin:
			k := int(in.n)
			m := stack[sp-k]
			for _, v := range stack[sp-k+1 : sp] {
				m = math.Min(m, v)
			}
			sp -= k - 1
			stack[sp-1] = m
		case opMax:
			k := int(in.n)
			m := stack[sp-k]
			for _, v := range stack[sp-k+1 : sp] {
				m = math.Max(m, v)
			}
			sp -= k - 1
			stack[sp-1] = m
		}
	}
	return stack[sp-1]
}

// evalStackSize is the fixed stack that covers every realistic formula; a
// deeper program falls back to one heap slab per call. evalRefsSize bounds
// the stack-resident prefetch buffer the same way.
const (
	evalStackSize = 16
	evalRefsSize  = 8
)

// EvalEnv evaluates the program for one scope with column values from env.
// Bitwise-identical to Expr.Eval on the same formula.
func (p *Program) EvalEnv(env Env) float64 {
	var sbuf [evalStackSize]float64
	var vbuf [evalRefsSize]float64
	stack, vals := sbuf[:], vbuf[:]
	if p.depth > len(stack) {
		stack = make([]float64, p.depth)
	}
	if len(p.refs) > len(vals) {
		vals = make([]float64, len(p.refs))
	}
	for i, id := range p.refs {
		vals[i] = env.Column(id)
	}
	v := p.step(stack, vals)
	if v == 0 {
		return 0 // normalize -0, which a sparse vector never stores
	}
	return v
}

// EvalCols runs the program as a vectorized kernel: dst[r] is the program
// applied to row r of the prefetched column slabs (cols[i] holds the column
// ColumnRefs()[i], at least len(dst) long). Steady-state evaluation is
// allocation-free.
func (p *Program) EvalCols(dst []float64, cols [][]float64) {
	var sbuf [evalStackSize]float64
	var vbuf [evalRefsSize]float64
	stack, vals := sbuf[:], vbuf[:]
	if p.depth > len(stack) {
		stack = make([]float64, p.depth)
	}
	if len(cols) > len(vals) {
		vals = make([]float64, len(cols))
	}
	for r := range dst {
		for i, c := range cols {
			vals[i] = c[r]
		}
		v := p.step(stack, vals)
		if v == 0 {
			v = 0 // normalize -0
		}
		dst[r] = v
	}
}
