package metric

import "testing"

// Vector's fast paths keep the metric hot loops allocation-free; pin them.

func TestAddHitAllocs(t *testing.T) {
	var v Vector
	v.Add(0, 1)
	if n := testing.AllocsPerRun(1000, func() { v.Add(0, 1) }); n != 0 {
		t.Errorf("Add to existing column allocates %v/op, want 0", n)
	}
}

func TestAddAppendWithinCapacityAllocs(t *testing.T) {
	var v Vector
	id := 0
	v.Grow(2048)
	if n := testing.AllocsPerRun(1000, func() {
		id++
		v.Add(id, 1)
	}); n != 0 {
		t.Errorf("Add append within capacity allocates %v/op, want 0", n)
	}
}

func TestAddVectorAlignedAllocs(t *testing.T) {
	var v, o Vector
	o.Add(0, 1)
	o.Add(3, 2)
	v.AddVector(&o)
	if n := testing.AllocsPerRun(1000, func() { v.AddVector(&o) }); n != 0 {
		t.Errorf("AddVector over identical id sets allocates %v/op, want 0", n)
	}
}

func TestAddVectorDisjointAppendAllocs(t *testing.T) {
	var v, o Vector
	v.Add(0, 1)
	v.Grow(2048)
	o.Add(1, 1)
	// v's tail id stays below o's head id, so every run takes the append
	// path; with capacity in place it never allocates.
	if n := testing.AllocsPerRun(1000, func() {
		v.ids = v.ids[:1]
		v.vals = v.vals[:1]
		v.AddVector(&o)
	}); n != 0 {
		t.Errorf("AddVector disjoint append allocates %v/op, want 0", n)
	}
}

func TestAddVectorIntoEmptySingleCopy(t *testing.T) {
	var o Vector
	o.Add(0, 1)
	o.Add(5, 2)
	// One allocation per backing slice (ids, vals): the copy is pre-sized.
	if n := testing.AllocsPerRun(1000, func() {
		var v Vector
		v.AddVector(&o)
	}); n > 2 {
		t.Errorf("AddVector into empty vector allocates %v/op, want <= 2", n)
	}
}
