package metric

import "math"

// Stats accumulates streaming summary statistics for one metric at one
// scope: sum, mean, min, max and standard deviation, using Welford's online
// algorithm so that thousands of per-process values never need to be held
// in memory at once (Section VII of the paper: "we summarize metrics of all
// processors into mean, covariance, min and max, instead of displaying
// thousands of metrics").
//
// The zero Stats is ready to use.
type Stats struct {
	N    int64
	Sum  float64
	Min  float64
	Max  float64
	mean float64
	m2   float64
}

// Observe folds one value into the statistics.
func (s *Stats) Observe(x float64) {
	s.N++
	s.Sum += x
	if s.N == 1 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.N)
	s.m2 += delta * (x - s.mean)
}

// Merge combines another accumulator into s (parallel Welford / Chan et al.),
// so per-rank partial summaries can be reduced in any order.
func (s *Stats) Merge(o Stats) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	n := s.N + o.N
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*float64(s.N)*float64(o.N)/float64(n)
	s.mean += delta * float64(o.N) / float64(n)
	s.Sum += o.Sum
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.N = n
}

// Mean returns the arithmetic mean (zero when empty).
func (s *Stats) Mean() float64 { return s.mean }

// Variance returns the population variance (zero when N < 2).
func (s *Stats) Variance() float64 {
	if s.N < 2 {
		return 0
	}
	return s.m2 / float64(s.N)
}

// StdDev returns the population standard deviation.
func (s *Stats) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Value reports the statistic selected by op.
func (s *Stats) Value(op SummaryOp) float64 {
	switch op {
	case OpSum:
		return s.Sum
	case OpMean:
		return s.Mean()
	case OpMin:
		if s.N == 0 {
			return 0
		}
		return s.Min
	case OpMax:
		if s.N == 0 {
			return 0
		}
		return s.Max
	case OpStdDev:
		return s.StdDev()
	}
	return 0
}

// ImbalanceFactor returns max/mean - 1, a standard load-imbalance measure:
// 0 means perfectly balanced; 1 means the slowest rank does twice the mean
// work. Returns 0 when empty or the mean is zero.
func (s *Stats) ImbalanceFactor() float64 {
	m := s.Mean()
	if s.N == 0 || m == 0 {
		return 0
	}
	return s.Max/m - 1
}
