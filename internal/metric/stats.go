package metric

import "math"

// Stats accumulates streaming summary statistics for one metric at one
// scope: sum, mean, min, max and standard deviation, so that thousands of
// per-process values never need to be held in memory at once (Section VII
// of the paper: "we summarize metrics of all processors into mean,
// covariance, min and max, instead of displaying thousands of metrics").
//
// The accumulator keeps exact moments (count, sum, sum of squares) rather
// than Welford's recurrence. Welford is numerically gentler in the general
// case, but its combine step (Chan et al.) rounds differently than its
// sequential update, so reducing per-shard accumulators pairwise produced
// summary values that differed from the -jobs 1 fold in the last mantissa
// bits. Moment addition is plain float64 '+': metric samples are
// integer-valued and their squares and partial sums stay well inside the
// 2^53 exact-integer range for any realistic rank count, so Observe folds
// and Merge reductions are exact — hence bitwise identical — under every
// association. This is the same invariant the parallel merge already relies
// on for the metric sums themselves.
//
// The zero Stats is ready to use.
type Stats struct {
	N     int64
	Sum   float64
	Min   float64
	Max   float64
	sumsq float64
}

// Observe folds one value into the statistics.
func (s *Stats) Observe(x float64) {
	s.N++
	s.Sum += x
	s.sumsq += x * x
	if s.N == 1 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
}

// Merge combines another accumulator into s. Every field update is an exact
// associative operation on integer-valued data (addition of exactly
// representable sums, min, max), so per-rank partial summaries reduce to
// the same bits in any order — pairwise trees included.
func (s *Stats) Merge(o Stats) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	s.N += o.N
	s.Sum += o.Sum
	s.sumsq += o.sumsq
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Mean returns the arithmetic mean (zero when empty).
func (s *Stats) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Variance returns the population variance (zero when N < 2). The
// moment-form E[x²] − E[x]² can dip fractionally below zero from rounding;
// it is clamped so StdDev never produces NaN.
func (s *Stats) Variance() float64 {
	if s.N < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumsq/float64(s.N) - m*m
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Stats) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Value reports the statistic selected by op.
func (s *Stats) Value(op SummaryOp) float64 {
	switch op {
	case OpSum:
		return s.Sum
	case OpMean:
		return s.Mean()
	case OpMin:
		if s.N == 0 {
			return 0
		}
		return s.Min
	case OpMax:
		if s.N == 0 {
			return 0
		}
		return s.Max
	case OpStdDev:
		return s.StdDev()
	}
	return 0
}

// ImbalanceFactor returns max/mean - 1, a standard load-imbalance measure:
// 0 means perfectly balanced; 1 means the slowest rank does twice the mean
// work. Returns 0 when empty or the mean is zero.
func (s *Stats) ImbalanceFactor() float64 {
	m := s.Mean()
	if s.N == 0 || m == 0 {
		return 0
	}
	return s.Max/m - 1
}
