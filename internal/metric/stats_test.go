package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

func TestStatsBasics(t *testing.T) {
	var s Stats
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.N != 8 || s.Sum != 40 {
		t.Fatalf("N=%d Sum=%g", s.N, s.Sum)
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %g, want 5", s.Mean())
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min=%g Max=%g", s.Min, s.Max)
	}
	if got := s.StdDev(); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %g, want 2", got)
	}
}

func TestStatsEmpty(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.StdDev() != 0 || s.Value(OpMin) != 0 || s.Value(OpMax) != 0 {
		t.Fatal("empty stats should report zeros")
	}
	if s.ImbalanceFactor() != 0 {
		t.Fatal("empty imbalance should be 0")
	}
}

func TestStatsSingle(t *testing.T) {
	var s Stats
	s.Observe(3)
	if s.Mean() != 3 || s.Min != 3 || s.Max != 3 || s.StdDev() != 0 {
		t.Fatalf("single-value stats wrong: %+v", s)
	}
}

func TestStatsValueDispatch(t *testing.T) {
	var s Stats
	s.Observe(1)
	s.Observe(3)
	cases := []struct {
		op   SummaryOp
		want float64
	}{
		{OpSum, 4}, {OpMean, 2}, {OpMin, 1}, {OpMax, 3}, {OpStdDev, 1}, {OpNone, 0},
	}
	for _, c := range cases {
		if got := s.Value(c.op); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Value(%v) = %g, want %g", c.op, got, c.want)
		}
	}
}

func TestStatsImbalanceFactor(t *testing.T) {
	var s Stats
	for _, x := range []float64{10, 10, 10, 20} {
		s.Observe(x)
	}
	// mean = 12.5, max = 20 -> 20/12.5 - 1 = 0.6
	if got := s.ImbalanceFactor(); !almostEqual(got, 0.6, 1e-12) {
		t.Fatalf("ImbalanceFactor = %g, want 0.6", got)
	}
	var balanced Stats
	for i := 0; i < 5; i++ {
		balanced.Observe(7)
	}
	if got := balanced.ImbalanceFactor(); got != 0 {
		t.Fatalf("balanced ImbalanceFactor = %g, want 0", got)
	}
}

func TestStatsMergeIdentity(t *testing.T) {
	var a, b Stats
	b.Observe(5)
	b.Observe(7)
	a.Merge(b)
	if a.N != 2 || a.Mean() != 6 {
		t.Fatalf("merge into empty: %+v", a)
	}
	saved := a
	a.Merge(Stats{})
	if a != saved {
		t.Fatal("merging empty changed accumulator")
	}
}

// Property: merging partial accumulators gives the same result as observing
// the concatenated stream.
func TestStatsMergeEquivalentToObserve(t *testing.T) {
	f := func(seed int64, splitRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
		}
		split := int(splitRaw) % n
		var whole, left, right Stats
		for _, x := range xs {
			whole.Observe(x)
		}
		for _, x := range xs[:split] {
			left.Observe(x)
		}
		for _, x := range xs[split:] {
			right.Observe(x)
		}
		left.Merge(right)
		return left.N == whole.N &&
			almostEqual(left.Sum, whole.Sum, 1e-9) &&
			almostEqual(left.Mean(), whole.Mean(), 1e-9) &&
			almostEqual(left.Variance(), whole.Variance(), 1e-6) &&
			left.Min == whole.Min && left.Max == whole.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is never negative and stddev is finite for finite
// inputs.
func TestStatsVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		var s Stats
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// clamp magnitude so the quadratic does not overflow
			s.Observe(math.Mod(x, 1e9))
		}
		return s.Variance() >= 0 && !math.IsNaN(s.StdDev())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
