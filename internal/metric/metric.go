// Package metric provides the metric machinery used throughout the toolkit:
// metric descriptors, sparse per-scope metric vectors, a spreadsheet-like
// formula engine for derived metrics (Section V-D of the paper), and
// streaming summary statistics used when merging profiles from many
// processes (Sections IV and VII).
//
// A metric is identified by its column index in a Registry; formulas refer
// to columns as $0, $1, ... exactly as hpcviewer does.
package metric

import (
	"fmt"
	"sort"
	"sync"
)

// Kind classifies how a metric column obtains its values.
type Kind uint8

const (
	// Raw metrics come directly from sample counts multiplied by the
	// sample period (e.g. PAPI_TOT_CYC).
	Raw Kind = iota
	// Derived metrics are computed from other columns with a Formula.
	Derived
	// Summary metrics are statistical reductions (mean, min, max, stddev)
	// of a raw metric across processes or threads.
	Summary
	// Computed metrics hold values produced by an external analysis
	// (e.g. scaling-loss differencing of two experiments); unlike
	// Derived columns they are not re-evaluated from a formula.
	Computed
)

func (k Kind) String() string {
	switch k {
	case Raw:
		return "raw"
	case Derived:
		return "derived"
	case Summary:
		return "summary"
	case Computed:
		return "computed"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// SummaryOp identifies which statistic a Summary metric reports.
type SummaryOp uint8

const (
	OpNone SummaryOp = iota
	OpSum
	OpMean
	OpMin
	OpMax
	OpStdDev
)

func (op SummaryOp) String() string {
	switch op {
	case OpNone:
		return ""
	case OpSum:
		return "sum"
	case OpMean:
		return "mean"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpStdDev:
		return "stddev"
	}
	return fmt.Sprintf("SummaryOp(%d)", uint8(op))
}

// Desc describes one metric column.
type Desc struct {
	// ID is the column index within the registry that owns this metric.
	ID int
	// Name is the user-visible column name, e.g. "PAPI_TOT_CYC".
	Name string
	// Unit is a human-readable unit, e.g. "cycles".
	Unit string
	// Kind says whether the column is raw, derived or a summary.
	Kind Kind
	// Period is the sampling period for raw metrics: each sample
	// contributes Period events. Zero for non-raw metrics.
	Period uint64
	// Formula is the derived-metric expression for Derived columns.
	Formula string
	// Op is the statistic reported by Summary columns.
	Op SummaryOp
	// Source is the raw column a Summary column reduces, by ID.
	Source int
	// ShowPercent requests a percent-of-root annotation when rendered.
	ShowPercent bool

	// compileMu guards the lazy expr/prog compilation below: descriptors of
	// a loaded database are shared read-only by every session over it, and
	// two sessions may demand the compiled form of the same formula at once.
	compileMu sync.Mutex
	expr      *Expr    // compiled formula, for Derived columns
	prog      *Program // stack program lowered from expr, compiled on first use
}

// Registry is an ordered set of metric columns. The zero value is ready to
// use.
type Registry struct {
	cols   []*Desc
	byName map[string]*Desc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]*Desc{}} }

// Len reports the number of columns.
func (r *Registry) Len() int { return len(r.cols) }

// Columns returns the descriptors in column order. The slice is shared;
// callers must not modify it.
func (r *Registry) Columns() []*Desc { return r.cols }

// ByID returns the descriptor for column id, or nil if out of range.
func (r *Registry) ByID(id int) *Desc {
	if id < 0 || id >= len(r.cols) {
		return nil
	}
	return r.cols[id]
}

// ByName returns the descriptor with the given name, or nil.
func (r *Registry) ByName(name string) *Desc {
	if r.byName == nil {
		return nil
	}
	return r.byName[name]
}

func (r *Registry) add(d *Desc) (*Desc, error) {
	if d.Name == "" {
		return nil, fmt.Errorf("metric: empty metric name")
	}
	if r.byName == nil {
		r.byName = map[string]*Desc{}
	}
	if _, dup := r.byName[d.Name]; dup {
		return nil, fmt.Errorf("metric: duplicate metric %q", d.Name)
	}
	d.ID = len(r.cols)
	r.cols = append(r.cols, d)
	r.byName[d.Name] = d
	return d, nil
}

// AddRaw registers a raw sampled metric with the given sampling period.
func (r *Registry) AddRaw(name, unit string, period uint64) (*Desc, error) {
	if period == 0 {
		return nil, fmt.Errorf("metric: raw metric %q needs a non-zero period", name)
	}
	return r.add(&Desc{Name: name, Unit: unit, Kind: Raw, Period: period, ShowPercent: true})
}

// AddDerived registers a derived metric computed by formula. The formula is
// compiled immediately; compilation errors are returned.
func (r *Registry) AddDerived(name, formula string) (*Desc, error) {
	expr, err := Parse(formula)
	if err != nil {
		return nil, fmt.Errorf("metric: derived metric %q: %w", name, err)
	}
	// Validate column references against columns registered so far. A
	// derived metric may only refer to earlier columns; this both matches
	// hpcviewer's incremental column model and rules out cycles.
	for _, ref := range expr.ColumnRefs() {
		if ref < 0 || ref >= len(r.cols) {
			return nil, fmt.Errorf("metric: derived metric %q refers to unknown column $%d", name, ref)
		}
	}
	return r.add(&Desc{Name: name, Kind: Derived, Formula: formula, expr: expr})
}

// AddComputed registers a column whose values an external analysis fills
// in directly (e.g. scaling loss). Such values are serialized verbatim by
// the experiment database rather than recomputed at load.
func (r *Registry) AddComputed(name, unit string) (*Desc, error) {
	return r.add(&Desc{Name: name, Unit: unit, Kind: Computed})
}

// Clone returns a registry sharing the receiver's column descriptors but
// owning its own column list and name index: columns added to the clone are
// invisible to the original (and vice versa — but the original must not gain
// columns after cloning, or IDs would collide). This is how a presentation
// session overlays private derived columns on a shared, sealed database
// registry without mutating it.
func (r *Registry) Clone() *Registry {
	c := &Registry{
		cols:   append([]*Desc(nil), r.cols...),
		byName: make(map[string]*Desc, len(r.cols)),
	}
	for _, d := range r.cols {
		c.byName[d.Name] = d
	}
	return c
}

// AddSummary registers a summary statistic over the raw column src.
func (r *Registry) AddSummary(src int, op SummaryOp) (*Desc, error) {
	sd := r.ByID(src)
	if sd == nil {
		return nil, fmt.Errorf("metric: summary over unknown column %d", src)
	}
	name := fmt.Sprintf("%s (%s)", sd.Name, op)
	d := &Desc{Name: name, Unit: sd.Unit, Kind: Summary, Op: op, Source: src}
	d.ShowPercent = op == OpSum
	return r.add(d)
}

// Expr returns the compiled formula of a Derived column (compiling it on
// first use if the descriptor was built by hand). Safe for concurrent use:
// several sessions over one shared registry may demand it at once.
func (d *Desc) Expr() (*Expr, error) {
	if d.Kind != Derived {
		return nil, fmt.Errorf("metric: %q is not a derived metric", d.Name)
	}
	d.compileMu.Lock()
	defer d.compileMu.Unlock()
	return d.exprLocked()
}

func (d *Desc) exprLocked() (*Expr, error) {
	if d.expr == nil {
		expr, err := Parse(d.Formula)
		if err != nil {
			return nil, err
		}
		d.expr = expr
	}
	return d.expr, nil
}

// Program returns the column's formula lowered to a stack program, compiled
// once and cached — the kernel the columnar derived-metric sweep executes.
// Safe for concurrent use, like Expr.
func (d *Desc) Program() (*Program, error) {
	if d.Kind != Derived {
		return nil, fmt.Errorf("metric: %q is not a derived metric", d.Name)
	}
	d.compileMu.Lock()
	defer d.compileMu.Unlock()
	if d.prog != nil {
		return d.prog, nil
	}
	e, err := d.exprLocked()
	if err != nil {
		return nil, err
	}
	p, err := e.Compile()
	if err != nil {
		return nil, err
	}
	d.prog = p
	return d.prog, nil
}

// Vector is a sparse metric vector mapping column IDs to float64 values.
// Zero values are never stored: the paper's presentation principle "any
// metric table cell where data is zero is left blank" falls out of the
// representation (Section V-A). The zero Vector is empty and ready to use.
//
// IDs are kept sorted so that iteration order is deterministic and merging
// is linear.
type Vector struct {
	ids  []int32
	vals []float64
}

// Len reports the number of non-zero entries.
func (v *Vector) Len() int { return len(v.ids) }

// IsZero reports whether the vector has no non-zero entries.
func (v *Vector) IsZero() bool { return len(v.ids) == 0 }

func (v *Vector) find(id int) (int, bool) {
	i := sort.Search(len(v.ids), func(i int) bool { return v.ids[i] >= int32(id) })
	return i, i < len(v.ids) && v.ids[i] == int32(id)
}

// Get returns the value in column id (zero if absent).
func (v *Vector) Get(id int) float64 {
	if i, ok := v.find(id); ok {
		return v.vals[i]
	}
	return 0
}

// Has reports whether column id has an explicit (non-zero) entry.
func (v *Vector) Has(id int) bool {
	_, ok := v.find(id)
	return ok
}

// Set stores x in column id, deleting the entry when x is zero.
func (v *Vector) Set(id int, x float64) {
	i, ok := v.find(id)
	switch {
	case ok && x == 0:
		v.ids = append(v.ids[:i], v.ids[i+1:]...)
		v.vals = append(v.vals[:i], v.vals[i+1:]...)
	case ok:
		v.vals[i] = x
	case x == 0:
		// nothing to do
	default:
		v.ids = append(v.ids, 0)
		v.vals = append(v.vals, 0)
		copy(v.ids[i+1:], v.ids[i:])
		copy(v.vals[i+1:], v.vals[i:])
		v.ids[i] = int32(id)
		v.vals[i] = x
	}
}

// Add adds x to column id.
func (v *Vector) Add(id int, x float64) {
	if x == 0 {
		return
	}
	// Columns are typically touched in ascending order (profile readers,
	// summary builders); appending past the current tail keeps that hot
	// path free of the binary search and the insertion copy.
	if n := len(v.ids); n == 0 || v.ids[n-1] < int32(id) {
		v.ids = append(v.ids, int32(id))
		v.vals = append(v.vals, x)
		return
	}
	if i, ok := v.find(id); ok {
		v.vals[i] += x
		if v.vals[i] == 0 {
			v.ids = append(v.ids[:i], v.ids[i+1:]...)
			v.vals = append(v.vals[:i], v.vals[i+1:]...)
		}
		return
	}
	v.Set(id, x)
}

// AddVector adds every entry of o into v.
func (v *Vector) AddVector(o *Vector) {
	if o == nil || len(o.ids) == 0 {
		return
	}
	if len(v.ids) == 0 {
		v.ids = append([]int32(nil), o.ids...)
		v.vals = append([]float64(nil), o.vals...)
		return
	}
	// Identical id sets — by far the hottest case: every scope of a tree
	// carries the same few columns — sum in place with no allocation.
	// Entries that cancel to zero are compacted in place.
	if len(v.ids) == len(o.ids) {
		same := true
		for i := range v.ids {
			if v.ids[i] != o.ids[i] {
				same = false
				break
			}
		}
		if same {
			zeroed := false
			for i := range o.vals {
				v.vals[i] += o.vals[i]
				if v.vals[i] == 0 {
					zeroed = true
				}
			}
			if zeroed {
				k := 0
				for i := range v.ids {
					if v.vals[i] != 0 {
						v.ids[k] = v.ids[i]
						v.vals[k] = v.vals[i]
						k++
					}
				}
				v.ids, v.vals = v.ids[:k], v.vals[:k]
			}
			return
		}
	}
	// Disjoint id ranges need no merge: one side simply extends the other.
	// Trees built from a single profile hit these constantly (every scope
	// carries the same few column ids, in order).
	if v.ids[len(v.ids)-1] < o.ids[0] {
		v.ids = append(v.ids, o.ids...)
		v.vals = append(v.vals, o.vals...)
		return
	}
	if o.ids[len(o.ids)-1] < v.ids[0] {
		ids := make([]int32, 0, len(v.ids)+len(o.ids))
		vals := make([]float64, 0, len(v.vals)+len(o.vals))
		ids = append(append(ids, o.ids...), v.ids...)
		vals = append(append(vals, o.vals...), v.vals...)
		v.ids, v.vals = ids, vals
		return
	}
	// Merge two sorted runs.
	ids := make([]int32, 0, len(v.ids)+len(o.ids))
	vals := make([]float64, 0, len(v.vals)+len(o.vals))
	i, j := 0, 0
	for i < len(v.ids) && j < len(o.ids) {
		switch {
		case v.ids[i] < o.ids[j]:
			ids = append(ids, v.ids[i])
			vals = append(vals, v.vals[i])
			i++
		case v.ids[i] > o.ids[j]:
			ids = append(ids, o.ids[j])
			vals = append(vals, o.vals[j])
			j++
		default:
			s := v.vals[i] + o.vals[j]
			if s != 0 {
				ids = append(ids, v.ids[i])
				vals = append(vals, s)
			}
			i++
			j++
		}
	}
	ids = append(ids, v.ids[i:]...)
	vals = append(vals, v.vals[i:]...)
	for ; j < len(o.ids); j++ {
		ids = append(ids, o.ids[j])
		vals = append(vals, o.vals[j])
	}
	v.ids, v.vals = ids, vals
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	c := &Vector{}
	if len(v.ids) > 0 {
		c.ids = append([]int32(nil), v.ids...)
		c.vals = append([]float64(nil), v.vals...)
	}
	return c
}

// CloneValue returns an independent copy of v as a value, avoiding the
// header allocation of Clone. Cloning an empty vector allocates nothing.
func (v *Vector) CloneValue() Vector {
	var c Vector
	if len(v.ids) > 0 {
		c.ids = append([]int32(nil), v.ids...)
		c.vals = append([]float64(nil), v.vals...)
	}
	return c
}

// Grow ensures capacity for n additional entries, so a caller that knows
// how many columns it is about to Add in order pays one allocation.
func (v *Vector) Grow(n int) {
	if cap(v.ids)-len(v.ids) >= n {
		return
	}
	ids := make([]int32, len(v.ids), len(v.ids)+n)
	vals := make([]float64, len(v.vals), len(v.vals)+n)
	copy(ids, v.ids)
	copy(vals, v.vals)
	v.ids, v.vals = ids, vals
}

// Range calls f for every non-zero entry in ascending column order.
func (v *Vector) Range(f func(id int, x float64)) {
	for i, id := range v.ids {
		f(int(id), v.vals[i])
	}
}

// String renders the vector for debugging, e.g. "{0:12 2:3.5}".
func (v *Vector) String() string {
	s := "{"
	for i, id := range v.ids {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%g", id, v.vals[i])
	}
	return s + "}"
}
