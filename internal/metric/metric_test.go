package metric

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestRegistryAddRaw(t *testing.T) {
	r := NewRegistry()
	d, err := r.AddRaw("PAPI_TOT_CYC", "cycles", 1000)
	if err != nil {
		t.Fatalf("AddRaw: %v", err)
	}
	if d.ID != 0 || d.Kind != Raw || d.Period != 1000 {
		t.Fatalf("bad descriptor: %+v", d)
	}
	if r.ByName("PAPI_TOT_CYC") != d || r.ByID(0) != d {
		t.Fatal("lookup mismatch")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if _, err := r.AddRaw("c", "cycles", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddRaw("c", "cycles", 1); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestRegistryRejectsZeroPeriod(t *testing.T) {
	r := NewRegistry()
	if _, err := r.AddRaw("c", "cycles", 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestRegistryRejectsEmptyName(t *testing.T) {
	r := NewRegistry()
	if _, err := r.AddRaw("", "cycles", 1); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestRegistryDerivedValidatesRefs(t *testing.T) {
	r := NewRegistry()
	if _, err := r.AddRaw("cyc", "cycles", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddDerived("waste", "$0*4 - $1"); err == nil {
		t.Fatal("forward column reference accepted")
	}
	if _, err := r.AddDerived("double", "$0*2"); err != nil {
		t.Fatalf("valid derived rejected: %v", err)
	}
}

func TestRegistrySummaryNames(t *testing.T) {
	r := NewRegistry()
	if _, err := r.AddRaw("cyc", "cycles", 1); err != nil {
		t.Fatal(err)
	}
	d, err := r.AddSummary(0, OpMean)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "cyc (mean)" || d.Kind != Summary || d.Source != 0 {
		t.Fatalf("bad summary descriptor: %+v", d)
	}
	if _, err := r.AddSummary(99, OpMax); err == nil {
		t.Fatal("summary of unknown column accepted")
	}
}

func TestVectorBasics(t *testing.T) {
	var v Vector
	if !v.IsZero() || v.Get(3) != 0 || v.Has(3) {
		t.Fatal("zero vector misbehaves")
	}
	v.Set(3, 1.5)
	v.Set(1, 2)
	v.Add(3, 0.5)
	if got := v.Get(3); got != 2 {
		t.Fatalf("Get(3) = %g, want 2", got)
	}
	if got := v.Get(1); got != 2 {
		t.Fatalf("Get(1) = %g, want 2", got)
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	// setting to zero removes the entry (sparse invariant)
	v.Set(3, 0)
	if v.Has(3) || v.Len() != 1 {
		t.Fatal("zero entry retained")
	}
	// Add that cancels removes the entry too
	v.Add(1, -2)
	if !v.IsZero() {
		t.Fatalf("vector not empty after cancel: %v", v.String())
	}
}

func TestVectorRangeOrdered(t *testing.T) {
	var v Vector
	for _, id := range []int{9, 2, 5, 0, 7} {
		v.Set(id, float64(id)+0.5)
	}
	var ids []int
	v.Range(func(id int, x float64) {
		ids = append(ids, id)
		if x != float64(id)+0.5 {
			t.Fatalf("value mismatch at %d: %g", id, x)
		}
	})
	if !sort.IntsAreSorted(ids) {
		t.Fatalf("Range not in ascending order: %v", ids)
	}
}

func TestVectorAddVector(t *testing.T) {
	var a, b Vector
	a.Set(0, 1)
	a.Set(2, 3)
	b.Set(1, 10)
	b.Set(2, -3) // cancels a's entry
	b.Set(5, 7)
	a.AddVector(&b)
	want := map[int]float64{0: 1, 1: 10, 5: 7}
	got := map[int]float64{}
	a.Range(func(id int, x float64) { got[id] = x })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AddVector = %v, want %v", got, want)
	}
}

func TestVectorAddVectorIntoEmpty(t *testing.T) {
	var a, b Vector
	b.Set(4, 2)
	a.AddVector(&b)
	if a.Get(4) != 2 {
		t.Fatal("AddVector into empty failed")
	}
	// must be an independent copy
	b.Set(4, 99)
	if a.Get(4) != 2 {
		t.Fatal("AddVector aliased the source")
	}
}

func TestVectorClone(t *testing.T) {
	var v Vector
	v.Set(1, 2)
	c := v.Clone()
	c.Set(1, 5)
	if v.Get(1) != 2 {
		t.Fatal("Clone aliases storage")
	}
	if (&Vector{}).Clone().Len() != 0 {
		t.Fatal("Clone of empty not empty")
	}
}

// Property: a Vector agrees with a reference map under a random operation
// sequence.
func TestVectorMatchesMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var v Vector
		model := map[int]float64{}
		for i := 0; i < 200; i++ {
			id := rng.Intn(12)
			x := float64(rng.Intn(7) - 3)
			if rng.Intn(2) == 0 {
				v.Set(id, x)
				if x == 0 {
					delete(model, id)
				} else {
					model[id] = x
				}
			} else {
				v.Add(id, x)
				if model[id]+x == 0 {
					delete(model, id)
				} else {
					model[id] += x
				}
			}
		}
		if v.Len() != len(model) {
			return false
		}
		for id, want := range model {
			if v.Get(id) != want {
				return false
			}
		}
		// entries stay sorted and non-zero
		prev := -1
		ok := true
		v.Range(func(id int, x float64) {
			if id <= prev || x == 0 {
				ok = false
			}
			prev = id
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AddVector is equivalent to element-wise addition.
func TestVectorAddVectorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b Vector
		want := map[int]float64{}
		for i := 0; i < 50; i++ {
			id, x := rng.Intn(20), float64(rng.Intn(9)-4)
			a.Add(id, x)
			want[id] += x
		}
		for i := 0; i < 50; i++ {
			id, x := rng.Intn(20), float64(rng.Intn(9)-4)
			b.Add(id, x)
			want[id] += x
		}
		a.AddVector(&b)
		for id, w := range want {
			if a.Get(id) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
