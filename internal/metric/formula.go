package metric

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// The derived-metric formula language (Section V-D of the paper):
//
//	expr   := term (('+' | '-') term)*
//	term   := power (('*' | '/') power)*
//	power  := unary ('^' power)?            // right associative
//	unary  := '-' unary | primary
//	primary:= number | '$' digits | ident '(' args ')' | '(' expr ')'
//	args   := expr (',' expr)*
//
// $n refers to the value of metric column n for the scope being evaluated,
// exactly as in hpcviewer's derived-metric dialog. The supported functions
// are min, max, abs, sqrt, log, exp and pow.

// Env supplies column values to an expression evaluation.
type Env interface {
	// Column returns the value of metric column id for the current scope.
	Column(id int) float64
}

// EnvFunc adapts a function to the Env interface.
type EnvFunc func(id int) float64

// Column implements Env.
func (f EnvFunc) Column(id int) float64 { return f(id) }

// Expr is a compiled derived-metric formula.
type Expr struct {
	root node
	src  string
	refs []int
}

// String returns the original formula source.
func (e *Expr) String() string { return e.src }

// ColumnRefs returns the distinct column indices the formula references,
// in ascending order.
func (e *Expr) ColumnRefs() []int { return e.refs }

// EvalError reports a formula that could not be evaluated (an operator or
// function the evaluator does not implement — possible only for expression
// trees not produced by Parse, which validates both). It is a typed error
// rather than a panic so a bad user formula reaches hpcviewer's error
// reporting instead of crashing the process.
type EvalError struct {
	Formula string
	Detail  string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("metric: formula %q: %s", e.Formula, e.Detail)
}

// Eval evaluates the formula against env. Formulas produced by Parse
// cannot fail; hand-built expression trees may return an *EvalError.
func (e *Expr) Eval(env Env) (float64, error) {
	v, err := e.root.eval(env)
	if err != nil {
		var ee *EvalError
		if errors.As(err, &ee) && ee.Formula == "" {
			ee.Formula = e.src
		}
		return 0, err
	}
	return v, nil
}

// Parse compiles a formula.
func Parse(src string) (*Expr, error) {
	p := &parser{lex: lexer{src: src}}
	p.next()
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("formula %q: unexpected %q at offset %d", src, p.tok.text, p.tok.pos)
	}
	seen := map[int]bool{}
	var refs []int
	collectRefs(root, seen, &refs)
	// keep refs sorted ascending
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j-1] > refs[j]; j-- {
			refs[j-1], refs[j] = refs[j], refs[j-1]
		}
	}
	return &Expr{root: root, src: src, refs: refs}, nil
}

// MustParse is Parse but panics on error; for use with constant formulas.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type node interface {
	eval(Env) (float64, error)
}

type numNode float64

func (n numNode) eval(Env) (float64, error) { return float64(n), nil }

type colNode int

func (n colNode) eval(env Env) (float64, error) { return env.Column(int(n)), nil }

type unaryNode struct{ x node }

func (n unaryNode) eval(env Env) (float64, error) {
	v, err := n.x.eval(env)
	return -v, err
}

type binNode struct {
	op   byte
	l, r node
}

func (n binNode) eval(env Env) (float64, error) {
	a, err := n.l.eval(env)
	if err != nil {
		return 0, err
	}
	b, err := n.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case '+':
		return a + b, nil
	case '-':
		return a - b, nil
	case '*':
		return a * b, nil
	case '/':
		if b == 0 {
			// Metric tables are sparse; division by an absent metric is
			// common (e.g. efficiency of a scope with no cycles). Treat
			// it as zero rather than propagating Inf/NaN into sorts.
			return 0, nil
		}
		return a / b, nil
	case '^':
		return math.Pow(a, b), nil
	}
	return 0, &EvalError{Detail: fmt.Sprintf("unknown operator %q", string(n.op))}
}

type callNode struct {
	name string
	args []node
}

func (n callNode) eval(env Env) (float64, error) {
	// Small arg lists (every function except variadic min/max with many
	// arguments) evaluate into a stack buffer.
	var buf [4]float64
	vals := buf[:0]
	if len(n.args) > len(buf) {
		vals = make([]float64, 0, len(n.args))
	}
	for _, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	switch n.name {
	case "abs":
		return math.Abs(vals[0]), nil
	case "sqrt":
		return math.Sqrt(vals[0]), nil
	case "log":
		if vals[0] <= 0 {
			return 0, nil
		}
		return math.Log(vals[0]), nil
	case "exp":
		return math.Exp(vals[0]), nil
	case "pow":
		return math.Pow(vals[0], vals[1]), nil
	case "min":
		m := vals[0]
		for _, v := range vals[1:] {
			m = math.Min(m, v)
		}
		return m, nil
	case "max":
		m := vals[0]
		for _, v := range vals[1:] {
			m = math.Max(m, v)
		}
		return m, nil
	}
	return 0, &EvalError{Detail: fmt.Sprintf("unknown function %q", n.name)}
}

func collectRefs(n node, seen map[int]bool, out *[]int) {
	switch n := n.(type) {
	case colNode:
		if !seen[int(n)] {
			seen[int(n)] = true
			*out = append(*out, int(n))
		}
	case unaryNode:
		collectRefs(n.x, seen, out)
	case binNode:
		collectRefs(n.l, seen, out)
		collectRefs(n.r, seen, out)
	case callNode:
		for _, a := range n.args {
			collectRefs(a, seen, out)
		}
	}
}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNum
	tokCol   // $n
	tokIdent // function name
	tokOp    // + - * / ^ ( ) ,
)

type token struct {
	kind tokKind
	text string
	num  float64
	col  int
	pos  int
}

type lexer struct {
	src string
	off int
}

func (l *lexer) next() (token, error) {
	for l.off < len(l.src) && (l.src[l.off] == ' ' || l.src[l.off] == '\t') {
		l.off++
	}
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: l.off}, nil
	}
	start := l.off
	c := l.src[l.off]
	switch {
	case c == '$':
		l.off++
		d := l.off
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.off++
		}
		if d == l.off {
			return token{}, fmt.Errorf("formula: '$' must be followed by a column number at offset %d", start)
		}
		n, err := strconv.Atoi(l.src[d:l.off])
		if err != nil {
			return token{}, fmt.Errorf("formula: bad column reference %q: %v", l.src[start:l.off], err)
		}
		return token{kind: tokCol, text: l.src[start:l.off], col: n, pos: start}, nil
	case isDigit(c) || c == '.':
		for l.off < len(l.src) && (isDigit(l.src[l.off]) || l.src[l.off] == '.') {
			l.off++
		}
		// scientific notation: 1e9, 2.5e-3
		if l.off < len(l.src) && (l.src[l.off] == 'e' || l.src[l.off] == 'E') {
			save := l.off
			l.off++
			if l.off < len(l.src) && (l.src[l.off] == '+' || l.src[l.off] == '-') {
				l.off++
			}
			if l.off < len(l.src) && isDigit(l.src[l.off]) {
				for l.off < len(l.src) && isDigit(l.src[l.off]) {
					l.off++
				}
			} else {
				l.off = save // 'e' was not an exponent
			}
		}
		text := l.src[start:l.off]
		n, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, fmt.Errorf("formula: bad number %q", text)
		}
		return token{kind: tokNum, text: text, num: n, pos: start}, nil
	case isAlpha(c):
		for l.off < len(l.src) && (isAlpha(l.src[l.off]) || isDigit(l.src[l.off])) {
			l.off++
		}
		return token{kind: tokIdent, text: l.src[start:l.off], pos: start}, nil
	case strings.IndexByte("+-*/^(),", c) >= 0:
		l.off++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	}
	return token{}, fmt.Errorf("formula: unexpected character %q at offset %d", string(c), start)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// --- parser ---

type parser struct {
	lex lexer
	tok token
	err error
}

func (p *parser) next() {
	if p.err != nil {
		return
	}
	p.tok, p.err = p.lex.next()
}

func (p *parser) parseExpr() (node, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text[0]
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = binNode{op: op, l: l, r: r}
	}
	return l, p.err
}

func (p *parser) parseTerm() (node, error) {
	l, err := p.parsePower()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := p.tok.text[0]
		p.next()
		r, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		l = binNode{op: op, l: l, r: r}
	}
	return l, p.err
}

func (p *parser) parsePower() (node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp && p.tok.text == "^" {
		p.next()
		r, err := p.parsePower() // right associative
		if err != nil {
			return nil, err
		}
		return binNode{op: '^', l: l, r: r}, nil
	}
	return l, p.err
}

func (p *parser) parseUnary() (node, error) {
	if p.tok.kind == tokOp && p.tok.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{x: x}, nil
	}
	return p.parsePrimary()
}

var funcArity = map[string][2]int{ // name -> {min args, max args (-1 = unbounded)}
	"abs":  {1, 1},
	"sqrt": {1, 1},
	"log":  {1, 1},
	"exp":  {1, 1},
	"pow":  {2, 2},
	"min":  {1, -1},
	"max":  {1, -1},
}

func (p *parser) parsePrimary() (node, error) {
	if p.err != nil {
		return nil, p.err
	}
	switch p.tok.kind {
	case tokNum:
		n := numNode(p.tok.num)
		p.next()
		return n, p.err
	case tokCol:
		n := colNode(p.tok.col)
		p.next()
		return n, p.err
	case tokIdent:
		name := p.tok.text
		arity, ok := funcArity[name]
		if !ok {
			return nil, fmt.Errorf("formula: unknown function %q at offset %d", name, p.tok.pos)
		}
		p.next()
		if !(p.tok.kind == tokOp && p.tok.text == "(") {
			return nil, fmt.Errorf("formula: expected '(' after %q", name)
		}
		p.next()
		var args []node
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.tok.kind == tokOp && p.tok.text == "," {
				p.next()
				continue
			}
			break
		}
		if !(p.tok.kind == tokOp && p.tok.text == ")") {
			return nil, fmt.Errorf("formula: expected ')' to close %s(...)", name)
		}
		p.next()
		if len(args) < arity[0] || (arity[1] >= 0 && len(args) > arity[1]) {
			return nil, fmt.Errorf("formula: %s takes %d..%d arguments, got %d", name, arity[0], arity[1], len(args))
		}
		return callNode{name: name, args: args}, p.err
	case tokOp:
		if p.tok.text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !(p.tok.kind == tokOp && p.tok.text == ")") {
				return nil, fmt.Errorf("formula: missing ')'")
			}
			p.next()
			return x, p.err
		}
	}
	if p.err != nil {
		return nil, p.err
	}
	return nil, fmt.Errorf("formula: unexpected %q at offset %d", p.tok.text, p.tok.pos)
}
