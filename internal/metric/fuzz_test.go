package metric

import "testing"

// FuzzParse guards the formula parser against panics and checks that any
// formula that parses also evaluates without panicking.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"$0*4 - $1",
		"min($0, $1, 3) / max(1e-9, $2)",
		"((($3)))",
		"-$0^2^3",
		"pow(2, 10) + sqrt(abs(-4))",
		"1.5e-3 * $12",
		"$",
		"min(",
		"1 2 3",
		"exp(log($0))",
	} {
		f.Add(seed)
	}
	env := EnvFunc(func(id int) float64 { return float64(id%7) - 3 })
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		if _, everr := e.Eval(env); everr != nil {
			t.Fatalf("parsed formula failed to evaluate: %v", everr)
		}
		_ = e.ColumnRefs()
		if e.String() != src {
			t.Fatalf("String() = %q, want %q", e.String(), src)
		}
	})
}
