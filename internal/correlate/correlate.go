// Package correlate is the hpcprof equivalent: it fuses raw call path
// profiles (PC tries from the sampler) with recovered static structure
// (loops, inlined code, line maps) to synthesize the canonical calling
// context tree the paper's views are built from (Section IV-A: "this data
// structure is synthesized by hpcprof by integrating information about
// static program structure into dynamic call chains").
//
// Each sampled call path is a list of call-instruction addresses. Every
// address is resolved against the structure document: the call site's
// enclosing loops and inlined frames materialize as static scopes *within
// the caller's frame* — which is how a Calling Context View line like
// Figure 3's shows "loop at integrate_erk.f90: 82" between two procedure
// frames — and the callee's identity is taken from the procedure containing
// the next-deeper address.
package correlate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/profile"
	"repro/internal/structfile"
)

// Correlate builds a canonical CCT for one profile. The tree's metric
// registry gets one raw column per profile metric, in order.
func Correlate(doc *structfile.Doc, prof *profile.Profile) (*core.Tree, error) {
	tree := core.NewTree(prof.Program, metric.NewRegistry())
	if _, err := Into(tree, doc, prof); err != nil {
		return nil, err
	}
	tree.ComputeMetrics()
	return tree, nil
}

// Into correlates a profile into an existing tree, creating any missing
// metric columns (matched by name) and scopes. It returns the column
// mapping from profile metric index to registry column. Metric values
// accumulate, so correlating several ranks into one tree yields the summed
// profile of Section IV's finalization step.
func Into(tree *core.Tree, doc *structfile.Doc, prof *profile.Profile) ([]int, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if doc.Fingerprint != 0 && prof.Fingerprint != 0 && doc.Fingerprint != prof.Fingerprint {
		return nil, fmt.Errorf(
			"correlate: profile (rank %d) was measured from a different build than the structure document (fingerprint %x vs %x)",
			prof.Rank, prof.Fingerprint, doc.Fingerprint)
	}
	cols := make([]int, len(prof.Metrics))
	for i, m := range prof.Metrics {
		if d := tree.Reg.ByName(m.Name); d != nil {
			cols[i] = d.ID
			continue
		}
		d, err := tree.Reg.AddRaw(m.Name, m.Unit, m.Period)
		if err != nil {
			return nil, fmt.Errorf("correlate: %w", err)
		}
		cols[i] = d.ID
	}
	// Intern every scope name/file once per document, so the per-sample
	// loop below builds integer keys without touching string bytes.
	doc.EnsureSyms()
	c := &correlator{tree: tree, doc: doc, prof: prof, cols: cols}
	if err := c.frame(prof.Root, tree.Root, 0); err != nil {
		return nil, err
	}
	return cols, nil
}

type correlator struct {
	tree *core.Tree
	doc  *structfile.Doc
	prof *profile.Profile
	cols []int
}

// frame correlates one raw trie node: it creates the fused
// call-site/callee Frame scope under parent (materializing the call site's
// loop and inline context first) and then attributes the node's samples and
// children inside that frame.
func (c *correlator) frame(raw *profile.Node, parent *core.Node, callPC uint64) error {
	framePC, ok := anyPCWithin(raw)
	if !ok {
		// An empty frame (no samples anywhere below): nothing to
		// attribute — performance data is sparse (Section V-A).
		return nil
	}
	calleeRes, ok := c.doc.Resolve(framePC)
	if !ok {
		return fmt.Errorf("correlate: PC 0x%x not covered by structure document", framePC)
	}

	ctx := parent
	key := core.Key{
		Kind: core.KindFrame,
		Name: calleeRes.Proc.NameSym,
		File: calleeRes.Proc.FileSym,
		Line: calleeRes.Proc.Line,
		ID:   callPC,
	}
	var callRes structfile.Resolution
	if callPC != 0 {
		callRes, ok = c.doc.Resolve(callPC)
		if !ok {
			return fmt.Errorf("correlate: call PC 0x%x not covered by structure document", callPC)
		}
		// The loops and inlined frames *containing the call site*
		// become static scopes between the caller and callee frames
		// (Section III-D.2).
		ctx = c.materializeChain(ctx, callRes.Chain)
	}
	fr := ctx.Child(key, true)
	fr.NoSource = calleeRes.Proc.NoSource
	if calleeRes.LM != nil {
		fr.Mod = calleeRes.LM.NameSym
	}
	if callPC != 0 && callRes.Stmt != nil {
		fr.CallLine = callRes.Stmt.Line
		fr.CallFile = callRes.Stmt.FileSym
	}

	for _, row := range raw.Samples() {
		res, ok := c.doc.Resolve(row.PC)
		if !ok {
			return fmt.Errorf("correlate: sample PC 0x%x not covered by structure document", row.PC)
		}
		sctx := c.materializeChain(fr, res.Chain)
		stmt := sctx.Child(core.Key{
			Kind: core.KindStmt,
			File: res.Stmt.FileSym,
			Line: res.Stmt.Line,
		}, true)
		stmt.NoSource = res.Proc.NoSource
		for mi, count := range row.Counts {
			stmt.Base.Add(c.cols[mi], float64(count))
		}
	}

	for _, child := range raw.Children() {
		if err := c.frame(child, fr, child.CallPC); err != nil {
			return err
		}
	}
	return nil
}

// materializeChain creates the loop/alien scopes of a static chain under
// base and returns the innermost.
func (c *correlator) materializeChain(base *core.Node, chain []*structfile.Scope) *core.Node {
	cur := base
	for _, s := range chain {
		var key core.Key
		switch s.Kind {
		case structfile.KindLoop:
			key = core.Key{Kind: core.KindLoop, File: s.FileSym, Line: s.Line, ID: scopeID(s)}
		case structfile.KindAlien:
			key = core.Key{Kind: core.KindAlien, Name: s.NameSym, File: s.FileSym, Line: s.Line, ID: scopeID(s)}
		default:
			continue
		}
		next := cur.Child(key, true)
		if s.Kind == structfile.KindAlien && next.CallLine == 0 {
			next.CallLine = s.CallLine
		}
		cur = next
	}
	return cur
}

// scopeID returns a stable identifier for a structure scope: its first
// address. Distinct loops and inline sites occupy distinct address ranges.
func scopeID(s *structfile.Scope) uint64 {
	if len(s.Ranges) > 0 {
		return s.Ranges[0].Lo
	}
	return 0
}

// anyPCWithin finds a PC belonging to the frame itself: a sample PC, or
// transitively a child's call PC (which lies in this frame's procedure).
func anyPCWithin(raw *profile.Node) (uint64, bool) {
	for _, row := range raw.Samples() {
		return row.PC, true
	}
	for _, child := range raw.Children() {
		return child.CallPC, true
	}
	return 0, false
}
