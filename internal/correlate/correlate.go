// Package correlate is the hpcprof equivalent: it fuses raw call path
// profiles (PC tries from the sampler) with recovered static structure
// (loops, inlined code, line maps) to synthesize the canonical calling
// context tree the paper's views are built from (Section IV-A: "this data
// structure is synthesized by hpcprof by integrating information about
// static program structure into dynamic call chains").
//
// Each sampled call path is a list of call-instruction addresses. Every
// address is resolved against the structure document: the call site's
// enclosing loops and inlined frames materialize as static scopes *within
// the caller's frame* — which is how a Calling Context View line like
// Figure 3's shows "loop at integrate_erk.f90: 82" between two procedure
// frames — and the callee's identity is taken from the procedure containing
// the next-deeper address.
//
// Since the ingestion-core refactor (DESIGN.md §16) the package is one
// implementation of the format-neutral internal/source boundary: Source
// adapts an (hpcrun profile, structure document) pair into a
// source.Profile whose sample stream replays the historical correlation
// walk exactly, and Correlate/Into are thin wrappers over source.Build.
// The resulting trees are byte-identical to the pre-refactor correlator
// (locked by TestCorrelateSourceLock).
package correlate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/profile"
	"repro/internal/source"
	"repro/internal/structfile"
)

// Correlate builds a canonical CCT for one profile. The tree's metric
// registry gets one raw column per profile metric, in order.
func Correlate(doc *structfile.Doc, prof *profile.Profile) (*core.Tree, error) {
	tree := core.NewTree(prof.Program, metric.NewRegistry())
	if _, err := Into(tree, doc, prof); err != nil {
		return nil, err
	}
	tree.ComputeMetrics()
	return tree, nil
}

// Into correlates a profile into an existing tree, creating any missing
// metric columns (matched by name) and scopes. It returns the column
// mapping from profile metric index to registry column. Metric values
// accumulate, so correlating several ranks into one tree yields the summed
// profile of Section IV's finalization step.
func Into(tree *core.Tree, doc *structfile.Doc, prof *profile.Profile) ([]int, error) {
	return source.Build(tree, Source(doc, prof))
}

// Source adapts one hpcrun measurement (profile + structure document) to
// the format-neutral source boundary. Validation (profile invariants,
// build fingerprints) happens when the sample stream starts.
func Source(doc *structfile.Doc, prof *profile.Profile) source.Profile {
	return &hpcrunSource{doc: doc, prof: prof}
}

type hpcrunSource struct {
	doc  *structfile.Doc
	prof *profile.Profile
}

func (s *hpcrunSource) Program() string { return s.prof.Program }

func (s *hpcrunSource) Identity() source.Identity {
	return source.Identity{Rank: s.prof.Rank, Thread: s.prof.Thread}
}

func (s *hpcrunSource) Metrics() []source.Metric {
	out := make([]source.Metric, len(s.prof.Metrics))
	for i, m := range s.prof.Metrics {
		out[i] = source.Metric{Name: m.Name, Unit: m.Unit, Period: m.Period}
	}
	return out
}

// Samples replays the correlation walk as a sample stream: for every trie
// frame it resolves the call site's static chain and the callee identity,
// then emits one sample per leaf PC with the full scope path. The walk
// order (own samples by PC, then children by call PC) fixes the node
// creation order source.Build produces, byte-identical to the historical
// in-place correlator.
func (s *hpcrunSource) Samples(emit func(path []source.Scope, values []float64) error) error {
	if err := s.prof.Validate(); err != nil {
		return err
	}
	if s.doc.Fingerprint != 0 && s.prof.Fingerprint != 0 && s.doc.Fingerprint != s.prof.Fingerprint {
		return fmt.Errorf(
			"correlate: profile (rank %d) was measured from a different build than the structure document (fingerprint %x vs %x)",
			s.prof.Rank, s.prof.Fingerprint, s.doc.Fingerprint)
	}
	// Intern every scope name/file once per document, so the per-sample
	// walk below builds integer keys without touching string bytes.
	s.doc.EnsureSyms()
	w := &walker{
		doc:  s.doc,
		emit: emit,
		vals: make([]float64, len(s.prof.Metrics)),
	}
	return w.frame(s.prof.Root, 0)
}

// walker streams one trie as scope-path samples, reusing a single path
// stack and value buffer across the whole profile.
type walker struct {
	doc  *structfile.Doc
	emit func(path []source.Scope, values []float64) error
	path []source.Scope
	vals []float64
}

// frame handles one raw trie node: it pushes the fused call-site/callee
// Frame scope (materializing the call site's loop and inline context
// first), emits the node's samples inside that frame and then recurses
// into the children.
func (w *walker) frame(raw *profile.Node, callPC uint64) error {
	framePC, ok := anyPCWithin(raw)
	if !ok {
		// An empty frame (no samples anywhere below): nothing to
		// attribute — performance data is sparse (Section V-A).
		return nil
	}
	calleeRes, ok := w.doc.Resolve(framePC)
	if !ok {
		return fmt.Errorf("correlate: PC 0x%x not covered by structure document", framePC)
	}

	depth := len(w.path)
	fr := source.Scope{
		Key: core.Key{
			Kind: core.KindFrame,
			Name: calleeRes.Proc.NameSym,
			File: calleeRes.Proc.FileSym,
			Line: calleeRes.Proc.Line,
			ID:   callPC,
		},
		NoSource: calleeRes.Proc.NoSource,
	}
	if calleeRes.LM != nil {
		fr.Mod = calleeRes.LM.NameSym
	}
	if callPC != 0 {
		callRes, ok := w.doc.Resolve(callPC)
		if !ok {
			return fmt.Errorf("correlate: call PC 0x%x not covered by structure document", callPC)
		}
		// The loops and inlined frames *containing the call site*
		// become static scopes between the caller and callee frames
		// (Section III-D.2).
		w.pushChain(callRes.Chain)
		if callRes.Stmt != nil {
			fr.CallLine = callRes.Stmt.Line
			fr.CallFile = callRes.Stmt.FileSym
		}
	}
	w.path = append(w.path, fr)

	for _, row := range raw.Samples() {
		res, ok := w.doc.Resolve(row.PC)
		if !ok {
			return fmt.Errorf("correlate: sample PC 0x%x not covered by structure document", row.PC)
		}
		mark := len(w.path)
		w.pushChain(res.Chain)
		w.path = append(w.path, source.Scope{
			Key: core.Key{
				Kind: core.KindStmt,
				File: res.Stmt.FileSym,
				Line: res.Stmt.Line,
			},
			NoSource: res.Proc.NoSource,
		})
		for mi, count := range row.Counts {
			w.vals[mi] = float64(count)
		}
		if err := w.emit(w.path, w.vals); err != nil {
			return err
		}
		w.path = w.path[:mark]
	}

	for _, child := range raw.Children() {
		if err := w.frame(child, child.CallPC); err != nil {
			return err
		}
	}
	w.path = w.path[:depth]
	return nil
}

// pushChain appends the loop/alien scopes of a static chain to the path
// stack.
func (w *walker) pushChain(chain []*structfile.Scope) {
	for _, s := range chain {
		switch s.Kind {
		case structfile.KindLoop:
			w.path = append(w.path, source.Scope{
				Key: core.Key{Kind: core.KindLoop, File: s.FileSym, Line: s.Line, ID: scopeID(s)},
			})
		case structfile.KindAlien:
			w.path = append(w.path, source.Scope{
				Key:      core.Key{Kind: core.KindAlien, Name: s.NameSym, File: s.FileSym, Line: s.Line, ID: scopeID(s)},
				CallLine: s.CallLine,
			})
		}
	}
}

// scopeID returns a stable identifier for a structure scope: its first
// address. Distinct loops and inline sites occupy distinct address ranges.
func scopeID(s *structfile.Scope) uint64 {
	if len(s.Ranges) > 0 {
		return s.Ranges[0].Lo
	}
	return 0
}

// anyPCWithin finds a PC belonging to the frame itself: a sample PC, or
// transitively a child's call PC (which lies in this frame's procedure).
func anyPCWithin(raw *profile.Node) (uint64, bool) {
	for _, row := range raw.Samples() {
		return row.PC, true
	}
	for _, child := range raw.Children() {
		return child.CallPC, true
	}
	return 0, false
}
