package correlate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/structfile"
)

// ResolveFrames maps each trie node of prof onto the Frame scope an
// earlier correlation of the same profile created in tree, in lookup-only
// mode: it replays exactly the frame/materializeChain walk of Into but
// never creates scopes and never touches metrics. hpcprof's trace pass
// uses it to rewrite trace call-path ids (trie preorder indices in the
// measurement file) into rows of the final merged tree.
//
// Empty trie frames (no samples anywhere below — never traced, since
// trace events are emitted only when a sample is recorded) map to nil.
// A non-empty frame missing from the tree is an error: the tree was not
// built from this profile.
func ResolveFrames(doc *structfile.Doc, prof *profile.Profile, tree *core.Tree) (map[*profile.Node]*core.Node, error) {
	if doc.Fingerprint != 0 && prof.Fingerprint != 0 && doc.Fingerprint != prof.Fingerprint {
		return nil, fmt.Errorf(
			"correlate: profile (rank %d) was measured from a different build than the structure document (fingerprint %x vs %x)",
			prof.Rank, prof.Fingerprint, doc.Fingerprint)
	}
	doc.EnsureSyms()
	r := &resolver{doc: doc, out: map[*profile.Node]*core.Node{}}
	if err := r.frame(prof.Root, tree.Root, 0); err != nil {
		return nil, err
	}
	return r.out, nil
}

type resolver struct {
	doc *structfile.Doc
	out map[*profile.Node]*core.Node
}

// frame mirrors correlator.frame with create=false everywhere.
func (r *resolver) frame(raw *profile.Node, parent *core.Node, callPC uint64) error {
	framePC, ok := anyPCWithin(raw)
	if !ok {
		return nil
	}
	calleeRes, ok := r.doc.Resolve(framePC)
	if !ok {
		return fmt.Errorf("correlate: PC 0x%x not covered by structure document", framePC)
	}
	ctx := parent
	key := core.Key{
		Kind: core.KindFrame,
		Name: calleeRes.Proc.NameSym,
		File: calleeRes.Proc.FileSym,
		Line: calleeRes.Proc.Line,
		ID:   callPC,
	}
	if callPC != 0 {
		callRes, ok := r.doc.Resolve(callPC)
		if !ok {
			return fmt.Errorf("correlate: call PC 0x%x not covered by structure document", callPC)
		}
		if ctx = lookupChain(ctx, callRes.Chain); ctx == nil {
			return fmt.Errorf("correlate: call chain for PC 0x%x missing from tree", callPC)
		}
	}
	fr := ctx.Child(key, false)
	if fr == nil {
		return fmt.Errorf("correlate: frame for PC 0x%x missing from tree (tree not built from this profile?)", framePC)
	}
	r.out[raw] = fr
	for _, child := range raw.Children() {
		if err := r.frame(child, fr, child.CallPC); err != nil {
			return err
		}
	}
	return nil
}

// lookupChain walks the loop/alien scopes of a static chain under base
// without creating them; nil when any link is missing.
func lookupChain(base *core.Node, chain []*structfile.Scope) *core.Node {
	cur := base
	for _, s := range chain {
		var key core.Key
		switch s.Kind {
		case structfile.KindLoop:
			key = core.Key{Kind: core.KindLoop, File: s.FileSym, Line: s.Line, ID: scopeID(s)}
		case structfile.KindAlien:
			key = core.Key{Kind: core.KindAlien, Name: s.NameSym, File: s.FileSym, Line: s.Line, ID: scopeID(s)}
		default:
			continue
		}
		if cur = cur.Child(key, false); cur == nil {
			return nil
		}
	}
	return cur
}
