package correlate

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/structfile"
)

// pipeline runs a program through lower -> recover -> sample -> correlate.
func pipeline(t *testing.T, p *prog.Program, opt lower.Options, period uint64, cfg sim.Config) (*isa.Image, *structfile.Doc, *core.Tree) {
	t.Helper()
	im, err := lower.Lower(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New(p.Name, 0, 0, []sampler.EventConfig{{Event: sim.EvCycles, Period: period}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = s
	vm, err := sim.New(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	tree, err := Correlate(doc, s.Profile())
	if err != nil {
		t.Fatal(err)
	}
	return im, doc, tree
}

func TestCorrelateSimpleCallChain(t *testing.T) {
	p := prog.NewBuilder("chain").
		Module("chain.exe").
		File("a.c").
		Proc("leaf", 10, prog.L(11, 100, prog.W(12, 10))).
		Proc("mid", 20, prog.C(21, "leaf")).
		Proc("main", 1, prog.C(2, "mid")).
		Entry("main").MustBuild()
	_, _, tree := pipeline(t, p, lower.Options{}, 50, sim.Config{})

	main := tree.FindFirst("main")
	if main == nil || main.Kind != core.KindFrame {
		t.Fatal("main frame missing")
	}
	if main.Mod.String() != "chain.exe" {
		t.Fatalf("main module = %q", main.Mod)
	}
	mid := tree.FindPath("main", "mid")
	if mid == nil {
		t.Fatalf("main/mid missing")
	}
	if mid.CallLine != 2 || mid.CallFile.String() != "a.c" {
		t.Fatalf("mid call site = %s:%d, want a.c:2", mid.CallFile, mid.CallLine)
	}
	leaf := tree.FindPath("main", "mid", "leaf")
	if leaf == nil {
		t.Fatal("main/mid/leaf missing")
	}
	// leaf's samples are inside its loop at line 11.
	lp := tree.FindPath("main", "mid", "leaf", "loop at a.c: 11")
	if lp == nil {
		t.Fatal("loop scope missing inside leaf")
	}
	st := tree.FindPath("main", "mid", "leaf", "loop at a.c: 11", "a.c: 12")
	if st == nil {
		t.Fatal("statement scope missing inside loop")
	}
	// Essentially all cycles are inclusive at every level of the chain.
	total := tree.Total(0)
	if total < 900 {
		t.Fatalf("total = %g, want ~1000", total)
	}
	for _, n := range []*core.Node{main, mid, leaf} {
		if n.Incl.Get(0) != total {
			t.Fatalf("%s inclusive = %g, want %g", n.Name, n.Incl.Get(0), total)
		}
	}
	if main.Excl.Get(0) != 0 {
		t.Fatalf("main exclusive = %g, want 0", main.Excl.Get(0))
	}
}

func TestCorrelateCallSiteInsideLoop(t *testing.T) {
	// A call nested in a loop must show the loop between the frames
	// (Section III-D.2: "the call chain presented includes both dynamic
	// context (procedure calls) and the loop nests surrounding these
	// procedure calls").
	p := prog.NewBuilder("loopcall").
		File("a.c").
		Proc("work", 10, prog.W(11, 20)).
		Proc("main", 1, prog.L(2, 50, prog.C(3, "work"))).
		Entry("main").MustBuild()
	_, _, tree := pipeline(t, p, lower.Options{}, 10, sim.Config{})
	fr := tree.FindPath("main", "loop at a.c: 2", "work")
	if fr == nil {
		t.Fatal("work frame not nested under main's loop")
	}
	if fr.CallLine != 3 {
		t.Fatalf("work call line = %d, want 3", fr.CallLine)
	}
}

func TestCorrelateInlinedScopes(t *testing.T) {
	p := prog.NewBuilder("inl").
		File("core.cc").
		InlineProc("compare", 20, prog.Wc(21, prog.Cost{Cycles: 4, L1Miss: 1, Instr: 4})).
		InlineProc("find", 10, prog.L(11, 8, prog.C(12, "compare"))).
		Proc("get_coords", 1, prog.L(2, 64, prog.C(3, "find"))).
		Entry("get_coords").MustBuild()
	_, _, tree := pipeline(t, p, lower.Options{Inline: true}, 16, sim.Config{})

	// Figure 5's shape: proc > loop > inlined find > inlined loop >
	// inlined compare > statement.
	n := tree.FindPath("get_coords", "loop at core.cc: 2", "inlined find",
		"loop at core.cc: 11", "inlined compare", "core.cc: 21")
	if n == nil {
		var got []string
		core.Walk(tree.Root, func(x *core.Node) bool {
			got = append(got, strings.Repeat(" ", len(x.Path()))+x.Label())
			return true
		})
		t.Fatalf("inlined hierarchy missing; tree:\n%s", strings.Join(got, "\n"))
	}
	if n.Incl.Get(0) == 0 {
		t.Fatal("no cost attributed through the inlined hierarchy")
	}
}

func TestCorrelateRecursion(t *testing.T) {
	p := prog.NewBuilder("rec").
		File("a.c").
		Proc("g", 1,
			prog.W(2, 100),
			prog.IfDepth(3, 3, prog.C(3, "g"))).
		Proc("main", 10, prog.C(11, "g")).
		Entry("main").MustBuild()
	_, _, tree := pipeline(t, p, lower.Options{}, 10, sim.Config{})
	// Three nested instances of g.
	g1 := tree.FindPath("main", "g")
	g2 := tree.FindPath("main", "g", "g")
	g3 := tree.FindPath("main", "g", "g", "g")
	if g1 == nil || g2 == nil || g3 == nil {
		t.Fatal("recursive chain not separated by instance")
	}
	if tree.FindPath("main", "g", "g", "g", "g") != nil {
		t.Fatal("recursion depth wrong")
	}
	if !(g1.Incl.Get(0) > g2.Incl.Get(0) && g2.Incl.Get(0) > g3.Incl.Get(0)) {
		t.Fatalf("inclusive not decreasing along recursion: %g %g %g",
			g1.Incl.Get(0), g2.Incl.Get(0), g3.Incl.Get(0))
	}
	// Callers view on a real recursive profile behaves (no
	// double-count): root g <= program total.
	cv := core.BuildCallersView(tree)
	cv.ExpandAll()
	for _, r := range cv.Roots {
		if r.Name.String() == "g" && r.Incl.Get(0) > tree.Total(0) {
			t.Fatalf("g root %g exceeds total %g", r.Incl.Get(0), tree.Total(0))
		}
	}
}

func TestCorrelateMultipleMetrics(t *testing.T) {
	p := prog.NewBuilder("mm").
		File("a.c").
		Proc("main", 1,
			prog.L(2, 100, prog.Wc(3, prog.Cost{Cycles: 10, FLOPs: 5, L1Miss: 2, Instr: 10}))).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New("mm", 0, 0, []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 100},
		{Event: sim.EvL1Miss, Period: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sim.New(im, sim.Config{Observer: s})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	tree, err := Correlate(doc, s.Profile())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Reg.Len() != 2 {
		t.Fatalf("columns = %d, want 2", tree.Reg.Len())
	}
	if tree.Reg.ByName("CYCLES") == nil || tree.Reg.ByName("L1_DCM") == nil {
		t.Fatal("metric columns missing")
	}
	if tree.Total(0) == 0 || tree.Total(1) == 0 {
		t.Fatalf("totals = %g, %g", tree.Total(0), tree.Total(1))
	}
}

func TestIntoAccumulatesAcrossProfiles(t *testing.T) {
	p := prog.NewBuilder("acc").
		File("a.c").
		Proc("main", 1, prog.L(2, 100, prog.W(3, 10))).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func(rank int) *profile.Profile {
		s, err := sampler.New("acc", rank, 0, []sampler.EventConfig{{Event: sim.EvCycles, Period: 10}})
		if err != nil {
			t.Fatal(err)
		}
		vm, err := sim.New(im, sim.Config{Observer: s})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Profile()
	}
	tree := core.NewTree("acc", nil)
	for rank := 0; rank < 3; rank++ {
		if _, err := Into(tree, doc, runOnce(rank)); err != nil {
			t.Fatal(err)
		}
	}
	tree.ComputeMetrics()
	if got := tree.Total(0); got != 3000 {
		t.Fatalf("accumulated total = %g, want 3000", got)
	}
	if tree.Reg.Len() != 1 {
		t.Fatalf("columns duplicated: %d", tree.Reg.Len())
	}
}

func TestCorrelateRejectsUncoveredPC(t *testing.T) {
	// A profile referencing addresses outside the document must fail
	// loudly, not attribute nonsense.
	doc := &structfile.Doc{Program: "x", Root: &structfile.Scope{Kind: structfile.KindRoot}}
	prof := profile.NewProfile("x", 0, 0, []profile.MetricInfo{{Name: "CYCLES", Unit: "c", Period: 1}})
	prof.Record(nil, 0xdead, 0, 1)
	if _, err := Correlate(doc, prof); err == nil {
		t.Fatal("uncovered PC accepted")
	}
}

func TestCorrelateEmptyProfile(t *testing.T) {
	doc := &structfile.Doc{Program: "x", Root: &structfile.Scope{Kind: structfile.KindRoot}}
	prof := profile.NewProfile("x", 0, 0, []profile.MetricInfo{{Name: "CYCLES", Unit: "c", Period: 1}})
	tree, err := Correlate(doc, prof)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 0 {
		t.Fatal("empty profile produced scopes")
	}
}

func TestCorrelateNoSourceProc(t *testing.T) {
	p := prog.NewBuilder("ns").
		File("a.c").
		Proc("main", 1, prog.C(2, "memset")).
		RuntimeProc("memset", prog.W(1, 100)).
		Entry("main").MustBuild()
	_, _, tree := pipeline(t, p, lower.Options{}, 10, sim.Config{})
	ms := tree.FindPath("main", "memset")
	if ms == nil {
		t.Fatal("memset frame missing")
	}
	if !ms.NoSource {
		t.Fatal("memset should be NoSource (rendered plain, not a hyperlink)")
	}
}

func TestCorrelateRejectsMismatchedBuild(t *testing.T) {
	// Profiles measured from one build must not correlate against a
	// different build's structure document: the fingerprints disagree
	// even though the PCs would still resolve.
	build := func(extra uint64) (*structfile.Doc, *profile.Profile) {
		p := prog.NewBuilder("fp").
			File("a.c").
			Proc("main", 1, prog.W(2, 100+extra)).
			Entry("main").MustBuild()
		im, err := lower.Lower(p, lower.Options{})
		if err != nil {
			t.Fatal(err)
		}
		doc, err := structfile.Recover(im)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sampler.New("fp", 0, 0, []sampler.EventConfig{{Event: sim.EvCycles, Period: 10}})
		if err != nil {
			t.Fatal(err)
		}
		vm, err := sim.New(im, sim.Config{Observer: s})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		return doc, s.Profile()
	}
	docA, profA := build(0)
	docB, profB := build(1) // same layout, different cost table

	if profA.Fingerprint == 0 || docA.Fingerprint == 0 {
		t.Fatal("fingerprints not stamped")
	}
	if profA.Fingerprint == profB.Fingerprint {
		t.Fatal("different builds share a fingerprint")
	}
	// Matching pair correlates.
	if _, err := Correlate(docA, profA); err != nil {
		t.Fatal(err)
	}
	// Cross pair is rejected.
	if _, err := Correlate(docB, profA); err == nil {
		t.Fatal("mismatched build accepted")
	}
	if _, err := Correlate(docA, profB); err == nil {
		t.Fatal("mismatched build accepted (other direction)")
	}
	// Zero fingerprints (hand-built inputs) stay permissive.
	docA.Fingerprint = 0
	if _, err := Correlate(docA, profB); err != nil {
		t.Fatalf("unknown fingerprint should be permissive: %v", err)
	}
}
