package imbalance

import (
	"strings"
	"testing"

	"repro/internal/lower"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/structfile"
)

func fixture(t *testing.T, ranks int) (*structfile.Doc, []*profile.Profile) {
	t.Helper()
	p := prog.NewBuilder("imb").
		File("a.c").
		Proc("work", 10,
			prog.Lx(11, prog.ScaledInt{X: prog.RankInt{}, Num: 50, Den: 1, Off: 50},
				prog.W(12, 100))).
		Proc("main", 1,
			prog.C(2, "work"),
			prog.Sync(3)).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: ranks, Events: []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 50},
		{Event: sim.EvIdle, Period: 50},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return doc, profs
}

func TestPerRankSeries(t *testing.T) {
	doc, profs := fixture(t, 4)
	vals, err := PerRankSeries(doc, profs, []string{"main", "work"}, "CYCLES")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 {
		t.Fatalf("len = %d", len(vals))
	}
	// Rank r's work is (50 + 50r)*100 cycles: strictly increasing.
	for r := 1; r < 4; r++ {
		if vals[r] <= vals[r-1] {
			t.Fatalf("series not increasing: %v", vals)
		}
	}
	// Unknown scope yields zeros, not an error.
	zeros, err := PerRankSeries(doc, profs, []string{"main", "ghost"}, "CYCLES")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range zeros {
		if v != 0 {
			t.Fatalf("ghost scope has values: %v", zeros)
		}
	}
	if _, err := PerRankSeries(doc, nil, nil, "CYCLES"); err == nil {
		t.Fatal("empty profiles accepted")
	}
}

func TestAnalyzeAndRender(t *testing.T) {
	doc, profs := fixture(t, 8)
	rep, err := Analyze(doc, profs, []string{"main", "work"}, "CYCLES", 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.N != 8 {
		t.Fatalf("N = %d", rep.Stats.N)
	}
	if rep.ImbalanceFactor() < 0.3 {
		t.Fatalf("imbalance factor = %g, want substantial", rep.ImbalanceFactor())
	}
	total := 0
	for _, b := range rep.Bins {
		total += b.Count
	}
	if total != 8 {
		t.Fatalf("histogram counts = %d, want 8", total)
	}
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"per-rank (scatter):", "rank    0", "sorted:", "histogram:", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 4)
	if len(bins) != 4 {
		t.Fatalf("bins = %d", len(bins))
	}
	for _, b := range bins {
		if b.Count != 2 {
			t.Fatalf("uneven bins: %+v", bins)
		}
	}
	// Max value lands in the last bin.
	if bins[3].Hi != 7 {
		t.Fatalf("last bin hi = %g", bins[3].Hi)
	}
	// Degenerate: all equal.
	deg := Histogram([]float64{5, 5, 5}, 4)
	if len(deg) != 1 || deg[0].Count != 3 {
		t.Fatalf("degenerate histogram = %+v", deg)
	}
	if Histogram(nil, 4) != nil {
		t.Fatal("empty histogram not nil")
	}
	// nbins <= 0 defaults.
	if got := Histogram([]float64{1, 2}, 0); len(got) != 10 {
		t.Fatalf("default bins = %d", len(got))
	}
}

func TestHistogramCountsPreserved(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	for _, nbins := range []int{1, 2, 3, 7, 20} {
		total := 0
		for _, b := range Histogram(vals, nbins) {
			total += b.Count
		}
		if total != len(vals) {
			t.Fatalf("nbins=%d lost values: %d != %d", nbins, total, len(vals))
		}
	}
}
