// Package imbalance implements the load-imbalance analysis of Section
// VI-C: given per-rank profiles and a scope of interest (typically found by
// hot-path analysis over total idleness), it produces the per-rank metric
// series, its summary statistics and a histogram — the three graphs of the
// paper's Figure 7 — and renders them as text.
//
// The per-rank series is recovered lazily by re-correlating one rank at a
// time, mirroring hpcviewer's strategy of not keeping per-process data for
// every scope resident in memory (Section IX).
package imbalance

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/correlate"
	"repro/internal/metric"
	"repro/internal/profile"
	"repro/internal/structfile"
)

// Bin is one histogram bucket over per-rank values.
type Bin struct {
	Lo, Hi float64
	Count  int
}

// Report is the analysis of one scope and metric across ranks.
type Report struct {
	// Scope is the analyzed scope's label path within the CCT.
	Scope []string
	// Metric is the analyzed metric's name.
	Metric string
	// Values holds the scope's inclusive metric value per rank.
	Values []float64
	// Stats summarizes Values.
	Stats metric.Stats
	// Bins is the histogram of Values.
	Bins []Bin
}

// PerRankSeries extracts the inclusive value of the named metric at the
// scope identified by the label path, one value per profile (zero when the
// rank never executed the scope).
func PerRankSeries(doc *structfile.Doc, profs []*profile.Profile, path []string, metricName string) ([]float64, error) {
	if len(profs) == 0 {
		return nil, fmt.Errorf("imbalance: no profiles")
	}
	out := make([]float64, len(profs))
	for i, p := range profs {
		tree, err := correlate.Correlate(doc, p)
		if err != nil {
			return nil, err
		}
		d := tree.Reg.ByName(metricName)
		if d == nil {
			continue // this rank never sampled the metric
		}
		if n := tree.FindPath(path...); n != nil {
			out[i] = n.Incl.Get(d.ID)
		}
	}
	return out, nil
}

// Histogram buckets values into nbins equal-width bins spanning
// [min, max]. Degenerate spreads collapse to a single bin.
func Histogram(values []float64, nbins int) []Bin {
	if len(values) == 0 {
		return nil
	}
	if nbins <= 0 {
		nbins = 10
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo == hi {
		return []Bin{{Lo: lo, Hi: hi, Count: len(values)}}
	}
	bins := make([]Bin, nbins)
	width := (hi - lo) / float64(nbins)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = bins[i].Lo + width
	}
	bins[nbins-1].Hi = hi
	for _, v := range values {
		idx := int((v - lo) / width)
		if idx >= nbins {
			idx = nbins - 1
		}
		bins[idx].Count++
	}
	return bins
}

// Analyze produces a full report for one scope and metric.
func Analyze(doc *structfile.Doc, profs []*profile.Profile, path []string, metricName string, nbins int) (*Report, error) {
	values, err := PerRankSeries(doc, profs, path, metricName)
	if err != nil {
		return nil, err
	}
	r := &Report{Scope: path, Metric: metricName, Values: values, Bins: Histogram(values, nbins)}
	for _, v := range values {
		r.Stats.Observe(v)
	}
	return r, nil
}

// ImbalanceFactor is max/mean - 1 over the per-rank values.
func (r *Report) ImbalanceFactor() float64 { return r.Stats.ImbalanceFactor() }

const barWidth = 40

// Render writes the three Figure 7 graphs as text: the per-rank scatter,
// the sorted series and the histogram.
func (r *Report) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "load imbalance of %s at %s\n", r.Metric, strings.Join(r.Scope, " > "))
	fmt.Fprintf(&b, "ranks=%d mean=%.3g min=%.3g max=%.3g stddev=%.3g imbalance=%.2f\n\n",
		r.Stats.N, r.Stats.Mean(), r.Stats.Min, r.Stats.Max, r.Stats.StdDev(), r.ImbalanceFactor())

	max := r.Stats.Max
	bar := func(v float64) string {
		if max <= 0 {
			return ""
		}
		n := int(math.Round(v / max * barWidth))
		return strings.Repeat("#", n)
	}

	b.WriteString("per-rank (scatter):\n")
	step := 1
	if len(r.Values) > 64 {
		step = (len(r.Values) + 63) / 64
	}
	for i := 0; i < len(r.Values); i += step {
		fmt.Fprintf(&b, "  rank %4d | %-*s %.3g\n", i, barWidth, bar(r.Values[i]), r.Values[i])
	}

	b.WriteString("\nsorted:\n")
	sorted := append([]float64(nil), r.Values...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	for i := 0; i < len(sorted); i += step {
		fmt.Fprintf(&b, "  %4d/%d    | %-*s %.3g\n", i, len(sorted), barWidth, bar(sorted[i]), sorted[i])
	}

	b.WriteString("\nhistogram:\n")
	maxCount := 0
	for _, bin := range r.Bins {
		if bin.Count > maxCount {
			maxCount = bin.Count
		}
	}
	for _, bin := range r.Bins {
		n := 0
		if maxCount > 0 {
			n = bin.Count * barWidth / maxCount
		}
		fmt.Fprintf(&b, "  [%.3g, %.3g) | %-*s %d\n", bin.Lo, bin.Hi, barWidth, strings.Repeat("#", n), bin.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
