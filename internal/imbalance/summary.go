package imbalance

import (
	"sort"
	"strings"

	"repro/internal/core"
)

// ScopeStat is the load-imbalance summary of one scope recovered from a
// merged database's cross-rank summary columns.
type ScopeStat struct {
	// Path is the scope's label path from the entry frame.
	Path []string `json:"path"`
	// Mean and Max are the scope's inclusive per-rank mean and maximum.
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
	// Factor is max/mean − 1, the paper's imbalance factor: 0 for a
	// perfectly balanced scope, 1 when the slowest rank costs twice the
	// average.
	Factor float64 `json:"factor"`
	// Waste is ranks · (max − mean): the total cost the program would
	// shed if every rank ran at the mean — the paper's derived waste
	// metric, Section VI-B.
	Waste float64 `json:"waste"`
}

// FromSummaries recovers the Section VI-C load-imbalance analysis from a
// database whose per-rank profiles are gone but whose mean/max summary
// columns survive (hpcprof -summaries): every procedure frame with
// positive mean cost is scored by imbalance factor and absolute waste.
// meanID and maxID are the summary columns over one raw metric; ranks is
// the database's merged rank count. Frames are returned in descending
// waste order (ties broken by path), so the head of the slice is where
// rebalancing pays most.
func FromSummaries(tree *core.Tree, ranks int, meanID, maxID int) []ScopeStat {
	var out []ScopeStat
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		if n.Kind == core.KindFrame {
			mean, max := n.Incl.Get(meanID), n.Incl.Get(maxID)
			if mean > 0 && max >= mean {
				var path []string
				for _, a := range n.Path() {
					if a.Kind == core.KindFrame {
						path = append(path, a.Label())
					}
				}
				out = append(out, ScopeStat{
					Path:   path,
					Mean:   mean,
					Max:    max,
					Factor: max/mean - 1,
					Waste:  float64(ranks) * (max - mean),
				})
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Waste != out[j].Waste {
			return out[i].Waste > out[j].Waste
		}
		return strings.Join(out[i].Path, "\x00") < strings.Join(out[j].Path, "\x00")
	})
	return out
}
