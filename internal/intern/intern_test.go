package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	if S("") != 0 {
		t.Fatalf("empty string must be Sym 0")
	}
	if Sym(0).String() != "" {
		t.Fatalf("Sym 0 must resolve to the empty string")
	}
	a := S("intern_test_alpha")
	b := S("intern_test_beta")
	if a == b {
		t.Fatalf("distinct strings share Sym %d", a)
	}
	if S("intern_test_alpha") != a {
		t.Fatalf("re-interning changed the Sym")
	}
	if got := a.String(); got != "intern_test_alpha" {
		t.Fatalf("resolve = %q", got)
	}
	if got := B([]byte("intern_test_beta")); got != b {
		t.Fatalf("B disagrees with S: %d vs %d", got, b)
	}
	if got := B([]byte("intern_test_gamma")); got.String() != "intern_test_gamma" {
		t.Fatalf("B miss path resolve = %q", got.String())
	}
}

func TestDenseIDs(t *testing.T) {
	before := Len()
	for i := 0; i < 100; i++ {
		y := S(fmt.Sprintf("intern_test_dense_%d", i))
		if int(y) >= Len() {
			t.Fatalf("Sym %d out of table range %d", y, Len())
		}
	}
	if Len() != before+100 {
		t.Fatalf("interned 100 fresh strings, table grew by %d", Len()-before)
	}
}

func TestUnknownSymResolvesEmpty(t *testing.T) {
	if got := Sym(1 << 30).String(); got != "" {
		t.Fatalf("unknown sym resolves to %q", got)
	}
}

// TestConcurrentIntern hammers the interner from many goroutines with
// overlapping vocabularies and checks every goroutine agrees on the
// string→Sym mapping. Run under -race this doubles as the interner's
// publication-order test.
func TestConcurrentIntern(t *testing.T) {
	const workers = 8
	const words = 400
	results := make([][]Sym, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]Sym, words)
			for i := 0; i < words; i++ {
				y := S(fmt.Sprintf("intern_test_conc_%d", i))
				if got := y.String(); got != fmt.Sprintf("intern_test_conc_%d", i) {
					panic(fmt.Sprintf("worker %d: sym %d resolves to %q", w, y, got))
				}
				out[i] = y
			}
			results[w] = out
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d disagrees at word %d: %d vs %d", w, i, results[w][i], results[0][i])
			}
		}
	}
}

// TestInternHitAllocs locks down the zero-allocation guarantee of the hot
// hit path: once a name is interned, neither S nor B nor String allocate.
func TestInternHitAllocs(t *testing.T) {
	s := "intern_test_hot_hit"
	y := S(s)
	buf := []byte(s)
	if got := testing.AllocsPerRun(200, func() { S(s) }); got != 0 {
		t.Fatalf("S hit allocates %v times", got)
	}
	if got := testing.AllocsPerRun(200, func() { B(buf) }); got != 0 {
		t.Fatalf("B hit allocates %v times", got)
	}
	if got := testing.AllocsPerRun(200, func() { _ = y.String() }); got != 0 {
		t.Fatalf("String allocates %v times", got)
	}
}
