// Package intern is a process-wide concurrent string interner. It hands out
// dense uint32 symbol ids (Sym) for strings, so hot paths — CCT child
// lookup, profile merging, binary database loads — can compare, hash and
// store fixed-size integers instead of re-hashing string bytes.
//
// The design is read-mostly: after the first profile is loaded the working
// set of procedure/file/module names is fully interned, and every further
// lookup is a shard-local RLock plus one map probe (zero allocations).
// Misses take the shard's write lock and a global append lock, so parallel
// merge shards interning disjoint names rarely contend.
//
// Symbols are global to the process, which is what lets trees, shard
// accumulators and experiment databases exchange core.Key values without
// any translation: the same string always maps to the same Sym. Interned
// strings are never freed; for a profiler whose vocabulary is the fixed
// set of names in the measured program, that is the right trade.
package intern

import (
	"sync"
	"sync/atomic"
)

// Sym is a dense interned-string id. The zero Sym is always the empty
// string, so zero-valued keys and fields behave like their old ""
// counterparts.
type Sym uint32

// String resolves the symbol. It is lock-free: the symbol table is an
// append-only snapshot published atomically, and any Sym a caller can hold
// was published no later than the snapshot it will load.
func (y Sym) String() string {
	t := *table.Load()
	if int(y) < len(t) {
		return t[y]
	}
	return ""
}

// shardCount bounds lock contention between concurrent interners (parallel
// merge shards, concurrent database loads). Must be a power of two.
const shardCount = 64

type shard struct {
	mu sync.RWMutex
	m  map[string]Sym
}

var (
	shards [shardCount]shard

	// appendMu serializes symbol allocation; all holds the strings owned
	// by the interner, and table publishes read-only snapshots of it.
	appendMu sync.Mutex
	all      []string
	table    atomic.Pointer[[]string]
)

func init() {
	all = make([]string, 1, 1024) // Sym 0 is ""
	snap := all
	table.Store(&snap)
}

func shardFor(h uint32) *shard { return &shards[h&(shardCount-1)] }

// fnv1a is the shard-selection hash (not the map hash); it never
// allocates.
func fnv1aString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

func fnv1aBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h = (h ^ uint32(b[i])) * 16777619
	}
	return h
}

// S interns a string. The hit path takes one shard RLock and performs no
// allocations.
func S(s string) Sym {
	if s == "" {
		return 0
	}
	sh := shardFor(fnv1aString(s))
	sh.mu.RLock()
	y, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return y
	}
	return sh.intern(s)
}

// B interns a byte slice without allocating when the string is already
// known (the compiler elides the string conversion in the map probe).
// Binary database loads use it to intern each table entry straight from
// the read buffer.
func B(b []byte) Sym {
	if len(b) == 0 {
		return 0
	}
	sh := shardFor(fnv1aBytes(b))
	sh.mu.RLock()
	y, ok := sh.m[string(b)]
	sh.mu.RUnlock()
	if ok {
		return y
	}
	return sh.intern(string(b))
}

// intern is the miss path: allocate the next dense id, publish the new
// symbol-table snapshot, then publish the map entry. The ordering matters —
// a reader that observes the map entry must find the string in the table.
func (sh *shard) intern(s string) Sym {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if y, ok := sh.m[s]; ok {
		return y
	}
	appendMu.Lock()
	all = append(all, s)
	y := Sym(len(all) - 1)
	snap := all
	table.Store(&snap)
	appendMu.Unlock()
	if sh.m == nil {
		sh.m = make(map[string]Sym, 64)
	}
	sh.m[s] = y
	return y
}

// Len reports how many distinct strings (including "") are interned.
// Intended for sizing sym-indexed side tables.
func Len() int { return len(*table.Load()) }
