package render

import (
	"fmt"
	"html"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/metric"
)

// RenderHTML writes a self-contained HTML document presenting a tree the
// way hpcviewer's GUI does: a collapsible navigation pane fused with a
// metric pane, one <details> element per scope, sorted by the selected
// metric, hot-path rows highlighted, zero cells blank. It needs no
// JavaScript and no external assets, so a database can be shared as a
// single file.
func RenderHTML(w io.Writer, title string, roots []*core.Node, reg *metric.Registry, opt Options) error {
	cols := opt.Columns
	if cols == nil {
		for _, d := range reg.Columns() {
			cols = append(cols, Column{MetricID: d.ID, Inclusive: true}, Column{MetricID: d.ID, Inclusive: false})
		}
	}
	h := htmlRenderer{w: w, reg: reg, opt: opt, cols: cols}
	if err := h.prologue(title); err != nil {
		return err
	}
	scopes := append([]*core.Node(nil), roots...)
	if !opt.NoSort {
		core.SortScopes(scopes, opt.Sort)
	}
	for _, s := range scopes {
		if err := h.node(s, 0); err != nil {
			return err
		}
	}
	return h.epilogue()
}

type htmlRenderer struct {
	w    io.Writer
	reg  *metric.Registry
	opt  Options
	cols []Column
}

const htmlStyle = `<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; font-size: 13px;
       background: #fdfdfd; color: #222; margin: 1.5em; }
h1 { font-size: 16px; }
details { margin-left: 1.2em; border-left: 1px dotted #ccc; padding-left: .3em; }
summary, .leaf { cursor: default; padding: 1px 0; white-space: nowrap; }
summary:hover { background: #eef; }
.leaf { margin-left: 1.2em; padding-left: 1.05em; border-left: 1px dotted #ccc; }
.hot { background: #fff0e0; }
.hot > summary, .leaf.hot { background: #ffe4c4; font-weight: bold; }
.m { display: inline-block; min-width: 9.5em; text-align: right; color: #346;
     margin-left: .6em; }
.pct { color: #888; font-size: 11px; }
.bin { color: #666; font-style: italic; }
.cs  { color: #863; }
.hdr { margin: .4em 0 .8em 0; color: #555; }
.hdr .m { font-weight: bold; color: #333; }
</style>`

func (h *htmlRenderer) prologue(title string) error {
	t := html.EscapeString(title)
	if _, err := fmt.Fprintf(h.w,
		"<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title>%s</head><body>\n<h1>%s</h1>\n",
		t, htmlStyle, t); err != nil {
		return err
	}
	// Column header line.
	var b strings.Builder
	b.WriteString(`<div class="hdr">scope`)
	for _, c := range h.cols {
		d := h.reg.ByID(c.MetricID)
		name := "?"
		if d != nil {
			name = d.Name
		}
		flavor := "(E)"
		if c.Inclusive {
			flavor = "(I)"
		}
		fmt.Fprintf(&b, `<span class="m">%s %s</span>`, html.EscapeString(name), flavor)
	}
	b.WriteString("</div>\n")
	_, err := io.WriteString(h.w, b.String())
	return err
}

func (h *htmlRenderer) epilogue() error {
	_, err := io.WriteString(h.w, "</body></html>\n")
	return err
}

func (h *htmlRenderer) node(n *core.Node, depth int) error {
	if h.opt.MaxDepth > 0 && depth >= h.opt.MaxDepth {
		return nil
	}
	hot := h.opt.Highlight[n]
	label := h.label(n)
	cells := h.cells(n)

	kids := append([]*core.Node(nil), n.Children...)
	if !h.opt.NoSort {
		core.SortScopes(kids, h.opt.Sort)
	}
	shown := kids
	if h.opt.TopN > 0 && len(kids) > h.opt.TopN {
		shown = kids[:h.opt.TopN]
	}
	atDepthLimit := h.opt.MaxDepth > 0 && depth+1 >= h.opt.MaxDepth

	if len(shown) == 0 || atDepthLimit {
		cls := "leaf"
		if hot {
			cls += " hot"
		}
		_, err := fmt.Fprintf(h.w, `<div class="%s">%s%s</div>`+"\n", cls, label, cells)
		return err
	}
	cls := ""
	if hot {
		cls = ` class="hot"`
	}
	open := ""
	if hot || depth == 0 {
		open = " open"
	}
	if _, err := fmt.Fprintf(h.w, `<details%s%s><summary>%s%s</summary>`+"\n", cls, open, label, cells); err != nil {
		return err
	}
	for _, c := range shown {
		if err := h.node(c, depth+1); err != nil {
			return err
		}
	}
	if len(shown) < len(kids) {
		if _, err := fmt.Fprintf(h.w, `<div class="leaf pct">&hellip; (%d more)</div>`+"\n", len(kids)-len(shown)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(h.w, "</details>\n")
	return err
}

func (h *htmlRenderer) label(n *core.Node) string {
	lbl := html.EscapeString(n.Label())
	switch n.Kind {
	case core.KindFrame:
		if n.CallLine > 0 {
			lbl = `<span class="cs">&#8618;</span> ` + lbl
		}
	case core.KindCallSite:
		lbl = `<span class="cs">&#8618;</span> ` + lbl
	}
	if n.NoSource && (n.Kind == core.KindFrame || n.Kind == core.KindProc || n.Kind == core.KindCallSite) {
		lbl += ` <span class="bin">[bin]</span>`
	}
	return lbl
}

func (h *htmlRenderer) cells(n *core.Node) string {
	var b strings.Builder
	for _, c := range h.cols {
		var v float64
		if c.Inclusive {
			v = n.Incl.Get(c.MetricID)
		} else {
			v = n.Excl.Get(c.MetricID)
		}
		b.WriteString(`<span class="m">`)
		if v != 0 {
			b.WriteString(html.EscapeString(FormatValue(v)))
			if h.opt.Totals != nil {
				if d := h.reg.ByID(c.MetricID); d != nil && d.ShowPercent {
					if tot := h.opt.Totals(c.MetricID); tot != 0 {
						fmt.Fprintf(&b, ` <span class="pct">%.1f%%</span>`, 100*v/tot)
					}
				}
			}
		}
		b.WriteString("</span>")
	}
	return b.String()
}

// RenderHTMLReport writes all three views of a tree into one document,
// each under its own heading, with the hot path of metric hotMetric
// highlighted in the Calling Context View (pass a negative hotMetric to
// skip hot-path analysis).
func RenderHTMLReport(w io.Writer, t *core.Tree, title string, hotMetric int, opt Options) error {
	if opt.Totals == nil {
		opt.Totals = t.Total
	}
	if _, err := fmt.Fprintf(w, "<!-- %s: calling context / callers / flat -->\n", html.EscapeString(title)); err != nil {
		return err
	}
	ccOpt := opt
	if hotMetric >= 0 {
		path := core.HotPath(t.Root, hotMetric, core.DefaultHotPathThreshold)
		ccOpt.Highlight = map[*core.Node]bool{}
		for _, n := range path {
			ccOpt.Highlight[n] = true
		}
	}
	if err := RenderHTML(w, title+" — Calling Context View", t.Root.Children, t.Reg, ccOpt); err != nil {
		return err
	}
	cv := core.BuildCallersView(t)
	if err := cv.ExpandAllParallel(0); err != nil {
		return err
	}
	if err := RenderHTML(w, title+" — Callers View", cv.Roots, t.Reg, opt); err != nil {
		return err
	}
	fv := core.BuildFlatView(t)
	return RenderHTML(w, title+" — Flat View", fv.Roots, t.Reg, opt)
}
