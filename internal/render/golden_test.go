package render

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestGoldenFig1Render locks the exact text presentation of the paper's
// worked example: fused call-site/callee lines, metric-sorted siblings,
// scientific-notation-ready cells with percent annotations, and blank
// zeros. Any intentional format change must update this golden block.
func TestGoldenFig1Render(t *testing.T) {
	tree := core.Fig1Tree()
	var b strings.Builder
	if err := RenderTree(&b, tree, Options{}); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	const golden = `scope                                                 cost (I)          cost (E)
--------------------------------------------------------------------------------
 m                                                   10 100.0%
   => f                                               7  70.0%          1  10.0%
     => g                                             6  60.0%          1  10.0%
       => g                                           5  50.0%          1  10.0%
         => h                                         4  40.0%          4  40.0%
           loop at file2.c: 8                         4  40.0%
             loop at file2.c: 9                       4  40.0%          4  40.0%
               file2.c: 9                             4  40.0%          4  40.0%
         file2.c: 4                                   1  10.0%          1  10.0%
       file2.c: 3                                     1  10.0%          1  10.0%
     file1.c: 2                                       1  10.0%          1  10.0%
   => g                                               3  30.0%          3  30.0%
     file2.c: 3                                       3  30.0%          3  30.0%
`
	if got != golden {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}
